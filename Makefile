GO ?= go
BENCH_DATE ?= $(shell date +%F)

.PHONY: all build vet magevet test magecheck fmt check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint for the DES core; see DESIGN.md §7.
magevet:
	$(GO) run ./cmd/magevet ./...

test:
	$(GO) test ./...

# Runtime invariant checks compiled in via the magecheck build tag.
magecheck:
	$(GO) test -race -tags magecheck ./internal/...

fmt:
	gofmt -l .

# Benchmark snapshot: engine dispatch + figure regeneration + the fault
# pipeline with and without injected faults, recorded as JSON (name,
# ns/op, reported metrics such as events/s and retries/op) for diffing
# across commits — robustness regressions show up next to perf ones.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineDispatch|BenchmarkParexpFigures|BenchmarkFaultPathMageLib|BenchmarkFaultToleranceMageLib' ./... \
		| tee /dev/stderr | $(GO) run ./cmd/benchsnap > BENCH_$(BENCH_DATE).json

check: build vet magevet test magecheck
