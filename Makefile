GO ?= go
BENCH_DATE ?= $(shell date +%F)

.PHONY: all build vet magevet test magecheck fmt check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint for the DES core; see DESIGN.md §7.
magevet:
	$(GO) run ./cmd/magevet ./...

test:
	$(GO) test ./...

# Runtime invariant checks compiled in via the magecheck build tag.
magecheck:
	$(GO) test -race -tags magecheck ./internal/...

fmt:
	gofmt -l .

# Benchmark snapshot: engine dispatch + figure regeneration, recorded as
# JSON (name, ns/op, reported metrics such as events/s) for diffing
# across commits.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineDispatch|BenchmarkParexpFigures|BenchmarkFaultPathMageLib' ./... \
		| tee /dev/stderr | $(GO) run ./cmd/benchsnap > BENCH_$(BENCH_DATE).json

check: build vet magevet test magecheck
