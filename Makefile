GO ?= go
BENCH_DATE ?= $(shell date +%F)

.PHONY: all build vet magevet test magecheck fmt fmtcheck lint check bench cover

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis suite: determinism rules for the DES core plus the
# bug-class passes (overflowcmp, lockscope, mapdrain, errdrop,
# oksuppress); see DESIGN.md §12. Runs with no baseline: any finding
# fails, under both build-tag variants.
magevet:
	$(GO) run ./cmd/magevet ./...
	$(GO) run ./cmd/magevet -tags magecheck ./...

test:
	$(GO) test ./...

# Runtime invariant checks compiled in via the magecheck build tag.
magecheck:
	$(GO) test -race -tags magecheck ./internal/...

fmt:
	gofmt -l .

# fmtcheck fails (unlike fmt, which only lists) so lint/CI can gate on it.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The full static gate CI's static-analysis job runs: formatting, go
# vet, and the magevet suite with an empty baseline.
lint: fmtcheck vet magevet

# Benchmark snapshot: engine dispatch + figure regeneration + the fault
# pipeline with and without injected faults + the memnode wire protocol
# (stop-and-wait roundtrip, depth-32 TCP pipeline, and the depth-32
# shared-memory ring), recorded as JSON (name, ns/op, reported metrics
# such as events/s, retries/op, pages/s, p99-us, allocs/op) for diffing
# across commits — robustness regressions show up next to perf ones.
# -require makes the snapshot fail loudly if a pinned memnode metric
# stops being reported; the shm pins hold the kernel-copy-wall numbers
# (pages/s, p99, allocs/op on the shm data plane) in every snapshot.
# On platforms without the shm transport BenchmarkMemnodeShmPipeline
# skips, so the shm pins would fail: bench is a Linux target.
# The memcluster failover pin (p99 of reads on a 3x2 cluster with one
# replica down) keeps the degraded-mode tail in every snapshot; the
# bench also stamps its shards/replicas/transport topology into the
# snapshot's "clusters" section.
# The sharded-engine pin is a hard floor, not just a presence check:
# the rack-scale DES needs the 4-shard merge to stay at or above
# 2.7M events/s, so bench fails if dispatch throughput regresses
# below it.
# The magecache pin is the headline end-to-end floor: the KV cache over
# the user-level pager must sustain >= 120k ops/s with its value heap
# at a remote:local ratio of 8:1 on a live memnode socket (measured
# ~360k on the reference box; the floor leaves 3x for noisy runners),
# with the p99 recorded alongside.
bench:
	$(GO) test -run '^$$' -benchmem -bench 'BenchmarkEngineDispatch|BenchmarkParexpFigures|BenchmarkFaultPathMageLib|BenchmarkFaultToleranceMageLib|BenchmarkColocateNode|BenchmarkMemnodePipeline|BenchmarkMemnodeShmPipeline|BenchmarkServerRoundtrip|BenchmarkClusterFailoverRead|BenchmarkMagecacheZipf' ./... \
		| tee /dev/stderr | $(GO) run ./cmd/benchsnap \
			-require 'BenchmarkMemnodePipeline:pages/s,BenchmarkMemnodePipeline:p99-us,BenchmarkServerRoundtrip:allocs/op,BenchmarkMemnodeShmPipeline:pages/s,BenchmarkMemnodeShmPipeline:p99-us,BenchmarkMemnodeShmPipeline:allocs/op,BenchmarkClusterFailoverRead:pages/s,BenchmarkClusterFailoverRead:p99-us,BenchmarkEngineDispatchSharded:events/s>=2700000,BenchmarkMagecacheZipf:ops/s>=120000,BenchmarkMagecacheZipf:p99-us' \
			> BENCH_$(BENCH_DATE).json

# Coverage floor for internal/core, set just under the level the
# Node/Tenant split landed at so fault/eviction-path statements cannot
# quietly fall out of the test net. CI fails below the floor.
COVER_FLOOR_CORE ?= 90.0

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=mage/internal/core ./internal/... .
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "internal/core coverage: $${total}% (floor $(COVER_FLOOR_CORE)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR_CORE)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "internal/core coverage $${total}% fell below the $(COVER_FLOOR_CORE)% floor" >&2; exit 1; }

check: build lint test magecheck
