GO ?= go

.PHONY: all build vet magevet test magecheck fmt check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint for the DES core; see DESIGN.md §7.
magevet:
	$(GO) run ./cmd/magevet ./...

test:
	$(GO) test ./...

# Runtime invariant checks compiled in via the magecheck build tag.
magecheck:
	$(GO) test -race -tags magecheck ./internal/...

fmt:
	gofmt -l .

check: build vet magevet test magecheck
