package mage_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment at Quick scale and reports simulated
// fault throughput alongside host time, so `go test -bench=.` both
// exercises every experiment end-to-end and tracks the harness's own
// performance.
//
// The printed tables (same rows/series as the paper) come from
// `go run ./cmd/magesim -exp <figN>`; the benches only validate and time.

import (
	"io"
	"testing"

	"mage"
	"mage/internal/experiments"
	"mage/internal/faultinject"
	"mage/internal/workload"
)

// benchScale is Quick() shrunk so each figure regenerates in a few
// seconds under the bench harness.
func benchScale() experiments.Scale {
	sc := experiments.Quick()
	sc.Threads = 24
	sc.Offloads = []float64{0.3, 0.7}
	sc.ThreadSweep = []int{8, 24}
	sc.GapBS = workload.GapBSParams{Scale: 13, EdgeFactor: 16, Iterations: 1, BytesPerVertex: 16, Seed: 42}
	sc.XS = workload.XSBenchParams{Gridpoints: 1 << 13, Nuclides: 32, LookupsPerThread: 600, NuclidesPerLookup: 4}
	sc.Seq = workload.SeqScanParams{Pages: 8 << 10, Iterations: 1, ComputePerPage: 3000}
	sc.Gups = workload.GUPSParams{Pages: 8 << 10, UpdatesPerThread: 2000, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250}
	sc.Metis = workload.MetisParams{InputPages: 4 << 10, IntermediatePages: 3 << 10,
		OutputPages: 512, EmitsPerInputPage: 1, MapCompute: 900, ReduceCompute: 700}
	sc.MC = workload.MemcachedParams{Keys: 1 << 15, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1500}
	sc.MicroPagesPerThread = 800
	sc.MCLoads = []float64{0.3e6, 0.8e6}
	sc.MCFixedLoad = 0.5e6
	sc.MCDuration = 10 * mage.Millisecond
	return sc
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	sc := benchScale()
	r, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables := r(sc)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", name)
		}
		for _, t := range tables {
			if len(t.Rows) == 0 {
				b.Fatalf("%s table %s empty", name, t.ID)
			}
			t.Print(io.Discard)
		}
	}
}

// Fig 1: GapBS throughput vs far-memory fraction, all systems.
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// Fig 3: ideal-vs-Hermit collapse for GapBS and XSBench.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// Fig 4: sequential scan with prefetching vs the ideal baseline.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// Fig 5: fault-only vs fault+eviction throughput across thread counts.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// Fig 6: Hermit/DiLOS fault-handler latency breakdown.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// Fig 7: TLB shootdown and IPI delivery latency vs thread count.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Fig 9: GapBS + XSBench offload sweeps across all systems.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// Fig 10: sequential scan with and without prefetching.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Fig 11: GUPS phase-change timeline.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Fig 12: Metis map/reduce phase throughput.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Fig 13: memcached p99 vs local memory and vs load.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// Fig 14: 48-thread seq read at 30% local: p99 + sync evictions.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// Fig 15: throughput-latency vs raw RDMA.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// Fig 16: DiLOS vs MAGE latency breakdowns.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// Fig 17: cumulative technique ablation.
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// Fig 18: batch-size sweep + low-thread-count regression.
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }

// Table 1: application catalog.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table 2: 100% local-memory performance.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Extension experiments (beyond the paper's figures).
func BenchmarkExtEvictorSweep(b *testing.B)   { benchExperiment(b, "extevict") }
func BenchmarkExtAccounting(b *testing.B)     { benchExperiment(b, "extacct") }
func BenchmarkExtBackends(b *testing.B)       { benchExperiment(b, "extbackend") }
func BenchmarkExtFaultTolerance(b *testing.B) { benchExperiment(b, "extfault") }

// BenchmarkClaims runs the headline-claim self-check.
func BenchmarkClaims(b *testing.B) { benchExperiment(b, "claims") }

// BenchmarkColocateGrid regenerates the multi-tenant co-location sweep.
func BenchmarkColocateGrid(b *testing.B) { benchExperiment(b, "colocate") }

// BenchmarkColocateNode measures a four-tenant node directly (no grid):
// host ns per simulated access with cross-tenant eviction pressure, plus
// the isolation-relevant per-tenant counters — benchsnap records them so
// co-location regressions show next to single-tenant perf.
func BenchmarkColocateNode(b *testing.B) {
	const nt, threads, pagesEach = 4, 2, 4096
	cfg := mage.MageLib(nt*threads, nt*pagesEach, nt*pagesEach/2)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 12
	specs := make([]mage.TenantSpec, nt)
	for i := range specs {
		specs[i] = mage.TenantSpec{AppThreads: threads, TotalPages: pagesEach}
	}
	node, err := mage.NewNode(cfg, specs)
	if err != nil {
		b.Fatal(err)
	}
	budget := node.PrepopBudget()
	for _, tn := range node.Tenants() {
		tn.Prepopulate(budget / nt)
	}
	perThread := b.N/(nt*threads) + 1
	streams := make([][]mage.AccessStream, nt)
	for ti := range streams {
		streams[ti] = make([]mage.AccessStream, threads)
		for i := range streams[ti] {
			tid := uint64(nt*ti + i)
			n := 0
			streams[ti][i] = mage.FuncStream(func() (mage.Access, bool) {
				if n >= perThread {
					return mage.Access{}, false
				}
				pg := (uint64(n)*7919 + tid*131) % pagesEach
				n++
				return mage.Access{Page: pg, Write: n%3 == 0}, true
			})
		}
	}
	b.ResetTimer()
	results := node.RunTenants(streams, mage.RunOptions{})
	var faults, evicted uint64
	for _, res := range results {
		if res.TotalAccesses() == 0 {
			b.Fatal("a tenant ran no accesses")
		}
		faults += res.Metrics.MajorFaults
		evicted += res.Metrics.EvictedPages
	}
	ops := float64(nt * threads * perThread)
	b.ReportMetric(float64(faults)/ops, "faults/op")
	b.ReportMetric(float64(evicted)/ops, "evicted/op")
}

// BenchmarkParexpFigures measures the parallel cell runner end-to-end on
// a figure bundle: the same grids regenerated sequentially (Workers=1)
// and with the full worker pool (Workers=0 → GOMAXPROCS). The ratio of
// the two ns/op numbers is the wall-clock speedup; output is identical
// either way.
func BenchmarkParexpFigures(b *testing.B) {
	run := func(b *testing.B, workers int) {
		sc := benchScale()
		sc.Workers = workers
		for i := 0; i < b.N; i++ {
			for _, name := range []string{"fig5", "fig7", "fig14"} {
				r, err := experiments.Lookup(name)
				if err != nil {
					b.Fatal(err)
				}
				for _, t := range r(sc) {
					t.Print(io.Discard)
				}
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkFaultPathMageLib measures the simulated fault pipeline itself:
// host ns per simulated major fault on the full Mage^LIB stack.
func BenchmarkFaultPathMageLib(b *testing.B) {
	cfg := mage.MageLib(8, 1<<14, 1<<13)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 12
	sys := mage.MustNewSystem(cfg)
	i := uint64(0)
	stream := mage.FuncStream(func() (mage.Access, bool) {
		if i >= uint64(b.N) {
			return mage.Access{}, false
		}
		pg := (i * 7919) % (1 << 14)
		i++
		return mage.Access{Page: pg}, true
	})
	b.ResetTimer()
	res := sys.Run([]mage.AccessStream{stream})
	if res.TotalAccesses() == 0 {
		b.Fatal("no accesses")
	}
}

// BenchmarkFaultToleranceMageLib runs the fault pipeline under injected
// faults (per-op NACKs, spikes, periodic outages) and reports the
// robustness counters per simulated op alongside host ns/op — benchsnap
// picks the extra metrics up into BENCH_*.json so robustness regressions
// show next to performance ones.
func BenchmarkFaultToleranceMageLib(b *testing.B) {
	cfg := mage.MageLib(8, 1<<14, 1<<13)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 12
	cfg.FaultPlan = &faultinject.Plan{
		Seed:          faultinject.DeriveSeed(7, "bench", "fault-tolerance"),
		ReadFailProb:  0.02,
		WriteFailProb: 0.02,
		SpikeProb:     0.01,
		SpikeMin:      mage.Microsecond,
		SpikeMax:      20 * mage.Microsecond,
		Outages:       faultinject.PeriodicOutages(2*mage.Millisecond, 5*mage.Millisecond, 500*mage.Microsecond, 100),
	}
	sys := mage.MustNewSystem(cfg)
	i := uint64(0)
	stream := mage.FuncStream(func() (mage.Access, bool) {
		if i >= uint64(b.N) {
			return mage.Access{}, false
		}
		pg := (i * 7919) % (1 << 14)
		i++
		return mage.Access{Page: pg}, true
	})
	b.ResetTimer()
	res := sys.Run([]mage.AccessStream{stream})
	if res.TotalAccesses() == 0 {
		b.Fatal("no accesses")
	}
	m := res.Metrics
	ops := float64(res.TotalAccesses())
	b.ReportMetric(float64(m.FaultRetries+m.EvictRetries)/ops, "retries/op")
	b.ReportMetric(float64(m.FaultTimeouts+m.EvictTimeouts)/ops, "timeouts/op")
	b.ReportMetric(float64(m.FaultGiveUps)/ops, "giveups/op")
	b.ReportMetric(float64(m.DegradedNs)/1e6, "degraded-ms")
}
