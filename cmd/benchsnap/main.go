// Command benchsnap converts `go test -bench` text output into a JSON
// snapshot so benchmark history can be diffed across commits.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchsnap > BENCH_2026-01-02.json
//
// -require pins metrics that must be present in the snapshot
// (comma-separated Bench:metric pairs, e.g.
// "BenchmarkMemnodePipeline:pages/s,BenchmarkEngineDispatch:events/s");
// if a named benchmark or metric is missing the exit code is 1, so a
// CI bench step fails loudly when a pinned number silently disappears
// instead of producing a snapshot that no longer tracks it. A pair may
// carry a bound — "BenchmarkEngineDispatchSharded:events/s>=2700000"
// (throughput floor) or "BenchmarkMemnodePipeline:ns/op<=20000"
// (latency ceiling) — in which case the measured value must satisfy it,
// turning the snapshot step into a hard perf regression gate.
//
// Every benchmark line is captured with its iteration count, ns/op, and
// any extra metrics the benchmark reported via b.ReportMetric (e.g. the
// engine's events/s — simulated events dispatched per host second — the
// fault-tolerance bench's robustness counters (retries/op, timeouts/op,
// giveups/op, degraded-ms), or allocation counters from -benchmem).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// ClusterTopology records the shape of a clustered-memnode benchmark:
// the cluster benches print one "cluster-topology: bench=... shards=N
// replicas=R transport=..." line per run so a snapshot says what
// topology its failover numbers were measured against.
type ClusterTopology struct {
	Bench     string `json:"bench"`
	Shards    int    `json:"shards"`
	Replicas  int    `json:"replicas"`
	Transport string `json:"transport,omitempty"`
}

// Snapshot is the full parsed run.
type Snapshot struct {
	GoOS      string            `json:"goos,omitempty"`
	GoArch    string            `json:"goarch,omitempty"`
	CPU       string            `json:"cpu,omitempty"`
	Results   []Result          `json:"results"`
	Clusters  []ClusterTopology `json:"clusters,omitempty"`
	FailLines []string          `json:"fail_lines,omitempty"`
}

// parseTopology parses one "cluster-topology: k=v ..." line.
func parseTopology(line string) (ClusterTopology, bool) {
	var ct ClusterTopology
	for _, kv := range strings.Fields(line) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "bench":
			ct.Bench = v
		case "shards":
			ct.Shards, _ = strconv.Atoi(v)
		case "replicas":
			ct.Replicas, _ = strconv.Atoi(v)
		case "transport":
			ct.Transport = v
		}
	}
	return ct, ct.Bench != ""
}

// parseLine parses one "BenchmarkX-8  N  12.3 ns/op  45 u/s" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = v
	}
	return r, true
}

// addTopology dedups one parsed topology into the snapshot. A bench run
// repeats for timing refinement; one topology line per benchmark is
// enough.
func addTopology(snap *Snapshot, payload string) {
	ct, ok := parseTopology(payload)
	if !ok {
		return
	}
	for _, have := range snap.Clusters {
		if have == ct {
			return
		}
	}
	snap.Clusters = append(snap.Clusters, ct)
}

// parse consumes a `go test -bench` stream.
func parse(in io.Reader) (Snapshot, error) {
	var snap Snapshot
	var pkg string // most recent "pkg:" header; stamps following results
	// pending holds a benchmark name whose numeric result has not been
	// seen yet. A benchmark that prints to stdout mid-run (the cluster
	// benches emit a "cluster-topology: ..." line) splits its result:
	// the framework flushes the name token first, the print lands on
	// the same line, and the "N  12.3 ns/op ..." numbers arrive on a
	// later line with no Benchmark prefix. Stitching the two back
	// together keeps those results (and their -require pins) in the
	// snapshot instead of silently dropping them.
	var pending string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			snap.FailLines = append(snap.FailLines, line)
		case strings.HasPrefix(line, "cluster-topology: "):
			addTopology(&snap, strings.TrimPrefix(line, "cluster-topology: "))
		default:
			if r, ok := parseLine(line); ok {
				r.Pkg = pkg
				snap.Results = append(snap.Results, r)
				pending = ""
				continue
			}
			fields := strings.Fields(line)
			if len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
				// Name-only line (result split by a mid-run print):
				// remember the name, and salvage a topology payload
				// glued onto it.
				pending = fields[0]
				if i := strings.Index(line, "cluster-topology: "); i >= 0 {
					addTopology(&snap, line[i+len("cluster-topology: "):])
				}
				continue
			}
			if pending == "" || len(fields) < 3 {
				continue
			}
			if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
				continue
			}
			if r, ok := parseLine(pending + " " + line); ok {
				r.Pkg = pkg
				snap.Results = append(snap.Results, r)
				pending = ""
			}
		}
	}
	return snap, sc.Err()
}

// checkRequired verifies every "Bench:metric" pair against the parsed
// snapshot. Benchmark names are matched by prefix because bench lines
// carry a -N GOMAXPROCS suffix ("BenchmarkMemnodePipeline-8"); the
// metric "ns/op" is always present on a parsed line, anything else must
// appear in the result's extra-metrics map. A pair suffixed with
// ">=floor" or "<=ceiling" additionally bounds the measured value;
// every matching result must satisfy the bound.
func checkRequired(snap Snapshot, require string, errw io.Writer) int {
	missing := 0
	for _, req := range strings.Split(require, ",") {
		req = strings.TrimSpace(req)
		if req == "" {
			continue
		}
		spec, op, bound, err := splitBound(req)
		if err != nil {
			fmt.Fprintf(errw, "benchsnap: bad -require entry %q: %v\n", req, err)
			missing++
			continue
		}
		name, metric, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(errw, "benchsnap: bad -require entry %q (want Bench:metric)\n", req)
			missing++
			continue
		}
		found := false
		for _, r := range snap.Results {
			if r.Name != name && !strings.HasPrefix(r.Name, name+"-") {
				continue
			}
			v, have := r.NsPerOp, true
			if metric != "ns/op" {
				v, have = r.Metrics[metric]
			}
			if !have {
				continue
			}
			found = true
			if op == ">=" && v < bound || op == "<=" && v > bound {
				fmt.Fprintf(errw, "benchsnap: %s %s = %v violates the pinned bound %s%v\n",
					r.Name, metric, v, op, bound)
				missing++
			}
		}
		if !found {
			fmt.Fprintf(errw, "benchsnap: required metric %q missing from bench output\n", req)
			missing++
		}
	}
	return missing
}

// splitBound strips an optional ">=value" / "<=value" suffix from a
// -require entry, returning the bare Bench:metric spec and the bound.
// op is "" when the entry is a bare presence pin.
func splitBound(req string) (spec, op string, bound float64, err error) {
	for _, o := range []string{">=", "<="} {
		i := strings.Index(req, o)
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(req[i+len(o):]), 64)
		if err != nil {
			return "", "", 0, fmt.Errorf("unparseable bound after %q", o)
		}
		return strings.TrimSpace(req[:i]), o, v, nil
	}
	return req, "", 0, nil
}

func run(in io.Reader, out, errw io.Writer, require string) int {
	snap, err := parse(in)
	if err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(errw, "benchsnap: no benchmark lines on stdin")
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	if len(snap.FailLines) > 0 {
		fmt.Fprintf(errw, "benchsnap: %d FAIL line(s) in bench output\n", len(snap.FailLines))
		return 1
	}
	if checkRequired(snap, require, errw) > 0 {
		return 1
	}
	return 0
}

func main() {
	require := flag.String("require", "",
		"comma-separated Bench:metric pairs that must be present, optionally bounded"+
			" (Bench:metric>=floor or Bench:metric<=ceiling); exit 1 if missing or violated")
	flag.Parse()
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, *require))
}
