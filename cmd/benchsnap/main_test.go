package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mage/internal/sim
cpu: Intel(R) Xeon(R)
BenchmarkEngineDispatch-8   	 3206942	       379.5 ns/op	   2635072 events/s
BenchmarkEngineDispatchCancel-8 	 1650808	       727.4 ns/op
ok  	mage/internal/sim	3.456s
`

func TestParseSample(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GoOS != "linux" {
		t.Errorf("header fields wrong: %+v", snap)
	}
	if snap.Results[0].Pkg != "mage/internal/sim" {
		t.Errorf("result pkg = %q, want mage/internal/sim", snap.Results[0].Pkg)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkEngineDispatch-8" || r.Iterations != 3206942 || r.NsPerOp != 379.5 {
		t.Errorf("result 0 = %+v", r)
	}
	if r.Metrics["events/s"] != 2635072 {
		t.Errorf("events/s metric = %v, want 2635072", r.Metrics["events/s"])
	}
	if snap.Results[1].Metrics != nil {
		t.Errorf("result 1 has unexpected metrics: %v", snap.Results[1].Metrics)
	}
}

// TestParseRobustnessMetrics pins the units the fault-tolerance bench
// reports (retries/op, timeouts/op, giveups/op, degraded-ms): they must
// land in the JSON metrics map so BENCH_*.json diffs catch robustness
// regressions alongside performance ones.
func TestParseRobustnessMetrics(t *testing.T) {
	const line = `pkg: mage
BenchmarkFaultToleranceMageLib-8   	    2048	     91540 ns/op	       210.0 degraded-ms	         0.0150 giveups/op	         0.0890 retries/op	         0.0420 timeouts/op
`
	snap, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(snap.Results))
	}
	m := snap.Results[0].Metrics
	want := map[string]float64{
		"retries/op":  0.0890,
		"timeouts/op": 0.0420,
		"giveups/op":  0.0150,
		"degraded-ms": 210.0,
	}
	for unit, v := range want {
		if m[unit] != v {
			t.Errorf("metric %q = %v, want %v", unit, m[unit], v)
		}
	}
}

// TestParseColocateMetrics pins the units the multi-tenant co-location
// bench reports (faults/op, evicted/op across the whole node): they must
// land in the metrics map so cross-tenant isolation regressions are
// diffable in BENCH_*.json like any other number.
func TestParseColocateMetrics(t *testing.T) {
	const line = `pkg: mage
BenchmarkColocateNode-8   	    4096	     52210 ns/op	         0.4100 evicted/op	         0.3800 faults/op
`
	snap, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(snap.Results))
	}
	m := snap.Results[0].Metrics
	want := map[string]float64{
		"faults/op":  0.3800,
		"evicted/op": 0.4100,
	}
	for unit, v := range want {
		if m[unit] != v {
			t.Errorf("metric %q = %v, want %v", unit, m[unit], v)
		}
	}
}

func TestRunEmitsJSONAndExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(strings.NewReader(sample), &out, &errw, ""); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, &errw)
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(snap.Results) != 2 {
		t.Errorf("round-tripped %d results, want 2", len(snap.Results))
	}

	out.Reset()
	errw.Reset()
	if code := run(strings.NewReader("no benchmarks here\n"), &out, &errw, ""); code != 1 {
		t.Errorf("run on empty input = %d, want 1", code)
	}

	out.Reset()
	errw.Reset()
	failed := sample + "--- FAIL: TestX\nFAIL\n"
	if code := run(strings.NewReader(failed), &out, &errw, ""); code != 1 {
		t.Errorf("run on failing bench output = %d, want 1", code)
	}
}

// TestRequiredMetrics pins the -require contract: named benchmarks are
// matched despite the -N cpu suffix, a present metric passes, and a
// missing benchmark, missing metric, or malformed pair all exit 1 with
// a diagnostic on stderr.
func TestRequiredMetrics(t *testing.T) {
	const pipeline = `pkg: mage/internal/memnode
BenchmarkServerRoundtrip-8   	   90000	     16500 ns/op	 496.48 MB/s	       2 allocs/op
BenchmarkMemnodePipeline-8   	  500000	      6500 ns/op	 630.15 MB/s	    215000 pages/s
`
	cases := []struct {
		require string
		code    int
	}{
		{"", 0},
		{"BenchmarkMemnodePipeline:pages/s", 0},
		{"BenchmarkMemnodePipeline:pages/s,BenchmarkServerRoundtrip:allocs/op", 0},
		{"BenchmarkMemnodePipeline:ns/op", 0},
		{" BenchmarkMemnodePipeline:pages/s , ", 0}, // whitespace and empties tolerated
		{"BenchmarkMemnodePipeline:p99-us", 1},      // metric not reported
		{"BenchmarkVanished:pages/s", 1},            // benchmark not present
		{"BenchmarkMemnode:pages/s", 1},             // prefix must stop at the -N suffix
		{"not-a-pair", 1},                           // malformed entry
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		if code := run(strings.NewReader(pipeline), &out, &errw, tc.require); code != tc.code {
			t.Errorf("run(-require %q) = %d, want %d; stderr: %s", tc.require, code, tc.code, &errw)
		}
		if tc.code == 1 && errw.Len() == 0 {
			t.Errorf("run(-require %q) failed silently", tc.require)
		}
	}
}

// TestRequiredBounds pins the floor/ceiling extension of -require:
// "Bench:metric>=floor" fails when the measured value is below the
// floor, "Bench:metric<=ceiling" fails above it, satisfied bounds pass,
// and a malformed bound is diagnosed rather than silently treated as a
// presence pin.
func TestRequiredBounds(t *testing.T) {
	const sharded = `pkg: mage/internal/sim
BenchmarkEngineDispatchSharded-8   	 3300000	       300.0 ns/op	   3300000 events/s
`
	cases := []struct {
		require string
		code    int
	}{
		{"BenchmarkEngineDispatchSharded:events/s>=2700000", 0},
		{"BenchmarkEngineDispatchSharded:events/s >= 2700000", 0}, // spaces tolerated
		{"BenchmarkEngineDispatchSharded:events/s>=4000000", 1},   // below the floor
		{"BenchmarkEngineDispatchSharded:ns/op<=500", 0},
		{"BenchmarkEngineDispatchSharded:ns/op<=100", 1}, // above the ceiling
		{"BenchmarkEngineDispatchSharded:events/s>=2.7e6", 0},
		{"BenchmarkEngineDispatchSharded:events/s>=fast", 1}, // unparseable bound
		{"BenchmarkVanished:events/s>=1", 1},                 // benchmark not present
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		if code := run(strings.NewReader(sharded), &out, &errw, tc.require); code != tc.code {
			t.Errorf("run(-require %q) = %d, want %d; stderr: %s", tc.require, code, tc.code, &errw)
		}
		if tc.code == 1 && errw.Len() == 0 {
			t.Errorf("run(-require %q) failed silently", tc.require)
		}
	}
}

// TestParseSplitBenchLine: a benchmark that prints to stdout mid-run
// (the cluster and magecache benches emit a topology line) splits its
// result across lines — the framework flushes the name token, the print
// lands beside it, and the numbers arrive later with no Benchmark
// prefix. The parser must stitch the halves back together (and salvage
// the glued-on topology payload) or the pinned metrics silently vanish
// from the snapshot.
func TestParseSplitBenchLine(t *testing.T) {
	const in = `goos: linux
pkg: mage/cmd/magecache
BenchmarkMagecacheZipf 	cluster-topology: bench=magecache-zipf shards=1 replicas=1 transport=tcp
cluster-topology: bench=magecache-zipf shards=1 replicas=1 transport=tcp
  499714	      2780 ns/op	        95.00 hit-%	    359712 ops/s	       266.0 p99-us
ok  	mage/cmd/magecache	3.1s
`
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("results = %+v, want the split line stitched into one", snap.Results)
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkMagecacheZipf" || r.Iterations != 499714 || r.NsPerOp != 2780 {
		t.Fatalf("stitched result = %+v", r)
	}
	if r.Metrics["ops/s"] != 359712 || r.Metrics["p99-us"] != 266.0 {
		t.Fatalf("stitched metrics = %+v", r.Metrics)
	}
	if r.Pkg != "mage/cmd/magecache" {
		t.Fatalf("stitched pkg = %q", r.Pkg)
	}
	if len(snap.Clusters) != 1 || snap.Clusters[0].Bench != "magecache-zipf" {
		t.Fatalf("clusters = %+v, want the glued-on topology deduplicated to one", snap.Clusters)
	}
	var out, errw bytes.Buffer
	if code := run(strings.NewReader(in), &out, &errw,
		"BenchmarkMagecacheZipf:ops/s>=120000,BenchmarkMagecacheZipf:p99-us"); code != 0 {
		t.Fatalf("pinned metrics on a split line reported missing: %s", &errw)
	}
	// A stray numeric line with no pending name must not fabricate a
	// result.
	snap2, err := parse(strings.NewReader("  499714	 2780 ns/op	 10 ops/s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Results) != 0 {
		t.Fatalf("orphan numeric line fabricated a result: %+v", snap2.Results)
	}
}

// TestParseClusterTopology: the clustered-memnode benches print one
// "cluster-topology:" line per run; the snapshot must record it once
// (deduplicated across timing-refinement reruns) alongside the pinned
// failover metrics.
func TestParseClusterTopology(t *testing.T) {
	const in = `goos: linux
pkg: mage/internal/memcluster
cluster-topology: bench=BenchmarkClusterFailoverRead shards=3 replicas=2 transport=tcp
cluster-topology: bench=BenchmarkClusterFailoverRead shards=3 replicas=2 transport=tcp
BenchmarkClusterFailoverRead-8   	   88767	      6427 ns/op	       966.7 p99-us	    155593 pages/s
`
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Clusters) != 1 {
		t.Fatalf("clusters = %+v, want one deduplicated entry", snap.Clusters)
	}
	ct := snap.Clusters[0]
	if ct.Bench != "BenchmarkClusterFailoverRead" || ct.Shards != 3 || ct.Replicas != 2 || ct.Transport != "tcp" {
		t.Fatalf("topology = %+v", ct)
	}
	if len(snap.Results) != 1 || snap.Results[0].Metrics["p99-us"] != 966.7 {
		t.Fatalf("results = %+v", snap.Results)
	}
	var out, errw bytes.Buffer
	if code := run(strings.NewReader(in), &out, &errw,
		"BenchmarkClusterFailoverRead:p99-us,BenchmarkClusterFailoverRead:pages/s"); code != 0 {
		t.Fatalf("pinned cluster metrics reported missing: %s", &errw)
	}
}
