// Command magevet is the static-analysis suite for this repository: a
// set of passes pinned to bug classes the repo has actually shipped —
// determinism leaks in the discrete-event-simulation core (DESIGN.md
// §7) and correctness hazards in the wire-protocol and host-concurrent
// code (DESIGN.md §12).
//
// The pass catalog lives in one place, the registry (registry.go), and
// the usage text, -list output, and fixture meta-test are all generated
// from it; run `magevet -list` for the passes and the shipped bug each
// one is pinned to. Audited sites are silenced with a trailing or
// preceding comment:
//
//	//magevet:ok <reason>
//
// and the oksuppress pass reports markers that no longer guard any
// finding, so the suppression inventory stays honest.
//
// Usage:
//
//	go run ./cmd/magevet ./...
//	go run ./cmd/magevet -tags magecheck ./internal/...
//	go run ./cmd/magevet -json -passes overflowcmp,lockscope ./internal/memnode
//	go run ./cmd/magevet -write-baseline magevet.baseline ./... # then ratchet it empty
//
// Exit status: 0 clean, 1 findings, 2 load/type-check or flag errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("magevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(stderr, usageText())
		fs.PrintDefaults()
	}
	tagsFlag := fs.String("tags", "", "comma-separated build tags to apply (e.g. magecheck)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	listFlag := fs.Bool("list", false, "print the pass catalog and exit")
	passesFlag := fs.String("passes", "", "comma-separated passes to run (default: all default-on passes; 'all' for every pass)")
	skipFlag := fs.String("skip", "", "comma-separated passes to skip")
	baselineFlag := fs.String("baseline", "", "baseline file of known findings to tolerate (ratchet: shrink it, never grow it)")
	writeBaselineFlag := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		fmt.Fprint(stdout, listText())
		return 0
	}
	passes, err := selectPasses(*passesFlag, *skipFlag)
	if err != nil {
		fmt.Fprintf(stderr, "magevet: %v\n", err)
		return 2
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var tags []string
	if *tagsFlag != "" {
		tags = strings.Split(*tagsFlag, ",")
	}

	diags, nerrs := analyzeRoots(roots, tags, passes, stderr)
	if nerrs > 0 {
		return 2
	}

	// Print module-relative paths; the baseline stores the same form so
	// entries survive checkouts at different absolute paths.
	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].pos.Filename = rel
		}
	}

	if *writeBaselineFlag != "" {
		if err := writeBaseline(*writeBaselineFlag, diags); err != nil {
			fmt.Fprintf(stderr, "magevet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "magevet: wrote %d finding(s) to %s\n", len(diags), *writeBaselineFlag)
		return 0
	}
	if *baselineFlag != "" {
		bl, err := readBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintf(stderr, "magevet: %v\n", err)
			return 2
		}
		diags = bl.filter(diags)
	}

	if *jsonFlag {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "magevet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "magevet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// analyzeRoots loads every package under the given roots, runs the
// enabled passes, and returns the sorted, suppression-filtered
// diagnostics plus the number of load errors.
func analyzeRoots(roots, tags []string, passes []*pass, stderr io.Writer) ([]diagnostic, int) {
	dirs, err := discover(roots)
	if err != nil {
		fmt.Fprintf(stderr, "magevet: %v\n", err)
		return nil, 1
	}
	if len(dirs) == 0 {
		return nil, 0
	}
	l, err := newLoader(dirs[0], tags)
	if err != nil {
		fmt.Fprintf(stderr, "magevet: %v\n", err)
		return nil, 1
	}

	a := newAnalyzer(l, passes)
	nerrs := 0
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			fmt.Fprintf(stderr, "magevet: %v\n", err)
			nerrs++
			continue
		}
		p := l.load(path)
		if p.err != nil {
			fmt.Fprintf(stderr, "magevet: %s: %v\n", path, p.err)
			nerrs++
			continue
		}
		a.analyze(p)
		a.collectAllowlist(p)
	}
	diags := a.filterAllowed()
	if a.enabled[passOKSuppress.name] {
		if coversSuppressible(passes) {
			diags = append(diags, runOKSuppress(a)...)
		} else {
			fmt.Fprintln(stderr, "magevet: oksuppress skipped: staleness needs the full default suite enabled")
		}
	}
	sortDiags(diags)
	return diags, nerrs
}
