// Command magevet is a determinism-focused static-analysis pass for the
// discrete-event-simulation core. It enforces the rules that keep every
// run bit-reproducible (see DESIGN.md, "Determinism rules"):
//
//	rangemap    range over a map inside a simulation package
//	wallclock   time.Now / time.Since / ... anywhere under internal/
//	globalrand  package-level math/rand draws anywhere under internal/
//	goroutine   go statements inside DES packages
//	syncimport  sync / sync/atomic imports inside DES packages
//	floatcmp    float ==/!= in internal/core/{costs,metrics}.go and internal/stats
//
// Audited sites are silenced with a trailing or preceding comment:
//
//	//magevet:ok <reason>
//
// Usage:
//
//	go run ./cmd/magevet ./...
//	go run ./cmd/magevet -tags magecheck ./internal/...
//
// Exit status: 0 clean, 1 findings, 2 load/type-check errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("magevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tagsFlag := fs.String("tags", "", "comma-separated build tags to apply (e.g. magecheck)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}

	var tags []string
	if *tagsFlag != "" {
		tags = strings.Split(*tagsFlag, ",")
	}

	diags, nerrs := analyzeRoots(roots, tags, stderr)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	switch {
	case nerrs > 0:
		return 2
	case len(diags) > 0:
		fmt.Fprintf(stderr, "magevet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// analyzeRoots loads every package under the given roots and returns the
// sorted, allowlist-filtered diagnostics plus the number of load errors.
func analyzeRoots(roots, tags []string, stderr io.Writer) ([]diagnostic, int) {
	dirs, err := discover(roots)
	if err != nil {
		fmt.Fprintf(stderr, "magevet: %v\n", err)
		return nil, 1
	}
	if len(dirs) == 0 {
		return nil, 0
	}
	l, err := newLoader(dirs[0], tags)
	if err != nil {
		fmt.Fprintf(stderr, "magevet: %v\n", err)
		return nil, 1
	}

	a := &analyzer{l: l}
	al := make(allowlist)
	nerrs := 0
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			fmt.Fprintf(stderr, "magevet: %v\n", err)
			nerrs++
			continue
		}
		p := l.load(path)
		if p.err != nil {
			fmt.Fprintf(stderr, "magevet: %s: %v\n", path, p.err)
			nerrs++
			continue
		}
		a.analyze(p)
		a.collectAllowlist(p, al)
	}
	diags := filterAllowed(a.diags, al)
	sortDiags(diags)
	return diags, nerrs
}
