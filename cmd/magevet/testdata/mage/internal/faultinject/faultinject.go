// Package faultinject is a magevet fixture standing in for the fault
// schedule subsystem: deterministic by contract, so it gets the full DES
// treatment — no wall clock, no global randomness, no host concurrency.
package faultinject

import (
	"math/rand"
	"time"
)

// Injector is a stand-in for the real fault injector.
type Injector struct {
	rng *rand.Rand
}

// New builds an injector from an explicit seed. Constructing a private
// seeded generator is the sanctioned pattern and must stay clean.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Bad exercises the checks a fault schedule must never trip: schedules
// are keyed to virtual time and derived seeds, so the host clock and the
// global rand source would silently break grid byte-identity.
func Bad() int64 {
	deadline := time.Now().UnixNano() // want wallclock
	time.Sleep(time.Microsecond)      // want wallclock
	jitter := rand.Int63n(100)        // want globalrand

	done := make(chan struct{})
	go func() { // want goroutine
		close(done)
	}()
	<-done
	return deadline + jitter
}

// Draw uses the injector's private generator: always fine.
func (i *Injector) Draw() float64 { return i.rng.Float64() }
