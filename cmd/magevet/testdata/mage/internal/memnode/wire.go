// Package memnode is a magevet fixture reproducing the shipped PR 5
// region-bounds bug: off+len computed in int64 wraps negative for off
// near MaxInt64, sails under the capacity check, and the out-of-range
// copy kills the server. overflowcmp pins the broken comparison shape;
// the fixed (subtracted) form below it must stay clean.
package memnode

const regionBytes = int64(1) << 30

// regionAt is the bug as shipped: when off is near MaxInt64 the sum
// wraps negative, the check passes, and validation is defeated.
func regionAt(off, length int64) bool {
	if off < 0 || length < 0 {
		return false
	}
	if off+length > regionBytes { // want overflowcmp
		return false
	}
	return true
}

// regionAtFixed is the fix as shipped: bound one operand first, then
// compare the subtracted form, which cannot wrap.
func regionAtFixed(off, length int64) bool {
	if off < 0 || length < 0 || length > regionBytes {
		return false
	}
	return off <= regionBytes-length
}

// fits shows the unsigned variant: uint16 wire fields wrap modulo
// 2^16, so the sum can come back small and pass.
func fits(hdr, payload, max uint16) bool {
	return hdr+payload <= max // want overflowcmp
}

// fitsFixed is the clean unsigned form.
func fitsFixed(hdr, payload, max uint16) bool {
	return payload <= max && hdr <= max-payload
}

const hdrBytes, crcBytes = 16, 4

// constSums are exempt: constant overflow is a compile error, not a
// silent wrap, so a folded sum cannot defeat the check.
func constSums(n int) bool {
	return n > hdrBytes+crcBytes
}
