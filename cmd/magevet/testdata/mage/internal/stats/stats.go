// Package stats is a magevet fixture: every file in internal/stats is
// covered by the floatcmp check.
package stats

// IsExactMean is flagged anywhere in this package.
func IsExactMean(m, want float64) bool {
	return m == want // want floatcmp
}
