// Package parexp is a magevet fixture pinning the package-wide host
// concurrency allowance: go statements and sync imports carry no
// findings here — the allowance is a rule in the checker, not a
// scattering of magevet:ok comments. The wall-clock and global-rand
// rules still apply (see Stamp).
package parexp

import (
	"sync"
	"time"
)

// Fan runs fn n times across goroutines; legal in this package only.
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Stamp shows the allowance is scoped to concurrency: clock reads are
// still flagged even here.
func Stamp() time.Time {
	return time.Now() // want wallclock
}
