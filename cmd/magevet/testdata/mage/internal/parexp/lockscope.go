// lockscope fixtures, pinned to the PR 5 Client.do bug: the connection
// lock held across the blocking wire exchange, and the retried call
// struct mutated in place while a poisoned stream's writer could still
// read it. parexp holds the host-concurrency allowance, so the lock
// and channel use themselves are legal — what lockscope polices is
// what happens while a lock is held.
package parexp

import (
	"net"
	"sync"
)

type courier struct {
	mu    sync.Mutex
	conn  net.Conn
	resps chan []byte
}

// exchange holds the lock across the blocking socket write — the shape
// that serialized every caller behind one slow peer.
func (c *courier) exchange(buf []byte) {
	c.mu.Lock()
	_, _ = c.conn.Write(buf) // want lockscope
	c.mu.Unlock()
}

// exchangeFixed snapshots under the lock and touches the wire after
// releasing it — clean.
func (c *courier) exchangeFixed(buf []byte) {
	c.mu.Lock()
	pending := append([]byte(nil), buf...)
	c.mu.Unlock()
	_, _ = c.conn.Write(pending)
}

// post blocks on a channel send with the lock held via defer.
func (c *courier) post(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resps <- b // want lockscope
}

// take blocks on a channel receive with the lock held via defer.
func (c *courier) take() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.resps // want lockscope
}

// drain parks on another goroutine's progress while holding the lock.
func (c *courier) drain(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want lockscope
	c.mu.Unlock()
}

// await is clean: sync.Cond.Wait atomically releases the mutex it
// waits under — holding that lock is its contract, not a bug.
func (c *courier) await(cond *sync.Cond) {
	cond.L.Lock()
	for c.resps == nil {
		cond.Wait()
	}
	cond.L.Unlock()
}

type call struct {
	seq  uint64
	done chan error
}

// redo reproduces the retry hazard: req is handed to a consumer inside
// the loop, then mutated in place for the next attempt while the
// previous consumer may still be reading it.
func (c *courier) redo(reqs chan<- *call, attempts int) {
	req := &call{done: make(chan error, 1)}
	for i := 0; i < attempts; i++ {
		reqs <- req
		req.seq++ // want lockscope
	}
}

// redoFixed makes the per-iteration copy: each attempt hands off a
// fresh value, so no consumer ever sees a later attempt's mutation.
func (c *courier) redoFixed(reqs chan<- *call, attempts int) {
	for i := 0; i < attempts; i++ {
		req := &call{seq: uint64(i), done: make(chan error, 1)}
		reqs <- req
	}
}
