// Package sim is a magevet fixture standing in for a DES-core package.
// Lines carrying a want comment must produce exactly the named
// diagnostics; every other line must be clean.
package sim

import (
	"sync"        // want syncimport
	"sync/atomic" // want syncimport
)

var mu sync.Mutex

var counter int64

// Run exercises the goroutine and rangemap checks.
func Run(procs map[string]int) int {
	go func() { // want goroutine
		mu.Lock()
		defer mu.Unlock()
		atomic.AddInt64(&counter, 1)
	}()

	total := 0
	for _, n := range procs { // want rangemap
		total += n
	}

	// A reasoned marker silences the finding entirely.
	for name := range procs { //magevet:ok fixture: names are discarded, order cannot matter
		_ = name
	}

	// A bare marker is itself a finding and silences nothing.
	for name := range procs { /*magevet:ok*/ // want rangemap badallow
		_ = name
	}

	// Slice iteration is always fine.
	for i, v := range []int{1, 2, 3} {
		total += i * v
	}
	return total
}
