// Package ioerr is a magevet fixture for errdrop: error returns
// silently discarded in internal packages. The audited escape hatch is
// an explicit `_ =` — it shows the author saw the error — and writers
// documented never to fail are exempt.
package ioerr

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Dump exercises the flagged and exempt forms side by side.
func Dump(f *os.File, w io.Writer) {
	f.Close()       // want errdrop
	defer f.Close() // want errdrop

	_ = f.Close() // explicit discard: audited, clean

	var buf bytes.Buffer
	buf.WriteString("ok")           // bytes.Buffer writes are error-free
	fmt.Fprintf(&buf, "n=%d", 1)    // in-memory writer
	fmt.Println("done")             // stdout diagnostics
	fmt.Fprintln(os.Stderr, "warn") // process stderr
	fmt.Fprintln(io.Discard, "no")  // explicit discard sink

	fmt.Fprintln(w, "payload") // want errdrop
}
