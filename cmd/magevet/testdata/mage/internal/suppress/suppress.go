// Package suppress is a magevet fixture for oksuppress: the pass that
// audits the //magevet:ok inventory itself. A marker is live only
// while a suppressible check still fires on its line (or the line
// below); a marker that outlives its finding is reported and cannot be
// silenced by another marker.
package suppress

import "time"

// Epoch carries a live, audited wall-clock read: the marker guards a
// real finding, so neither wallclock nor oksuppress fires.
func Epoch() int64 {
	return time.Now().UnixNano() //magevet:ok fixture: audited host-clock read
}

// Stale keeps a marker whose guarded finding has been edited away —
// the marker itself is now the finding.
func Stale() int64 {
	return 42 //magevet:ok the wall-clock read here was removed // want oksuppress
}
