package suppress

import "testing"

// Markers in test files are always stale: magevet never analyzes test
// code, so they guard nothing and only train readers to ignore the
// marker.
func TestEpoch(t *testing.T) {
	if Epoch() == 0 { //magevet:ok wall-clock in a test // want oksuppress
		t.Fatal("zero epoch")
	}
}
