// Package workload is a magevet fixture for a simulation-adjacent
// internal package: wall-clock, global-rand, and host-concurrency rules
// all apply — only internal/parexp holds a concurrency allowance.
package workload

import (
	"math/rand"
	"time"
)

// Stamp reads the host clock twice — both calls flagged.
func Stamp() int64 {
	start := time.Now()    // want wallclock
	d := time.Since(start) // want wallclock
	return int64(d)
}

// Draw uses the global rand source — flagged; the constructor is not.
func Draw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + rand.Intn(10) // want globalrand
}

// Spawn is flagged: host concurrency outside internal/parexp, even in
// non-DES internal packages.
func Spawn(f func()) {
	go f() // want goroutine
}
