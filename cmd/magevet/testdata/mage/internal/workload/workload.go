// Package workload is a magevet fixture for a simulation-adjacent
// internal package: wall-clock and global-rand rules apply, but the DES
// concurrency rules (goroutine, syncimport) do not.
package workload

import (
	"math/rand"
	"time"
)

// Stamp reads the host clock twice — both calls flagged.
func Stamp() int64 {
	start := time.Now()    // want wallclock
	d := time.Since(start) // want wallclock
	return int64(d)
}

// Draw uses the global rand source — flagged; the constructor is not.
func Draw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + rand.Intn(10) // want globalrand
}

// Spawn is legal here: workload generators are not DES packages.
func Spawn(f func()) {
	go f()
}
