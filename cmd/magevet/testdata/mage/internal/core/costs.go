// Package core is a magevet fixture for the floatcmp check: exact float
// equality is flagged in costs.go and metrics.go only.
package core

// SameCost compares two cost figures exactly — flagged.
func SameCost(a, b float64) bool {
	return a == b // want floatcmp
}

// DiffCost is the != spelling — also flagged.
func DiffCost(a, b float32) bool {
	return a != b // want floatcmp
}

// SamePages compares integers — never flagged.
func SamePages(a, b int) bool {
	return a == b
}
