package core

// ZeroRate tests a float against a literal — flagged in metrics.go.
func ZeroRate(r float64) bool {
	return r == 0 // want floatcmp
}
