package core

import "sync" // want syncimport

// NodeLock guards shared tenant state with a host mutex — the DES core is
// single-threaded by construction, so the import itself is the finding.
type NodeLock struct {
	mu sync.Mutex
}

// Lock exercises the mutex so the import is live.
func (l *NodeLock) Lock() { l.mu.Lock() }
