package core

import (
	"math/rand"
	"time"
)

// Tenant mirrors the production Node/Tenant split: per-application state
// whose page set the shared node scans for victims.
type Tenant struct {
	ID    int
	pages map[uint64]bool
}

// Node owns state shared across tenants.
type Node struct {
	tenants []*Tenant
	byName  map[string]*Tenant
}

// VictimScan walks a tenant's resident map directly — flagged twice:
// rangemap on the iteration, mapdrain on the unsorted collection.
func (n *Node) VictimScan(t *Tenant) []uint64 {
	var out []uint64
	for pg := range t.pages { // want rangemap
		out = append(out, pg) // want mapdrain
	}
	return out
}

// LookupAll walks the tenant name index — flagged on both the range
// and the order-accumulating append.
func (n *Node) LookupAll() []*Tenant {
	var out []*Tenant
	for _, t := range n.byName { // want rangemap
		out = append(out, t) // want mapdrain
	}
	return out
}

// Tenants iterates the id-ordered slice — never flagged.
func (n *Node) Tenants() []*Tenant { return n.tenants }

// JitterSeed draws from the global rand source — flagged.
func JitterSeed() int64 {
	return rand.Int63() // want globalrand
}

// DegradedUntil reads the host clock — flagged.
func DegradedUntil() int64 {
	return time.Now().UnixNano() // want wallclock
}

// SpawnEvictor runs a host goroutine inside the DES core — flagged.
func (n *Node) SpawnEvictor(f func()) {
	go f() // want goroutine
}

// SameRatio holds float equality outside costs.go/metrics.go, where the
// floatcmp check does not apply — not flagged.
func SameRatio(a, b float64) bool {
	return a == b
}
