package core

// ExactSplit holds float equality in a file the floatcmp check does not
// cover — not flagged.
func ExactSplit(f float64) bool {
	return f == 0.5
}
