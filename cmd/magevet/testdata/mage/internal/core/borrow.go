// A magevet fixture standing in for the cross-node borrow ledger: a
// host node tracks pages it hosts for pressured neighbours in a map,
// and reclaim must walk that map deterministically. Pins the suite on
// the borrow idioms the rack-scale refactor introduced.
package core

import "sort"

type borrowLedger struct {
	// hosted maps borrowed page id -> owner node index.
	hosted map[uint64]int
}

// reclaimOrder drains the ledger with the sort promise honored: the
// rangemap marker is live and the sort is right below, so reclaim
// sweeps pages in the same order every run.
func (b *borrowLedger) reclaimOrder() []uint64 {
	var pages []uint64
	for p := range b.hosted { //magevet:ok keys are sorted below
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// reclaimUnsorted makes the same promise but dropped the sort: a
// reclaim sweep in map order would return pages to owners in a
// different order every run, shifting every downstream fault count.
func (b *borrowLedger) reclaimUnsorted() []uint64 {
	var pages []uint64
	for p := range b.hosted { //magevet:ok keys are sorted below
		pages = append(pages, p) // want mapdrain
	}
	return pages
}

// evictVictim picks "any" victim straight out of the map — the classic
// borrow bug: which page bounces back to its owner depends on map
// iteration order.
func (b *borrowLedger) evictVictim() (uint64, bool) {
	for p := range b.hosted { // want rangemap
		return p, true
	}
	return 0, false
}
