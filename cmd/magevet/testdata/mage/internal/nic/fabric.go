// Package nic is a magevet fixture standing in for the fabric layer:
// per-link state keyed by (src, dst) node pairs, drained by the DES.
// It pins the suite on the idioms the rack-scale refactor introduced —
// link-map iteration feeding engine state, wall-clock temptation in
// delay math, and host goroutines for "async" delivery — so desPackages
// coverage of the fabric cannot regress without a fixture diff.
package nic

import "time"

type pair struct{ src, dst int }

type link struct {
	queuedBytes int64
	depart      int64
}

type fabric struct {
	links map[pair]*link
	now   int64
}

// drainAll releases every queued transfer. Iterating the link map while
// mutating engine state is order-dependent: two runs release links in
// different orders and congestion wakeups interleave differently.
func (f *fabric) drainAll() {
	for _, l := range f.links { // want rangemap
		f.now += l.queuedBytes
		l.queuedBytes = 0
	}
}

// queuedTotal aggregates a commutative sum; the reasoned marker
// silences the finding.
func (f *fabric) queuedTotal() int64 {
	var total int64
	for _, l := range f.links { //magevet:ok fixture: commutative sum, order cannot matter
		total += l.queuedBytes
	}
	return total
}

// stampDeparture must use virtual time; the host clock would make link
// delays differ run to run.
func (f *fabric) stampDeparture(l *link) {
	l.depart = time.Now().UnixNano() // want wallclock
}

// deliverAsync forks a host goroutine inside the DES — a borrow grant
// delivered this way would race the single-threaded engine.
func (f *fabric) deliverAsync(l *link) {
	go func() { // want goroutine
		l.queuedBytes = 0
	}()
}
