// Package digest is a magevet fixture for mapdrain and its interplay
// with rangemap suppressions: "keys are sorted below" is a promise a
// marker makes, and mapdrain mechanically verifies it — reporting at
// the append site, a different line from the suppressed range, so the
// marker cannot mask a promise that is no longer kept.
package digest

import "sort"

// Keys drains the map with the promise honored: the rangemap marker is
// live (it guards a real finding) and the sort is right below.
func Keys(set map[string]int) []string {
	var keys []string
	for k := range set { //magevet:ok keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BrokenPromise carries the same suppression, but the sort it promised
// is gone: mapdrain fires at the append site.
func BrokenPromise(set map[string]int) []string {
	var keys []string
	for k := range set { //magevet:ok keys are sorted below
		keys = append(keys, k) // want mapdrain
	}
	return keys
}

// PerIteration rebuilds the slice inside the range body, so it cannot
// accumulate iteration order — only the range itself is flagged.
func PerIteration(set map[string]int) int {
	n := 0
	for k := range set { // want rangemap
		parts := []string{}
		parts = append(parts, k)
		n += len(parts)
	}
	return n
}
