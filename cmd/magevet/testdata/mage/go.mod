module mage

go 1.22
