// Command tool is a magevet fixture for code outside internal/: the
// determinism rules do not apply here at all.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Intn(10))
	for k, v := range map[string]int{"a": 1} {
		fmt.Println(k, v)
	}
	fmt.Println(names(map[string]int{"a": 1}))
}

// names shows the one determinism rule that does follow code out of
// internal/: an unsorted map drain still reaches stdout.
func names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want mapdrain
	}
	return out
}
