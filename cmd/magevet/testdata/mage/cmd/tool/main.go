// Command tool is a magevet fixture for code outside internal/: the
// determinism rules do not apply here at all.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Intn(10))
	for k, v := range map[string]int{"a": 1} {
		fmt.Println(k, v)
	}
}
