package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonDiag is the stable wire form of one finding, used both for -json
// output and for baseline files.
type jsonDiag struct {
	File  string `json:"file"`
	Line  int    `json:"line,omitempty"` // omitted in baselines: lines drift, findings persist
	Col   int    `json:"col,omitempty"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// writeJSON emits the findings as a JSON array (stable order: the
// caller sorts).
func writeJSON(w io.Writer, diags []diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column, Check: d.check, Msg: d.msg})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// baseline is a tolerated-findings set keyed by (file, check, msg) —
// deliberately not by line, so unrelated edits above a baselined
// finding do not resurrect it. The workflow is a ratchet: a new pass
// lands with `-write-baseline`, the debt is burned down, and CI runs
// with no baseline at all (see DESIGN.md §12).
type baseline struct {
	keys map[string]bool
}

func baselineKey(file, check, msg string) string {
	return file + "\x00" + check + "\x00" + msg
}

// readBaseline loads a baseline file written by -write-baseline.
func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []jsonDiag
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &baseline{keys: make(map[string]bool, len(entries))}
	for _, e := range entries {
		b.keys[baselineKey(e.File, e.Check, e.Msg)] = true
	}
	return b, nil
}

// writeBaseline records the current findings (line-less) as the new
// tolerated set.
func writeBaseline(path string, diags []diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{File: d.pos.Filename, Check: d.check, Msg: d.msg})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filter drops findings present in the baseline.
func (b *baseline) filter(diags []diagnostic) []diagnostic {
	var out []diagnostic
	for _, d := range diags {
		if b.keys[baselineKey(d.pos.Filename, d.check, d.msg)] {
			continue
		}
		out = append(out, d)
	}
	return out
}
