package main

import "go/ast"

var passGlobalRand = &pass{
	name:      "globalrand",
	doc:       "package-level math/rand draws anywhere under internal/",
	bug:       "pre-seed: global-source rand draws breaking seed reproducibility",
	defaultOn: true,
	applies:   appliesInternal,
	inspect:   globalRandInspect,
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func globalRandInspect(cx *passCtx, n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	pkg, name := calleePkgFunc(cx.p, call)
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name] {
		cx.report(call.Pos(),
			"rand.%s draws from the global source: thread a seeded *rand.Rand from config", name)
	}
}
