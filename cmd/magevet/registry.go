package main

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// pkgScope is the package-level context a pass uses to decide whether
// it applies. rel is the module-relative import path ("" for the module
// root package).
type pkgScope struct {
	rel        string
	isInternal bool
	isDES      bool
}

// pass is one named analysis in the suite. The registry below is the
// single source of truth: usage text, -list output, pass selection, and
// the fixture meta-test are all generated from it, so the documented
// check list can never drift from the implemented one again.
type pass struct {
	name string
	doc  string // one-line summary, rendered into usage and -list
	bug  string // the shipped bug this pass is pinned to (see DESIGN.md §12)

	// defaultOn selects the pass when no -passes flag is given. New
	// passes land defaultOn with a baseline file, then the baseline is
	// ratcheted to empty (see DESIGN.md §12).
	defaultOn bool

	// bypassAllow marks meta passes whose diagnostics ignore
	// //magevet:ok line suppressions: they audit the suppressions
	// themselves, so a suppression must not be able to silence them.
	bypassAllow bool

	// applies reports whether the pass runs on a package; nil means
	// every package in the module, including cmd/.
	applies func(s pkgScope) bool

	// inspect is invoked for every AST node of every file of an
	// applicable package by the shared walker. nil for passes that are
	// not node-driven (badallow and oksuppress hook the suppression
	// inventory instead).
	inspect func(cx *passCtx, n ast.Node)
}

// registry lists every pass in display order. It is a slice, not a map:
// iteration order reaches user-visible output.
var registry = []*pass{
	passRangeMap,
	passWallClock,
	passGlobalRand,
	passGoroutine,
	passSyncImport,
	passFloatCmp,
	passOverflowCmp,
	passLockScope,
	passMapDrain,
	passErrDrop,
	passBadAllow,
	passOKSuppress,
}

// desPackages are the discrete-event-simulation packages (module-relative)
// that must stay single-threaded virtual-time code: no goroutines, no host
// sync primitives, no map-iteration order reaching engine state.
var desPackages = map[string]bool{
	"internal/sim":         true,
	"internal/core":        true,
	"internal/faultinject": true,
	"internal/pgtable":     true,
	"internal/tlbsim":      true,
	"internal/apic":        true,
	"internal/nic":         true,
	"internal/memnode":     true,
	"internal/swapspace":   true,
	"internal/buddy":       true,
	"internal/lru":         true,
	"internal/palloc":      true,
	"internal/prefetch":    true,
	"internal/invariant":   true,
}

// hostConcurrencyPackages are the internal packages granted a package-wide
// allowance for host concurrency (go statements, sync imports). The grant
// is a rule here rather than scattered //magevet:ok comments because the
// whole package exists to run host goroutines: parexp fans independent
// experiment cells out across workers, each on its own engine, and its
// API is the only sanctioned bridge between host parallelism and the
// simulation. Every other internal package stays single-threaded.
var hostConcurrencyPackages = map[string]bool{
	"internal/parexp": true,
	// cmd/ packages sit outside the internal/ concurrency ban by
	// construction; magecache is listed so the allowance is explicit
	// for the one binary whose whole job is host-concurrent serving.
	"cmd/magecache": true,
}

// lockscopePackages are the packages where mutexes legitimately appear —
// parexp by package-wide allowance, memnode, memcluster, upager, and
// stats via per-line audits — and where lockscope therefore polices
// what happens while a lock is held.
var lockscopePackages = map[string]bool{
	"internal/parexp":     true,
	"internal/memnode":    true,
	"internal/memcluster": true,
	"internal/stats":      true,
	"internal/upager":     true,
}

func appliesInternal(s pkgScope) bool { return s.isInternal }

// passByName resolves one pass name, with a did-you-mean error.
func passByName(name string) (*pass, error) {
	for _, p := range registry {
		if p.name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range registry {
		names = append(names, p.name)
	}
	return nil, fmt.Errorf("unknown pass %q (have %s)", name, strings.Join(names, ", "))
}

// selectPasses resolves the -passes / -skip flags into the enabled pass
// set, in registry order. An empty passesFlag means the default set.
func selectPasses(passesFlag, skipFlag string) ([]*pass, error) {
	chosen := make(map[string]bool)
	if passesFlag == "" || passesFlag == "all" {
		for _, p := range registry {
			if passesFlag == "all" || p.defaultOn {
				chosen[p.name] = true
			}
		}
	} else {
		for _, name := range strings.Split(passesFlag, ",") {
			p, err := passByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			chosen[p.name] = true
		}
	}
	if skipFlag != "" {
		for _, name := range strings.Split(skipFlag, ",") {
			p, err := passByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			delete(chosen, p.name)
		}
	}
	var out []*pass
	for _, p := range registry {
		if chosen[p.name] {
			out = append(out, p)
		}
	}
	return out, nil
}

// coversSuppressible reports whether the enabled set includes every
// default-on suppressible pass. oksuppress only audits staleness when
// this holds: with part of the suite disabled, a suppression guarding a
// disabled check would look stale without being so.
func coversSuppressible(enabled []*pass) bool {
	on := make(map[string]bool, len(enabled))
	for _, p := range enabled {
		on[p.name] = true
	}
	for _, p := range registry {
		if p.defaultOn && !p.bypassAllow && !on[p.name] {
			return false
		}
	}
	return true
}

// usageText renders the pass catalog from the registry.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: magevet [flags] [packages]\n\npasses (default-on marked *):\n")
	for _, p := range registry {
		mark := " "
		if p.defaultOn {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s %-12s %s\n", mark, p.name, p.doc)
	}
	b.WriteString("\nAudited sites are silenced with //magevet:ok <reason> trailing the\nline, or on a standalone comment line directly above it; one marker\nguards exactly one line. oksuppress reports markers that no longer\nguard any finding.\n\nflags:\n")
	return b.String()
}

// listText renders the detailed catalog for -list, including the
// shipped bug each pass is pinned to.
func listText() string {
	var b strings.Builder
	for _, p := range registry {
		def := "off by default"
		if p.defaultOn {
			def = "default on"
		}
		fmt.Fprintf(&b, "%-12s %s (%s)\n", p.name, p.doc, def)
		if p.bug != "" {
			fmt.Fprintf(&b, "%-12s pinned to: %s\n", "", p.bug)
		}
	}
	return b.String()
}

// sortDiags orders diagnostics by file, then position, for stable output.
func sortDiags(diags []diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
