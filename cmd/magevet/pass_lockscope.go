package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var passLockScope = &pass{
	name:      "lockscope",
	doc:       "blocking calls under a held mutex; in-place mutation of retried state",
	bug:       "PR 5: Client.do held the connection lock across the blocking exchange and mutated the call struct between retries while a poisoned stream's writer could still read it",
	defaultOn: true,
	applies:   func(s pkgScope) bool { return lockscopePackages[s.rel] },
	inspect:   lockScopeInspect,
}

func lockScopeInspect(cx *passCtx, n ast.Node) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		lockScopeBlock(cx, n)
	case *ast.ForStmt:
		lockScopeRetryLoop(cx, n)
	}
}

// lockScopeBlock scans one statement list linearly, tracking which
// mutexes are held, and flags blocking constructs inside the held
// span. Lock state is updated as the walk encounters nested
// Lock/Unlock statements in source order — a branch-aware CFG is out
// of scope, so an unlock inside an early-exit branch disarms the rest
// of the span (under-reporting, never false alarms from the re-lock
// idiom).
func lockScopeBlock(cx *passCtx, blk *ast.BlockStmt) {
	var held []string // lock expressions currently held, in acquire order
	release := func(name string) {
		for i, h := range held {
			if h == name {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	for _, st := range blk.List {
		if name, kind := classifyLockStmt(cx, st); kind != lockNone {
			switch kind {
			case lockAcquire:
				held = append(held, name)
			case lockRelease:
				release(name)
			case lockDeferRelease:
				// still held for the rest of the function
			}
			continue
		}
		if len(held) == 0 {
			continue
		}
		ast.Inspect(st, func(m ast.Node) bool {
			if s, ok := m.(ast.Stmt); ok {
				if name, kind := classifyLockStmt(cx, s); kind != lockNone {
					switch kind {
					case lockAcquire:
						held = append(held, name)
					case lockRelease:
						release(name)
					}
					return false
				}
			}
			if len(held) == 0 {
				return true // keep walking: the lock may be re-taken
			}
			locks := strings.Join(held, ", ")
			switch m := m.(type) {
			case *ast.FuncLit:
				// Deferred and goroutine bodies run outside the span;
				// they get their own block scan.
				return false
			case *ast.SelectStmt:
				if !selectHasDefault(m) {
					cx.report(m.Pos(), "blocking select under %s: release the lock before waiting", locks)
				}
				return false
			case *ast.SendStmt:
				cx.report(m.Pos(), "channel send under %s: release the lock before blocking", locks)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					cx.report(m.Pos(), "channel receive under %s: release the lock before blocking", locks)
				}
			case *ast.RangeStmt:
				if tv, ok := cx.p.Info.Types[m.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						cx.report(m.Pos(), "range over channel under %s: release the lock before blocking", locks)
					}
				}
			case *ast.CallExpr:
				if desc := blockingCallDesc(cx, m); desc != "" {
					cx.report(m.Pos(), "%s under %s: the lock is held across a blocking call", desc, locks)
				}
			}
			return true
		})
	}
}

const (
	lockNone = iota
	lockAcquire
	lockRelease
	lockDeferRelease
)

// classifyLockStmt recognizes x.Lock() / x.RLock() / x.Unlock() /
// x.RUnlock() statements (and deferred unlocks) on sync package
// mutexes, returning the lock's receiver expression as its name.
func classifyLockStmt(cx *passCtx, st ast.Stmt) (string, int) {
	var call *ast.CallExpr
	deferred := false
	switch s := st.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call, deferred = s.Call, true
	}
	if call == nil {
		return "", lockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, ok := cx.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	name := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if deferred {
			return "", lockNone
		}
		return name, lockAcquire
	case "Unlock", "RUnlock":
		if deferred {
			return name, lockDeferRelease
		}
		return name, lockRelease
	}
	return "", lockNone
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingNetFuncs are the method/function names per package that park
// the calling goroutine on I/O or another goroutine's progress.
// Non-blocking accessors (SetDeadline, LocalAddr, ...) are deliberately
// absent.
var blockingFuncs = map[string]map[string]bool{
	"sync":  {"Wait": true},
	"time":  {"Sleep": true},
	"net":   {"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true, "Accept": true, "AcceptTCP": true, "Dial": true, "DialTimeout": true, "Listen": true},
	"bufio": {"Read": true, "ReadByte": true, "ReadRune": true, "ReadString": true, "ReadBytes": true, "ReadSlice": true, "Peek": true, "Write": true, "WriteString": true, "Flush": true},
	"io":    {"ReadFull": true, "ReadAtLeast": true, "Copy": true, "CopyN": true, "ReadAll": true},
}

// blockingCallDesc reports a human-readable description if the call can
// block on I/O, a timer, or another goroutine; "" otherwise.
func blockingCallDesc(cx *passCtx, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := cx.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	if !blockingFuncs[pkg][fn.Name()] {
		return ""
	}
	// sync.Cond.Wait atomically releases the mutex it waits under —
	// holding that lock is its contract, not a bug.
	if pkg == "sync" && fn.Name() == "Wait" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if recv := sig.Recv().Type(); recv != nil && recv.String() == "*sync.Cond" {
				return ""
			}
		}
	}
	return "blocking " + pkg + " call " + types.ExprString(call.Fun)
}

// lockScopeRetryLoop flags the Client.do bug shape: a variable declared
// outside a retry loop whose address is handed off inside the loop (as
// a call argument or channel send) and whose fields are then mutated in
// place on later iterations — the receiver of the handoff (a writer
// goroutine draining a poisoned stream, a pending-call table) may still
// be reading the previous attempt's state. The fix is a per-iteration
// copy: declare the mutated value inside the loop.
func lockScopeRetryLoop(cx *passCtx, loop *ast.ForStmt) {
	handed := make(map[types.Object]bool)
	ast.Inspect(loop.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			for _, arg := range m.Args {
				if obj := handedObj(cx, arg); obj != nil {
					handed[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := handedObj(cx, m.Value); obj != nil {
				handed[obj] = true
			}
		}
		return true
	})
	if len(handed) == 0 {
		return
	}
	ast.Inspect(loop.Body, func(m ast.Node) bool {
		var lhss []ast.Expr
		switch s := m.(type) {
		case *ast.AssignStmt:
			lhss = s.Lhs
		case *ast.IncDecStmt:
			lhss = []ast.Expr{s.X}
		default:
			return true
		}
		for _, lhs := range lhss {
			base := mutationBase(lhs)
			if base == nil {
				continue
			}
			obj := cx.p.Info.Uses[base]
			if obj == nil || !handed[obj] || obj.Pos() >= loop.Pos() {
				continue
			}
			cx.report(lhs.Pos(),
				"%s is handed off inside this loop and mutated in place across iterations: a previous attempt's consumer may still read it — make a per-iteration copy", base.Name)
		}
		return true
	})
}

// handedObj returns the object of an argument that hands off shared
// mutable state: a pointer-typed identifier, or &ident of any type.
func handedObj(cx *passCtx, arg ast.Expr) types.Object {
	arg = ast.Unparen(arg)
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
			return cx.p.Info.Uses[id]
		}
		return nil
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := cx.p.Info.Uses[id]
	if obj == nil || obj.Type() == nil {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return obj
	}
	return nil
}

// mutationBase returns the root identifier of a field or element
// mutation (p.f = v, p.f.g = v, p[i] = v); nil for plain identifier
// rebinding, which carries no aliasing hazard.
func mutationBase(lhs ast.Expr) *ast.Ident {
	lhs = ast.Unparen(lhs)
	mutated := false
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			lhs, mutated = e.X, true
		case *ast.IndexExpr:
			lhs, mutated = e.X, true
		case *ast.StarExpr:
			lhs, mutated = e.X, true
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			if mutated {
				return e
			}
			return nil
		default:
			return nil
		}
	}
}
