package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

var passOverflowCmp = &pass{
	name:      "overflowcmp",
	doc:       "a+b > c bounds comparisons whose sum can wrap past the check",
	bug:       "PR 5: regionAt/regionForBatch accepted off+len that wrapped negative near MaxInt64, passed validation, and killed the server in chunkedCopy",
	defaultOn: true,
	applies:   appliesInternal,
	inspect:   overflowCmpInspect,
}

// overflowCmpInspect flags order comparisons where one side is an
// integer addition: for attacker- or wire-controlled sizes and offsets,
// a+b > c silently wraps when a+b exceeds the integer range, so the
// out-of-bounds value passes the check. The overflow-safe form keeps
// the arithmetic on the known-small side: a > c-b (after checking
// b <= c). Sums the compiler constant-folds are exempt — constant
// overflow is a compile error.
func overflowCmpInspect(cx *passCtx, n ast.Node) {
	e, ok := n.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch e.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	for _, side := range [...]ast.Expr{e.X, e.Y} {
		sum, ok := ast.Unparen(side).(*ast.BinaryExpr)
		if !ok || sum.Op != token.ADD {
			continue
		}
		tv, ok := cx.p.Info.Types[sum]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		cx.report(sum.Pos(),
			"%s can wrap and defeat this bounds check: compare the overflow-safe subtracted form instead (a > c-b after bounding b)",
			types.ExprString(sum))
	}
}
