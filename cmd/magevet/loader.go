package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader discovers, parses, and type-checks the packages of one module
// using only the standard library (go/build for file selection, a source
// importer for the standard library, and recursive loading for
// intra-module imports).
type loader struct {
	fset   *token.FileSet
	ctxt   build.Context
	module string // module path from go.mod
	root   string // absolute module root directory
	std    types.Importer
	pkgs   map[string]*pkgInfo // keyed by import path
	errs   []error
}

// pkgInfo is one loaded package.
type pkgInfo struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	TestFiles  []string // _test.go file names: scanned for magevet:ok markers only
	Types      *types.Package
	Info       *types.Info
	loading    bool
	err        error
}

// newLoader builds a loader for the module containing dir. Extra build
// tags (e.g. "magecheck") select tag-gated files.
func newLoader(dir string, tags []string) (*loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.BuildTags = append(append([]string{}, ctxt.BuildTags...), tags...)
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		ctxt:   ctxt,
		module: module,
		root:   root,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*pkgInfo),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("magevet: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("magevet: no go.mod found above %s", abs)
		}
	}
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("magevet: %s is outside module %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps an intra-module import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// Import implements types.Importer: intra-module imports load
// recursively; everything else resolves from the standard library source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p := l.load(path)
		if p.err != nil {
			return nil, p.err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at an intra-module import
// path, caching the result.
func (l *loader) load(path string) *pkgInfo {
	if p, ok := l.pkgs[path]; ok {
		if p.loading {
			p.err = fmt.Errorf("magevet: import cycle through %s", path)
		}
		return p
	}
	p := &pkgInfo{ImportPath: path, Dir: l.dirFor(path), loading: true}
	l.pkgs[path] = p
	defer func() { p.loading = false }()

	bp, err := l.ctxt.ImportDir(p.Dir, 0)
	if err != nil {
		p.err = err
		return p
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	p.TestFiles = append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...)
	sort.Strings(p.TestFiles)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		p.err = fmt.Errorf("magevet: no Go files in %s", p.Dir)
		return p
	}

	p.Info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	p.Types, err = conf.Check(path, l.fset, p.Files, p.Info)
	if err != nil {
		p.err = err
	}
	return p
}

// discover returns the directories under each root that contain Go
// packages. A root of the form "dir/..." walks recursively; a plain
// directory is taken alone. Directories named testdata, vendor, or
// starting with "." or "_" are skipped during recursive walks.
func discover(roots []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		abs, err := filepath.Abs(d)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, r := range roots {
		base, recursive := r, false
		if strings.HasSuffix(r, "/...") {
			base, recursive = strings.TrimSuffix(r, "/..."), true
		} else if r == "..." {
			base, recursive = ".", true
		}
		if base == "" {
			base = "."
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
