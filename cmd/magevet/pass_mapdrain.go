package main

import (
	"go/ast"
	"go/types"
	"strings"
)

var passMapDrain = &pass{
	name:      "mapdrain",
	doc:       "map keys/values collected into a slice with no sort before use",
	bug:       "pre-seed hole rangemap misses: a 'sorted below' suppression outliving the sort it promised",
	defaultOn: true,
	// Everywhere, including cmd/: rangemap stops at internal/, but an
	// unsorted key drain in a command still reaches stdout, JSON
	// output, or a results file.
	inspect: mapDrainInspect,
}

// mapDrainInspect audits the collect-then-iterate idiom: draining map
// keys (or values) into a slice is only deterministic if the slice is
// sorted before anything order-sensitive consumes it. rangemap flags
// the range itself and is routinely suppressed with "keys are sorted
// below" — this pass mechanically verifies that promise inside the
// function, reporting at the append site (not the range line) so a
// rangemap suppression cannot mask it.
func mapDrainInspect(cx *passCtx, n ast.Node) {
	fd, ok := n.(*ast.FuncDecl)
	if !ok || fd.Body == nil {
		return
	}
	type site struct {
		obj   types.Object // the slice collecting map iteration order
		pos   ast.Node     // the append assignment
		slice string
	}
	var sites []site

	ast.Inspect(fd.Body, func(m ast.Node) bool {
		rs, ok := m.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := cx.p.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		iterObjs := make(map[types.Object]bool)
		for _, v := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj := cx.p.Info.Defs[id]; obj != nil {
					iterObjs[obj] = true
				} else if obj := cx.p.Info.Uses[id]; obj != nil {
					iterObjs[obj] = true
				}
			}
		}
		if len(iterObjs) == 0 {
			return true
		}
		ast.Inspect(rs.Body, func(b ast.Node) bool {
			as, ok := b.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "append" {
				return true
			}
			if _, isBuiltin := cx.p.Info.Uses[fid].(*types.Builtin); !isBuiltin {
				return true
			}
			if !exprUsesAny(cx, call.Args[1:], iterObjs) {
				return true
			}
			obj := cx.p.Info.Uses[lhs]
			if obj == nil {
				obj = cx.p.Info.Defs[lhs]
			}
			// A slice declared inside the range body is rebuilt every
			// iteration and cannot accumulate iteration order.
			if obj == nil || obj.Pos() >= rs.Pos() {
				return true
			}
			sites = append(sites, site{obj: obj, pos: as, slice: lhs.Name})
			return true
		})
		return true
	})
	if len(sites) == 0 {
		return
	}

	sorted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !isSortCall(cx, call) {
			return true
		}
		for _, s := range sites {
			if exprUsesAny(cx, call.Args, map[types.Object]bool{s.obj: true}) {
				sorted[s.obj] = true
			}
		}
		return true
	})
	for _, s := range sites {
		if !sorted[s.obj] {
			cx.report(s.pos.Pos(),
				"map iteration order collected into %s with no sort before use: sort it in this function or build it from a deterministic source", s.slice)
		}
	}
}

// isSortCall recognizes sort.X / slices.Sort* calls and local helpers
// whose name mentions sort (sortDiags, sortKeys, ...).
func isSortCall(cx *passCtx, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := cx.p.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				return true
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// exprUsesAny reports whether any expression's subtree references one
// of the given objects.
func exprUsesAny(cx *passCtx, exprs []ast.Expr, objs map[types.Object]bool) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(m ast.Node) bool {
			if found {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				if obj := cx.p.Info.Uses[id]; obj != nil && objs[obj] {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
