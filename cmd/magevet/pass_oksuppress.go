package main

// passOKSuppress audits the //magevet:ok inventory itself: a marker is
// stale when no enabled suppressible check fires on the one line it
// guards (its own for a trailing marker, the line below for a
// standalone comment line). Stale markers are
// worse than dead weight — they read as a standing safety argument for
// code that no longer exists, and they silently swallow the next real
// finding that lands on their line. Not node-driven: it runs after all
// other passes over the raw (pre-suppression) diagnostics.
var passOKSuppress = &pass{
	name:        "oksuppress",
	doc:         "//magevet:ok markers that no longer guard any finding",
	bug:         "PR 5 aftermath: memnode test-file suppressions outliving the v1 protocol they audited",
	defaultOn:   true,
	bypassAllow: true,
}

// runOKSuppress returns one diagnostic per stale marker. It must see
// the raw diagnostics of every suppressible pass (coversSuppressible),
// otherwise staleness cannot be decided and the caller skips the audit.
func runOKSuppress(a *analyzer) []diagnostic {
	bypass := make(map[string]bool)
	for _, p := range registry {
		if p.bypassAllow {
			bypass[p.name] = true
		}
	}
	guarded := make(map[string]map[int]bool)
	for _, d := range a.diags {
		if bypass[d.check] {
			continue
		}
		if guarded[d.pos.Filename] == nil {
			guarded[d.pos.Filename] = make(map[int]bool)
		}
		guarded[d.pos.Filename][d.pos.Line] = true
	}
	var out []diagnostic
	for _, e := range a.allows {
		if guarded[e.pos.Filename][e.guard] {
			continue
		}
		msg := "stale magevet:ok: no enabled check fires on the line it guards — delete the marker or restore the guarded code"
		if e.inTest {
			msg = "stale magevet:ok in a test file: magevet does not analyze test code, so the marker guards nothing — delete it"
		}
		out = append(out, diagnostic{pos: e.pos, check: passOKSuppress.name, msg: msg})
	}
	return out
}
