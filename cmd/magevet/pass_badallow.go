package main

// passBadAllow reports //magevet:ok markers that carry no reason. It is
// not node-driven: the analyzer's suppression scan reports under this
// name while building the allowlist (see analyzer.scanComments).
var passBadAllow = &pass{
	name:        "badallow",
	doc:         "//magevet:ok comments without a reason",
	bug:         "pre-seed: unexplained suppressions rotting into folklore",
	defaultOn:   true,
	bypassAllow: true,
}
