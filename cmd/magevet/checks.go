package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Check names, as printed in diagnostics and matched by fixture tests.
const (
	checkRangeMap   = "rangemap"   // range over a map in a simulation package
	checkWallClock  = "wallclock"  // wall-clock time under internal/
	checkGlobalRand = "globalrand" // global math/rand source under internal/
	checkGoroutine  = "goroutine"  // go statement in a DES package
	checkSyncImport = "syncimport" // sync / sync/atomic import in a DES package
	checkFloatCmp   = "floatcmp"   // float ==/!= in cost/metric code
	checkBadAllow   = "badallow"   // magevet:ok comment without a reason
)

// desPackages are the discrete-event-simulation packages (module-relative)
// that must stay single-threaded virtual-time code: no goroutines, no host
// sync primitives, no map-iteration order reaching engine state.
var desPackages = map[string]bool{
	"internal/sim":         true,
	"internal/core":        true,
	"internal/faultinject": true,
	"internal/pgtable":     true,
	"internal/tlbsim":      true,
	"internal/apic":        true,
	"internal/nic":         true,
	"internal/memnode":     true,
	"internal/swapspace":   true,
	"internal/buddy":       true,
	"internal/lru":         true,
	"internal/palloc":      true,
	"internal/prefetch":    true,
	"internal/invariant":   true,
}

// hostConcurrencyPackages are the internal packages granted a package-wide
// allowance for host concurrency (go statements, sync imports). The grant
// is a rule here rather than scattered //magevet:ok comments because the
// whole package exists to run host goroutines: parexp fans independent
// experiment cells out across workers, each on its own engine, and its
// API is the only sanctioned bridge between host parallelism and the
// simulation. Every other internal package stays single-threaded.
var hostConcurrencyPackages = map[string]bool{
	"internal/parexp": true,
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// wallClockFuncs are the time-package calls that read or depend on the
// host clock; simulation code must use sim.Time exclusively.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// diagnostic is one finding.
type diagnostic struct {
	pos   token.Position
	check string
	msg   string
}

func (d diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.pos.Filename, d.pos.Line, d.pos.Column, d.check, d.msg)
}

// analyzer runs the determinism checks over loaded packages.
type analyzer struct {
	l     *loader
	diags []diagnostic
}

func (a *analyzer) report(pos token.Pos, check, format string, args ...any) {
	a.diags = append(a.diags, diagnostic{
		pos:   a.l.fset.Position(pos),
		check: check,
		msg:   fmt.Sprintf(format, args...),
	})
}

// relPath strips the module prefix from an import path.
func (a *analyzer) relPath(importPath string) string {
	if importPath == a.l.module {
		return ""
	}
	return strings.TrimPrefix(importPath, a.l.module+"/")
}

// analyze runs every applicable check on one package.
func (a *analyzer) analyze(p *pkgInfo) {
	rel := a.relPath(p.ImportPath)
	isInternal := strings.HasPrefix(rel, "internal/")
	isDES := desPackages[rel]
	// Host concurrency is banned across internal/ — not just in the DES
	// core — except in the packages granted a package-wide allowance.
	banConcurrency := isInternal && !hostConcurrencyPackages[rel]

	for _, f := range p.Files {
		fileName := filepath.Base(a.l.fset.Position(f.Pos()).Filename)
		floatCmpFile := rel == "internal/stats" ||
			(rel == "internal/core" && (fileName == "costs.go" || fileName == "metrics.go"))

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isInternal {
					a.checkRangeOverMap(p, n)
				}
			case *ast.CallExpr:
				if isInternal {
					a.checkNondeterministicCall(p, n)
				}
			case *ast.GoStmt:
				if banConcurrency {
					if isDES {
						a.report(n.Pos(), checkGoroutine,
							"go statement in DES package %s: simulation code must be single-threaded virtual-time", rel)
					} else {
						a.report(n.Pos(), checkGoroutine,
							"go statement in internal package %s: host concurrency is confined to internal/parexp", rel)
					}
				}
			case *ast.ImportSpec:
				if banConcurrency {
					a.checkSyncImportSpec(n, rel, isDES)
				}
			case *ast.BinaryExpr:
				if floatCmpFile && (n.Op == token.EQL || n.Op == token.NEQ) {
					a.checkFloatCompare(p, n)
				}
			}
			return true
		})
	}
}

// checkRangeOverMap flags range statements whose operand is a map: the
// iteration order is randomized per run and leaks nondeterminism into any
// state it touches.
func (a *analyzer) checkRangeOverMap(p *pkgInfo, rs *ast.RangeStmt) {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		a.report(rs.Pos(), checkRangeMap,
			"range over map %s: iteration order is nondeterministic", types.ExprString(rs.X))
	}
}

// checkNondeterministicCall flags wall-clock reads and draws from the
// global math/rand source.
func (a *analyzer) checkNondeterministicCall(p *pkgInfo, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := p.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			a.report(call.Pos(), checkWallClock,
				"time.%s reads the host clock: simulation code must use virtual time (sim.Time)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			a.report(call.Pos(), checkGlobalRand,
				"rand.%s draws from the global source: thread a seeded *rand.Rand from config", sel.Sel.Name)
		}
	}
}

// checkSyncImportSpec flags host synchronization imports inside internal
// packages: in the DES core exactly one process runs at a time by
// construction, and elsewhere parallelism belongs behind internal/parexp.
func (a *analyzer) checkSyncImportSpec(spec *ast.ImportSpec, rel string, isDES bool) {
	path, err := strconv.Unquote(spec.Path.Value)
	if err != nil {
		return
	}
	if path != "sync" && path != "sync/atomic" {
		return
	}
	if isDES {
		a.report(spec.Pos(), checkSyncImport,
			"import %q in DES package %s: virtual-time code needs no host synchronization", path, rel)
	} else {
		a.report(spec.Pos(), checkSyncImport,
			"import %q in internal package %s: host synchronization is confined to internal/parexp", path, rel)
	}
}

// checkFloatCompare flags exact float equality in cost/metric code, where
// it is almost always a reassociation-fragile bug.
func (a *analyzer) checkFloatCompare(p *pkgInfo, e *ast.BinaryExpr) {
	isFloat := func(x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	if isFloat(e.X) || isFloat(e.Y) {
		a.report(e.Pos(), checkFloatCmp,
			"float %s comparison: compare against an epsilon or restructure", e.Op)
	}
}

// allowlist records the lines carrying a //magevet:ok comment per file.
type allowlist map[string]map[int]bool

// collectAllowlist scans a package's comments for //magevet:ok markers. A
// marker must carry a reason; bare markers are themselves reported.
func (a *analyzer) collectAllowlist(p *pkgInfo, al allowlist) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "magevet:ok")
				if !ok {
					continue
				}
				pos := a.l.fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					a.report(c.Pos(), checkBadAllow, "magevet:ok needs a reason: //magevet:ok <why this site is safe>")
					continue
				}
				if al[pos.Filename] == nil {
					al[pos.Filename] = make(map[int]bool)
				}
				al[pos.Filename][pos.Line] = true
			}
		}
	}
}

// filterAllowed drops diagnostics audited with a magevet:ok comment on the
// same line or the line directly above.
func filterAllowed(diags []diagnostic, al allowlist) []diagnostic {
	var out []diagnostic
	for _, d := range diags {
		if d.check != checkBadAllow {
			lines := al[d.pos.Filename]
			if lines != nil && (lines[d.pos.Line] || lines[d.pos.Line-1]) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// sortDiags orders diagnostics by file, then position, for stable output.
func sortDiags(diags []diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
