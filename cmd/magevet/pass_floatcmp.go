package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

var passFloatCmp = &pass{
	name:      "floatcmp",
	doc:       "float ==/!= in internal/core/{costs,metrics}.go and internal/stats",
	bug:       "pre-seed: reassociation-fragile exact float equality in cost code",
	defaultOn: true,
	applies: func(s pkgScope) bool {
		return s.rel == "internal/stats" || s.rel == "internal/core"
	},
	inspect: floatCmpInspect,
}

// floatCmpInspect flags exact float equality in cost/metric code, where
// it is almost always a reassociation-fragile bug.
func floatCmpInspect(cx *passCtx, n ast.Node) {
	if cx.scope.rel == "internal/core" && cx.fileName != "costs.go" && cx.fileName != "metrics.go" {
		return
	}
	e, ok := n.(*ast.BinaryExpr)
	if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
		return
	}
	isFloat := func(x ast.Expr) bool {
		tv, ok := cx.p.Info.Types[x]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	if isFloat(e.X) || isFloat(e.Y) {
		cx.report(e.Pos(),
			"float %s comparison: compare against an epsilon or restructure", e.Op)
	}
}
