package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantDiagnostics parses the fixture tree's "// want <check>..." comments
// into the set of expected findings, keyed by file:line.
func wantDiagnostics(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			want[key] = append(want[key], strings.Fields(marker)...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures checks the analyzer against the expected-diagnostic
// comments in testdata/mage: every want comment must be matched by
// exactly the named checks, and no unexpected findings may appear.
func TestFixtures(t *testing.T) {
	const root = "testdata/mage"
	diags, nerrs := analyzeRoots([]string{root + "/..."}, nil, os.Stderr)
	if nerrs > 0 {
		t.Fatalf("%d load error(s) analyzing fixtures", nerrs)
	}

	got := make(map[string][]string)
	for _, d := range diags {
		rel, err := filepath.Rel(mustGetwd(t), d.pos.Filename)
		if err != nil {
			rel = d.pos.Filename
		}
		key := fmt.Sprintf("%s:%d", rel, d.pos.Line)
		got[key] = append(got[key], d.check)
	}

	want := wantDiagnostics(t, root)
	for key, checks := range want {
		sort.Strings(checks)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if strings.Join(g, " ") != strings.Join(checks, " ") {
			t.Errorf("%s: got checks %v, want %v", key, g, checks)
		}
		delete(got, key)
	}
	for key, checks := range got {
		t.Errorf("%s: unexpected finding(s) %v", key, checks)
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// TestRunExitCodes drives the command entry point: the fixture tree must
// fail with exit 1, and an empty argument list must scan nothing extra.
func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./testdata/mage/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run on fixtures = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", stderr.String())
	}
}

// TestRepoIsClean locks in the repo-wide guarantee: the live tree has no
// magevet findings, under both build-tag variants.
func TestRepoIsClean(t *testing.T) {
	for _, tags := range []string{"", "magecheck"} {
		args := []string{"../../..."}
		if tags != "" {
			args = append([]string{"-tags", tags}, args...)
		}
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Errorf("run(tags=%q) = %d, want 0\nstdout:\n%s\nstderr:\n%s",
				tags, code, &stdout, &stderr)
		}
	}
}

// TestBadFlagExits ensures flag errors surface as load failures.
func TestBadFlagExits(t *testing.T) {
	if code := run([]string{"-nosuchflag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
}
