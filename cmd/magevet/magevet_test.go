package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantDiagnostics parses the fixture tree's "// want <check>..." comments
// into the set of expected findings, keyed by file:line.
func wantDiagnostics(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			want[key] = append(want[key], strings.Fields(marker)...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

const fixtureRoot = "testdata/mage"

// mustSelect resolves a -passes/-skip pair against the registry.
func mustSelect(t *testing.T, passesFlag, skipFlag string) []*pass {
	t.Helper()
	ps, err := selectPasses(passesFlag, skipFlag)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// fixtureDiags runs the given pass set over the fixture tree.
func fixtureDiags(t *testing.T, passes []*pass) []diagnostic {
	t.Helper()
	var stderr bytes.Buffer
	diags, nerrs := analyzeRoots([]string{fixtureRoot + "/..."}, nil, passes, &stderr)
	if nerrs > 0 {
		t.Fatalf("%d load error(s) analyzing fixtures:\n%s", nerrs, &stderr)
	}
	return diags
}

// TestFixtures checks the full default suite against the expected-
// diagnostic comments in testdata/mage: every want comment must be
// matched by exactly the named checks, and no unexpected findings may
// appear.
func TestFixtures(t *testing.T) {
	diags := fixtureDiags(t, mustSelect(t, "", ""))

	got := make(map[string][]string)
	for _, d := range diags {
		rel, err := filepath.Rel(mustGetwd(t), d.pos.Filename)
		if err != nil {
			rel = d.pos.Filename
		}
		key := fmt.Sprintf("%s:%d", rel, d.pos.Line)
		got[key] = append(got[key], d.check)
	}

	want := wantDiagnostics(t, fixtureRoot)
	for key, checks := range want {
		sort.Strings(checks)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if strings.Join(g, " ") != strings.Join(checks, " ") {
			t.Errorf("%s: got checks %v, want %v", key, g, checks)
		}
		delete(got, key)
	}
	for key, checks := range got {
		t.Errorf("%s: unexpected finding(s) %v", key, checks)
	}
}

// TestEveryPassHasFixture is the registry meta-test: a pass may not be
// registered without a fixture line pinning its behavior, so the suite
// cannot silently grow unexercised checks.
func TestEveryPassHasFixture(t *testing.T) {
	covered := make(map[string]bool)
	for _, checks := range wantDiagnostics(t, fixtureRoot) {
		for _, c := range checks {
			covered[c] = true
		}
	}
	for _, p := range registry {
		if !covered[p.name] {
			t.Errorf("pass %s has no '// want %s' fixture under %s", p.name, p.name, fixtureRoot)
		}
		if p.doc == "" || p.bug == "" {
			t.Errorf("pass %s: registry entry needs both doc and bug strings", p.name)
		}
	}
}

// TestPassEnableDisable pins the selection contract per new pass: its
// fixture findings appear when the pass runs (alone or in the default
// set) and vanish when it is skipped.
func TestPassEnableDisable(t *testing.T) {
	count := func(diags []diagnostic, check string) int {
		n := 0
		for _, d := range diags {
			if d.check == check {
				n++
			}
		}
		return n
	}
	for _, name := range []string{"overflowcmp", "lockscope", "mapdrain", "errdrop"} {
		if n := count(fixtureDiags(t, mustSelect(t, name, "")), name); n == 0 {
			t.Errorf("pass %s alone: no fixture findings", name)
		}
		if n := count(fixtureDiags(t, mustSelect(t, "", name)), name); n != 0 {
			t.Errorf("skip %s: %d findings still reported", name, n)
		}
	}
	// oksuppress needs the whole suppressible suite to judge staleness,
	// so it is exercised via the default set.
	if n := count(fixtureDiags(t, mustSelect(t, "", "")), "oksuppress"); n == 0 {
		t.Error("default suite: no oksuppress fixture findings")
	}
	if n := count(fixtureDiags(t, mustSelect(t, "", "oksuppress")), "oksuppress"); n != 0 {
		t.Errorf("skip oksuppress: %d findings still reported", n)
	}
}

// TestOKSuppressNeedsFullSuite pins the coverage gate: with part of the
// suppressible suite disabled, staleness is undecidable and the audit
// must skip with a note instead of reporting false positives.
func TestOKSuppressNeedsFullSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "overflowcmp,oksuppress", "./" + fixtureRoot + "/..."}, &stdout, &stderr)
	if code != 1 { // overflowcmp fixtures still fail the run
		t.Fatalf("run = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "oksuppress skipped") {
		t.Errorf("stderr missing the oksuppress-skipped note: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "oksuppress") {
		t.Errorf("oksuppress findings reported despite partial suite:\n%s", &stdout)
	}
}

// TestUsageAndListCoverRegistry guards the generated help text: every
// registered pass must appear in both the usage catalog and -list, so
// the documented check list cannot drift from the implemented one.
func TestUsageAndListCoverRegistry(t *testing.T) {
	usage, list := usageText(), listText()
	for _, p := range registry {
		if !strings.Contains(usage, p.name) {
			t.Errorf("usage text missing pass %s", p.name)
		}
		if !strings.Contains(list, p.name) || !strings.Contains(list, p.bug) {
			t.Errorf("-list output missing pass %s or its pinned bug", p.name)
		}
	}
	var stdout bytes.Buffer
	if code := run([]string{"-list"}, &stdout, io.Discard); code != 0 {
		t.Fatalf("run -list = %d, want 0", code)
	}
	if stdout.String() != list {
		t.Error("-list output does not match listText()")
	}
}

// TestJSONOutput checks the machine-readable mode: findings come out as
// a JSON array with file, position, check, and message populated.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./" + fixtureRoot + "/internal/ioerr"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var got []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, &stdout)
	}
	if len(got) == 0 {
		t.Fatal("no JSON findings for the ioerr fixture")
	}
	for _, d := range got {
		if d.File == "" || d.Line == 0 || d.Check != "errdrop" || d.Msg == "" {
			t.Errorf("incomplete JSON finding: %+v", d)
		}
	}
}

// TestBaselineRatchet drives the debt workflow: -write-baseline
// captures the current findings, a run against that baseline is clean,
// and the stored entries carry no line numbers so they survive
// unrelated edits above them.
func TestBaselineRatchet(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "baseline.json")
	root := "./" + fixtureRoot + "/..."

	var stderr bytes.Buffer
	if code := run([]string{"-write-baseline", bl, root}, io.Discard, &stderr); code != 0 {
		t.Fatalf("write-baseline = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	var stdout bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-baseline", bl, root}, &stdout, &stderr); code != 0 {
		t.Fatalf("run with fresh baseline = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}

	data, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	var entries []jsonDiag
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("baseline is not a JSON array: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("baseline captured no findings")
	}
	for _, e := range entries {
		if e.Line != 0 || e.Col != 0 {
			t.Errorf("baseline entry carries a position (%+v): entries must be line-less", e)
		}
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// TestRunExitCodes drives the command entry point: the fixture tree must
// fail with exit 1, and the summary line must reach stderr.
func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./" + fixtureRoot + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run on fixtures = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", stderr.String())
	}
}

// TestRepoIsClean locks in the repo-wide guarantee: the live tree has no
// magevet findings — with no baseline — under both build-tag variants.
func TestRepoIsClean(t *testing.T) {
	for _, tags := range []string{"", "magecheck"} {
		args := []string{"../../..."}
		if tags != "" {
			args = append([]string{"-tags", tags}, args...)
		}
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Errorf("run(tags=%q) = %d, want 0\nstdout:\n%s\nstderr:\n%s",
				tags, code, &stdout, &stderr)
		}
	}
}

// TestBadFlagExits ensures flag and selection errors surface as exit 2.
func TestBadFlagExits(t *testing.T) {
	if code := run([]string{"-nosuchflag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
	if code := run([]string{"-passes", "nosuchpass"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("run with unknown pass = %d, want 2", code)
	}
}
