package main

import "go/ast"

var passGoroutine = &pass{
	name:      "goroutine",
	doc:       "go statements outside the host-concurrency allowance",
	bug:       "pre-seed: goroutine scheduling order reaching simulation state",
	defaultOn: true,
	applies:   appliesConcurrencyBan,
	inspect:   goroutineInspect,
}

// Host concurrency is banned across internal/ — not just in the DES
// core — except in the packages granted a package-wide allowance.
func appliesConcurrencyBan(s pkgScope) bool {
	return s.isInternal && !hostConcurrencyPackages[s.rel]
}

func goroutineInspect(cx *passCtx, n ast.Node) {
	g, ok := n.(*ast.GoStmt)
	if !ok {
		return
	}
	if cx.scope.isDES {
		cx.report(g.Pos(),
			"go statement in DES package %s: simulation code must be single-threaded virtual-time", cx.scope.rel)
	} else {
		cx.report(g.Pos(),
			"go statement in internal package %s: host concurrency is confined to internal/parexp", cx.scope.rel)
	}
}
