package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
)

// diagnostic is one finding.
type diagnostic struct {
	pos   token.Position
	check string
	msg   string
}

func (d diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.pos.Filename, d.pos.Line, d.pos.Column, d.check, d.msg)
}

// allowEntry is one //magevet:ok marker with a reason. Markers in test
// files are recorded (for the oksuppress audit) even though magevet
// does not analyze test code. guard is the single line the marker
// silences: its own line for a trailing marker, the line below for a
// marker on a standalone comment line. One marker never guards two
// lines — a range-line suppression must not be able to mask a
// different finding on the statement below it.
type allowEntry struct {
	pos    token.Position
	guard  int
	inTest bool
}

// analyzer runs the enabled passes over loaded packages.
type analyzer struct {
	l       *loader
	passes  []*pass
	diags   []diagnostic // raw findings, before suppression filtering
	allows  []allowEntry // reasoned magevet:ok markers, in scan order
	enabled map[string]bool
}

func newAnalyzer(l *loader, passes []*pass) *analyzer {
	a := &analyzer{l: l, passes: passes, enabled: make(map[string]bool)}
	for _, p := range passes {
		a.enabled[p.name] = true
	}
	return a
}

// passCtx is the per-file context handed to a pass's inspect hook.
type passCtx struct {
	a        *analyzer
	p        *pkgInfo
	scope    pkgScope
	fileName string // base name of the file being walked
	pass     *pass
}

// report records a finding for the pass that owns this context.
func (cx *passCtx) report(pos token.Pos, format string, args ...any) {
	cx.a.diags = append(cx.a.diags, diagnostic{
		pos:   cx.a.l.fset.Position(pos),
		check: cx.pass.name,
		msg:   fmt.Sprintf(format, args...),
	})
}

// relPath strips the module prefix from an import path.
func (a *analyzer) relPath(importPath string) string {
	if importPath == a.l.module {
		return ""
	}
	return strings.TrimPrefix(importPath, a.l.module+"/")
}

// analyze runs every applicable node-driven pass on one package via a
// single shared traversal per file.
func (a *analyzer) analyze(p *pkgInfo) {
	scope := pkgScope{rel: a.relPath(p.ImportPath)}
	scope.isInternal = strings.HasPrefix(scope.rel, "internal/")
	scope.isDES = desPackages[scope.rel]

	var active []*pass
	for _, ps := range a.passes {
		if ps.inspect == nil {
			continue
		}
		if ps.applies == nil || ps.applies(scope) {
			active = append(active, ps)
		}
	}
	if len(active) == 0 {
		return
	}

	for _, f := range p.Files {
		ctxs := make([]passCtx, len(active))
		fileName := filepath.Base(a.l.fset.Position(f.Pos()).Filename)
		for i, ps := range active {
			ctxs[i] = passCtx{a: a, p: p, scope: scope, fileName: fileName, pass: ps}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			for i := range ctxs {
				ctxs[i].pass.inspect(&ctxs[i], n)
			}
			return true
		})
	}
}

// collectAllowlist scans a package's comments — including its test
// files, which the passes themselves never analyze — for //magevet:ok
// markers. A marker must carry a reason; bare markers are reported by
// the badallow pass.
func (a *analyzer) collectAllowlist(p *pkgInfo) {
	for _, f := range p.Files {
		a.scanComments(f, false)
	}
	for _, name := range p.TestFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(a.l.fset, path, nil, parser.ParseComments)
		if err != nil {
			continue // a broken test file is the compiler's problem, not ours
		}
		a.scanComments(f, true)
	}
}

// codeLines returns the set of lines in f holding non-comment tokens,
// used to classify a marker as trailing (code on its line) or
// standalone.
func (a *analyzer) codeLines(f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[a.l.fset.Position(n.Pos()).Line] = true
		lines[a.l.fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

func (a *analyzer) scanComments(f *ast.File, inTest bool) {
	code := a.codeLines(f)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// The marker is the exact prefix //magevet:ok (no space):
			// prose that merely mentions the marker must not register
			// as a suppression.
			rest, ok := strings.CutPrefix(c.Text, "//magevet:ok")
			if !ok {
				rest, ok = strings.CutPrefix(c.Text, "/*magevet:ok")
				rest = strings.TrimSuffix(rest, "*/")
			}
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // //magevet:okay etc.
			}
			if strings.TrimSpace(rest) == "" {
				if a.enabled[passBadAllow.name] {
					a.diags = append(a.diags, diagnostic{
						pos:   a.l.fset.Position(c.Pos()),
						check: passBadAllow.name,
						msg:   "magevet:ok needs a reason: //magevet:ok <why this site is safe>",
					})
				}
				continue
			}
			pos := a.l.fset.Position(c.Pos())
			guard := pos.Line + 1
			if code[pos.Line] {
				guard = pos.Line
			}
			a.allows = append(a.allows, allowEntry{pos: pos, guard: guard, inTest: inTest})
		}
	}
}

// filterAllowed drops suppressible diagnostics on a line guarded by a
// magevet:ok marker (see allowEntry.guard). Passes with bypassAllow
// set (the suppression auditors themselves) are never filtered.
func (a *analyzer) filterAllowed() []diagnostic {
	lines := make(map[string]map[int]bool)
	for _, e := range a.allows {
		if lines[e.pos.Filename] == nil {
			lines[e.pos.Filename] = make(map[int]bool)
		}
		lines[e.pos.Filename][e.guard] = true
	}
	bypass := make(map[string]bool)
	for _, p := range registry {
		if p.bypassAllow {
			bypass[p.name] = true
		}
	}
	var out []diagnostic
	for _, d := range a.diags {
		if !bypass[d.check] && lines[d.pos.Filename][d.pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
