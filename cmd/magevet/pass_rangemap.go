package main

import (
	"go/ast"
	"go/types"
)

var passRangeMap = &pass{
	name:      "rangemap",
	doc:       "range over a map inside an internal package",
	bug:       "pre-seed: map-iteration order leaking into experiment digests",
	defaultOn: true,
	applies:   appliesInternal,
	inspect:   rangeMapInspect,
}

// rangeMapInspect flags range statements whose operand is a map: the
// iteration order is randomized per run and leaks nondeterminism into
// any state it touches.
func rangeMapInspect(cx *passCtx, n ast.Node) {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return
	}
	tv, ok := cx.p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		cx.report(rs.Pos(),
			"range over map %s: iteration order is nondeterministic", types.ExprString(rs.X))
	}
}
