package main

import (
	"go/ast"
	"strconv"
)

var passSyncImport = &pass{
	name:      "syncimport",
	doc:       "sync / sync/atomic imports outside the host-concurrency allowance",
	bug:       "pre-seed: host locks hiding scheduling nondeterminism in DES code",
	defaultOn: true,
	applies:   appliesConcurrencyBan,
	inspect:   syncImportInspect,
}

// syncImportInspect flags host synchronization imports inside internal
// packages: in the DES core exactly one process runs at a time by
// construction, and elsewhere parallelism belongs behind internal/parexp.
func syncImportInspect(cx *passCtx, n ast.Node) {
	spec, ok := n.(*ast.ImportSpec)
	if !ok {
		return
	}
	path, err := strconv.Unquote(spec.Path.Value)
	if err != nil {
		return
	}
	if path != "sync" && path != "sync/atomic" {
		return
	}
	if cx.scope.isDES {
		cx.report(spec.Pos(),
			"import %q in DES package %s: virtual-time code needs no host synchronization", path, cx.scope.rel)
	} else {
		cx.report(spec.Pos(),
			"import %q in internal package %s: host synchronization is confined to internal/parexp", path, cx.scope.rel)
	}
}
