package main

import (
	"go/ast"
	"go/types"
	"strings"
)

var passErrDrop = &pass{
	name:      "errdrop",
	doc:       "error returns silently discarded in internal/ (outside tests)",
	bug:       "PR 3 near-miss: a dropped Close error hid the memnode listener teardown failure the chaos tests later tripped on",
	defaultOn: true,
	applies:   appliesInternal,
	inspect:   errDropInspect,
}

// errDropInspect flags statements that invoke a function returning an
// error and ignore every result: plain call statements, go, and defer.
// An explicit `_ =` assignment is the audited escape hatch — it shows
// the author saw the error — and is not flagged. Writers that are
// documented never to fail (bytes.Buffer, strings.Builder, hash.Hash,
// fmt printing to stdout/stderr) are exempt.
func errDropInspect(cx *passCtx, n ast.Node) {
	var call *ast.CallExpr
	switch s := n.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.GoStmt:
		call = s.Call
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil || !returnsError(cx, call) || errDropExempt(cx, call) {
		return
	}
	cx.report(call.Pos(),
		"error returned by %s is silently dropped: handle it, or discard explicitly with _ = and a reason it cannot matter",
		types.ExprString(call.Fun))
}

// returnsError reports whether the call's result type is or contains
// error.
func returnsError(cx *passCtx, call *ast.CallExpr) bool {
	tv, ok := cx.p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// errDropExempt lists callees whose errors are conventionally or
// provably meaningless: in-memory writers that never fail, hashes, and
// fmt printing to the process's own stdio.
func errDropExempt(cx *passCtx, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := cx.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "bytes" || pkg == "strings":
		return true // Buffer / Builder writes are documented error-free
	case strings.HasPrefix(pkg, "hash") || strings.HasPrefix(pkg, "crypto/"):
		return true // hash.Hash.Write never returns an error
	case pkg == "math/rand" || pkg == "math/rand/v2":
		return true // rand.Read never fails
	case pkg == "fmt" && strings.HasPrefix(name, "Print"):
		return true // stdout diagnostics; nothing actionable on failure
	case pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
		return stdioWriter(cx, call)
	}
	return false
}

// stdioWriter reports whether a Fprint-style call writes to the
// process's own stdio, an in-memory buffer, or io.Discard.
func stdioWriter(cx *passCtx, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	w := ast.Unparen(call.Args[0])
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := cx.p.Info.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				if p == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
					return true
				}
				if p == "io" && sel.Sel.Name == "Discard" {
					return true
				}
			}
		}
	}
	if tv, ok := cx.p.Info.Types[w]; ok && tv.Type != nil {
		switch tv.Type.String() {
		case "*bytes.Buffer", "*strings.Builder":
			return true
		}
	}
	return false
}
