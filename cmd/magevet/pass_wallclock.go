package main

import (
	"go/ast"
	"go/types"
)

var passWallClock = &pass{
	name:      "wallclock",
	doc:       "time.Now / time.Since / ... anywhere under internal/",
	bug:       "pre-seed: host-clock reads making runs non-reproducible",
	defaultOn: true,
	applies:   appliesInternal,
	inspect:   wallClockInspect,
}

// wallClockFuncs are the time-package calls that read or depend on the
// host clock; simulation code must use sim.Time exclusively.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

func wallClockInspect(cx *passCtx, n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	if pkg, name := calleePkgFunc(cx.p, call); pkg == "time" && wallClockFuncs[name] {
		cx.report(call.Pos(),
			"time.%s reads the host clock: simulation code must use virtual time (sim.Time)", name)
	}
}

// calleePkgFunc resolves a pkg.Func or pkgname-qualified selector call
// to its package path and function name; empty strings if the callee is
// not a package-qualified selector.
func calleePkgFunc(p *pkgInfo, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
