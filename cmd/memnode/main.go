// Command memnode runs the far-memory node daemon (§5.2): a passive
// server that registers memory regions and serves one-sided page reads
// and writes over TCP. Connections speak the pipelined v2 wire protocol
// when the client negotiates it and fall back to v1 stop-and-wait
// otherwise; -proto 1 pins the node to v1 for interop testing.
//
// -transport shm (or auto) additionally offers the shared-memory ring
// transport to same-host clients: the HELLO response advertises a unix
// socket, over which each client receives a memfd-backed segment of
// rings and a data arena, moving page payloads with zero kernel
// copies. Clients that stay on TCP (different host, older build, or
// -transport tcp here) are unaffected — shm only ever widens the
// choice. Requires Linux memfd; elsewhere "auto" degrades to TCP and
// "shm" fails at startup.
//
// Usage:
//
//	memnode -listen :7170 -capacity-mb 4096 -workers 8 -transport shm
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"mage/internal/memnode"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7170", "listen address")
		capacity  = flag.Int64("capacity-mb", 1024, "served memory capacity in MiB")
		proto     = flag.Int("proto", 2, "max wire protocol to accept (1 = legacy stop-and-wait, 2 = pipelined)")
		workers   = flag.Int("workers", 0, "per-connection worker pool for pipelined ops (0 = default)")
		transport = flag.String("transport", "tcp", "data planes to offer: tcp, shm, or auto (shm = offer the shared-memory ring to same-host clients, requires Linux memfd; auto = offer it when the platform supports it)")
	)
	flag.Parse()
	if *proto != 1 && *proto != 2 {
		log.Fatalf("memnode: -proto must be 1 or 2, got %d", *proto)
	}
	var enableShm bool
	switch *transport {
	case "tcp":
	case "shm", "auto":
		enableShm = true
	default:
		log.Fatalf("memnode: -transport must be tcp, shm, or auto, got %q", *transport)
	}

	srv, err := memnode.NewServerOptions(*listen, *capacity<<20, memnode.ServerOptions{
		MaxProtocol: *proto,
		Workers:     *workers,
		EnableShm:   enableShm,
	})
	if err != nil {
		log.Fatalf("memnode: %v", err)
	}
	if *transport == "shm" && srv.ShmAddr() == "" {
		_ = srv.Close()
		log.Fatal("memnode: -transport shm requires Linux memfd support, which this platform lacks (use auto for best-effort)")
	}
	if srv.ShmAddr() != "" {
		log.Printf("memnode: serving %d MiB on %s (max proto v%d, shm doorbell %s)", *capacity, srv.Addr(), *proto, srv.ShmAddr())
	} else {
		log.Printf("memnode: serving %d MiB on %s (max proto v%d)", *capacity, srv.Addr(), *proto)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Print("memnode: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("memnode: close: %v", err)
	}
}
