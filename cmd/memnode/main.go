// Command memnode runs the far-memory node daemon (§5.2): a passive
// server that registers memory regions and serves one-sided page reads
// and writes over TCP. Connections speak the pipelined v2 wire protocol
// when the client negotiates it and fall back to v1 stop-and-wait
// otherwise; -proto 1 pins the node to v1 for interop testing.
//
// Usage:
//
//	memnode -listen :7170 -capacity-mb 4096 -workers 8
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"mage/internal/memnode"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7170", "listen address")
		capacity = flag.Int64("capacity-mb", 1024, "served memory capacity in MiB")
		proto    = flag.Int("proto", 2, "max wire protocol to accept (1 = legacy stop-and-wait, 2 = pipelined)")
		workers  = flag.Int("workers", 0, "per-connection worker pool for pipelined ops (0 = default)")
	)
	flag.Parse()
	if *proto != 1 && *proto != 2 {
		log.Fatalf("memnode: -proto must be 1 or 2, got %d", *proto)
	}

	srv, err := memnode.NewServerOptions(*listen, *capacity<<20, memnode.ServerOptions{
		MaxProtocol: *proto,
		Workers:     *workers,
	})
	if err != nil {
		log.Fatalf("memnode: %v", err)
	}
	log.Printf("memnode: serving %d MiB on %s (max proto v%d)", *capacity, srv.Addr(), *proto)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Print("memnode: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("memnode: close: %v", err)
	}
}
