// Command memnode runs the far-memory node daemon (§5.2): a passive
// server that registers memory regions and serves one-sided page reads
// and writes over TCP.
//
// Usage:
//
//	memnode -listen :7170 -capacity-mb 4096
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"mage/internal/memnode"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7170", "listen address")
		capacity = flag.Int64("capacity-mb", 1024, "served memory capacity in MiB")
	)
	flag.Parse()

	srv, err := memnode.NewServer(*listen, *capacity<<20)
	if err != nil {
		log.Fatalf("memnode: %v", err)
	}
	log.Printf("memnode: serving %d MiB on %s", *capacity, srv.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Print("memnode: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("memnode: close: %v", err)
	}
}
