// Command memnode runs the far-memory node daemon (§5.2): a passive
// server that registers memory regions and serves one-sided page reads
// and writes over TCP. Connections speak the pipelined v2 wire protocol
// when the client negotiates it and fall back to v1 stop-and-wait
// otherwise; -proto 1 pins the node to v1 for interop testing.
//
// -transport shm (or auto) additionally offers the shared-memory ring
// transport to same-host clients: the HELLO response advertises a unix
// socket, over which each client receives a memfd-backed segment of
// rings and a data arena, moving page payloads with zero kernel
// copies. Clients that stay on TCP (different host, older build, or
// -transport tcp here) are unaffected — shm only ever widens the
// choice. Requires Linux memfd; elsewhere "auto" degrades to TCP and
// "shm" fails at startup.
//
// -nodes N spawns N independent nodes in one process, listening on
// consecutive ports from -listen (or ephemeral ports when -listen ends
// in :0), each serving the full -capacity-mb — the one-command way to
// stand up a local shard set for the memcluster client
// (internal/memcluster, memnode-bench -cluster). Every node is a
// complete, isolated server; clustering (placement, replication,
// failover) lives entirely in the client.
//
// Usage:
//
//	memnode -listen :7170 -capacity-mb 4096 -workers 8 -transport shm
//	memnode -listen 127.0.0.1:7170 -capacity-mb 512 -nodes 6
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"

	"mage/internal/memnode"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7170", "listen address (with -nodes > 1: first of consecutive ports, or :0 for ephemeral)")
		capacity  = flag.Int64("capacity-mb", 1024, "served memory capacity in MiB (per node)")
		proto     = flag.Int("proto", 2, "max wire protocol to accept (1 = legacy stop-and-wait, 2 = pipelined)")
		workers   = flag.Int("workers", 0, "per-connection worker pool for pipelined ops (0 = default)")
		transport = flag.String("transport", "tcp", "data planes to offer: tcp, shm, or auto (shm = offer the shared-memory ring to same-host clients, requires Linux memfd; auto = offer it when the platform supports it)")
		nodes     = flag.Int("nodes", 1, "independent nodes to run in this process (a local shard set for the cluster client)")
	)
	flag.Parse()
	if *proto != 1 && *proto != 2 {
		log.Fatalf("memnode: -proto must be 1 or 2, got %d", *proto)
	}
	if *nodes < 1 {
		log.Fatalf("memnode: -nodes must be >= 1, got %d", *nodes)
	}
	var enableShm bool
	switch *transport {
	case "tcp":
	case "shm", "auto":
		enableShm = true
	default:
		log.Fatalf("memnode: -transport must be tcp, shm, or auto, got %q", *transport)
	}

	addrs, err := nodeAddrs(*listen, *nodes)
	if err != nil {
		log.Fatalf("memnode: %v", err)
	}
	var srvs []*memnode.Server
	for _, addr := range addrs {
		srv, err := memnode.NewServerOptions(addr, *capacity<<20, memnode.ServerOptions{
			MaxProtocol: *proto,
			Workers:     *workers,
			EnableShm:   enableShm,
		})
		if err != nil {
			for _, s := range srvs {
				_ = s.Close()
			}
			log.Fatalf("memnode: %v", err)
		}
		srvs = append(srvs, srv)
		if *transport == "shm" && srv.ShmAddr() == "" {
			for _, s := range srvs {
				_ = s.Close()
			}
			log.Fatal("memnode: -transport shm requires Linux memfd support, which this platform lacks (use auto for best-effort)")
		}
		if srv.ShmAddr() != "" {
			log.Printf("memnode: serving %d MiB on %s (max proto v%d, shm doorbell %s)", *capacity, srv.Addr(), *proto, srv.ShmAddr())
		} else {
			log.Printf("memnode: serving %d MiB on %s (max proto v%d)", *capacity, srv.Addr(), *proto)
		}
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Print("memnode: shutting down")
	for _, srv := range srvs {
		if err := srv.Close(); err != nil {
			log.Printf("memnode: close: %v", err)
		}
	}
}

// nodeAddrs expands a base listen address into n addresses: port 0
// repeats (the kernel assigns each), a concrete port counts upward.
func nodeAddrs(base string, n int) ([]string, error) {
	if n == 1 {
		return []string{base}, nil
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("-listen %q with -nodes %d: %w", base, n, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-listen %q: bad port: %w", base, err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		p := port
		if port != 0 {
			p = port + i
			if p > 65535 {
				return nil, fmt.Errorf("-listen %q + %d nodes overflows the port range", base, n)
			}
		}
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return addrs, nil
}
