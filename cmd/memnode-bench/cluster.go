// Cluster mode: -cluster N spawns N shards x -replicas R in-process
// memory nodes and drives the sharded memcluster client against them,
// reporting the same throughput/latency spread as single-node mode
// plus the cluster's robustness counters. -chaos additionally kills
// one replica a quarter of the way through the run, restarts it at the
// halfway mark, and refuses to pass unless the replica was re-admitted
// (post-resync) and no operation failed — the command-line twin of the
// kill-one-shard-mid-sweep acceptance test.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mage/internal/memcluster"
	"mage/internal/memnode"
	"mage/internal/stats"
)

// runCluster drives the cluster workload and returns its report.
func runCluster(cfg config, shards, replicas int, chaos bool, jsonOut bool) (report, error) {
	if replicas < 1 {
		return report{}, fmt.Errorf("-replicas must be >= 1")
	}
	if chaos && replicas < 2 {
		return report{}, fmt.Errorf("-chaos needs -replicas >= 2 (failover requires a surviving peer)")
	}
	capMB := cfg.regionMB + 64
	srvs := make([][]*memnode.Server, shards)
	addrs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			srv, err := memnode.NewServer("127.0.0.1:0", capMB<<20)
			if err != nil {
				return report{}, fmt.Errorf("spawn shard %d replica %d: %w", s, r, err)
			}
			defer srv.Close()
			srvs[s] = append(srvs[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
		}
	}
	if !jsonOut {
		fmt.Printf("spawned %d shards x %d replicas (%d in-process memory nodes)\n",
			shards, replicas, shards*replicas)
	}
	cl, err := memcluster.New(addrs, memcluster.Options{
		PageBytes:     cfg.pageBytes,
		ProbeInterval: 50 * time.Millisecond,
		Node: memnode.Options{
			DialTimeout: 500 * time.Millisecond,
			IOTimeout:   2 * time.Second,
			MaxAttempts: 2,
		},
	})
	if err != nil {
		return report{}, err
	}
	defer cl.Close()
	region, err := cl.Register(cfg.regionMB << 20)
	if err != nil {
		return report{}, fmt.Errorf("register: %w", err)
	}
	pages := (cfg.regionMB << 20) / cfg.pageBytes
	// Prewarm batched page-by-page: cluster writes replicate, so this
	// also seeds every replica before the timed window.
	warm := make([]byte, cfg.pageBytes)
	batchOffs := make([]int64, 0, memnode.MaxBatchPages)
	batchPgs := make([][]byte, 0, memnode.MaxBatchPages)
	flushWarm := func() error {
		if len(batchOffs) == 0 {
			return nil
		}
		err := cl.WriteV(region, batchOffs, batchPgs)
		batchOffs = batchOffs[:0]
		batchPgs = batchPgs[:0]
		return err
	}
	maxBatch := memnode.MaxBatchPages
	if m := int(int64(memnode.MaxIO) / cfg.pageBytes); m < maxBatch {
		maxBatch = m
	}
	for p := int64(0); p < pages; p++ {
		batchOffs = append(batchOffs, p*cfg.pageBytes)
		batchPgs = append(batchPgs, warm)
		if len(batchOffs) == maxBatch {
			if err := flushWarm(); err != nil {
				return report{}, fmt.Errorf("prewarm: %w", err)
			}
		}
	}
	if err := flushWarm(); err != nil {
		return report{}, fmt.Errorf("prewarm: %w", err)
	}

	totalOps := uint64(cfg.workers * cfg.ops)
	lat := stats.NewConcurrentHistogram()
	var okOps, errs, doneOps atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*1009))
			h := stats.NewHistogram()
			buf := make([]byte, cfg.pageBytes)
			rng.Read(buf)
			bufs := make([][]byte, cfg.batch)
			for i := range bufs {
				bufs[i] = buf
			}
			offs := make([]int64, cfg.batch)
			var ok uint64
			for i := 0; i < cfg.ops; i++ {
				isWrite := rng.Float64() < cfg.writeFrac
				for j := range offs {
					offs[j] = rng.Int63n(pages) * cfg.pageBytes
				}
				sampled := i&3 == 0
				var t0 time.Time
				if sampled {
					t0 = time.Now()
				}
				var err error
				switch {
				case cfg.batch > 1 && isWrite:
					err = cl.WriteV(region, offs, bufs)
				case cfg.batch > 1:
					var got [][]byte
					got, err = cl.ReadV(region, offs, cfg.pageBytes)
					if err == nil {
						for _, b := range got {
							memnode.PutBuf(b)
						}
					}
				case isWrite:
					err = cl.Write(region, offs[0], buf)
				default:
					var body []byte
					body, err = cl.Read(region, offs[0], cfg.pageBytes)
					if err == nil {
						memnode.PutBuf(body)
					}
				}
				doneOps.Add(1)
				if err != nil {
					errs.Add(1)
					continue
				}
				ok++
				if sampled {
					h.Record(time.Since(t0).Nanoseconds())
				}
			}
			okOps.Add(ok)
			lat.Merge(h)
		}()
	}

	var chaosErr error
	if chaos {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaosErr = runChaos(cl, srvs, capMB, &doneOps, totalOps, jsonOut)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if chaosErr != nil {
		return report{}, chaosErr
	}

	h := lat.Snapshot()
	done := okOps.Load()
	if done == 0 || h.Count() == 0 {
		return report{}, fmt.Errorf("no successful operations")
	}
	st := cl.Stats()
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	r := report{
		Transport:       "tcp",
		Workers:         cfg.workers,
		Depth:           1,
		Batch:           cfg.batch,
		PageBytes:       cfg.pageBytes,
		Ops:             done,
		Pages:           done * uint64(cfg.batch),
		Errors:          errs.Load(),
		ElapsedSec:      elapsed.Seconds(),
		OpsPerSec:       float64(done) / elapsed.Seconds(),
		PagesPerSec:     float64(done*uint64(cfg.batch)) / elapsed.Seconds(),
		P50Us:           us(h.P50()),
		P90Us:           us(h.P90()),
		P99Us:           us(h.P99()),
		MaxUs:           us(h.Max()),
		Shards:          st.Shards,
		Replicas:        st.Replicas / st.Shards,
		Chaos:           chaos,
		Failovers:       st.Failovers,
		Readmissions:    st.Readmissions,
		RebalancedPages: st.RebalancedPages,
		DegradedWrites:  st.DegradedWrites,
	}
	r.MiBPerSec = r.PagesPerSec * float64(cfg.pageBytes) / (1 << 20)
	if chaos && r.Errors > 0 {
		return r, fmt.Errorf("chaos run had %d failed ops (want zero: failover must absorb the kill)", r.Errors)
	}
	return r, nil
}

// runChaos kills replica 0 of shard 0 at 25% completion, restarts it
// on the same address at 50%, and then requires the prober to re-admit
// it (resync complete) before the workload drains.
func runChaos(cl *memcluster.Cluster, srvs [][]*memnode.Server, capMB int64, doneOps *atomic.Uint64, totalOps uint64, jsonOut bool) error {
	waitDone := func(frac float64) {
		target := uint64(float64(totalOps) * frac)
		for doneOps.Load() < target {
			time.Sleep(time.Millisecond)
		}
	}
	waitDone(0.25)
	addr := srvs[0][0].Addr()
	srvs[0][0].Close()
	if !jsonOut {
		fmt.Printf("chaos: killed replica %s at %d ops\n", addr, doneOps.Load())
	}
	waitDone(0.5)
	deadline := time.Now().Add(30 * time.Second)
	var srv *memnode.Server
	var err error
	for srv == nil {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: could not rebind %s: %v", addr, err)
		}
		srv, err = memnode.NewServer(addr, capMB<<20)
		if srv == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	srvs[0][0] = srv
	if !jsonOut {
		fmt.Printf("chaos: restarted replica %s at %d ops\n", addr, doneOps.Load())
	}
	for cl.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: replica %s not re-admitted before deadline", addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !jsonOut {
		fmt.Printf("chaos: replica %s re-admitted after resync (%d pages copied)\n",
			addr, cl.Stats().RebalancedPages)
	}
	return nil
}
