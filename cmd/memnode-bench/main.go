// Command memnode-bench load-tests a far-memory node daemon: it
// registers a region, then drives one-sided page reads and writes
// through the pipelined client, reporting throughput and latency
// percentiles — the network-substrate counterpart of the simulated NIC
// benchmarks.
//
// -depth controls how many requests each connection keeps in flight
// (depth 1 degenerates to the old stop-and-wait behavior); -batch > 1
// moves batches of pages per verb via READV/WRITEV. -transport selects
// the data plane: tcp pins the v2 TCP protocol, shm requires the
// shared-memory ring transport (the server must offer it: -spawn does,
// and `memnode -transport shm` does), auto negotiates shm with
// transparent TCP fallback. -compare runs the identical workload over
// both transports in one invocation and prints them side by side with
// the shm:tcp throughput ratio. The ISSUE's headline number is that
// ratio at depth 32 on a single connection:
//
//	memnode-bench -spawn -workers 1 -depth 32 -compare
//
// -cluster N leaves single-node mode entirely: it spawns N shards x
// -replicas R in-process memory nodes and drives the sharded,
// replicated memcluster client against them, reporting the cluster's
// robustness counters (failovers, readmissions, resynced pages) next
// to the usual throughput/latency spread. -chaos kills one replica a
// quarter of the way in, restarts it at the halfway mark, and fails
// the run unless the replica is re-admitted after resync with zero
// failed operations:
//
//	memnode-bench -cluster 3 -replicas 2 -chaos -region-mb 64
//
// Usage:
//
//	memnode &                                # or: memnode-bench -spawn
//	memnode-bench -addr 127.0.0.1:7170 -workers 8 -ops 20000 -write-frac 0.2 -depth 32 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"mage/internal/memnode"
	"mage/internal/stats"
)

type report struct {
	Transport   string  `json:"transport"`
	Workers     int     `json:"workers"`
	Depth       int     `json:"depth"`
	Batch       int     `json:"batch"`
	PageBytes   int64   `json:"page_bytes"`
	Ops         uint64  `json:"ops"`
	Pages       uint64  `json:"pages"`
	Errors      uint64  `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	PagesPerSec float64 `json:"pages_per_sec"`
	MiBPerSec   float64 `json:"mib_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`

	// SLO accounting (-slo-p99-us): sampled ops over the target burn
	// error budget; the run reports how much is left.
	SLOTargetUs        float64 `json:"slo_target_us,omitempty"`
	SLOViolations      uint64  `json:"slo_violations,omitempty"`
	SLOSampled         uint64  `json:"slo_sampled,omitempty"`
	SLOBudgetRemaining float64 `json:"slo_budget_remaining,omitempty"`
	SLOMet             bool    `json:"slo_met,omitempty"`

	// Cluster-mode extras (-cluster N): topology and the robustness
	// counters of the sharded client.
	Shards          int    `json:"shards,omitempty"`
	Replicas        int    `json:"replicas,omitempty"`
	Chaos           bool   `json:"chaos,omitempty"`
	Failovers       uint64 `json:"failovers,omitempty"`
	Readmissions    uint64 `json:"readmissions,omitempty"`
	RebalancedPages uint64 `json:"rebalanced_pages,omitempty"`
	DegradedWrites  uint64 `json:"degraded_writes,omitempty"`
}

type config struct {
	workers   int
	depth     int
	batch     int
	ops       int
	writeFrac float64
	regionMB  int64
	pageBytes int64
	seed      int64
	sloP99Us  float64 // 0 disables SLO accounting
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7170", "memory node address")
		spawn     = flag.Bool("spawn", false, "start an in-process memory node instead of dialing addr")
		regionMB  = flag.Int64("region-mb", 256, "region size to register (MiB)")
		workers   = flag.Int("workers", 8, "concurrent client connections")
		depth     = flag.Int("depth", 1, "requests in flight per connection")
		batch     = flag.Int("batch", 1, "pages per operation (>1 uses READV/WRITEV)")
		ops       = flag.Int("ops", 20000, "operations per worker")
		writeFrac = flag.Float64("write-frac", 0.2, "fraction of writes")
		pageBytes = flag.Int64("page-bytes", 4096, "transfer size per page")
		seed      = flag.Int64("seed", 1, "workload seed")
		transport = flag.String("transport", "auto", "data plane: tcp, shm, or auto (shm with TCP fallback)")
		compare   = flag.Bool("compare", false, "run the workload over tcp and shm and report both with the ratio")
		jsonOut   = flag.Bool("json", false, "emit a single JSON report on stdout")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		cluster   = flag.Int("cluster", 0, "shard count: spawn an in-process sharded cluster and drive the memcluster client")
		replicas  = flag.Int("replicas", 2, "replicas per shard in -cluster mode")
		chaos     = flag.Bool("chaos", false, "cluster mode: kill one replica mid-run, restart it, and require re-admission")
		sloP99Us  = flag.Float64("slo-p99-us", 0, "p99 latency SLO in µs: report violations and error-budget remaining (0 disables)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("memnode-bench: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("memnode-bench: cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *depth < 1 || *batch < 1 {
		log.Fatal("memnode-bench: -depth and -batch must be >= 1")
	}
	var mode int
	switch *transport {
	case "tcp":
		mode = memnode.TransportTCP
	case "shm":
		mode = memnode.TransportShm
	case "auto":
		mode = memnode.TransportAuto
	default:
		log.Fatalf("memnode-bench: -transport must be tcp, shm, or auto, got %q", *transport)
	}

	target := *addr
	if *spawn {
		capMB := *regionMB + 64
		if *compare {
			// Each compare leg registers its own region; regions outlive
			// the leg's connections, so the node must hold both at once.
			capMB += *regionMB
		}
		srv, err := memnode.NewServerOptions("127.0.0.1:0", capMB<<20, memnode.ServerOptions{
			EnableShm: *compare || mode != memnode.TransportTCP,
		})
		if err != nil {
			log.Fatalf("memnode-bench: spawn: %v", err)
		}
		defer srv.Close()
		target = srv.Addr()
		if !*jsonOut {
			fmt.Println("spawned in-process memory node at", target)
		}
	}

	cfg := config{
		workers: *workers, depth: *depth, batch: *batch, ops: *ops,
		writeFrac: *writeFrac, regionMB: *regionMB, pageBytes: *pageBytes, seed: *seed,
		sloP99Us: *sloP99Us,
	}

	if *cluster > 0 {
		r, err := runCluster(cfg, *cluster, *replicas, *chaos, *jsonOut)
		if err != nil {
			log.Fatalf("memnode-bench: cluster: %v", err)
		}
		if *jsonOut {
			emitJSON(r)
			return
		}
		printReport(r)
		return
	}

	if *compare {
		runCompare(target, cfg, *jsonOut)
		return
	}

	r, err := runLoad(target, mode, cfg)
	if err != nil {
		log.Fatalf("memnode-bench: %v", err)
	}
	if *jsonOut {
		emitJSON(r)
		return
	}
	printReport(r)
}

// runCompare runs the identical workload over TCP then shm and prints
// both reports with the shm:tcp pages/s ratio — the PR's headline
// metric in one command.
func runCompare(target string, cfg config, jsonOut bool) {
	tcp, err := runLoad(target, memnode.TransportTCP, cfg)
	if err != nil {
		log.Fatalf("memnode-bench: tcp leg: %v", err)
	}
	shm, err := runLoad(target, memnode.TransportShm, cfg)
	if err != nil {
		log.Fatalf("memnode-bench: shm leg: %v (does the server offer shm? -spawn does, `memnode -transport shm` does)", err)
	}
	ratio := shm.PagesPerSec / tcp.PagesPerSec
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			TCP   report  `json:"tcp"`
			Shm   report  `json:"shm"`
			Ratio float64 `json:"shm_over_tcp"`
		}{tcp, shm, ratio}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%-10s %12s %10s %10s %11s\n", "transport", "pages/s", "p50(us)", "p99(us)", "allocs/op")
	for _, r := range []report{tcp, shm} {
		fmt.Printf("%-10s %12.0f %10.1f %10.1f %11.1f\n", r.Transport, r.PagesPerSec, r.P50Us, r.P99Us, r.AllocsPerOp)
	}
	fmt.Printf("shm/tcp:   %.2fx pages/s\n", ratio)
}

// prewarm writes every byte of the freshly registered region once,
// outside the timed window, so the measurement sees steady state
// instead of the kernel's first-touch page faults. Without this the
// early writes of each run fault in the region's backing pages — a
// fixed per-page cost that lands on whichever leg runs first and
// weighs more against a faster transport.
func prewarm(c *memnode.Client, region uint64, size int64) error {
	const chunk = 4 << 20
	buf := make([]byte, chunk)
	for off := int64(0); off < size; off += chunk {
		n := int64(chunk)
		if size-off < n {
			n = size - off
		}
		if err := c.Write(region, off, buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// runLoad drives one full workload over the given transport and
// returns its report.
func runLoad(target string, mode int, cfg config) (report, error) {
	opts := memnode.DefaultOptions()
	opts.Transport = mode
	if opts.Window < cfg.depth {
		opts.Window = cfg.depth
	}
	setup, err := memnode.DialOptions(target, opts)
	if err != nil {
		return report{}, err
	}
	defer setup.Close()
	region, err := setup.Register(cfg.regionMB << 20)
	if err != nil {
		return report{}, fmt.Errorf("register: %w", err)
	}
	pages := (cfg.regionMB << 20) / cfg.pageBytes
	if err := prewarm(setup, region, cfg.regionMB<<20); err != nil {
		return report{}, fmt.Errorf("prewarm: %w", err)
	}

	lat := stats.NewConcurrentHistogram()
	var sloMu sync.Mutex
	var slo *stats.SLOTracker
	if cfg.sloP99Us > 0 {
		slo = stats.NewSLOTracker(int64(cfg.sloP99Us*1e3), 0.01)
	}
	var okOps atomic.Uint64
	var errs atomic.Uint64
	var wg sync.WaitGroup
	var kindMu sync.Mutex
	kind := setup.TransportKind()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := memnode.DialOptions(target, opts)
			if err != nil {
				errs.Add(uint64(cfg.ops))
				return
			}
			defer c.Close()
			// Each connection runs `depth` lanes of synchronous ops; the
			// client multiplexes them onto one pipelined stream, so the
			// connection keeps `depth` requests in flight.
			var laneWG sync.WaitGroup
			for d := 0; d < cfg.depth; d++ {
				d := d
				laneOps := cfg.ops / cfg.depth
				if d < cfg.ops%cfg.depth {
					laneOps++
				}
				laneWG.Add(1)
				go func() {
					defer laneWG.Done()
					rng := rand.New(rand.NewSource(cfg.seed + int64(w)*1009 + int64(d)))
					h := stats.NewHistogram()
					var laneSLO *stats.SLOTracker
					if slo != nil {
						laneSLO = stats.NewSLOTracker(slo.TargetNs, slo.BudgetFrac)
					}
					buf := make([]byte, cfg.pageBytes)
					rng.Read(buf)
					bufs := make([][]byte, cfg.batch)
					for i := range bufs {
						bufs[i] = buf
					}
					// Generate the lane's whole workload up front so the
					// timed loop measures the protocol, not the rng.
					writes := make([]bool, laneOps)
					laneOffs := make([][]int64, laneOps)
					for i := range writes {
						writes[i] = rng.Float64() < cfg.writeFrac
						laneOffs[i] = make([]int64, cfg.batch)
						for j := range laneOffs[i] {
							laneOffs[i][j] = rng.Int63n(pages) * cfg.pageBytes
						}
					}
					var ok uint64
					for i := 0; i < laneOps; i++ {
						isWrite := writes[i]
						offs := laneOffs[i]
						var err error
						// Sample latency on every 4th op: two time.Now calls
						// plus a histogram record cost a measurable fraction
						// of a ~µs-scale shm op, and throughput is wall clock
						// over all ops regardless. ~25% of a depth-32 run is
						// still tens of thousands of samples per percentile.
						sampled := i&3 == 0
						var t0 time.Time
						if sampled {
							t0 = time.Now()
						}
						switch {
						case cfg.batch > 1 && isWrite:
							err = c.WriteV(region, offs, bufs)
						case cfg.batch > 1:
							var got [][]byte
							got, err = c.ReadV(region, offs, cfg.pageBytes)
							if err == nil {
								memnode.PutBuf(got[0][:0:cap(got[0])])
							}
						case isWrite:
							err = c.Write(region, offs[0], buf)
						default:
							var body []byte
							body, err = c.Read(region, offs[0], cfg.pageBytes)
							if err == nil {
								memnode.PutBuf(body)
							}
						}
						if err != nil {
							errs.Add(1)
							continue
						}
						ok++
						if sampled {
							ns := time.Since(t0).Nanoseconds()
							h.Record(ns)
							if laneSLO != nil {
								laneSLO.Record(ns)
							}
						}
					}
					okOps.Add(ok)
					lat.Merge(h)
					if laneSLO != nil {
						sloMu.Lock()
						slo.Merge(laneSLO)
						sloMu.Unlock()
					}
				}()
			}
			laneWG.Wait()
			// The worker connections carry the ops, so the transport they
			// actually negotiated is the one the report should name.
			kindMu.Lock()
			kind = c.TransportKind()
			kindMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	h := lat.Snapshot()
	done := okOps.Load()
	if done == 0 || h.Count() == 0 {
		return report{}, fmt.Errorf("no successful operations")
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	r := report{
		Transport:   kind,
		Workers:     cfg.workers,
		Depth:       cfg.depth,
		Batch:       cfg.batch,
		PageBytes:   cfg.pageBytes,
		Ops:         done,
		Pages:       done * uint64(cfg.batch),
		Errors:      errs.Load(),
		ElapsedSec:  elapsed.Seconds(),
		OpsPerSec:   float64(done) / elapsed.Seconds(),
		PagesPerSec: float64(done*uint64(cfg.batch)) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(done),
		P50Us:       us(h.P50()),
		P90Us:       us(h.P90()),
		P99Us:       us(h.P99()),
		MaxUs:       us(h.Max()),
	}
	r.MiBPerSec = r.PagesPerSec * float64(cfg.pageBytes) / (1 << 20)
	if slo != nil {
		r.SLOTargetUs = cfg.sloP99Us
		r.SLOViolations = slo.Violations()
		r.SLOSampled = slo.Total()
		r.SLOBudgetRemaining = slo.ErrorBudgetRemaining()
		r.SLOMet = slo.Met()
	}
	return r, nil
}

func emitJSON(r report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
}

func printReport(r report) {
	fmt.Printf("transport:  %s\n", r.Transport)
	fmt.Printf("ops:        %d (%d pages, %d errors)\n", r.Ops, r.Pages, r.Errors)
	fmt.Printf("pipeline:   %d conns x depth %d x batch %d\n", r.Workers, r.Depth, r.Batch)
	fmt.Printf("throughput: %.0f ops/s, %.0f pages/s, %.1f MiB/s\n", r.OpsPerSec, r.PagesPerSec, r.MiBPerSec)
	fmt.Printf("latency:    p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus\n", r.P50Us, r.P90Us, r.P99Us, r.MaxUs)
	fmt.Printf("allocs:     %.1f per op\n", r.AllocsPerOp)
	if r.SLOTargetUs > 0 {
		met := "MET"
		if !r.SLOMet {
			met = "MISSED"
		}
		fmt.Printf("slo:        p99<=%.0fus %s — %d/%d sampled ops over target, %.0f%% error budget left\n",
			r.SLOTargetUs, met, r.SLOViolations, r.SLOSampled, r.SLOBudgetRemaining*100)
	}
	if r.Shards > 0 {
		fmt.Printf("cluster:    %d shards x %d replicas (chaos=%v)\n", r.Shards, r.Replicas, r.Chaos)
		fmt.Printf("resilience: %d failovers, %d readmissions, %d resynced pages, %d degraded writes\n",
			r.Failovers, r.Readmissions, r.RebalancedPages, r.DegradedWrites)
	}
}
