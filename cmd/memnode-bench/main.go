// Command memnode-bench load-tests a far-memory node daemon over real
// TCP: it registers a region, then drives concurrent one-sided page reads
// and writes, reporting throughput and latency percentiles — the
// network-substrate counterpart of the simulated NIC benchmarks.
//
// Usage:
//
//	memnode &                                # or: memnode-bench -spawn
//	memnode-bench -addr 127.0.0.1:7170 -workers 8 -ops 20000 -write-frac 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mage/internal/memnode"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7170", "memory node address")
		spawn     = flag.Bool("spawn", false, "start an in-process memory node instead of dialing addr")
		regionMB  = flag.Int64("region-mb", 256, "region size to register (MiB)")
		workers   = flag.Int("workers", 8, "concurrent client connections")
		ops       = flag.Int("ops", 20000, "operations per worker")
		writeFrac = flag.Float64("write-frac", 0.2, "fraction of writes")
		pageBytes = flag.Int64("page-bytes", 4096, "transfer size")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	target := *addr
	if *spawn {
		srv, err := memnode.NewServer("127.0.0.1:0", (*regionMB+64)<<20)
		if err != nil {
			log.Fatalf("memnode-bench: spawn: %v", err)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Println("spawned in-process memory node at", target)
	}

	setup, err := memnode.Dial(target)
	if err != nil {
		log.Fatalf("memnode-bench: %v", err)
	}
	defer setup.Close()
	region, err := setup.Register(*regionMB << 20)
	if err != nil {
		log.Fatalf("memnode-bench: register: %v", err)
	}
	pages := (*regionMB << 20) / *pageBytes

	type result struct {
		latencies []time.Duration
		errs      int
	}
	results := make([]result, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := memnode.Dial(target)
			if err != nil {
				results[w].errs++
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			buf := make([]byte, *pageBytes)
			rng.Read(buf)
			lats := make([]time.Duration, 0, *ops)
			for i := 0; i < *ops; i++ {
				off := rng.Int63n(pages) * *pageBytes
				t0 := time.Now()
				if rng.Float64() < *writeFrac {
					err = c.Write(region, off, buf)
				} else {
					_, err = c.Read(region, off, *pageBytes)
				}
				if err != nil {
					results[w].errs++
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			results[w].latencies = lats
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errs += r.errs
	}
	if len(all) == 0 {
		log.Fatal("memnode-bench: no successful operations")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration { return all[int(q*float64(len(all)-1))] }
	totalBytes := int64(len(all)) * *pageBytes

	fmt.Printf("ops:        %d (%d errors)\n", len(all), errs)
	fmt.Printf("throughput: %.0f ops/s, %.1f MiB/s\n",
		float64(len(all))/elapsed.Seconds(),
		float64(totalBytes)/elapsed.Seconds()/(1<<20))
	fmt.Printf("latency:    p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50), pct(0.90), pct(0.99), all[len(all)-1])

	if st, err := setup.Stat(); err == nil {
		fmt.Printf("node stats: %d reads, %d writes, %d B served\n",
			st.ReadOps, st.WriteOps, st.BytesRead+st.BytesWrite)
	}
}
