// Command memnode-bench load-tests a far-memory node daemon over real
// TCP: it registers a region, then drives one-sided page reads and
// writes through the pipelined v2 client, reporting throughput and
// latency percentiles — the network-substrate counterpart of the
// simulated NIC benchmarks.
//
// -depth controls how many requests each connection keeps in flight
// (depth 1 degenerates to the old stop-and-wait behavior); -batch > 1
// moves batches of pages per verb via READV/WRITEV. The ISSUE's
// headline number is the -depth 32 vs -depth 1 throughput ratio on a
// single connection:
//
//	memnode-bench -spawn -workers 1 -depth 1
//	memnode-bench -spawn -workers 1 -depth 32
//
// Usage:
//
//	memnode &                                # or: memnode-bench -spawn
//	memnode-bench -addr 127.0.0.1:7170 -workers 8 -ops 20000 -write-frac 0.2 -depth 32 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mage/internal/memnode"
	"mage/internal/stats"
)

type report struct {
	Workers     int     `json:"workers"`
	Depth       int     `json:"depth"`
	Batch       int     `json:"batch"`
	PageBytes   int64   `json:"page_bytes"`
	Ops         uint64  `json:"ops"`
	Pages       uint64  `json:"pages"`
	Errors      uint64  `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	PagesPerSec float64 `json:"pages_per_sec"`
	MiBPerSec   float64 `json:"mib_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7170", "memory node address")
		spawn     = flag.Bool("spawn", false, "start an in-process memory node instead of dialing addr")
		regionMB  = flag.Int64("region-mb", 256, "region size to register (MiB)")
		workers   = flag.Int("workers", 8, "concurrent client connections")
		depth     = flag.Int("depth", 1, "requests in flight per connection")
		batch     = flag.Int("batch", 1, "pages per operation (>1 uses READV/WRITEV)")
		ops       = flag.Int("ops", 20000, "operations per worker")
		writeFrac = flag.Float64("write-frac", 0.2, "fraction of writes")
		pageBytes = flag.Int64("page-bytes", 4096, "transfer size per page")
		seed      = flag.Int64("seed", 1, "workload seed")
		jsonOut   = flag.Bool("json", false, "emit a single JSON report on stdout")
	)
	flag.Parse()
	if *depth < 1 || *batch < 1 {
		log.Fatal("memnode-bench: -depth and -batch must be >= 1")
	}

	target := *addr
	if *spawn {
		srv, err := memnode.NewServer("127.0.0.1:0", (*regionMB+64)<<20)
		if err != nil {
			log.Fatalf("memnode-bench: spawn: %v", err)
		}
		defer srv.Close()
		target = srv.Addr()
		if !*jsonOut {
			fmt.Println("spawned in-process memory node at", target)
		}
	}

	opts := memnode.DefaultOptions()
	if opts.Window < *depth {
		opts.Window = *depth
	}
	setup, err := memnode.DialOptions(target, opts)
	if err != nil {
		log.Fatalf("memnode-bench: %v", err)
	}
	defer setup.Close()
	region, err := setup.Register(*regionMB << 20)
	if err != nil {
		log.Fatalf("memnode-bench: register: %v", err)
	}
	pages := (*regionMB << 20) / *pageBytes

	lat := stats.NewConcurrentHistogram()
	var errs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := memnode.DialOptions(target, opts)
			if err != nil {
				errs.Add(uint64(*ops))
				return
			}
			defer c.Close()
			// Each connection runs `depth` lanes of synchronous ops; the
			// client multiplexes them onto one pipelined stream, so the
			// connection keeps `depth` requests in flight.
			var laneWG sync.WaitGroup
			for d := 0; d < *depth; d++ {
				d := d
				laneOps := *ops / *depth
				if d < *ops%*depth {
					laneOps++
				}
				laneWG.Add(1)
				go func() {
					defer laneWG.Done()
					rng := rand.New(rand.NewSource(*seed + int64(w)*1009 + int64(d)))
					h := stats.NewHistogram()
					buf := make([]byte, *pageBytes)
					rng.Read(buf)
					bufs := make([][]byte, *batch)
					for i := range bufs {
						bufs[i] = buf
					}
					// Generate the lane's whole workload up front so the
					// timed loop measures the protocol, not the rng.
					writes := make([]bool, laneOps)
					laneOffs := make([][]int64, laneOps)
					for i := range writes {
						writes[i] = rng.Float64() < *writeFrac
						laneOffs[i] = make([]int64, *batch)
						for j := range laneOffs[i] {
							laneOffs[i][j] = rng.Int63n(pages) * *pageBytes
						}
					}
					for i := 0; i < laneOps; i++ {
						isWrite := writes[i]
						offs := laneOffs[i]
						var err error
						t0 := time.Now()
						switch {
						case *batch > 1 && isWrite:
							err = c.WriteV(region, offs, bufs)
						case *batch > 1:
							var got [][]byte
							got, err = c.ReadV(region, offs, *pageBytes)
							if err == nil {
								memnode.PutBuf(got[0][:0:cap(got[0])])
							}
						case isWrite:
							err = c.Write(region, offs[0], buf)
						default:
							var body []byte
							body, err = c.Read(region, offs[0], *pageBytes)
							if err == nil {
								memnode.PutBuf(body)
							}
						}
						if err != nil {
							errs.Add(1)
							continue
						}
						h.Record(time.Since(t0).Nanoseconds())
					}
					lat.Merge(h)
				}()
			}
			laneWG.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	h := lat.Snapshot()
	if h.Count() == 0 {
		log.Fatal("memnode-bench: no successful operations")
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	r := report{
		Workers:     *workers,
		Depth:       *depth,
		Batch:       *batch,
		PageBytes:   *pageBytes,
		Ops:         h.Count(),
		Pages:       h.Count() * uint64(*batch),
		Errors:      errs.Load(),
		ElapsedSec:  elapsed.Seconds(),
		OpsPerSec:   float64(h.Count()) / elapsed.Seconds(),
		PagesPerSec: float64(h.Count()*uint64(*batch)) / elapsed.Seconds(),
		P50Us:       us(h.P50()),
		P90Us:       us(h.P90()),
		P99Us:       us(h.P99()),
		MaxUs:       us(h.Max()),
	}
	r.MiBPerSec = r.PagesPerSec * float64(*pageBytes) / (1 << 20)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("ops:        %d (%d pages, %d errors)\n", r.Ops, r.Pages, r.Errors)
	fmt.Printf("pipeline:   %d conns x depth %d x batch %d\n", r.Workers, r.Depth, r.Batch)
	fmt.Printf("throughput: %.0f ops/s, %.0f pages/s, %.1f MiB/s\n", r.OpsPerSec, r.PagesPerSec, r.MiBPerSec)
	fmt.Printf("latency:    p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus\n", r.P50Us, r.P90Us, r.P99Us, r.MaxUs)

	if st, err := setup.Stat(); err == nil {
		fmt.Printf("node stats: %d reads, %d writes, %d B served\n",
			st.ReadOps, st.WriteOps, st.BytesRead+st.BytesWrite)
	}
}
