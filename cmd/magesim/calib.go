package main

import (
	"flag"
	"fmt"

	"mage/internal/core"
	"mage/internal/sim"
	"mage/internal/workload"
)

// calibrate prints ideal/hermit/magelib drop curves for GapBS at the
// given per-edge compute cost, for tuning the workload's cost constants
// against Fig 1. Invoked with -calibrate.
func calibrate(edgeNs int) {
	p := workload.GapBSParams{
		Scale: 15, EdgeFactor: 32, Iterations: 2, BytesPerVertex: 16,
		EdgeCompute: sim.Time(edgeNs), VertexCompute: sim.Time(3 * edgeNs), Seed: 42,
	}
	for _, name := range []string{"ideal", "magelib", "dilos", "hermit"} {
		w := workload.NewGapBS(p)
		base, _ := runCalib(name, w, 0)
		fmt.Printf("%-8s wss=%d base=%.1f j/h\n", name, w.NumPages(), base)
		for _, off := range []float64{0.1, 0.3, 0.5, 0.9} {
			w := workload.NewGapBS(p)
			jph, res := runCalib(name, w, off)
			m := res.Metrics
			fmt.Printf("  off=%.0f%% %9.1f j/h drop=%5.1f%% faults=%d dedup=%d evict=%d sync=%d p99=%.1fµs freeWait=%.2fms acctWait=%.2fms allocWait=%.2fms\n",
				off*100, jph, (1-jph/base)*100, m.MajorFaults, m.DedupWaits,
				m.EvictedPages, m.SyncEvicts, float64(m.FaultP99Ns)/1e3,
				float64(m.FreeWaitNs)/1e6, float64(m.AcctLockWaitNs)/1e6,
				float64(m.AllocLockWaitNs)/1e6)
		}
	}
}

func runCalib(name string, w workload.Workload, off float64) (float64, core.RunResult) {
	total := w.NumPages()
	local := int(float64(total) * (1 - off))
	if off == 0 {
		local = int(total) + int(total)/6 + 4096
	}
	cfg, err := core.Preset(name, 48, total, local)
	if err != nil {
		panic(err)
	}
	s := core.MustNewSystem(cfg)
	s.Prepopulate(int(total))
	res := s.Run(w.Streams(48, 1))
	return res.JobsPerHour(), res
}

var calibEdge = flag.Int("calibrate", 0, "run GapBS calibration with the given per-edge ns cost")
