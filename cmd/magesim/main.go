// Command magesim regenerates the paper's evaluation tables and figures
// on the simulated far-memory testbed.
//
// Usage:
//
//	magesim -list
//	magesim -exp fig1
//	magesim -exp all -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mage/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (figN, table1, table2, extN, or 'all')")
		scale    = flag.String("scale", "quick", "workload scale: quick|full")
		list     = flag.Bool("list", false, "list available experiments")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		parallel = flag.Int("parallel", 0, "worker goroutines per experiment grid (0 = GOMAXPROCS, 1 = sequential); output is identical at any setting")
	)
	flag.Parse()

	if *calibEdge > 0 {
		calibrate(*calibEdge)
		return
	}
	if *traceOut != "" {
		if err := runTrace(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "magesim:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Println("  " + n)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "magesim: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	sc.Workers = *parallel

	var names []string
	if *exp == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		r, err := experiments.Lookup(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "magesim:", err)
			os.Exit(1)
		}
		start := time.Now()
		for _, t := range r(sc) {
			t.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "magesim:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}

// writeCSV writes one table's CSV file into dir.
func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
