package main

import (
	"flag"
	"fmt"
	"os"

	"mage/internal/core"
	"mage/internal/trace"
	"mage/internal/workload"
)

var traceOut = flag.String("trace", "", "run a small Mage^LIB PageRank and write a Chrome trace (chrome://tracing) to this file")

// runTrace executes a small traced run and exports the event JSON.
func runTrace(path string) error {
	p := workload.GapBSParams{Scale: 13, EdgeFactor: 16, Iterations: 1, BytesPerVertex: 16, Seed: 7}
	w := workload.NewGapBS(p)
	cfg := core.MageLib(8, w.NumPages(), int(float64(w.NumPages())*0.6))
	s := core.MustNewSystem(cfg)
	s.Trace = trace.New(1 << 18)
	s.Prepopulate(int(w.NumPages()))
	res := s.Run(w.Streams(8, 1))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Trace.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("traced %d events over %v (%d faults, %d evictions) -> %s\n",
		s.Trace.Len(), res.Makespan, res.Metrics.MajorFaults,
		res.Metrics.EvictedPages, path)
	fmt.Println("open chrome://tracing or https://ui.perfetto.dev and load the file")
	return nil
}
