// magecache is a GET/SET KV cache front end whose value heap lives in
// far memory: the heap is a paged region managed by internal/upager, so
// the cache's working set occupies a bounded local arena while the long
// tail pages in on demand. It is the repo's end-to-end proof that the
// fault/evict machinery serves real traffic, not just benchmarks.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mage/internal/upager"
)

const pageBytes = 4096

// classSizes are the slab size classes. Every class divides the page
// size, so a slot never crosses a page boundary and a GET pins exactly
// one page.
var classSizes = [...]int{64, 128, 256, 512, 1024, 2048, 4096}

func classFor(n int) (int, bool) {
	for i, s := range classSizes {
		if n <= s {
			return i, true
		}
	}
	return 0, false
}

// slot names one slab cell in the paged heap.
type slot struct {
	pg  uint32
	off uint16
}

// entry is one index record: where the value lives and how long it is.
type entry struct {
	pg  uint32
	off uint16
	ln  uint16 // stored length - 1 would be needed past 65535; 4096 max fits
	cls uint8
	set bool // distinguishes the zero entry from a real one
}

type slotKey struct {
	s   slot
	key string
}

const indexShards = 64

type idxShard struct {
	mu sync.Mutex
	m  map[string]entry
}

// Cache is the sharded KV index plus the slab allocator over the paged
// value heap.
type Cache struct {
	pager  *upager.Pager
	shards [indexShards]idxShard

	// Slab allocator state. Lock order: alloc.mu and a shard mu are
	// never held together except in steal, which holds neither across
	// the other (it releases alloc.mu before touching a shard).
	alloc struct {
		mu       sync.Mutex
		free     [len(classSizes)][]slot
		fifo     [len(classSizes)][]slotKey // allocation order, for steal
		fifoHead [len(classSizes)]int
		nextPage uint32
		pages    uint32
	}

	steals atomic.Uint64
	sets   atomic.Uint64
	gets   atomic.Uint64
	misses atomic.Uint64
}

// CacheOptions sizes a cache.
type CacheOptions struct {
	// Pager tunables forwarded to upager.New.
	Pager upager.Options
}

// NewCache builds a cache whose value heap is heapPages pages backed by
// b, paged through frames local frames (remote:local = heapPages/frames).
func NewCache(b upager.Backing, heapPages uint64, frames int, opts CacheOptions) (*Cache, error) {
	po := opts.Pager
	if po.PageBytes == 0 {
		po.PageBytes = pageBytes
	}
	if po.PageBytes != pageBytes {
		return nil, fmt.Errorf("magecache: page size must be %d", pageBytes)
	}
	p, err := upager.New(b, heapPages, frames, po)
	if err != nil {
		return nil, err
	}
	c := &Cache{pager: p}
	c.alloc.pages = uint32(heapPages)
	for i := range c.shards {
		c.shards[i].m = make(map[string]entry)
	}
	return c, nil
}

// Close flushes the paged heap. The backing store stays open.
func (c *Cache) Close() error { return c.pager.Close() }

// Pager exposes the underlying pager (for stats reporting).
func (c *Cache) Pager() *upager.Pager { return c.pager }

func (c *Cache) shard(key string) *idxShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%indexShards]
}

// allocSlot returns a free cell of class cls, carving a fresh heap page
// when the free list is empty and stealing the oldest allocated cell of
// the class (FIFO eviction of its key) when the heap is exhausted.
func (c *Cache) allocSlot(cls int, key string) (slot, error) {
	a := &c.alloc
	for {
		a.mu.Lock()
		if n := len(a.free[cls]); n > 0 {
			s := a.free[cls][n-1]
			a.free[cls] = a.free[cls][:n-1]
			a.mu.Unlock()
			return s, nil
		}
		if a.nextPage < a.pages {
			pg := a.nextPage
			a.nextPage++
			size := classSizes[cls]
			for off := pageBytes - size; off >= size; off -= size {
				a.free[cls] = append(a.free[cls], slot{pg: pg, off: uint16(off)})
			}
			a.mu.Unlock()
			return slot{pg: pg, off: 0}, nil
		}
		// Heap exhausted: steal the oldest cell of this class.
		if a.fifoHead[cls] >= len(a.fifo[cls]) {
			a.mu.Unlock()
			return slot{}, fmt.Errorf("magecache: heap full and no class-%d cell to steal", classSizes[cls])
		}
		cand := a.fifo[cls][a.fifoHead[cls]]
		a.fifoHead[cls]++
		if a.fifoHead[cls] > len(a.fifo[cls])/2 && a.fifoHead[cls] > 1024 {
			a.fifo[cls] = append([]slotKey(nil), a.fifo[cls][a.fifoHead[cls]:]...)
			a.fifoHead[cls] = 0
		}
		a.mu.Unlock()
		// Validate outside alloc.mu (lock-order: never both at once).
		sh := c.shard(cand.key)
		sh.mu.Lock()
		e, ok := sh.m[cand.key]
		if ok && e.pg == cand.s.pg && e.off == cand.s.off {
			delete(sh.m, cand.key)
			sh.mu.Unlock()
			c.steals.Add(1)
			return cand.s, nil
		}
		sh.mu.Unlock()
		// Stale record (the key moved or died); its cell was freed
		// separately. Loop for the next candidate.
	}
}

func (c *Cache) freeSlot(cls int, s slot) {
	a := &c.alloc
	a.mu.Lock()
	a.free[cls] = append(a.free[cls], s)
	a.mu.Unlock()
}

func (c *Cache) pushFIFO(cls int, s slot, key string) {
	a := &c.alloc
	a.mu.Lock()
	a.fifo[cls] = append(a.fifo[cls], slotKey{s: s, key: key})
	a.mu.Unlock()
}

// ErrValueTooLarge rejects values over one page.
var ErrValueTooLarge = errors.New("magecache: value exceeds page size")

// Set stores key=val (cache-aside fill or overwrite).
func (c *Cache) Set(key string, val []byte) error {
	cls, ok := classFor(len(val))
	if !ok {
		return ErrValueTooLarge
	}
	s, err := c.allocSlot(cls, key)
	if err != nil {
		return err
	}
	fr, err := c.pager.Pin(uint64(s.pg), true)
	if err != nil {
		c.freeSlot(cls, s)
		return err
	}
	copy(fr.Data[s.off:int(s.off)+len(val)], val)
	fr.Unpin()

	e := entry{pg: s.pg, off: s.off, ln: uint16(len(val)), cls: uint8(cls), set: true}
	sh := c.shard(key)
	sh.mu.Lock()
	old, had := sh.m[key]
	sh.m[key] = e
	sh.mu.Unlock()
	c.pushFIFO(cls, s, key)
	if had {
		c.freeSlot(int(old.cls), slot{pg: old.pg, off: old.off})
	}
	c.sets.Add(1)
	return nil
}

// Get returns a copy of key's value. The copy-then-revalidate loop
// handles the rare race where a steal reuses the cell mid-read: if the
// index entry changed while the bytes were being copied, the read
// retries against the fresh entry.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	c.gets.Add(1)
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		e, ok := sh.m[key]
		sh.mu.Unlock()
		if !ok {
			c.misses.Add(1)
			return nil, false, nil
		}
		fr, err := c.pager.Pin(uint64(e.pg), false)
		if err != nil {
			return nil, false, err
		}
		out := make([]byte, e.ln)
		copy(out, fr.Data[e.off:uint32(e.off)+uint32(e.ln)])
		fr.Unpin()
		sh.mu.Lock()
		e2, ok2 := sh.m[key]
		sh.mu.Unlock()
		if ok2 && e2 == e {
			return out, true, nil
		}
		if !ok2 {
			c.misses.Add(1)
			return nil, false, nil
		}
		// The entry moved (overwrite or steal+refill): retry.
	}
}

// Delete removes key, freeing its cell.
func (c *Cache) Delete(key string) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	if ok {
		c.freeSlot(int(e.cls), slot{pg: e.pg, off: e.off})
	}
	return ok
}

// CacheStats is a snapshot of cache-level counters (pager counters live
// in Pager().Stats()).
type CacheStats struct {
	Gets, Misses, Sets, Steals uint64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Gets:   c.gets.Load(),
		Misses: c.misses.Load(),
		Sets:   c.sets.Load(),
		Steals: c.steals.Load(),
	}
}
