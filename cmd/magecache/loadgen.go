package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mage/internal/stats"
	"mage/internal/workload"
)

// The load generator drives the cache closed-loop through the standard
// three-phase traffic model (steady Zipf, hot-key storm, flash crowd)
// from internal/workload — the same schedule the DES replays — with
// cache-aside semantics: a GET miss computes the value and fills the
// cache. Every GET hit is integrity-checked against the deterministic
// value model, so a paging bug anywhere under the cache surfaces as a
// failed op, not a silent wrong answer.

const valStampMagic = 0x6d616765636163 // "magecac"

func fnv64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

func keyName(k int64) string { return fmt.Sprintf("k%012x", k) }

// valLen is deterministic per key: 64..1023 bytes, so every value fits
// one slab cell of class <= 1024.
func valLen(k int64) int { return 64 + int(fnv64(uint64(k))%960) }

// valFor computes key k's canonical value: an 8-byte stamp derived from
// the key, then a repeating fill byte. GETs verify both.
func valFor(k int64) []byte {
	v := make([]byte, valLen(k))
	binary.LittleEndian.PutUint64(v, uint64(k)^valStampMagic)
	fill := byte(fnv64(uint64(k) ^ 0xfeed))
	for i := 8; i < len(v); i++ {
		v[i] = fill
	}
	return v
}

func checkVal(k int64, v []byte) error {
	if len(v) != valLen(k) {
		return fmt.Errorf("key %d: length %d, want %d", k, len(v), valLen(k))
	}
	if got := binary.LittleEndian.Uint64(v); got != uint64(k)^valStampMagic {
		return fmt.Errorf("key %d: stamp %#x, want %#x", k, got, uint64(k)^valStampMagic)
	}
	fill := byte(fnv64(uint64(k) ^ 0xfeed))
	for i := 8; i < len(v); i++ {
		if v[i] != fill {
			return fmt.Errorf("key %d: fill byte %d corrupt", k, i)
		}
	}
	return nil
}

type loadConfig struct {
	keys     int64
	workers  int
	totalOps int
	theta    float64
	setFrac  float64
	sloP99Us float64
	seed     int64
}

type loadReport struct {
	Ops        uint64
	Fails      uint64
	Misses     uint64
	Elapsed    time.Duration
	OpsPerSec  float64
	P99Us      float64
	SLOMet     bool
	Violations uint64
	BudgetLeft float64
	FirstErr   error
}

// runLoad drives cfg.totalOps ops across cfg.workers closed-loop
// workers, each walking its own copy of the standard phase schedule.
func runLoad(c *Cache, cfg loadConfig) loadReport {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	per := cfg.totalOps / cfg.workers
	if per < 1 {
		per = 1
	}
	target := int64(cfg.sloP99Us * 1e3)
	if target <= 0 {
		target = int64(10 * time.Millisecond)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		slo      = stats.NewSLOTracker(target, 0.01)
		ops      uint64
		fails    uint64
		misses   uint64
		firstErr error
	)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			gen := workload.NewPhasedKeys(workload.StandardPhases(cfg.keys, cfg.theta, int64(per/3+1))...)
			wslo := stats.NewSLOTracker(target, 0.01)
			var wops, wfails, wmisses uint64
			var werr error
			for i := 0; i < per; i++ {
				k := gen.Next(rng)
				key := keyName(k)
				t0 := time.Now()
				val, ok, err := c.Get(key)
				if err == nil && !ok {
					// Cache-aside fill: compute and store.
					wmisses++
					err = c.Set(key, valFor(k))
				} else if err == nil {
					err = checkVal(k, val)
				}
				if err == nil && cfg.setFrac > 0 && rng.Float64() < cfg.setFrac {
					err = c.Set(key, valFor(k))
				}
				wslo.Record(time.Since(t0).Nanoseconds())
				wops++
				if err != nil {
					wfails++
					if werr == nil {
						werr = err
					}
				}
			}
			mu.Lock()
			slo.Merge(wslo)
			ops += wops
			fails += wfails
			misses += wmisses
			if firstErr == nil {
				firstErr = werr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return loadReport{
		Ops:        ops,
		Fails:      fails,
		Misses:     misses,
		Elapsed:    elapsed,
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		P99Us:      float64(slo.P99()) / 1e3,
		SLOMet:     slo.Met(),
		Violations: slo.Violations(),
		BudgetLeft: slo.ErrorBudgetRemaining(),
		FirstErr:   firstErr,
	}
}

func printLoadReport(r loadReport, c *Cache, sloP99Us float64) {
	fmt.Printf("magecache-load: %d ops in %.2fs = %.0f ops/s, p99 %.0fus, %d misses, %d failed\n",
		r.Ops, r.Elapsed.Seconds(), r.OpsPerSec, r.P99Us, r.Misses, r.Fails)
	if sloP99Us > 0 {
		verdict := "MET"
		if !r.SLOMet {
			verdict = "MISSED"
		}
		fmt.Printf("magecache-slo: p99<=%.0fus %s — %d/%d ops over target, %.0f%% error budget left\n",
			sloP99Us, verdict, r.Violations, r.Ops, r.BudgetLeft*100)
	}
	cs := c.Stats()
	ps := c.Pager().Stats()
	hitRate := 0.0
	if cs.Gets > 0 {
		hitRate = float64(cs.Gets-cs.Misses) / float64(cs.Gets) * 100
	}
	fmt.Printf("magecache-cache: %d gets (%.1f%% hit), %d sets, %d steals\n",
		cs.Gets, hitRate, cs.Sets, cs.Steals)
	batching := 0.0
	if ps.WritebackBatches > 0 {
		batching = float64(ps.WritebackPages) / float64(ps.WritebackBatches)
	}
	fmt.Printf("magecache-pager: %d faults, %d hits, %d coalesced, %d evictions (%d clean), writeback %.1f pages/batch, prefetch %d issued / %d hit / %d dropped\n",
		ps.Faults, ps.Hits, ps.Coalesced, ps.Evictions, ps.CleanDrops, batching,
		ps.PrefetchIssued, ps.PrefetchHits, ps.PrefetchDropped)
	if r.FirstErr != nil {
		fmt.Printf("magecache-error: first failed op: %v\n", r.FirstErr)
	}
}
