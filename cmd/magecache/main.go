package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"mage/internal/memcluster"
	"mage/internal/memnode"
	"mage/internal/upager"
)

type config struct {
	mode     string
	listen   string
	backends string
	spawn    bool
	replicas int
	nodeMB   int64

	keys     int64
	ratio    int
	workers  int
	ops      int
	theta    float64
	setFrac  float64
	sloP99Us float64
	seed     int64
	prefetch bool
	requireS bool
}

func parseFlags() config {
	var cfg config
	flag.StringVar(&cfg.mode, "mode", "bench", "bench (closed-loop load generator) or serve (TCP front end)")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:11311", "serve mode: listen address")
	flag.StringVar(&cfg.backends, "memnode", "", "backing store: comma-separated shards, '/'-separated replicas (one plain address = single memnode)")
	flag.BoolVar(&cfg.spawn, "spawn", false, "spawn in-process memnode server(s) instead of dialing -memnode")
	flag.IntVar(&cfg.replicas, "spawn-replicas", 1, "replicas per spawned shard (>1 uses the cluster client)")
	flag.Int64Var(&cfg.nodeMB, "node-mb", 512, "spawned memnode capacity (MiB)")
	flag.Int64Var(&cfg.keys, "keys", 1<<16, "key-space size")
	flag.IntVar(&cfg.ratio, "ratio", 8, "remote:local page ratio of the value heap")
	flag.IntVar(&cfg.workers, "workers", 8, "bench mode: closed-loop workers")
	flag.IntVar(&cfg.ops, "ops", 240000, "bench mode: total ops across workers")
	flag.Float64Var(&cfg.theta, "theta", 0.99, "steady-phase Zipfian skew")
	flag.Float64Var(&cfg.setFrac, "set-frac", 0.1, "bench mode: extra SET fraction (dirties pages)")
	flag.Float64Var(&cfg.sloP99Us, "slo-p99-us", 0, "SLO: target p99 in microseconds (0 = report only)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.BoolVar(&cfg.prefetch, "prefetch", false, "enable the pager's sequential prefetcher")
	flag.BoolVar(&cfg.requireS, "require-slo", false, "bench mode: exit 1 when the SLO is missed")
	flag.Parse()
	return cfg
}

// heapPagesFor sizes the value heap so the worst case (every key in the
// largest class the value model uses, 1024 bytes = 4 slots/page) fits,
// plus one carve page per class.
func heapPagesFor(keys int64) uint64 {
	return uint64(keys/4 + keys/64 + int64(len(classSizes)) + 8)
}

// buildBacking dials or spawns the far-memory store. The returned
// cleanup closes what was created.
func buildBacking(cfg config) (upager.Backing, func(), error) {
	if cfg.spawn {
		capacity := cfg.nodeMB << 20
		if cfg.replicas <= 1 {
			srv, err := memnode.NewServer("127.0.0.1:0", capacity)
			if err != nil {
				return nil, nil, err
			}
			c, err := memnode.Dial(srv.Addr())
			if err != nil {
				srv.Close()
				return nil, nil, err
			}
			return c, func() { c.Close(); srv.Close() }, nil
		}
		var srvs []*memnode.Server
		addrs := make([]string, 0, cfg.replicas)
		for i := 0; i < cfg.replicas; i++ {
			srv, err := memnode.NewServer("127.0.0.1:0", capacity)
			if err != nil {
				for _, s := range srvs {
					s.Close()
				}
				return nil, nil, err
			}
			srvs = append(srvs, srv)
			addrs = append(addrs, srv.Addr())
		}
		cl, err := memcluster.New([][]string{addrs}, memcluster.Options{})
		if err != nil {
			for _, s := range srvs {
				s.Close()
			}
			return nil, nil, err
		}
		return cl, func() {
			cl.Close()
			for _, s := range srvs {
				s.Close()
			}
		}, nil
	}
	if cfg.backends == "" {
		return nil, nil, fmt.Errorf("need -memnode or -spawn")
	}
	shards := strings.Split(cfg.backends, ",")
	if len(shards) == 1 && !strings.Contains(shards[0], "/") {
		c, err := memnode.Dial(shards[0])
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	}
	addrs := make([][]string, len(shards))
	for i, s := range shards {
		addrs[i] = strings.Split(s, "/")
	}
	cl, err := memcluster.New(addrs, memcluster.Options{})
	if err != nil {
		return nil, nil, err
	}
	return cl, func() { cl.Close() }, nil
}

func run(cfg config) error {
	backing, cleanup, err := buildBacking(cfg)
	if err != nil {
		return err
	}
	defer cleanup()

	heapPages := heapPagesFor(cfg.keys)
	frames := int(heapPages) / cfg.ratio
	if frames < 64 {
		frames = 64
	}
	cache, err := NewCache(backing, heapPages, frames, CacheOptions{
		Pager: upager.Options{NoPrefetch: !cfg.prefetch},
	})
	if err != nil {
		return err
	}
	defer cache.Close()
	fmt.Printf("magecache: heap %d pages (%.1f MiB) over %d local frames (remote:local %d:1)\n",
		heapPages, float64(heapPages)*pageBytes/(1<<20), frames, int(heapPages)/frames)

	switch cfg.mode {
	case "serve":
		ln, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			return err
		}
		fmt.Printf("magecache: serving on %s\n", ln.Addr())
		return serveCache(ln, cache)
	case "bench":
		r := runLoad(cache, loadConfig{
			keys:     cfg.keys,
			workers:  cfg.workers,
			totalOps: cfg.ops,
			theta:    cfg.theta,
			setFrac:  cfg.setFrac,
			sloP99Us: cfg.sloP99Us,
			seed:     cfg.seed,
		})
		printLoadReport(r, cache, cfg.sloP99Us)
		if r.Fails > 0 {
			return fmt.Errorf("%d ops failed", r.Fails)
		}
		if cfg.requireS && cfg.sloP99Us > 0 && !r.SLOMet {
			return fmt.Errorf("SLO missed: p99 %.0fus > %.0fus target", r.P99Us, cfg.sloP99Us)
		}
		return nil
	default:
		return fmt.Errorf("unknown -mode %q", cfg.mode)
	}
}

func main() {
	if err := run(parseFlags()); err != nil {
		fmt.Fprintf(os.Stderr, "magecache: %v\n", err)
		os.Exit(1)
	}
}
