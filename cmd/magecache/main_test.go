package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mage/internal/memcluster"
	"mage/internal/memnode"
	"mage/internal/upager"
)

// newTestCache spawns an in-process memnode and a cache over it.
func newTestCache(t testing.TB, heapPages uint64, frames int) *Cache {
	t.Helper()
	srv, err := memnode.NewServer("127.0.0.1:0", 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := memnode.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cache, err := NewCache(c, heapPages, frames, CacheOptions{
		Pager: upager.Options{NoPrefetch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	return cache
}

func TestCacheBasic(t *testing.T) {
	c := newTestCache(t, 256, 64)
	if _, ok, err := c.Get("absent"); err != nil || ok {
		t.Fatalf("get absent = ok=%v err=%v", ok, err)
	}
	if err := c.Set("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("a")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get a = %q ok=%v err=%v", v, ok, err)
	}
	// Overwrite with a different size class.
	big := bytes.Repeat([]byte{7}, 900)
	if err := c.Set("a", big); err != nil {
		t.Fatal(err)
	}
	v, ok, err = c.Get("a")
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("overwritten a: len %d ok=%v err=%v", len(v), ok, err)
	}
	if !c.Delete("a") {
		t.Fatal("delete a failed")
	}
	if _, ok, _ := c.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if err := c.Set("big", make([]byte, pageBytes+1)); err != ErrValueTooLarge {
		t.Fatalf("oversized set = %v, want ErrValueTooLarge", err)
	}
	// Page-sized values are the largest legal class.
	full := bytes.Repeat([]byte{3}, pageBytes)
	if err := c.Set("full", full); err != nil {
		t.Fatal(err)
	}
	v, ok, err = c.Get("full")
	if err != nil || !ok || !bytes.Equal(v, full) {
		t.Fatalf("full-page value bad: len %d ok=%v err=%v", len(v), ok, err)
	}
}

// TestCacheStealUnderPressure fills past heap capacity: the allocator
// must steal oldest cells (FIFO-evicting their keys) instead of
// failing, stolen keys must read as clean misses, and surviving keys
// must stay intact.
func TestCacheStealUnderPressure(t *testing.T) {
	// 16 heap pages of class-1024 cells = 64 cells; write 256 keys.
	c := newTestCache(t, 16, 8)
	val := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 600) // class 1024
	}
	for i := 0; i < 256; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), val(i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if c.Stats().Steals == 0 {
		t.Fatal("256 sets into a 64-cell heap stole nothing")
	}
	present := 0
	for i := 0; i < 256; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !ok {
			continue
		}
		present++
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("key-%d corrupt after steals", i)
		}
	}
	if present == 0 || present > 64 {
		t.Fatalf("%d keys present; want (0, 64]", present)
	}
}

func TestLoadGenZeroFailures(t *testing.T) {
	c := newTestCache(t, 2048, 256)
	r := runLoad(c, loadConfig{
		keys: 4096, workers: 4, totalOps: 20000,
		theta: 0.99, setFrac: 0.1, sloP99Us: 0, seed: 42,
	})
	if r.Fails != 0 {
		t.Fatalf("%d failed ops (first: %v)", r.Fails, r.FirstErr)
	}
	if r.Ops < 20000 {
		t.Errorf("ops = %d, want >= 20000", r.Ops)
	}
	if r.Misses == 0 {
		t.Error("cold cache produced no misses")
	}
	if ps := c.Pager().Stats(); ps.Evictions == 0 {
		t.Error("8:1 heap over arena evicted nothing under load")
	}
}

func TestServeProtocol(t *testing.T) {
	c := newTestCache(t, 256, 64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go serveCache(ln, c)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(s string) {
		t.Helper()
		if _, err := io.WriteString(conn, s); err != nil {
			t.Fatal(err)
		}
	}
	expectLine := func(want string) {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line != want+"\n" {
			t.Fatalf("got %q, want %q", line, want)
		}
	}
	send("get nothing\n")
	expectLine("MISS")
	send("set k 5\nworld\n")
	expectLine("STORED")
	send("get k\n")
	expectLine("VALUE 5")
	body := make([]byte, 6)
	if _, err := io.ReadFull(r, body); err != nil {
		t.Fatal(err)
	}
	if string(body) != "world\n" {
		t.Fatalf("value body %q", body)
	}
	send("del k\n")
	expectLine("DELETED")
	send("get k\n")
	expectLine("MISS")
	send("bogus\n")
	expectLine(`ERR unknown verb "bogus"`)
	send("quit\n")
}

// TestMagecacheClusterChaos is the acceptance criterion: with the value
// heap on a 1-shard x 2-replica cluster, killing one replica mid-run
// and restarting it must complete with zero client-visible errors —
// failover hides the outage, resync re-admits the node.
func TestMagecacheClusterChaos(t *testing.T) {
	const capacity = 256 << 20
	srvs := make([]*memnode.Server, 2)
	addrs := make([]string, 2)
	for i := range srvs {
		srv, err := memnode.NewServer("127.0.0.1:0", capacity)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	cl, err := memcluster.New([][]string{addrs}, memcluster.Options{
		ProbeInterval:   5 * time.Millisecond,
		ProbeBackoffMax: 20 * time.Millisecond,
		DisableProber:   true,
		Node: memnode.Options{
			DialTimeout: 250 * time.Millisecond,
			IOTimeout:   time.Second,
			MaxAttempts: 2,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cache, err := NewCache(cl, 2048, 256, CacheOptions{
		Pager: upager.Options{NoPrefetch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	const keys = 2000
	sweep := func(tag string) {
		t.Helper()
		for i := 0; i < keys; i++ {
			key := keyName(int64(i))
			v, ok, err := cache.Get(key)
			if err != nil {
				t.Fatalf("%s: get %s: %v", tag, key, err)
			}
			if !ok {
				if err := cache.Set(key, valFor(int64(i))); err != nil {
					t.Fatalf("%s: fill %s: %v", tag, key, err)
				}
				continue
			}
			if err := checkVal(int64(i), v); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
		}
	}
	sweep("warmup")

	// Kill replica 0 while a concurrent sweep hammers the cache; every
	// op must succeed via failover to the peer.
	var sweepErrs atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < keys; i++ {
				k := int64((i*13 + w*331) % keys)
				v, ok, err := cache.Get(keyName(k))
				if err == nil && ok {
					err = checkVal(k, v)
				}
				if err == nil && !ok {
					err = cache.Set(keyName(k), valFor(k))
				}
				if err == nil && i%7 == 0 {
					err = cache.Set(keyName(k), valFor(k))
				}
				if err != nil {
					sweepErrs.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}
	close(start)
	srvs[0].Close()
	wg.Wait()
	if n := sweepErrs.Load(); n > 0 {
		t.Fatalf("%d client-visible errors during replica outage (first: %v)", n, firstErr.Load())
	}

	// Restart on the same address; the bind can race the dying
	// listener, so restarting is itself a poll.
	deadline := time.Now().Add(15 * time.Second)
	var restarted *memnode.Server
	for restarted == nil {
		if time.Now().After(deadline) {
			t.Fatal("could not rebind the killed replica's address")
		}
		restarted, _ = memnode.NewServer(addrs[0], capacity)
		if restarted == nil {
			runtime.Gosched()
		}
	}
	defer restarted.Close()
	for cl.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica not re-admitted; stats: %+v", cl.Stats())
		}
		cl.ProbeNow()
	}
	sweep("post-readmission")
	if s := cache.Pager().Stats(); s.WritebackErrors > 0 {
		// Write-behind may surface transient errors internally; what
		// matters is that none became client-visible and retries
		// landed. Flush must succeed now.
		if err := cache.Pager().Flush(); err != nil {
			t.Fatalf("flush after chaos: %v", err)
		}
	}
}

// BenchmarkMagecacheZipf is the headline number: sustained cache ops/s
// with the value heap at a remote:local ratio of 8:1 over a live
// memnode socket, phased Zipf/storm/crowd traffic, zero failed ops
// tolerated. CI pins the ops/s floor via benchsnap -require.
func BenchmarkMagecacheZipf(b *testing.B) {
	const keys = 1 << 15
	heapPages := heapPagesFor(keys)
	frames := int(heapPages) / 8
	cache := newTestCache(b, heapPages, frames)
	b.ResetTimer()
	r := runLoad(cache, loadConfig{
		keys: keys, workers: 8, totalOps: b.N,
		theta: 0.99, setFrac: 0.1, sloP99Us: 2000, seed: 1,
	})
	b.StopTimer()
	if r.Fails > 0 {
		b.Fatalf("%d failed ops (first: %v)", r.Fails, r.FirstErr)
	}
	b.ReportMetric(r.OpsPerSec, "ops/s")
	b.ReportMetric(r.P99Us, "p99-us")
	cs := cache.Stats()
	if cs.Gets > 0 {
		b.ReportMetric(float64(cs.Gets-cs.Misses)/float64(cs.Gets)*100, "hit-%")
	}
	fmt.Printf("cluster-topology: bench=BenchmarkMagecacheZipf shards=1 replicas=1 transport=tcp ratio=8:1\n")
}
