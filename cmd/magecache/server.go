package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// serveCache speaks a minimal memcached-flavoured text protocol:
//
//	get <key>\n            -> VALUE <n>\n<bytes>\n | MISS\n
//	set <key> <n>\n<bytes>\n -> STORED\n
//	del <key>\n            -> DELETED\n | MISS\n
//	quit\n                 closes the connection
//
// Errors are reported as "ERR <reason>\n"; oversized or malformed
// requests close the connection.
func serveCache(ln net.Listener, c *Cache) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go handleConn(conn, c)
	}
}

func handleConn(conn net.Conn, c *Cache) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "get":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR get wants 1 arg\n")
				break
			}
			val, ok, err := c.Get(fields[1])
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !ok:
				fmt.Fprintf(w, "MISS\n")
			default:
				fmt.Fprintf(w, "VALUE %d\n", len(val))
				w.Write(val)
				w.WriteByte('\n')
			}
		case "set":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR set wants 2 args\n")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > pageBytes {
				fmt.Fprintf(w, "ERR bad length\n")
				return
			}
			buf := make([]byte, n+1) // payload + trailing newline
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			if err := c.Set(fields[1], buf[:n]); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			} else {
				fmt.Fprintf(w, "STORED\n")
			}
		case "del":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR del wants 1 arg\n")
				break
			}
			if c.Delete(fields[1]) {
				fmt.Fprintf(w, "DELETED\n")
			} else {
				fmt.Fprintf(w, "MISS\n")
			}
		case "quit":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown verb %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
