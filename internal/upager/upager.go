// Package upager is a user-level pager: it manages a small local page
// arena over a far-memory backing store, giving real host services the
// same fault/evict mechanics the DES models — demand fault-in over the
// async futures API, a sequential-pattern prefetch window, CLOCK
// second-chance frame reclaim, and a dedicated write-behind evictor
// that batches dirty victims into WRITEV frames (the paper's P2
// cross-batch pipeline, in userspace).
//
// The pager is the userspace mirror of the kernel data path the paper
// instruments: Pin is the page fault, the evictor is the reclaim
// thread, and the Stats counters expose the fault/eviction balance the
// paper's controller steers by. Concurrent faults on one page coalesce
// on a per-page latch, so a hot miss costs one wire read however many
// goroutines hit it.
package upager

import (
	"errors"
	"fmt"
	"sync"        //magevet:ok real-host pager over a live network client: per-page latches and one metadata mutex
	"sync/atomic" //magevet:ok lock-free fault/eviction balance counters read by monitoring
	"time"

	"mage/internal/memnode"
	"mage/internal/prefetch"
	"mage/internal/stats"
)

// Backing is the far-memory store a pager swaps against. Both
// memnode.Client and memcluster.Cluster satisfy it.
type Backing interface {
	Register(size int64) (uint64, error)
	Read(handle uint64, offset, length int64) ([]byte, error)
	Write(handle uint64, offset int64, data []byte) error
	ReadV(handle uint64, offsets []int64, pageBytes int64) ([][]byte, error)
	WriteV(handle uint64, offsets []int64, pages [][]byte) error
}

// AsyncBacking is a Backing that can issue one-sided reads returning a
// future, letting the demand read overlap frame reclaim.
// memnode.Client satisfies it; the pager falls back to the synchronous
// Read when the backing does not.
type AsyncBacking interface {
	Backing
	ReadAsync(handle uint64, offset, length int64) *memnode.Pending
}

// ErrClosed is returned by Pin after Close.
var ErrClosed = errors.New("upager: pager closed")

// Page lifecycle. Transitions happen under Pager.mu; the latch channel
// is non-nil exactly while the page is in a transient state
// (faulting/evicting) and is closed when the transition completes, so
// concurrent pinners wait without spinning.
const (
	pageAbsent   = iota // only in far memory
	pageFaulting        // one fault in flight; pinners wait on latch
	pageResident        // in a local frame
	pageEvicting        // write-behind in flight; pinners wait on latch
)

const noPage = ^uint64(0)

type page struct {
	state      int8
	dirty      bool
	ref        bool // CLOCK second-chance bit
	prefetched bool // resident via prefetch, not yet touched
	pins       int32
	frame      int32
	latch      chan struct{}
}

// Options sizes a Pager. The zero value of every field selects a
// default.
type Options struct {
	// PageBytes is the page size (default 4096).
	PageBytes int64
	// EvictBatch caps dirty pages per write-behind WRITEV (default 32,
	// capped at memnode.MaxBatchPages).
	EvictBatch int
	// LowWater is the free-frame target: the evictor runs until at
	// least this many frames are free (default max(EvictBatch,
	// frames/8), at least 1).
	LowWater int
	// Detector proposes prefetch pages from the fault stream. Default
	// is a Leap-style majority-stride detector; NoPrefetch disables.
	Detector   prefetch.Detector
	NoPrefetch bool
}

// Pager pages a numPages*PageBytes region through a frames-sized local
// arena.
type Pager struct {
	backing   Backing
	async     AsyncBacking // nil when backing has no futures API
	handle    uint64
	pageBytes int64
	numPages  uint64
	frames    int
	batch     int
	lowWater  int

	arena []byte

	mu     sync.Mutex // guards pages, owner, hand, closed
	pages  []page
	owner  []uint64 // frame -> resident page, noPage when free or in transit
	hand   int      // CLOCK hand over frames
	closed bool

	freeC chan int32    // free frame pool (buffered to frames: sends never block)
	kickC chan struct{} // nudges the evictor (buffered 1)
	stopC chan struct{}
	doneC chan struct{} // evictor exited

	detMu sync.Mutex // the detector sees the global fault stream
	det   prefetch.Detector

	prefetchWG sync.WaitGroup

	// Fault/eviction balance counters (the paper's steering signals).
	faults          atomic.Uint64
	hits            atomic.Uint64
	coalesced       atomic.Uint64
	prefetchIssued  atomic.Uint64
	prefetchHits    atomic.Uint64
	prefetchDropped atomic.Uint64
	evictions       atomic.Uint64
	cleanDrops      atomic.Uint64
	wbBatches       atomic.Uint64
	wbPages         atomic.Uint64
	wbErrors        atomic.Uint64

	faultLat *stats.ConcurrentHistogram
}

// New registers a numPages-page region on backing and returns a pager
// holding frames local frames over it. frames bounds local memory: the
// remote:local ratio of an experiment is numPages/frames.
func New(backing Backing, numPages uint64, frames int, opts Options) (*Pager, error) {
	if numPages == 0 {
		return nil, errors.New("upager: zero-page region")
	}
	if frames <= 0 {
		return nil, errors.New("upager: need at least one local frame")
	}
	pb := opts.PageBytes
	if pb <= 0 {
		pb = 4096
	}
	// The evictor must never be asked to reclaim most of the arena:
	// batch and low-water both cap at half the frames so a fresh fault
	// cannot be evicted just to satisfy the free-pool target.
	half := frames / 2
	if half < 1 {
		half = 1
	}
	batch := opts.EvictBatch
	if batch <= 0 {
		batch = 32
	}
	if batch > memnode.MaxBatchPages {
		batch = memnode.MaxBatchPages
	}
	if batch > half {
		batch = half
	}
	low := opts.LowWater
	if low <= 0 {
		low = frames / 8
		if low > batch {
			low = batch
		}
	}
	if low > half {
		low = half
	}
	if low < 1 {
		low = 1
	}
	handle, err := backing.Register(int64(numPages) * pb)
	if err != nil {
		return nil, fmt.Errorf("upager: register backing region: %w", err)
	}
	p := &Pager{
		backing:   backing,
		handle:    handle,
		pageBytes: pb,
		numPages:  numPages,
		frames:    frames,
		batch:     batch,
		lowWater:  low,
		arena:     make([]byte, int64(frames)*pb),
		pages:     make([]page, numPages),
		owner:     make([]uint64, frames),
		freeC:     make(chan int32, frames),
		kickC:     make(chan struct{}, 1),
		stopC:     make(chan struct{}),
		doneC:     make(chan struct{}),
		faultLat:  stats.NewConcurrentHistogram(),
	}
	p.async, _ = backing.(AsyncBacking)
	for f := 0; f < frames; f++ {
		p.owner[f] = noPage
		p.freeC <- int32(f)
	}
	if !opts.NoPrefetch {
		p.det = opts.Detector
		if p.det == nil {
			p.det = prefetch.NewMajority(8, 8, numPages)
		}
	}
	go p.evictLoop() //magevet:ok real-host pager: the dedicated write-behind evictor thread
	return p, nil
}

// PageBytes returns the page size.
func (p *Pager) PageBytes() int64 { return p.pageBytes }

// NumPages returns the region size in pages.
func (p *Pager) NumPages() uint64 { return p.numPages }

// Frame is a pinned view of one resident page. Data aliases the arena;
// it is valid until Unpin, after which the frame may be evicted and
// reused. Write access requires having pinned with write=true, which
// marks the page dirty for write-behind.
type Frame struct {
	Data []byte
	p    *Pager
	pg   uint64
}

// Unpin releases the pin. The Frame must not be used afterwards.
func (f Frame) Unpin() {
	p := f.p
	p.mu.Lock()
	pd := &p.pages[f.pg]
	pd.pins--
	idle := pd.pins == 0
	p.mu.Unlock()
	// A fault may be blocked on a free frame with every frame pinned;
	// this unpin could be the one that makes a victim available.
	if idle && len(p.freeC) < p.lowWater {
		p.kick()
	}
}

// Pin faults page pg into the local arena (if needed) and pins it. A
// write pin marks the page dirty; its mutations are persisted by the
// write-behind evictor or Flush. Concurrent Pins of one absent page
// coalesce onto a single backing read.
func (p *Pager) Pin(pg uint64, write bool) (Frame, error) {
	if pg >= p.numPages {
		return Frame{}, fmt.Errorf("upager: page %d out of range [0,%d)", pg, p.numPages)
	}
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return Frame{}, ErrClosed
		}
		pd := &p.pages[pg]
		switch pd.state {
		case pageResident:
			pd.ref = true
			pd.pins++
			if write {
				pd.dirty = true
			}
			if pd.prefetched {
				pd.prefetched = false
				p.prefetchHits.Add(1)
			}
			frame := pd.frame
			p.mu.Unlock()
			p.hits.Add(1)
			return p.frameView(pg, frame), nil
		case pageFaulting, pageEvicting:
			latch := pd.latch
			p.mu.Unlock()
			p.coalesced.Add(1)
			<-latch
			// Retry: faulting pages land resident; evicted pages need a
			// fresh fault.
		case pageAbsent:
			pd.state = pageFaulting
			pd.latch = make(chan struct{})
			p.mu.Unlock()
			return p.faultIn(pg, write)
		}
	}
}

func (p *Pager) frameView(pg uint64, frame int32) Frame {
	return Frame{Data: p.frameData(frame), p: p, pg: pg}
}

func (p *Pager) frameData(frame int32) []byte {
	off := int64(frame) * p.pageBytes
	return p.arena[off : off+p.pageBytes : off+p.pageBytes]
}

// faultIn runs the major-fault path for a page already claimed as
// pageFaulting by the caller: issue the demand read, reclaim a frame
// while it flies, install, then feed the prefetcher.
func (p *Pager) faultIn(pg uint64, write bool) (Frame, error) {
	start := time.Now() //magevet:ok real-host pager: fault service time is a reported metric
	p.faults.Add(1)
	off := int64(pg) * p.pageBytes

	// Issue the read before blocking on a frame so the wire round-trip
	// overlaps reclaim.
	var pending *memnode.Pending
	if p.async != nil {
		pending = p.async.ReadAsync(p.handle, off, p.pageBytes)
	}

	frame, err := p.takeFrame()
	if err != nil {
		if pending != nil {
			if body, werr := pending.Wait(); werr == nil {
				memnode.PutBuf(body)
			}
		}
		p.abortFault(pg)
		return Frame{}, err
	}

	var body []byte
	if pending != nil {
		body, err = pending.Wait()
	} else {
		body, err = p.backing.Read(p.handle, off, p.pageBytes)
	}
	if err != nil {
		p.freeC <- frame
		p.abortFault(pg)
		return Frame{}, fmt.Errorf("upager: fault-in page %d: %w", pg, err)
	}
	copy(p.frameData(frame), body)
	memnode.PutBuf(body)

	p.mu.Lock()
	pd := &p.pages[pg]
	pd.state = pageResident
	pd.frame = frame
	pd.dirty = write
	pd.ref = true
	pd.prefetched = false
	pd.pins = 1
	p.owner[frame] = pg
	close(pd.latch)
	pd.latch = nil
	p.mu.Unlock()

	p.faultLat.Record(time.Since(start).Nanoseconds()) //magevet:ok real-host pager: fault service time is a reported metric
	p.maybePrefetch(pg)
	return p.frameView(pg, frame), nil
}

// abortFault rolls a claimed page back to absent and releases waiters,
// who will retry and surface their own error.
func (p *Pager) abortFault(pg uint64) {
	p.mu.Lock()
	pd := &p.pages[pg]
	pd.state = pageAbsent
	close(pd.latch)
	pd.latch = nil
	p.mu.Unlock()
}

// takeFrame pops a free frame, kicking the evictor and blocking while
// none are free. It fails only once the pager is closing.
func (p *Pager) takeFrame() (int32, error) {
	select {
	case f := <-p.freeC:
		p.maybeKick()
		return f, nil
	default:
	}
	p.kick()
	select {
	case f := <-p.freeC:
		p.maybeKick()
		return f, nil
	case <-p.stopC:
		return -1, ErrClosed
	}
}

// tryTakeFrame is the non-blocking variant the prefetcher uses: under
// frame pressure prefetch is dropped rather than queued.
func (p *Pager) tryTakeFrame() (int32, bool) {
	select {
	case f := <-p.freeC:
		p.maybeKick()
		return f, true
	default:
		return -1, false
	}
}

func (p *Pager) kick() {
	select {
	case p.kickC <- struct{}{}:
	default:
	}
}

func (p *Pager) maybeKick() {
	if len(p.freeC) < p.lowWater {
		p.kick()
	}
}

// maybePrefetch feeds the fault address to the detector and issues
// asynchronous fills for its proposals. Prefetch never blocks the
// faulting caller: no free frame means the candidate is dropped.
func (p *Pager) maybePrefetch(pg uint64) {
	if p.det == nil {
		return
	}
	p.detMu.Lock()
	cands := p.det.OnFault(pg)
	p.detMu.Unlock()
	for _, c := range cands {
		if c >= p.numPages {
			continue
		}
		frame, ok := p.tryTakeFrame()
		if !ok {
			p.prefetchDropped.Add(1)
			continue
		}
		p.mu.Lock()
		pd := &p.pages[c]
		if p.closed || pd.state != pageAbsent {
			p.mu.Unlock()
			p.freeC <- frame
			continue
		}
		pd.state = pageFaulting
		pd.latch = make(chan struct{})
		// Add under mu so Close (which sets closed under mu before
		// waiting) can never miss an in-flight fill.
		p.prefetchWG.Add(1)
		p.mu.Unlock()
		p.prefetchIssued.Add(1)
		go p.prefetchFill(c, frame) //magevet:ok real-host pager: prefetch fills overlap demand faults by design
	}
}

// prefetchFill completes one prefetch: read, install unpinned with the
// reference bit clear, so untouched prefetches are the first CLOCK
// victims.
func (p *Pager) prefetchFill(pg uint64, frame int32) {
	defer p.prefetchWG.Done()
	off := int64(pg) * p.pageBytes
	body, err := p.backing.Read(p.handle, off, p.pageBytes)
	if err != nil {
		p.freeC <- frame
		p.abortFault(pg)
		return
	}
	copy(p.frameData(frame), body)
	memnode.PutBuf(body)
	p.mu.Lock()
	pd := &p.pages[pg]
	pd.state = pageResident
	pd.frame = frame
	pd.dirty = false
	pd.ref = false
	pd.prefetched = true
	pd.pins = 0
	p.owner[frame] = pg
	close(pd.latch)
	pd.latch = nil
	p.mu.Unlock()
}

// evictLoop is the write-behind evictor: on every kick it reclaims
// frames until the free pool is back above the low-water mark, batching
// dirty victims into WRITEV frames.
func (p *Pager) evictLoop() {
	defer close(p.doneC)
	for {
		select {
		case <-p.stopC:
			return
		case <-p.kickC:
		}
		for len(p.freeC) < p.lowWater {
			progress, err := p.evictSome()
			if err != nil || !progress {
				// Writeback failure or nothing evictable (all pinned or
				// in transit): wait for the next kick rather than spin.
				break
			}
			select {
			case <-p.stopC:
				return
			default:
			}
		}
	}
}

// evictSome runs one CLOCK sweep. Clean victims are freed on the spot;
// dirty victims transition to pageEvicting (blocking new pinners, so
// the in-flight WRITEV can safely alias the arena) and go out as one
// batch. Returns whether the sweep made progress toward freeing frames.
func (p *Pager) evictSome() (bool, error) {
	var (
		victims []uint64
		offs    []int64
		bufs    [][]byte
	)
	progress := false
	p.mu.Lock()
	// Two revolutions bound the sweep: the first may only clear
	// reference bits, the second then finds victims.
	for scanned := 0; scanned < 2*p.frames && len(victims) < p.batch; scanned++ {
		f := p.hand
		p.hand = (p.hand + 1) % p.frames
		pg := p.owner[f]
		if pg == noPage {
			continue
		}
		pd := &p.pages[pg]
		if pd.state != pageResident || pd.pins > 0 {
			continue
		}
		if pd.ref {
			pd.ref = false
			progress = true
			continue
		}
		if !pd.dirty {
			pd.state = pageAbsent
			pd.prefetched = false
			p.owner[f] = noPage
			p.freeC <- int32(f) //magevet:ok freeC is buffered to frames, so returning a frame can never block
			p.cleanDrops.Add(1)
			p.evictions.Add(1)
			progress = true
			continue
		}
		pd.state = pageEvicting
		pd.latch = make(chan struct{})
		victims = append(victims, pg)
		offs = append(offs, int64(pg)*p.pageBytes)
		bufs = append(bufs, p.frameData(int32(f)))
	}
	p.mu.Unlock()
	if len(victims) == 0 {
		return progress, nil
	}

	// The batch write runs with no lock held: pageEvicting keeps
	// writers off these frames, and the arena bytes go out zero-copy.
	err := p.backing.WriteV(p.handle, offs, bufs)

	p.mu.Lock()
	if err != nil {
		// Put the victims back; they stay dirty and will be retried on
		// a later sweep.
		for _, pg := range victims {
			pd := &p.pages[pg]
			pd.state = pageResident
			close(pd.latch)
			pd.latch = nil
		}
		p.mu.Unlock()
		p.wbErrors.Add(1)
		return progress, fmt.Errorf("upager: write-behind batch: %w", err)
	}
	for _, pg := range victims {
		pd := &p.pages[pg]
		pd.state = pageAbsent
		pd.dirty = false
		pd.prefetched = false
		p.owner[pd.frame] = noPage
		p.freeC <- pd.frame
		close(pd.latch)
		pd.latch = nil
	}
	p.mu.Unlock()
	n := uint64(len(victims))
	p.evictions.Add(n)
	p.wbBatches.Add(1)
	p.wbPages.Add(n)
	return true, nil
}

// Flush writes back every dirty unpinned page, leaving it resident and
// clean. Pages pinned for write while Flush runs are picked up by a
// later batch within the same call; pages still write-pinned when the
// sweep completes are reported as an error (the caller owns quiescing
// writers before a checkpoint).
func (p *Pager) Flush() error {
	for {
		var (
			victims []uint64
			offs    []int64
			bufs    [][]byte
		)
		pinnedDirty := 0
		p.mu.Lock()
		for pg := range p.pages {
			pd := &p.pages[pg]
			if pd.state != pageResident || !pd.dirty {
				continue
			}
			if pd.pins > 0 {
				pinnedDirty++
				continue
			}
			if len(victims) == p.batch {
				continue
			}
			pd.state = pageEvicting // block writers while the batch is on the wire
			pd.latch = make(chan struct{})
			victims = append(victims, uint64(pg))
			offs = append(offs, int64(pg)*p.pageBytes)
			bufs = append(bufs, p.frameData(pd.frame))
		}
		p.mu.Unlock()
		if len(victims) == 0 {
			if pinnedDirty > 0 {
				return fmt.Errorf("upager: flush left %d dirty pages pinned by writers", pinnedDirty)
			}
			return nil
		}
		err := p.backing.WriteV(p.handle, offs, bufs)
		p.mu.Lock()
		for _, pg := range victims {
			pd := &p.pages[pg]
			pd.state = pageResident
			if err == nil {
				pd.dirty = false
			}
			close(pd.latch)
			pd.latch = nil
		}
		p.mu.Unlock()
		if err != nil {
			p.wbErrors.Add(1)
			return fmt.Errorf("upager: flush batch: %w", err)
		}
		p.wbBatches.Add(1)
		p.wbPages.Add(uint64(len(victims)))
	}
}

// Close flushes dirty pages, stops the evictor, and marks the pager
// unusable. In-flight prefetches are drained first. The backing store
// is not closed; the caller owns it.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.prefetchWG.Wait()
	err := p.Flush()
	close(p.stopC)
	<-p.doneC
	return err
}

// Stats is a point-in-time snapshot of the pager's balance counters.
type Stats struct {
	// Faults counts major faults (backing reads on the demand path).
	Faults uint64
	// Hits counts pins served by an already-resident page.
	Hits uint64
	// Coalesced counts pins that waited on another pin's in-flight
	// fault or on an eviction instead of issuing their own read.
	Coalesced uint64
	// PrefetchIssued/Hits/Dropped: prefetch fills started, prefetched
	// pages later pinned before eviction, and candidates dropped for
	// lack of a free frame.
	PrefetchIssued  uint64
	PrefetchHits    uint64
	PrefetchDropped uint64
	// Evictions counts frames reclaimed (clean drops + written back).
	Evictions uint64
	// CleanDrops counts evictions that needed no writeback.
	CleanDrops uint64
	// WritebackBatches/Pages count write-behind WRITEV frames and the
	// pages they carried; Pages/Batches is the achieved batching factor.
	WritebackBatches uint64
	WritebackPages   uint64
	WritebackErrors  uint64
	// FreeFrames is the current free pool depth.
	FreeFrames int
}

// Stats returns the current counter snapshot.
func (p *Pager) Stats() Stats {
	return Stats{
		Faults:           p.faults.Load(),
		Hits:             p.hits.Load(),
		Coalesced:        p.coalesced.Load(),
		PrefetchIssued:   p.prefetchIssued.Load(),
		PrefetchHits:     p.prefetchHits.Load(),
		PrefetchDropped:  p.prefetchDropped.Load(),
		Evictions:        p.evictions.Load(),
		CleanDrops:       p.cleanDrops.Load(),
		WritebackBatches: p.wbBatches.Load(),
		WritebackPages:   p.wbPages.Load(),
		WritebackErrors:  p.wbErrors.Load(),
		FreeFrames:       len(p.freeC),
	}
}

// FaultLatency returns a snapshot of the major-fault service-time
// histogram.
func (p *Pager) FaultLatency() *stats.Histogram { return p.faultLat.Snapshot() }
