package upager

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mage/internal/memnode"
	"mage/internal/prefetch"
)

// fakeBacking is an in-memory Backing with op accounting and an
// optional failure injector, so unit tests need no sockets.
type fakeBacking struct {
	mu      sync.Mutex
	mem     []byte
	reads   atomic.Uint64
	writevs atomic.Uint64
	wvPages atomic.Uint64
	failWV  atomic.Bool
}

func newFakeBacking() *fakeBacking { return &fakeBacking{} }

func (f *fakeBacking) Register(size int64) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mem = make([]byte, size)
	return 1, nil
}

func (f *fakeBacking) Read(handle uint64, offset, length int64) ([]byte, error) {
	f.reads.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, length)
	copy(out, f.mem[offset:offset+length])
	return out, nil
}

func (f *fakeBacking) Write(handle uint64, offset int64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	copy(f.mem[offset:], data)
	return nil
}

func (f *fakeBacking) ReadV(handle uint64, offsets []int64, pageBytes int64) ([][]byte, error) {
	out := make([][]byte, len(offsets))
	for i, off := range offsets {
		b, err := f.Read(handle, off, pageBytes)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (f *fakeBacking) WriteV(handle uint64, offsets []int64, pages [][]byte) error {
	if f.failWV.Load() {
		return fmt.Errorf("fake: injected writev failure")
	}
	f.writevs.Add(1)
	f.wvPages.Add(uint64(len(pages)))
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, off := range offsets {
		copy(f.mem[off:], pages[i])
	}
	return nil
}

func stampPage(data []byte, pg uint64) {
	binary.LittleEndian.PutUint64(data, pg^0x6d616765)
}

func checkPage(t *testing.T, data []byte, pg uint64) {
	t.Helper()
	if got := binary.LittleEndian.Uint64(data); got != pg^0x6d616765 {
		t.Fatalf("page %d content stamp = %#x, want %#x", pg, got, pg^0x6d616765)
	}
}

func TestFaultEvictRoundtrip(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 256, 16, Options{EvictBatch: 8, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Dirty every page: with 16 frames over 256 pages the evictor must
	// cycle the arena many times over.
	for pg := uint64(0); pg < 256; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatalf("pin %d: %v", pg, err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every page must read back its stamp, whether it survived locally
	// or went through writeback.
	for pg := uint64(0); pg < 256; pg++ {
		fr, err := p.Pin(pg, false)
		if err != nil {
			t.Fatalf("repin %d: %v", pg, err)
		}
		checkPage(t, fr.Data, pg)
		fr.Unpin()
	}
	s := p.Stats()
	if s.Evictions == 0 {
		t.Error("16 frames over 256 dirty pages evicted nothing")
	}
	if s.WritebackPages == 0 {
		t.Error("dirty evictions produced no writeback")
	}
}

// TestWriteBehindBatches verifies dirty victims leave in multi-page
// WRITEV frames, not page-at-a-time — the P2 cross-batch pipeline
// behaviour the pager exists to reproduce.
func TestWriteBehindBatches(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 1024, 64, Options{EvictBatch: 16, LowWater: 32, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for pg := uint64(0); pg < 1024; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatal(err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	batches, pages := fb.writevs.Load(), fb.wvPages.Load()
	if batches == 0 {
		t.Fatal("no writev batches reached the backing")
	}
	if avg := float64(pages) / float64(batches); avg < 4 {
		t.Errorf("writeback batching factor %.1f pages/batch; want >= 4", avg)
	}
	if fb.reads.Load() != 1024 {
		t.Errorf("backing saw %d reads; want exactly one fault per page (1024)", fb.reads.Load())
	}
}

// TestConcurrentFaultCoalescing: many goroutines pinning one absent
// page must coalesce onto a single backing read.
func TestConcurrentFaultCoalescing(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 64, 8, Options{NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const workers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			fr, err := p.Pin(7, false)
			if err != nil {
				errs <- err
				return
			}
			fr.Unpin()
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fb.reads.Load(); got != 1 {
		t.Fatalf("%d concurrent pins issued %d backing reads; want 1", workers, got)
	}
	s := p.Stats()
	if s.Faults != 1 {
		t.Errorf("faults = %d, want 1", s.Faults)
	}
	if s.Hits+s.Coalesced < workers-1 {
		t.Errorf("hits+coalesced = %d, want >= %d", s.Hits+s.Coalesced, workers-1)
	}
}

// TestConcurrentMixedChurn is the race-detector workout: many workers
// pinning, writing, and unpinning across a region much larger than the
// arena while the evictor churns underneath.
func TestConcurrentMixedChurn(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 512, 32, Options{EvictBatch: 8, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				pg := uint64((w*131 + i*17) % 512)
				write := i%3 == 0
				fr, err := p.Pin(pg, write)
				if err != nil {
					errs <- fmt.Errorf("worker %d pin %d: %w", w, pg, err)
					return
				}
				if write {
					stampPage(fr.Data, pg)
				}
				fr.Unpin()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Faults == 0 || s.Evictions == 0 {
		t.Errorf("churn produced faults=%d evictions=%d; want both > 0", s.Faults, s.Evictions)
	}
}

// TestWritebackFailureKeepsPagesDirty: a failed write-behind batch must
// leave the victims resident and dirty, and their data must survive to
// a later successful flush.
func TestWritebackFailureKeepsPagesDirty(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 64, 8, Options{EvictBatch: 4, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	fb.failWV.Store(true)
	for pg := uint64(0); pg < 8; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatal(err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	if err := p.Flush(); err == nil {
		t.Fatal("flush succeeded against a failing backing")
	}
	fb.failWV.Store(false)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WritebackErrors == 0 {
		t.Error("no writeback error recorded")
	}
	// The stamps must have reached the backing on the retry.
	for pg := uint64(0); pg < 8; pg++ {
		b, err := fb.Read(1, int64(pg)*4096, 8)
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(b) != pg^0x6d616765 {
			t.Fatalf("page %d stamp missing from backing after retry", pg)
		}
	}
}

// TestSequentialPrefetch: a strided fault stream must trigger the
// detector and serve later pins without demand faults.
func TestSequentialPrefetch(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 4096, 256, Options{Detector: prefetch.NewMajority(8, 8, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for pg := uint64(0); pg < 512; pg++ {
		fr, err := p.Pin(pg, false)
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	s := p.Stats()
	if s.PrefetchIssued == 0 {
		t.Fatal("sequential walk issued no prefetch")
	}
	if s.PrefetchHits == 0 {
		t.Error("no prefetched page was later pinned")
	}
	if s.Faults >= 512 {
		t.Errorf("every pin was a demand fault (%d) despite prefetch", s.Faults)
	}
}

// TestPinBounds and option validation.
func TestPinBounds(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 16, 4, Options{NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Pin(16, false); err == nil {
		t.Error("out-of-range pin accepted")
	}
	if _, err := New(fb, 0, 4, Options{}); err == nil {
		t.Error("zero-page pager accepted")
	}
	if _, err := New(fb, 16, 0, Options{}); err == nil {
		t.Error("zero-frame pager accepted")
	}
}

func TestPinAfterClose(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 16, 4, Options{NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin(0, false); err != ErrClosed {
		t.Errorf("pin after close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestHitPathTouchesNoNetwork pins the acceptance criterion directly
// against a real memnode: once a page is resident, repeated pins must
// leave the client's per-verb wire counters completely flat.
func TestHitPathTouchesNoNetwork(t *testing.T) {
	srv, err := memnode.NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := memnode.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := New(c, 1024, 128, Options{NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Fault in a working set smaller than the arena.
	for pg := uint64(0); pg < 64; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatal(err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	before := c.Metrics()
	for round := 0; round < 100; round++ {
		for pg := uint64(0); pg < 64; pg++ {
			fr, err := p.Pin(pg, false)
			if err != nil {
				t.Fatal(err)
			}
			checkPage(t, fr.Data, pg)
			fr.Unpin()
		}
	}
	after := c.Metrics()
	if after.Read != before.Read || after.ReadV != before.ReadV ||
		after.Write != before.Write || after.WriteV != before.WriteV {
		t.Fatalf("hit path touched the network: before %+v/%+v after %+v/%+v",
			before.Read, before.Write, after.Read, after.Write)
	}
	s := p.Stats()
	if s.Hits < 6400 {
		t.Errorf("hits = %d, want >= 6400", s.Hits)
	}
}

// TestAsyncBackingUsed: against a memnode client the demand path must
// go through the futures API (ReadAsync wraps Read, so the wire counter
// still moves — this test checks content integrity end to end over a
// real socket including write-behind and re-fault).
func TestMemnodeRoundtrip(t *testing.T) {
	srv, err := memnode.NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := memnode.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := New(c, 2048, 64, Options{EvictBatch: 16, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.async == nil {
		t.Fatal("memnode.Client not detected as AsyncBacking")
	}
	for pg := uint64(0); pg < 2048; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatal(err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	for pg := uint64(0); pg < 2048; pg++ {
		fr, err := p.Pin(pg, false)
		if err != nil {
			t.Fatal(err)
		}
		checkPage(t, fr.Data, pg)
		fr.Unpin()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.WritebackBatches == 0 {
		t.Error("no write-behind batches over the real socket")
	}
	m := c.Metrics()
	if m.WriteV.Ops == 0 {
		t.Error("client WriteV verb counter never moved")
	}
	if m.WriteV.Ops != s.WritebackBatches {
		t.Errorf("WriteV wire ops %d != pager writeback batches %d", m.WriteV.Ops, s.WritebackBatches)
	}
}

// TestFlushLeavesPagesResident: Flush is a checkpoint, not an eviction
// — flushed pages stay resident and further pins are hits.
func TestFlushLeavesPagesResident(t *testing.T) {
	fb := newFakeBacking()
	p, err := New(fb, 64, 64, Options{NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for pg := uint64(0); pg < 32; pg++ {
		fr, err := p.Pin(pg, true)
		if err != nil {
			t.Fatal(err)
		}
		stampPage(fr.Data, pg)
		fr.Unpin()
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	reads := fb.reads.Load()
	for pg := uint64(0); pg < 32; pg++ {
		fr, err := p.Pin(pg, false)
		if err != nil {
			t.Fatal(err)
		}
		checkPage(t, fr.Data, pg)
		fr.Unpin()
	}
	if got := fb.reads.Load(); got != reads {
		t.Errorf("pins after flush re-faulted: %d extra reads", got-reads)
	}
}
