package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Name: "x"})
	r.Span("a", "b", 0, 0, 0, 10, nil)
	r.Instant("i", "c", 0, 0, 5)
	r.Counter("n", 1, nil)
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded something")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Errorf("nil recorder JSON = %q", buf.String())
	}
	if len(r.Summary()) != 0 {
		t.Error("nil summary non-empty")
	}
}

func TestRecordAndExport(t *testing.T) {
	r := New(0)
	r.Span("fault", "fp", LaneApp, 3, 1000, 5000, map[string]any{"page": 42})
	r.Instant("kick", "ep", LaneEviction, 0, 1500)
	r.Span("evict-batch", "ep", LaneEviction, 1, 2000, 9000, nil)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("exported %d events", len(evs))
	}
	// Sorted by timestamp; microsecond conversion.
	if evs[0]["name"] != "fault" || evs[0]["ts"].(float64) != 1.0 {
		t.Errorf("first event = %v", evs[0])
	}
	if evs[0]["dur"].(float64) != 4.0 {
		t.Errorf("duration = %v, want 4µs", evs[0]["dur"])
	}
	if evs[1]["name"] != "kick" {
		t.Errorf("order wrong: %v", evs[1])
	}
}

// TestProcessNameMetadata: tenant identity export — metadata events carry
// phase "M", the tenant id as PID, and the name in Args, so Chrome's
// trace viewer groups each tenant's spans under a named process lane.
func TestProcessNameMetadata(t *testing.T) {
	r := New(0)
	r.ProcessName(0, "tenant 0: zipf")
	r.ProcessName(1, "tenant 1: seqscan")
	r.Span("fault", "fp", 1, 3, 1000, 5000, nil)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var meta []map[string]any
	for _, e := range evs {
		if e["ph"] == string(PhaseMetadata) {
			meta = append(meta, e)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("exported %d metadata events, want 2", len(meta))
	}
	for i, e := range meta {
		if e["name"] != "process_name" {
			t.Errorf("metadata %d name = %v", i, e["name"])
		}
		if int(e["pid"].(float64)) != i {
			t.Errorf("metadata %d pid = %v, want %d", i, e["pid"], i)
		}
	}
	if args, ok := meta[1]["args"].(map[string]any); !ok || args["name"] != "tenant 1: seqscan" {
		t.Errorf("metadata args = %v", meta[1]["args"])
	}
	for _, e := range evs {
		if e["name"] == "fault" && int(e["pid"].(float64)) != 1 {
			t.Errorf("fault span pid = %v, want the owning tenant id 1", e["pid"])
		}
	}
}

func TestLimitDropsExcess(t *testing.T) {
	r := New(2)
	for i := 0; i < 10; i++ {
		r.Instant("e", "c", 0, 0, int64(i))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestSummary(t *testing.T) {
	r := New(0)
	r.Span("fault", "fp", 0, 0, 0, 100, nil)
	r.Span("fault", "fp", 0, 1, 50, 250, nil)
	r.Instant("kick", "ep", 1, 0, 60)
	s := r.Summary()
	if got := s["fp/fault"]; got.Count != 2 || got.DurNs != 300 {
		t.Errorf("fp/fault = %+v", got)
	}
	if got := s["ep/kick"]; got.Count != 1 {
		t.Errorf("ep/kick = %+v", got)
	}
}
