// Package trace records simulation events and exports them in the Chrome
// trace-event JSON format (chrome://tracing, Perfetto), giving the same
// visibility into fault/eviction interleavings that kernel developers get
// from ftrace on the real systems.
//
// Tracing is optional and zero-cost when disabled: a nil *Recorder
// records nothing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Phase is the Chrome trace-event phase.
type Phase string

const (
	// PhaseComplete is a duration event ("X").
	PhaseComplete Phase = "X"
	// PhaseInstant is a point event ("i").
	PhaseInstant Phase = "i"
	// PhaseCounter is a counter sample ("C").
	PhaseCounter Phase = "C"
	// PhaseMetadata is a metadata record ("M"), e.g. process_name.
	PhaseMetadata Phase = "M"
)

// Event is one trace record. Times are virtual nanoseconds.
type Event struct {
	Name  string
	Cat   string
	Phase Phase
	TS    int64 // start, ns
	Dur   int64 // duration, ns (PhaseComplete only)
	PID   int   // process lane: the owning tenant id (see ProcessName)
	TID   int   // thread within the lane
	Args  map[string]any
}

// Lanes for PID. The core tags every fault/eviction event with the owning
// tenant's id, so chrome://tracing groups spans per tenant; a single-tenant
// system emits everything on lane 0 (== LaneApp, the pre-multi-tenant
// convention kept for tools that hardcode it).
const (
	LaneApp = iota
	LaneEviction
	LaneNet
)

// Recorder accumulates events. A nil Recorder ignores all calls.
type Recorder struct {
	events []Event
	limit  int
}

// New returns a recorder that keeps at most limit events (0 = 1<<20).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add appends an event (dropped silently past the limit or on nil r).
func (r *Recorder) Add(e Event) {
	if r == nil || len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, e)
}

// Span records a completed duration event.
func (r *Recorder) Span(name, cat string, pid, tid int, start, end int64, args map[string]any) {
	r.Add(Event{Name: name, Cat: cat, Phase: PhaseComplete,
		TS: start, Dur: end - start, PID: pid, TID: tid, Args: args})
}

// Instant records a point event.
func (r *Recorder) Instant(name, cat string, pid, tid int, ts int64) {
	r.Add(Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: ts, PID: pid, TID: tid})
}

// Counter records a counter sample.
func (r *Recorder) Counter(name string, ts int64, values map[string]any) {
	r.Add(Event{Name: name, Phase: PhaseCounter, TS: ts, Args: values})
}

// ProcessName emits the Chrome metadata event that labels process lane
// pid in trace viewers. The core emits one per tenant at run start, so a
// multi-tenant trace groups each tenant's spans under its name.
func (r *Recorder) ProcessName(pid int, name string) {
	r.Add(Event{Name: "process_name", Phase: PhaseMetadata, PID: pid,
		Args: map[string]any{"name": name}})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// chromeEvent is the wire format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON exports the trace as a Chrome trace-event array, sorted by
// timestamp.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	evs := make([]Event, len(r.events))
	copy(evs, r.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	out := make([]chromeEvent, len(evs))
	for i, e := range evs {
		out[i] = chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(e.Phase),
			TS:   float64(e.TS) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			PID:  e.PID,
			TID:  e.TID,
			Args: e.Args,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary returns per-(category, name) counts and total duration — a
// cheap sanity view without a trace viewer.
func (r *Recorder) Summary() map[string]struct {
	Count int
	DurNs int64
} {
	out := make(map[string]struct {
		Count int
		DurNs int64
	})
	if r == nil {
		return out
	}
	for _, e := range r.events {
		k := fmt.Sprintf("%s/%s", e.Cat, e.Name)
		s := out[k]
		s.Count++
		s.DurNs += e.Dur
		out[k] = s
	}
	return out
}
