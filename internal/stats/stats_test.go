package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not all-zero: %v", h)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(1234)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1234 || h.Max() != 1234 {
		t.Errorf("min/max = %d/%d, want 1234/1234", h.Min(), h.Max())
	}
	if h.Mean() != 1234 {
		t.Errorf("Mean = %f", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1234 {
			t.Errorf("Quantile(%f) = %d, want 1234", q, got)
		}
	}
}

func TestHistogramNegativeClampedToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-10)
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative sample not clamped: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 10000)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.05 {
			t.Errorf("Quantile(%v) = %d, exact %d, rel err %.3f > 5%%", q, got, exact, relErr)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileWithinMinMax(t *testing.T) {
	f := func(raw []uint32, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		q := float64(qRaw) / 255
		v := h.Quantile(q)
		return v >= h.Min() && v <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergeEquivalentToCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merge mismatch: %v vs %v", a, all)
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d vs combined %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(50)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("reset did not clear: %v", h)
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Errorf("post-reset record broken: %v", h)
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		b := bucketOf(v)
		lo := bucketLow(b)
		hi := bucketLow(b + 1)
		return lo <= v && (v < hi || hi <= lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d, want 42", c.Value())
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("rdma", 3900)
	b.Add("tlb", 100)
	b.Add("rdma", 100)
	b.AddOp()
	b.AddOp()
	if got := b.Component("rdma"); got != 4000 {
		t.Errorf("rdma = %d", got)
	}
	if got := b.PerOp("rdma"); got != 2000 {
		t.Errorf("PerOp(rdma) = %f", got)
	}
	if got := b.Total(); got != 4100 {
		t.Errorf("Total = %d", got)
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "rdma" || comps[1] != "tlb" {
		t.Errorf("Components = %v", comps)
	}
}

func TestBreakdownMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add("x", 10)
	a.AddOp()
	b.Add("x", 20)
	b.Add("y", 5)
	b.AddOp()
	a.Merge(b)
	if a.Component("x") != 30 || a.Component("y") != 5 || a.Ops() != 2 {
		t.Errorf("merge wrong: %v ops=%d", a, a.Ops())
	}
}

func TestTimeSeries(t *testing.T) {
	var s TimeSeries
	s.Add(0, 1.0)
	s.Add(10, 2.0)
	s.Add(20, 0.5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.At(-1); got != 0 {
		t.Errorf("At(-1) = %f", got)
	}
	if got := s.At(10); got != 2.0 {
		t.Errorf("At(10) = %f", got)
	}
	if got := s.At(15); got != 2.0 {
		t.Errorf("At(15) = %f", got)
	}
	if got := s.At(100); got != 0.5 {
		t.Errorf("At(100) = %f", got)
	}
	if s.Min() != 0.5 || s.Max() != 2.0 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if r := m.Rate(1e9, 100); r != 100 {
		t.Errorf("first window rate = %f, want 100", r)
	}
	if r := m.Rate(3e9, 500); r != 200 {
		t.Errorf("second window rate = %f, want 200", r)
	}
	if r := m.Rate(3e9, 600); r != 0 {
		t.Errorf("zero-width window rate = %f, want 0", r)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i & 0xffff))
	}
}

func TestSpans(t *testing.T) {
	var s Spans
	if s.Active() || s.TotalNs() != 0 || s.Count() != 0 {
		t.Fatal("zero Spans not empty")
	}
	s.Enter(100)
	if !s.Active() || s.Count() != 1 {
		t.Fatal("span not open after Enter")
	}
	if got := s.TotalAt(150); got != 50 {
		t.Fatalf("TotalAt(150) = %d, want 50", got)
	}
	// Nested entry: only the outermost pair moves the clock.
	s.Enter(120)
	s.Exit(130)
	if s.TotalNs() != 0 {
		t.Fatalf("inner Exit accrued time: %d", s.TotalNs())
	}
	s.Exit(200)
	if s.Active() || s.TotalNs() != 100 {
		t.Fatalf("after close: active=%v total=%d", s.Active(), s.TotalNs())
	}
	// Second span accumulates.
	s.Enter(300)
	s.Exit(340)
	if s.TotalNs() != 140 || s.Count() != 2 {
		t.Fatalf("total=%d count=%d, want 140/2", s.TotalNs(), s.Count())
	}
	if got := s.TotalAt(999); got != 140 {
		t.Fatalf("TotalAt with no open span = %d, want 140", got)
	}
}

func TestSpansExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Exit did not panic")
		}
	}()
	var s Spans
	s.Exit(10)
}
