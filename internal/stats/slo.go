package stats

// WindowMeter measures throughput over a sliding time window, bucketed
// so memory stays bounded however long the run is. Times are explicit
// int64 nanoseconds — virtual time in the DES, wall-clock nanoseconds in
// the real services — so the meter itself stays deterministic and
// clock-free. Callers serialize access (wrap per worker and Merge, or
// guard with the caller's own lock, like Histogram).
type WindowMeter struct {
	bucketNs int64
	counts   []uint64 // ring of per-bucket op counts
	starts   []int64  // bucket start time per slot; -1 = never used
	firstNs  int64    // time of the first Add; -1 before any
}

// NewWindowMeter returns a meter whose window is buckets*bucketNs wide.
// Finer buckets give a smoother rate at the cost of memory.
func NewWindowMeter(bucketNs int64, buckets int) *WindowMeter {
	if bucketNs <= 0 {
		bucketNs = 1e9
	}
	if buckets < 2 {
		buckets = 2
	}
	m := &WindowMeter{bucketNs: bucketNs, counts: make([]uint64, buckets), starts: make([]int64, buckets), firstNs: -1}
	for i := range m.starts {
		m.starts[i] = -1
	}
	return m
}

// WindowNs returns the window width the meter averages over.
func (m *WindowMeter) WindowNs() int64 { return m.bucketNs * int64(len(m.counts)) }

// slot returns the ring slot for time now, recycling it if its previous
// tenancy has aged out of the window.
func (m *WindowMeter) slot(now int64) int {
	if now < 0 {
		now = 0
	}
	b := now / m.bucketNs
	i := int(b % int64(len(m.counts)))
	start := b * m.bucketNs
	if m.starts[i] != start {
		m.starts[i] = start
		m.counts[i] = 0
	}
	return i
}

// Add records n operations at time now.
func (m *WindowMeter) Add(now int64, n uint64) {
	if m.firstNs < 0 || now < m.firstNs {
		m.firstNs = now
	}
	m.counts[m.slot(now)] += n
}

// Rate returns operations per second over the window ending at now.
// Buckets older than the window are excluded. The averaging span is the
// window width, shortened to the meter's actual lifetime while it is
// still younger than one window — a meter 200ms into a 1s window divides
// by 200ms, not 1s.
func (m *WindowMeter) Rate(now int64) float64 {
	if now <= 0 || m.firstNs < 0 {
		return 0
	}
	cur := now / m.bucketNs
	var ops uint64
	for i := range m.counts {
		if m.starts[i] < 0 {
			continue
		}
		age := cur - m.starts[i]/m.bucketNs
		if age < 0 || age >= int64(len(m.counts)) {
			continue
		}
		ops += m.counts[i]
	}
	span := m.WindowNs()
	if lived := now - m.firstNs; lived < span {
		span = lived
	}
	if span <= 0 || ops == 0 {
		return 0
	}
	return float64(ops) / (float64(span) / 1e9)
}

// SLOTracker scores a latency stream against a target: every recorded
// op either meets the target latency or burns error budget. The budget
// is a fraction (an SLO of "p99 under target" allows 1% of ops over it,
// so BudgetFrac = 0.01); ErrorBudgetRemaining hitting zero means the
// stream no longer meets its SLO. Like Histogram, the tracker is plain
// single-threaded state: concurrent drivers keep one per worker and
// Merge.
type SLOTracker struct {
	// TargetNs is the per-op latency target (the SLO's p99 bound).
	TargetNs int64
	// BudgetFrac is the fraction of ops allowed over target (0.01 for a
	// p99 SLO, 0.001 for p999).
	BudgetFrac float64

	total      uint64
	violations uint64
	hist       *Histogram
}

// NewSLOTracker returns a tracker for "budgetFrac of ops may exceed
// targetNs".
func NewSLOTracker(targetNs int64, budgetFrac float64) *SLOTracker {
	if budgetFrac <= 0 {
		budgetFrac = 0.01
	}
	return &SLOTracker{TargetNs: targetNs, BudgetFrac: budgetFrac, hist: NewHistogram()}
}

// Record scores one op latency.
func (s *SLOTracker) Record(latNs int64) {
	s.total++
	if latNs > s.TargetNs {
		s.violations++
	}
	s.hist.Record(latNs)
}

// Total returns the number of recorded ops.
func (s *SLOTracker) Total() uint64 { return s.total }

// Violations returns how many ops exceeded the target.
func (s *SLOTracker) Violations() uint64 { return s.violations }

// ViolationFrac returns the fraction of ops over target.
func (s *SLOTracker) ViolationFrac() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.violations) / float64(s.total)
}

// ErrorBudgetRemaining returns the unburned share of the error budget in
// [0,1]: 1 with no violations, 0 when the violation fraction has reached
// (or passed) BudgetFrac.
func (s *SLOTracker) ErrorBudgetRemaining() float64 {
	rem := 1 - s.ViolationFrac()/s.BudgetFrac
	if rem < 0 {
		return 0
	}
	return rem
}

// Met reports whether the stream meets its SLO so far: the violation
// fraction is within budget. An empty tracker is trivially met.
func (s *SLOTracker) Met() bool { return s.ViolationFrac() <= s.BudgetFrac }

// P99 returns the observed p99 latency.
func (s *SLOTracker) P99() int64 { return s.hist.P99() }

// Hist returns the underlying latency histogram (shared, not a copy).
func (s *SLOTracker) Hist() *Histogram { return s.hist }

// Merge folds other's observations into s. The target/budget of s win;
// merging trackers with different targets merges their histograms but
// keeps each side's own violation accounting, so only merge like with
// like.
func (s *SLOTracker) Merge(other *SLOTracker) {
	s.total += other.total
	s.violations += other.violations
	s.hist.Merge(other.hist)
}
