package stats

import (
	"sync"
	"testing"
)

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 100)
	}
	c := h.Clone()
	if c.Count() != h.Count() || c.P50() != h.P50() || c.P99() != h.P99() {
		t.Fatalf("clone diverges: %v vs %v", c, h)
	}
	// Mutating the clone must not touch the original.
	c.Record(1 << 40)
	if h.Max() == c.Max() {
		t.Error("clone shares state with original")
	}
}

func TestConcurrentHistogram(t *testing.T) {
	ch := NewConcurrentHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ch.Record(int64(w*per + i + 1))
			}
		}()
	}
	wg.Wait()
	snap := ch.Snapshot()
	if snap.Count() != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count(), workers*per)
	}
	if snap.Min() != 1 || snap.Max() != workers*per {
		t.Errorf("min/max = %d/%d", snap.Min(), snap.Max())
	}

	// Merge of a plain histogram lands in the shared state.
	side := NewHistogram()
	side.Record(1 << 30)
	ch.Merge(side)
	if got := ch.Snapshot().Max(); got != 1<<30 {
		t.Errorf("merged max = %d", got)
	}
}
