package stats

import (
	"math"
	"testing"
)

func TestWindowMeterSteadyRate(t *testing.T) {
	// 10 buckets of 100ms: 1s window. 1000 ops/s steady input must read
	// back as ~1000 ops/s.
	m := NewWindowMeter(100e6, 10)
	var now int64
	for i := 0; i < 3000; i++ {
		now = int64(i) * 1e6 // one op per ms
		m.Add(now, 1)
	}
	got := m.Rate(now)
	if math.Abs(got-1000) > 100 {
		t.Fatalf("steady 1000 ops/s read as %.1f", got)
	}
}

func TestWindowMeterSlidesOffOldTraffic(t *testing.T) {
	m := NewWindowMeter(100e6, 10)
	// Burst of 1000 ops at t=0, then silence.
	m.Add(0, 1000)
	if r := m.Rate(50e6); r == 0 {
		t.Fatal("burst invisible inside its own bucket")
	}
	// Two full windows later the burst must have aged out entirely.
	if r := m.Rate(2e9 + 50e6); r != 0 {
		t.Fatalf("rate %.1f two windows after the only burst; want 0", r)
	}
}

func TestWindowMeterYoungerThanWindow(t *testing.T) {
	// A meter that has only run 200ms of its 1s window must divide by
	// elapsed time, not the nominal width.
	m := NewWindowMeter(100e6, 10)
	for i := 0; i < 200; i++ {
		m.Add(int64(i)*1e6, 1) // 1000 ops/s for 200ms
	}
	got := m.Rate(199e6)
	if math.Abs(got-1000) > 150 {
		t.Fatalf("young meter read %.1f ops/s; want ~1000", got)
	}
}

func TestWindowMeterBucketRecycling(t *testing.T) {
	m := NewWindowMeter(1e9, 4)
	m.Add(0, 100)
	// Revisit the same ring slot 4s later: the old tenancy must not leak
	// into the new bucket's count.
	m.Add(4e9, 1)
	if r := m.Rate(4e9 + 1); r > 2 {
		t.Fatalf("recycled bucket kept stale count: rate %.2f", r)
	}
}

func TestSLOTrackerBudget(t *testing.T) {
	s := NewSLOTracker(1000, 0.01) // p99 under 1µs
	for i := 0; i < 990; i++ {
		s.Record(500)
	}
	for i := 0; i < 10; i++ {
		s.Record(2000)
	}
	if got := s.Total(); got != 1000 {
		t.Fatalf("total %d", got)
	}
	if got := s.Violations(); got != 10 {
		t.Fatalf("violations %d, want 10", got)
	}
	if f := s.ViolationFrac(); math.Abs(f-0.01) > 1e-9 {
		t.Fatalf("violation frac %v", f)
	}
	// Exactly at budget: met, zero budget remaining.
	if !s.Met() {
		t.Fatal("at-budget stream reported as missing SLO")
	}
	if rem := s.ErrorBudgetRemaining(); rem != 0 {
		t.Fatalf("budget remaining %v at exactly-spent budget", rem)
	}
	// One more violation tips it over.
	s.Record(5000)
	if s.Met() {
		t.Fatal("over-budget stream reported as meeting SLO")
	}
	if rem := s.ErrorBudgetRemaining(); rem != 0 {
		t.Fatalf("budget remaining %v when over budget", rem)
	}
}

func TestSLOTrackerBudgetRemaining(t *testing.T) {
	s := NewSLOTracker(1000, 0.01)
	for i := 0; i < 1000; i++ {
		s.Record(10)
	}
	if rem := s.ErrorBudgetRemaining(); rem != 1 {
		t.Fatalf("clean stream budget remaining %v, want 1", rem)
	}
	// 5 violations in 1000 ops burns half a 1% budget... it's 0.5% of
	// ops, i.e. half the budget.
	for i := 0; i < 5; i++ {
		s.Record(9999)
	}
	rem := s.ErrorBudgetRemaining()
	want := 1 - (5.0/1005.0)/0.01
	if math.Abs(rem-want) > 1e-9 {
		t.Fatalf("budget remaining %v, want %v", rem, want)
	}
}

func TestSLOTrackerMerge(t *testing.T) {
	a := NewSLOTracker(1000, 0.01)
	b := NewSLOTracker(1000, 0.01)
	for i := 0; i < 100; i++ {
		a.Record(100)
		b.Record(100)
	}
	b.Record(4000)
	a.Merge(b)
	if a.Total() != 201 || a.Violations() != 1 {
		t.Fatalf("merged total=%d violations=%d", a.Total(), a.Violations())
	}
	if a.Hist().Count() != 201 {
		t.Fatalf("merged hist count %d", a.Hist().Count())
	}
	if a.P99() < 100 {
		t.Fatalf("merged p99 %d", a.P99())
	}
}

func TestSLOTrackerEmpty(t *testing.T) {
	s := NewSLOTracker(1000, 0.01)
	if !s.Met() || s.ErrorBudgetRemaining() != 1 || s.ViolationFrac() != 0 {
		t.Fatal("empty tracker must be trivially within SLO")
	}
}
