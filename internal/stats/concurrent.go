package stats

import (
	"math"
	"sync" //magevet:ok ConcurrentHistogram serves wall-clock network benchmarks (memnode-bench), not virtual-time simulation code
)

// Clone returns an independent deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// ConcurrentHistogram is a mutex-guarded Histogram for wall-clock
// callers — the real-network benchmarks record latencies from many
// goroutines at once. Simulation code must keep using the plain
// (deterministic, single-threaded) Histogram.
type ConcurrentHistogram struct {
	mu sync.Mutex // guards a histogram shared by real benchmark goroutines
	h  Histogram
}

// NewConcurrentHistogram returns an empty concurrent histogram.
func NewConcurrentHistogram() *ConcurrentHistogram {
	return &ConcurrentHistogram{h: Histogram{min: math.MaxInt64}}
}

// Record adds one sample.
func (c *ConcurrentHistogram) Record(v int64) {
	c.mu.Lock()
	c.h.Record(v)
	c.mu.Unlock()
}

// Merge adds all samples of other (a plain Histogram) into c.
func (c *ConcurrentHistogram) Merge(other *Histogram) {
	c.mu.Lock()
	c.h.Merge(other)
	c.mu.Unlock()
}

// Snapshot returns a consistent copy of the current state.
func (c *ConcurrentHistogram) Snapshot() *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Clone()
}
