// Package stats provides the measurement primitives used by the far-memory
// experiments: latency histograms with percentile queries, counters, rate
// meters, time series, and per-component latency breakdowns.
//
// Histograms are log-bucketed (HDR-style) with a fixed ~1.5 % relative
// error, so recording is O(1) and memory use is bounded regardless of how
// many samples an experiment produces.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// bucketsPerOctave controls histogram resolution: each power of two is
// split into this many sub-buckets, giving a relative error of about
// 2^(1/64) - 1 ≈ 1.1 %.
const bucketsPerOctave = 64

// Histogram records non-negative int64 samples (typically latencies in
// nanoseconds) in logarithmic buckets.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	// 1 + floor(log2(v) * bucketsPerOctave) computed via bit math for the
	// integer part and linear interpolation within the octave.
	lz := 63 - leadingZeros64(uint64(v))
	base := int64(1) << uint(lz)
	frac := float64(v-base) / float64(base) // [0,1)
	return 1 + lz*bucketsPerOctave + int(frac*bucketsPerOctave)
}

func bucketLow(b int) int64 {
	if b <= 0 {
		return 0
	}
	b--
	oct := b / bucketsPerOctave
	sub := b % bucketsPerOctave
	base := int64(1) << uint(oct)
	return base + int64(float64(base)*float64(sub)/bucketsPerOctave)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	if b >= len(h.counts) {
		nc := make([]uint64, b+1)
		copy(nc, h.counts)
		h.counts = nc
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximation of the q-quantile (q in [0,1]). The
// exact Min/Max are returned at the extremes.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			v := bucketLow(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P90, P99, P999 are convenience percentile accessors.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P90() int64  { return h.Quantile(0.90) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		nc := make([]uint64, len(other.counts))
		copy(nc, h.counts)
		h.counts = nc
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.n, h.Mean(), h.P50(), h.P99(), h.max)
}

// Counter is a monotonically increasing event count.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Breakdown accumulates virtual time per named component of an operation,
// used for the paper's fault-handler latency breakdowns (Figs 6 and 16).
type Breakdown struct {
	order []string
	ns    map[string]int64
	ops   uint64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{ns: make(map[string]int64)}
}

// Add charges d nanoseconds to component name.
func (b *Breakdown) Add(name string, d int64) {
	if _, ok := b.ns[name]; !ok {
		b.order = append(b.order, name)
	}
	b.ns[name] += d
}

// AddOp counts one completed operation (used to compute per-op averages).
func (b *Breakdown) AddOp() { b.ops++ }

// Ops returns the number of completed operations.
func (b *Breakdown) Ops() uint64 { return b.ops }

// Total returns the summed time across components.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, name := range b.order {
		t += b.ns[name]
	}
	return t
}

// Component returns the accumulated time for one component.
func (b *Breakdown) Component(name string) int64 { return b.ns[name] }

// PerOp returns the average nanoseconds per operation for one component.
func (b *Breakdown) PerOp(name string) float64 {
	if b.ops == 0 {
		return 0
	}
	return float64(b.ns[name]) / float64(b.ops)
}

// Components returns the component names in first-use order.
func (b *Breakdown) Components() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Merge adds other's accumulations into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, name := range other.order {
		b.Add(name, other.ns[name])
	}
	b.ops += other.ops
}

func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, name := range b.order {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.0fns", name, b.PerOp(name))
	}
	return sb.String()
}

// TimeSeries records (t, value) samples, e.g. throughput over a run for the
// GUPS phase-change timeline (Fig 11).
type TimeSeries struct {
	T []int64
	V []float64
}

// Add appends a sample. Times should be non-decreasing.
func (s *TimeSeries) Add(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *TimeSeries) Len() int { return len(s.T) }

// At returns the value at the latest sample with time <= t, or 0 before the
// first sample.
func (s *TimeSeries) At(t int64) float64 {
	i := sort.Search(len(s.T), func(i int) bool { return s.T[i] > t })
	if i == 0 {
		return 0
	}
	return s.V[i-1]
}

// Min and Max return the extreme values, or 0 when empty.
func (s *TimeSeries) Min() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s *TimeSeries) Max() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Meter converts an operation count over a virtual-time window into a rate.
type Meter struct {
	lastT   int64
	lastOps uint64
}

// Rate returns operations per second between the previous call and (t,
// ops), then advances the window.
func (m *Meter) Rate(t int64, ops uint64) float64 {
	dt := t - m.lastT
	dops := ops - m.lastOps
	m.lastT, m.lastOps = t, ops
	if dt <= 0 {
		return 0
	}
	return float64(dops) / (float64(dt) / 1e9)
}

// Spans accumulates total time spent inside a (possibly re-entered)
// condition — e.g. how long fault paths sat in degraded mode. Enter/Exit
// calls may nest across concurrent simulated procs: the span is open
// while the depth is nonzero, and only the outermost Enter/Exit pair
// moves the clock. Times are virtual-time int64 nanoseconds, so Spans is
// simulation-side state like Counter and Histogram.
type Spans struct {
	depth   int
	openAt  int64
	totalNs int64
	count   uint64
}

// Enter marks one waiter entering the condition at time t. The first
// waiter opens a span.
func (s *Spans) Enter(t int64) {
	if s.depth == 0 {
		s.openAt = t
		s.count++
	}
	s.depth++
}

// Exit marks one waiter leaving at time t. The last waiter closes the
// span and accrues its duration.
func (s *Spans) Exit(t int64) {
	if s.depth <= 0 {
		panic("stats: Spans.Exit without matching Enter")
	}
	s.depth--
	if s.depth == 0 {
		s.totalNs += t - s.openAt
	}
}

// Active reports whether any waiter is currently inside the condition.
func (s *Spans) Active() bool { return s.depth > 0 }

// Count returns how many distinct spans have been opened.
func (s *Spans) Count() uint64 { return s.count }

// TotalNs returns the accumulated closed-span time. If a span is still
// open at time t, pass it to TotalAt instead for an up-to-date figure.
func (s *Spans) TotalNs() int64 { return s.totalNs }

// TotalAt returns accumulated span time as of t, including the still-open
// span if any.
func (s *Spans) TotalAt(t int64) int64 {
	if s.depth > 0 && t > s.openAt {
		return s.totalNs + (t - s.openAt)
	}
	return s.totalNs
}
