package nic

import (
	"fmt"

	"mage/internal/faultinject"
	"mage/internal/sim"
	"mage/internal/stats"
)

// This file models the rack fabric joining compute nodes to each other —
// the interconnect cross-node eviction borrows memory over. It is
// deliberately link-centric where the NIC model above is endpoint-
// centric: congestion forms in the queue at each link (transfers FIFO
// behind one another for the wire), not just at the endpoints' rx/tx
// serialization, so a victim batch headed for a busy neighbour pays the
// queueing delay a real top-of-rack port would impose.

// LinkCosts parameterizes one fabric link. All times in virtual
// nanoseconds.
type LinkCosts struct {
	// BytesPerNs is the link line rate.
	BytesPerNs float64
	// PropDelay is the one-way propagation + switching latency.
	PropDelay sim.Time
	// PostCost is the CPU time to hand a transfer to the fabric (mirrors
	// the NIC's stack + doorbell costs, collapsed into one knob).
	PostCost sim.Time
}

// DefaultLinkCosts returns a 100 Gbps-class rack link: half the NIC's
// far-memory line rate and a switch hop dearer than the point-to-point
// RDMA path, so borrowing from a neighbour is cheaper than a swap
// round trip but not free.
func DefaultLinkCosts() LinkCosts {
	return LinkCosts{
		BytesPerNs: 12.5, // 100 Gbps
		PropDelay:  1500,
		PostCost:   230,
	}
}

// Link is one duplex rack-fabric link between two nodes. Both directions
// share the wire mutex: transfers queue FIFO for the link, which is what
// produces congestion latency when several nodes spill toward the same
// neighbour.
type Link struct {
	eng   *sim.Engine
	a, b  int
	costs LinkCosts
	wire  *sim.Mutex

	// inj, when non-nil, decides the fate of TryTransfer ops, reusing
	// the NIC's fault-injection verbs: an outage window severs the link
	// (every transfer times out), a degraded window runs it below line
	// rate. The nil case falls straight through to the fault-free path,
	// so a fabric without injectors is event-for-event identical to one
	// built before link faults existed.
	inj *faultinject.Injector

	Transfers stats.Counter
	Bytes     stats.Counter
	Latency   *stats.Histogram
}

// Ends returns the two node indices the link joins, lower first.
func (l *Link) Ends() (int, int) { return l.a, l.b }

// Costs returns the link's cost parameters.
func (l *Link) Costs() LinkCosts { return l.costs }

// SetFaultInjector attaches a fault injector to the link. Pass nil to
// detach.
func (l *Link) SetFaultInjector(in *faultinject.Injector) { l.inj = in }

// FaultInjector returns the attached injector, or nil.
func (l *Link) FaultInjector() *faultinject.Injector { return l.inj }

// Down reports whether the link is severed (inside an outage window) at
// time t. Policy code uses it to skip unreachable neighbours before
// committing a victim batch to the wire.
func (l *Link) Down(t sim.Time) bool {
	return l.inj != nil && l.inj.Down(t)
}

// TryTransfer moves bytes across the link and blocks until they arrive,
// queueing behind other transfers for the wire. The result reuses the
// NIC's ReadResult verbs: a severed link times out (the caller burns its
// full timeout), a NACK costs one propagation round trip, and degraded
// windows stretch the serialization time. With no injector attached the
// cost is exactly PostCost + PropDelay + queueing + bytes/line-rate.
func (l *Link) TryTransfer(p *sim.Proc, bytes int64, timeout sim.Time) (sim.Time, ReadResult) {
	start := p.Now()
	rate := 1.0
	var extra sim.Time
	if l.inj != nil {
		o := l.inj.ReadOutcome(start)
		switch o.Drop {
		case faultinject.DropTimeout:
			// Severed: no response at all within the caller's timeout.
			p.Sleep(timeout)
			return p.Now() - start, ReadTimeout
		case faultinject.DropNack:
			p.Sleep(l.costs.PostCost + l.costs.PropDelay)
			return p.Now() - start, ReadNack
		}
		rate = o.RateFactor
		extra = o.ExtraLatency
	}
	p.Sleep(l.costs.PostCost + l.costs.PropDelay + extra)
	l.wire.Lock(p)
	p.Sleep(sim.Time(float64(bytes) / (l.costs.BytesPerNs * rate)))
	l.wire.Unlock(p)
	l.Transfers.Inc()
	l.Bytes.Add(uint64(bytes))
	d := p.Now() - start
	l.Latency.Record(int64(d))
	return d, ReadOK
}

// Transfer is TryTransfer on a healthy link: it panics if the transfer
// does not complete, so callers that have already checked Down can stay
// unconditional.
func (l *Link) Transfer(p *sim.Proc, bytes int64) sim.Time {
	d, res := l.TryTransfer(p, bytes, sim.MaxTime)
	if res != ReadOK {
		panic(fmt.Sprintf("nic: Transfer on link %d-%d failed: %v", l.a, l.b, res))
	}
	return d
}

// Fabric is the simulated rack interconnect: a full mesh of Links over n
// nodes, one duplex link per node pair. Per-link bandwidth, propagation
// delay, queueing, and fault schedules compose with the per-node NIC
// model: a page borrowed from a neighbour crosses a fabric link, a page
// swapped out crosses the node's NIC.
type Fabric struct {
	eng   *sim.Engine
	n     int
	links [][]*Link // links[a][b] for a < b; mirrored at [b][a]
}

// NewFabric builds a full mesh over n nodes with uniform link costs.
func NewFabric(eng *sim.Engine, n int, costs LinkCosts) *Fabric {
	if n < 1 {
		panic("nic: NewFabric needs at least one node")
	}
	f := &Fabric{eng: eng, n: n, links: make([][]*Link, n)}
	for a := range f.links {
		f.links[a] = make([]*Link, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			l := &Link{
				eng:     eng,
				a:       a,
				b:       b,
				costs:   costs,
				wire:    sim.NewMutex(eng, fmt.Sprintf("fabric.%d-%d", a, b)),
				Latency: stats.NewHistogram(),
			}
			f.links[a][b] = l
			f.links[b][a] = l
		}
	}
	return f
}

// Nodes returns the number of nodes the fabric joins.
func (f *Fabric) Nodes() int { return f.n }

// Link returns the link joining nodes a and b (symmetric). It panics on
// a == b or out-of-range indices: there is no loopback link, and a
// mis-addressed transfer is a topology bug worth failing loudly on.
func (f *Fabric) Link(a, b int) *Link {
	if a < 0 || b < 0 || a >= f.n || b >= f.n || a == b {
		panic(fmt.Sprintf("nic: no fabric link %d-%d in a %d-node rack", a, b, f.n))
	}
	return f.links[a][b]
}

// SetLinkInjector attaches a fault injector to the a-b link.
func (f *Fabric) SetLinkInjector(a, b int, in *faultinject.Injector) {
	f.Link(a, b).SetFaultInjector(in)
}

// TotalBytes returns the bytes moved across all links.
func (f *Fabric) TotalBytes() uint64 {
	var total uint64
	for a := 0; a < f.n; a++ {
		for b := a + 1; b < f.n; b++ {
			total += f.links[a][b].Bytes.Value()
		}
	}
	return total
}
