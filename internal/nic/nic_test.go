package nic

import (
	"fmt"
	"testing"

	"mage/internal/sim"
)

func TestUncontendedReadLatencyIs3900ns(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	var d sim.Time
	eng.Spawn("reader", func(p *sim.Proc) {
		d = n.Read(p, PageSize)
	})
	eng.Run()
	if d != 3900 {
		t.Errorf("4KB READ latency = %v, want 3.9µs", d)
	}
}

func TestKernelStackCostsMore(t *testing.T) {
	lat := func(kind StackKind) sim.Time {
		eng := sim.NewEngine()
		n := NewDefault(eng, kind)
		var d sim.Time
		eng.Spawn("reader", func(p *sim.Proc) { d = n.Read(p, PageSize) })
		eng.Run()
		return d
	}
	if lat(StackKernel) <= lat(StackLibOS) {
		t.Errorf("kernel stack (%v) should be slower than libOS (%v)",
			lat(StackKernel), lat(StackLibOS))
	}
}

func TestIdealLimitNearPaper(t *testing.T) {
	n := NewDefault(sim.NewEngine(), StackLibOS)
	mops := n.MaxPagesPerSecond() / 1e6
	if mops < 5.7 || mops > 6.0 {
		t.Errorf("ideal page rate = %.2f M/s, want ≈5.86 (paper: 5.83)", mops)
	}
	if g := n.LineRateGbps(); g != 192 {
		t.Errorf("line rate = %v Gbps, want 192", g)
	}
}

func TestLinkSerializationCongestion(t *testing.T) {
	// 32 concurrent readers share one RX link: the last completion must be
	// pushed out by queueing, and total goodput must not exceed line rate.
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	var last sim.Time
	for i := 0; i < 32; i++ {
		eng.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			n.Read(p, PageSize)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	ser := sim.Time(float64(PageSize) / n.Costs().BytesPerNs)
	if last < 3900+31*ser {
		t.Errorf("last read at %v, want >= %v (serialized wire)", last, 3900+31*ser)
	}
	if n.ReadLatency.Max() <= int64(3900) {
		t.Error("congestion should inflate tail latency beyond 3.9µs")
	}
}

func TestFullDuplexLinksIndependent(t *testing.T) {
	// A write in flight must not delay reads (separate RX/TX links).
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	var readLat sim.Time
	eng.Spawn("writer", func(p *sim.Proc) {
		n.Write(p, 64*PageSize)
	})
	eng.Spawn("reader", func(p *sim.Proc) {
		readLat = n.Read(p, PageSize)
	})
	eng.Run()
	if readLat != 3900 {
		t.Errorf("read latency = %v with concurrent write, want 3.9µs", readLat)
	}
}

func TestPostWriteIsAsynchronous(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	eng.Spawn("evictor", func(p *sim.Proc) {
		start := p.Now()
		c := n.PostWrite(p, 256*PageSize)
		submitCost := p.Now() - start
		if submitCost >= 3900 {
			t.Errorf("PostWrite blocked for %v; should only pay CPU cost", submitCost)
		}
		if c.Done() {
			t.Error("completion done immediately")
		}
		at := c.Wait(p)
		if at != p.Now() {
			t.Errorf("completion time %v != wait return time %v", at, p.Now())
		}
		if !c.Done() {
			t.Error("completion not done after Wait")
		}
	})
	eng.Run()
	if n.Writes.Value() != 1 || n.BytesWritten.Value() != 256*PageSize {
		t.Errorf("write accounting: %d writes, %d bytes",
			n.Writes.Value(), n.BytesWritten.Value())
	}
}

func TestWaitOnCompletedHandleReturnsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	eng.Spawn("w", func(p *sim.Proc) {
		c := n.PostWrite(p, PageSize)
		p.Sleep(sim.Second) // write completes long before
		before := p.Now()
		c.Wait(p)
		if p.Now() != before {
			t.Error("Wait on completed handle advanced time")
		}
	})
	eng.Run()
}

func TestKernelStackLockContends(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackKernel)
	for i := 0; i < 48; i++ {
		eng.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			n.Read(p, PageSize)
		})
	}
	eng.Run()
	if n.stackLock.Contended == 0 {
		t.Error("expected contention on the kernel stack lock with 48 posters")
	}
}

func TestGoodputAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	eng.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			n.Read(p, PageSize)
		}
	})
	end := eng.Run()
	gbps := n.RxGbps(end)
	if gbps <= 0 || gbps > n.LineRateGbps() {
		t.Errorf("RxGbps = %.1f, want in (0, %.0f]", gbps, n.LineRateGbps())
	}
	if n.RxGbps(0) != 0 {
		t.Error("RxGbps(0) should be 0")
	}
}
