package nic

import (
	"testing"

	"mage/internal/faultinject"
	"mage/internal/sim"
)

func testLinkCosts() LinkCosts {
	return LinkCosts{BytesPerNs: 10, PropDelay: 1000, PostCost: 200}
}

// TestFabricUncontendedTransfer pins the cost model of a quiet link:
// post + propagation + serialization, nothing else.
func TestFabricUncontendedTransfer(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 4, testLinkCosts())
	var d sim.Time
	eng.Spawn("xfer", func(p *sim.Proc) {
		d = f.Link(0, 2).Transfer(p, 4000) // 4000 B / 10 B/ns = 400 ns wire
	})
	eng.Run()
	if want := sim.Time(200 + 1000 + 400); d != want {
		t.Fatalf("transfer took %v, want %v", d, want)
	}
	l := f.Link(2, 0)
	if l.Transfers.Value() != 1 || l.Bytes.Value() != 4000 {
		t.Fatalf("link counters = %d transfers / %d bytes, want 1 / 4000",
			l.Transfers.Value(), l.Bytes.Value())
	}
}

// TestFabricCongestionQueuesAtLink launches two same-instant transfers
// on one link: the second must wait out the first's serialization (the
// wire is a FIFO queue), unlike two transfers on disjoint links which
// proceed in parallel.
func TestFabricCongestionQueuesAtLink(t *testing.T) {
	costs := testLinkCosts()
	run := func(sameLink bool) (last sim.Time) {
		eng := sim.NewEngine()
		f := NewFabric(eng, 4, costs)
		for i := 0; i < 2; i++ {
			b := 1
			if !sameLink && i == 1 {
				b = 2
			}
			eng.Spawn("xfer", func(p *sim.Proc) {
				f.Link(0, b).Transfer(p, 8000)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		eng.Run()
		return last
	}
	contended, parallel := run(true), run(false)
	// 8000 B at 10 B/ns = 800 ns wire each; the queued transfer finishes
	// one full serialization later than the parallel pair.
	if contended != parallel+800 {
		t.Fatalf("contended finish %v, parallel %v: want exactly one 800ns serialization of queueing",
			contended, parallel)
	}
}

// TestFabricSeveredLinkTimesOut drives transfers through an outage
// window: inside it every attempt burns the caller's timeout; after
// recovery the link carries data again. This is the fault-injection
// verb reuse the rack topology layer leans on — outages sever links
// exactly the way they sever nodes.
func TestFabricSeveredLinkTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, testLinkCosts())
	inj := faultinject.MustNew(faultinject.Plan{
		Seed:    1,
		Outages: []faultinject.Window{{Start: 0, End: 10_000}},
	})
	f.SetLinkInjector(0, 1, inj)
	var results []ReadResult
	eng.Spawn("xfer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			_, res := f.Link(0, 1).TryTransfer(p, 4000, 5000)
			results = append(results, res)
		}
	})
	eng.Run()
	want := []ReadResult{ReadTimeout, ReadTimeout, ReadOK}
	for i, r := range results {
		if r != want[i] {
			t.Fatalf("attempt %d = %v, want %v (all: %v)", i, r, want[i], results)
		}
	}
	if !f.Link(0, 1).Down(5000) || f.Link(0, 1).Down(20_000) {
		t.Fatal("Down() does not track the outage window")
	}
}

// TestFabricDegradedWindowStretchesSerialization pins the degraded-link
// path: inside the window the wire runs at DegradeFactor x line rate.
func TestFabricDegradedWindowStretchesSerialization(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, testLinkCosts())
	inj := faultinject.MustNew(faultinject.Plan{
		Seed:          1,
		Degraded:      []faultinject.Window{{Start: 0, End: 1 << 40}},
		DegradeFactor: 0.25,
	})
	f.SetLinkInjector(0, 1, inj)
	var d sim.Time
	eng.Spawn("xfer", func(p *sim.Proc) {
		d, _ = f.Link(0, 1).TryTransfer(p, 4000, sim.MaxTime)
	})
	eng.Run()
	// 400 ns wire time at full rate -> 1600 ns at 0.25x.
	if want := sim.Time(200 + 1000 + 1600); d != want {
		t.Fatalf("degraded transfer took %v, want %v", d, want)
	}
}

// TestFabricTopologyGuards pins the loud-failure contract for
// mis-addressed links.
func TestFabricTopologyGuards(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 3, testLinkCosts())
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		pair := pair
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Link(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			f.Link(pair[0], pair[1])
		}()
	}
	if f.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", f.Nodes())
	}
}

// TestFabricDeterministicUnderContention runs a many-node crossing
// pattern twice and requires identical per-link byte counts and final
// clocks — the fabric must be as replayable as the rest of the DES.
func TestFabricDeterministicUnderContention(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng := sim.NewEngineShards(4)
		f := NewFabric(eng, 8, testLinkCosts())
		for i := 0; i < 8; i++ {
			src := i
			eng.SpawnIn(src, "spill", func(p *sim.Proc) {
				for k := 0; k < 5; k++ {
					dst := (src + k + 1) % 8
					f.Link(src, dst).Transfer(p, int64(4096*(1+k%3)))
					p.Sleep(sim.Time(100 * (src + 1)))
				}
			})
		}
		end := eng.Run()
		return end, f.TotalBytes()
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("fabric not deterministic: run1=(%v,%d) run2=(%v,%d)", t1, b1, t2, b2)
	}
}
