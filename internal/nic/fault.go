package nic

import (
	"mage/internal/faultinject"
	"mage/internal/sim"
)

// SetFaultInjector attaches a fault injector to the NIC. Pass nil to
// detach. With no injector, TryRead/TryPostWrite degenerate to the
// plain Read/PostWrite event sequences — fault-free runs stay
// byte-identical whether or not this method was ever called.
func (n *NIC) SetFaultInjector(in *faultinject.Injector) { n.inj = in }

// FaultInjector returns the attached injector, or nil.
func (n *NIC) FaultInjector() *faultinject.Injector { return n.inj }

// ReadResult classifies the outcome of a TryRead.
type ReadResult int

const (
	// ReadOK: data arrived.
	ReadOK ReadResult = iota
	// ReadNack: the op failed with an error response after one round
	// trip. Retrying immediately is reasonable.
	ReadNack
	// ReadTimeout: no response within the caller's timeout — the remote
	// node may be down. The caller burned the full timeout.
	ReadTimeout
)

func (r ReadResult) String() string {
	switch r {
	case ReadOK:
		return "ok"
	case ReadNack:
		return "nack"
	case ReadTimeout:
		return "timeout"
	}
	return "ReadResult(?)"
}

// TryRead is Read with fault injection: it performs a one-sided READ
// that may NACK, time out, run slow, or run over a degraded link,
// according to the injector's schedule. With no injector attached it is
// exactly Read. The returned duration is the virtual time the caller
// spent on the attempt, whatever the result.
func (n *NIC) TryRead(p *sim.Proc, bytes int64, timeout sim.Time) (sim.Time, ReadResult) {
	return n.TryReadWith(p, bytes, timeout, n.inj)
}

// TryReadWith is TryRead under an explicit injector instead of the one
// attached to the NIC — a multi-tenant node uses it to run each tenant's
// reads through that tenant's own fault schedule while all tenants share
// the NIC's serialization and counters. A nil inj is exactly Read.
func (n *NIC) TryReadWith(p *sim.Proc, bytes int64, timeout sim.Time, inj *faultinject.Injector) (sim.Time, ReadResult) {
	if inj == nil {
		return n.Read(p, bytes), ReadOK
	}
	start := p.Now()
	o := inj.ReadOutcome(start)
	switch o.Drop {
	case faultinject.DropTimeout:
		// No response at all: the caller waits out its per-op timeout.
		p.Sleep(timeout)
		return p.Now() - start, ReadTimeout
	case faultinject.DropNack:
		// Error completion after one round trip: CPU submission cost plus
		// the base latency, but no data moved.
		n.hostPost(p)
		p.Sleep(n.costs.BaseLatency)
		return p.Now() - start, ReadNack
	}
	n.hostPost(p)
	p.Sleep(n.costs.BaseLatency + o.ExtraLatency)
	n.serializeAt(p, n.rx, bytes, o.RateFactor)
	n.Reads.Inc()
	n.BytesRead.Add(uint64(bytes))
	d := p.Now() - start
	n.ReadLatency.Record(int64(d))
	return d, ReadOK
}

// TryPostWrite is PostWrite with fault injection: the returned
// completion may report Failed/TimedOut instead of success. The CPU-side
// submission cost is always paid (the host posted the WR before the
// fabric lost it); failed writes never count toward Writes/BytesWritten.
// With no injector attached it is exactly PostWrite.
func (n *NIC) TryPostWrite(p *sim.Proc, bytes int64, timeout sim.Time) *Completion {
	return n.TryPostWriteWith(p, bytes, timeout, n.inj)
}

// TryPostWriteWith is TryPostWrite under an explicit injector — the
// clustered-memnode mirror uses it to run each replica's writes
// through that replica's own fault schedule while every replica
// shares the NIC's serialization and counters. A nil inj is exactly
// PostWrite.
func (n *NIC) TryPostWriteWith(p *sim.Proc, bytes int64, timeout sim.Time, inj *faultinject.Injector) *Completion {
	if inj == nil {
		return n.PostWrite(p, bytes)
	}
	o := inj.WriteOutcome(p.Now())
	n.hostPost(p)
	c := &Completion{q: sim.NewWaitQueue(n.eng, "wr-completion")}
	issued := p.Now()
	switch o.Drop {
	case faultinject.DropTimeout:
		n.eng.Spawn("rdma-write", func(wp *sim.Proc) {
			wp.Sleep(timeout)
			c.failed = true
			c.timedOut = true
			c.done = true
			c.at = wp.Now()
			c.q.Broadcast()
		})
		return c
	case faultinject.DropNack:
		n.eng.Spawn("rdma-write", func(wp *sim.Proc) {
			wp.Sleep(n.costs.BaseLatency)
			c.failed = true
			c.done = true
			c.at = wp.Now()
			c.q.Broadcast()
		})
		return c
	}
	n.eng.Spawn("rdma-write", func(wp *sim.Proc) {
		wp.Sleep(n.costs.BaseLatency + o.ExtraLatency)
		n.serializeAt(wp, n.tx, bytes, o.RateFactor)
		n.Writes.Inc()
		n.BytesWritten.Add(uint64(bytes))
		n.WriteLatency.Record(int64(wp.Now() - issued))
		c.done = true
		c.at = wp.Now()
		c.q.Broadcast()
	})
	return c
}
