package nic

import (
	"mage/internal/faultinject"
	"mage/internal/memcluster/placement"
	"mage/internal/sim"
	"mage/internal/stats"
)

// Cluster is the DES mirror of internal/memcluster: N shards × R
// replicas of far memory behind one NIC, with the same pure placement
// policy (rendezvous hashing over stable shard IDs, memory-weighted
// replica selection) and the same failover shape (one ladder of
// weighted draws, then a degraded tail; down replicas re-admitted
// after an exponential virtual-time backoff).
//
// Each replica carries its own fault injector, so an experiment can
// take one replica down while its peers stay up — the simulated twin
// of the kill-one-shard-mid-sweep chaos test the real cluster runs.
// Everything is deterministic: placement is pure, injector schedules
// are seeded, and health state advances only in virtual time.
type Cluster struct {
	n       *NIC
	ids     []uint64 // stable shard IDs, parallel to reps
	reps    [][]*clusterReplica
	reprobe sim.Time // base re-admission delay after a failure

	// Failovers counts reads that abandoned a replica for a peer;
	// FailedReads counts reads no replica could serve; Readmissions
	// counts down replicas returning to service.
	Failovers    stats.Counter
	FailedReads  stats.Counter
	Readmissions stats.Counter
	// ReadLatency records end-to-end read latency including failover
	// attempts — the distribution the real cluster's failover-read p99
	// benchmark pins.
	ReadLatency *stats.Histogram
}

type clusterReplica struct {
	inj       *faultinject.Injector
	healthy   bool
	downUntil sim.Time
	backoff   sim.Time
	weight    int64
}

// clusterReprobeDefault is the default virtual-time re-admission
// delay, doubled per consecutive failed re-probe (mirroring the real
// prober's exponential backoff).
const clusterReprobeDefault = 100 * sim.Microsecond

// NewCluster builds a shards × replicas cluster over one NIC.
// injs[s][r] is replica r of shard s's fault schedule (nil = never
// fails). Shard IDs are the canonical 1..N, so placement matches
// placement.ShardOf for the same count.
func NewCluster(n *NIC, injs [][]*faultinject.Injector) *Cluster {
	c := &Cluster{
		n:           n,
		reprobe:     clusterReprobeDefault,
		ReadLatency: stats.NewHistogram(),
	}
	for s, row := range injs {
		c.ids = append(c.ids, uint64(s)+1)
		var reps []*clusterReplica
		for _, inj := range row {
			reps = append(reps, &clusterReplica{inj: inj, healthy: true, weight: 1})
		}
		c.reps = append(c.reps, reps)
	}
	return c
}

// SetWeight sets one replica's selection weight (the DES stand-in for
// the real cluster's free-memory STATS sample).
func (c *Cluster) SetWeight(shard, replica int, w int64) {
	c.reps[shard][replica].weight = w
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.reps) }

// admit re-admits a replica whose virtual-time backoff has elapsed.
func (c *Cluster) admit(r *clusterReplica, now sim.Time) {
	if !r.healthy && now >= r.downUntil {
		r.healthy = true
		r.backoff = 0
		c.Readmissions.Inc()
	}
}

// demote takes a replica out of selection with exponential backoff.
func (c *Cluster) demote(r *clusterReplica, now sim.Time) {
	if r.backoff <= 0 {
		r.backoff = c.reprobe
	} else {
		r.backoff *= 2
	}
	if r.backoff > 64*c.reprobe {
		r.backoff = 64 * c.reprobe
	}
	r.healthy = false
	r.downUntil = now + r.backoff
}

// ladder builds the replica attempt order for key on one shard:
// weighted healthy draws first, then every replica as a degraded
// tail — the same shape as the real cluster's selectionOrder.
func (c *Cluster) ladder(key uint64, reps []*clusterReplica, now sim.Time) []int {
	weights := make([]int64, len(reps))
	mask := make([]bool, len(reps))
	for i, r := range reps {
		c.admit(r, now)
		weights[i] = r.weight
		mask[i] = r.healthy
	}
	order := make([]int, 0, len(reps))
	taken := make([]bool, len(reps))
	for attempt := 0; attempt < len(reps); attempt++ {
		i := placement.SelectReplica(key, attempt, weights, mask)
		if i == -1 {
			break
		}
		taken[i] = true
		order = append(order, i)
		mask[i] = false
	}
	for i := range reps {
		if !taken[i] {
			order = append(order, i)
		}
	}
	return order
}

// TryReadKey reads the page keyed by key through the cluster: pick the
// owning shard, walk its replica ladder, and fail over on NACK or
// timeout exactly once per surviving replica. Returns the virtual time
// spent and the final result (ReadOK unless every replica failed).
func (c *Cluster) TryReadKey(p *sim.Proc, key uint64, bytes int64, timeout sim.Time) (sim.Time, ReadResult) {
	start := p.Now()
	si := placement.ShardOfIDs(key, c.ids)
	if si < 0 {
		return 0, ReadNack
	}
	reps := c.reps[si]
	last := ReadNack
	first := true
	for _, i := range c.ladder(key, reps, start) {
		r := reps[i]
		_, res := c.n.TryReadWith(p, bytes, timeout, r.inj)
		if res == ReadOK {
			d := p.Now() - start
			c.ReadLatency.Record(int64(d))
			return d, ReadOK
		}
		c.demote(r, p.Now())
		if !first || len(reps) > 1 {
			c.Failovers.Inc()
		}
		first = false
		last = res
	}
	c.FailedReads.Inc()
	return p.Now() - start, last
}

// TryWriteKey writes the page keyed by key to every healthy replica of
// the owning shard (the real cluster's replicated write). One
// completed write is success; replicas that drop the write demote.
func (c *Cluster) TryWriteKey(p *sim.Proc, key uint64, bytes int64, timeout sim.Time) (sim.Time, bool) {
	start := p.Now()
	si := placement.ShardOfIDs(key, c.ids)
	if si < 0 {
		return 0, false
	}
	reps := c.reps[si]
	var comps []*Completion
	var targets []*clusterReplica
	for _, r := range reps {
		c.admit(r, start)
		if !r.healthy {
			continue
		}
		comps = append(comps, c.n.TryPostWriteWith(p, bytes, timeout, r.inj))
		targets = append(targets, r)
	}
	acks := 0
	for i, comp := range comps {
		comp.Wait(p)
		if comp.Failed() {
			c.demote(targets[i], p.Now())
			continue
		}
		acks++
	}
	return p.Now() - start, acks > 0
}
