package nic

import (
	"testing"

	"mage/internal/faultinject"
	"mage/internal/sim"
)

// TestTryReadNoInjectorMatchesRead: the degenerate path must be exactly
// Read — same latency, same counters.
func TestTryReadNoInjectorMatchesRead(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	var d sim.Time
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		d, res = n.TryRead(p, PageSize, sim.Millisecond)
	})
	eng.Run()
	if res != ReadOK || d != 3900 {
		t.Errorf("TryRead without injector = (%v, %v), want (3900, ok)", d, res)
	}
	if n.Reads.Value() != 1 || n.BytesRead.Value() != PageSize {
		t.Errorf("counters: reads=%d bytes=%d", n.Reads.Value(), n.BytesRead.Value())
	}
}

// TestTryReadOutageTimesOut: during an outage window a read burns
// exactly the caller's timeout, moves no bytes, and counts no Reads.
func TestTryReadOutageTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	n.SetFaultInjector(faultinject.MustNew(faultinject.Plan{
		Outages: []faultinject.Window{{Start: 0, End: 100 * sim.Microsecond}},
	}))
	const timeout = 50 * sim.Microsecond
	var d sim.Time
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		d, res = n.TryRead(p, PageSize, timeout)
	})
	eng.Run()
	if res != ReadTimeout || d != timeout {
		t.Errorf("outage read = (%v, %v), want (%v, timeout)", d, res, timeout)
	}
	if n.Reads.Value() != 0 || n.BytesRead.Value() != 0 {
		t.Errorf("timed-out read moved data: reads=%d bytes=%d", n.Reads.Value(), n.BytesRead.Value())
	}
	if n.inj.ReadTimeouts.Value() != 1 {
		t.Errorf("injector timeout tally = %d, want 1", n.inj.ReadTimeouts.Value())
	}
}

// TestTryReadNackCostsOneRoundTrip: a NACK pays host post + base latency
// but no serialization and no data counters.
func TestTryReadNackCostsOneRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	n := NewDefault(eng, StackLibOS)
	n.SetFaultInjector(faultinject.MustNew(faultinject.Plan{Seed: 1, ReadFailProb: 1}))
	var d sim.Time
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		d, res = n.TryRead(p, PageSize, sim.Millisecond)
	})
	eng.Run()
	want := n.costs.StackCost + n.costs.DoorbellCost + n.costs.BaseLatency
	if res != ReadNack || d != want {
		t.Errorf("nack read = (%v, %v), want (%v, nack)", d, res, want)
	}
	if n.Reads.Value() != 0 {
		t.Errorf("nacked read counted: %d", n.Reads.Value())
	}
}

// TestTryReadDegradedLinkSlower: a degraded window stretches
// serialization by 1/DegradeFactor.
func TestTryReadDegradedLinkSlower(t *testing.T) {
	run := func(factor float64, windows []faultinject.Window) sim.Time {
		eng := sim.NewEngine()
		n := NewDefault(eng, StackLibOS)
		n.SetFaultInjector(faultinject.MustNew(faultinject.Plan{
			Degraded:      windows,
			DegradeFactor: factor,
		}))
		var d sim.Time
		eng.Spawn("reader", func(p *sim.Proc) {
			d, _ = n.TryRead(p, PageSize, sim.Millisecond)
		})
		eng.Run()
		return d
	}
	healthy := run(1, nil)
	degraded := run(0.25, []faultinject.Window{{Start: 0, End: sim.Second}})
	if healthy != 3900 {
		t.Errorf("healthy read = %v, want 3900", healthy)
	}
	slow := float64(PageSize) / (24.0 * 0.25)
	fast := float64(PageSize) / 24.0
	wantExtra := sim.Time(slow) - sim.Time(fast)
	if degraded-healthy != wantExtra {
		t.Errorf("degraded read = %v (healthy %v), want extra %v", degraded, healthy, wantExtra)
	}
}

// TestTryPostWriteFailureModes: dropped writes report Failed/TimedOut
// and never count toward Writes/BytesWritten.
func TestTryPostWriteFailureModes(t *testing.T) {
	post := func(plan faultinject.Plan) (*NIC, *Completion, sim.Time) {
		eng := sim.NewEngine()
		n := NewDefault(eng, StackLibOS)
		n.SetFaultInjector(faultinject.MustNew(plan))
		var c *Completion
		var waited sim.Time
		eng.Spawn("writer", func(p *sim.Proc) {
			start := p.Now()
			c = n.TryPostWrite(p, PageSize, 50*sim.Microsecond)
			c.Wait(p)
			waited = p.Now() - start
		})
		eng.Run()
		return n, c, waited
	}

	n, c, _ := post(faultinject.Plan{Seed: 2, WriteFailProb: 1})
	if !c.Failed() || c.TimedOut() {
		t.Errorf("nack write: failed=%v timedOut=%v", c.Failed(), c.TimedOut())
	}
	if n.Writes.Value() != 0 || n.BytesWritten.Value() != 0 {
		t.Errorf("nacked write counted: writes=%d bytes=%d", n.Writes.Value(), n.BytesWritten.Value())
	}

	n, c, waited := post(faultinject.Plan{
		Outages: []faultinject.Window{{Start: 0, End: sim.Second}},
	})
	if !c.Failed() || !c.TimedOut() {
		t.Errorf("outage write: failed=%v timedOut=%v", c.Failed(), c.TimedOut())
	}
	if waited < 50*sim.Microsecond {
		t.Errorf("timed-out write waited only %v", waited)
	}
	if n.Writes.Value() != 0 {
		t.Errorf("timed-out write counted: %d", n.Writes.Value())
	}

	n, c, _ = post(faultinject.Plan{Seed: 3}) // enabled-but-benign plan
	if c.Failed() {
		t.Error("benign write failed")
	}
	if n.Writes.Value() != 1 || n.BytesWritten.Value() != PageSize {
		t.Errorf("benign write counters: writes=%d bytes=%d", n.Writes.Value(), n.BytesWritten.Value())
	}
}

// TestFaultedNICDeterministic: same plan, same event sequence → same
// outcome stream and virtual-time trace.
func TestFaultedNICDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		eng := sim.NewEngine()
		n := NewDefault(eng, StackLibOS)
		n.SetFaultInjector(faultinject.MustNew(faultinject.Plan{
			Seed:         faultinject.DeriveSeed(7, "nictest"),
			ReadFailProb: 0.3,
			SpikeProb:    0.3,
			SpikeMin:     100,
			SpikeMax:     2000,
		}))
		var end sim.Time
		eng.Spawn("reader", func(p *sim.Proc) {
			for i := 0; i < 500; i++ {
				n.TryRead(p, PageSize, 10*sim.Microsecond)
			}
			end = p.Now()
		})
		eng.Run()
		return end, n.Reads.Value(), n.inj.ReadNacks.Value()
	}
	e1, r1, k1 := run()
	e2, r2, k2 := run()
	if e1 != e2 || r1 != r2 || k1 != k2 {
		t.Errorf("faulted NIC nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, r1, k1, e2, r2, k2)
	}
	if k1 == 0 {
		t.Error("no nacks fired at p=0.3 over 500 ops")
	}
}
