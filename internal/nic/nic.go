// Package nic models the RDMA NIC connecting the compute node to the
// far-memory node.
//
// The model has three parts, mirroring the quantities the paper's
// "ideal" baseline and Figs 14–15 are built from:
//
//   - A per-direction link (RX for one-sided READs that fault pages in, TX
//     for WRITEs that evict pages out). Each transfer holds the link for
//     size/line-rate; queueing behind other transfers produces congestion
//     latency under load.
//   - A base propagation latency (the paper's best-case L = 3.9 µs for a
//     4 KB page includes this plus one 4 KB serialization).
//   - CPU-side costs: posting a work request (doorbell) plus the network
//     stack. The kernel RDMA stack (Hermit, Mage^LNX) costs more per
//     operation and serializes on a shared lock; the libOS/microkernel
//     driver (DiLOS, Mage^LIB) uses per-core QPs with no shared lock.
package nic

import (
	"mage/internal/faultinject"
	"mage/internal/sim"
	"mage/internal/stats"
)

// PageSize is the transfer granularity of the paging systems.
const PageSize = 4096

// StackKind selects the host networking stack.
type StackKind int

const (
	// StackLibOS is a microkernel-style driver: cheap per-op cost, per-core
	// QPs, no shared lock.
	StackLibOS StackKind = iota
	// StackKernel is the Linux RDMA stack: higher per-op cost plus a shared
	// submission lock that contends at high thread counts.
	StackKernel
)

// Costs parameterizes the NIC. All times in virtual nanoseconds.
type Costs struct {
	// BaseLatency is the one-way propagation + remote processing latency.
	BaseLatency sim.Time
	// BytesPerNs is the line rate. 24 bytes/ns ≈ 192 Gbps, the practical
	// limit the paper reports for the 200 Gbps BlueField-2.
	BytesPerNs float64
	// DoorbellCost is the CPU time to ring a doorbell / post one WR.
	DoorbellCost sim.Time
	// StackCost is the per-operation CPU time in the host stack.
	StackCost sim.Time
	// StackLockCost is how long the shared kernel-stack lock is held per
	// operation (zero for the libOS stack).
	StackLockCost sim.Time
}

// DefaultCosts returns costs for the given stack, calibrated so that a
// 4 KB READ completes in 3.9 µs uncontended on the libOS stack (the
// paper's measured best case).
func DefaultCosts(kind StackKind) Costs {
	c := Costs{
		BytesPerNs:   24.0, // 192 Gbps
		DoorbellCost: 100,
	}
	serialization := sim.Time(float64(PageSize) / c.BytesPerNs) // ~170 ns
	switch kind {
	case StackLibOS:
		c.StackCost = 130
		c.StackLockCost = 0
		c.BaseLatency = 3900 - serialization - c.StackCost - c.DoorbellCost
	case StackKernel:
		// The shared submission lock serializes at ~4.3 M ops/s, which is
		// what caps Mage^LNX at the paper's 139 Gbps (§6.4).
		c.StackCost = 750
		c.StackLockCost = 230
		c.BaseLatency = 3900 - serialization - 130 - c.DoorbellCost
	}
	return c
}

// Backend selects the far-memory transport the paging systems swap to.
// The paper's conclusion notes MAGE's OS-level optimizations apply to any
// fast swap backend; these cost presets let the experiments verify that.
type Backend int

const (
	// BackendRDMA is the paper's testbed: 200 Gbps BlueField-2.
	BackendRDMA Backend = iota
	// BackendNVMe is a local NVMe SSD: ~18 µs read latency, ~7 GB/s.
	BackendNVMe
	// BackendZswap is compressed in-DRAM swap: no wire, but every page
	// pays a CPU compression/decompression cost.
	BackendZswap
)

func (b Backend) String() string {
	switch b {
	case BackendRDMA:
		return "rdma"
	case BackendNVMe:
		return "nvme"
	case BackendZswap:
		return "zswap"
	}
	return "Backend(?)"
}

// BackendCosts returns cost parameters for a backend behind the given
// host stack.
func BackendCosts(b Backend, kind StackKind) Costs {
	c := DefaultCosts(kind)
	switch b {
	case BackendRDMA:
		// DefaultCosts already models it.
	case BackendNVMe:
		c.BytesPerNs = 7.0 // ~7 GB/s
		c.BaseLatency = 18000
	case BackendZswap:
		// "Wire" is a memcpy from the compressed pool; the real cost is
		// per-page LZO-class (de)compression on the faulting CPU.
		c.BytesPerNs = 20.0
		c.BaseLatency = 400
		c.StackCost += 1800
	}
	return c
}

// NIC is one RDMA adapter with full-duplex RX and TX links.
type NIC struct {
	eng   *sim.Engine
	costs Costs
	kind  StackKind

	rx        *sim.Mutex // serialization of inbound data (faults in)
	tx        *sim.Mutex // serialization of outbound data (evictions out)
	stackLock *sim.Mutex // kernel stack submission lock (nil for libOS)

	// inj, when non-nil, decides the fate of TryRead/TryPostWrite ops.
	// The nil case falls straight through to the fault-free paths, so a
	// NIC without an injector is event-for-event identical to one built
	// before fault injection existed.
	inj *faultinject.Injector

	BytesRead    stats.Counter
	BytesWritten stats.Counter
	Reads        stats.Counter
	Writes       stats.Counter
	ReadLatency  *stats.Histogram
	WriteLatency *stats.Histogram
}

// New builds a NIC.
func New(eng *sim.Engine, kind StackKind, costs Costs) *NIC {
	n := &NIC{
		eng:          eng,
		costs:        costs,
		kind:         kind,
		rx:           sim.NewMutex(eng, "nic.rx"),
		tx:           sim.NewMutex(eng, "nic.tx"),
		ReadLatency:  stats.NewHistogram(),
		WriteLatency: stats.NewHistogram(),
	}
	if kind == StackKernel {
		n.stackLock = sim.NewMutex(eng, "nic.stacklock")
	}
	return n
}

// NewDefault builds a NIC with DefaultCosts(kind).
func NewDefault(eng *sim.Engine, kind StackKind) *NIC {
	return New(eng, kind, DefaultCosts(kind))
}

// Costs returns the NIC's cost parameters.
func (n *NIC) Costs() Costs { return n.costs }

// serialize models the wire time of a transfer on the given link.
func (n *NIC) serialize(p *sim.Proc, link *sim.Mutex, bytes int64) {
	n.serializeAt(p, link, bytes, 1)
}

// serializeAt is serialize with the line rate scaled by factor — the
// fault injector's degraded-link windows run transfers at factor < 1.
func (n *NIC) serializeAt(p *sim.Proc, link *sim.Mutex, bytes int64, factor float64) {
	link.Lock(p)
	p.Sleep(sim.Time(float64(bytes) / (n.costs.BytesPerNs * factor)))
	link.Unlock(p)
}

// hostPost models the CPU-side cost of submitting one work request.
func (n *NIC) hostPost(p *sim.Proc) {
	p.Sleep(n.costs.StackCost)
	if n.stackLock != nil {
		n.stackLock.Lock(p)
		p.Sleep(n.costs.StackLockCost)
		n.stackLock.Unlock(p)
	}
	p.Sleep(n.costs.DoorbellCost)
}

// Read performs a one-sided RDMA READ of bytes and blocks until the data
// has arrived (the fault-in path is synchronous). It returns the elapsed
// virtual time.
func (n *NIC) Read(p *sim.Proc, bytes int64) sim.Time {
	start := p.Now()
	n.hostPost(p)
	p.Sleep(n.costs.BaseLatency)
	n.serialize(p, n.rx, bytes)
	n.Reads.Inc()
	n.BytesRead.Add(uint64(bytes))
	d := p.Now() - start
	n.ReadLatency.Record(int64(d))
	return d
}

// Completion is a handle for an asynchronous WRITE.
type Completion struct {
	done bool
	q    *sim.WaitQueue
	at   sim.Time

	// Fault-injection verdicts: set before done when the write was
	// dropped. A failed write never counts toward Writes/BytesWritten.
	failed   bool
	timedOut bool
}

// Done reports whether the operation has completed.
func (c *Completion) Done() bool { return c.done }

// Failed reports whether the write was dropped by the fault injector
// (NACK or timeout). Only meaningful once Done/Wait returns.
func (c *Completion) Failed() bool { return c.failed }

// TimedOut reports whether the failure was a timeout (no response at
// all) rather than a NACK.
func (c *Completion) TimedOut() bool { return c.timedOut }

// Wait blocks p until the operation completes and returns the completion
// time.
func (c *Completion) Wait(p *sim.Proc) sim.Time {
	for !c.done {
		c.q.Wait(p)
	}
	return c.at
}

// PostWrite submits a one-sided RDMA WRITE of bytes and returns
// immediately with a completion handle; the wire transfer proceeds
// asynchronously. The caller pays only the CPU-side submission cost.
// This split is what enables the cross-batch pipelined eviction path to
// overlap RDMA waits with work on other batches (Fig 8, steps ⑤–⑥).
func (n *NIC) PostWrite(p *sim.Proc, bytes int64) *Completion {
	n.hostPost(p)
	c := &Completion{q: sim.NewWaitQueue(n.eng, "wr-completion")}
	issued := p.Now()
	n.eng.Spawn("rdma-write", func(wp *sim.Proc) {
		wp.Sleep(n.costs.BaseLatency)
		n.serialize(wp, n.tx, bytes)
		n.Writes.Inc()
		n.BytesWritten.Add(uint64(bytes))
		n.WriteLatency.Record(int64(wp.Now() - issued))
		c.done = true
		c.at = wp.Now()
		c.q.Broadcast()
	})
	return c
}

// Write performs a synchronous WRITE (PostWrite + Wait).
func (n *NIC) Write(p *sim.Proc, bytes int64) sim.Time {
	start := p.Now()
	n.PostWrite(p, bytes).Wait(p)
	return p.Now() - start
}

// RxGbps returns achieved inbound goodput over the elapsed time, in Gbps.
func (n *NIC) RxGbps(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.BytesRead.Value()) * 8 / float64(elapsed)
}

// TxGbps returns achieved outbound goodput in Gbps.
func (n *NIC) TxGbps(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.BytesWritten.Value()) * 8 / float64(elapsed)
}

// LineRateGbps returns the configured line rate in Gbps.
func (n *NIC) LineRateGbps() float64 { return n.costs.BytesPerNs * 8 }

// MaxPagesPerSecond returns the per-direction page rate the link supports:
// the paper's "ideal limit" (5.83 M ops/s at 192 Gbps with 4 KB pages).
func (n *NIC) MaxPagesPerSecond() float64 {
	return n.costs.BytesPerNs * 1e9 / PageSize
}
