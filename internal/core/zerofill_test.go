package core

import (
	"testing"

	"mage/internal/swapspace"
)

func TestZeroFillFaultSkipsRDMA(t *testing.T) {
	cfg := MageLib(1, 1024, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	s.MarkZeroFill(512, 1024)
	streams := []AccessStream{seqStream(0, 1024, 0)}
	res := s.Run(streams)
	// All 1024 pages fault, but only the first 512 are remote reads.
	if res.TotalFaults() != 1024 {
		t.Fatalf("faults = %d", res.TotalFaults())
	}
	if got := s.NIC.Reads.Value(); got != 512 {
		t.Errorf("RDMA reads = %d, want 512 (zero-fill half skips the wire)", got)
	}
	// Zero-fill faults are much cheaper than remote faults.
	if res.Metrics.FaultMeanNs > 4000 {
		t.Errorf("mean fault %v ns; the zero-fill half should pull it below a wire fault", res.Metrics.FaultMeanNs)
	}
}

func TestZeroFillPagesEvictAndReturnAsRemote(t *testing.T) {
	cfg := MageLib(1, 1024, 512)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.EvictorThreads = 1
	s := MustNewSystem(cfg)
	s.MarkZeroFill(0, 1024)
	// Two passes: the second pass refaults evicted zero-fill pages, which
	// now hold real (dirtied) content remotely.
	streams := []AccessStream{FuncStream(func() func() (Access, bool) {
		i := 0
		return func() (Access, bool) {
			if i >= 2048 {
				return Access{}, false
			}
			a := Access{Page: uint64(i % 1024), Write: true, Compute: 200}
			i++
			return a, true
		}
	}())}
	res := s.Run(streams)
	if res.Metrics.EvictedPages == 0 {
		t.Fatal("no evictions")
	}
	// Refaults of previously evicted pages must hit the wire.
	if s.NIC.Reads.Value() == 0 {
		t.Error("second-pass refaults should be remote reads")
	}
	// Dirtied zero-fill pages get written back on eviction.
	if s.NIC.Writes.Value() == 0 {
		t.Error("dirty zero-fill pages must be written back")
	}
}

func TestMarkZeroFillFreesHermitSwapSlots(t *testing.T) {
	cfg := Hermit(1, 512, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	gm := s.Swap.(*swapspace.GlobalSwapMap)
	before := gm.FreeSlots()
	s.MarkZeroFill(100, 200)
	if got := gm.FreeSlots(); got != before+100 {
		t.Errorf("free slots %d -> %d; zero-fill pages must not hold swap slots", before, got)
	}
}

func TestIdealHandlesZeroFill(t *testing.T) {
	cfg := Ideal(1, 512, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	s.MarkZeroFill(0, 512)
	res := s.Run([]AccessStream{seqStream(0, 512, 0)})
	if res.TotalFaults() != 512 {
		t.Fatalf("faults = %d", res.TotalFaults())
	}
	if s.NIC.Reads.Value() != 0 {
		t.Errorf("ideal zero-fill faults did %d reads", s.NIC.Reads.Value())
	}
	if res.Makespan != 0 {
		t.Errorf("ideal zero-fill faults cost %v; should be free", res.Makespan)
	}
}
