package core

import (
	"testing"

	"mage/internal/sim"
)

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Accs: []Access{{Page: 1}, {Page: 2}}}
	a, ok := s.Next()
	if !ok || a.Page != 1 {
		t.Fatalf("first = %v,%v", a, ok)
	}
	a, ok = s.Next()
	if !ok || a.Page != 2 {
		t.Fatalf("second = %v,%v", a, ok)
	}
	if _, ok = s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}

func TestRunResultAggregates(t *testing.T) {
	r := RunResult{
		Threads: []ThreadResult{
			{Accesses: 10, Faults: 2, FinishedAt: 100},
			{Accesses: 20, Faults: 3, FinishedAt: 200},
		},
		Makespan: sim.Second / 2,
	}
	if r.TotalAccesses() != 30 || r.TotalFaults() != 5 {
		t.Errorf("totals: %d accesses, %d faults", r.TotalAccesses(), r.TotalFaults())
	}
	if got := r.OpsPerSec(); got != 60 {
		t.Errorf("OpsPerSec = %v, want 60", got)
	}
	if got := r.JobsPerHour(); got != 7200 {
		t.Errorf("JobsPerHour = %v, want 7200", got)
	}
	empty := RunResult{}
	if empty.OpsPerSec() != 0 || empty.JobsPerHour() != 0 {
		t.Error("zero makespan should yield zero rates")
	}
}

func TestAccessWaitHookRuns(t *testing.T) {
	cfg := MageLib(1, 256, 512)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 2
	s := MustNewSystem(cfg)
	var wokeAt sim.Time
	stream := &SliceStream{Accs: []Access{
		{Page: 1, Compute: 10},
		{Skip: true, Wait: func(p *sim.Proc) {
			p.Sleep(5 * sim.Millisecond)
			wokeAt = p.Now()
		}},
		{Page: 2, Compute: 10},
	}}
	res := s.Run([]AccessStream{stream})
	if wokeAt < 5*sim.Millisecond {
		t.Errorf("wait hook finished at %v", wokeAt)
	}
	if res.Makespan < 5*sim.Millisecond {
		t.Errorf("makespan %v ignores the wait", res.Makespan)
	}
	if res.TotalAccesses() != 2 {
		t.Errorf("accesses = %d, want 2 (Skip element excluded)", res.TotalAccesses())
	}
}

func TestTLBHitDoesNotRefreshAccessedBit(t *testing.T) {
	cfg := DiLOS(1, 64, 256)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 2
	s := MustNewSystem(cfg)
	s.Eng.Spawn("t", func(p *sim.Proc) {
		th := s.NewThread(p, 0)
		th.Access(3, false, 10) // fault-in: A set by CompleteFault
		// Clear via a second-chance pass.
		if r := s.AS.TryUnmap(p, 3, true); r.OK {
			t.Fatal("first unmap should be refused (accessed)")
		}
		// TLB-hit reads must NOT re-set the bit.
		th.Access(3, false, 10)
		th.Access(3, false, 10)
		if s.AS.PTEOf(3).Accessed {
			t.Error("TLB-hit read refreshed the accessed bit")
		}
		// A write re-walks and sets A and D.
		th.Access(3, true, 10)
		pte := s.AS.PTEOf(3)
		if !pte.Accessed || !pte.Dirty {
			t.Errorf("write did not set A/D: %+v", pte)
		}
		th.Flush()
		s.Stop()
	})
	s.Eng.Run()
}
