// Package core implements the paper's primary contribution: the fault-in
// and eviction paths of a page-based far-memory system, with the design
// axes of §4 exposed as configuration so the four compared systems
// (Hermit, DiLOS, Mage^LIB, Mage^LNX) and the paper's ablations are all
// instances of one assembly.
package core

import (
	"fmt"

	"mage/internal/faultinject"
	"mage/internal/nic"
	"mage/internal/pgtable"
)

// AccountingKind selects the page-accounting design (§4.2.2).
type AccountingKind int

const (
	// AcctGlobalLRU is the single system-wide list (Linux/OSv, Hermit/DiLOS).
	AcctGlobalLRU AccountingKind = iota
	// AcctPartitioned is MAGE's per-evictor independent lists.
	AcctPartitioned
	// AcctPerCPUFIFO is Mage^LNX's per-CPU FIFO queues.
	AcctPerCPUFIFO
	// AcctS3FIFO is the S3-FIFO policy adapted to accessed-bit hardware
	// (extension; see internal/lru/s3fifo.go and §4.2.2's discussion).
	AcctS3FIFO
	// AcctTwoList is the classic Linux active/inactive two-list design
	// (extension baseline; internal/lru/twolist.go).
	AcctTwoList
)

func (k AccountingKind) String() string {
	switch k {
	case AcctGlobalLRU:
		return "global-lru"
	case AcctPartitioned:
		return "partitioned"
	case AcctPerCPUFIFO:
		return "per-cpu-fifo"
	case AcctS3FIFO:
		return "s3fifo"
	case AcctTwoList:
		return "two-list"
	}
	return fmt.Sprintf("AccountingKind(%d)", int(k))
}

// AllocatorKind selects the local frame-circulation design (§4.2.3).
type AllocatorKind int

const (
	// AllocGlobalLock is a buddy allocator behind one lock (DiLOS).
	AllocGlobalLock AllocatorKind = iota
	// AllocPerCPUCache is the Linux per-CPU page cache (Hermit).
	AllocPerCPUCache
	// AllocMultiLayer is MAGE's three-level allocator.
	AllocMultiLayer
)

func (k AllocatorKind) String() string {
	switch k {
	case AllocGlobalLock:
		return "global-lock"
	case AllocPerCPUCache:
		return "per-cpu-cache"
	case AllocMultiLayer:
		return "multi-layer"
	}
	return fmt.Sprintf("AllocatorKind(%d)", int(k))
}

// PrefetchKind selects the fault-address pattern detector.
type PrefetchKind int

const (
	// PrefetchStride is the strict constant-stride detector the
	// evaluated systems use ("record past fault-in virtual addresses to
	// detect sequential patterns", §6.2).
	PrefetchStride PrefetchKind = iota
	// PrefetchMajority is the Leap-style majority-stride detector
	// (extension; tolerant of interleaved fault streams).
	PrefetchMajority
)

func (k PrefetchKind) String() string {
	if k == PrefetchMajority {
		return "majority"
	}
	return "stride"
}

// SwapKind selects the remote allocator (EP₃).
type SwapKind int

const (
	// SwapGlobalMap is the Linux swap bitmap behind a global lock.
	SwapGlobalMap SwapKind = iota
	// SwapDirectMap is VMA-level direct mapping (no allocation).
	SwapDirectMap
)

func (k SwapKind) String() string {
	if k == SwapGlobalMap {
		return "global-map"
	}
	return "direct-map"
}

// Config describes one far-memory system instance.
type Config struct {
	// Name labels the system in reports.
	Name string

	// Sockets and CoresPerSocket give the machine shape (paper: 2 × 28).
	Sockets        int
	CoresPerSocket int

	// AppThreads is the number of application threads.
	AppThreads int

	// TotalPages is the application's working-set size in 4 KB pages.
	TotalPages uint64
	// LocalMemPages is the local DRAM quota in frames. TotalPages -
	// LocalMemPages pages live remotely at steady state.
	LocalMemPages int

	// EvictorThreads is the number of dedicated eviction threads (the
	// paper's sweet spot is 4).
	EvictorThreads int
	// SyncEviction allows faulting threads to run eviction inline when no
	// free frame is available. MAGE forbids this (P1).
	SyncEviction bool
	// SyncBatch is the batch size used by inline (synchronous) eviction.
	SyncBatch int
	// Pipelined enables cross-batch pipelined eviction (P2, Fig 8).
	Pipelined bool
	// BatchSize is the eviction batch size in pages.
	BatchSize int
	// TLBBatch is the maximum pages covered by one shootdown (§4.2.1).
	TLBBatch int

	// Accounting selects the page-accounting structure; HonorAccessedBit
	// enables the second-chance check during unmap (false for Mage^LNX's
	// FIFO design, which trades accuracy for contention).
	Accounting       AccountingKind
	HonorAccessedBit bool

	// Allocator selects the local frame source; AllocBatch is the
	// inter-layer transfer size.
	Allocator  AllocatorKind
	AllocBatch int

	// Swap selects the remote allocator.
	Swap SwapKind

	// PTLock selects page-table synchronization; PTShards is the shard
	// count for pgtable.LockSharded.
	PTLock   pgtable.LockModel
	PTShards int

	// Stack selects the RDMA host stack.
	Stack nic.StackKind
	// Backend selects the swap transport (RDMA default; NVMe and zswap
	// are extension cost models per the paper's conclusion).
	Backend nic.Backend
	// Virtualized systems pay a VM-exit per delivered IPI.
	Virtualized bool
	// LinuxMM charges Linux's cross-application memory-management costs
	// (rmap, cgroup accounting, swap-cache maintenance) per page.
	LinuxMM bool

	// Prefetch enables the prefetcher; PrefetchDegree caps its window
	// and PrefetchPolicy selects the detector.
	Prefetch       bool
	PrefetchDegree int
	PrefetchPolicy PrefetchKind

	// FreeLowWater and FreeHighWater are fractions of LocalMemPages: the
	// eviction path is triggered below low and runs until free frames
	// reach high.
	FreeLowWater  float64
	FreeHighWater float64

	// TLBEntries is the per-core TLB capacity.
	TLBEntries int

	// Ideal selects the analytical zero-software-overhead baseline of
	// §3.1: faults cost only data movement, eviction is free and instant.
	Ideal bool

	// FaultPlan, when non-nil and enabled, attaches a deterministic
	// fault injector (internal/faultinject) to the system's NIC: remote
	// reads and writeback writes can NACK, time out, spike, or run over
	// a degraded link per the plan's seeded schedule. nil (the default)
	// keeps the fault-free paths event-for-event identical to a build
	// without fault injection.
	FaultPlan *faultinject.Plan
	// Retry governs the fault-in/eviction retry layer; zero fields are
	// defaulted by Validate when FaultPlan is enabled.
	Retry RetryPolicy
}

// Validate checks internal consistency and fills defaulted fields.
func (c *Config) Validate() error {
	if c.Sockets == 0 {
		c.Sockets = 2
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 28
	}
	if c.AppThreads <= 0 {
		return fmt.Errorf("core: AppThreads = %d", c.AppThreads)
	}
	if c.TotalPages == 0 {
		return fmt.Errorf("core: TotalPages = 0")
	}
	if c.LocalMemPages <= 0 {
		return fmt.Errorf("core: LocalMemPages = %d", c.LocalMemPages)
	}
	if c.EvictorThreads <= 0 {
		c.EvictorThreads = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.SyncBatch <= 0 {
		c.SyncBatch = 32
	}
	if c.TLBBatch <= 0 {
		c.TLBBatch = c.BatchSize
	}
	if c.AllocBatch <= 0 {
		c.AllocBatch = 32
	}
	if c.PTShards <= 0 {
		c.PTShards = 64
	}
	if c.PrefetchDegree <= 0 {
		c.PrefetchDegree = 8
	}
	if c.FreeLowWater <= 0 {
		c.FreeLowWater = 0.02
	}
	if c.FreeHighWater <= 0 {
		c.FreeHighWater = 0.04
	}
	if c.FreeHighWater <= c.FreeLowWater {
		return fmt.Errorf("core: high watermark %v <= low %v", c.FreeHighWater, c.FreeLowWater)
	}
	if c.TLBEntries <= 0 {
		c.TLBEntries = 1536
	}
	// Clamp batch sizes for small configurations: an eviction batch must
	// be a small fraction of local memory or the system degenerates into
	// whole-working-set thrashing (only relevant for scaled-down tests;
	// real configurations have LocalMemPages >> 8×BatchSize).
	if maxBatch := c.LocalMemPages / 8; c.BatchSize > maxBatch {
		c.BatchSize = maxInt(maxBatch, 1)
	}
	if c.SyncBatch > c.BatchSize {
		c.SyncBatch = c.BatchSize
	}
	if c.TLBBatch > c.BatchSize {
		c.TLBBatch = c.BatchSize
	}
	if c.FaultPlan.Enabled() {
		c.Retry.fillDefaults()
	}
	return nil
}

// lowWatermarkFrames returns the free-frame count below which eviction is
// triggered: ~2% of local memory, like a real kernel's min watermark.
func (c *Config) lowWatermarkFrames() int {
	n := int(float64(c.LocalMemPages) * c.FreeLowWater)
	if n < 32 {
		n = 32
	}
	if cap := c.LocalMemPages / 8; n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// highWatermarkFrames is the free-frame level eviction replenishes to
// (~4-5% of local memory).
func (c *Config) highWatermarkFrames() int {
	n := int(float64(c.LocalMemPages) * c.FreeHighWater)
	low := c.lowWatermarkFrames()
	if m := low + 16; n < m {
		n = m
	}
	if cap := c.LocalMemPages / 4; n > cap {
		n = cap
	}
	if n <= low {
		n = low + 1
	}
	return n
}

// Hermit returns the Hermit baseline: Linux 4.15 + feedback-directed
// asynchrony, run on bare metal (§6.1). Its bottlenecks are the global
// LRU, the swap-map lock, and synchronous eviction fallback.
func Hermit(appThreads int, totalPages uint64, localPages int) Config {
	return Config{
		Name:             "Hermit",
		AppThreads:       appThreads,
		TotalPages:       totalPages,
		LocalMemPages:    localPages,
		EvictorThreads:   4,
		SyncEviction:     true,
		Pipelined:        false,
		BatchSize:        64,
		TLBBatch:         64,
		Accounting:       AcctGlobalLRU,
		HonorAccessedBit: true,
		Allocator:        AllocPerCPUCache,
		Swap:             SwapGlobalMap,
		PTLock:           pgtable.LockGlobal,
		Stack:            nic.StackKernel,
		Virtualized:      false,
		LinuxMM:          true,
		Prefetch:         false,
	}
}

// DiLOS returns the DiLOS baseline: OSv unikernel with a unified page
// table, direct remote mapping, and a global physical allocator lock,
// extended (as in the paper) with multiple eviction threads and
// synchronous eviction.
func DiLOS(appThreads int, totalPages uint64, localPages int) Config {
	return Config{
		Name:             "DiLOS",
		AppThreads:       appThreads,
		TotalPages:       totalPages,
		LocalMemPages:    localPages,
		EvictorThreads:   4,
		SyncEviction:     true,
		Pipelined:        false,
		BatchSize:        64,
		TLBBatch:         64,
		Accounting:       AcctGlobalLRU,
		HonorAccessedBit: true,
		Allocator:        AllocGlobalLock,
		Swap:             SwapDirectMap,
		PTLock:           pgtable.LockPerPTE,
		Stack:            nic.StackLibOS,
		Virtualized:      true,
		LinuxMM:          false,
		Prefetch:         false,
	}
}

// MageLib returns Mage^LIB: the OSv-based MAGE with all three principles
// applied (§5.2).
func MageLib(appThreads int, totalPages uint64, localPages int) Config {
	return Config{
		Name:             "MageLib",
		AppThreads:       appThreads,
		TotalPages:       totalPages,
		LocalMemPages:    localPages,
		EvictorThreads:   4,
		SyncEviction:     false,
		Pipelined:        true,
		BatchSize:        256,
		TLBBatch:         256,
		Accounting:       AcctPartitioned,
		HonorAccessedBit: true,
		Allocator:        AllocMultiLayer,
		Swap:             SwapDirectMap,
		PTLock:           pgtable.LockPerPTE,
		Stack:            nic.StackLibOS,
		Virtualized:      true,
		LinuxMM:          false,
		Prefetch:         false,
	}
}

// MageLnx returns Mage^LNX: the Linux-based MAGE (§5.1) — FIFO in-use
// queues, interval-tree address-space shards, bypassed swap layer and
// allocator, but the kernel RDMA stack and virtualization costs remain.
func MageLnx(appThreads int, totalPages uint64, localPages int) Config {
	return Config{
		Name:             "MageLnx",
		AppThreads:       appThreads,
		TotalPages:       totalPages,
		LocalMemPages:    localPages,
		EvictorThreads:   4,
		SyncEviction:     false,
		Pipelined:        true,
		BatchSize:        256,
		TLBBatch:         256,
		Accounting:       AcctPerCPUFIFO,
		HonorAccessedBit: false,
		Allocator:        AllocMultiLayer,
		Swap:             SwapDirectMap,
		PTLock:           pgtable.LockSharded,
		PTShards:         64,
		Stack:            nic.StackKernel,
		Virtualized:      true,
		LinuxMM:          false,
		Prefetch:         false,
	}
}

// Ideal returns the analytical baseline system: zero software overhead,
// only the RDMA data-movement cost per fault (§3.1).
func Ideal(appThreads int, totalPages uint64, localPages int) Config {
	return Config{
		Name:          "Ideal",
		AppThreads:    appThreads,
		TotalPages:    totalPages,
		LocalMemPages: localPages,
		Ideal:         true,
		Accounting:    AcctGlobalLRU,
		Allocator:     AllocGlobalLock,
		Swap:          SwapDirectMap,
		PTLock:        pgtable.LockPerPTE,
		Stack:         nic.StackLibOS,
	}
}

// Preset returns a named preset configuration. Recognized names are
// "ideal", "hermit", "dilos", "magelib", and "magelnx".
func Preset(name string, appThreads int, totalPages uint64, localPages int) (Config, error) {
	switch name {
	case "ideal", "Ideal":
		return Ideal(appThreads, totalPages, localPages), nil
	case "hermit", "Hermit":
		return Hermit(appThreads, totalPages, localPages), nil
	case "dilos", "DiLOS":
		return DiLOS(appThreads, totalPages, localPages), nil
	case "magelib", "MageLib":
		return MageLib(appThreads, totalPages, localPages), nil
	case "magelnx", "MageLnx":
		return MageLnx(appThreads, totalPages, localPages), nil
	}
	return Config{}, fmt.Errorf("core: unknown preset %q", name)
}

// Presets returns all five system configurations in the order the paper's
// figures list them.
func Presets(appThreads int, totalPages uint64, localPages int) []Config {
	return []Config{
		Ideal(appThreads, totalPages, localPages),
		Hermit(appThreads, totalPages, localPages),
		DiLOS(appThreads, totalPages, localPages),
		MageLib(appThreads, totalPages, localPages),
		MageLnx(appThreads, totalPages, localPages),
	}
}
