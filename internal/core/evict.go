package core

import (
	"fmt"

	"mage/internal/buddy"
	"mage/internal/invariant"
	"mage/internal/lru"
	"mage/internal/nic"
	"mage/internal/sim"
	"mage/internal/swapspace"
	"mage/internal/tlbsim"
	"mage/internal/topo"
	"mage/internal/trace"
)

// victim is one page mid-eviction.
type victim struct {
	page  uint64
	frame buddy.Frame
	dirty bool
	entry swapspace.Entry
}

// ebatch is one eviction batch moving through the pipeline stages of
// Fig 8. tlb is the TLB staging buffer (TSB) handle set; rdma is the RDMA
// staging buffer (RSB) handle.
type ebatch struct {
	victims []victim
	tlb     []*tlbsim.Completion
	rdma    *nic.Completion
	// wbBytes is the writeback size behind rdma, kept so awaitWriteback
	// can re-post the write if the fault injector drops it.
	wbBytes int64
}

// evictResult summarizes one synchronous eviction round.
type evictResult struct {
	evicted int
	tlbTime sim.Time
}

// SpawnEvictors launches the configured eviction threads. Ideal-mode
// systems evict inline at zero cost and spawn none.
func (s *System) SpawnEvictors() {
	if s.Cfg.Ideal {
		return
	}
	for j := 0; j < s.Cfg.EvictorThreads; j++ {
		j := j
		core := s.Placement.Evictor[j]
		name := fmt.Sprintf("evictor-%d", j)
		if s.Cfg.Pipelined {
			s.Eng.Spawn(name, func(p *sim.Proc) { s.pipelinedEvictor(p, j, core) })
		} else {
			s.Eng.Spawn(name, func(p *sim.Proc) { s.batchEvictor(p, j, core) })
		}
	}
}

const evictorPollInterval = 50 * sim.Microsecond

// effectiveBatch bounds the eviction batch so that the frames held in
// staging (up to three batches per evictor in the pipelined design) stay
// under an eighth of local memory in total. The paper's TSB/RSB are
// bounded buffers for the same reason; at realistic memory sizes the
// bound never binds (3·4·256 pages ≪ an eighth of tens of GB).
func (s *System) effectiveBatch(configured int) int {
	limit := s.Cfg.LocalMemPages / (24 * s.Cfg.EvictorThreads)
	if limit < 1 {
		limit = 1
	}
	if configured > limit {
		return limit
	}
	return configured
}

// batchEvictor is the traditional sequential eviction loop (Hermit,
// DiLOS): one batch at a time, each stage completing before the next
// begins.
func (s *System) batchEvictor(p *sim.Proc, id int, core topo.CoreID) {
	for !s.stopped {
		// Eviction throttling: starting a batch while the remote node is
		// down would only unmap pages it cannot write back; park until
		// the scheduled recovery instead.
		if s.FaultInj != nil && s.FaultInj.Down(p.Now()) {
			s.degradedWait(p)
			continue
		}
		if !s.underPressure() {
			s.evictKick.WaitTimeout(p, evictorPollInterval)
			continue
		}
		res := s.evictOnce(p, id, core, s.effectiveBatch(s.Cfg.BatchSize), false)
		if res.evicted == 0 {
			// Candidates dry (second chances, races): back off briefly.
			p.Sleep(5 * sim.Microsecond)
		}
	}
}

// evictOnce runs one complete sequential eviction batch. force bypasses
// the demand clamp: a synchronously evicting fault-path thread needs a
// frame immediately even if background evictors have frames in flight.
func (s *System) evictOnce(p *sim.Proc, id int, core topo.CoreID, batch int, force bool) evictResult {
	eb := s.scanAndUnmap(p, id, core, batch, force)
	if eb == nil {
		return evictResult{}
	}
	// EP₂: TLB shootdown, synchronous.
	t0 := p.Now()
	for _, c := range s.postShootdowns(p, core, eb) {
		c.Wait(p)
	}
	tlbTime := p.Now() - t0

	// EP₄: write back, synchronous (re-posted through injected faults).
	eb.rdma = s.postWriteback(p, eb)
	s.awaitWriteback(p, eb)
	s.reclaim(p, core, eb)
	return evictResult{evicted: len(eb.victims), tlbTime: tlbTime}
}

// pipelinedEvictor implements MAGE's cross-batch pipelined eviction
// (P2, Fig 8). Three batches are in flight: a new batch being scanned and
// unmapped, the previous batch waiting on TLB acknowledgements (TSB), and
// the batch before that waiting on RDMA write completion (RSB). The two
// wait stages overlap with work on the other batches.
func (s *System) pipelinedEvictor(p *sim.Proc, id int, core topo.CoreID) {
	var tsb, rsb *ebatch
	for {
		if s.stopped && tsb == nil && rsb == nil {
			return
		}
		// Eviction throttling: with nothing in flight and the remote node
		// down, park until recovery rather than feeding the pipeline
		// batches whose writebacks are doomed. In-flight batches keep
		// draining through awaitWriteback's retry loop.
		if s.FaultInj != nil && tsb == nil && rsb == nil && s.FaultInj.Down(p.Now()) {
			s.degradedWait(p)
			continue
		}
		pressure := s.underPressure()
		if !pressure && tsb == nil && rsb == nil {
			if s.stopped {
				return
			}
			s.evictKick.WaitTimeout(p, evictorPollInterval)
			continue
		}
		// ① Scan the LRU partition and unmap a new batch.
		var nb *ebatch
		if pressure && !s.stopped {
			nb = s.scanAndUnmap(p, id, core, s.effectiveBatch(s.Cfg.BatchSize), false)
		}
		if nb == nil && tsb == nil && rsb == nil {
			p.Sleep(5 * sim.Microsecond)
			continue
		}
		// ③/④ Wait for the TSB batch's TLB flushes to be acknowledged.
		if tsb != nil {
			for _, c := range tsb.tlb {
				c.Wait(p)
			}
		}
		// ② Initiate TLB flushes for the new batch (send cost only).
		if nb != nil {
			nb.tlb = s.postShootdowns(p, core, nb)
		}
		// ⑥ Wait for the RSB batch's RDMA writes (re-posting any the
		// fault injector dropped: frames may not be reclaimed until
		// their content has actually reached the far node).
		if rsb != nil {
			s.awaitWriteback(p, rsb)
		}
		// ⑤ Initiate RDMA writes for the TSB batch's dirty pages.
		if tsb != nil {
			tsb.rdma = s.postWriteback(p, tsb)
		}
		// ⑦ Reclaim the RSB batch's frames.
		if rsb != nil {
			s.reclaim(p, core, rsb)
		}
		rsb, tsb = tsb, nb
	}
}

// scanAndUnmap is EP₁ plus the unmap prelude of EP₂: isolate candidates
// from the accounting structure, unmap those whose accessed bit allows it,
// and allocate their remote slots. Returns nil when no page was unmapped.
// The victim target shrinks to the current eviction deficit so that low
// demand is served with small batches and the pipeline never over-evicts;
// like Linux's shrink loop, scanning continues past second-chance
// rejections (up to a scan budget) until the target is met.
func (s *System) scanAndUnmap(p *sim.Proc, id int, core topo.CoreID, batch int, force bool) *ebatch {
	target := batch
	if need := s.evictionDeficit(); !force && need < target {
		if need <= 0 {
			return nil
		}
		target = need
	}
	scanBudget := 4 * batch
	eb := &ebatch{}
	for len(eb.victims) < target && scanBudget > 0 {
		n := target - len(eb.victims)
		if n > scanBudget {
			n = scanBudget
		}
		cand := s.Acct.IsolateBatch(p, id, n)
		if len(cand) == 0 {
			break
		}
		scanBudget -= len(cand)
		for _, pg := range cand {
			r := s.AS.TryUnmap(p, pg, s.Cfg.HonorAccessedBit)
			if !r.OK {
				// Second chance (or a race): the page stays resident.
				s.Acct.Requeue(p, core, pg)
				continue
			}
			if s.Cfg.LinuxMM {
				// rmap walk, swap-cache insert, cgroup uncharge per page.
				p.Sleep(s.Costs.Rmap + s.Costs.SwapCache + s.Costs.Cgroup)
			}
			entry, ok := s.Swap.Alloc(p, pg)
			if !ok {
				s.AS.AbortEvict(p, pg)
				s.Acct.Requeue(p, core, pg)
				continue
			}
			eb.victims = append(eb.victims, victim{page: pg, frame: r.Frame, dirty: r.Dirty, entry: entry})
		}
	}
	if len(eb.victims) == 0 {
		return nil
	}
	s.inflight += len(eb.victims)
	return eb
}

// postShootdowns issues the batch's TLB invalidations in chunks of at
// most Cfg.TLBBatch pages per shootdown (§4.2.1), paying only the send
// cost; completions are returned for the pipeline to wait on.
func (s *System) postShootdowns(p *sim.Proc, core topo.CoreID, eb *ebatch) []*tlbsim.Completion {
	targets := s.shootdownTargets(core)
	pages := make([]uint64, len(eb.victims))
	for i, v := range eb.victims {
		pages[i] = v.page
	}
	var out []*tlbsim.Completion
	for len(pages) > 0 {
		n := s.Cfg.TLBBatch
		if n > len(pages) {
			n = len(pages)
		}
		out = append(out, s.Shooter.PostShootdown(p, core, targets, pages[:n]))
		pages = pages[n:]
	}
	return out
}

// postWriteback issues one RDMA write covering the batch's pages that
// need their content pushed remotely. With direct mapping, clean pages
// already have valid remote content and are skipped; with the Linux swap
// map, the newly allocated slot is empty so every page is written.
func (s *System) postWriteback(p *sim.Proc, eb *ebatch) *nic.Completion {
	var pagesToWrite int
	for _, v := range eb.victims {
		if v.dirty || s.Cfg.Swap == SwapGlobalMap {
			pagesToWrite++
		}
	}
	if pagesToWrite == 0 {
		return nil
	}
	eb.wbBytes = int64(pagesToWrite) * nic.PageSize
	// TryPostWrite degenerates to PostWrite when no injector is attached.
	return s.NIC.TryPostWrite(p, eb.wbBytes, s.Cfg.Retry.AttemptTimeout)
}

// reclaim is the final stage: retire the PTEs, record the remote slots,
// return the frames to circulation, and wake fault-path waiters.
func (s *System) reclaim(p *sim.Proc, core topo.CoreID, eb *ebatch) {
	frames := make([]buddy.Frame, len(eb.victims))
	ghost, _ := s.Acct.(lru.GhostTracker)
	for i, v := range eb.victims {
		s.AS.CompleteEvict(p, v.page)
		if s.remoteOf != nil {
			s.remoteOf[v.page] = v.entry
		}
		if ghost != nil {
			ghost.OnEvicted(v.page)
		}
		frames[i] = v.frame
	}
	s.Alloc.FreeBatch(p, core, frames)
	s.inflight -= len(eb.victims)
	if invariant.Enabled {
		s.checkAccounting()
	}
	s.EvictedPages.Add(uint64(len(eb.victims)))
	if s.Trace != nil {
		s.Trace.Instant(fmt.Sprintf("reclaim-%d", len(eb.victims)), "ep",
			trace.LaneEviction, int(core), int64(p.Now()))
	}
	s.freeWait.Broadcast()
}
