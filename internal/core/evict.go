package core

import (
	"fmt"

	"mage/internal/buddy"
	"mage/internal/invariant"
	"mage/internal/lru"
	"mage/internal/nic"
	"mage/internal/sim"
	"mage/internal/swapspace"
	"mage/internal/tlbsim"
	"mage/internal/topo"
)

// victim is one page mid-eviction. page is tenant-local; t owns it.
// Victim selection is node-global: a batch may mix tenants.
type victim struct {
	t     *Tenant
	page  uint64
	frame buddy.Frame
	dirty bool
	entry swapspace.Entry
	// borrowed marks a victim lent to a neighbour's DRAM instead of
	// written to swap (see borrow.go): its swap slot was handed back and
	// reclaim must not record it in remoteOf.
	borrowed bool
}

// ebatch is one eviction batch moving through the pipeline stages of
// Fig 8. tlb is the TLB staging buffer (TSB) handle set; rdma is the RDMA
// staging buffer (RSB) handle.
type ebatch struct {
	victims []victim
	tlb     []*tlbsim.Completion
	rdma    *nic.Completion
	// wbBytes is the writeback size behind rdma, kept so awaitWriteback
	// can re-post the write if the fault injector drops it.
	wbBytes int64
}

// evictResult summarizes one synchronous eviction round.
type evictResult struct {
	evicted int
	tlbTime sim.Time
}

// SpawnEvictors launches the configured eviction threads. Ideal-mode
// systems evict inline at zero cost and spawn none. Evictors are a node
// resource: they serve all tenants from the shared accounting.
func (n *Node) SpawnEvictors() {
	if n.Cfg.Ideal {
		return
	}
	for j := 0; j < n.Cfg.EvictorThreads; j++ {
		j := j
		core := n.Placement.Evictor[j]
		name := n.procName(fmt.Sprintf("evictor-%d", j))
		if n.Cfg.Pipelined {
			n.Eng.Spawn(name, func(p *sim.Proc) { n.pipelinedEvictor(p, j, core) })
		} else {
			n.Eng.Spawn(name, func(p *sim.Proc) { n.batchEvictor(p, j, core) })
		}
	}
}

const evictorPollInterval = 50 * sim.Microsecond

// effectiveBatch bounds the eviction batch so that the frames held in
// staging (up to three batches per evictor in the pipelined design) stay
// under an eighth of local memory in total. The paper's TSB/RSB are
// bounded buffers for the same reason; at realistic memory sizes the
// bound never binds (3·4·256 pages ≪ an eighth of tens of GB).
func (n *Node) effectiveBatch(configured int) int {
	limit := n.Cfg.LocalMemPages / (24 * n.Cfg.EvictorThreads)
	if limit < 1 {
		limit = 1
	}
	if configured > limit {
		return limit
	}
	return configured
}

// batchEvictor is the traditional sequential eviction loop (Hermit,
// DiLOS): one batch at a time, each stage completing before the next
// begins.
func (n *Node) batchEvictor(p *sim.Proc, id int, core topo.CoreID) {
	for !n.stopped {
		// Eviction throttling: starting a batch while the remote node is
		// down would only unmap pages it cannot write back; park until
		// the scheduled recovery instead.
		if n.FaultInj != nil && n.FaultInj.Down(p.Now()) {
			n.evictorDegradedWait(p)
			continue
		}
		// Guests go home before the node evicts its own pages.
		if n.reclaimHosted(p, core) {
			continue
		}
		if !n.underPressure() {
			n.evictKick.WaitTimeout(p, evictorPollInterval)
			continue
		}
		res := n.evictOnce(p, id, core, n.effectiveBatch(n.Cfg.BatchSize), false)
		if res.evicted == 0 {
			// Candidates dry (second chances, races): back off briefly.
			p.Sleep(5 * sim.Microsecond)
		}
	}
}

// evictOnce runs one complete sequential eviction batch. force bypasses
// the demand clamp: a synchronously evicting fault-path thread needs a
// frame immediately even if background evictors have frames in flight.
func (n *Node) evictOnce(p *sim.Proc, id int, core topo.CoreID, batch int, force bool) evictResult {
	eb := n.scanAndUnmap(p, id, core, batch, force)
	if eb == nil {
		return evictResult{}
	}
	// EP₂: TLB shootdown, synchronous.
	t0 := p.Now()
	for _, c := range n.postShootdowns(p, core, eb) {
		c.Wait(p)
	}
	tlbTime := p.Now() - t0

	// EP₄: write back, synchronous (re-posted through injected faults).
	eb.rdma = n.postWriteback(p, eb)
	n.awaitWriteback(p, eb)
	n.reclaim(p, core, eb)
	return evictResult{evicted: len(eb.victims), tlbTime: tlbTime}
}

// pipelinedEvictor implements MAGE's cross-batch pipelined eviction
// (P2, Fig 8). Three batches are in flight: a new batch being scanned and
// unmapped, the previous batch waiting on TLB acknowledgements (TSB), and
// the batch before that waiting on RDMA write completion (RSB). The two
// wait stages overlap with work on the other batches.
func (n *Node) pipelinedEvictor(p *sim.Proc, id int, core topo.CoreID) {
	var tsb, rsb *ebatch
	for {
		if n.stopped && tsb == nil && rsb == nil {
			return
		}
		// Eviction throttling: with nothing in flight and the remote node
		// down, park until recovery rather than feeding the pipeline
		// batches whose writebacks are doomed. In-flight batches keep
		// draining through awaitWriteback's retry loop.
		if n.FaultInj != nil && tsb == nil && rsb == nil && n.FaultInj.Down(p.Now()) {
			n.evictorDegradedWait(p)
			continue
		}
		// Guests go home before the node evicts its own pages; the freed
		// frames may dissolve the pressure this iteration would have
		// served with a fresh batch.
		n.reclaimHosted(p, core)
		pressure := n.underPressure()
		if !pressure && tsb == nil && rsb == nil {
			if n.stopped {
				return
			}
			n.evictKick.WaitTimeout(p, evictorPollInterval)
			continue
		}
		// ① Scan the LRU partition and unmap a new batch.
		var nb *ebatch
		if pressure && !n.stopped {
			nb = n.scanAndUnmap(p, id, core, n.effectiveBatch(n.Cfg.BatchSize), false)
		}
		if nb == nil && tsb == nil && rsb == nil {
			p.Sleep(5 * sim.Microsecond)
			continue
		}
		// ③/④ Wait for the TSB batch's TLB flushes to be acknowledged.
		if tsb != nil {
			for _, c := range tsb.tlb {
				c.Wait(p)
			}
		}
		// ② Initiate TLB flushes for the new batch (send cost only).
		if nb != nil {
			nb.tlb = n.postShootdowns(p, core, nb)
		}
		// ⑥ Wait for the RSB batch's RDMA writes (re-posting any the
		// fault injector dropped: frames may not be reclaimed until
		// their content has actually reached the far node).
		if rsb != nil {
			n.awaitWriteback(p, rsb)
		}
		// ⑤ Initiate RDMA writes for the TSB batch's dirty pages.
		if tsb != nil {
			tsb.rdma = n.postWriteback(p, tsb)
		}
		// ⑦ Reclaim the RSB batch's frames.
		if rsb != nil {
			n.reclaim(p, core, rsb)
		}
		rsb, tsb = tsb, nb
	}
}

// scanAndUnmap is EP₁ plus the unmap prelude of EP₂: isolate candidates
// from the accounting structure, unmap those whose accessed bit allows it,
// and allocate their remote slots. Returns nil when no page was unmapped.
// Candidates come from the node-wide accounting, so the batch may span
// tenants: keys decode to (tenant, page) and each victim is unmapped in
// its owner's address space. The victim target shrinks to the current
// eviction deficit so that low demand is served with small batches and
// the pipeline never over-evicts; like Linux's shrink loop, scanning
// continues past second-chance rejections (up to a scan budget) until the
// target is met.
func (n *Node) scanAndUnmap(p *sim.Proc, id int, core topo.CoreID, batch int, force bool) *ebatch {
	target := batch
	if need := n.evictionDeficit(); !force && need < target {
		if need <= 0 {
			return nil
		}
		target = need
	}
	scanBudget := 4 * batch
	eb := &ebatch{}
	for len(eb.victims) < target && scanBudget > 0 {
		want := target - len(eb.victims)
		if want > scanBudget {
			want = scanBudget
		}
		cand := n.Acct.IsolateBatch(p, id, want)
		if len(cand) == 0 {
			break
		}
		scanBudget -= len(cand)
		for _, key := range cand {
			vt, pg := n.tenantPage(key)
			r := vt.AS.TryUnmap(p, pg, n.Cfg.HonorAccessedBit)
			if !r.OK {
				// Second chance (or a race): the page stays resident.
				n.Acct.Requeue(p, core, key)
				continue
			}
			if n.Cfg.LinuxMM {
				// rmap walk, swap-cache insert, cgroup uncharge per page.
				p.Sleep(n.Costs.Rmap + n.Costs.SwapCache + n.Costs.Cgroup)
			}
			entry, ok := n.Swap.Alloc(p, vt.swapBase+pg)
			if !ok {
				vt.AS.AbortEvict(p, pg)
				n.Acct.Requeue(p, core, key)
				continue
			}
			eb.victims = append(eb.victims, victim{t: vt, page: pg, frame: r.Frame, dirty: r.Dirty, entry: entry})
		}
	}
	if len(eb.victims) == 0 {
		return nil
	}
	n.inflight += len(eb.victims)
	return eb
}

// postShootdowns issues the batch's TLB invalidations in chunks of at
// most Cfg.TLBBatch pages per shootdown (§4.2.1), paying only the send
// cost; completions are returned for the pipeline to wait on. Victims are
// grouped by owning tenant in id order: each tenant's pages go only to
// that tenant's app cores, since per-core TLBs cache tenant-local page
// numbers. A single-tenant batch degenerates to the pre-split behaviour
// (one target set, TLBBatch-page chunks).
func (n *Node) postShootdowns(p *sim.Proc, core topo.CoreID, eb *ebatch) []*tlbsim.Completion {
	var out []*tlbsim.Completion
	for _, t := range n.tenants {
		var pages []uint64
		for _, v := range eb.victims {
			if v.t == t {
				pages = append(pages, v.page)
			}
		}
		if len(pages) == 0 {
			continue
		}
		targets := t.shootdownTargets(core)
		for len(pages) > 0 {
			c := n.Cfg.TLBBatch
			if c > len(pages) {
				c = len(pages)
			}
			out = append(out, n.Shooter.PostShootdown(p, core, targets, pages[:c]))
			pages = pages[c:]
		}
	}
	return out
}

// postWriteback issues one RDMA write covering the batch's pages that
// need their content pushed remotely. With direct mapping, clean pages
// already have valid remote content and are skipped; with the Linux swap
// map, the newly allocated slot is empty so every page is written.
func (n *Node) postWriteback(p *sim.Proc, eb *ebatch) *nic.Completion {
	var pagesToWrite int
	for i := range eb.victims {
		if n.needsWriteback(&eb.victims[i]) {
			pagesToWrite++
		}
	}
	// Cross-node eviction: offer the writeback set to a neighbour with
	// spare frames first; whatever a host accepts skips the swap
	// writeback entirely.
	if pagesToWrite > 0 && n.rack != nil && n.rack.Borrow {
		pagesToWrite -= n.borrowOut(p, eb, pagesToWrite)
	}
	if pagesToWrite == 0 {
		return nil
	}
	eb.wbBytes = int64(pagesToWrite) * nic.PageSize
	// TryPostWrite degenerates to PostWrite when no injector is attached.
	return n.NIC.TryPostWrite(p, eb.wbBytes, n.Cfg.Retry.AttemptTimeout)
}

// reclaim is the final stage: retire the PTEs, record the remote slots,
// return the frames to circulation, and wake fault-path waiters. Eviction
// counters and trace instants are credited to each victim's owner.
func (n *Node) reclaim(p *sim.Proc, core topo.CoreID, eb *ebatch) {
	frames := make([]buddy.Frame, len(eb.victims))
	ghost, _ := n.Acct.(lru.GhostTracker)
	for i, v := range eb.victims {
		v.t.AS.CompleteEvict(p, v.page)
		if !v.borrowed && v.t.remoteOf != nil {
			v.t.remoteOf[v.page] = v.entry
		}
		if ghost != nil {
			ghost.OnEvicted(v.t.key(v.page))
		}
		frames[i] = v.frame
	}
	n.Alloc.FreeBatch(p, core, frames)
	n.inflight -= len(eb.victims)
	if invariant.Enabled {
		n.checkAccounting()
	}
	for _, t := range n.tenants {
		cnt := 0
		for _, v := range eb.victims {
			if v.t == t {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		t.EvictedPages.Add(uint64(cnt))
		if n.Trace != nil {
			n.Trace.Instant(fmt.Sprintf("reclaim-%d", cnt), "ep",
				t.ID, int(core), int64(p.Now()))
		}
	}
	n.freeWait.Broadcast()
}
