package core

import (
	"mage/internal/buddy"
	"mage/internal/nic"
	"mage/internal/sim"
	"mage/internal/swapspace"
	"mage/internal/topo"
)

// Cross-node eviction (remote-memory borrow). A node under pressure
// offers writeback victims to the neighbour with the most spare frames:
// the pages cross one fabric link into frames the host sets aside, and
// the swap writeback — the expensive half of eviction — is skipped.
// Three later events can end a borrow:
//
//   - the owner faults the page: it travels home over the fabric and the
//     host frame is freed (fetchBorrowed);
//   - the host comes under pressure itself: it pushes guests back before
//     evicting its own pages — the page crosses the fabric home and the
//     owner pays its own NIC writeback into its swap device
//     (reclaimHosted);
//   - nothing, and the page simply stays hosted.
//
// The owner's borrowed map and the host's hosted list both point at one
// shared borrowedPage record, and every hand-off (fault claim vs. host
// reclaim) is resolved on that record before any virtual time passes, so
// the two sides can never both think they own the page.

// borrowedPage is one page evicted into a neighbour's DRAM instead of
// swap. t/page name the owner; host and frame locate the copy.
type borrowedPage struct {
	t     *Tenant
	page  uint64
	host  int
	frame buddy.Frame
	// done marks a retired borrow: the owner fetched the page home (or a
	// reclaim landed it in swap). The host's hosted entry becomes a husk
	// that the next reclaim scan drops.
	done bool
	// reclaiming marks a borrow the host is mid-push back to the owner's
	// swap; a concurrent fault must wait for the push to land and then
	// fault from swap (claimBorrowed).
	reclaiming bool
}

// needsWriteback reports whether an evicted page's content must be
// pushed off-node: dirty pages always, and every page under the Linux
// swap map whose freshly allocated slot starts empty.
func (n *Node) needsWriteback(v *victim) bool {
	return v.dirty || n.Cfg.Swap == SwapGlobalMap
}

// borrowOut offers up to want of the batch's writeback victims to the
// neighbour with the most spare frames. On success the victims' swap
// slots (reserved by scanAndUnmap) are handed back and the pages are
// recorded as borrowed; the caller drops them from the NIC writeback.
// Returns the number of pages actually borrowed — zero when no
// neighbour can host, the fabric transfer fails, or the host's
// allocator comes up empty.
func (n *Node) borrowOut(p *sim.Proc, eb *ebatch, want int) int {
	host, budget := n.rack.pickHost(n, p.Now())
	if host == nil {
		return 0
	}
	count := want
	if count > budget {
		count = budget
	}
	var sel []*victim
	for i := range eb.victims {
		if len(sel) == count {
			break
		}
		if v := &eb.victims[i]; n.needsWriteback(v) && !v.borrowed {
			sel = append(sel, v)
		}
	}
	hostCore := host.Placement.Evictor[0]
	frames := make([]buddy.Frame, 0, len(sel))
	for len(frames) < len(sel) {
		f, ok := host.Alloc.Alloc(p, hostCore)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) == 0 {
		return 0
	}
	sel = sel[:len(frames)]
	link := n.rack.Fab.Link(n.rackIndex, host.rackIndex)
	if _, res := link.TryTransfer(p, int64(len(sel))*nic.PageSize, n.Cfg.Retry.AttemptTimeout); res != nic.ReadOK {
		// The batch never left: the host frames go straight back and the
		// victims take the ordinary swap writeback.
		host.Alloc.FreeBatch(p, hostCore, frames)
		return 0
	}
	for i, v := range sel {
		v.borrowed = true
		bp := &borrowedPage{t: v.t, page: v.page, host: host.rackIndex, frame: frames[i]}
		if v.t.borrowed == nil {
			v.t.borrowed = make(map[uint64]*borrowedPage)
		}
		v.t.borrowed[v.page] = bp
		host.hosted = append(host.hosted, bp)
		host.hostedLive++
		n.Swap.Free(p, v.entry)
		n.BorrowsOut.Inc()
		host.BorrowsHosted.Inc()
	}
	return len(sel)
}

// reclaimHosted pushes guest pages back to their owners when this node
// itself comes under pressure — guests go home before the host evicts
// its own pages. Each page crosses the fabric to its owner, the owner's
// swap grants a slot and its NIC carries the writeback (the owner pays
// for its page's exile ending), and the freed frames rejoin this node's
// pool. Returns whether any frame was reclaimed.
func (n *Node) reclaimHosted(p *sim.Proc, core topo.CoreID) bool {
	if n.rack == nil || n.hostedLive == 0 || !n.underPressure() {
		return false
	}
	k := n.evictionDeficit()
	if b := n.effectiveBatch(n.Cfg.BatchSize); k > b {
		k = b
	}
	now := p.Now()
	var take, keep []*borrowedPage
	for _, bp := range n.hosted {
		if bp.done {
			continue // husk: the owner already fetched this page home
		}
		if len(take) < k && !n.rack.Fab.Link(n.rackIndex, bp.t.node.rackIndex).Down(now) {
			// Claimed before any virtual time passes: a concurrent fault
			// on this page now waits on the owner's borrowWait instead of
			// racing the push (claimBorrowed).
			bp.reclaiming = true
			take = append(take, bp)
		} else {
			keep = append(keep, bp)
		}
	}
	n.hosted = keep
	if len(take) == 0 {
		return false
	}
	n.hostedLive -= len(take)

	var frames []buddy.Frame
	for owner := range n.rack.Nodes {
		if owner == n.rackIndex {
			continue
		}
		var group []*borrowedPage
		for _, bp := range take {
			if bp.t.node.rackIndex == owner {
				group = append(group, bp)
			}
		}
		if len(group) == 0 {
			continue
		}
		own := n.rack.Nodes[owner]
		// The owner's swap grants the slots the pages should have taken
		// at eviction time.
		type granted struct {
			bp    *borrowedPage
			entry swapspace.Entry
		}
		var ok []granted
		for _, bp := range group {
			e, got := own.Swap.Alloc(p, bp.t.swapBase+bp.page)
			if !got {
				n.rehost(bp)
				continue
			}
			ok = append(ok, granted{bp, e})
		}
		if len(ok) == 0 {
			continue
		}
		bytes := int64(len(ok)) * nic.PageSize
		link := n.rack.Fab.Link(n.rackIndex, owner)
		if _, res := link.TryTransfer(p, bytes, n.Cfg.Retry.AttemptTimeout); res != nic.ReadOK {
			for _, g := range ok {
				own.Swap.Free(p, g.entry)
				n.rehost(g.bp)
			}
			continue
		}
		// The owner's NIC carries the writeback into its swap device;
		// re-posted through injected faults like any eviction writeback.
		c := own.NIC.TryPostWrite(p, bytes, own.Cfg.Retry.AttemptTimeout)
		attempt := 0
		for c != nil {
			c.Wait(p)
			if !c.Failed() {
				break
			}
			if c.TimedOut() {
				own.EvictTimeouts.Inc()
			}
			own.EvictRetries.Inc()
			attempt++
			p.Sleep(own.FaultInj.Jitter(own.Cfg.Retry.backoff(attempt), own.Cfg.Retry.JitterFrac))
			c = own.NIC.TryPostWrite(p, bytes, own.Cfg.Retry.AttemptTimeout)
		}
		for _, g := range ok {
			if g.bp.t.remoteOf != nil {
				g.bp.t.remoteOf[g.bp.page] = g.entry
			}
			delete(g.bp.t.borrowed, g.bp.page)
			g.bp.done = true
			g.bp.reclaiming = false
			frames = append(frames, g.bp.frame)
			n.BorrowReclaims.Inc()
		}
		own.borrowWait.Broadcast()
	}
	if len(frames) == 0 {
		return false
	}
	n.Alloc.FreeBatch(p, core, frames)
	n.freeWait.Broadcast()
	return true
}

// rehost returns a claimed-but-unmoved guest page to the hosted list
// (swap full, link faulted mid-reclaim) and releases any fault-path
// thread parked on it.
func (n *Node) rehost(bp *borrowedPage) {
	bp.reclaiming = false
	n.hosted = append(n.hosted, bp)
	n.hostedLive++
	bp.t.node.borrowWait.Broadcast()
}

// borrowedEntry returns the live borrow record for a page, or nil.
func (t *Tenant) borrowedEntry(page uint64) *borrowedPage {
	if t.borrowed == nil {
		return nil
	}
	return t.borrowed[page]
}

// claimBorrowed resolves a faulting page's borrow state: nil when the
// page is not borrowed, otherwise the claimed record (removed from the
// map, so the host's reclaim scan skips it). A page mid-reclaim is
// waited out — once the host's push lands the page is in this node's
// swap and the fault proceeds down the ordinary remote-read path.
func (t *Tenant) claimBorrowed(p *sim.Proc, page uint64) *borrowedPage {
	nd := t.node
	if nd.rack == nil || t.borrowed == nil {
		return nil
	}
	for {
		bp := t.borrowed[page]
		if bp == nil {
			return nil
		}
		if !bp.reclaiming {
			delete(t.borrowed, page)
			bp.done = true
			nd.rack.Nodes[bp.host].hostedLive--
			return bp
		}
		nd.borrowWait.Wait(p)
	}
}

// fetchBorrowed pulls a claimed borrowed page home over the fabric,
// retrying through link faults exactly as remoteRead retries through
// NIC faults, then frees the host's frame. The fault path can never
// abandon the page, so this only returns on success.
func (t *Tenant) fetchBorrowed(p *sim.Proc, bp *borrowedPage) {
	nd := t.node
	host := nd.rack.Nodes[bp.host]
	link := nd.rack.Fab.Link(nd.rackIndex, bp.host)
	pol := &nd.Cfg.Retry
	attempt := 0
	for {
		_, res := link.TryTransfer(p, nic.PageSize, pol.AttemptTimeout)
		if res == nic.ReadOK {
			break
		}
		if res == nic.ReadTimeout {
			t.FaultTimeouts.Inc()
		}
		attempt++
		if attempt >= pol.MaxAttempts {
			t.FaultGiveUps.Inc()
			if inj := link.FaultInjector(); inj != nil {
				t.degradedWait(p, inj)
			} else {
				p.Sleep(pol.MaxBackoff)
			}
			attempt = 0
			continue
		}
		t.FaultRetries.Inc()
		d := pol.backoff(attempt)
		if inj := link.FaultInjector(); inj != nil {
			d = inj.Jitter(d, pol.JitterFrac)
		}
		t0 := p.Now()
		p.Sleep(d)
		t.RetryWait.Record(int64(p.Now() - t0))
	}
	host.Alloc.Free(p, host.Placement.Evictor[0], bp.frame)
	host.freeWait.Broadcast()
	t.BorrowFetches.Inc()
}
