package core

import (
	"testing"

	"mage/internal/nic"
	"mage/internal/pgtable"
	"mage/internal/sim"
	"mage/internal/swapspace"
)

func TestFaultReleasesSwapSlotOnSwapIn(t *testing.T) {
	cfg := Hermit(1, 256, 2048)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	gm := s.Swap.(*swapspace.GlobalSwapMap)
	// All 256 pages start reserved (swapped out).
	free0 := gm.FreeSlots()
	s.Eng.Spawn("t", func(p *sim.Proc) {
		th := s.NewThread(p, 0)
		for pg := uint64(0); pg < 10; pg++ {
			th.Access(pg, false, 10)
		}
		th.Flush()
	})
	s.Eng.Run()
	if got := gm.FreeSlots(); got != free0+10 {
		t.Errorf("free slots = %d, want %d (slot freed per swap-in)", got, free0+10)
	}
}

func TestLinuxMMCostsShowInFaultLatency(t *testing.T) {
	run := func(linuxMM bool) float64 {
		cfg := Hermit(1, 512, 4096)
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		cfg.LinuxMM = linuxMM
		s := MustNewSystem(cfg)
		res := s.Run([]AccessStream{seqStream(0, 512, 0)})
		return res.Metrics.FaultMeanNs
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Errorf("LinuxMM per-fault costs missing: %v <= %v", with, without)
	}
}

func TestPrefetchDropsUnderMemoryPressure(t *testing.T) {
	cfg := MageLib(2, 4096, 512) // heavy pressure
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	cfg.Prefetch = true
	cfg.PrefetchDegree = 32
	s := MustNewSystem(cfg)
	streams := []AccessStream{
		seqStream(0, 4096, 0),
		seqStream(0, 4096, 0),
	}
	res := s.Run(streams)
	if res.Metrics.Prefetched == 0 && res.Metrics.PrefetchDrop == 0 {
		t.Error("no prefetches issued on a sequential scan")
	}
	// No page may be stranded in StateFaulting by a dropped prefetch.
	for pg := uint64(0); pg < cfg.TotalPages; pg++ {
		st := s.AS.PTEOf(pg).State
		if st != pgtable.StatePresent && st != pgtable.StateRemote {
			t.Fatalf("page %d left in state %v", pg, st)
		}
	}
}

func TestVirtualizationCostsShowInFaultPath(t *testing.T) {
	run := func(virt bool) float64 {
		cfg := DiLOS(1, 512, 4096)
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		cfg.Virtualized = virt
		s := MustNewSystem(cfg)
		res := s.Run([]AccessStream{seqStream(0, 512, 0)})
		return res.Metrics.FaultMeanNs
	}
	if v, b := run(true), run(false); v <= b {
		t.Errorf("virtualized fault path (%v) should cost more than bare metal (%v)", v, b)
	}
}

func TestKernelStackCostsShowInFaultPath(t *testing.T) {
	mk := func(kernel bool) float64 {
		cfg := DiLOS(1, 512, 4096)
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		if kernel {
			cfg.Stack = nic.StackKernel
		}
		s := MustNewSystem(cfg)
		res := s.Run([]AccessStream{seqStream(0, 512, 0)})
		return res.Metrics.FaultMeanNs
	}
	if k, l := mk(true), mk(false); k <= l {
		t.Errorf("kernel stack fault (%v) should cost more than libOS (%v)", k, l)
	}
}

func TestBreakdownSumApproximatesMeanLatency(t *testing.T) {
	cfg := DiLOS(4, 2048, 1024)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i+40), 2000, cfg.TotalPages, 100, 0.3)
	}
	res := s.Run(streams)
	var sum float64
	for _, v := range res.Metrics.BreakdownNs {
		sum += v
	}
	mean := res.Metrics.FaultMeanNs
	if sum < 0.85*mean || sum > 1.15*mean {
		t.Errorf("breakdown sum %v vs mean fault latency %v: should match within 15%%", sum, mean)
	}
}
