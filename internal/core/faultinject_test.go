package core

import (
	"testing"

	"mage/internal/faultinject"
	"mage/internal/sim"
)

// faultedConfig returns a small MageLib system with the given plan.
func faultedConfig(t *testing.T, plan *faultinject.Plan) Config {
	t.Helper()
	cfg := smallPreset(t, "magelib", 4)
	cfg.FaultPlan = plan
	return cfg
}

func faultedStreams(threads, perThread int, wss uint64) []AccessStream {
	streams := make([]AccessStream, threads)
	for i := range streams {
		streams[i] = randStream(int64(100+i), perThread, wss, 200, 0.3)
	}
	return streams
}

// TestFaultedRunCompletesWithRetries: under a per-op failure rate the
// workload still finishes, and the retry layer's counters show it
// worked for the result.
func TestFaultedRunCompletesWithRetries(t *testing.T) {
	cfg := faultedConfig(t, &faultinject.Plan{
		Seed:          faultinject.DeriveSeed(7, "core", "retries"),
		ReadFailProb:  0.05,
		WriteFailProb: 0.05,
		SpikeProb:     0.02,
		SpikeMin:      sim.Microsecond,
		SpikeMax:      20 * sim.Microsecond,
	})
	s := MustNewSystem(cfg)
	s.Prepopulate(int(cfg.TotalPages) / 2)
	s.SpawnEvictors()
	res := s.Run(faultedStreams(4, 2000, cfg.TotalPages))
	if res.TotalAccesses() != 4*2000 {
		t.Fatalf("accesses = %d, want %d", res.TotalAccesses(), 4*2000)
	}
	m := res.Metrics
	if m.FaultRetries == 0 {
		t.Error("no fault-path retries at 5% failure rate")
	}
	if m.InjReadNacks == 0 {
		t.Error("injector recorded no read nacks")
	}
	if m.EvictRetries == 0 && m.InjWriteNacks > 0 {
		t.Error("writes were nacked but never retried")
	}
	if m.RetryWaits == 0 || m.RetryWaitNs <= 0 {
		t.Errorf("backoff sleeps not recorded: n=%d ns=%d", m.RetryWaits, m.RetryWaitNs)
	}
}

// TestFaultedRunSurvivesOutage: a mid-run outage window forces timeouts,
// give-ups, and degraded-mode time, and the run still completes every
// access.
func TestFaultedRunSurvivesOutage(t *testing.T) {
	cfg := faultedConfig(t, &faultinject.Plan{
		Seed:    faultinject.DeriveSeed(7, "core", "outage"),
		Outages: faultinject.PeriodicOutages(2*sim.Millisecond, 4*sim.Millisecond, sim.Millisecond, 3),
	})
	cfg.Retry = RetryPolicy{MaxAttempts: 2, AttemptTimeout: 50 * sim.Microsecond}
	s := MustNewSystem(cfg)
	s.Prepopulate(int(cfg.TotalPages) / 2)
	s.SpawnEvictors()
	res := s.Run(faultedStreams(4, 3000, cfg.TotalPages))
	if res.TotalAccesses() != 4*3000 {
		t.Fatalf("accesses = %d, want %d", res.TotalAccesses(), 4*3000)
	}
	m := res.Metrics
	if m.FaultTimeouts == 0 {
		t.Error("no fault-path timeouts across three outage windows")
	}
	if m.FaultGiveUps == 0 {
		t.Error("no give-ups: MaxAttempts=2 should exhaust during a 1ms outage")
	}
	if m.DegradedNs <= 0 || m.DegradedSpans == 0 {
		t.Errorf("degraded mode never engaged: ns=%d spans=%d", m.DegradedNs, m.DegradedSpans)
	}
	// The workload runs ~14ms+ with 3ms of scheduled downtime: degraded
	// time must stay within the same order, not explode past makespan.
	if m.DegradedNs > int64(res.Makespan) {
		t.Errorf("degraded ns %d exceeds makespan %v", m.DegradedNs, res.Makespan)
	}
}

// TestFaultedRunDeterministic: same plan, same seed, same streams →
// identical makespan and identical fault/retry tallies.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() (sim.Time, Metrics) {
		cfg := faultedConfig(t, &faultinject.Plan{
			Seed:          faultinject.DeriveSeed(7, "core", "det"),
			ReadFailProb:  0.08,
			WriteFailProb: 0.08,
			SpikeProb:     0.05,
			SpikeMin:      sim.Microsecond,
			SpikeMax:      10 * sim.Microsecond,
			Outages:       faultinject.PeriodicOutages(3*sim.Millisecond, 6*sim.Millisecond, 500*sim.Microsecond, 2),
		})
		s := MustNewSystem(cfg)
		s.Prepopulate(int(cfg.TotalPages) / 2)
		s.SpawnEvictors()
		res := s.Run(faultedStreams(4, 2000, cfg.TotalPages))
		return res.Makespan, res.Metrics
	}
	mk1, m1 := run()
	mk2, m2 := run()
	if mk1 != mk2 {
		t.Fatalf("makespan diverged: %v vs %v", mk1, mk2)
	}
	if m1.FaultRetries != m2.FaultRetries || m1.FaultTimeouts != m2.FaultTimeouts ||
		m1.FaultGiveUps != m2.FaultGiveUps || m1.EvictRetries != m2.EvictRetries ||
		m1.DegradedNs != m2.DegradedNs || m1.InjReadNacks != m2.InjReadNacks {
		t.Errorf("fault tallies diverged:\n%+v\n%+v", m1, m2)
	}
}

// TestNoPlanLeavesMetricsZero: without a FaultPlan the robustness
// metrics must all be zero and no injector is attached — the regression
// guard for the nil-injector fast paths.
func TestNoPlanLeavesMetricsZero(t *testing.T) {
	cfg := smallPreset(t, "magelib", 4)
	s := MustNewSystem(cfg)
	if s.FaultInj != nil || s.NIC.FaultInjector() != nil {
		t.Fatal("injector attached without a plan")
	}
	s.Prepopulate(int(cfg.TotalPages) / 2)
	s.SpawnEvictors()
	res := s.Run(faultedStreams(4, 1500, cfg.TotalPages))
	m := res.Metrics
	if m.FaultRetries != 0 || m.FaultTimeouts != 0 || m.FaultGiveUps != 0 ||
		m.EvictRetries != 0 || m.EvictTimeouts != 0 || m.RetryWaits != 0 ||
		m.DegradedNs != 0 || m.DegradedSpans != 0 ||
		m.InjReadNacks != 0 || m.InjWriteNacks != 0 || m.InjTimeouts != 0 || m.InjSpikes != 0 {
		t.Errorf("robustness metrics nonzero without a plan: %+v", m)
	}
}

// TestDisabledPlanIsNil: a zero-valued plan is "disabled" and must not
// attach an injector (so fault-free configs that set the pointer but no
// knobs keep the exact baseline event order).
func TestDisabledPlanIsNil(t *testing.T) {
	cfg := faultedConfig(t, &faultinject.Plan{Seed: 99})
	s := MustNewSystem(cfg)
	if s.FaultInj != nil {
		t.Fatal("injector attached for a plan with no enabled knobs")
	}
}

// TestRetryPolicyBackoff: capped doubling.
func TestRetryPolicyBackoff(t *testing.T) {
	pol := RetryPolicy{BaseBackoff: 10, MaxBackoff: 100}
	want := []sim.Time{10, 20, 40, 80, 100, 100}
	for i, w := range want {
		if got := pol.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestInvalidFaultPlanRejected: NewSystem surfaces plan validation.
func TestInvalidFaultPlanRejected(t *testing.T) {
	cfg := faultedConfig(t, &faultinject.Plan{ReadFailProb: 2})
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
