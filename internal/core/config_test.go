package core

import (
	"strings"
	"testing"

	"mage/internal/nic"
	"mage/internal/pgtable"
)

func TestKindStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{AcctGlobalLRU.String(), "global-lru"},
		{AcctPartitioned.String(), "partitioned"},
		{AcctPerCPUFIFO.String(), "per-cpu-fifo"},
		{AcctS3FIFO.String(), "s3fifo"},
		{AllocGlobalLock.String(), "global-lock"},
		{AllocPerCPUCache.String(), "per-cpu-cache"},
		{AllocMultiLayer.String(), "multi-layer"},
		{SwapGlobalMap.String(), "global-map"},
		{SwapDirectMap.String(), "direct-map"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if s := AccountingKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String() = %q", s)
	}
}

func TestPresetsAreFaithfulToTheirSystems(t *testing.T) {
	hermit := Hermit(48, 1<<16, 1<<15)
	if !hermit.SyncEviction || hermit.Pipelined {
		t.Error("Hermit: sync eviction on, pipelining off")
	}
	if hermit.Swap != SwapGlobalMap || !hermit.LinuxMM || hermit.Virtualized {
		t.Error("Hermit: Linux swap map, Linux MM costs, bare metal")
	}
	if hermit.Stack != nic.StackKernel {
		t.Error("Hermit uses the kernel RDMA stack")
	}

	dilos := DiLOS(48, 1<<16, 1<<15)
	if dilos.Swap != SwapDirectMap || dilos.PTLock != pgtable.LockPerPTE {
		t.Error("DiLOS: direct mapping + per-PTE sync")
	}
	if dilos.Allocator != AllocGlobalLock || !dilos.Virtualized {
		t.Error("DiLOS: global allocator lock, virtualized")
	}

	lib := MageLib(48, 1<<16, 1<<15)
	if lib.SyncEviction || !lib.Pipelined || lib.Accounting != AcctPartitioned {
		t.Error("MageLib: P1+P2+partitioned accounting")
	}
	if lib.Allocator != AllocMultiLayer || lib.BatchSize != 256 {
		t.Error("MageLib: multi-layer allocator, 256-page batches")
	}

	lnx := MageLnx(48, 1<<16, 1<<15)
	if lnx.Accounting != AcctPerCPUFIFO || lnx.HonorAccessedBit {
		t.Error("MageLnx: FIFO queues without second chance")
	}
	if lnx.PTLock != pgtable.LockSharded || lnx.Stack != nic.StackKernel {
		t.Error("MageLnx: sharded page-table locks over the kernel stack")
	}

	ideal := Ideal(48, 1<<16, 1<<15)
	if !ideal.Ideal {
		t.Error("Ideal preset must set Ideal")
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	cfg := Config{AppThreads: 4, TotalPages: 1 << 14, LocalMemPages: 1 << 13}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Sockets != 2 || cfg.CoresPerSocket != 28 {
		t.Errorf("machine defaults: %dx%d", cfg.Sockets, cfg.CoresPerSocket)
	}
	if cfg.EvictorThreads != 4 {
		t.Errorf("evictors = %d", cfg.EvictorThreads)
	}
	if cfg.BatchSize <= 0 || cfg.TLBBatch <= 0 || cfg.SyncBatch <= 0 {
		t.Error("batch defaults missing")
	}
	if cfg.FreeLowWater <= 0 || cfg.FreeHighWater <= cfg.FreeLowWater {
		t.Error("watermark defaults wrong")
	}
}

func TestValidateClampsBatchesToSmallMemory(t *testing.T) {
	cfg := MageLib(2, 1024, 256)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.BatchSize > 256/8 {
		t.Errorf("BatchSize %d not clamped for 256-frame memory", cfg.BatchSize)
	}
	if cfg.TLBBatch > cfg.BatchSize || cfg.SyncBatch > cfg.BatchSize {
		t.Error("TLB/sync batches exceed the eviction batch")
	}
}

func TestIdealCostModelIsZeroExceptWire(t *testing.T) {
	cfg := Ideal(4, 1<<14, 1<<13)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := DefaultCostModel(cfg)
	if m.FaultEntry != 0 || m.Rmap != 0 || m.PT.Update != 0 || m.LRU.InsertHold != 0 {
		t.Error("ideal cost model must zero software costs")
	}
	if m.NIC.BaseLatency <= 0 || m.NIC.BytesPerNs <= 0 {
		t.Error("ideal cost model keeps wire latency and bandwidth")
	}
	if m.ComputeFactor != 1.0 {
		t.Errorf("ideal ComputeFactor = %v; zero would erase workload compute", m.ComputeFactor)
	}
}

func TestIdealRunsConsumeComputeTime(t *testing.T) {
	cfg := Ideal(1, 256, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 2
	s := MustNewSystem(cfg)
	s.Prepopulate(256)
	res := s.Run([]AccessStream{seqStream(0, 256, 1000)})
	if res.Makespan < 256*1000 {
		t.Errorf("ideal makespan %v < pure compute 256µs", res.Makespan)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{System: "X", MajorFaults: 5, FaultMeanNs: 1000}
	s := m.String()
	for _, want := range []string{"X", "faults=5", "mean=1000ns"} {
		if !strings.Contains(s, want) {
			t.Errorf("Metrics.String() = %q missing %q", s, want)
		}
	}
}
