package core

import (
	"fmt"

	"mage/internal/apic"
	"mage/internal/faultinject"
	"mage/internal/invariant"
	"mage/internal/lru"
	"mage/internal/nic"
	"mage/internal/palloc"
	"mage/internal/pgtable"
	"mage/internal/sim"
	"mage/internal/stats"
	"mage/internal/swapspace"
	"mage/internal/tlbsim"
	"mage/internal/topo"
	"mage/internal/trace"
)

// tenantPageBits is how many low bits of a shared-accounting key carry a
// tenant-local page number; the bits above hold the owning tenant's id.
// Tenant 0's keys therefore equal its raw page numbers, which keeps a
// single-tenant Node's interaction with the accounting structures
// bit-identical to the pre-split core.
const tenantPageBits = 44

// TenantSpec describes one application co-located on a Node.
type TenantSpec struct {
	// Name labels the tenant in results and traces (default "tenant-<i>").
	Name string
	// AppThreads is this tenant's application thread count.
	AppThreads int
	// TotalPages is this tenant's working-set size in 4 KB pages.
	TotalPages uint64
	// FaultPlan, when non-nil and enabled, gives the tenant its own
	// deterministic fault injector for remote reads — modeling a per-tenant
	// RDMA connection whose weather is independent of the node-wide plan in
	// Config.FaultPlan (which still governs eviction writebacks, a node
	// responsibility).
	FaultPlan *faultinject.Plan
}

// Node owns everything the co-located tenants share: the simulation
// engine, machine topology, interrupt fabric, TLB shootdown machinery,
// NIC, local frame source, remote swap allocator, the global page
// accounting all tenants' resident pages circulate through, the
// free-wait/evict-kick queues, and the eviction threads. Per-application
// state (address space, remote-slot table, core affinity, metrics,
// retry/degraded state) lives in Tenant.
//
// Eviction pressure is a node-wide property: victim selection scans the
// shared accounting across every tenant's pages, so one tenant's fault
// storm evicts another's cold pages — the co-location regime the paper's
// fault/eviction balance is about.
type Node struct {
	Cfg   Config
	Costs CostModel

	Eng       *sim.Engine
	Machine   *topo.Machine
	Fabric    *apic.Fabric
	Shooter   *tlbsim.Shooter
	NIC       *nic.NIC
	Alloc     palloc.Source
	Swap      swapspace.Allocator
	Acct      lru.Accounting
	Placement topo.Placement

	tenants []*Tenant

	// rack and rackIndex are set when the node is part of a Rack: several
	// nodes sharing one engine, joined by a simulated fabric. Both stay
	// zero for a standalone node, and every rack-only code path is gated
	// on rack != nil so a standalone node's event sequence is untouched.
	rack      *Rack
	rackIndex int
	// hosted lists guest pages this node holds for neighbours, in arrival
	// order; retired entries (owner fetched the page home) stay in the
	// slice as husks until a reclaim scan drops them, so hostedLive is the
	// authoritative live count.
	hosted     []*borrowedPage
	hostedLive int
	// borrowWait parks fault-path threads whose borrowed page is mid-push
	// back to this node's swap by its host (see claimBorrowed).
	borrowWait *sim.WaitQueue

	// Borrow/reclaim accounting (all zero off-rack).
	BorrowsOut     stats.Counter // victim pages lent to a neighbour instead of swapped
	BorrowsHosted  stats.Counter // guest pages accepted for neighbours
	BorrowReclaims stats.Counter // guest pages pushed back to owners under pressure

	freeWait  *sim.WaitQueue
	evictKick *sim.WaitQueue
	stopped   bool
	// inflight counts frames unmapped by eviction but not yet reclaimed
	// (sitting in the TSB/RSB pipeline stages); they are committed to
	// becoming free, so pressure checks must count them or the pipeline
	// over-evicts and the application refaults the overshoot.
	inflight int

	// prepopulated counts frames handed out by Prepopulate across all
	// tenants: the warm-start budget is a property of the shared local
	// DRAM pool, not of any one tenant.
	prepopulated int

	// Trace, when non-nil, records fault and eviction spans for export
	// as a Chrome trace (see internal/trace). Events are tagged with the
	// owning tenant's id in the PID field.
	Trace *trace.Recorder

	// FaultInj is the node-wide injector shared with the NIC (nil unless
	// Cfg.FaultPlan enables injection). It governs eviction writebacks and
	// the reads of any tenant without its own plan. The eviction-side
	// retry counters live here because writeback is a node responsibility.
	FaultInj      *faultinject.Injector
	EvictRetries  stats.Counter // writeback posts repeated after a dropped write
	EvictTimeouts stats.Counter // writeback drops that were timeouts
}

// NewNode assembles a node shared by the given tenants on a fresh engine.
// cfg describes the shared substrate; its AppThreads and TotalPages are
// overwritten with the tenant sums. An empty specs slice builds a
// single-tenant node shaped by cfg alone (what NewSystem does).
func NewNode(cfg Config, specs []TenantSpec) (*Node, error) {
	return newNodeOn(sim.NewEngine(), cfg, specs)
}

// newNodeOn is NewNode on a caller-owned engine — the seam NewRack uses
// to put several nodes on one shared engine (each in its own event
// domain). Construction itself schedules no events, so a node built here
// behaves identically to one built by NewNode.
func newNodeOn(eng *sim.Engine, cfg Config, specs []TenantSpec) (*Node, error) {
	if len(specs) == 0 {
		specs = []TenantSpec{{Name: cfg.Name, AppThreads: cfg.AppThreads, TotalPages: cfg.TotalPages}}
	} else {
		specs = append([]TenantSpec(nil), specs...) // callers keep their slice
	}
	sumThreads := 0
	var sumPages uint64
	for i := range specs {
		sp := &specs[i]
		if sp.Name == "" {
			sp.Name = fmt.Sprintf("tenant-%d", i)
		}
		if sp.AppThreads <= 0 {
			return nil, fmt.Errorf("core: tenant %d: AppThreads = %d", i, sp.AppThreads)
		}
		if sp.TotalPages == 0 {
			return nil, fmt.Errorf("core: tenant %d: TotalPages = 0", i)
		}
		if sp.TotalPages >= 1<<tenantPageBits {
			return nil, fmt.Errorf("core: tenant %d: TotalPages %d overflows the %d-bit page key",
				i, sp.TotalPages, tenantPageBits)
		}
		sumThreads += sp.AppThreads
		sumPages += sp.TotalPages
	}
	// The node-wide Config carries the aggregate load; per-tenant shapes
	// live in the specs.
	cfg.AppThreads = sumThreads
	cfg.TotalPages = sumPages
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) > 1 && cfg.Ideal {
		return nil, fmt.Errorf("core: the Ideal analytical baseline is single-tenant only")
	}
	for _, sp := range specs {
		if sp.FaultPlan.Enabled() {
			cfg.Retry.fillDefaults()
			break
		}
	}

	costs := DefaultCostModel(cfg)
	machine := topo.NewMachine(cfg.Sockets, cfg.CoresPerSocket)
	// Per-core TLBs cache tenant-local page numbers, so two tenants on one
	// core would alias each other's translations. Multi-tenant placements
	// therefore require a dedicated core per thread.
	if len(specs) > 1 && sumThreads > machine.NumCores() {
		return nil, fmt.Errorf("core: %d app threads across %d tenants exceed %d cores (tenants must not share TLBs)",
			sumThreads, len(specs), machine.NumCores())
	}

	n := &Node{
		Cfg:        cfg,
		Costs:      costs,
		Eng:        eng,
		Machine:    machine,
		Fabric:     apic.NewFabric(eng, machine, costs.APIC),
		NIC:        nic.New(eng, cfg.Stack, costs.NIC),
		freeWait:   sim.NewWaitQueue(eng, "free-wait"),
		evictKick:  sim.NewWaitQueue(eng, "evict-kick"),
		borrowWait: sim.NewWaitQueue(eng, "borrow-wait"),
	}
	if cfg.FaultPlan.Enabled() {
		inj, err := faultinject.New(*cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		n.FaultInj = inj
		n.NIC.SetFaultInjector(inj)
	}
	n.Shooter = tlbsim.NewShooter(n.Fabric, machine, costs.TLB, cfg.TLBEntries)

	var swapBase uint64
	for i, sp := range specs {
		t := &Tenant{
			node:         n,
			ID:           i,
			Spec:         sp,
			swapBase:     swapBase,
			FaultLatency: stats.NewHistogram(),
			FaultBreak:   stats.NewBreakdown(),
			RetryWait:    stats.NewHistogram(),
		}
		t.AS = pgtable.New(eng, sp.TotalPages, cfg.PTLock, cfg.PTShards, costs.PT)
		t.AS.Label = fmt.Sprintf("t%d", i)
		t.AS.Map(0, sp.TotalPages, "wss")
		if sp.FaultPlan.Enabled() {
			inj, err := faultinject.New(*sp.FaultPlan)
			if err != nil {
				return nil, err
			}
			t.Inj = inj
		}
		n.tenants = append(n.tenants, t)
		swapBase += sp.TotalPages
	}

	switch cfg.Allocator {
	case AllocGlobalLock:
		n.Alloc = palloc.NewGlobalLock(eng, cfg.LocalMemPages, costs.Alloc)
	case AllocPerCPUCache:
		n.Alloc = palloc.NewPerCPUCache(eng, machine, cfg.LocalMemPages, cfg.AllocBatch, costs.Alloc)
	case AllocMultiLayer:
		n.Alloc = palloc.NewMultiLayer(eng, machine, cfg.LocalMemPages, cfg.AllocBatch, costs.Alloc)
	default:
		return nil, fmt.Errorf("core: unknown allocator kind %v", cfg.Allocator)
	}

	switch cfg.Swap {
	case SwapGlobalMap:
		gm := swapspace.NewGlobalSwapMap(eng, int(cfg.TotalPages)+cfg.LocalMemPages, costs.Swap)
		// Every tenant's pages start swapped out at identity slots in the
		// shared device — tenant i's page p at slot swapBase_i + p — as if
		// the working sets were pre-evicted with madvise_pageout (§3.2).
		gm.ReserveFirst(int(cfg.TotalPages))
		n.Swap = gm
		for _, t := range n.tenants {
			t.remoteOf = make([]swapspace.Entry, t.Spec.TotalPages)
			for i := range t.remoteOf {
				t.remoteOf[i] = swapspace.Entry(t.swapBase + uint64(i))
			}
		}
	case SwapDirectMap:
		n.Swap = swapspace.NewDirectMap(int(cfg.TotalPages))
	default:
		return nil, fmt.Errorf("core: unknown swap kind %v", cfg.Swap)
	}

	switch cfg.Accounting {
	case AcctGlobalLRU:
		n.Acct = lru.NewGlobal(eng, costs.LRU)
	case AcctPartitioned:
		n.Acct = lru.NewPartitioned(eng, cfg.EvictorThreads, costs.LRU)
	case AcctPerCPUFIFO:
		n.Acct = lru.NewPerCPUFIFO(eng, machine, cfg.EvictorThreads, costs.LRU)
	case AcctS3FIFO:
		n.Acct = lru.NewS3FIFO(eng, cfg.LocalMemPages/10+1, costs.LRU)
	case AcctTwoList:
		n.Acct = lru.NewTwoList(eng, costs.LRU)
	default:
		return nil, fmt.Errorf("core: unknown accounting kind %v", cfg.Accounting)
	}

	n.Placement = machine.Place(cfg.AppThreads, cfg.EvictorThreads)
	tbase := 0
	for _, t := range n.tenants {
		t.Cores = n.Placement.App[tbase : tbase+t.Spec.AppThreads]
		t.appCores = topo.DistinctCores(t.Cores)
		tbase += t.Spec.AppThreads
	}
	return n, nil
}

// Tenants returns the node's tenants in id order.
func (n *Node) Tenants() []*Tenant { return n.tenants }

// Rack returns the rack this node belongs to, or nil for a standalone
// node; RackIndex is its position in the rack.
func (n *Node) Rack() *Rack      { return n.rack }
func (n *Node) RackIndex() int   { return n.rackIndex }
func (n *Node) HostedPages() int { return n.hostedLive }

// procName prefixes a proc name with the node's rack index so traces
// from different nodes stay distinguishable on the shared engine. Off
// rack the name passes through untouched.
func (n *Node) procName(name string) string {
	if n.rack == nil {
		return name
	}
	return fmt.Sprintf("n%d.%s", n.rackIndex, name)
}

// tenantPage splits a shared-accounting key into its owning tenant and
// tenant-local page number.
func (n *Node) tenantPage(key uint64) (*Tenant, uint64) {
	return n.tenants[key>>tenantPageBits], key & (1<<tenantPageBits - 1)
}

// freeFrames returns the free frames reachable by any core: watermark and
// eviction-pressure decisions must not count frames stranded in other
// cores' private caches.
func (n *Node) freeFrames() int { return n.Alloc.SharedFree() }

// underPressure reports whether eviction should run.
func (n *Node) underPressure() bool {
	return n.evictionDeficit() > 0
}

// evictionDeficit returns how many more frames eviction must free to
// reach the high watermark, accounting for frames already committed in
// the pipeline. Blocked faulting threads always add to the deficit:
// "free" frames may be stranded in other cores' caches, unreachable to
// the waiters, so their demand must be served by fresh evictions.
func (n *Node) evictionDeficit() int {
	d := n.Cfg.highWatermarkFrames() - n.freeFrames() - n.inflight
	if d < 0 {
		d = 0
	}
	return d + n.freeWait.Len()
}

// kickEvictors wakes eviction threads.
func (n *Node) kickEvictors() { n.evictKick.Broadcast() }

// lendBudget is how many frames this node can host for neighbours while
// keeping twice its high watermark free: hosting must never shove the
// host itself into eviction, or one node's pressure would ricochet
// around the rack as fast as it was relieved.
func (n *Node) lendBudget() int {
	b := n.freeFrames() - 2*n.Cfg.highWatermarkFrames()
	if b < 0 {
		b = 0
	}
	return b
}

// PrepopBudget returns how many more pages Prepopulate can make resident
// before the warm start would eat into the free-page headroom the
// evictors defend (Ideal mode has no evictors and may fill local memory
// completely). The budget is node-wide: co-located tenants that want a
// WSS-proportional warm start should divide this among themselves before
// calling Prepopulate.
func (n *Node) PrepopBudget() int {
	b := n.Cfg.LocalMemPages - n.Cfg.highWatermarkFrames() - n.prepopulated
	if n.Cfg.Ideal {
		b = n.Cfg.LocalMemPages - n.prepopulated
	}
	if b < 0 {
		b = 0
	}
	return b
}

// checkAccounting asserts the cross-module frame-conservation invariants
// when built with -tags magecheck. Frames mid-transition (allocated but
// not yet installed, or unmapped but not yet freed) are neither free nor
// resident, so the conservation laws are inequalities except at quiescence.
// Residency is summed across tenants: the local-DRAM pool is shared.
func (n *Node) checkAccounting() {
	invariant.Assert(n.inflight >= 0, "core: inflight count %d negative", n.inflight)
	resident := 0
	for _, t := range n.tenants {
		r := t.AS.Resident()
		invariant.Assert(r <= n.Cfg.LocalMemPages,
			"core: tenant %d: %d resident pages exceed %d local frames", t.ID, r, n.Cfg.LocalMemPages)
		resident += r
	}
	invariant.Assert(resident <= n.Cfg.LocalMemPages,
		"core: %d resident pages exceed %d local frames", resident, n.Cfg.LocalMemPages)
	// Overflow-safe form of free+resident <= total: resident <= total
	// was asserted just above, so the subtraction cannot wrap.
	invariant.Assert(n.Alloc.FreeFrames() <= n.Cfg.LocalMemPages-resident,
		"core: free %d + resident %d exceed %d local frames",
		n.Alloc.FreeFrames(), resident, n.Cfg.LocalMemPages)
	if n.Acct != nil {
		invariant.Assert(n.Acct.Len() <= resident,
			"core: accounting tracks %d pages but only %d are resident", n.Acct.Len(), resident)
	}
}

// Stop shuts down background eviction threads once the workload is done.
func (n *Node) Stop() {
	n.stopped = true
	n.evictKick.Broadcast()
}

// Stopped reports whether Stop has been called.
func (n *Node) Stopped() bool { return n.stopped }
