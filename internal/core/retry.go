package core

import (
	"mage/internal/nic"
	"mage/internal/sim"
)

// RetryPolicy parameterizes the fault-in/eviction retry layer: per-op
// timeouts with capped exponential backoff and deterministic jitter.
// It only takes effect when Config.FaultPlan enables injection; without
// a plan every remote op succeeds on the first attempt and the policy
// is never consulted.
type RetryPolicy struct {
	// MaxAttempts is how many times one remote op is tried before the
	// path declares the remote unreachable and drops into degraded mode.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline: a timed-out op burns
	// this much virtual time before the retry logic sees the failure.
	AttemptTimeout sim.Time
	// BaseBackoff doubles per consecutive failure up to MaxBackoff.
	BaseBackoff sim.Time
	MaxBackoff  sim.Time
	// JitterFrac spreads each backoff by ±frac (deterministically, from
	// the injector's seeded RNG) so concurrent retriers desynchronize.
	JitterFrac float64
}

// fillDefaults sets the paper-scale defaults for any zero field.
func (r *RetryPolicy) fillDefaults() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.AttemptTimeout <= 0 {
		r.AttemptTimeout = 100 * sim.Microsecond
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 10 * sim.Microsecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = sim.Millisecond
	}
	if r.JitterFrac <= 0 {
		r.JitterFrac = 0.25
	}
}

// backoff returns the capped exponential delay after the attempt-th
// consecutive failure (attempt ≥ 1).
func (r *RetryPolicy) backoff(attempt int) sim.Time {
	d := r.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// remoteRead fetches bytes from the far node through whatever weather
// the fault injector schedules: NACKs and timeouts are retried with
// capped exponential backoff + jitter; after MaxAttempts consecutive
// failures the path records a give-up and sits out the outage in
// degraded mode before starting a fresh round. The fault path can never
// abandon the page, so this only returns on success. With no injector
// it is exactly NIC.Read.
func (s *System) remoteRead(p *sim.Proc, bytes int64) {
	if s.FaultInj == nil {
		s.NIC.Read(p, bytes)
		return
	}
	pol := &s.Cfg.Retry
	attempt := 0
	for {
		_, res := s.NIC.TryRead(p, bytes, pol.AttemptTimeout)
		if res == nic.ReadOK {
			return
		}
		if res == nic.ReadTimeout {
			s.FaultTimeouts.Inc()
		}
		attempt++
		if attempt >= pol.MaxAttempts {
			s.FaultGiveUps.Inc()
			s.degradedWait(p)
			attempt = 0
			continue
		}
		s.FaultRetries.Inc()
		d := s.FaultInj.Jitter(pol.backoff(attempt), pol.JitterFrac)
		t0 := p.Now()
		p.Sleep(d)
		s.RetryWait.Record(int64(p.Now() - t0))
	}
}

// degradedWait parks p until the remote node's next scheduled recovery
// (or one MaxBackoff when the injector reports the node up but ops keep
// failing), accounting the time as degraded. This is the degraded mode:
// fault-path threads and evictors stop hammering a dead link and the
// time they lose is observable in Metrics.
func (s *System) degradedWait(p *sim.Proc) {
	now := p.Now()
	until := s.FaultInj.NextRecovery(now)
	if until <= now {
		until = now + s.Cfg.Retry.MaxBackoff
	}
	s.Degraded.Enter(int64(now))
	p.Sleep(until - now)
	s.Degraded.Exit(int64(p.Now()))
}

// awaitWriteback waits for the batch's RDMA write and, when the fault
// injector drops it, re-posts the write until it sticks — an eviction
// may not reclaim frames whose content never reached the far node.
// Consecutive failures back off exponentially; during outages the
// evictor throttles in degraded mode instead of spinning. With no
// injector the completion cannot fail and this is exactly one Wait.
func (s *System) awaitWriteback(p *sim.Proc, eb *ebatch) {
	c := eb.rdma
	attempt := 0
	for c != nil {
		c.Wait(p)
		if !c.Failed() {
			return
		}
		if c.TimedOut() {
			s.EvictTimeouts.Inc()
		}
		s.EvictRetries.Inc()
		attempt++
		if s.FaultInj.Down(p.Now()) {
			s.degradedWait(p)
			attempt = 0
		} else {
			p.Sleep(s.FaultInj.Jitter(s.Cfg.Retry.backoff(attempt), s.Cfg.Retry.JitterFrac))
		}
		c = s.NIC.TryPostWrite(p, eb.wbBytes, s.Cfg.Retry.AttemptTimeout)
	}
}
