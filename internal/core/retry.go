package core

import (
	"mage/internal/faultinject"
	"mage/internal/nic"
	"mage/internal/sim"
)

// RetryPolicy parameterizes the fault-in/eviction retry layer: per-op
// timeouts with capped exponential backoff and deterministic jitter.
// It only takes effect when a fault plan (node-wide Config.FaultPlan or a
// per-tenant TenantSpec.FaultPlan) enables injection; without a plan
// every remote op succeeds on the first attempt and the policy is never
// consulted.
type RetryPolicy struct {
	// MaxAttempts is how many times one remote op is tried before the
	// path declares the remote unreachable and drops into degraded mode.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline: a timed-out op burns
	// this much virtual time before the retry logic sees the failure.
	AttemptTimeout sim.Time
	// BaseBackoff doubles per consecutive failure up to MaxBackoff.
	BaseBackoff sim.Time
	MaxBackoff  sim.Time
	// JitterFrac spreads each backoff by ±frac (deterministically, from
	// the injector's seeded RNG) so concurrent retriers desynchronize.
	JitterFrac float64
}

// fillDefaults sets the paper-scale defaults for any zero field.
func (r *RetryPolicy) fillDefaults() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.AttemptTimeout <= 0 {
		r.AttemptTimeout = 100 * sim.Microsecond
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 10 * sim.Microsecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = sim.Millisecond
	}
	if r.JitterFrac <= 0 {
		r.JitterFrac = 0.25
	}
}

// backoff returns the capped exponential delay after the attempt-th
// consecutive failure (attempt ≥ 1).
func (r *RetryPolicy) backoff(attempt int) sim.Time {
	d := r.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// remoteRead fetches bytes from the far node through whatever weather
// the tenant's fault injector schedules: NACKs and timeouts are retried
// with capped exponential backoff + jitter; after MaxAttempts consecutive
// failures the path records a give-up and sits out the outage in
// degraded mode before starting a fresh round. The fault path can never
// abandon the page, so this only returns on success. With no injector
// it is exactly NIC.Read. Degraded parking is per-tenant: this tenant's
// outage never parks a co-tenant's fault path.
func (t *Tenant) remoteRead(p *sim.Proc, bytes int64) {
	inj := t.injector()
	if inj == nil {
		t.node.NIC.Read(p, bytes)
		return
	}
	pol := &t.node.Cfg.Retry
	attempt := 0
	for {
		_, res := t.node.NIC.TryReadWith(p, bytes, pol.AttemptTimeout, inj)
		if res == nic.ReadOK {
			return
		}
		if res == nic.ReadTimeout {
			t.FaultTimeouts.Inc()
		}
		attempt++
		if attempt >= pol.MaxAttempts {
			t.FaultGiveUps.Inc()
			t.degradedWait(p, inj)
			attempt = 0
			continue
		}
		t.FaultRetries.Inc()
		d := inj.Jitter(pol.backoff(attempt), pol.JitterFrac)
		t0 := p.Now()
		p.Sleep(d)
		t.RetryWait.Record(int64(p.Now() - t0))
	}
}

// degradedWait parks p until the given injector's next scheduled recovery
// (or one MaxBackoff when the injector reports the node up but ops keep
// failing), accounting the time against this tenant's Degraded spans.
// This is the degraded mode: fault-path threads stop hammering a dead
// link and the time they lose is observable in the tenant's Metrics.
func (t *Tenant) degradedWait(p *sim.Proc, inj *faultinject.Injector) {
	now := p.Now()
	until := inj.NextRecovery(now)
	if until <= now {
		until = now + t.node.Cfg.Retry.MaxBackoff
	}
	t.Degraded.Enter(int64(now))
	p.Sleep(until - now)
	t.Degraded.Exit(int64(p.Now()))
}

// evictorDegradedWait parks an evictor until the node injector's next
// scheduled recovery. Evictors serve every tenant, so the lost time is
// entered into all tenants' Degraded spans (in id order); a single-tenant
// node degenerates to exactly the old shared-span accounting, where
// overlapping fault-path and evictor episodes merge into one span.
func (n *Node) evictorDegradedWait(p *sim.Proc) {
	now := p.Now()
	until := n.FaultInj.NextRecovery(now)
	if until <= now {
		until = now + n.Cfg.Retry.MaxBackoff
	}
	for _, t := range n.tenants {
		t.Degraded.Enter(int64(now))
	}
	p.Sleep(until - now)
	end := int64(p.Now())
	for _, t := range n.tenants {
		t.Degraded.Exit(end)
	}
}

// awaitWriteback waits for the batch's RDMA write and, when the node
// fault injector drops it, re-posts the write until it sticks — an
// eviction may not reclaim frames whose content never reached the far
// node. Consecutive failures back off exponentially; during outages the
// evictor throttles in degraded mode instead of spinning. With no
// injector the completion cannot fail and this is exactly one Wait.
func (n *Node) awaitWriteback(p *sim.Proc, eb *ebatch) {
	c := eb.rdma
	attempt := 0
	for c != nil {
		c.Wait(p)
		if !c.Failed() {
			return
		}
		if c.TimedOut() {
			n.EvictTimeouts.Inc()
		}
		n.EvictRetries.Inc()
		attempt++
		if n.FaultInj.Down(p.Now()) {
			n.evictorDegradedWait(p)
			attempt = 0
		} else {
			p.Sleep(n.FaultInj.Jitter(n.Cfg.Retry.backoff(attempt), n.Cfg.Retry.JitterFrac))
		}
		c = n.NIC.TryPostWrite(p, eb.wbBytes, n.Cfg.Retry.AttemptTimeout)
	}
}
