package core

import (
	"fmt"

	"mage/internal/faultinject"
	"mage/internal/nic"
	"mage/internal/sim"
)

// This file scales the Node/Tenant split one level up: a Rack is N nodes
// sharing one discrete-event engine (each node's processes in their own
// event domain, so a sharded engine can give every node its own event
// queue) joined by a simulated fabric. The rack exists for one policy:
// cross-node eviction — a node under memory pressure offers victim pages
// to a neighbour with free frames before paying a swap writeback (see
// borrow.go).

// NodeSpec describes one rack node: its shared substrate plus the
// tenants co-located on it (empty Tenants builds a single-tenant node
// shaped by Cfg alone, exactly like NewNode).
type NodeSpec struct {
	Cfg     Config
	Tenants []TenantSpec
}

// RackConfig describes a rack.
type RackConfig struct {
	// Nodes are the rack's nodes in index order.
	Nodes []NodeSpec
	// Link parameterizes every fabric link; the zero value takes
	// nic.DefaultLinkCosts.
	Link nic.LinkCosts
	// Borrow enables cross-node eviction: victims are offered to the
	// neighbour with the most spare frames before being written to swap.
	Borrow bool
	// EngineShards is the engine's event-queue shard count; 0 takes the
	// package default. Digests are shard-count invariant, so this is a
	// pure performance knob.
	EngineShards int
	// LinkPlans attaches deterministic fault schedules to individual
	// links, keyed by node-index pair (either order). A severed link
	// (outage window) stops borrowing across it and times out transfers,
	// the same verbs that sever a node's NIC.
	LinkPlans map[[2]int]*faultinject.Plan
}

// Rack is N nodes on one engine joined by a fabric.
type Rack struct {
	Eng    *sim.Engine
	Fab    *nic.Fabric
	Nodes  []*Node
	Borrow bool
}

// NewRack assembles the rack: one engine, one fabric, and every node
// built in its own event domain so node i's processes dispatch from
// event-queue shard i mod shards.
func NewRack(rc RackConfig) (*Rack, error) {
	if len(rc.Nodes) == 0 {
		return nil, fmt.Errorf("core: rack needs at least one node")
	}
	if rc.Link == (nic.LinkCosts{}) {
		rc.Link = nic.DefaultLinkCosts()
	}
	var eng *sim.Engine
	if rc.EngineShards > 0 {
		eng = sim.NewEngineShards(rc.EngineShards)
	} else {
		eng = sim.NewEngine()
	}
	r := &Rack{
		Eng:    eng,
		Fab:    nic.NewFabric(eng, len(rc.Nodes), rc.Link),
		Borrow: rc.Borrow,
	}
	for i, spec := range rc.Nodes {
		eng.SetSpawnDomain(i)
		n, err := newNodeOn(eng, spec.Cfg, spec.Tenants)
		if err != nil {
			return nil, fmt.Errorf("core: rack node %d: %w", i, err)
		}
		n.rack = r
		n.rackIndex = i
		// Borrow fetches ride the same retry ladder as remote reads, so
		// the policy must be usable even without a fault plan.
		n.Cfg.Retry.fillDefaults()
		r.Nodes = append(r.Nodes, n)
	}
	eng.SetSpawnDomain(0)
	for a := 0; a < len(rc.Nodes); a++ {
		for b := a + 1; b < len(rc.Nodes); b++ {
			plan := rc.LinkPlans[[2]int{a, b}]
			if plan == nil {
				plan = rc.LinkPlans[[2]int{b, a}]
			}
			if !plan.Enabled() {
				continue
			}
			inj, err := faultinject.New(*plan)
			if err != nil {
				return nil, fmt.Errorf("core: rack link %d-%d: %w", a, b, err)
			}
			r.Fab.SetLinkInjector(a, b, inj)
		}
	}
	return r, nil
}

// pickHost returns the borrow target for a node under pressure: the
// reachable neighbour with the most spare frames, lowest index on ties,
// together with its lend budget. nil when no neighbour can host.
// Selection reads only engine-time state, so it is as deterministic as
// the event order itself.
func (r *Rack) pickHost(from *Node, now sim.Time) (*Node, int) {
	var best *Node
	bestBudget := 0
	for j, cand := range r.Nodes {
		if j == from.rackIndex || cand.Cfg.Ideal {
			continue
		}
		if r.Fab.Link(from.rackIndex, j).Down(now) {
			continue
		}
		if b := cand.lendBudget(); b > bestBudget {
			best, bestBudget = cand, b
		}
	}
	return best, bestBudget
}

// Run executes each node's tenant streams (streams[node][tenant][thread])
// to completion on the shared engine and returns one RunResult per
// tenant per node. Every node's processes are spawned in node order
// before the engine runs — the rack-scale extension of RunTenants'
// fixed spawn order — so the merged event sequence is a pure function of
// the configuration and streams at any shard count.
func (r *Rack) Run(streams [][][]AccessStream, opts RunOptions) [][]RunResult {
	if len(streams) != len(r.Nodes) {
		panic(fmt.Sprintf("core: %d stream sets for %d rack nodes", len(streams), len(r.Nodes)))
	}
	runs := make([]*nodeRun, len(r.Nodes))
	for i, n := range r.Nodes {
		r.Eng.SetSpawnDomain(i)
		runs[i] = n.startTenants(streams[i], opts)
	}
	r.Eng.SetSpawnDomain(0)
	if opts.Deadline > 0 {
		r.Eng.RunUntil(opts.Deadline)
		for _, n := range r.Nodes {
			if !n.stopped {
				n.Stop()
			}
		}
		r.Eng.Stop()
		r.Eng.Shutdown()
	} else {
		r.Eng.Run()
	}
	out := make([][]RunResult, len(r.Nodes))
	for i, run := range runs {
		out[i] = run.finish()
	}
	return out
}
