package core

import (
	"fmt"

	"mage/internal/buddy"
	"mage/internal/faultinject"
	"mage/internal/nic"
	"mage/internal/pgtable"
	"mage/internal/prefetch"
	"mage/internal/sim"
	"mage/internal/stats"
	"mage/internal/swapspace"
	"mage/internal/topo"
)

// Tenant is one application's slice of a Node: its address space and
// remote-slot table, its core affinity, its retry/degraded state, and a
// full per-tenant metrics block. Everything it shares with its co-tenants
// — frames, accounting, NIC, evictors — lives on the Node.
type Tenant struct {
	node *Node

	// ID is the tenant's index on the node (0 on single-tenant systems);
	// it is the tenant's trace PID and the high bits of its accounting
	// keys.
	ID int
	// Spec is the tenant's shape as passed to NewNode.
	Spec TenantSpec

	AS *pgtable.AddressSpace
	// remoteOf maps a tenant-local page to its swap entry while remote;
	// only used with SwapGlobalMap (direct mapping needs no table).
	remoteOf []swapspace.Entry
	// swapBase offsets this tenant's identity slots in the shared remote
	// device: tenant-local page p starts at slot swapBase + p.
	swapBase uint64
	// borrowed maps a tenant-local page to its borrow record while the
	// page lives in a neighbour node's DRAM instead of swap (rack-only;
	// see borrow.go). Lookup-only — no iteration, so the map's order
	// never touches the event sequence.
	borrowed map[uint64]*borrowedPage

	// Cores is the tenant's contiguous slice of the node placement, one
	// entry per app thread; appCores is its distinct ascending core set
	// (the tenant's TLB shootdown targets).
	Cores    []topo.CoreID
	appCores []topo.CoreID

	// idealFIFO is the zero-cost CLOCK used in Ideal mode.
	idealFIFO []uint64

	// Inj is the tenant's own fault injector (nil unless Spec.FaultPlan
	// enables one); tenants without one read through the node injector.
	Inj *faultinject.Injector

	// Fault-path robustness state. Degraded parking is per-tenant: one
	// tenant riding out its own link outage must not park its co-tenants.
	FaultRetries  stats.Counter // fault-path attempts retried after NACK/timeout
	FaultTimeouts stats.Counter // fault-path attempts that burned a full AttemptTimeout
	FaultGiveUps  stats.Counter // rounds abandoned after MaxAttempts (→ degraded mode)
	RetryWait     *stats.Histogram
	Degraded      stats.Spans

	// Metrics (all in virtual time / simulated events).
	FaultLatency *stats.Histogram
	FaultBreak   *stats.Breakdown
	MajorFaults  stats.Counter
	MinorFaults  stats.Counter
	SyncEvicts   stats.Counter
	EvictedPages stats.Counter
	Prefetched   stats.Counter
	PrefetchDrop stats.Counter
	// BorrowFetches counts borrowed pages faulted home over the fabric
	// (rack-only; zero off-rack).
	BorrowFetches stats.Counter
	FreeWaitNs    int64
	AccessOps     uint64 // total completed accesses (host counter)
}

// Node returns the node this tenant runs on.
func (t *Tenant) Node() *Node { return t.node }

// key encodes a tenant-local page number as a node-wide accounting key.
func (t *Tenant) key(pg uint64) uint64 {
	return uint64(t.ID)<<tenantPageBits | pg
}

// injector returns the injector governing this tenant's remote reads:
// its own when it has one, otherwise the node-wide injector (which may
// be nil — fault-free).
func (t *Tenant) injector() *faultinject.Injector {
	if t.Inj != nil {
		return t.Inj
	}
	return t.node.FaultInj
}

// shootdownTargets returns the cores whose TLBs may cache this tenant's
// address space, excluding the initiator.
func (t *Tenant) shootdownTargets(from topo.CoreID) []topo.CoreID {
	out := make([]topo.CoreID, 0, len(t.appCores))
	for _, c := range t.appCores {
		if c != from {
			out = append(out, c)
		}
	}
	return out
}

// PrepopulateFront makes pages [0, n) resident contiguously (up to the
// free-page high watermark), leaving any shortfall at the END of the
// range. Use it when the workload's initial working set occupies the
// front of the address space and must start fully resident — the GUPS and
// Metis phase-change experiments, whose first phase is meant to run
// fault-free (§6.2).
func (t *Tenant) PrepopulateFront(n int) int {
	return t.prepopulate(n, false)
}

// Prepopulate makes pages [0, n) resident at zero simulated cost — the
// warm start the paper's experiments assume ("the local VM is configured
// to retain (100-x)% of the WSS"). Population stops at the free-page high
// watermark; the unpopulated gap is spread evenly over the range so no
// single thread's shard concentrates the cold-start faults. It returns
// the number of pages made resident and must be called before Run. The
// budget is node-wide: co-located tenants draw down the same pool.
func (t *Tenant) Prepopulate(n int) int {
	return t.prepopulate(n, true)
}

func (t *Tenant) prepopulate(n int, spread bool) int {
	nd := t.node
	limit := nd.PrepopBudget()
	if n > int(t.Spec.TotalPages) {
		n = int(t.Spec.TotalPages)
	}
	count := n
	if count > limit {
		count = limit
	}
	// Spread mode distributes the unpopulated gap evenly over the range
	// (Bresenham-style skip): concentrating it at the end would hand all
	// cold-start faults to the thread whose shard covers the tail and
	// skew every makespan measurement.
	skip := 0
	if spread {
		skip = n - count
	}
	acc := 0
	populated := 0
	for pg := 0; pg < n && populated < limit; pg++ {
		acc += skip
		if acc >= n {
			acc -= n
			continue
		}
		f, ok := nd.Alloc.AllocRaw()
		if !ok {
			break
		}
		t.AS.InstallRaw(uint64(pg), f)
		if nd.Cfg.Ideal {
			t.idealFIFO = append(t.idealFIFO, uint64(pg))
		} else {
			core := t.appCores[pg%len(t.appCores)]
			nd.Acct.InsertRaw(core, t.key(uint64(pg)))
		}
		if t.remoteOf != nil {
			if e := t.remoteOf[pg]; e != swapspace.NilEntry {
				nd.Swap.(*swapspace.GlobalSwapMap).FreeRaw(e)
				t.remoteOf[pg] = swapspace.NilEntry
			}
		}
		populated++
	}
	nd.prepopulated += populated
	return populated
}

// MarkZeroFill declares pages [start, end) to be anonymous memory with no
// initial remote content: their first faults allocate zeroed frames
// without an RDMA read (Metis's intermediate buffers, freshly mmapped
// heaps). Must be called before Prepopulate/Run. For swap-map systems the
// pages' pre-reserved slots are released.
func (t *Tenant) MarkZeroFill(start, end uint64) {
	t.AS.MarkZeroFill(start, end)
	if t.remoteOf != nil {
		gm := t.node.Swap.(*swapspace.GlobalSwapMap)
		for pg := start; pg < end && pg < t.Spec.TotalPages; pg++ {
			if e := t.remoteOf[pg]; e != swapspace.NilEntry {
				gm.FreeRaw(e)
				t.remoteOf[pg] = swapspace.NilEntry
			}
		}
	}
}

// Fault handles a major page fault for page on behalf of thread tid
// running on core. It returns when the access can be retried.
func (t *Tenant) Fault(p *sim.Proc, tid int, core topo.CoreID, page uint64) {
	nd := t.node
	if nd.Cfg.Ideal {
		t.idealFault(p, core, page)
		return
	}
	t0 := p.Now()

	entry := nd.Costs.FaultEntry
	if nd.Cfg.Stack == nic.StackKernel {
		entry += nd.Costs.KernelFaultPath
	}
	if nd.Cfg.Virtualized {
		entry += nd.Costs.VirtFaultOverhead
	}
	p.Sleep(entry)

	disp := t.AS.BeginFault(p, page)
	if disp == pgtable.FaultAlreadyPresent {
		t.MinorFaults.Inc()
		p.Sleep(nd.Costs.FaultExit)
		return
	}
	zeroFill := disp == pgtable.FaultFetchZero
	tBegin := p.Now()

	// FP₁: obtain a free local frame; this is where synchronous eviction
	// (Hermit/DiLOS) or free-page waiting (MAGE) happens.
	frame, tlbInFP := t.allocFrame(p, tid, core)
	tAlloc := p.Now()

	// Resolve the page's borrow state before touching the swap slot: a
	// borrowed page has no slot to free, and a page mid-reclaim must be
	// waited out so its slot exists by the time the release step looks.
	var bp *borrowedPage
	if !zeroFill {
		bp = t.claimBorrowed(p, page)
	}

	// Linux charges swap-cache insertion and cgroup accounting per fault.
	if nd.Cfg.LinuxMM {
		p.Sleep(nd.Costs.SwapCache + nd.Costs.Cgroup)
	}
	// Release the swap slot the page occupied (Linux frees the entry on
	// swap-in; direct mapping has nothing to free).
	if !zeroFill && t.remoteOf != nil {
		if e := t.remoteOf[page]; e != swapspace.NilEntry {
			nd.Swap.Free(p, e)
			t.remoteOf[page] = swapspace.NilEntry
		}
	}
	tSwap := p.Now()

	// FP₂: fetch the page — from the neighbour hosting it when borrowed,
	// otherwise from the swap device — or clear a fresh frame for
	// anonymous memory that has no remote content yet. Both fetch paths
	// retry through injected faults; without an injector remoteRead is
	// exactly NIC.Read.
	switch {
	case zeroFill:
		p.Sleep(nd.Costs.ZeroFill)
	case bp != nil:
		t.fetchBorrowed(p, bp)
	default:
		t.remoteRead(p, nic.PageSize)
	}
	tRead := p.Now()

	// Install the translation, then FP₃: record the page as resident.
	t.AS.CompleteFault(p, page, frame)
	if bp != nil && t.remoteOf == nil {
		// Direct mapping: the slot at the page's fixed remote address
		// went stale while the authoritative copy sat on the host, so
		// the page must leave dirty on its next eviction.
		t.AS.HardwareAccess(page, true)
	}
	tComplete := p.Now()
	nd.Acct.Insert(p, core, t.key(page))
	tAcct := p.Now()

	p.Sleep(nd.Costs.FaultExit)

	if nd.freeFrames() < nd.Cfg.lowWatermarkFrames() {
		nd.kickEvictors()
	}

	t.MajorFaults.Inc()
	t.FaultLatency.Record(int64(p.Now() - t0))
	if nd.Trace != nil {
		nd.Trace.Span("major-fault", "fp", t.ID, tid,
			int64(t0), int64(p.Now()), map[string]any{"page": page})
	}
	b := t.FaultBreak
	b.Add(CompRDMA, int64(tRead-tSwap))
	b.Add(CompTLB, int64(tlbInFP))
	b.Add(CompAcct, int64(tAcct-tComplete))
	b.Add(CompAlloc, int64(tAlloc-tBegin-tlbInFP)+int64(tSwap-tAlloc))
	b.Add(CompOthers, int64(tBegin-t0)+int64(tComplete-tRead)+int64(nd.Costs.FaultExit))
	b.AddOp()
}

// allocFrame obtains a free frame for the fault path, never giving up.
// It returns the frame and the virtual time spent inside TLB shootdowns
// (non-zero only when synchronous eviction ran).
func (t *Tenant) allocFrame(p *sim.Proc, tid int, core topo.CoreID) (buddy.Frame, sim.Time) {
	nd := t.node
	var tlbTime sim.Time
	for {
		if f, ok := nd.Alloc.Alloc(p, core); ok {
			return f, tlbTime
		}
		nd.kickEvictors()
		if nd.Cfg.SyncEviction {
			// The faulting thread runs an eviction batch inline (the
			// fallback MAGE forbids under P1). The batch draws victims from
			// the shared accounting, so it may evict a co-tenant's pages.
			t.SyncEvicts.Inc()
			res := nd.evictOnce(p, tid%maxInt(nd.Cfg.EvictorThreads, 1), core, nd.effectiveBatch(nd.Cfg.SyncBatch), true)
			tlbTime += res.tlbTime
			if res.evicted == 0 {
				// Nothing reclaimable this instant; let evictors run.
				p.Sleep(nd.Costs.EvictorWakeup)
			}
		} else {
			t0 := p.Now()
			nd.freeWait.Wait(p)
			t.FreeWaitNs += int64(p.Now() - t0)
		}
	}
}

// idealFault is the analytical baseline: only data movement, zero
// software cost, instantaneous eviction (§3.1). Ideal mode is
// single-tenant only.
func (t *Tenant) idealFault(p *sim.Proc, core topo.CoreID, page uint64) {
	nd := t.node
	t0 := p.Now()
	disp := t.AS.BeginFault(p, page)
	if disp == pgtable.FaultAlreadyPresent {
		t.MinorFaults.Inc()
		return
	}
	frame, ok := nd.Alloc.Alloc(p, core)
	for !ok {
		// Evict the oldest resident page at zero cost.
		if len(t.idealFIFO) == 0 {
			panic("core: ideal system out of frames with empty residency list")
		}
		victim := t.idealFIFO[0]
		t.idealFIFO = t.idealFIFO[1:]
		r := t.AS.TryUnmap(p, victim, false)
		if !r.OK {
			continue // victim mid-fault; skip
		}
		// Coherence is free in the ideal model: drop TLB entries directly.
		for _, c := range nd.Machine.Cores() {
			nd.Shooter.TLBOf(c.ID).FlushPage(victim)
		}
		t.AS.CompleteEvict(p, victim)
		nd.Alloc.Free(p, core, r.Frame)
		t.EvictedPages.Inc()
		frame, ok = nd.Alloc.Alloc(p, core)
	}
	if disp != pgtable.FaultFetchZero {
		nd.NIC.Read(p, nic.PageSize)
	}
	t.AS.CompleteFault(p, page, frame)
	t.idealFIFO = append(t.idealFIFO, page)
	t.MajorFaults.Inc()
	t.FaultLatency.Record(int64(p.Now() - t0))
}

// prefetchAsync issues background fetches for predicted pages. Prefetches
// never block on memory pressure: if no frame is immediately free the
// prediction is dropped.
func (t *Tenant) prefetchAsync(core topo.CoreID, pages []uint64) {
	nd := t.node
	for _, pg := range pages {
		pg := pg
		nd.Eng.Spawn(nd.procName("prefetch"), func(p *sim.Proc) {
			if t.AS.BeginFault(p, pg) == pgtable.FaultAlreadyPresent {
				return
			}
			if nd.rack != nil && t.borrowedEntry(pg) != nil {
				// Borrowed pages live on a neighbour, not in the swap
				// slot this prefetch would read; a bet is not worth a
				// fabric round trip.
				t.AS.AbortFault(p, pg)
				t.PrefetchDrop.Inc()
				return
			}
			f, ok := nd.Alloc.Alloc(p, core)
			if !ok {
				t.AS.AbortFault(p, pg)
				t.PrefetchDrop.Inc()
				nd.kickEvictors()
				return
			}
			if inj := t.injector(); inj != nil {
				// A prefetch is a bet, not an obligation: one attempt, and
				// on any injected failure the prediction is dropped before
				// its swap slot is touched.
				if _, res := nd.NIC.TryReadWith(p, nic.PageSize, nd.Cfg.Retry.AttemptTimeout, inj); res != nic.ReadOK {
					t.AS.AbortFault(p, pg)
					nd.Alloc.Free(p, core, f)
					t.PrefetchDrop.Inc()
					return
				}
				if t.remoteOf != nil {
					if e := t.remoteOf[pg]; e != swapspace.NilEntry {
						nd.Swap.Free(p, e)
						t.remoteOf[pg] = swapspace.NilEntry
					}
				}
				t.AS.CompleteFault(p, pg, f)
				nd.Acct.Insert(p, core, t.key(pg))
				t.Prefetched.Inc()
				if nd.freeFrames() < nd.Cfg.lowWatermarkFrames() {
					nd.kickEvictors()
				}
				return
			}
			if t.remoteOf != nil {
				if e := t.remoteOf[pg]; e != swapspace.NilEntry {
					nd.Swap.Free(p, e)
					t.remoteOf[pg] = swapspace.NilEntry
				}
			}
			nd.NIC.Read(p, nic.PageSize)
			t.AS.CompleteFault(p, pg, f)
			nd.Acct.Insert(p, core, t.key(pg))
			t.Prefetched.Inc()
			if nd.freeFrames() < nd.Cfg.lowWatermarkFrames() {
				nd.kickEvictors()
			}
		})
	}
}

// Thread drives one application thread's memory accesses against its
// tenant. Consecutive hits accumulate virtual time locally and are flushed
// in quanta, so simulating a hit costs no scheduler event.
type Thread struct {
	s       *Tenant
	p       *sim.Proc
	TID     int
	Core    topo.CoreID
	det     prefetch.Detector
	accum   sim.Time
	quantum sim.Time

	Accesses uint64
	Faults   uint64
}

// NewThread binds thread tid to its placed core.
func (t *Tenant) NewThread(p *sim.Proc, tid int) *Thread {
	nd := t.node
	var det prefetch.Detector = prefetch.None{}
	if nd.Cfg.Prefetch {
		switch nd.Cfg.PrefetchPolicy {
		case PrefetchMajority:
			det = prefetch.NewMajority(7, nd.Cfg.PrefetchDegree, t.Spec.TotalPages)
		default:
			det = prefetch.NewStride(3, nd.Cfg.PrefetchDegree, t.Spec.TotalPages)
		}
	}
	return &Thread{
		s:       t,
		p:       p,
		TID:     tid,
		Core:    t.Cores[tid%len(t.Cores)],
		det:     det,
		quantum: 4 * sim.Microsecond,
	}
}

// flushTime materializes accumulated compute time (dilated by the
// virtualization factor) plus any cycles stolen from this thread's core
// by interrupt handlers.
func (t *Thread) flushTime() {
	nd := t.s.node
	st := sim.Time(nd.Machine.Core(t.Core).DrainStolen())
	d := sim.Time(float64(t.accum)*nd.Costs.ComputeFactor) + st
	t.accum = 0
	if d > 0 {
		t.p.Sleep(d)
	}
}

// Flush forces pending virtual time out; call at end of stream.
func (t *Thread) Flush() { t.flushTime() }

// Access performs one page access costing compute ns of CPU work,
// faulting the page in if necessary.
func (t *Thread) Access(page uint64, write bool, compute sim.Time) {
	s := t.s
	nd := s.node
	t.accum += compute
	if t.accum >= t.quantum {
		t.flushTime()
	}
	for {
		tlb := nd.Shooter.TLBOf(t.Core)
		if tlb.Contains(page) {
			st := s.AS.PTEOf(page).State
			switch {
			case st == pgtable.StatePresent:
				tlb.Touch(page)
				// A TLB-hit access does not re-walk the page table, so
				// the PTE accessed bit is NOT refreshed — the property
				// real reclaim depends on to find victims among hot
				// pages (Linux clears A-bits without flushing the TLB
				// for exactly this reason). A first write still re-walks
				// to set the dirty bit.
				if write {
					s.AS.HardwareAccess(page, write)
				}
			case st == pgtable.StateEvicting && !write:
				// Stale entry inside the unmap→shootdown window: the frame
				// content is intact until writeback (which the eviction
				// path only issues after the flush completes), so the read
				// succeeds against the old frame.
				tlb.Touch(page)
			case st == pgtable.StateEvicting && write:
				// A write with a clear TLB dirty bit re-walks the (now
				// non-present) PTE and faults; conservatively treat every
				// write in the window this way.
				t.flushTime()
				s.Fault(t.p, t.TID, t.Core, page)
				t.Faults++
				continue
			default:
				// After CompleteEvict the shootdown has settled, so no
				// core may still cache the translation.
				panic(fmt.Sprintf("core: TLB coherence violated: tenant %d core %d caches page %d in state %v",
					s.ID, t.Core, page, st))
			}
			break
		}
		if s.AS.HardwareAccess(page, write) {
			// TLB miss, page walk succeeds: hardware fill.
			tlb.Touch(page)
			t.accum += nd.Costs.HWWalkFill
			break
		}
		// Major fault.
		t.flushTime()
		s.Fault(t.p, t.TID, t.Core, page)
		t.Faults++
		if proposals := t.det.OnFault(page); len(proposals) > 0 {
			s.prefetchAsync(t.Core, proposals)
		}
	}
	t.Accesses++
	s.AccessOps++
}
