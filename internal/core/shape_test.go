package core

import (
	"testing"

	"mage/internal/sim"
)

// runShape executes a 48-thread random workload at the given offload
// fraction and returns ops/s.
func runShape(t *testing.T, name string, offload float64, compute sim.Time) (float64, Metrics) {
	t.Helper()
	const (
		wss     = 24576
		threads = 48
		accs    = 1500
	)
	local := int(float64(wss) * (1 - offload))
	cfg, err := Preset(name, threads, wss, local)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, threads)
	for i := range streams {
		streams[i] = randStream(int64(1000+i), accs, wss, compute, 0.3)
	}
	res := s.Run(streams)
	return res.OpsPerSec(), res.Metrics
}

// TestScalabilityOrdering48Threads reproduces the paper's headline shape
// (Figs 1 and 9): at 48 threads with significant offloading, the ideal
// baseline leads, both MAGE variants beat DiLOS, and DiLOS beats Hermit.
func TestScalabilityOrdering48Threads(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is slow")
	}
	ops := map[string]float64{}
	for _, name := range []string{"ideal", "hermit", "dilos", "magelib", "magelnx"} {
		o, m := runShape(t, name, 0.5, 300)
		ops[name] = o
		t.Logf("%-8s %8.2f Mops/s  %v", name, o/1e6, m)
	}
	if !(ops["ideal"] >= ops["magelib"]) {
		t.Errorf("ideal (%.2fM) should lead MageLib (%.2fM)", ops["ideal"]/1e6, ops["magelib"]/1e6)
	}
	if !(ops["magelib"] > ops["dilos"]) {
		t.Errorf("MageLib (%.2fM) should beat DiLOS (%.2fM)", ops["magelib"]/1e6, ops["dilos"]/1e6)
	}
	if !(ops["magelnx"] > ops["dilos"]) {
		t.Errorf("MageLnx (%.2fM) should beat DiLOS (%.2fM)", ops["magelnx"]/1e6, ops["dilos"]/1e6)
	}
	if !(ops["dilos"] > ops["hermit"]) {
		t.Errorf("DiLOS (%.2fM) should beat Hermit (%.2fM)", ops["dilos"]/1e6, ops["hermit"]/1e6)
	}
}
