package core

// System is one assembled single-tenant far-memory system: a Node whose
// shared substrate (machine, NIC, allocators, accounting, evictors) is
// dedicated to exactly one Tenant (address space, metrics, fault path).
// The embedded pair promotes both layers' fields and methods, so code
// written against the pre-split fused System — every experiment, test,
// and the mage.go facade — keeps working unchanged and produces
// byte-identical output. Multi-tenant co-location uses NewNode directly.
type System struct {
	*Node
	*Tenant
}

// Breakdown component labels (Figs 6 and 16).
const (
	CompRDMA   = "rdma-read"
	CompTLB    = "tlb-flush"
	CompAcct   = "page-accounting"
	CompAlloc  = "mem-circulation"
	CompOthers = "others"
)

// NewSystem builds a single-tenant system from cfg on a fresh engine.
func NewSystem(cfg Config) (*System, error) {
	n, err := NewNode(cfg, nil)
	if err != nil {
		return nil, err
	}
	return &System{Node: n, Tenant: n.tenants[0]}, nil
}

// MustNewSystem is NewSystem that panics on configuration errors.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
