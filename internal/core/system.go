package core

import (
	"fmt"

	"mage/internal/apic"
	"mage/internal/buddy"
	"mage/internal/faultinject"
	"mage/internal/invariant"
	"mage/internal/lru"
	"mage/internal/nic"
	"mage/internal/palloc"
	"mage/internal/pgtable"
	"mage/internal/prefetch"
	"mage/internal/sim"
	"mage/internal/stats"
	"mage/internal/swapspace"
	"mage/internal/tlbsim"
	"mage/internal/topo"
	"mage/internal/trace"
)

// System is one assembled far-memory system: machine, NIC, page table,
// allocators, accounting, and the fault-in/eviction paths configured per
// Config.
type System struct {
	Cfg   Config
	Costs CostModel

	Eng       *sim.Engine
	Machine   *topo.Machine
	Fabric    *apic.Fabric
	Shooter   *tlbsim.Shooter
	NIC       *nic.NIC
	AS        *pgtable.AddressSpace
	Alloc     palloc.Source
	Swap      swapspace.Allocator
	Acct      lru.Accounting
	Placement topo.Placement

	// remoteOf maps a page to its swap entry while remote; only used with
	// SwapGlobalMap (direct mapping needs no table).
	remoteOf []swapspace.Entry

	freeWait  *sim.WaitQueue
	evictKick *sim.WaitQueue
	stopped   bool
	// inflight counts frames unmapped by eviction but not yet reclaimed
	// (sitting in the TSB/RSB pipeline stages); they are committed to
	// becoming free, so pressure checks must count them or the pipeline
	// over-evicts and the application refaults the overshoot.
	inflight int

	appCores []topo.CoreID

	// idealResidency is the zero-cost CLOCK used in Ideal mode.
	idealFIFO []uint64

	// Trace, when non-nil, records fault and eviction spans for export
	// as a Chrome trace (see internal/trace).
	Trace *trace.Recorder

	// Fault injection / robustness (nil and zero unless Cfg.FaultPlan
	// enables injection). FaultInj is shared with the NIC; the counters
	// observe the retry layer in internal/core/retry.go.
	FaultInj      *faultinject.Injector
	FaultRetries  stats.Counter // fault-path attempts retried after NACK/timeout
	FaultTimeouts stats.Counter // fault-path attempts that burned a full AttemptTimeout
	FaultGiveUps  stats.Counter // rounds abandoned after MaxAttempts (→ degraded mode)
	EvictRetries  stats.Counter // writeback posts repeated after a dropped write
	EvictTimeouts stats.Counter // writeback drops that were timeouts
	RetryWait     *stats.Histogram
	Degraded      stats.Spans

	// Metrics (all in virtual time / simulated events).
	FaultLatency *stats.Histogram
	FaultBreak   *stats.Breakdown
	MajorFaults  stats.Counter
	MinorFaults  stats.Counter
	SyncEvicts   stats.Counter
	EvictedPages stats.Counter
	Prefetched   stats.Counter
	PrefetchDrop stats.Counter
	FreeWaitNs   int64
	AccessOps    uint64 // total completed accesses (host counter)
}

// Breakdown component labels (Figs 6 and 16).
const (
	CompRDMA   = "rdma-read"
	CompTLB    = "tlb-flush"
	CompAcct   = "page-accounting"
	CompAlloc  = "mem-circulation"
	CompOthers = "others"
)

// NewSystem builds a system from cfg on a fresh engine.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	costs := DefaultCostModel(cfg)
	machine := topo.NewMachine(cfg.Sockets, cfg.CoresPerSocket)

	s := &System{
		Cfg:          cfg,
		Costs:        costs,
		Eng:          eng,
		Machine:      machine,
		Fabric:       apic.NewFabric(eng, machine, costs.APIC),
		NIC:          nic.New(eng, cfg.Stack, costs.NIC),
		freeWait:     sim.NewWaitQueue(eng, "free-wait"),
		evictKick:    sim.NewWaitQueue(eng, "evict-kick"),
		FaultLatency: stats.NewHistogram(),
		FaultBreak:   stats.NewBreakdown(),
		RetryWait:    stats.NewHistogram(),
	}
	if cfg.FaultPlan.Enabled() {
		inj, err := faultinject.New(*cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		s.FaultInj = inj
		s.NIC.SetFaultInjector(inj)
	}
	s.Shooter = tlbsim.NewShooter(s.Fabric, machine, costs.TLB, cfg.TLBEntries)
	s.AS = pgtable.New(eng, cfg.TotalPages, cfg.PTLock, cfg.PTShards, costs.PT)
	s.AS.Map(0, cfg.TotalPages, "wss")

	switch cfg.Allocator {
	case AllocGlobalLock:
		s.Alloc = palloc.NewGlobalLock(eng, cfg.LocalMemPages, costs.Alloc)
	case AllocPerCPUCache:
		s.Alloc = palloc.NewPerCPUCache(eng, machine, cfg.LocalMemPages, cfg.AllocBatch, costs.Alloc)
	case AllocMultiLayer:
		s.Alloc = palloc.NewMultiLayer(eng, machine, cfg.LocalMemPages, cfg.AllocBatch, costs.Alloc)
	default:
		return nil, fmt.Errorf("core: unknown allocator kind %v", cfg.Allocator)
	}

	switch cfg.Swap {
	case SwapGlobalMap:
		gm := swapspace.NewGlobalSwapMap(eng, int(cfg.TotalPages)+cfg.LocalMemPages, costs.Swap)
		// Every page starts swapped out at its identity slot, as if the
		// working set was pre-evicted with madvise_pageout (§3.2).
		gm.ReserveFirst(int(cfg.TotalPages))
		s.Swap = gm
		s.remoteOf = make([]swapspace.Entry, cfg.TotalPages)
		for i := range s.remoteOf {
			s.remoteOf[i] = swapspace.Entry(i)
		}
	case SwapDirectMap:
		s.Swap = swapspace.NewDirectMap(int(cfg.TotalPages))
	default:
		return nil, fmt.Errorf("core: unknown swap kind %v", cfg.Swap)
	}

	switch cfg.Accounting {
	case AcctGlobalLRU:
		s.Acct = lru.NewGlobal(eng, costs.LRU)
	case AcctPartitioned:
		s.Acct = lru.NewPartitioned(eng, cfg.EvictorThreads, costs.LRU)
	case AcctPerCPUFIFO:
		s.Acct = lru.NewPerCPUFIFO(eng, machine, cfg.EvictorThreads, costs.LRU)
	case AcctS3FIFO:
		s.Acct = lru.NewS3FIFO(eng, cfg.LocalMemPages/10+1, costs.LRU)
	case AcctTwoList:
		s.Acct = lru.NewTwoList(eng, costs.LRU)
	default:
		return nil, fmt.Errorf("core: unknown accounting kind %v", cfg.Accounting)
	}

	s.Placement = machine.Place(cfg.AppThreads, cfg.EvictorThreads)
	s.appCores = s.Placement.AppCoresOf()
	return s, nil
}

// MustNewSystem is NewSystem that panics on configuration errors.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// shootdownTargets returns the cores whose TLBs may cache this address
// space, excluding the initiator.
func (s *System) shootdownTargets(from topo.CoreID) []topo.CoreID {
	out := make([]topo.CoreID, 0, len(s.appCores))
	for _, c := range s.appCores {
		if c != from {
			out = append(out, c)
		}
	}
	return out
}

// freeFrames returns the free frames reachable by any core: watermark and
// eviction-pressure decisions must not count frames stranded in other
// cores' private caches.
func (s *System) freeFrames() int { return s.Alloc.SharedFree() }

// underPressure reports whether eviction should run.
func (s *System) underPressure() bool {
	return s.evictionDeficit() > 0
}

// evictionDeficit returns how many more frames eviction must free to
// reach the high watermark, accounting for frames already committed in
// the pipeline. Blocked faulting threads always add to the deficit:
// "free" frames may be stranded in other cores' caches, unreachable to
// the waiters, so their demand must be served by fresh evictions.
func (s *System) evictionDeficit() int {
	d := s.Cfg.highWatermarkFrames() - s.freeFrames() - s.inflight
	if d < 0 {
		d = 0
	}
	return d + s.freeWait.Len()
}

// kickEvictors wakes eviction threads.
func (s *System) kickEvictors() { s.evictKick.Broadcast() }

// checkAccounting asserts the cross-module frame-conservation invariants
// when built with -tags magecheck. Frames mid-transition (allocated but
// not yet installed, or unmapped but not yet freed) are neither free nor
// resident, so the conservation laws are inequalities except at quiescence.
func (s *System) checkAccounting() {
	invariant.Assert(s.inflight >= 0, "core: inflight count %d negative", s.inflight)
	resident := s.AS.Resident()
	invariant.Assert(resident <= s.Cfg.LocalMemPages,
		"core: %d resident pages exceed %d local frames", resident, s.Cfg.LocalMemPages)
	invariant.Assert(s.Alloc.FreeFrames()+resident <= s.Cfg.LocalMemPages,
		"core: free %d + resident %d exceed %d local frames",
		s.Alloc.FreeFrames(), resident, s.Cfg.LocalMemPages)
	if s.Acct != nil {
		invariant.Assert(s.Acct.Len() <= resident,
			"core: accounting tracks %d pages but only %d are resident", s.Acct.Len(), resident)
	}
}

// Stop shuts down background eviction threads once the workload is done.
func (s *System) Stop() {
	s.stopped = true
	s.evictKick.Broadcast()
}

// Stopped reports whether Stop has been called.
func (s *System) Stopped() bool { return s.stopped }

// PrepopulateFront makes pages [0, n) resident contiguously (up to the
// free-page high watermark), leaving any shortfall at the END of the
// range. Use it when the workload's initial working set occupies the
// front of the address space and must start fully resident — the GUPS and
// Metis phase-change experiments, whose first phase is meant to run
// fault-free (§6.2).
func (s *System) PrepopulateFront(n int) int {
	return s.prepopulate(n, false)
}

// Prepopulate makes pages [0, n) resident at zero simulated cost — the
// warm start the paper's experiments assume ("the local VM is configured
// to retain (100-x)% of the WSS"). Population stops at the free-page high
// watermark; the unpopulated gap is spread evenly over the range so no
// single thread's shard concentrates the cold-start faults. It returns
// the number of pages made resident and must be called before Run.
func (s *System) Prepopulate(n int) int {
	return s.prepopulate(n, true)
}

func (s *System) prepopulate(n int, spread bool) int {
	limit := s.Cfg.LocalMemPages - s.Cfg.highWatermarkFrames()
	if s.Cfg.Ideal {
		limit = s.Cfg.LocalMemPages
	}
	if n > int(s.Cfg.TotalPages) {
		n = int(s.Cfg.TotalPages)
	}
	count := n
	if count > limit {
		count = limit
	}
	// Spread mode distributes the unpopulated gap evenly over the range
	// (Bresenham-style skip): concentrating it at the end would hand all
	// cold-start faults to the thread whose shard covers the tail and
	// skew every makespan measurement.
	skip := 0
	if spread {
		skip = n - count
	}
	acc := 0
	populated := 0
	for pg := 0; pg < n && populated < limit; pg++ {
		acc += skip
		if acc >= n {
			acc -= n
			continue
		}
		f, ok := s.Alloc.AllocRaw()
		if !ok {
			break
		}
		s.AS.InstallRaw(uint64(pg), f)
		if s.Cfg.Ideal {
			s.idealFIFO = append(s.idealFIFO, uint64(pg))
		} else {
			core := s.appCores[pg%len(s.appCores)]
			s.Acct.InsertRaw(core, uint64(pg))
		}
		if s.remoteOf != nil {
			if e := s.remoteOf[pg]; e != swapspace.NilEntry {
				s.Swap.(*swapspace.GlobalSwapMap).FreeRaw(e)
				s.remoteOf[pg] = swapspace.NilEntry
			}
		}
		populated++
	}
	return populated
}

// MarkZeroFill declares pages [start, end) to be anonymous memory with no
// initial remote content: their first faults allocate zeroed frames
// without an RDMA read (Metis's intermediate buffers, freshly mmapped
// heaps). Must be called before Prepopulate/Run. For swap-map systems the
// pages' pre-reserved slots are released.
func (s *System) MarkZeroFill(start, end uint64) {
	s.AS.MarkZeroFill(start, end)
	if s.remoteOf != nil {
		gm := s.Swap.(*swapspace.GlobalSwapMap)
		for pg := start; pg < end && pg < s.Cfg.TotalPages; pg++ {
			if e := s.remoteOf[pg]; e != swapspace.NilEntry {
				gm.FreeRaw(e)
				s.remoteOf[pg] = swapspace.NilEntry
			}
		}
	}
}

// Fault handles a major page fault for page on behalf of thread tid
// running on core. It returns when the access can be retried.
func (s *System) Fault(p *sim.Proc, tid int, core topo.CoreID, page uint64) {
	if s.Cfg.Ideal {
		s.idealFault(p, core, page)
		return
	}
	t0 := p.Now()

	entry := s.Costs.FaultEntry
	if s.Cfg.Stack == nic.StackKernel {
		entry += s.Costs.KernelFaultPath
	}
	if s.Cfg.Virtualized {
		entry += s.Costs.VirtFaultOverhead
	}
	p.Sleep(entry)

	disp := s.AS.BeginFault(p, page)
	if disp == pgtable.FaultAlreadyPresent {
		s.MinorFaults.Inc()
		p.Sleep(s.Costs.FaultExit)
		return
	}
	zeroFill := disp == pgtable.FaultFetchZero
	tBegin := p.Now()

	// FP₁: obtain a free local frame; this is where synchronous eviction
	// (Hermit/DiLOS) or free-page waiting (MAGE) happens.
	frame, tlbInFP := s.allocFrame(p, tid, core)
	tAlloc := p.Now()

	// Linux charges swap-cache insertion and cgroup accounting per fault.
	if s.Cfg.LinuxMM {
		p.Sleep(s.Costs.SwapCache + s.Costs.Cgroup)
	}
	// Release the swap slot the page occupied (Linux frees the entry on
	// swap-in; direct mapping has nothing to free).
	if !zeroFill && s.remoteOf != nil {
		if e := s.remoteOf[page]; e != swapspace.NilEntry {
			s.Swap.Free(p, e)
			s.remoteOf[page] = swapspace.NilEntry
		}
	}
	tSwap := p.Now()

	// FP₂: fetch the page — or clear a fresh frame for anonymous memory
	// that has no remote content yet. remoteRead retries through injected
	// faults; without a FaultPlan it is exactly NIC.Read.
	if zeroFill {
		p.Sleep(s.Costs.ZeroFill)
	} else {
		s.remoteRead(p, nic.PageSize)
	}
	tRead := p.Now()

	// Install the translation, then FP₃: record the page as resident.
	s.AS.CompleteFault(p, page, frame)
	tComplete := p.Now()
	s.Acct.Insert(p, core, page)
	tAcct := p.Now()

	p.Sleep(s.Costs.FaultExit)

	if s.freeFrames() < s.Cfg.lowWatermarkFrames() {
		s.kickEvictors()
	}

	s.MajorFaults.Inc()
	s.FaultLatency.Record(int64(p.Now() - t0))
	if s.Trace != nil {
		s.Trace.Span("major-fault", "fp", trace.LaneApp, tid,
			int64(t0), int64(p.Now()), map[string]any{"page": page})
	}
	b := s.FaultBreak
	b.Add(CompRDMA, int64(tRead-tSwap))
	b.Add(CompTLB, int64(tlbInFP))
	b.Add(CompAcct, int64(tAcct-tComplete))
	b.Add(CompAlloc, int64(tAlloc-tBegin-tlbInFP)+int64(tSwap-tAlloc))
	b.Add(CompOthers, int64(tBegin-t0)+int64(tComplete-tRead)+int64(s.Costs.FaultExit))
	b.AddOp()
}

// allocFrame obtains a free frame for the fault path, never giving up.
// It returns the frame and the virtual time spent inside TLB shootdowns
// (non-zero only when synchronous eviction ran).
func (s *System) allocFrame(p *sim.Proc, tid int, core topo.CoreID) (buddy.Frame, sim.Time) {
	var tlbTime sim.Time
	for {
		if f, ok := s.Alloc.Alloc(p, core); ok {
			return f, tlbTime
		}
		s.kickEvictors()
		if s.Cfg.SyncEviction {
			// The faulting thread runs an eviction batch inline (the
			// fallback MAGE forbids under P1).
			s.SyncEvicts.Inc()
			res := s.evictOnce(p, tid%maxInt(s.Cfg.EvictorThreads, 1), core, s.effectiveBatch(s.Cfg.SyncBatch), true)
			tlbTime += res.tlbTime
			if res.evicted == 0 {
				// Nothing reclaimable this instant; let evictors run.
				p.Sleep(s.Costs.EvictorWakeup)
			}
		} else {
			t0 := p.Now()
			s.freeWait.Wait(p)
			s.FreeWaitNs += int64(p.Now() - t0)
		}
	}
}

// idealFault is the analytical baseline: only data movement, zero
// software cost, instantaneous eviction (§3.1).
func (s *System) idealFault(p *sim.Proc, core topo.CoreID, page uint64) {
	t0 := p.Now()
	disp := s.AS.BeginFault(p, page)
	if disp == pgtable.FaultAlreadyPresent {
		s.MinorFaults.Inc()
		return
	}
	frame, ok := s.Alloc.Alloc(p, core)
	for !ok {
		// Evict the oldest resident page at zero cost.
		if len(s.idealFIFO) == 0 {
			panic("core: ideal system out of frames with empty residency list")
		}
		victim := s.idealFIFO[0]
		s.idealFIFO = s.idealFIFO[1:]
		r := s.AS.TryUnmap(p, victim, false)
		if !r.OK {
			continue // victim mid-fault; skip
		}
		// Coherence is free in the ideal model: drop TLB entries directly.
		for _, c := range s.Machine.Cores() {
			s.Shooter.TLBOf(c.ID).FlushPage(victim)
		}
		s.AS.CompleteEvict(p, victim)
		s.Alloc.Free(p, core, r.Frame)
		s.EvictedPages.Inc()
		frame, ok = s.Alloc.Alloc(p, core)
	}
	if disp != pgtable.FaultFetchZero {
		s.NIC.Read(p, nic.PageSize)
	}
	s.AS.CompleteFault(p, page, frame)
	s.idealFIFO = append(s.idealFIFO, page)
	s.MajorFaults.Inc()
	s.FaultLatency.Record(int64(p.Now() - t0))
}

// prefetchAsync issues background fetches for predicted pages. Prefetches
// never block on memory pressure: if no frame is immediately free the
// prediction is dropped.
func (s *System) prefetchAsync(core topo.CoreID, pages []uint64) {
	for _, pg := range pages {
		pg := pg
		s.Eng.Spawn("prefetch", func(p *sim.Proc) {
			if s.AS.BeginFault(p, pg) == pgtable.FaultAlreadyPresent {
				return
			}
			f, ok := s.Alloc.Alloc(p, core)
			if !ok {
				s.AS.AbortFault(p, pg)
				s.PrefetchDrop.Inc()
				s.kickEvictors()
				return
			}
			if s.FaultInj != nil {
				// A prefetch is a bet, not an obligation: one attempt, and
				// on any injected failure the prediction is dropped before
				// its swap slot is touched.
				if _, res := s.NIC.TryRead(p, nic.PageSize, s.Cfg.Retry.AttemptTimeout); res != nic.ReadOK {
					s.AS.AbortFault(p, pg)
					s.Alloc.Free(p, core, f)
					s.PrefetchDrop.Inc()
					return
				}
				if s.remoteOf != nil {
					if e := s.remoteOf[pg]; e != swapspace.NilEntry {
						s.Swap.Free(p, e)
						s.remoteOf[pg] = swapspace.NilEntry
					}
				}
				s.AS.CompleteFault(p, pg, f)
				s.Acct.Insert(p, core, pg)
				s.Prefetched.Inc()
				if s.freeFrames() < s.Cfg.lowWatermarkFrames() {
					s.kickEvictors()
				}
				return
			}
			if s.remoteOf != nil {
				if e := s.remoteOf[pg]; e != swapspace.NilEntry {
					s.Swap.Free(p, e)
					s.remoteOf[pg] = swapspace.NilEntry
				}
			}
			s.NIC.Read(p, nic.PageSize)
			s.AS.CompleteFault(p, pg, f)
			s.Acct.Insert(p, core, pg)
			s.Prefetched.Inc()
			if s.freeFrames() < s.Cfg.lowWatermarkFrames() {
				s.kickEvictors()
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Thread drives one application thread's memory accesses against the
// system. Consecutive hits accumulate virtual time locally and are flushed
// in quanta, so simulating a hit costs no scheduler event.
type Thread struct {
	s       *System
	p       *sim.Proc
	TID     int
	Core    topo.CoreID
	det     prefetch.Detector
	accum   sim.Time
	quantum sim.Time

	Accesses uint64
	Faults   uint64
}

// NewThread binds thread tid to its placed core.
func (s *System) NewThread(p *sim.Proc, tid int) *Thread {
	var det prefetch.Detector = prefetch.None{}
	if s.Cfg.Prefetch {
		switch s.Cfg.PrefetchPolicy {
		case PrefetchMajority:
			det = prefetch.NewMajority(7, s.Cfg.PrefetchDegree, s.Cfg.TotalPages)
		default:
			det = prefetch.NewStride(3, s.Cfg.PrefetchDegree, s.Cfg.TotalPages)
		}
	}
	return &Thread{
		s:       s,
		p:       p,
		TID:     tid,
		Core:    s.Placement.App[tid%len(s.Placement.App)],
		det:     det,
		quantum: 4 * sim.Microsecond,
	}
}

// flushTime materializes accumulated compute time (dilated by the
// virtualization factor) plus any cycles stolen from this thread's core
// by interrupt handlers.
func (t *Thread) flushTime() {
	st := sim.Time(t.s.Machine.Core(t.Core).DrainStolen())
	d := sim.Time(float64(t.accum)*t.s.Costs.ComputeFactor) + st
	t.accum = 0
	if d > 0 {
		t.p.Sleep(d)
	}
}

// Flush forces pending virtual time out; call at end of stream.
func (t *Thread) Flush() { t.flushTime() }

// Access performs one page access costing compute ns of CPU work,
// faulting the page in if necessary.
func (t *Thread) Access(page uint64, write bool, compute sim.Time) {
	s := t.s
	t.accum += compute
	if t.accum >= t.quantum {
		t.flushTime()
	}
	for {
		tlb := s.Shooter.TLBOf(t.Core)
		if tlb.Contains(page) {
			st := s.AS.PTEOf(page).State
			switch {
			case st == pgtable.StatePresent:
				tlb.Touch(page)
				// A TLB-hit access does not re-walk the page table, so
				// the PTE accessed bit is NOT refreshed — the property
				// real reclaim depends on to find victims among hot
				// pages (Linux clears A-bits without flushing the TLB
				// for exactly this reason). A first write still re-walks
				// to set the dirty bit.
				if write {
					s.AS.HardwareAccess(page, write)
				}
			case st == pgtable.StateEvicting && !write:
				// Stale entry inside the unmap→shootdown window: the frame
				// content is intact until writeback (which the eviction
				// path only issues after the flush completes), so the read
				// succeeds against the old frame.
				tlb.Touch(page)
			case st == pgtable.StateEvicting && write:
				// A write with a clear TLB dirty bit re-walks the (now
				// non-present) PTE and faults; conservatively treat every
				// write in the window this way.
				t.flushTime()
				s.Fault(t.p, t.TID, t.Core, page)
				t.Faults++
				continue
			default:
				// After CompleteEvict the shootdown has settled, so no
				// core may still cache the translation.
				panic(fmt.Sprintf("core: TLB coherence violated: core %d caches page %d in state %v",
					t.Core, page, st))
			}
			break
		}
		if s.AS.HardwareAccess(page, write) {
			// TLB miss, page walk succeeds: hardware fill.
			tlb.Touch(page)
			t.accum += s.Costs.HWWalkFill
			break
		}
		// Major fault.
		t.flushTime()
		s.Fault(t.p, t.TID, t.Core, page)
		t.Faults++
		if proposals := t.det.OnFault(page); len(proposals) > 0 {
			s.prefetchAsync(t.Core, proposals)
		}
	}
	t.Accesses++
	s.AccessOps++
}
