package core

import (
	"reflect"
	"testing"

	"mage/internal/faultinject"
	"mage/internal/nic"
	"mage/internal/pgtable"
	"mage/internal/sim"
)

// rackNodeCfg is a small MageLib-shaped node for rack tests: pipelined
// eviction and the Linux swap map, so every evicted page needs a
// writeback — the path cross-node eviction is meant to shorten.
func rackNodeCfg(name string, threads int, total uint64, local int) Config {
	return Config{
		Name:             name,
		Sockets:          1,
		CoresPerSocket:   8,
		AppThreads:       threads,
		TotalPages:       total,
		LocalMemPages:    local,
		EvictorThreads:   2,
		Pipelined:        true,
		BatchSize:        32,
		TLBBatch:         32,
		Accounting:       AcctPartitioned,
		HonorAccessedBit: true,
		Allocator:        AllocMultiLayer,
		Swap:             SwapGlobalMap,
		PTLock:           pgtable.LockPerPTE,
		Stack:            nic.StackLibOS,
	}
}

// rackStream builds a deterministic pseudo-random access list over a
// page range (splitmix-style, no global RNG state).
func rackStream(pages uint64, count int, seed uint64) []Access {
	accs := make([]Access, 0, count)
	x := seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := 0; i < count; i++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		accs = append(accs, Access{Page: x % pages, Write: x&2 == 0, Compute: 200})
	}
	return accs
}

func streamsOf(lists ...[]Access) []AccessStream {
	out := make([]AccessStream, len(lists))
	for i, l := range lists {
		out[i] = &SliceStream{Accs: l}
	}
	return out
}

// pressuredPlusIdleRack is the canonical borrow scenario: node 0 churns a
// working set far beyond its local DRAM while node 1 sits on a mostly
// free pool.
func pressuredPlusIdleRack(t *testing.T, borrow bool, shards int) *Rack {
	t.Helper()
	r, err := NewRack(RackConfig{
		Nodes: []NodeSpec{
			{Cfg: rackNodeCfg("hot", 2, 2048, 256)},
			{Cfg: rackNodeCfg("idle", 1, 2048, 2048)},
		},
		Borrow:       borrow,
		EngineShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pressuredPlusIdleStreams() [][][]AccessStream {
	return [][][]AccessStream{
		{streamsOf(rackStream(2048, 3000, 1), rackStream(2048, 3000, 2))},
		{streamsOf(rackStream(64, 200, 3))},
	}
}

// TestRackBorrowReducesSwapWritebacks is the headline property: with a
// neighbour able to host victims, the pressured node's swap writebacks
// drop, and every lent page is accounted for (fetched home, reclaimed,
// or still hosted).
func TestRackBorrowReducesSwapWritebacks(t *testing.T) {
	run := func(borrow bool) ([][]RunResult, *Rack) {
		r := pressuredPlusIdleRack(t, borrow, 0)
		return r.Run(pressuredPlusIdleStreams(), RunOptions{}), r
	}
	off, _ := run(false)
	on, r := run(true)

	if off[0][0].Metrics.BorrowsOut != 0 {
		t.Fatalf("borrow disabled but BorrowsOut = %d", off[0][0].Metrics.BorrowsOut)
	}
	mOn, mOff := on[0][0].Metrics, off[0][0].Metrics
	if mOn.BorrowsOut == 0 {
		t.Fatal("borrow enabled under pressure next to an idle node, but no page was lent")
	}
	if mOn.RdmaWrites >= mOff.RdmaWrites {
		t.Fatalf("borrow did not reduce swap writebacks: %d writes with borrow, %d without",
			mOn.RdmaWrites, mOff.RdmaWrites)
	}
	hot, idle := r.Nodes[0], r.Nodes[1]
	if got, want := idle.BorrowsHosted.Value(), hot.BorrowsOut.Value(); got != want {
		t.Fatalf("host accepted %d pages but owner lent %d", got, want)
	}
	fetched := hot.Tenants()[0].BorrowFetches.Value()
	reclaimed := idle.BorrowReclaims.Value()
	live := uint64(idle.HostedPages())
	if hot.BorrowsOut.Value() != fetched+reclaimed+live {
		t.Fatalf("borrow ledger does not balance: out=%d fetched=%d reclaimed=%d live=%d",
			hot.BorrowsOut.Value(), fetched, reclaimed, live)
	}
}

// TestRackSeveredLinkFallsBackToSwap pins the outage policy: a severed
// link removes the neighbour from host selection, and eviction falls
// back to the ordinary swap writeback instead of stalling.
func TestRackSeveredLinkFallsBackToSwap(t *testing.T) {
	r, err := NewRack(RackConfig{
		Nodes: []NodeSpec{
			{Cfg: rackNodeCfg("hot", 2, 2048, 256)},
			{Cfg: rackNodeCfg("idle", 1, 2048, 2048)},
		},
		Borrow: true,
		LinkPlans: map[[2]int]*faultinject.Plan{
			{0, 1}: {Seed: 7, Outages: []faultinject.Window{{Start: 0, End: 1 << 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(pressuredPlusIdleStreams(), RunOptions{})
	m := res[0][0].Metrics
	if m.BorrowsOut != 0 {
		t.Fatalf("lent %d pages across a severed link", m.BorrowsOut)
	}
	if m.RdmaWrites == 0 {
		t.Fatal("no swap writebacks despite pressure and an unusable neighbour")
	}
	if m.MajorFaults == 0 || res[0][0].Makespan <= 0 {
		t.Fatalf("run did not complete under a severed link: %+v", m)
	}
}

// TestRackReclaimUnderHostPressure drives the host into pressure after
// it has accepted guests: the guests must go home (owner-paid swap
// writeback) before the host evicts its own pages.
func TestRackReclaimUnderHostPressure(t *testing.T) {
	r, err := NewRack(RackConfig{
		Nodes: []NodeSpec{
			{Cfg: rackNodeCfg("hot", 2, 2048, 256)},
			{Cfg: rackNodeCfg("latecomer", 1, 4096, 640)},
		},
		Borrow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The latecomer idles long enough for the hot node to lend it pages,
	// then floods its own working set to create pressure at the host.
	late := append([]Access{{Skip: true, Wait: func(p *sim.Proc) { p.Sleep(20 * sim.Millisecond) }}},
		rackStream(4096, 6000, 9)...)
	res := r.Run([][][]AccessStream{
		{streamsOf(rackStream(2048, 6000, 1), rackStream(2048, 6000, 2))},
		{streamsOf(late)},
	}, RunOptions{})

	host := r.Nodes[1]
	if r.Nodes[0].BorrowsOut.Value() == 0 {
		t.Fatal("scenario never lent a page; cannot exercise reclaim")
	}
	if host.BorrowReclaims.Value() == 0 {
		t.Fatalf("host under pressure (evicted %d own pages) never pushed its %d guests home",
			res[1][0].Metrics.EvictedPages, host.HostedPages())
	}
	fetched := r.Nodes[0].Tenants()[0].BorrowFetches.Value()
	if r.Nodes[0].BorrowsOut.Value() != fetched+host.BorrowReclaims.Value()+uint64(host.HostedPages()) {
		t.Fatalf("borrow ledger does not balance after reclaim: out=%d fetched=%d reclaimed=%d live=%d",
			r.Nodes[0].BorrowsOut.Value(), fetched, host.BorrowReclaims.Value(), host.HostedPages())
	}
}

// TestRackDeterministicAcrossShardCounts is the rack half of the
// shard-count equivalence contract: the full cross-node run — borrows,
// reclaims, fabric contention and all — must produce identical results
// on a single-queue engine and a sharded one, and be replayable.
func TestRackDeterministicAcrossShardCounts(t *testing.T) {
	run := func(shards int) [][]RunResult {
		r := pressuredPlusIdleRack(t, true, shards)
		return r.Run(pressuredPlusIdleStreams(), RunOptions{})
	}
	base := run(1)
	if base[0][0].Metrics.BorrowsOut == 0 {
		t.Fatal("determinism scenario exercises no borrows")
	}
	for _, shards := range []int{1, 2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, base) {
			t.Fatalf("rack run diverges at %d engine shards:\n got %+v\nwant %+v",
				shards, got[0][0].Metrics, base[0][0].Metrics)
		}
	}
}

// TestRackSingleNodeMatchesStandalone pins the degenerate case: a
// one-node rack (even with Borrow enabled — there is no one to borrow
// from) produces results identical to the same node built standalone.
func TestRackSingleNodeMatchesStandalone(t *testing.T) {
	mkStreams := func() [][]AccessStream {
		return [][]AccessStream{streamsOf(rackStream(2048, 2000, 5), rackStream(2048, 2000, 6))}
	}
	n, err := NewNode(rackNodeCfg("solo", 2, 2048, 256), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := n.RunTenants(mkStreams(), RunOptions{})

	r, err := NewRack(RackConfig{
		Nodes:  []NodeSpec{{Cfg: rackNodeCfg("solo", 2, 2048, 256)}},
		Borrow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Run([][][]AccessStream{mkStreams()}, RunOptions{})
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("one-node rack diverges from standalone node:\n got %+v\nwant %+v",
			got[0][0].Metrics, want[0].Metrics)
	}
}
