package core

import (
	"testing"

	"mage/internal/nic"
	"mage/internal/pgtable"
	"mage/internal/sim"
	"mage/internal/swapspace"
)

func TestPrepopulateStopsAtHighWatermark(t *testing.T) {
	cfg := MageLib(4, 4096, 2048)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	s := MustNewSystem(cfg)
	n := s.Prepopulate(4096)
	if n <= 0 {
		t.Fatal("nothing populated")
	}
	wantMax := cfg.LocalMemPages - s.Cfg.highWatermarkFrames()
	if n > wantMax {
		t.Errorf("populated %d, want <= %d (high watermark headroom)", n, wantMax)
	}
	if s.AS.Resident() != n {
		t.Errorf("Resident = %d after Prepopulate(%d)", s.AS.Resident(), n)
	}
	if s.Alloc.FreeFrames() != cfg.LocalMemPages-n {
		t.Errorf("free frames = %d, want %d", s.Alloc.FreeFrames(), cfg.LocalMemPages-n)
	}
}

func TestPrepopulateClampsToWSS(t *testing.T) {
	cfg := MageLib(4, 100, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	if n := s.Prepopulate(10_000); n != 100 {
		t.Errorf("populated %d, want the whole 100-page WSS", n)
	}
}

func TestPrepopulateFreesHermitSwapSlots(t *testing.T) {
	cfg := Hermit(2, 512, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	gm := s.Swap.(*swapspace.GlobalSwapMap)
	before := gm.FreeSlots()
	n := s.Prepopulate(512)
	if gm.FreeSlots() != before+n {
		t.Errorf("swap slots: %d -> %d after populating %d pages",
			before, gm.FreeSlots(), n)
	}
}

func TestPrepopulateFrontIsContiguous(t *testing.T) {
	cfg := MageLib(2, 1000, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	n := s.PrepopulateFront(800)
	if n != 800 {
		t.Fatalf("populated %d, want 800", n)
	}
	for pg := uint64(0); pg < 800; pg++ {
		if s.AS.PTEOf(pg).State != pgtable.StatePresent {
			t.Fatalf("page %d not resident after front population", pg)
		}
	}
	if s.AS.PTEOf(900).State == pgtable.StatePresent {
		t.Error("page beyond the front range is resident")
	}
}

func TestPrepopulateSpreadLeavesUniformGap(t *testing.T) {
	cfg := MageLib(2, 1000, 700)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	n := s.Prepopulate(1000)
	if n >= 1000 || n <= 0 {
		t.Fatalf("populated %d; the 700-frame quota must leave a gap", n)
	}
	// The gap must not be concentrated: both halves of the address space
	// contain absent pages.
	absent := func(lo, hi uint64) int {
		c := 0
		for pg := lo; pg < hi; pg++ {
			if s.AS.PTEOf(pg).State != pgtable.StatePresent {
				c++
			}
		}
		return c
	}
	first, second := absent(0, 500), absent(500, 1000)
	if first == 0 || second == 0 {
		t.Errorf("gap concentrated: %d absent in first half, %d in second", first, second)
	}
	ratio := float64(first) / float64(second)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("gap unbalanced: %d vs %d", first, second)
	}
}

func TestComputeFactorDilatesVirtualizedRuns(t *testing.T) {
	run := func(virt bool) sim.Time {
		cfg := DiLOS(2, 512, 4096)
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		cfg.Virtualized = virt
		s := MustNewSystem(cfg)
		s.Prepopulate(512) // fully resident: pure compute
		streams := []AccessStream{
			seqStream(0, 512, 1000),
			seqStream(0, 512, 1000),
		}
		return s.Run(streams).Makespan
	}
	bare, virt := run(false), run(true)
	if virt <= bare {
		t.Errorf("virtualized makespan %v <= bare metal %v", virt, bare)
	}
	// OSv-class overhead is ~6.5%.
	if f := float64(virt) / float64(bare); f < 1.03 || f > 1.12 {
		t.Errorf("dilation factor %.3f outside [1.03, 1.12]", f)
	}
}

func TestEffectiveBatchBounds(t *testing.T) {
	cfg := MageLib(4, 1<<16, 1<<15)
	s := MustNewSystem(cfg)
	if got := s.effectiveBatch(256); got != 256 {
		t.Errorf("large memory: batch = %d, want 256 unclamped", got)
	}
	small := MageLib(4, 4096, 512)
	small.Sockets = 1
	small.CoresPerSocket = 8
	ss := MustNewSystem(small)
	if got := ss.effectiveBatch(256); got > 512/(8*small.EvictorThreads) {
		t.Errorf("small memory: batch = %d not clamped", got)
	}
	if got := ss.effectiveBatch(1); got != 1 {
		t.Errorf("tiny configured batch changed: %d", got)
	}
}

func TestEvictionDeficitCountsWaitersAndInflight(t *testing.T) {
	cfg := MageLib(2, 4096, 2048)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	base := s.evictionDeficit()
	s.inflight = 10
	want := base - 10
	if want < 0 {
		want = 0
	}
	if got := s.evictionDeficit(); got != want {
		t.Errorf("inflight not subtracted: %d vs %d", got, want)
	}
	// Deficit is floored at zero before adding waiters.
	s.inflight = 1 << 20
	if got := s.evictionDeficit(); got != 0 {
		t.Errorf("deficit with huge inflight = %d, want 0", got)
	}
	s.inflight = 0
	// A blocked faulting thread raises the deficit by one.
	s.Eng.Spawn("waiter", func(p *sim.Proc) { s.freeWait.Wait(p) })
	s.Eng.Spawn("checker", func(p *sim.Proc) {
		p.Sleep(10)
		if got := s.evictionDeficit(); got != base+1 {
			t.Errorf("waiter not counted: %d vs %d", got, base+1)
		}
		s.freeWait.Broadcast()
	})
	s.Eng.Run()
}

func TestS3FIFOSystemRuns(t *testing.T) {
	cfg := MageLib(4, 4096, 2048)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.Accounting = AcctS3FIFO
	cfg.EvictorThreads = 2
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i+5), 2000, cfg.TotalPages, 150, 0.3)
	}
	res := s.Run(streams)
	if res.TotalFaults() == 0 || res.Metrics.EvictedPages == 0 {
		t.Error("S3FIFO system did not exercise the paging paths")
	}
	if got := s.Alloc.FreeFrames() + s.AS.Resident(); got != cfg.LocalMemPages {
		t.Errorf("frame conservation broken with S3FIFO: %d", got)
	}
}

func TestBackendsRunEndToEnd(t *testing.T) {
	for _, be := range []nic.Backend{nic.BackendNVMe, nic.BackendZswap} {
		cfg := MageLib(2, 2048, 1024)
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		cfg.Backend = be
		cfg.EvictorThreads = 2
		s := MustNewSystem(cfg)
		streams := []AccessStream{
			seqStream(0, 2048, 500),
			seqStream(0, 2048, 500),
		}
		res := s.Run(streams)
		if res.TotalFaults() == 0 {
			t.Errorf("%v: no faults", be)
		}
		// NVMe's 18µs latency must show in fault latency.
		if be == nic.BackendNVMe && res.Metrics.FaultMeanNs < 18000 {
			t.Errorf("NVMe mean fault %v ns < device latency", res.Metrics.FaultMeanNs)
		}
	}
}

func TestInflightReturnsToZeroAfterRun(t *testing.T) {
	cfg := MageLib(4, 4096, 1024)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i), 2000, cfg.TotalPages, 100, 0.4)
	}
	s.Run(streams)
	if s.inflight != 0 {
		t.Errorf("inflight = %d after drain, want 0", s.inflight)
	}
}

func TestRunWithDeadlineStopsEarly(t *testing.T) {
	cfg := MageLib(2, 4096, 2048)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	s := MustNewSystem(cfg)
	// Endless stream; only the deadline ends the run.
	endless := func() AccessStream {
		pg := uint64(0)
		return FuncStream(func() (Access, bool) {
			pg = (pg + 1) % 4096
			return Access{Page: pg, Compute: 200}, true
		})
	}
	res := s.RunWithOptions([]AccessStream{endless(), endless()},
		RunOptions{Deadline: 2 * sim.Millisecond})
	if !s.Stopped() {
		t.Error("system not stopped after deadline")
	}
	if res.Metrics.MajorFaults == 0 {
		t.Error("no progress before deadline")
	}
}

func TestMinorFaultCounting(t *testing.T) {
	cfg := DiLOS(8, 512, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 8)
	for i := range streams {
		streams[i] = seqStream(0, 512, 0) // identical: heavy dedup
	}
	res := s.Run(streams)
	if res.Metrics.MinorFaults == 0 {
		t.Error("identical streams should produce minor faults (dedup hits)")
	}
	if res.Metrics.MajorFaults > 512 {
		t.Errorf("major faults %d > distinct pages (no eviction configured)",
			res.Metrics.MajorFaults)
	}
}
