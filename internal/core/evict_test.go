package core

import (
	"testing"

	"mage/internal/sim"
	"mage/internal/topo"
)

// evictFixture builds a MageLib-flavoured system with pages faulted in by
// a setup proc so the eviction paths can be driven directly.
func evictFixture(t *testing.T, cfg Config, resident int) *System {
	t.Helper()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	s := MustNewSystem(cfg)
	if got := s.Prepopulate(resident); got < resident {
		t.Fatalf("prepopulated %d of %d", got, resident)
	}
	return s
}

func TestScanAndUnmapRespectsDeficit(t *testing.T) {
	cfg := MageLib(2, 4096, 2048)
	s := evictFixture(t, cfg, 1024)
	s.Eng.Spawn("e", func(p *sim.Proc) {
		// Plenty of free frames: deficit 0 -> no eviction work.
		if eb := s.scanAndUnmap(p, 0, 7, 64, false); eb != nil {
			t.Errorf("scanAndUnmap evicted %d pages with zero deficit", len(eb.victims))
		}
		// force bypasses the clamp.
		eb := s.scanAndUnmap(p, 0, 7, 16, true)
		if eb == nil || len(eb.victims) == 0 {
			t.Fatal("forced scan returned nothing")
		}
		if s.inflight != len(eb.victims) {
			t.Errorf("inflight = %d, victims = %d", s.inflight, len(eb.victims))
		}
		s.reclaim(p, 7, eb)
		if s.inflight != 0 {
			t.Errorf("inflight = %d after reclaim", s.inflight)
		}
	})
	s.Eng.Run()
}

func TestScanBudgetSurvivesSecondChances(t *testing.T) {
	cfg := MageLib(2, 4096, 2048)
	cfg.HonorAccessedBit = true
	s := evictFixture(t, cfg, 512)
	// Set every page's accessed bit (prepopulate already does); first
	// forced scan must still find victims by scanning past rejections —
	// prepopulated pages have A set, so one pass clears and the budget
	// (4x batch) lets the scan reach cleared pages only on deep scans.
	s.Eng.Spawn("e", func(p *sim.Proc) {
		first := s.scanAndUnmap(p, 0, 7, 8, true)
		if first != nil {
			s.reclaim(p, 7, first)
		}
		// After enough scans, eviction must make progress.
		total := 0
		for i := 0; i < 100 && total < 8; i++ {
			if eb := s.scanAndUnmap(p, 0, 7, 8, true); eb != nil {
				total += len(eb.victims)
				s.reclaim(p, 7, eb)
			}
		}
		if total < 8 {
			t.Errorf("eviction starved: only %d pages in 100 scans", total)
		}
	})
	s.Eng.Run()
}

func TestShootdownChunkingHonorsTLBBatch(t *testing.T) {
	cfg := MageLib(2, 4096, 2048)
	cfg.TLBBatch = 8
	s := evictFixture(t, cfg, 512)
	s.Eng.Spawn("e", func(p *sim.Proc) {
		eb := s.scanAndUnmap(p, 0, 7, 32, true)
		if eb == nil || len(eb.victims) < 9 {
			t.Skipf("too few victims: %v", eb)
		}
		comps := s.postShootdowns(p, 7, eb)
		wantChunks := (len(eb.victims) + 7) / 8
		if len(comps) != wantChunks {
			t.Errorf("%d victims -> %d shootdowns, want %d",
				len(eb.victims), len(comps), wantChunks)
		}
		for _, c := range comps {
			c.Wait(p)
		}
		s.reclaim(p, 7, eb)
	})
	s.Eng.Run()
}

func TestWritebackOnlyDirtyWithDirectMap(t *testing.T) {
	cfg := MageLib(1, 512, 4096)
	s := evictFixture(t, cfg, 0)
	s.Eng.Spawn("setup", func(p *sim.Proc) {
		th := s.NewThread(p, 0)
		// Fault in 64 pages; dirty the even ones.
		for pg := uint64(0); pg < 64; pg++ {
			th.Access(pg, pg%2 == 0, 10)
		}
		th.Flush()
		eb := s.scanAndUnmap(p, 0, 7, 64, true)
		if eb == nil {
			t.Fatal("no victims")
		}
		dirty := 0
		for _, v := range eb.victims {
			if v.dirty {
				dirty++
			}
		}
		writesBefore := s.NIC.BytesWritten.Value()
		if c := s.postWriteback(p, eb); c != nil {
			c.Wait(p)
		}
		written := s.NIC.BytesWritten.Value() - writesBefore
		if got := int(written) / 4096; got != dirty {
			t.Errorf("wrote %d pages, want %d dirty ones", got, dirty)
		}
		s.reclaim(p, 7, eb)
	})
	s.Eng.Run()
}

func TestWritebackEverythingWithGlobalSwapMap(t *testing.T) {
	cfg := Hermit(1, 512, 4096)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	s := MustNewSystem(cfg)
	s.Eng.Spawn("setup", func(p *sim.Proc) {
		th := s.NewThread(p, 0)
		for pg := uint64(0); pg < 32; pg++ {
			th.Access(pg, false, 10) // clean reads only
		}
		th.Flush()
		eb := s.scanAndUnmap(p, 0, 7, 32, true)
		if eb == nil {
			t.Fatal("no victims")
		}
		before := s.NIC.BytesWritten.Value()
		if c := s.postWriteback(p, eb); c == nil {
			t.Fatal("swap-map eviction must write back even clean pages " +
				"(their freshly allocated slots hold no valid copy)")
		} else {
			c.Wait(p)
		}
		if got := int(s.NIC.BytesWritten.Value()-before) / 4096; got != len(eb.victims) {
			t.Errorf("wrote %d pages, want all %d", got, len(eb.victims))
		}
		s.reclaim(p, 7, eb)
	})
	s.Eng.Run()
}

func TestEvictOnceEndToEnd(t *testing.T) {
	cfg := DiLOS(2, 4096, 2048)
	s := evictFixture(t, cfg, 1024)
	s.Eng.Spawn("e", func(p *sim.Proc) {
		// Freshly populated pages carry set accessed bits; the first
		// rounds clear them (second chance) and later rounds evict.
		evicted := 0
		for i := 0; i < 50 && evicted == 0; i++ {
			evicted += s.evictOnce(p, 0, topo.CoreID(7), 32, true).evicted
		}
		if evicted == 0 {
			t.Fatal("evictOnce made no progress in 50 forced rounds")
		}
		if s.AS.Resident() != 1024-evicted {
			t.Errorf("resident = %d, want %d", s.AS.Resident(), 1024-evicted)
		}
		if s.Alloc.FreeFrames() != 2048-1024+evicted {
			t.Errorf("free = %d", s.Alloc.FreeFrames())
		}
	})
	s.Eng.Run()
}

func TestPipelinedEvictorDrainsOnStop(t *testing.T) {
	cfg := MageLib(4, 4096, 1024)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = seqStream(uint64(i)*1024, 1024, 100)
	}
	s.Run(streams)
	// After Run returns every batch has been reclaimed: nothing in
	// flight, no page left in a transient PTE state (checked elsewhere),
	// frames conserved.
	if s.inflight != 0 {
		t.Errorf("inflight = %d after drain", s.inflight)
	}
	if got := s.Alloc.FreeFrames() + s.AS.Resident(); got != cfg.LocalMemPages {
		t.Errorf("frames: %d, want %d", got, cfg.LocalMemPages)
	}
}
