package core

import (
	"math/rand"
	"testing"

	"mage/internal/pgtable"
	"mage/internal/sim"
)

// randStream returns a stream of n uniform random accesses over pages
// [0, wss) with the given per-access compute cost.
func randStream(seed int64, n int, wss uint64, compute sim.Time, writeFrac float64) AccessStream {
	rng := rand.New(rand.NewSource(seed))
	i := 0
	return FuncStream(func() (Access, bool) {
		if i >= n {
			return Access{}, false
		}
		i++
		return Access{
			Page:    uint64(rng.Int63n(int64(wss))),
			Write:   rng.Float64() < writeFrac,
			Compute: compute,
		}, true
	})
}

// seqStream returns a stream touching pages start..start+n-1 in order.
func seqStream(start uint64, n int, compute sim.Time) AccessStream {
	i := 0
	return FuncStream(func() (Access, bool) {
		if i >= n {
			return Access{}, false
		}
		pg := start + uint64(i)
		i++
		return Access{Page: pg, Compute: compute}, true
	})
}

func smallPreset(t *testing.T, name string, threads int) Config {
	t.Helper()
	cfg, err := Preset(name, threads, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	return cfg
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range Presets(48, 1<<16, 1<<15) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPresetUnknownName(t *testing.T) {
	if _, err := Preset("windows", 1, 10, 5); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{AppThreads: 0, TotalPages: 10, LocalMemPages: 5},
		{AppThreads: 1, TotalPages: 0, LocalMemPages: 5},
		{AppThreads: 1, TotalPages: 10, LocalMemPages: 0},
		{AppThreads: 1, TotalPages: 10, LocalMemPages: 5, FreeLowWater: 0.5, FreeHighWater: 0.2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
}

func TestWatermarkOrdering(t *testing.T) {
	cfg := MageLib(4, 1<<16, 1<<14)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.lowWatermarkFrames() >= cfg.highWatermarkFrames() {
		t.Errorf("low %d >= high %d", cfg.lowWatermarkFrames(), cfg.highWatermarkFrames())
	}
}

func TestAllSystemsCompleteRandomWorkload(t *testing.T) {
	for _, name := range []string{"ideal", "hermit", "dilos", "magelib", "magelnx"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smallPreset(t, name, 4)
			s := MustNewSystem(cfg)
			streams := make([]AccessStream, cfg.AppThreads)
			for i := range streams {
				streams[i] = randStream(int64(i+1), 2000, cfg.TotalPages, 200, 0.3)
			}
			res := s.Run(streams)
			if got := res.TotalAccesses(); got != 8000 {
				t.Errorf("accesses = %d, want 8000", got)
			}
			if res.TotalFaults() == 0 {
				t.Error("expected faults with 50% local memory")
			}
			if res.Makespan <= 0 {
				t.Errorf("makespan = %v", res.Makespan)
			}
			// Frame conservation after drain: every frame is either free
			// or backs a resident page.
			if got := s.Alloc.FreeFrames() + s.AS.Resident(); got != cfg.LocalMemPages {
				t.Errorf("frames: free(%d) + resident(%d) = %d, want %d",
					s.Alloc.FreeFrames(), s.AS.Resident(), got, cfg.LocalMemPages)
			}
			if s.AS.Resident() > cfg.LocalMemPages {
				t.Errorf("resident %d exceeds quota %d", s.AS.Resident(), cfg.LocalMemPages)
			}
		})
	}
}

func TestEvictionTriggersUnderPressure(t *testing.T) {
	cfg := smallPreset(t, "magelib", 2)
	s := MustNewSystem(cfg)
	streams := []AccessStream{
		seqStream(0, 4000, 200), // touches every page: must evict
		seqStream(0, 4000, 200),
	}
	res := s.Run(streams)
	if res.Metrics.EvictedPages == 0 {
		t.Error("no evictions despite working set exceeding local memory")
	}
	if res.Metrics.SyncEvicts != 0 {
		t.Errorf("MAGE performed %d synchronous evictions (P1 violated)", res.Metrics.SyncEvicts)
	}
}

func TestMageNeverSyncEvicts(t *testing.T) {
	for _, name := range []string{"magelib", "magelnx"} {
		cfg := smallPreset(t, name, 4)
		s := MustNewSystem(cfg)
		streams := make([]AccessStream, 4)
		for i := range streams {
			streams[i] = randStream(int64(i+7), 3000, cfg.TotalPages, 100, 0.5)
		}
		res := s.Run(streams)
		if res.Metrics.SyncEvicts != 0 {
			t.Errorf("%s: %d sync evictions", name, res.Metrics.SyncEvicts)
		}
	}
}

func TestHermitSyncEvictsUnderPressure(t *testing.T) {
	cfg := smallPreset(t, "hermit", 6)
	// Starve the eviction path: tiny local memory, no compute between
	// accesses.
	cfg.LocalMemPages = 700
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 6)
	for i := range streams {
		streams[i] = randStream(int64(i+3), 2500, cfg.TotalPages, 0, 0.5)
	}
	res := s.Run(streams)
	if res.Metrics.SyncEvicts == 0 {
		t.Error("Hermit should fall back to synchronous eviction under pressure")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		cfg := smallPreset(t, "magelib", 4)
		s := MustNewSystem(cfg)
		streams := make([]AccessStream, 4)
		for i := range streams {
			streams[i] = randStream(int64(i+11), 2000, cfg.TotalPages, 150, 0.4)
		}
		res := s.Run(streams)
		return res.Makespan, res.TotalFaults(), res.Metrics.EvictedPages
	}
	m1, f1, e1 := run()
	m2, f2, e2 := run()
	if m1 != m2 || f1 != f2 || e1 != e2 {
		t.Errorf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", m1, f1, e1, m2, f2, e2)
	}
}

func TestIdealFaultCostIsPureDataMovement(t *testing.T) {
	cfg := smallPreset(t, "ideal", 1)
	s := MustNewSystem(cfg)
	res := s.Run([]AccessStream{seqStream(0, 1000, 0)})
	// One uncontended fault per page, each exactly 3.9 µs.
	if res.TotalFaults() != 1000 {
		t.Fatalf("faults = %d, want 1000", res.TotalFaults())
	}
	if res.Metrics.FaultP99Ns != 3900 || res.Metrics.FaultMaxNs != 3900 {
		t.Errorf("ideal fault p99=%d max=%d, want 3900",
			res.Metrics.FaultP99Ns, res.Metrics.FaultMaxNs)
	}
	if res.Makespan != 1000*3900 {
		t.Errorf("makespan = %v, want 3.9ms", res.Makespan)
	}
}

func TestIdealEvictsForFree(t *testing.T) {
	cfg := smallPreset(t, "ideal", 1)
	cfg.LocalMemPages = 256
	s := MustNewSystem(cfg)
	res := s.Run([]AccessStream{seqStream(0, 4096, 0)})
	if res.Metrics.EvictedPages == 0 {
		t.Fatal("ideal system never evicted")
	}
	// Eviction costs nothing: makespan is still faults × 3.9 µs.
	if res.Makespan != sim.Time(res.TotalFaults())*3900 {
		t.Errorf("makespan %v != faults × 3.9µs (%v)",
			res.Makespan, sim.Time(res.TotalFaults())*3900)
	}
}

func TestConcurrentFaultsOnSamePageDeduplicate(t *testing.T) {
	cfg := smallPreset(t, "dilos", 8)
	s := MustNewSystem(cfg)
	// All threads touch the same small page set simultaneously.
	streams := make([]AccessStream, 8)
	for i := range streams {
		streams[i] = seqStream(0, 500, 0)
	}
	res := s.Run(streams)
	if res.Metrics.DedupWaits == 0 {
		t.Error("expected fault deduplication with identical streams")
	}
	// Every page is fetched at most once per residency period.
	if res.Metrics.MajorFaults > 500+res.Metrics.EvictedPages {
		t.Errorf("faults %d exceed first-touches + re-fetches (%d)",
			res.Metrics.MajorFaults, 500+res.Metrics.EvictedPages)
	}
}

func TestPrefetchCutsFaultsOnSequentialScan(t *testing.T) {
	run := func(pf bool) uint64 {
		cfg := smallPreset(t, "magelib", 2)
		cfg.Prefetch = pf
		cfg.PrefetchDegree = 16
		s := MustNewSystem(cfg)
		streams := []AccessStream{
			seqStream(0, 4000, 300),
			seqStream(0, 4000, 300),
		}
		res := s.Run(streams)
		return res.TotalFaults()
	}
	without, with := run(false), run(true)
	if with >= without {
		t.Errorf("prefetch did not help: %d faults with vs %d without", with, without)
	}
	if float64(with) > 0.75*float64(without) {
		t.Errorf("prefetch only cut faults from %d to %d; want >25%% reduction", without, with)
	}
}

func TestResidencyRespectsQuotaDuringRun(t *testing.T) {
	cfg := smallPreset(t, "magelnx", 4)
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i), 1500, cfg.TotalPages, 100, 0.2)
	}
	// Watchdog samples residency during the run.
	s.Eng.Spawn("watchdog", func(p *sim.Proc) {
		for !s.Stopped() {
			if s.AS.Resident() > cfg.LocalMemPages {
				t.Errorf("resident %d > quota %d at %v",
					s.AS.Resident(), cfg.LocalMemPages, p.Now())
				return
			}
			p.Sleep(20 * sim.Microsecond)
		}
	})
	s.Run(streams)
}

func TestFaultBreakdownComponentsPresent(t *testing.T) {
	cfg := smallPreset(t, "hermit", 4)
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i+21), 2000, cfg.TotalPages, 100, 0.5)
	}
	res := s.Run(streams)
	for _, comp := range []string{CompRDMA, CompAcct, CompAlloc, CompOthers} {
		if res.Metrics.BreakdownNs[comp] <= 0 {
			t.Errorf("breakdown component %q = %v", comp, res.Metrics.BreakdownNs[comp])
		}
	}
	// RDMA must dominate at low thread count (paper, Fig 6 caption).
	if res.Metrics.BreakdownNs[CompRDMA] < 3000 {
		t.Errorf("rdma component %v ns implausibly low", res.Metrics.BreakdownNs[CompRDMA])
	}
}

func TestRunWithSampling(t *testing.T) {
	cfg := smallPreset(t, "magelib", 2)
	s := MustNewSystem(cfg)
	streams := []AccessStream{
		randStream(1, 3000, cfg.TotalPages, 500, 0.2),
		randStream(2, 3000, cfg.TotalPages, 500, 0.2),
	}
	res := s.RunWithOptions(streams, RunOptions{SampleEvery: 100 * sim.Microsecond})
	if res.Series == nil || res.Series.Len() == 0 {
		t.Fatal("no time series recorded")
	}
	if res.Series.Max() <= 0 {
		t.Error("sampled throughput never positive")
	}
}

func TestPTEStatesSettleAfterRun(t *testing.T) {
	cfg := smallPreset(t, "magelib", 4)
	s := MustNewSystem(cfg)
	streams := make([]AccessStream, 4)
	for i := range streams {
		streams[i] = randStream(int64(i+31), 2000, cfg.TotalPages, 100, 0.5)
	}
	s.Run(streams)
	present := 0
	for pg := uint64(0); pg < cfg.TotalPages; pg++ {
		st := s.AS.PTEOf(pg).State
		switch st {
		case pgtable.StatePresent:
			present++
		case pgtable.StateRemote:
		default:
			t.Fatalf("page %d left in transient state %v", pg, st)
		}
	}
	if present != s.AS.Resident() {
		t.Errorf("present count %d != Resident() %d", present, s.AS.Resident())
	}
}

func TestNoStreamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewSystem(smallPreset(t, "ideal", 1)).Run(nil)
}
