package core

import (
	"testing"

	"mage/internal/faultinject"
	"mage/internal/sim"
)

// multiTenantConfig returns a small MageLib substrate config for nt
// tenants of pagesEach pages sharing localPages frames. Per-tenant shapes
// go in the specs; NewNode overwrites the aggregate fields.
func multiTenantConfig(t *testing.T, nt int, pagesEach uint64, localPages int) Config {
	t.Helper()
	cfg, err := Preset("magelib", nt*2, uint64(nt)*pagesEach, localPages)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	return cfg
}

func tenantSpecs(nt int, threads int, pagesEach uint64) []TenantSpec {
	specs := make([]TenantSpec, nt)
	for i := range specs {
		specs[i] = TenantSpec{AppThreads: threads, TotalPages: pagesEach}
	}
	return specs
}

// tenantStreams builds per-tenant random streams over each tenant's own
// page space, seeded by tenant and thread identity.
func tenantStreams(nt, threads, perThread int, wss uint64) [][]AccessStream {
	out := make([][]AccessStream, nt)
	for ti := range out {
		out[ti] = make([]AccessStream, threads)
		for i := range out[ti] {
			out[ti][i] = randStream(int64(1000*ti+i), perThread, wss, 200, 0.3)
		}
	}
	return out
}

// TestCrossTenantEvictionPressure: four tenants whose aggregate WSS is 4×
// local memory all make progress, and the shared (node-global) victim
// selection charges evictions to every tenant — no tenant is exempt from
// its neighbours' pressure.
func TestCrossTenantEvictionPressure(t *testing.T) {
	const nt, threads, pagesEach = 4, 2, 2048
	cfg := multiTenantConfig(t, nt, pagesEach, 2048)
	n, err := NewNode(cfg, tenantSpecs(nt, threads, pagesEach))
	if err != nil {
		t.Fatal(err)
	}
	budget := n.PrepopBudget()
	for _, tn := range n.Tenants() {
		tn.Prepopulate(budget / nt)
	}
	results := n.RunTenants(tenantStreams(nt, threads, 2000, pagesEach), RunOptions{})
	if len(results) != nt {
		t.Fatalf("got %d results for %d tenants", len(results), nt)
	}
	for ti, res := range results {
		if got := res.TotalAccesses(); got != threads*2000 {
			t.Errorf("tenant %d: accesses = %d, want %d", ti, got, threads*2000)
		}
		if res.Metrics.MajorFaults == 0 {
			t.Errorf("tenant %d: no major faults at 25%% local memory", ti)
		}
		if res.Metrics.EvictedPages == 0 {
			t.Errorf("tenant %d: no evictions charged under node-wide pressure", ti)
		}
	}
}

// TestTenantOutageIsolation: tenant 0 rides out its own injected link
// outages in per-tenant degraded mode while tenant 1 — no plan of its
// own, no node-wide plan — keeps faulting undisturbed the whole time.
func TestTenantOutageIsolation(t *testing.T) {
	const nt, threads, pagesEach = 2, 4, 4096
	cfg, err := Preset("magelib", nt*threads, nt*pagesEach, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	cfg.Retry = RetryPolicy{MaxAttempts: 2, AttemptTimeout: 50 * sim.Microsecond}
	specs := tenantSpecs(nt, threads, pagesEach)
	specs[0].FaultPlan = &faultinject.Plan{
		Seed:    faultinject.DeriveSeed(7, "core", "tenant-outage"),
		Outages: faultinject.PeriodicOutages(2*sim.Millisecond, 4*sim.Millisecond, sim.Millisecond, 3),
	}
	n, err := NewNode(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	budget := n.PrepopBudget()
	for _, tn := range n.Tenants() {
		tn.Prepopulate(budget / nt)
	}
	results := n.RunTenants(tenantStreams(nt, threads, 3000, pagesEach), RunOptions{})
	for ti, res := range results {
		if got := res.TotalAccesses(); got != threads*3000 {
			t.Fatalf("tenant %d: accesses = %d, want %d", ti, got, threads*3000)
		}
	}
	a, b := results[0].Metrics, results[1].Metrics
	if a.FaultTimeouts == 0 || a.FaultGiveUps == 0 {
		t.Errorf("tenant 0 never hit its outages: timeouts=%d give-ups=%d",
			a.FaultTimeouts, a.FaultGiveUps)
	}
	if a.DegradedNs <= 0 || a.DegradedSpans == 0 {
		t.Errorf("tenant 0 never parked in degraded mode: ns=%d spans=%d",
			a.DegradedNs, a.DegradedSpans)
	}
	if b.MajorFaults == 0 {
		t.Error("tenant 1 stopped faulting during its neighbour's outage")
	}
	if b.FaultTimeouts != 0 || b.FaultGiveUps != 0 || b.DegradedNs != 0 {
		t.Errorf("tenant 1 caught its neighbour's outage: timeouts=%d give-ups=%d degraded=%dns",
			b.FaultTimeouts, b.FaultGiveUps, b.DegradedNs)
	}
}

// TestRunTenantsDeterministic: the same multi-tenant configuration and
// streams reproduce identical per-tenant makespans and counters.
func TestRunTenantsDeterministic(t *testing.T) {
	run := func() []RunResult {
		const nt, threads, pagesEach = 3, 2, 2048
		cfg := multiTenantConfig(t, nt, pagesEach, 3072)
		n, err := NewNode(cfg, tenantSpecs(nt, threads, pagesEach))
		if err != nil {
			t.Fatal(err)
		}
		budget := n.PrepopBudget()
		for _, tn := range n.Tenants() {
			tn.Prepopulate(budget / nt)
		}
		return n.RunTenants(tenantStreams(nt, threads, 1500, pagesEach), RunOptions{})
	}
	r1, r2 := run(), run()
	for ti := range r1 {
		m1, m2 := r1[ti].Metrics, r2[ti].Metrics
		if r1[ti].Makespan != r2[ti].Makespan {
			t.Errorf("tenant %d: makespan %v vs %v", ti, r1[ti].Makespan, r2[ti].Makespan)
		}
		if m1.MajorFaults != m2.MajorFaults || m1.EvictedPages != m2.EvictedPages ||
			m1.FaultP99Ns != m2.FaultP99Ns {
			t.Errorf("tenant %d: metrics diverge: %+v vs %+v", ti, m1, m2)
		}
	}
}

// TestPrepopBudgetIsNodeWide: a tenant that warm-starts its whole WSS
// drains the shared budget; its co-tenant gets nothing.
func TestPrepopBudgetIsNodeWide(t *testing.T) {
	cfg := multiTenantConfig(t, 2, 2048, 2048)
	n, err := NewNode(cfg, tenantSpecs(2, 2, 2048))
	if err != nil {
		t.Fatal(err)
	}
	budget := n.PrepopBudget()
	if budget <= 0 || budget >= cfg.LocalMemPages {
		t.Fatalf("budget = %d, want in (0, %d)", budget, cfg.LocalMemPages)
	}
	got0 := n.Tenants()[0].Prepopulate(2048)
	if got0 != budget {
		t.Errorf("tenant 0 populated %d, want the full budget %d", got0, budget)
	}
	if left := n.PrepopBudget(); left != 0 {
		t.Errorf("budget after drain = %d, want 0", left)
	}
	if got1 := n.Tenants()[1].Prepopulate(100); got1 != 0 {
		t.Errorf("tenant 1 populated %d from an empty budget", got1)
	}
}

// TestNewNodeValidation: the constructor rejects malformed tenant sets.
func TestNewNodeValidation(t *testing.T) {
	base := func() Config { return multiTenantConfig(t, 2, 1024, 1024) }
	cases := []struct {
		name  string
		cfg   Config
		specs []TenantSpec
	}{
		{"zero threads", base(), []TenantSpec{{AppThreads: 0, TotalPages: 64}}},
		{"zero pages", base(), []TenantSpec{{AppThreads: 1, TotalPages: 0}}},
		{"page key overflow", base(), []TenantSpec{{AppThreads: 1, TotalPages: 1 << tenantPageBits}}},
		{"threads exceed cores", base(), tenantSpecs(2, 5, 1024)},
		{"multi-tenant ideal", func() Config {
			cfg, err := Preset("ideal", 4, 2048, 1024)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sockets = 1
			cfg.CoresPerSocket = 8
			return cfg
		}(), tenantSpecs(2, 2, 1024)},
	}
	for _, tc := range cases {
		if _, err := NewNode(tc.cfg, tc.specs); err == nil {
			t.Errorf("%s: NewNode accepted invalid specs", tc.name)
		}
	}
}

// TestSingleTenantWrapper: NewSystem is a one-tenant node whose tenant 0
// is the System's embedded Tenant, so promoted fields alias.
func TestSingleTenantWrapper(t *testing.T) {
	s := MustNewSystem(smallPreset(t, "magelib", 2))
	tenants := s.Node.Tenants()
	if len(tenants) != 1 {
		t.Fatalf("single-tenant system has %d tenants", len(tenants))
	}
	if tenants[0] != s.Tenant {
		t.Error("System.Tenant is not the node's tenant 0")
	}
	if tenants[0].ID != 0 {
		t.Errorf("tenant id = %d, want 0", tenants[0].ID)
	}
	if key := tenants[0].key(123); key != 123 {
		t.Errorf("tenant 0 key(123) = %d: single-tenant keys must equal raw pages", key)
	}
}
