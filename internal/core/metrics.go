package core

import (
	"fmt"
	"strings"

	"mage/internal/invariant"
	"mage/internal/sim"
)

// Metrics is a point-in-time measurement snapshot of a system.
type Metrics struct {
	System string

	MajorFaults  uint64
	MinorFaults  uint64
	SyncEvicts   uint64
	EvictedPages uint64
	Prefetched   uint64
	PrefetchDrop uint64

	// Fault latency distribution (ns).
	FaultMeanNs float64
	FaultP50Ns  int64
	FaultP99Ns  int64
	FaultMaxNs  int64

	// Per-fault latency breakdown (ns/op), keyed by the Comp* labels.
	BreakdownNs map[string]float64

	// TLB / IPI behaviour (Fig 7).
	Shootdowns         uint64
	IPIsSent           uint64
	ShootdownMeanNs    float64
	ShootdownP99Ns     int64
	IPIDeliveryMeanNs  float64
	IPIDeliveryP99Ns   int64
	TLBPagesInvalidate uint64

	// Network.
	RxGbps     float64
	TxGbps     float64
	RdmaReads  uint64
	RdmaWrites uint64

	// Contention (cumulative lock wait, ns).
	AcctLockWaitNs  int64
	AllocLockWaitNs int64
	SwapLockWaitNs  int64
	PTLockWaitNs    int64
	FreeWaitNs      int64

	// DedupWaits counts faults absorbed by in-flight fetches.
	DedupWaits uint64

	// Robustness / fault injection (all zero without a FaultPlan).
	FaultRetries  uint64 // fault-path attempts retried after NACK/timeout
	FaultTimeouts uint64 // fault-path attempts that burned a full AttemptTimeout
	FaultGiveUps  uint64 // fault-path rounds abandoned into degraded mode
	EvictRetries  uint64 // writeback posts repeated after a dropped write
	EvictTimeouts uint64 // writeback drops that were timeouts
	RetryWaits    uint64 // backoff sleeps taken
	RetryWaitNs   int64  // total virtual time spent in backoff sleeps
	DegradedNs    int64  // total virtual time inside degraded mode
	DegradedSpans uint64 // distinct degraded episodes
	// Injected-fault tallies from the injector's own counters.
	InjReadNacks  uint64
	InjWriteNacks uint64
	InjTimeouts   uint64
	InjSpikes     uint64

	// Cross-node eviction (all zero off-rack). The node-side counters
	// are shared, reported as observed by every tenant like the other
	// substrate metrics; BorrowFetches is the tenant's own.
	BorrowsOut     uint64 // victim pages lent to a neighbour instead of swapped
	BorrowsHosted  uint64 // guest pages this node accepted for neighbours
	BorrowReclaims uint64 // guest pages pushed back to owners under host pressure
	BorrowFetches  uint64 // borrowed pages this tenant faulted home over the fabric
}

// Snapshot collects one tenant's metrics; elapsed is used for rate
// computations. Per-tenant quantities (faults, latency, retry state,
// its address space's lock waits) come from the tenant; node-shared
// quantities (shootdowns, NIC, allocator/accounting/swap contention,
// eviction-side retries) are reported as observed by every tenant, since
// the contention they measure is the shared substrate's.
func (t *Tenant) Snapshot(elapsed sim.Time) Metrics {
	n := t.node
	if invariant.Enabled {
		n.checkAccounting()
	}
	m := Metrics{
		System:       t.Spec.Name,
		MajorFaults:  t.MajorFaults.Value(),
		MinorFaults:  t.MinorFaults.Value(),
		SyncEvicts:   t.SyncEvicts.Value(),
		EvictedPages: t.EvictedPages.Value(),
		Prefetched:   t.Prefetched.Value(),
		PrefetchDrop: t.PrefetchDrop.Value(),

		FaultMeanNs: t.FaultLatency.Mean(),
		FaultP50Ns:  t.FaultLatency.P50(),
		FaultP99Ns:  t.FaultLatency.P99(),
		FaultMaxNs:  t.FaultLatency.Max(),

		BreakdownNs: make(map[string]float64),

		Shootdowns:         n.Shooter.Shootdowns.Value(),
		IPIsSent:           n.Fabric.IPIsSent.Value(),
		ShootdownMeanNs:    n.Shooter.Latency.Mean(),
		ShootdownP99Ns:     n.Shooter.Latency.P99(),
		IPIDeliveryMeanNs:  n.Fabric.DeliveryLatency.Mean(),
		IPIDeliveryP99Ns:   n.Fabric.DeliveryLatency.P99(),
		TLBPagesInvalidate: n.Shooter.PagesInvalidated.Value(),

		RxGbps:     n.NIC.RxGbps(elapsed),
		TxGbps:     n.NIC.TxGbps(elapsed),
		RdmaReads:  n.NIC.Reads.Value(),
		RdmaWrites: n.NIC.Writes.Value(),

		AcctLockWaitNs:  n.Acct.LockWaitNs(),
		AllocLockWaitNs: n.Alloc.LockWaitNs(),
		SwapLockWaitNs:  n.Swap.LockWaitNs(),
		PTLockWaitNs:    t.AS.LockWaitNs(),
		FreeWaitNs:      t.FreeWaitNs,

		DedupWaits: t.AS.DedupWaits.Value(),

		FaultRetries:  t.FaultRetries.Value(),
		FaultTimeouts: t.FaultTimeouts.Value(),
		FaultGiveUps:  t.FaultGiveUps.Value(),
		EvictRetries:  n.EvictRetries.Value(),
		EvictTimeouts: n.EvictTimeouts.Value(),
		RetryWaits:    t.RetryWait.Count(),
		RetryWaitNs:   t.RetryWait.Sum(),
		DegradedNs:    t.Degraded.TotalAt(int64(elapsed)),
		DegradedSpans: t.Degraded.Count(),

		BorrowsOut:     n.BorrowsOut.Value(),
		BorrowsHosted:  n.BorrowsHosted.Value(),
		BorrowReclaims: n.BorrowReclaims.Value(),
		BorrowFetches:  t.BorrowFetches.Value(),
	}
	// Injected-fault tallies: the tenant's own injector plus the node-wide
	// one when both exist (they are distinct fault sources; a tenant
	// without its own plan sees exactly the node injector, preserving the
	// pre-split report).
	if in := t.Inj; in != nil {
		m.InjReadNacks += in.ReadNacks.Value()
		m.InjWriteNacks += in.WriteNacks.Value()
		m.InjTimeouts += in.ReadTimeouts.Value() + in.WriteTimeouts.Value()
		m.InjSpikes += in.Spikes.Value()
	}
	if in := n.FaultInj; in != nil {
		m.InjReadNacks += in.ReadNacks.Value()
		m.InjWriteNacks += in.WriteNacks.Value()
		m.InjTimeouts += in.ReadTimeouts.Value() + in.WriteTimeouts.Value()
		m.InjSpikes += in.Spikes.Value()
	}
	for _, c := range t.FaultBreak.Components() {
		m.BreakdownNs[c] = t.FaultBreak.PerOp(c)
	}
	return m
}

// FaultMops returns major faults per second in millions over elapsed.
func (m Metrics) FaultMops(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.MajorFaults) / elapsed.Seconds() / 1e6
}

func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: faults=%d (minor %d, dedup %d) evicted=%d sync=%d",
		m.System, m.MajorFaults, m.MinorFaults, m.DedupWaits, m.EvictedPages, m.SyncEvicts)
	fmt.Fprintf(&b, " fault[mean=%.0fns p99=%dns]", m.FaultMeanNs, m.FaultP99Ns)
	fmt.Fprintf(&b, " tlb[n=%d mean=%.0fns]", m.Shootdowns, m.ShootdownMeanNs)
	fmt.Fprintf(&b, " net[rx=%.1f tx=%.1f Gbps]", m.RxGbps, m.TxGbps)
	return b.String()
}
