package core

import (
	"fmt"
	"strings"

	"mage/internal/invariant"
	"mage/internal/sim"
)

// Metrics is a point-in-time measurement snapshot of a system.
type Metrics struct {
	System string

	MajorFaults  uint64
	MinorFaults  uint64
	SyncEvicts   uint64
	EvictedPages uint64
	Prefetched   uint64
	PrefetchDrop uint64

	// Fault latency distribution (ns).
	FaultMeanNs float64
	FaultP50Ns  int64
	FaultP99Ns  int64
	FaultMaxNs  int64

	// Per-fault latency breakdown (ns/op), keyed by the Comp* labels.
	BreakdownNs map[string]float64

	// TLB / IPI behaviour (Fig 7).
	Shootdowns         uint64
	IPIsSent           uint64
	ShootdownMeanNs    float64
	ShootdownP99Ns     int64
	IPIDeliveryMeanNs  float64
	IPIDeliveryP99Ns   int64
	TLBPagesInvalidate uint64

	// Network.
	RxGbps     float64
	TxGbps     float64
	RdmaReads  uint64
	RdmaWrites uint64

	// Contention (cumulative lock wait, ns).
	AcctLockWaitNs  int64
	AllocLockWaitNs int64
	SwapLockWaitNs  int64
	PTLockWaitNs    int64
	FreeWaitNs      int64

	// DedupWaits counts faults absorbed by in-flight fetches.
	DedupWaits uint64

	// Robustness / fault injection (all zero without a FaultPlan).
	FaultRetries  uint64 // fault-path attempts retried after NACK/timeout
	FaultTimeouts uint64 // fault-path attempts that burned a full AttemptTimeout
	FaultGiveUps  uint64 // fault-path rounds abandoned into degraded mode
	EvictRetries  uint64 // writeback posts repeated after a dropped write
	EvictTimeouts uint64 // writeback drops that were timeouts
	RetryWaits    uint64 // backoff sleeps taken
	RetryWaitNs   int64  // total virtual time spent in backoff sleeps
	DegradedNs    int64  // total virtual time inside degraded mode
	DegradedSpans uint64 // distinct degraded episodes
	// Injected-fault tallies from the injector's own counters.
	InjReadNacks  uint64
	InjWriteNacks uint64
	InjTimeouts   uint64
	InjSpikes     uint64
}

// Snapshot collects metrics; elapsed is used for rate computations.
func (s *System) Snapshot(elapsed sim.Time) Metrics {
	if invariant.Enabled {
		s.checkAccounting()
	}
	m := Metrics{
		System:       s.Cfg.Name,
		MajorFaults:  s.MajorFaults.Value(),
		MinorFaults:  s.MinorFaults.Value(),
		SyncEvicts:   s.SyncEvicts.Value(),
		EvictedPages: s.EvictedPages.Value(),
		Prefetched:   s.Prefetched.Value(),
		PrefetchDrop: s.PrefetchDrop.Value(),

		FaultMeanNs: s.FaultLatency.Mean(),
		FaultP50Ns:  s.FaultLatency.P50(),
		FaultP99Ns:  s.FaultLatency.P99(),
		FaultMaxNs:  s.FaultLatency.Max(),

		BreakdownNs: make(map[string]float64),

		Shootdowns:         s.Shooter.Shootdowns.Value(),
		IPIsSent:           s.Fabric.IPIsSent.Value(),
		ShootdownMeanNs:    s.Shooter.Latency.Mean(),
		ShootdownP99Ns:     s.Shooter.Latency.P99(),
		IPIDeliveryMeanNs:  s.Fabric.DeliveryLatency.Mean(),
		IPIDeliveryP99Ns:   s.Fabric.DeliveryLatency.P99(),
		TLBPagesInvalidate: s.Shooter.PagesInvalidated.Value(),

		RxGbps:     s.NIC.RxGbps(elapsed),
		TxGbps:     s.NIC.TxGbps(elapsed),
		RdmaReads:  s.NIC.Reads.Value(),
		RdmaWrites: s.NIC.Writes.Value(),

		AcctLockWaitNs:  s.Acct.LockWaitNs(),
		AllocLockWaitNs: s.Alloc.LockWaitNs(),
		SwapLockWaitNs:  s.Swap.LockWaitNs(),
		PTLockWaitNs:    s.AS.LockWaitNs(),
		FreeWaitNs:      s.FreeWaitNs,

		DedupWaits: s.AS.DedupWaits.Value(),

		FaultRetries:  s.FaultRetries.Value(),
		FaultTimeouts: s.FaultTimeouts.Value(),
		FaultGiveUps:  s.FaultGiveUps.Value(),
		EvictRetries:  s.EvictRetries.Value(),
		EvictTimeouts: s.EvictTimeouts.Value(),
		RetryWaits:    s.RetryWait.Count(),
		RetryWaitNs:   s.RetryWait.Sum(),
		DegradedNs:    s.Degraded.TotalAt(int64(elapsed)),
		DegradedSpans: s.Degraded.Count(),
	}
	if in := s.FaultInj; in != nil {
		m.InjReadNacks = in.ReadNacks.Value()
		m.InjWriteNacks = in.WriteNacks.Value()
		m.InjTimeouts = in.ReadTimeouts.Value() + in.WriteTimeouts.Value()
		m.InjSpikes = in.Spikes.Value()
	}
	for _, c := range s.FaultBreak.Components() {
		m.BreakdownNs[c] = s.FaultBreak.PerOp(c)
	}
	return m
}

// FaultMops returns major faults per second in millions over elapsed.
func (m Metrics) FaultMops(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.MajorFaults) / elapsed.Seconds() / 1e6
}

func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: faults=%d (minor %d, dedup %d) evicted=%d sync=%d",
		m.System, m.MajorFaults, m.MinorFaults, m.DedupWaits, m.EvictedPages, m.SyncEvicts)
	fmt.Fprintf(&b, " fault[mean=%.0fns p99=%dns]", m.FaultMeanNs, m.FaultP99Ns)
	fmt.Fprintf(&b, " tlb[n=%d mean=%.0fns]", m.Shootdowns, m.ShootdownMeanNs)
	fmt.Fprintf(&b, " net[rx=%.1f tx=%.1f Gbps]", m.RxGbps, m.TxGbps)
	return b.String()
}
