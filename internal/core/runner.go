package core

import (
	"fmt"

	"mage/internal/sim"
	"mage/internal/stats"
)

// Access is one memory reference in an application's access stream.
type Access struct {
	Page    uint64
	Write   bool
	Compute sim.Time // CPU work attributed to this access
	// Wait, if non-nil, blocks the thread before the access is issued —
	// used for BSP phase barriers (Metis) and open-loop request pacing
	// (Memcached). Pending compute time is flushed first.
	Wait func(p *sim.Proc)
	// Skip marks a pure synchronization element: Wait runs but no memory
	// access is performed.
	Skip bool
}

// AccessStream generates a thread's access sequence lazily.
type AccessStream interface {
	Next() (Access, bool)
}

// SliceStream adapts a pre-built slice to AccessStream (tests, tools).
type SliceStream struct {
	Accs []Access
	pos  int
}

// Next implements AccessStream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accs) {
		return Access{}, false
	}
	a := s.Accs[s.pos]
	s.pos++
	return a, true
}

// FuncStream adapts a generator function to AccessStream.
type FuncStream func() (Access, bool)

// Next implements AccessStream.
func (f FuncStream) Next() (Access, bool) { return f() }

// ThreadResult is one application thread's outcome.
type ThreadResult struct {
	TID        int
	Accesses   uint64
	Faults     uint64
	FinishedAt sim.Time
}

// RunResult is the outcome of a complete workload execution.
type RunResult struct {
	System  string
	Threads []ThreadResult
	// Makespan is the finish time of the slowest thread (the quantity the
	// paper's jobs/hour numbers derive from).
	Makespan sim.Time
	// Series samples aggregate access throughput over time when sampling
	// was enabled (Fig 11).
	Series *stats.TimeSeries
	// Metrics is the system's final measurement snapshot.
	Metrics Metrics
}

// TotalAccesses sums accesses across threads.
func (r *RunResult) TotalAccesses() uint64 {
	var n uint64
	for _, t := range r.Threads {
		n += t.Accesses
	}
	return n
}

// TotalFaults sums major faults across threads.
func (r *RunResult) TotalFaults() uint64 {
	var n uint64
	for _, t := range r.Threads {
		n += t.Faults
	}
	return n
}

// OpsPerSec is aggregate access throughput over the makespan.
func (r *RunResult) OpsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.TotalAccesses()) / r.Makespan.Seconds()
}

// JobsPerHour converts the makespan to the paper's jobs/hour metric.
func (r *RunResult) JobsPerHour() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return 3600 / r.Makespan.Seconds()
}

// RunOptions tunes a workload execution.
type RunOptions struct {
	// SampleEvery enables throughput time-series sampling at this period
	// (0 disables).
	SampleEvery sim.Time
	// Deadline aborts the run at this virtual time (0 = none).
	Deadline sim.Time
}

// Run executes one AccessStream per application thread to completion and
// returns the aggregated result. It owns the engine run loop.
func (s *System) Run(streams []AccessStream) RunResult {
	return s.RunWithOptions(streams, RunOptions{})
}

// RunWithOptions is Run with sampling/deadline control. It is the
// single-tenant slice of Node.RunTenants.
func (s *System) RunWithOptions(streams []AccessStream, opts RunOptions) RunResult {
	return s.Node.RunTenants([][]AccessStream{streams}, opts)[0]
}

// RunTenants executes each tenant's streams (one AccessStream per app
// thread) to completion and returns one RunResult per tenant, in tenant
// id order. It owns the engine run loop.
//
// Determinism: spawn order is fixed — evictors, then every tenant's app
// threads in tenant id order, then the samplers — so cross-tenant event
// ordering is a pure function of the configuration and streams. A
// single-tenant call reproduces the pre-split spawn sequence (and thread
// names) exactly.
func (n *Node) RunTenants(tenantStreams [][]AccessStream, opts RunOptions) []RunResult {
	run := n.startTenants(tenantStreams, opts)
	if opts.Deadline > 0 {
		n.Eng.RunUntil(opts.Deadline)
		if !n.stopped {
			n.Stop()
			n.Eng.Stop()
		}
		// Deadline-abandoned threads (and the samplers) are parked in the
		// engine; release their goroutines so grid sweeps do not
		// accumulate thousands of leaked parked procs.
		n.Eng.Shutdown()
	} else {
		n.Eng.Run()
	}
	return run.finish()
}

// nodeRun is one node's spawned-but-not-yet-finished workload: the seam
// between spawning and driving the engine that lets Rack.Run start every
// node's tenants before running the shared engine once.
type nodeRun struct {
	n       *Node
	results []RunResult
}

// startTenants spawns the node's evictors, application threads, and
// samplers in the fixed determinism order, without running the engine.
// The node stops itself (releasing its evictors and samplers) when its
// last thread finishes, so several started nodes can share one run loop.
func (n *Node) startTenants(tenantStreams [][]AccessStream, opts RunOptions) *nodeRun {
	if len(tenantStreams) != len(n.tenants) {
		panic(fmt.Sprintf("core: %d stream sets for %d tenants", len(tenantStreams), len(n.tenants)))
	}
	for _, streams := range tenantStreams {
		if len(streams) == 0 {
			panic("core: no access streams")
		}
	}
	n.SpawnEvictors()

	multi := len(n.tenants) > 1
	results := make([]RunResult, len(n.tenants))
	remaining := 0
	for _, streams := range tenantStreams {
		remaining += len(streams)
	}
	if n.Trace != nil {
		for _, t := range n.tenants {
			n.Trace.ProcessName(t.ID, fmt.Sprintf("tenant %d: %s", t.ID, t.Spec.Name))
		}
	}
	for ti, tn := range n.tenants {
		ti, tn := ti, tn
		streams := tenantStreams[ti]
		results[ti] = RunResult{
			System:  tn.Spec.Name,
			Threads: make([]ThreadResult, len(streams)),
		}
		for i, st := range streams {
			i, st := i, st
			name := fmt.Sprintf("app-%d", i)
			if multi {
				name = fmt.Sprintf("t%d.app-%d", ti, i)
			}
			n.Eng.Spawn(n.procName(name), func(p *sim.Proc) {
				t := tn.NewThread(p, i)
				for {
					a, ok := st.Next()
					if !ok {
						break
					}
					if a.Wait != nil {
						t.Flush()
						a.Wait(p)
					}
					if !a.Skip {
						t.Access(a.Page, a.Write, a.Compute)
					}
				}
				t.Flush()
				results[ti].Threads[i] = ThreadResult{
					TID:        i,
					Accesses:   t.Accesses,
					Faults:     t.Faults,
					FinishedAt: p.Now(),
				}
				remaining--
				if remaining == 0 {
					n.Stop()
				}
			})
		}
	}

	if opts.SampleEvery > 0 {
		for ti, tn := range n.tenants {
			tn := tn
			results[ti].Series = &stats.TimeSeries{}
			series := results[ti].Series
			name := "sampler"
			if multi {
				name = fmt.Sprintf("t%d.sampler", ti)
			}
			n.Eng.Spawn(n.procName(name), func(p *sim.Proc) {
				var m stats.Meter
				for !n.stopped {
					p.Sleep(opts.SampleEvery)
					rate := m.Rate(int64(p.Now()), tn.AccessOps)
					series.Add(int64(p.Now()), rate)
				}
			})
		}
	}
	return &nodeRun{n: n, results: results}
}

// finish computes makespans and snapshots metrics once the engine loop
// has drained.
func (r *nodeRun) finish() []RunResult {
	for ti := range r.results {
		res := &r.results[ti]
		for _, t := range res.Threads {
			if t.FinishedAt > res.Makespan {
				res.Makespan = t.FinishedAt
			}
		}
		res.Metrics = r.n.tenants[ti].Snapshot(res.Makespan)
	}
	return r.results
}
