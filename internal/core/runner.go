package core

import (
	"fmt"

	"mage/internal/sim"
	"mage/internal/stats"
)

// Access is one memory reference in an application's access stream.
type Access struct {
	Page    uint64
	Write   bool
	Compute sim.Time // CPU work attributed to this access
	// Wait, if non-nil, blocks the thread before the access is issued —
	// used for BSP phase barriers (Metis) and open-loop request pacing
	// (Memcached). Pending compute time is flushed first.
	Wait func(p *sim.Proc)
	// Skip marks a pure synchronization element: Wait runs but no memory
	// access is performed.
	Skip bool
}

// AccessStream generates a thread's access sequence lazily.
type AccessStream interface {
	Next() (Access, bool)
}

// SliceStream adapts a pre-built slice to AccessStream (tests, tools).
type SliceStream struct {
	Accs []Access
	pos  int
}

// Next implements AccessStream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accs) {
		return Access{}, false
	}
	a := s.Accs[s.pos]
	s.pos++
	return a, true
}

// FuncStream adapts a generator function to AccessStream.
type FuncStream func() (Access, bool)

// Next implements AccessStream.
func (f FuncStream) Next() (Access, bool) { return f() }

// ThreadResult is one application thread's outcome.
type ThreadResult struct {
	TID        int
	Accesses   uint64
	Faults     uint64
	FinishedAt sim.Time
}

// RunResult is the outcome of a complete workload execution.
type RunResult struct {
	System  string
	Threads []ThreadResult
	// Makespan is the finish time of the slowest thread (the quantity the
	// paper's jobs/hour numbers derive from).
	Makespan sim.Time
	// Series samples aggregate access throughput over time when sampling
	// was enabled (Fig 11).
	Series *stats.TimeSeries
	// Metrics is the system's final measurement snapshot.
	Metrics Metrics
}

// TotalAccesses sums accesses across threads.
func (r *RunResult) TotalAccesses() uint64 {
	var n uint64
	for _, t := range r.Threads {
		n += t.Accesses
	}
	return n
}

// TotalFaults sums major faults across threads.
func (r *RunResult) TotalFaults() uint64 {
	var n uint64
	for _, t := range r.Threads {
		n += t.Faults
	}
	return n
}

// OpsPerSec is aggregate access throughput over the makespan.
func (r *RunResult) OpsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.TotalAccesses()) / r.Makespan.Seconds()
}

// JobsPerHour converts the makespan to the paper's jobs/hour metric.
func (r *RunResult) JobsPerHour() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return 3600 / r.Makespan.Seconds()
}

// RunOptions tunes a workload execution.
type RunOptions struct {
	// SampleEvery enables throughput time-series sampling at this period
	// (0 disables).
	SampleEvery sim.Time
	// Deadline aborts the run at this virtual time (0 = none).
	Deadline sim.Time
}

// Run executes one AccessStream per application thread to completion and
// returns the aggregated result. It owns the engine run loop.
func (s *System) Run(streams []AccessStream) RunResult {
	return s.RunWithOptions(streams, RunOptions{})
}

// RunWithOptions is Run with sampling/deadline control.
func (s *System) RunWithOptions(streams []AccessStream, opts RunOptions) RunResult {
	if len(streams) == 0 {
		panic("core: no access streams")
	}
	s.SpawnEvictors()

	res := RunResult{
		System:  s.Cfg.Name,
		Threads: make([]ThreadResult, len(streams)),
	}
	remaining := len(streams)
	for i, st := range streams {
		i, st := i, st
		s.Eng.Spawn(fmt.Sprintf("app-%d", i), func(p *sim.Proc) {
			t := s.NewThread(p, i)
			for {
				a, ok := st.Next()
				if !ok {
					break
				}
				if a.Wait != nil {
					t.Flush()
					a.Wait(p)
				}
				if !a.Skip {
					t.Access(a.Page, a.Write, a.Compute)
				}
			}
			t.Flush()
			res.Threads[i] = ThreadResult{
				TID:        i,
				Accesses:   t.Accesses,
				Faults:     t.Faults,
				FinishedAt: p.Now(),
			}
			remaining--
			if remaining == 0 {
				s.Stop()
			}
		})
	}

	if opts.SampleEvery > 0 {
		res.Series = &stats.TimeSeries{}
		s.Eng.Spawn("sampler", func(p *sim.Proc) {
			var m stats.Meter
			for !s.stopped {
				p.Sleep(opts.SampleEvery)
				rate := m.Rate(int64(p.Now()), s.AccessOps)
				res.Series.Add(int64(p.Now()), rate)
			}
		})
	}

	if opts.Deadline > 0 {
		s.Eng.RunUntil(opts.Deadline)
		if !s.stopped {
			s.Stop()
			s.Eng.Stop()
		}
		// Deadline-abandoned threads (and the sampler) are parked in the
		// engine; release their goroutines so grid sweeps do not
		// accumulate thousands of leaked parked procs.
		s.Eng.Shutdown()
	} else {
		s.Eng.Run()
	}

	for _, t := range res.Threads {
		if t.FinishedAt > res.Makespan {
			res.Makespan = t.FinishedAt
		}
	}
	res.Metrics = s.Snapshot(res.Makespan)
	return res
}
