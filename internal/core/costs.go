package core

import (
	"mage/internal/apic"
	"mage/internal/lru"
	"mage/internal/nic"
	"mage/internal/palloc"
	"mage/internal/pgtable"
	"mage/internal/sim"
	"mage/internal/swapspace"
	"mage/internal/tlbsim"
)

// CostModel aggregates every substrate's cost parameters plus the
// Linux-specific per-page overheads §3.2 attributes to Hermit. Values are
// virtual nanoseconds, calibrated against the paper's measurements:
//
//   - 4 KB RDMA READ = 3.9 µs best case (§3.1); 192 Gbps practical line
//     rate, so the ideal fault limit is 5.86 M pages/s (paper: 5.83).
//   - Uncontended fault handler: DiLOS ≈ 4.7 µs, Hermit ≈ 5.8 µs (§6.5's
//     regression test) — the Linux extras below account for the gap.
//   - MAGE^LIB average fault ≈ 7.7 µs at full 48-thread load with 5.1 µs
//     of RDMA congestion (§6.4).
//   - Page accounting 2.1 µs → 0.2 µs and circulation 2.4 µs → 0.5 µs
//     moving from DiLOS's shared structures to MAGE's (Fig 16).
type CostModel struct {
	APIC  apic.Costs
	TLB   tlbsim.Costs
	NIC   nic.Costs
	Alloc palloc.Costs
	PT    pgtable.Costs
	Swap  swapspace.Costs
	LRU   lru.Costs

	// FaultEntry is the trap + dispatch cost on entering the fault
	// handler ("others" in Fig 6: context switch, fault dispatching).
	FaultEntry sim.Time
	// FaultExit is the return-from-handler cost.
	FaultExit sim.Time
	// Rmap is Linux's reverse-mapping walk per evicted page.
	Rmap sim.Time
	// Cgroup is Linux's cgroup accounting per page.
	Cgroup sim.Time
	// SwapCache is Linux's swap-cache insert/delete per page.
	SwapCache sim.Time
	// VMExitIPI is the VM-exit surcharge per delivered IPI when
	// virtualized (~1200 cycles, §3.3.1).
	VMExitIPI sim.Time
	// VirtFaultOverhead is the extra per-fault cost of running the fault
	// handler inside a VM (EPT translations etc., Table 2's regression).
	VirtFaultOverhead sim.Time
	// KernelFaultPath is the extra per-fault cost of the Linux fault
	// path relative to a specialized LibOS handler (VMA lookup, checks).
	KernelFaultPath sim.Time
	// EvictorWakeup is the latency of waking an eviction thread.
	EvictorWakeup sim.Time
	// HWWalkFill is the hardware page-table walk on a TLB miss that hits
	// a present PTE (no fault).
	HWWalkFill sim.Time
	// ZeroFill is the cost of clearing a 4 KB frame for an anonymous
	// first-touch fault (memset at DRAM bandwidth).
	ZeroFill sim.Time
	// ComputeFactor dilates all application compute time: virtualized
	// systems pay EPT-translation overhead on every memory access and the
	// OSv-based ones additionally pay for less mature userspace libraries
	// — the 2-8% regression Table 2 measures at 100% local memory.
	ComputeFactor float64
}

// DefaultCostModel returns the calibrated cost model used by all presets.
func DefaultCostModel(cfg Config) CostModel {
	m := CostModel{
		APIC:  apic.DefaultCosts(),
		TLB:   tlbsim.DefaultCosts(),
		NIC:   nic.BackendCosts(cfg.Backend, cfg.Stack),
		Alloc: palloc.DefaultCosts(),
		PT:    pgtable.DefaultCosts(),
		Swap:  swapspace.DefaultCosts(),
		LRU:   lru.DefaultCosts(),

		FaultEntry:        350,
		FaultExit:         250,
		Rmap:              420,
		Cgroup:            190,
		SwapCache:         260,
		VMExitIPI:         550,
		VirtFaultOverhead: 300,
		KernelFaultPath:   500,
		EvictorWakeup:     900,
		HWWalkFill:        20,
		ZeroFill:          450,
	}
	m.ComputeFactor = 1.0
	if cfg.Virtualized {
		m.APIC.VMExit = m.VMExitIPI
		m.ComputeFactor += 0.045 // EPT translations on every access
		if cfg.Stack == nic.StackLibOS {
			m.ComputeFactor += 0.02 // OSv's less mature userspace (Table 2)
		}
	}
	if cfg.Ideal {
		// Zero every software cost; keep only wire latency and line rate
		// so a fault costs exactly L = 3.9 µs uncontended and the link
		// bounds throughput at 5.86 M pages/s. Application compute runs
		// undilated (factor 1, never 0 — a zero factor would erase the
		// workload's own time and make every ideal run instantaneous).
		ser := sim.Time(float64(nic.PageSize) / m.NIC.BytesPerNs)
		m = CostModel{
			NIC: nic.Costs{
				BytesPerNs:  m.NIC.BytesPerNs,
				BaseLatency: 3900 - ser,
			},
			ComputeFactor: 1.0,
		}
	}
	return m
}
