package topo

import (
	"testing"
	"testing/quick"
)

func TestNewMachineShape(t *testing.T) {
	m := NewMachine(2, 28)
	if m.NumCores() != 56 {
		t.Fatalf("NumCores = %d, want 56", m.NumCores())
	}
	if m.Core(0).Socket != 0 || m.Core(27).Socket != 0 {
		t.Errorf("cores 0..27 should be socket 0")
	}
	if m.Core(28).Socket != 1 || m.Core(55).Socket != 1 {
		t.Errorf("cores 28..55 should be socket 1")
	}
}

func TestInvalidMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0, 4)
}

func TestCoreOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(1, 4).Core(4)
}

func TestSameSocket(t *testing.T) {
	m := NewMachine(2, 2)
	if !m.SameSocket(0, 1) {
		t.Error("0 and 1 share socket 0")
	}
	if m.SameSocket(1, 2) {
		t.Error("1 and 2 are on different sockets")
	}
}

func TestStealDrain(t *testing.T) {
	c := &Core{}
	c.Steal(100)
	c.Steal(50)
	if got := c.DrainStolen(); got != 150 {
		t.Errorf("DrainStolen = %d, want 150", got)
	}
	if got := c.DrainStolen(); got != 0 {
		t.Errorf("second DrainStolen = %d, want 0", got)
	}
	if c.StolenTotalNs != 150 {
		t.Errorf("StolenTotalNs = %d, want 150", c.StolenTotalNs)
	}
	if c.IRQs != 2 {
		t.Errorf("IRQs = %d, want 2", c.IRQs)
	}
}

func TestPlaceCompactBinding(t *testing.T) {
	m := NewMachine(2, 28)
	pl := m.Place(48, 4)
	if len(pl.App) != 48 || len(pl.Evictor) != 4 {
		t.Fatalf("placement sizes: %d app, %d evictors", len(pl.App), len(pl.Evictor))
	}
	// First 28 app threads fill socket 0.
	for i := 0; i < 28; i++ {
		if m.Core(pl.App[i]).Socket != 0 {
			t.Errorf("app thread %d on socket %d, want 0", i, m.Core(pl.App[i]).Socket)
		}
	}
	for i := 28; i < 48; i++ {
		if m.Core(pl.App[i]).Socket != 1 {
			t.Errorf("app thread %d on socket %d, want 1", i, m.Core(pl.App[i]).Socket)
		}
	}
	// Evictors occupy the top cores, disjoint from the 48 app cores.
	appCores := map[CoreID]bool{}
	for _, c := range pl.App {
		appCores[c] = true
	}
	for j, c := range pl.Evictor {
		if appCores[c] {
			t.Errorf("evictor %d shares core %d with an app thread", j, c)
		}
	}
}

func TestPlaceOversubscription(t *testing.T) {
	m := NewMachine(1, 4)
	pl := m.Place(8, 2)
	// App threads wrap around.
	if pl.App[4] != 0 || pl.App[7] != 3 {
		t.Errorf("wrap-around placement wrong: %v", pl.App)
	}
	cores := pl.AppCoresOf()
	if len(cores) != 4 {
		t.Errorf("AppCoresOf = %v, want 4 distinct cores", cores)
	}
}

func TestAppCoresOfDistinctAndSorted(t *testing.T) {
	f := func(threadsRaw, coresRaw uint8) bool {
		threads := int(threadsRaw%64) + 1
		cores := int(coresRaw%16) + 1
		m := NewMachine(1, cores)
		pl := m.Place(threads, 0)
		got := pl.AppCoresOf()
		seen := map[CoreID]bool{}
		prev := CoreID(-1)
		for _, c := range got {
			if seen[c] || c <= prev {
				return false
			}
			seen[c] = true
			prev = c
		}
		want := threads
		if want > cores {
			want = cores
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
