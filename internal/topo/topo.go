// Package topo models the machine topology the paper evaluates on: a
// dual-socket server with a fixed number of cores per socket.
//
// Cores carry "stolen time" accounting: interrupt handlers (TLB shootdowns
// delivered by eviction threads) charge their execution time to the core
// they run on, and the application thread bound to that core observes the
// charge the next time it advances its own clock. This reproduces the
// paper's observation that remote TLB flushes initiated by background
// eviction threads consume cycles on application cores (§6.4).
package topo

import "fmt"

// CoreID identifies a core; IDs are dense in [0, NumCores).
type CoreID int

// Core is one CPU core.
type Core struct {
	ID     CoreID
	Socket int

	stolenNs int64

	// IRQs counts interrupts handled by this core.
	IRQs uint64
	// StolenTotalNs is the cumulative stolen time, for reporting.
	StolenTotalNs int64
}

// Steal charges ns of interrupt-handler time to the core.
func (c *Core) Steal(ns int64) {
	c.stolenNs += ns
	c.StolenTotalNs += ns
	c.IRQs++
}

// DrainStolen returns and clears the accumulated stolen time. The thread
// bound to the core calls this as it advances virtual time.
func (c *Core) DrainStolen() int64 {
	s := c.stolenNs
	c.stolenNs = 0
	return s
}

// Machine is a set of cores arranged in sockets.
type Machine struct {
	SocketsN       int
	CoresPerSocket int
	cores          []*Core
}

// NewMachine builds a machine with the given shape. The paper's testbed is
// NewMachine(2, 28): dual-socket Xeon 6348 with 28 cores per socket.
func NewMachine(sockets, coresPerSocket int) *Machine {
	if sockets < 1 || coresPerSocket < 1 {
		panic(fmt.Sprintf("topo: invalid machine %dx%d", sockets, coresPerSocket))
	}
	m := &Machine{SocketsN: sockets, CoresPerSocket: coresPerSocket}
	for s := 0; s < sockets; s++ {
		for c := 0; c < coresPerSocket; c++ {
			m.cores = append(m.cores, &Core{
				ID:     CoreID(s*coresPerSocket + c),
				Socket: s,
			})
		}
	}
	return m
}

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns the core with the given ID.
func (m *Machine) Core(id CoreID) *Core {
	if int(id) < 0 || int(id) >= len(m.cores) {
		panic(fmt.Sprintf("topo: core %d out of range [0,%d)", id, len(m.cores)))
	}
	return m.cores[id]
}

// Cores returns all cores in ID order.
func (m *Machine) Cores() []*Core { return m.cores }

// SameSocket reports whether two cores share a socket.
func (m *Machine) SameSocket(a, b CoreID) bool {
	return m.Core(a).Socket == m.Core(b).Socket
}

// Placement assigns application threads and dedicated eviction threads to
// cores.
type Placement struct {
	App     []CoreID // core of app thread i
	Evictor []CoreID // core of evictor thread j
}

// Place assigns appThreads application threads to the lowest-numbered
// cores (filling socket 0 before socket 1, matching OpenMP's default
// compact binding — this is what produces the paper's cross-socket
// inflection at 28 threads) and evictors to the highest-numbered cores so
// that dedicated eviction threads do not share cores with the application
// whenever enough cores exist.
func (m *Machine) Place(appThreads, evictors int) Placement {
	n := m.NumCores()
	var pl Placement
	for i := 0; i < appThreads; i++ {
		pl.App = append(pl.App, CoreID(i%n))
	}
	for j := 0; j < evictors; j++ {
		pl.Evictor = append(pl.Evictor, CoreID(n-1-(j%n)))
	}
	return pl
}

// AppCoresOf returns the distinct cores occupied by application threads in
// the placement, in ascending order. TLB shootdowns must target these.
func (pl Placement) AppCoresOf() []CoreID {
	return DistinctCores(pl.App)
}

// DistinctCores returns the distinct cores in cs in first-seen order
// (ascending when cs came from Place, which assigns cores in ascending
// order). Multi-tenant nodes use it to derive each tenant's shootdown
// target set from its contiguous slice of the placement.
func DistinctCores(cs []CoreID) []CoreID {
	seen := make(map[CoreID]bool)
	var out []CoreID
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
