package prefetch

import (
	"testing"
	"testing/quick"
)

func TestMajorityDetectsNoisySequential(t *testing.T) {
	m := NewMajority(5, 4, 1<<20)
	// Sequential run with one interleaved outlier: a strict-stride
	// detector gives up; the majority detector must not.
	var got []uint64
	for _, pg := range []uint64{100, 101, 102, 9000, 103, 104} {
		got = m.OnFault(pg)
	}
	if len(got) == 0 {
		t.Fatal("majority stride not detected through noise")
	}
	if got[0] != 105 {
		t.Errorf("first proposal = %d, want 105", got[0])
	}
}

func TestMajorityRejectsRandom(t *testing.T) {
	m := NewMajority(5, 4, 1<<20)
	issued := 0
	for _, pg := range []uint64{5, 900, 3, 70000, 41, 88, 12, 6000, 77, 2} {
		issued += len(m.OnFault(pg))
	}
	if issued != 0 {
		t.Errorf("random stream produced %d proposals", issued)
	}
}

func TestMajorityBackwardStride(t *testing.T) {
	m := NewMajority(4, 2, 1<<20)
	var got []uint64
	for _, pg := range []uint64{500, 499, 498, 497, 496} {
		got = m.OnFault(pg)
	}
	if len(got) != 2 || got[0] != 495 || got[1] != 494 {
		t.Errorf("backward proposals = %v", got)
	}
}

func TestMajorityRespectsLimit(t *testing.T) {
	f := func(startRaw uint16, limitRaw uint16) bool {
		limit := uint64(limitRaw) + 10
		start := uint64(startRaw) % limit
		m := NewMajority(3, 8, limit)
		for i := uint64(0); i < 8; i++ {
			for _, pg := range m.OnFault((start + i) % limit) {
				if pg >= limit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMajorityZeroStrideRejected(t *testing.T) {
	m := NewMajority(4, 4, 1<<20)
	for i := 0; i < 10; i++ {
		if got := m.OnFault(42); got != nil {
			t.Fatalf("same-page faults proposed %v", got)
		}
	}
}

func TestMajorityVsStrideOnInterleavedStreams(t *testing.T) {
	// Two interleaved sequential streams defeat the strict detector but
	// not necessarily the majority one when one stream dominates.
	strict := NewStride(3, 4, 1<<20)
	maj := NewMajority(7, 4, 1<<20)
	seq := []uint64{10, 11, 12, 13, 5000, 14, 15, 16, 6000, 17, 18, 19}
	strictHits, majHits := 0, 0
	for _, pg := range seq {
		strictHits += len(strict.OnFault(pg))
		majHits += len(maj.OnFault(pg))
	}
	if majHits <= strictHits {
		t.Errorf("majority (%d proposals) should beat strict (%d) on noisy streams",
			majHits, strictHits)
	}
}
