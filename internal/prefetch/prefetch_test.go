package prefetch

import (
	"testing"
	"testing/quick"
)

func TestNoneNeverPrefetches(t *testing.T) {
	var n None
	for pg := uint64(0); pg < 100; pg++ {
		if got := n.OnFault(pg); got != nil {
			t.Fatalf("None proposed %v", got)
		}
	}
}

func TestStrideDetectsSequential(t *testing.T) {
	s := NewStride(3, 8, 1<<20)
	var got []uint64
	for pg := uint64(100); pg < 104; pg++ {
		got = s.OnFault(pg)
	}
	if len(got) == 0 {
		t.Fatal("sequential run not detected")
	}
	for i, pg := range got {
		if pg != 104+uint64(i) {
			t.Errorf("prefetch[%d] = %d, want %d", i, pg, 104+i)
		}
	}
}

func TestStrideDetectsBackward(t *testing.T) {
	s := NewStride(3, 4, 1<<20)
	var got []uint64
	for _, pg := range []uint64{500, 499, 498, 497} {
		got = s.OnFault(pg)
	}
	if len(got) == 0 || got[0] != 496 {
		t.Errorf("backward stride proposals = %v", got)
	}
}

func TestStrideDetectsLargeStride(t *testing.T) {
	s := NewStride(3, 2, 1<<20)
	var got []uint64
	for _, pg := range []uint64{0, 7, 14, 21} {
		got = s.OnFault(pg)
	}
	if len(got) != 2 || got[0] != 28 || got[1] != 35 {
		t.Errorf("stride-7 proposals = %v", got)
	}
}

func TestRandomPatternNotDetected(t *testing.T) {
	s := NewStride(3, 8, 1<<20)
	issued := 0
	for _, pg := range []uint64{3, 77, 12, 9000, 41, 6, 523, 88, 2, 1000} {
		issued += len(s.OnFault(pg))
	}
	if issued != 0 {
		t.Errorf("random faults produced %d prefetches", issued)
	}
}

func TestDegreeRampsUpAndResets(t *testing.T) {
	s := NewStride(2, 16, 1<<20)
	var sizes []int
	for pg := uint64(0); pg < 8; pg++ {
		if got := s.OnFault(pg); got != nil {
			sizes = append(sizes, len(got))
		}
	}
	if len(sizes) < 3 {
		t.Fatalf("too few detections: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Errorf("degree should ramp: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != 16 {
		t.Errorf("final degree = %d, want 16 (cap)", sizes[len(sizes)-1])
	}
	// A break in the pattern resets the ramp.
	s.OnFault(1 << 19)
	s.OnFault(100)
	s.OnFault(101)
	got := s.OnFault(102)
	if len(got) > 2 {
		t.Errorf("degree after reset = %d, want <= 2", len(got))
	}
}

func TestProposalsRespectLimit(t *testing.T) {
	f := func(startRaw uint16, limitRaw uint16) bool {
		limit := uint64(limitRaw) + 8
		start := uint64(startRaw) % limit
		s := NewStride(2, 8, limit)
		var all []uint64
		for i := uint64(0); i < 6; i++ {
			all = append(all, s.OnFault((start+i)%limit)...)
		}
		for _, pg := range all {
			if pg >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroStrideIgnored(t *testing.T) {
	s := NewStride(2, 8, 1<<20)
	for i := 0; i < 10; i++ {
		if got := s.OnFault(42); got != nil {
			t.Fatalf("repeated same-page faults proposed %v", got)
		}
	}
}
