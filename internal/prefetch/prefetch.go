// Package prefetch implements the fault-address pattern-matching
// prefetcher the paper's systems use for regular access patterns (§6.2):
// "they record past fault-in virtual addresses to detect sequential
// access patterns".
//
// Each application thread owns one detector. On every major fault, the
// detector inspects its recent fault history; if the strides agree, it
// proposes up to Degree pages ahead along the detected stride, ramping the
// window up on repeated success like Linux readahead.
package prefetch

import "mage/internal/stats"

// Detector proposes prefetch candidates from a fault-address stream.
type Detector interface {
	// OnFault records a major fault at page and returns pages to prefetch
	// (possibly none).
	OnFault(page uint64) []uint64
}

// None is a Detector that never prefetches.
type None struct{}

// OnFault always returns nil.
func (None) OnFault(uint64) []uint64 { return nil }

// Majority is a Leap-style prefetcher (Maruf & Chowdhury, ATC'20, the
// paper's [44]): instead of requiring a perfectly constant stride, it
// takes the majority stride over a recent fault window, tolerating
// interleaved noise — the behaviour that lets Leap prefetch through
// multi-threaded fault streams.
type Majority struct {
	// Window is the fault-history length examined per decision.
	Window int
	// Degree is the number of pages proposed on a majority hit.
	Degree int
	// Limit is the exclusive upper bound of valid page numbers.
	Limit uint64

	hist []uint64

	// Detections counts faults where a majority stride existed.
	Detections stats.Counter
	// Issued counts proposed prefetch pages.
	Issued stats.Counter
}

// NewMajority returns a majority-stride detector.
func NewMajority(window, degree int, limit uint64) *Majority {
	if window < 3 {
		window = 3
	}
	if degree < 1 {
		degree = 1
	}
	return &Majority{Window: window, Degree: degree, Limit: limit}
}

// OnFault implements Detector using the Boyer-Moore majority vote over
// the window's strides.
func (m *Majority) OnFault(page uint64) []uint64 {
	m.hist = append(m.hist, page)
	if len(m.hist)-1 > m.Window {
		m.hist = m.hist[1:]
	}
	if len(m.hist)-1 < m.Window {
		return nil
	}
	// Boyer-Moore majority candidate over strides.
	var cand int64
	count := 0
	for i := 1; i < len(m.hist); i++ {
		d := int64(m.hist[i]) - int64(m.hist[i-1])
		if count == 0 {
			cand, count = d, 1
		} else if d == cand {
			count++
		} else {
			count--
		}
	}
	if cand == 0 {
		return nil
	}
	// Verify it is a true majority.
	occur := 0
	for i := 1; i < len(m.hist); i++ {
		if int64(m.hist[i])-int64(m.hist[i-1]) == cand {
			occur++
		}
	}
	if occur*2 <= m.Window {
		return nil
	}
	m.Detections.Inc()
	var out []uint64
	next := int64(page)
	for i := 0; i < m.Degree; i++ {
		next += cand
		if next < 0 || uint64(next) >= m.Limit {
			break
		}
		out = append(out, uint64(next))
	}
	m.Issued.Add(uint64(len(out)))
	return out
}

// Stride detects constant-stride fault sequences.
type Stride struct {
	// MatchLen is how many consecutive equal strides trigger prefetch.
	MatchLen int
	// MaxDegree caps the ramped prefetch distance.
	MaxDegree int
	// Limit is the exclusive upper bound of valid page numbers.
	Limit uint64

	hist   []uint64
	degree int

	// Detections counts faults where a pattern was recognized.
	Detections stats.Counter
	// Issued counts proposed prefetch pages.
	Issued stats.Counter
}

// NewStride returns a detector requiring matchLen consistent strides and
// prefetching up to maxDegree pages within [0, limit).
func NewStride(matchLen, maxDegree int, limit uint64) *Stride {
	if matchLen < 2 {
		matchLen = 2
	}
	if maxDegree < 1 {
		maxDegree = 1
	}
	return &Stride{MatchLen: matchLen, MaxDegree: maxDegree, Limit: limit, degree: 2}
}

// OnFault implements Detector.
func (s *Stride) OnFault(page uint64) []uint64 {
	s.hist = append(s.hist, page)
	if len(s.hist)-1 > s.MatchLen {
		s.hist = s.hist[1:]
	}
	if len(s.hist)-1 < s.MatchLen {
		return nil
	}
	stride := int64(s.hist[1]) - int64(s.hist[0])
	if stride == 0 {
		return nil
	}
	for i := 2; i < len(s.hist); i++ {
		if int64(s.hist[i])-int64(s.hist[i-1]) != stride {
			s.degree = 2 // pattern broken: reset ramp
			return nil
		}
	}
	s.Detections.Inc()
	var out []uint64
	next := int64(page)
	for i := 0; i < s.degree; i++ {
		next += stride
		if next < 0 || uint64(next) >= s.Limit {
			break
		}
		out = append(out, uint64(next))
	}
	// Ramp up on sustained success, like readahead window doubling.
	if s.degree < s.MaxDegree {
		s.degree *= 2
		if s.degree > s.MaxDegree {
			s.degree = s.MaxDegree
		}
	}
	s.Issued.Add(uint64(len(out)))
	return out
}
