// Package apic models the interrupt-delivery fabric used for TLB
// shootdowns (§3.3.1 of the paper).
//
// The model captures the three effects the paper measures:
//
//  1. Sends are serialized at the sender ("the OS delivers IPIs to each
//     remote core one by one via the APIC"), so a broadcast to many cores
//     occupies the initiating CPU proportionally.
//  2. Each target core handles interrupts one at a time. Concurrent
//     shootdowns from many initiators queue at the target's interrupt
//     inbox; this queueing is the "IPI storm" that inflates per-IPI latency
//     by an order of magnitude at high thread counts.
//  3. Delivery latency is NUMA-dependent (higher across sockets) and, for
//     virtualized systems, every delivered IPI pays a VM-exit surcharge.
package apic

import (
	"mage/internal/sim"
	"mage/internal/stats"
	"mage/internal/topo"
)

// Costs parameterizes the fabric. All values are virtual nanoseconds.
type Costs struct {
	// SendCost is the CPU time to issue one IPI at the sender.
	SendCost sim.Time
	// DeliverySameSocket is the wire latency to a core on the same socket.
	DeliverySameSocket sim.Time
	// DeliveryCrossSocket is the wire latency across sockets.
	DeliveryCrossSocket sim.Time
	// AckLatency is the time for the completion signal to travel back.
	AckLatency sim.Time
	// VMExit is added per delivered IPI when the receiving OS runs in a VM
	// (each IPI forces a VM exit, ~1200 cycles in the paper).
	VMExit sim.Time
}

// DefaultCosts returns values calibrated against the paper's bare-metal
// measurements (per-IPI latency ~1 µs uncontended, growing ~33× under
// 48-thread storms through queueing).
func DefaultCosts() Costs {
	return Costs{
		SendCost:            150,
		DeliverySameSocket:  950,
		DeliveryCrossSocket: 1900,
		AckLatency:          250,
	}
}

// Fabric delivers IPIs between cores of one machine.
type Fabric struct {
	eng     *sim.Engine
	machine *topo.Machine
	costs   Costs
	inbox   []*sim.Mutex // per-core interrupt serialization

	// IPIsSent counts individual IPIs (one per target per broadcast).
	IPIsSent stats.Counter
	// DeliveryLatency records, per IPI, the time from issue to handler
	// completion (includes inbox queueing) — the quantity in Fig 7.
	DeliveryLatency *stats.Histogram
}

// NewFabric builds a fabric over machine.
func NewFabric(eng *sim.Engine, machine *topo.Machine, costs Costs) *Fabric {
	f := &Fabric{
		eng:             eng,
		machine:         machine,
		costs:           costs,
		DeliveryLatency: stats.NewHistogram(),
	}
	for i := 0; i < machine.NumCores(); i++ {
		f.inbox = append(f.inbox, sim.NewMutex(eng, "irq-inbox"))
	}
	return f
}

// Costs returns the fabric's cost parameters.
func (f *Fabric) Costs() Costs { return f.costs }

// Completion is the handle for an asynchronous broadcast: it becomes done
// when every target has acknowledged.
type Completion struct {
	pending int
	q       *sim.WaitQueue
}

// Done reports whether all acks have arrived.
func (c *Completion) Done() bool { return c.pending == 0 }

// Wait blocks p until all acks have arrived.
func (c *Completion) Wait(p *sim.Proc) {
	for c.pending > 0 {
		c.q.Wait(p)
	}
}

// Post issues one IPI from core `from` to every core in targets and
// returns without waiting for acknowledgements. The sender still pays the
// serialized per-target send cost synchronously (issuing IPIs is CPU
// work); only the delivery/handler/ack round trip is asynchronous. This
// split is what lets MAGE's pipelined evictor overlap shootdown waits
// with work on other batches (Fig 8, steps ②–③).
func (f *Fabric) Post(p *sim.Proc, from topo.CoreID, targets []topo.CoreID, handlerCost sim.Time) *Completion {
	c := &Completion{
		pending: len(targets),
		q:       sim.NewWaitQueue(f.eng, "ipi-acks"),
	}
	for _, tgt := range targets {
		// The sender is busy issuing this IPI before moving to the next.
		p.Sleep(f.costs.SendCost)
		f.IPIsSent.Inc()

		tgt := tgt
		issued := p.Now()
		delivery := f.costs.DeliverySameSocket
		if !f.machine.SameSocket(from, tgt) {
			delivery = f.costs.DeliveryCrossSocket
		}
		f.eng.Spawn("ipi", func(ip *sim.Proc) {
			ip.Sleep(delivery + f.costs.VMExit)
			inbox := f.inbox[tgt]
			inbox.Lock(ip)
			ip.Sleep(handlerCost)
			f.machine.Core(tgt).Steal(int64(handlerCost + f.costs.VMExit))
			inbox.Unlock(ip)
			f.DeliveryLatency.Record(int64(ip.Now() - issued))
			ip.Sleep(f.costs.AckLatency)
			c.pending--
			if c.pending == 0 {
				c.q.Broadcast()
			}
		})
	}
	return c
}

// Broadcast issues one IPI from core `from` to every core in targets,
// executing a handler of handlerCost on each, and blocks p until every
// target has acknowledged. It returns the total virtual time the broadcast
// took. Handler time is charged as stolen cycles to each target core.
//
// A broadcast with no targets returns immediately.
func (f *Fabric) Broadcast(p *sim.Proc, from topo.CoreID, targets []topo.CoreID, handlerCost sim.Time) sim.Time {
	if len(targets) == 0 {
		return 0
	}
	start := p.Now()
	f.Post(p, from, targets, handlerCost).Wait(p)
	return p.Now() - start
}

// InboxQueueLen returns the number of IPIs waiting at a core, for tests.
func (f *Fabric) InboxQueueLen(c topo.CoreID) int {
	return f.inbox[c].QueueLen()
}
