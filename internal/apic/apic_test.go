package apic

import (
	"testing"

	"mage/internal/sim"
	"mage/internal/topo"
)

func testFabric(sockets, cps int) (*sim.Engine, *Fabric, *topo.Machine) {
	eng := sim.NewEngine()
	m := topo.NewMachine(sockets, cps)
	return eng, NewFabric(eng, m, DefaultCosts()), m
}

func TestBroadcastNoTargets(t *testing.T) {
	eng, f, _ := testFabric(1, 4)
	eng.Spawn("init", func(p *sim.Proc) {
		if d := f.Broadcast(p, 0, nil, 500); d != 0 {
			t.Errorf("empty broadcast took %v", d)
		}
	})
	eng.Run()
	if f.IPIsSent.Value() != 0 {
		t.Errorf("IPIsSent = %d", f.IPIsSent.Value())
	}
}

func TestBroadcastSingleTargetLatency(t *testing.T) {
	eng, f, _ := testFabric(1, 4)
	c := DefaultCosts()
	handler := sim.Time(400)
	var took sim.Time
	eng.Spawn("init", func(p *sim.Proc) {
		took = f.Broadcast(p, 0, []topo.CoreID{1}, handler)
	})
	eng.Run()
	want := c.SendCost + c.DeliverySameSocket + handler + c.AckLatency
	if took != want {
		t.Errorf("broadcast latency = %v, want %v", took, want)
	}
	if f.IPIsSent.Value() != 1 {
		t.Errorf("IPIsSent = %d, want 1", f.IPIsSent.Value())
	}
}

func TestCrossSocketSlower(t *testing.T) {
	eng, f, _ := testFabric(2, 2)
	var same, cross sim.Time
	eng.Spawn("init", func(p *sim.Proc) {
		same = f.Broadcast(p, 0, []topo.CoreID{1}, 100)
		cross = f.Broadcast(p, 0, []topo.CoreID{2}, 100)
	})
	eng.Run()
	if cross <= same {
		t.Errorf("cross-socket (%v) should exceed same-socket (%v)", cross, same)
	}
	wantDiff := DefaultCosts().DeliveryCrossSocket - DefaultCosts().DeliverySameSocket
	if cross-same != wantDiff {
		t.Errorf("difference = %v, want %v", cross-same, wantDiff)
	}
}

func TestSerializedSends(t *testing.T) {
	eng, f, _ := testFabric(1, 8)
	c := DefaultCosts()
	targets := []topo.CoreID{1, 2, 3, 4, 5, 6, 7}
	var took sim.Time
	eng.Spawn("init", func(p *sim.Proc) {
		took = f.Broadcast(p, 0, targets, 100)
	})
	eng.Run()
	// The last IPI leaves after 7 send slots; its round trip bounds the
	// broadcast.
	minWant := 7*c.SendCost + c.DeliverySameSocket + 100 + c.AckLatency
	if took < minWant {
		t.Errorf("broadcast = %v, want >= %v (serialized sends)", took, minWant)
	}
}

func TestVMExitSurcharge(t *testing.T) {
	eng := sim.NewEngine()
	m := topo.NewMachine(1, 2)
	costs := DefaultCosts()
	costs.VMExit = 550
	f := NewFabric(eng, m, costs)
	var took sim.Time
	eng.Spawn("init", func(p *sim.Proc) {
		took = f.Broadcast(p, 0, []topo.CoreID{1}, 100)
	})
	eng.Run()
	bare := costs.SendCost + costs.DeliverySameSocket + 100 + costs.AckLatency
	if took != bare+550 {
		t.Errorf("virtualized broadcast = %v, want %v", took, bare+550)
	}
}

func TestIPIStormQueuesAtTarget(t *testing.T) {
	// Many initiators targeting one core must queue: mean delivery latency
	// grows well beyond the uncontended value.
	eng, f, _ := testFabric(1, 16)
	handler := sim.Time(1000)
	for i := 1; i < 16; i++ {
		i := i
		eng.Spawn("sender", func(p *sim.Proc) {
			f.Broadcast(p, topo.CoreID(i), []topo.CoreID{0}, handler)
		})
	}
	eng.Run()
	uncontended := int64(DefaultCosts().DeliverySameSocket + handler)
	if f.DeliveryLatency.Max() < 5*uncontended {
		t.Errorf("max delivery latency %d under storm, want >= %d (queueing)",
			f.DeliveryLatency.Max(), 5*uncontended)
	}
	if f.DeliveryLatency.Count() != 15 {
		t.Errorf("recorded %d IPIs, want 15", f.DeliveryLatency.Count())
	}
}

func TestHandlerStealsTargetTime(t *testing.T) {
	eng, f, m := testFabric(1, 2)
	eng.Spawn("init", func(p *sim.Proc) {
		f.Broadcast(p, 0, []topo.CoreID{1}, 700)
	})
	eng.Run()
	if got := m.Core(1).DrainStolen(); got != 700 {
		t.Errorf("stolen = %d, want 700", got)
	}
	if m.Core(1).IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", m.Core(1).IRQs)
	}
}

func TestConcurrentBroadcastsComplete(t *testing.T) {
	eng, f, _ := testFabric(2, 4)
	all := []topo.CoreID{0, 1, 2, 3, 4, 5, 6, 7}
	doneCount := 0
	for i := 0; i < 8; i++ {
		i := i
		eng.Spawn("sender", func(p *sim.Proc) {
			var tgts []topo.CoreID
			for _, c := range all {
				if c != topo.CoreID(i) {
					tgts = append(tgts, c)
				}
			}
			f.Broadcast(p, topo.CoreID(i), tgts, 300)
			doneCount++
		})
	}
	eng.Run()
	if doneCount != 8 {
		t.Errorf("only %d/8 broadcasts completed", doneCount)
	}
	if f.IPIsSent.Value() != 8*7 {
		t.Errorf("IPIsSent = %d, want 56", f.IPIsSent.Value())
	}
}
