package placement

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"testing"
)

func TestKeyPacking(t *testing.T) {
	k := Key(3, 7)
	if k != 3<<KeyPageBits|7 {
		t.Fatalf("Key(3,7) = %#x", k)
	}
	// Page numbers beyond the page field must not corrupt the handle.
	k = Key(1, 1<<KeyPageBits+5)
	if k>>KeyPageBits != 1 || k&(1<<KeyPageBits-1) != 5 {
		t.Fatalf("overflowing page leaked into handle: %#x", k)
	}
}

func TestShardOfRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for key := uint64(0); key < 4096; key++ {
			s := ShardOf(key, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", key, n, s)
			}
		}
	}
	if ShardOf(1, 0) != -1 || ShardOf(1, -3) != -1 {
		t.Fatal("non-positive shard count must map to -1")
	}
}

// TestShardOfBalance checks rendezvous hashing spreads keys roughly
// evenly: no shard may hold more than 2x or less than half its fair
// share over a large key sample.
func TestShardOfBalance(t *testing.T) {
	const n, keys = 5, 100000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[ShardOf(Key(1, uint64(i)), n)]++
	}
	fair := keys / n
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d holds %d keys (fair share %d)", s, c, fair)
		}
	}
}

// TestShardOfBoundedMigration is the rendezvous property rebalancing
// relies on: growing N shards to N+1 moves only the keys the new shard
// wins — about 1/(N+1) of them — and every moved key lands on the new
// shard.
func TestShardOfBoundedMigration(t *testing.T) {
	const oldN, keys = 4, 50000
	moved := 0
	for i := 0; i < keys; i++ {
		key := Key(2, uint64(i))
		if MovedKey(key, oldN, oldN+1) {
			moved++
			if got := ShardOf(key, oldN+1); got != oldN {
				t.Fatalf("key %#x moved to shard %d, not the new shard", key, got)
			}
		}
	}
	fair := keys / (oldN + 1)
	if moved < fair/2 || moved > fair*2 {
		t.Errorf("migration moved %d keys, expected about %d", moved, fair)
	}
}

func TestSelectReplicaHealthMask(t *testing.T) {
	w := []int64{100, 100, 100}
	for key := uint64(0); key < 1000; key++ {
		i := SelectReplica(key, 0, w, []bool{false, true, false})
		if i != 1 {
			t.Fatalf("only replica 1 healthy, selected %d", i)
		}
	}
	if i := SelectReplica(7, 0, w, []bool{false, false, false}); i != -1 {
		t.Fatalf("no healthy replicas must select -1, got %d", i)
	}
	if i := SelectReplica(7, 0, nil, nil); i != -1 {
		t.Fatalf("empty topology must select -1, got %d", i)
	}
}

// TestSelectReplicaWeighting checks the memory-weighted property: a
// replica reporting twice the free bytes receives roughly twice the
// keys.
func TestSelectReplicaWeighting(t *testing.T) {
	const keys = 200000
	w := []int64{1 << 30, 2 << 30}
	healthy := []bool{true, true}
	counts := [2]int{}
	for i := 0; i < keys; i++ {
		counts[SelectReplica(Key(1, uint64(i)), 0, w, healthy)]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("weight-2x replica drew %.2fx the keys (counts %v), want ~2x", ratio, counts)
	}
}

// TestSelectReplicaFailoverRedraw: bumping attempt must be able to
// reach the other replica even with equal weights (one-retry failover
// must not deterministically re-pick the replica that just failed).
func TestSelectReplicaFailoverRedraw(t *testing.T) {
	w := []int64{100, 100}
	healthy := []bool{true, true}
	redraws := 0
	for key := uint64(0); key < 1000; key++ {
		if SelectReplica(key, 0, w, healthy) != SelectReplica(key, 1, w, healthy) {
			redraws++
		}
	}
	if redraws < 250 {
		t.Errorf("attempt perturbation re-drew only %d/1000 keys", redraws)
	}
}

// placementDigest hashes a canonical sweep of placement decisions.
// The golden value pins byte-identical behavior across runs, processes,
// and refactors: any change to the hash, the clamping, or the score
// arithmetic shows up as a digest change that must be deliberate
// (rebalancing every deployed key is the cost of changing it).
func placementDigest() string {
	h := sha256.New()
	var b [8]byte
	weights := []int64{0, -5, 1 << 20, 1 << 62, 4096}
	healthy := []bool{true, true, true, true, true}
	for key := uint64(0); key < 20000; key++ {
		k := Key(key%7, key)
		binary.LittleEndian.PutUint64(b[:], uint64(ShardOf(k, 5)))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(SelectReplica(k, int(key%3), weights, healthy)))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestPlacementByteIdenticalAcrossWorkers computes the placement
// digest sequentially and from a pool of concurrent goroutines and
// requires the same bytes: placement is pure, so worker count and
// interleaving must be invisible. The sequential digest is also
// pinned, so a run today must match a run from any other process.
func TestPlacementByteIdenticalAcrossWorkers(t *testing.T) {
	seq := placementDigest()
	const workers = 8
	var wg sync.WaitGroup
	digests := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			digests[w] = placementDigest()
		}(w)
	}
	wg.Wait()
	for w, d := range digests {
		if d != seq {
			t.Fatalf("worker %d digest %s != sequential %s", w, d, seq)
		}
	}
	// Golden pin: a drift here means deployed keys would re-place, which
	// is a full-cluster migration. Change it only deliberately.
	const golden = "9cc1a75d3246bc9b8b171b6d8df54db7395db9204650c30ea80e938db123a7c6"
	if seq != golden {
		t.Fatalf("placement digest drifted: got %s, pinned %s", seq, golden)
	}
}

// TestShardOfIDsCanonicalEquivalence pins the documented contract that
// ShardOfIDs over the canonical identities 1..n places every key
// exactly where ShardOf(key, n) does — the property rebalancing relies
// on when it diffs old and new topologies by stable ID.
func TestShardOfIDsCanonicalEquivalence(t *testing.T) {
	for n := 1; n <= 9; n++ {
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(i) + 1
		}
		for handle := uint64(1); handle <= 3; handle++ {
			for page := uint64(0); page < 4096; page++ {
				k := Key(handle, page)
				if got, want := ShardOfIDs(k, ids), ShardOf(k, n); got != want {
					t.Fatalf("n=%d key=%#x: ShardOfIDs=%d, ShardOf=%d", n, k, got, want)
				}
			}
		}
	}
	if got := ShardOfIDs(Key(1, 1), nil); got != -1 {
		t.Fatalf("ShardOfIDs(empty) = %d, want -1", got)
	}
}
