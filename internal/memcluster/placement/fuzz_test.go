package placement

import (
	"encoding/binary"
	"testing"
)

// FuzzShardOf: any (key, n) pair must map into [0, n) for positive n
// and -1 otherwise, and the mapping must be stable call to call.
func FuzzShardOf(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(1)<<63, 3)
	f.Add(^uint64(0), 1024)
	f.Add(uint64(42), 0)
	f.Add(uint64(42), -7)
	f.Fuzz(func(t *testing.T, key uint64, n int) {
		if n > 1<<16 {
			n = 1 << 16 // bound the O(n) scan, not the property
		}
		s := ShardOf(key, n)
		if n <= 0 {
			if s != -1 {
				t.Fatalf("ShardOf(%#x, %d) = %d, want -1", key, n, s)
			}
			return
		}
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%#x, %d) = %d out of range", key, n, s)
		}
		if again := ShardOf(key, n); again != s {
			t.Fatalf("ShardOf unstable: %d then %d", s, again)
		}
	})
}

// FuzzSelectReplica feeds hostile STATS-derived weights (zero,
// negative, maximal) and arbitrary health masks: selection must never
// panic, never return an out-of-range index, never pick an unhealthy
// replica, and must return -1 exactly when nothing is selectable.
func FuzzSelectReplica(f *testing.F) {
	f.Add(uint64(7), 0, []byte{8, 0, 0, 0, 0, 0, 0, 0, 1}, []byte{1})
	f.Add(^uint64(0), 1, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 1}, []byte{1, 0})
	f.Add(uint64(3), -5, []byte{}, []byte{1, 1, 1})
	f.Fuzz(func(t *testing.T, key uint64, attempt int, weightBytes, healthBytes []byte) {
		if len(weightBytes) > 8*64 {
			weightBytes = weightBytes[:8*64]
		}
		if len(healthBytes) > 64 {
			healthBytes = healthBytes[:64]
		}
		weights := make([]int64, len(weightBytes)/8)
		for i := range weights {
			weights[i] = int64(binary.LittleEndian.Uint64(weightBytes[8*i:]))
		}
		healthy := make([]bool, len(healthBytes))
		for i := range healthy {
			healthy[i] = healthBytes[i]&1 == 1
		}
		i := SelectReplica(key, attempt, weights, healthy)
		n := len(healthy)
		if len(weights) < n {
			n = len(weights)
		}
		selectable := false
		for j := 0; j < n; j++ {
			selectable = selectable || healthy[j]
		}
		switch {
		case i == -1:
			if selectable {
				t.Fatalf("returned -1 with healthy replicas (weights %v, healthy %v)", weights, healthy)
			}
		case i < 0 || i >= n:
			t.Fatalf("index %d out of range %d", i, n)
		case !healthy[i]:
			t.Fatalf("selected unhealthy replica %d", i)
		}
		if again := SelectReplica(key, attempt, weights, healthy); again != i {
			t.Fatalf("selection unstable: %d then %d", i, again)
		}
	})
}
