// Package placement is the pure sharding policy shared by the real
// memcluster client and the DES mirror (internal/nic): rendezvous
// (highest-random-weight) hashing of page keys onto shards, and
// deterministic memory-weighted selection among a shard's replicas.
//
// The package is deliberately free of network, clock, and concurrency
// dependencies so the simulation side can import it without dragging
// host-runtime code into deterministic experiments: every function is
// a pure map from its arguments to its result. Determinism is part of
// the contract — the same key against the same topology must place
// identically across runs, processes, and worker counts, because
// rebalancing cost and the DES↔real-cluster parity both hinge on it.
//
// All inputs are treated as hostile: shard/replica counts of zero or
// less, and selection weights that are zero, negative, or absurdly
// huge (a byzantine STATS report) must never panic or yield an
// out-of-range index.
package placement

import "math"

// KeyPageBits is the page-number width of a cluster key, mirroring the
// tenant/page split of the DES fault layer (internal/core): a key is
// regionHandle<<KeyPageBits | pageNo, so one region can span 2^44
// pages and the remaining 20 bits name the region.
const KeyPageBits = 44

// Key packs a region handle and a page number into the 64-bit cluster
// key that shard placement hashes. Page numbers wider than KeyPageBits
// wrap into the handle bits — callers size regions far below that.
func Key(handle uint64, pageNo uint64) uint64 {
	return handle<<KeyPageBits | (pageNo & (1<<KeyPageBits - 1))
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer.
// Rendezvous hashing needs exactly this shape — independent-looking
// scores from (key, shard) pairs — without any table state.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardSalt spreads shard indices far apart in the hash domain before
// mixing, so adjacent indices produce unrelated score streams.
const shardSalt = 0x9e3779b97f4a7c15 // 2^64 / golden ratio

// ShardOf maps key onto one of n shards by rendezvous hashing: the
// shard whose (key, shard) score is highest wins. Adding or removing
// one shard therefore moves only the keys whose winner changed —
// about 1/(n+1) of them — which is what bounds rebalancing migration.
// Equivalent to ShardOfIDs over the canonical ID sequence 1..n.
// n <= 0 returns -1; n == 1 returns 0 without hashing.
func ShardOf(key uint64, n int) int {
	if n <= 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for s := 0; s < n; s++ {
		score := mix64(key ^ (uint64(s)+1)*shardSalt)
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// ShardOfIDs is rendezvous hashing over stable shard identities: the
// returned index is into ids, and a shard's score depends only on
// (key, id) — so removing one ID moves exactly the keys that ID owned,
// and adding one moves only the keys the newcomer wins, regardless of
// position. A cluster whose IDs are the canonical 1..n places
// identically to ShardOf(key, n). Returns -1 for an empty ID set.
// Duplicate IDs resolve to the first occurrence.
func ShardOfIDs(key uint64, ids []uint64) int {
	best := -1
	var bestScore uint64
	for i, id := range ids {
		score := mix64(key ^ id*shardSalt)
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// MovedKey reports whether key changes owner when the shard count goes
// from oldN to newN — the predicate a bounded rebalance iterates.
func MovedKey(key uint64, oldN, newN int) bool {
	return ShardOf(key, oldN) != ShardOf(key, newN)
}

// maxWeight caps a replica's selection weight. STATS reports are wire
// input from a possibly-confused server; clamping keeps the weighted
// score arithmetic inside float64's exact-integer range no matter what
// a node claims its free memory is.
const maxWeight = int64(1) << 50

// clampWeight maps a hostile weight report into [1, maxWeight]: zero
// and negative weights become 1 (still selectable — a full node must
// keep serving reads for pages it already holds), huge ones saturate.
func clampWeight(w int64) int64 {
	if w < 1 {
		return 1
	}
	if w > maxWeight {
		return maxWeight
	}
	return w
}

// SelectReplica picks one replica for key among a shard's replicas,
// weighted by weights[i] (typically the replica's free bytes from its
// last STATS sample) and restricted to replicas where healthy[i].
// attempt perturbs the hash so a failover retry (attempt 1, 2, ...)
// deterministically re-draws rather than re-picking the same loser
// when weights tie. Selection is weighted rendezvous: each replica
// scores -w/ln(u) with u derived from (key, replica, attempt), and
// the highest score wins — so a replica with twice the free memory
// receives about twice the keys, yet any single key's choice is
// stable while weights and health hold.
//
// Returns -1 when no replica is healthy (the caller degrades to
// scanning all replicas). len(weights) and len(healthy) may disagree;
// the shorter bound wins and missing entries read as unhealthy.
func SelectReplica(key uint64, attempt int, weights []int64, healthy []bool) int {
	n := len(healthy)
	if len(weights) < n {
		n = len(weights)
	}
	best := -1
	bestScore := 0.0
	for i := 0; i < n; i++ {
		if !healthy[i] {
			continue
		}
		score := replicaScore(key, attempt, i, weights[i])
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// replicaScore is the weighted-rendezvous score of one replica for one
// (key, attempt) draw. Exposed to tests via SelectReplica only.
func replicaScore(key uint64, attempt, replica int, weight int64) float64 {
	h := mix64(key ^ (uint64(replica)+1)*shardSalt ^ uint64(attempt)<<56)
	// Map the hash into u ∈ (0, 1): the +1/+2 offsets keep u off both
	// endpoints, so ln(u) is finite and negative.
	u := (float64(h>>11) + 1) / (float64(1<<53) + 2)
	return -float64(clampWeight(weight)) / logApprox(u)
}

// logApprox is a deterministic natural log for u ∈ (0, 1): frexp-style
// range reduction to [1, 2) plus an atanh-series polynomial. Stdlib
// math.Log would do, but an explicit fixed-operation-order
// implementation makes the cross-platform determinism the package
// promises inspectable rather than assumed.
func logApprox(u float64) float64 {
	// Decompose u = m * 2^e with m in [1, 2). u is a positive normal
	// float here (the caller's construction guarantees it), so bit
	// surgery on the IEEE representation is exact.
	bits := math.Float64bits(u)
	e := int((bits>>52)&0x7ff) - 1023
	m := math.Float64frombits(bits&^(uint64(0x7ff)<<52) | 1023<<52)
	// ln(m) via atanh series: t = (m-1)/(m+1), ln(m) = 2t(1 + t²/3 + t⁴/5 + ...).
	t := (m - 1) / (m + 1)
	t2 := t * t
	s := 1.0 + t2/3 + t2*t2/5 + t2*t2*t2/7 + t2*t2*t2*t2/9 + t2*t2*t2*t2*t2/11
	const ln2 = 0.6931471805599453
	return 2*t*s + float64(e)*ln2
}
