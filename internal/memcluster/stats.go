package memcluster

import (
	"sync/atomic" //magevet:ok lock-free robustness counters on a real network client
	"time"
)

// clusterCounters are the cluster-wide robustness counters, atomic so
// the data path never serializes on a stats lock.
type clusterCounters struct {
	failovers       atomic.Uint64
	flaps           atomic.Uint64
	readmissions    atomic.Uint64
	rebalancedPages atomic.Uint64
	degradedWrites  atomic.Uint64
}

// ReplicaStats is one replica's health and robustness snapshot.
type ReplicaStats struct {
	Addr      string
	Healthy   bool
	Resyncing bool
	// FreeBytes and InFlight are the replica's last STATS sample (its
	// current selection weight and load signal).
	FreeBytes int64
	InFlight  int64
	// Failovers counts ops that abandoned this replica for a peer.
	Failovers uint64
	// Flaps counts healthy→down transitions.
	Flaps uint64
	// Resyncs counts completed re-admissions.
	Resyncs uint64
	// DegradedNs is the total time this replica has spent down
	// (including the current outage when still down).
	DegradedNs int64
}

// ShardStats groups the replica snapshots of one shard.
type ShardStats struct {
	ID       uint64
	Replicas []ReplicaStats
}

// ClusterStats is a point-in-time snapshot of the cluster's topology
// and robustness counters.
type ClusterStats struct {
	Shards   int
	Replicas int // total replica count across shards
	// Failovers counts data-path ops that demoted a replica and moved
	// on to a peer.
	Failovers uint64
	// ProbeFlaps counts healthy→down transitions from any cause.
	ProbeFlaps uint64
	// Readmissions counts down replicas brought back (post-resync).
	Readmissions uint64
	// RebalancedPages counts pages copied by resyncs and shard
	// join/leave migrations.
	RebalancedPages uint64
	// DegradedWrites counts writes acknowledged by fewer replicas
	// than the shard's full healthy set at op start.
	DegradedWrites uint64
	// DegradedNs sums every replica's down time.
	DegradedNs int64
	PerShard   []ShardStats
}

// Stats snapshots the cluster counters and per-replica health.
func (cl *Cluster) Stats() ClusterStats {
	cl.topoMu.RLock()
	topo := cl.topo
	cl.topoMu.RUnlock()
	now := time.Now() //magevet:ok degraded-time accounting on a real network client
	st := ClusterStats{
		Shards:          len(topo.shards),
		Failovers:       cl.stats.failovers.Load(),
		ProbeFlaps:      cl.stats.flaps.Load(),
		Readmissions:    cl.stats.readmissions.Load(),
		RebalancedPages: cl.stats.rebalancedPages.Load(),
		DegradedWrites:  cl.stats.degradedWrites.Load(),
	}
	for _, sh := range topo.shards {
		sh.mu.Lock()
		ss := ShardStats{ID: sh.id}
		for _, r := range sh.replicas {
			rs := ReplicaStats{
				Addr:       r.addr,
				Healthy:    r.healthy,
				Resyncing:  r.resyncing,
				FreeBytes:  r.weight,
				InFlight:   r.inflight,
				Failovers:  r.failovers,
				Flaps:      r.flaps,
				Resyncs:    r.resyncs,
				DegradedNs: r.degradedNs,
			}
			if !r.healthy && !r.downSince.IsZero() {
				rs.DegradedNs += now.Sub(r.downSince).Nanoseconds()
			}
			st.DegradedNs += rs.DegradedNs
			st.Replicas++
			ss.Replicas = append(ss.Replicas, rs)
		}
		sh.mu.Unlock()
		st.PerShard = append(st.PerShard, ss)
	}
	return st
}
