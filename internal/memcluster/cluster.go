// Package memcluster turns N independent memnodes into one far-memory
// pool with the same client surface as a single memnode.Client:
// REGISTER / READ / WRITE / READV / WRITEV against stable region
// handles. Pages are placed by rendezvous hashing of their
// (region, page) key onto shards (internal/memcluster/placement — the
// same pure policy the DES mirror uses), each shard is served by R
// replicas, and the cluster rides the per-node client's
// idempotent-retry machinery underneath its own failover:
//
//   - Reads pick one replica, memory-weighted by each replica's last
//     STATS sample, and fail over to the next replica when a node
//     NACKs or times out — degrading all the way to "try everything
//     including nodes marked down" before an error surfaces.
//   - Writes replicate to every healthy replica of the owning shard;
//     one surviving replica is enough for the write to succeed.
//   - A background prober samples the STATS verb on a fixed cadence,
//     refreshing selection weights, demoting replicas that stop
//     answering, and re-admitting them — after a full resync — with
//     exponential backoff between re-probes.
//
// Consistency model: a page has one logical writer at a time (the
// same contract the memnode pipeline documents), so replicas converge
// per page. A replica that missed writes while down is never read
// (except in last-resort degradation with every replica down) until
// resync copies its shard's pages back from a surviving peer.
package memcluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"        //magevet:ok memcluster is a real network client layered over TCP/shm memnode clients
	"sync/atomic" //magevet:ok lock-free hot-path gates and robustness counters
	"time"

	"mage/internal/memcluster/placement"
	"mage/internal/memnode"
)

// Options tunes the cluster client.
type Options struct {
	// PageBytes is the placement granularity: byte [off, off+1) of a
	// region belongs to the shard owning page off/PageBytes. Default
	// 4096. Ops and batch descriptors may span pages; the cluster
	// splits them along ownership boundaries.
	PageBytes int64
	// Node configures every per-replica memnode client. The zero value
	// gets cluster-appropriate defaults: short dial/IO timeouts and
	// MaxAttempts 2, so one in-client retry rides out a blip and real
	// node failure surfaces fast enough for cluster-level failover.
	Node memnode.Options
	// ProbeInterval is the health/weight refresh cadence. Default
	// 100ms.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the exponential backoff between re-probes
	// of a down replica (the first re-probe comes after one
	// ProbeInterval). Default 2s.
	ProbeBackoffMax time.Duration
	// DisableProber turns the background prober off; tests drive
	// ProbeNow explicitly to make probe timing deterministic.
	DisableProber bool
}

func (o *Options) fillDefaults() {
	if o.PageBytes <= 0 {
		o.PageBytes = 4096
	}
	if o.Node.DialTimeout <= 0 {
		o.Node.DialTimeout = 500 * time.Millisecond
	}
	if o.Node.IOTimeout <= 0 {
		o.Node.IOTimeout = time.Second
	}
	if o.Node.MaxAttempts <= 0 {
		o.Node.MaxAttempts = 2
	}
	if o.Node.BaseBackoff <= 0 {
		o.Node.BaseBackoff = 10 * time.Millisecond
	}
	if o.Node.MaxBackoff <= 0 {
		o.Node.MaxBackoff = 100 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 100 * time.Millisecond
	}
	if o.ProbeBackoffMax <= 0 {
		o.ProbeBackoffMax = 2 * time.Second
	}
}

// ErrClosed is returned by operations on a closed cluster.
var ErrClosed = errors.New("memcluster: cluster closed")

// errAllReplicasFailed wraps the last per-replica error when a shard
// has no replica able to serve an op.
func errAllReplicasFailed(shard int, last error) error {
	return fmt.Errorf("memcluster: shard %d: all replicas failed: %w", shard, last)
}

// replica is one memnode endpoint of a shard. Health, weights, and
// the resync dirty set are guarded by the owning shard's mu; the
// client pointer is written only under mu but read lock-free after
// snapshot (memnode.Client is internally synchronized).
type replica struct {
	addr string
	c    *memnode.Client // nil until the first successful dial

	healthy   bool
	resyncing bool
	weight    int64 // free bytes from the last STATS sample
	inflight  int64 // in-flight depth from the last STATS sample
	downSince time.Time

	// dirty is the resync write-log: cluster keys written to this
	// shard while this replica resyncs. Nil unless resyncing.
	dirty map[uint64]struct{}

	// Prober state (prober goroutine only).
	nextProbe    time.Time
	probeBackoff time.Duration

	// Per-replica counters (owning shard's mu).
	failovers  uint64
	flaps      uint64
	resyncs    uint64
	degradedNs int64
}

// shard is one replica group. mu also serializes write-completion
// bookkeeping (the dirty log) against resync's settle passes.
type shard struct {
	mu       sync.Mutex
	id       uint64 // stable rendezvous identity
	replicas []*replica
	// resyncCount mirrors how many replicas are mid-resync, so the
	// write hot path can skip the dirty-log lock when (as almost
	// always) nothing is resyncing.
	resyncCount atomic.Int32
}

// topology is an immutable shard list; AddShard/RemoveShard swap in a
// fresh one under the cluster's topology lock.
type topology struct {
	shards []*shard
	ids    []uint64 // parallel to shards
}

// cregion is one cluster-level region: the caller's stable handle
// maps to a per-replica handle on every node that has registered it.
// The handle map is copy-on-write (writers serialize on the cluster's
// regMu; readers load the snapshot lock-free) because resync and
// shard joins add handles while the data path is live.
type cregion struct {
	size    int64
	handles atomic.Value // map[*replica]uint64
}

// handle returns r's node-level handle for this region, if r has
// registered it.
func (reg *cregion) handle(r *replica) (uint64, bool) {
	m, _ := reg.handles.Load().(map[*replica]uint64)
	h, ok := m[r]
	return h, ok
}

// setHandle publishes a new replica handle. Caller holds regMu.
func (reg *cregion) setHandle(r *replica, h uint64) {
	old, _ := reg.handles.Load().(map[*replica]uint64)
	m := make(map[*replica]uint64, len(old)+1)
	for k, v := range old { //magevet:ok copy-on-write map clone; order cannot affect the result
		m[k] = v
	}
	m[r] = h
	reg.handles.Store(m)
}

// Cluster is the sharded, replicated far-memory client.
type Cluster struct {
	opts Options

	// topoMu is the op/topology barrier: every public operation runs
	// under RLock for its full duration, so a writer (topology swap,
	// resync's final settle) that takes Lock knows no op is in flight.
	topoMu sync.RWMutex
	topo   *topology
	nextID uint64 // next stable shard ID

	regMu   sync.Mutex
	regions map[uint64]*cregion
	nextReg uint64

	// mig is the live rebalance, nil when none is running. Guarded by
	// migMu (not topoMu: writes record moved-page dirt while holding
	// only their RLock). migOn mirrors mig != nil so the write hot
	// path can skip migMu when no rebalance runs.
	migMu sync.Mutex
	mig   *migration
	migOn atomic.Bool

	closed   chan struct{}
	proberWG sync.WaitGroup
	closeMu  sync.Mutex
	isClosed bool

	stats clusterCounters
}

// New dials a cluster of len(shardAddrs) shards; shardAddrs[i] lists
// the replica addresses of shard i. Nodes that are down at startup
// begin in the down state and are re-admitted by the prober; New only
// fails when a shard has zero reachable replicas (such a shard could
// never serve a page).
func New(shardAddrs [][]string, opts Options) (*Cluster, error) {
	if len(shardAddrs) == 0 {
		return nil, errors.New("memcluster: no shards")
	}
	opts.fillDefaults()
	cl := &Cluster{
		opts:    opts,
		regions: make(map[uint64]*cregion),
		nextReg: 1,
		closed:  make(chan struct{}),
	}
	topo := &topology{}
	cl.nextID = 1
	for si, addrs := range shardAddrs {
		if len(addrs) == 0 {
			cl.teardown(topo)
			return nil, fmt.Errorf("memcluster: shard %d has no replicas", si)
		}
		sh := &shard{id: cl.nextID}
		cl.nextID++
		up := 0
		for _, addr := range addrs {
			r := &replica{addr: addr}
			if c, err := memnode.DialOptions(addr, opts.Node); err == nil {
				r.c = c
				r.healthy = true
				up++
			} else {
				r.downSince = time.Now() //magevet:ok degraded-time accounting on a real network client
				r.probeBackoff = opts.ProbeInterval
			}
			sh.replicas = append(sh.replicas, r)
		}
		if up == 0 {
			cl.teardown(topo)
			_ = closeShard(sh)
			return nil, fmt.Errorf("memcluster: shard %d: no replica reachable", si)
		}
		topo.shards = append(topo.shards, sh)
		topo.ids = append(topo.ids, sh.id)
	}
	cl.topo = topo
	if !opts.DisableProber {
		cl.proberWG.Add(1)
		go cl.proberLoop() //magevet:ok real network client: one health-probe goroutine per cluster
	}
	return cl, nil
}

func closeShard(sh *shard) error {
	var err error
	for _, r := range sh.replicas {
		if r.c != nil {
			if cerr := r.c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

func (cl *Cluster) teardown(topo *topology) {
	for _, sh := range topo.shards {
		_ = closeShard(sh) // constructor failure path; the original error wins
	}
}

// Close stops the prober and closes every per-node client. Pending
// ops fail with the node clients' ErrClosed.
func (cl *Cluster) Close() error {
	cl.closeMu.Lock()
	if cl.isClosed {
		cl.closeMu.Unlock()
		return nil
	}
	cl.isClosed = true
	close(cl.closed)
	cl.closeMu.Unlock()
	cl.proberWG.Wait()
	cl.topoMu.Lock()
	topo := cl.topo
	cl.topoMu.Unlock()
	var err error
	for _, sh := range topo.shards {
		if cerr := closeShard(sh); err == nil {
			err = cerr
		}
	}
	return err
}

func (cl *Cluster) checkClosed() error {
	select {
	case <-cl.closed:
		return ErrClosed
	default:
		return nil
	}
}

// Register sets up a region of size bytes on every reachable replica
// of every shard and returns a stable cluster handle. Every node
// registers the full size — offsets are region-relative everywhere,
// so any node can serve any page it owns without translation.
// Replicas that are down (or fail the register) are left without a
// handle; resync registers the region before re-admitting them.
//
// Registration is not atomic across shards, but it is rolled back:
// when it fails because a shard's replicas all refused, every handle
// already granted by earlier shards' nodes is released with a
// best-effort UNREGISTER, so a failed Register leaks capacity only on
// nodes that are simultaneously unreachable (where resync will not
// re-admit the orphan region anyway). Treat a failed Register as the
// capacity/outage signal it is rather than retrying it in a tight
// loop.
func (cl *Cluster) Register(size int64) (uint64, error) {
	if err := cl.checkClosed(); err != nil {
		return 0, err
	}
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	topo := cl.topo
	reg := &cregion{size: size}
	handles := make(map[*replica]uint64)
	for si, sh := range topo.shards {
		ok := 0
		sh.mu.Lock()
		replicas := append([]*replica(nil), sh.replicas...)
		sh.mu.Unlock()
		for _, r := range replicas {
			if r.c == nil {
				continue
			}
			h, err := r.c.Register(size)
			if err != nil {
				continue
			}
			handles[r] = h
			ok++
		}
		if ok == 0 {
			// Roll back handles already granted by earlier shards' nodes.
			// Best-effort: a replica that fails the unregister keeps the
			// orphan region until its server restarts.
			for r, h := range handles { //magevet:ok best-effort rollback: each handle released exactly once, order cannot matter
				if r.c != nil {
					_ = r.c.Unregister(h) // best-effort; the register error below is the one to surface
				}
			}
			return 0, fmt.Errorf("memcluster: shard %d: register failed on every replica", si)
		}
	}
	reg.handles.Store(handles)
	cl.regMu.Lock()
	handle := cl.nextReg
	cl.nextReg++
	cl.regions[handle] = reg
	cl.regMu.Unlock()
	return handle, nil
}

func (cl *Cluster) region(handle uint64) (*cregion, error) {
	cl.regMu.Lock()
	defer cl.regMu.Unlock()
	reg, ok := cl.regions[handle]
	if !ok {
		return nil, fmt.Errorf("memcluster: unknown region handle %d", handle)
	}
	return reg, nil
}

// seg is one ownership-page-aligned piece of a byte range: it lies
// entirely within the page keyed by key, on shard shardIdx.
type seg struct {
	key      uint64
	shardIdx int
	off      int64 // region offset
	length   int64
	outOff   int64 // offset in the caller's assembled buffer
}

// segments splits [offset, offset+length) along ownership-page
// boundaries and assigns each piece its owning shard under topo.
func (cl *Cluster) segments(topo *topology, handle uint64, offset, length int64) []seg {
	pb := cl.opts.PageBytes
	segs := make([]seg, 0, (length+pb-1)/pb+1)
	var outOff int64
	for length > 0 {
		pageNo := offset / pb
		n := pb - offset%pb
		if n > length {
			n = length
		}
		key := placement.Key(handle, uint64(pageNo))
		segs = append(segs, seg{
			key:      key,
			shardIdx: placement.ShardOfIDs(key, topo.ids),
			off:      offset,
			length:   n,
			outOff:   outOff,
		})
		offset += n
		outOff += n
		length -= n
	}
	return segs
}

// snapshotReplicas copies a shard's selection state out from under its
// lock: the replica list with health and weights as parallel slices.
func snapshotReplicas(sh *shard) (reps []*replica, weights []int64, healthy []bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reps = append(reps, sh.replicas...)
	for _, r := range reps {
		weights = append(weights, r.weight)
		healthy = append(healthy, r.healthy && r.c != nil)
	}
	return reps, weights, healthy
}

// markDown demotes a replica after an op or probe failure. The caller
// reports whether this was a data-path failover (counted) or a probe
// demotion (a flap either way).
func (cl *Cluster) markDown(sh *shard, r *replica, failover bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if failover {
		r.failovers++
		cl.stats.failovers.Add(1)
	}
	if !r.healthy {
		return
	}
	r.healthy = false
	r.downSince = time.Now() //magevet:ok degraded-time accounting on a real network client
	r.flaps++
	cl.stats.flaps.Add(1)
}

// readOne reads [off, off+length) — entirely within one ownership
// page — from shard sh, preferring the memory-weighted pick among
// healthy replicas, failing over through the remaining healthy ones,
// and finally degrading to replicas marked down (a stale answer from
// a survivor beats no answer). The returned buffer follows the
// memnode.Client.Read contract (PutBuf-able).
func (cl *Cluster) readOne(reg *cregion, sh *shard, shardIdx int, key uint64, off, length int64) ([]byte, error) {
	reps, weights, healthy := snapshotReplicas(sh)
	order := selectionOrder(key, reps, weights, healthy)
	var lastErr error
	for _, i := range order {
		r := reps[i]
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		body, err := r.c.Read(h, off, length)
		if err == nil {
			return body, nil
		}
		if memnode.IsTerminal(err) {
			return nil, err
		}
		cl.markDown(sh, r, true)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no replica holds the region")
	}
	return nil, errAllReplicasFailed(shardIdx, lastErr)
}

// writeOne writes data — entirely within one ownership page — to
// every healthy replica of the owning shard. One replica accepting
// the write is success; replicas that fail demote and resync later.
// After completion the page is logged dirty for any replica mid-
// resync, which is what lets resync's final settle pass (run with all
// ops drained) guarantee no missed write.
func (cl *Cluster) writeOne(reg *cregion, sh *shard, shardIdx int, key uint64, off int64, data []byte) error {
	reps, _, healthy := snapshotReplicas(sh)
	acks := 0
	var lastErr error
	type pend struct {
		r *replica
		p *memnode.Pending
	}
	var pends []pend
	for i, r := range reps {
		if !healthy[i] {
			continue
		}
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		pends = append(pends, pend{r, r.c.WriteAsync(h, off, data)})
	}
	// Drain every pending even on a terminal error: an unwaited pending
	// still references the caller's data buffer, and a sibling replica
	// that did apply the write must be dirty-logged for any in-flight
	// resync before this function returns.
	var termErr error
	for _, p := range pends {
		if _, err := p.p.Wait(); err != nil {
			if memnode.IsTerminal(err) {
				if termErr == nil {
					termErr = err
				}
				continue
			}
			cl.markDown(sh, p.r, true)
			lastErr = err
			continue
		}
		acks++
	}
	cl.logDirty(sh, key)
	if termErr != nil {
		return termErr
	}
	if acks == 0 {
		if lastErr == nil {
			lastErr = errors.New("no healthy replica")
		}
		return errAllReplicasFailed(shardIdx, lastErr)
	}
	if lastErr != nil {
		cl.stats.degradedWrites.Add(1)
	}
	return nil
}

// logDirty records a completed write's page for every replica of the
// shard that is mid-resync, and for a live rebalance when the page
// moves shards under the pending topology.
func (cl *Cluster) logDirty(sh *shard, key uint64) {
	if sh.resyncCount.Load() > 0 {
		sh.mu.Lock()
		for _, r := range sh.replicas {
			if r.resyncing {
				if r.dirty == nil {
					r.dirty = make(map[uint64]struct{})
				}
				r.dirty[key] = struct{}{}
			}
		}
		sh.mu.Unlock()
	}
	if cl.migOn.Load() {
		cl.migMu.Lock()
		if m := cl.mig; m != nil {
			if placement.ShardOfIDs(key, m.oldIDs) != placement.ShardOfIDs(key, m.newIDs) {
				m.dirty[key] = struct{}{}
			}
		}
		cl.migMu.Unlock()
	}
}

// Read performs a one-sided read of length bytes at offset, fanning
// out across shards when the range spans ownership pages. The
// returned buffer may be passed to memnode.PutBuf.
func (cl *Cluster) Read(handle uint64, offset, length int64) ([]byte, error) {
	if err := cl.checkClosed(); err != nil {
		return nil, err
	}
	reg, err := cl.region(handle)
	if err != nil {
		return nil, err
	}
	if length <= 0 || offset < 0 || length > reg.size || offset > reg.size-length {
		return nil, fmt.Errorf("memcluster: bad read off=%d len=%d in %d", offset, length, reg.size)
	}
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	topo := cl.topo
	// Fast path: a read inside one ownership page is one node op and
	// returns that node's buffer without reassembly.
	if offset/cl.opts.PageBytes == (offset+length-1)/cl.opts.PageBytes {
		key := placement.Key(handle, uint64(offset/cl.opts.PageBytes))
		si := placement.ShardOfIDs(key, topo.ids)
		return cl.readOne(reg, topo.shards[si], si, key, offset, length)
	}
	segs := cl.segments(topo, handle, offset, length)
	out := make([]byte, length)
	for _, sg := range segs {
		body, err := cl.readOne(reg, topo.shards[sg.shardIdx], sg.shardIdx, sg.key, sg.off, sg.length)
		if err != nil {
			return nil, err
		}
		copy(out[sg.outOff:sg.outOff+sg.length], body)
		memnode.PutBuf(body)
	}
	return out, nil
}

// Write performs a one-sided write, replicated to every healthy
// replica of each owning shard.
func (cl *Cluster) Write(handle uint64, offset int64, data []byte) error {
	if err := cl.checkClosed(); err != nil {
		return err
	}
	reg, err := cl.region(handle)
	if err != nil {
		return err
	}
	length := int64(len(data))
	if length == 0 || offset < 0 || length > reg.size || offset > reg.size-length {
		return fmt.Errorf("memcluster: bad write off=%d len=%d in %d", offset, length, reg.size)
	}
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	topo := cl.topo
	segs := cl.segments(topo, handle, offset, length)
	for _, sg := range segs {
		if err := cl.writeOne(reg, topo.shards[sg.shardIdx], sg.shardIdx, sg.key,
			sg.off, data[sg.outOff:sg.outOff+sg.length]); err != nil {
			return err
		}
	}
	return nil
}

// ReadV reads len(offsets) pages of pageBytes each, grouping the
// descriptors by owning shard and issuing one batched READV per
// shard. Descriptors that straddle an ownership-page boundary fall
// back to the split single-read path. Returned pages each satisfy the
// memnode buffer contract per batch group.
func (cl *Cluster) ReadV(handle uint64, offsets []int64, pageBytes int64) ([][]byte, error) {
	if err := cl.checkClosed(); err != nil {
		return nil, err
	}
	reg, err := cl.region(handle)
	if err != nil {
		return nil, err
	}
	if len(offsets) == 0 || len(offsets) > memnode.MaxBatchPages || pageBytes <= 0 {
		return nil, fmt.Errorf("memcluster: bad batch shape (%d pages of %d bytes)", len(offsets), pageBytes)
	}
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	topo := cl.topo
	pb := cl.opts.PageBytes
	pages := make([][]byte, len(offsets))
	// Group whole-page descriptors by shard; split stragglers.
	byShard := make(map[int][]int)
	for i, off := range offsets {
		if off < 0 || pageBytes > reg.size || off > reg.size-pageBytes {
			return nil, fmt.Errorf("memcluster: batch desc %d out of bounds off=%d len=%d in %d", i, off, pageBytes, reg.size)
		}
		if off/pb != (off+pageBytes-1)/pb {
			// Straddles ownership pages: read via the splitting path.
			body, err := cl.readSpanLocked(reg, topo, handle, off, pageBytes)
			if err != nil {
				return nil, err
			}
			pages[i] = body
			continue
		}
		si := placement.ShardOfIDs(placement.Key(handle, uint64(off/pb)), topo.ids)
		byShard[si] = append(byShard[si], i)
	}
	for si, idxs := range byShard { //magevet:ok per-shard sub-ops are independent; results land by original index
		sort.Ints(idxs)
		offs := make([]int64, len(idxs))
		for j, i := range idxs {
			offs[j] = offsets[i]
		}
		bodies, err := cl.readVShard(reg, topo.shards[si], si, handle, offs, pageBytes)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			pages[i] = bodies[j]
		}
	}
	return pages, nil
}

// readSpanLocked is Read's splitting path for callers already holding
// the topology read lock.
func (cl *Cluster) readSpanLocked(reg *cregion, topo *topology, handle uint64, offset, length int64) ([]byte, error) {
	segs := cl.segments(topo, handle, offset, length)
	out := make([]byte, length)
	for _, sg := range segs {
		body, err := cl.readOne(reg, topo.shards[sg.shardIdx], sg.shardIdx, sg.key, sg.off, sg.length)
		if err != nil {
			return nil, err
		}
		copy(out[sg.outOff:sg.outOff+sg.length], body)
		memnode.PutBuf(body)
	}
	return out, nil
}

// readVShard issues one READV against one shard with the same
// failover ladder as readOne.
func (cl *Cluster) readVShard(reg *cregion, sh *shard, shardIdx int, handle uint64, offs []int64, pageBytes int64) ([][]byte, error) {
	key := placement.Key(handle, uint64(offs[0]/cl.opts.PageBytes))
	reps, weights, healthy := snapshotReplicas(sh)
	order := selectionOrder(key, reps, weights, healthy)
	var lastErr error
	for _, i := range order {
		r := reps[i]
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		bodies, err := r.c.ReadV(h, offs, pageBytes)
		if err == nil {
			return bodies, nil
		}
		if memnode.IsTerminal(err) {
			return nil, err
		}
		cl.markDown(sh, r, true)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no replica holds the region")
	}
	return nil, errAllReplicasFailed(shardIdx, lastErr)
}

// selectionOrder builds readOne's replica ladder: weighted healthy
// draws first, then the degraded tail.
func selectionOrder(key uint64, reps []*replica, weights []int64, healthy []bool) []int {
	order := make([]int, 0, len(reps))
	taken := make([]bool, len(reps))
	mask := append([]bool(nil), healthy...)
	for attempt := 0; attempt < len(reps); attempt++ {
		i := placement.SelectReplica(key, attempt, weights, mask)
		if i == -1 {
			break
		}
		taken[i] = true
		order = append(order, i)
		mask[i] = false //magevet:ok mask is consumed in place by design: each draw excludes prior picks
	}
	for i := range reps {
		if !taken[i] && reps[i].c != nil {
			order = append(order, i)
		}
	}
	return order
}

// WriteV writes len(pages) pages at the matching offsets, one batched
// WRITEV per owning shard per healthy replica.
func (cl *Cluster) WriteV(handle uint64, offsets []int64, pages [][]byte) error {
	if err := cl.checkClosed(); err != nil {
		return err
	}
	reg, err := cl.region(handle)
	if err != nil {
		return err
	}
	if len(pages) == 0 || len(pages) > memnode.MaxBatchPages || len(pages) != len(offsets) {
		return fmt.Errorf("memcluster: bad batch shape (%d offsets, %d pages)", len(offsets), len(pages))
	}
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	topo := cl.topo
	pb := cl.opts.PageBytes
	byShard := make(map[int][]int)
	for i, off := range offsets {
		length := int64(len(pages[i]))
		if length == 0 || off < 0 || length > reg.size || off > reg.size-length {
			return fmt.Errorf("memcluster: batch desc %d out of bounds off=%d len=%d in %d", i, off, length, reg.size)
		}
		if off/pb != (off+length-1)/pb {
			// Straddling descriptor: split it along ownership pages.
			for _, sg := range cl.segments(topo, handle, off, length) {
				if err := cl.writeOne(reg, topo.shards[sg.shardIdx], sg.shardIdx, sg.key,
					sg.off, pages[i][sg.outOff:sg.outOff+sg.length]); err != nil {
					return err
				}
			}
			continue
		}
		si := placement.ShardOfIDs(placement.Key(handle, uint64(off/pb)), topo.ids)
		byShard[si] = append(byShard[si], i)
	}
	for si, idxs := range byShard { //magevet:ok per-shard sub-ops are independent; results land by original index
		sort.Ints(idxs)
		offs := make([]int64, len(idxs))
		pgs := make([][]byte, len(idxs))
		keys := make([]uint64, len(idxs))
		for j, i := range idxs {
			offs[j] = offsets[i]
			pgs[j] = pages[i]
			keys[j] = placement.Key(handle, uint64(offsets[i]/pb))
		}
		if err := cl.writeVShard(reg, topo.shards[si], si, keys, offs, pgs); err != nil {
			return err
		}
	}
	return nil
}

// writeVShard replicates one WRITEV batch to every healthy replica of
// a shard.
func (cl *Cluster) writeVShard(reg *cregion, sh *shard, shardIdx int, keys []uint64, offs []int64, pgs [][]byte) error {
	reps, _, healthy := snapshotReplicas(sh)
	acks := 0
	var lastErr, termErr error
	for i, r := range reps {
		if !healthy[i] {
			continue
		}
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		if err := r.c.WriteV(h, offs, pgs); err != nil {
			if memnode.IsTerminal(err) {
				// Stop replicating (the same arguments would fail the same
				// way) but fall through to the dirty log: a replica that
				// already acked must not leave the batch unlogged for an
				// in-flight resync.
				termErr = err
				break
			}
			cl.markDown(sh, r, true)
			lastErr = err
			continue
		}
		acks++
	}
	for _, k := range keys {
		cl.logDirty(sh, k)
	}
	if termErr != nil {
		return termErr
	}
	if acks == 0 {
		if lastErr == nil {
			lastErr = errors.New("no healthy replica")
		}
		return errAllReplicasFailed(shardIdx, lastErr)
	}
	if lastErr != nil {
		cl.stats.degradedWrites.Add(1)
	}
	return nil
}
