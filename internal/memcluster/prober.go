// Health probing and replica re-admission.
//
// The prober samples every replica's STATS verb on a fixed cadence.
// Healthy replicas refresh their selection weight (free bytes) and
// load signal (in-flight depth); replicas that stop answering are
// demoted. Down replicas are re-probed with exponential backoff, and
// a replica that answers again is re-admitted only after resync —
// copying every page its shard owns back from a surviving peer — so a
// node that restarted (and lost its regions) or merely missed writes
// never serves stale pages.
//
// Resync correctness leans on two mechanisms: the write path logs the
// key of every completed write to a resyncing shard (the dirty log),
// and the final settle pass runs under the cluster's topology write
// lock, which drains all in-flight ops. Every write therefore either
// lands before the bulk copy reads the page, or is in the dirty log
// when the final pass copies it — a missed write is impossible. That
// includes regions registered after the resync began: their writes are
// dirty-logged like any other, and the settle passes resolve dirty
// keys against the live region table (registering the region on the
// target if its own Register attempt missed it), never against the
// bulk copy's snapshot. Unwritten pages of such regions are zero on
// every replica, so the dirty set is exactly what needs copying.
package memcluster

import (
	"errors"
	"time"

	"mage/internal/memcluster/placement"
	"mage/internal/memnode"
)

// proberLoop is the background health prober.
func (cl *Cluster) proberLoop() {
	defer cl.proberWG.Done()
	t := time.NewTimer(cl.opts.ProbeInterval) //magevet:ok real network client: health-probe cadence
	defer t.Stop()
	for {
		select {
		case <-cl.closed:
			return
		case <-t.C:
		}
		cl.ProbeNow()
		t.Reset(cl.opts.ProbeInterval)
	}
}

// ProbeNow runs one probe sweep synchronously: refresh weights of
// healthy replicas, demote the unresponsive, and attempt re-admission
// of down replicas whose backoff has elapsed. Exported so tests (and
// DisableProber configurations) control probe timing explicitly.
func (cl *Cluster) ProbeNow() {
	if cl.checkClosed() != nil {
		return
	}
	cl.topoMu.RLock()
	topo := cl.topo
	cl.topoMu.RUnlock()
	type cand struct {
		sh *shard
		r  *replica
	}
	var readmits []cand
	for _, sh := range topo.shards {
		sh.mu.Lock()
		reps := append([]*replica(nil), sh.replicas...)
		sh.mu.Unlock()
		for _, r := range reps {
			sh.mu.Lock()
			healthy := r.healthy
			resyncing := r.resyncing
			c := r.c
			due := r.nextProbe.IsZero() || time.Now().After(r.nextProbe) //magevet:ok probe-backoff schedule on a real network client
			sh.mu.Unlock()
			if resyncing {
				continue
			}
			if healthy {
				h, err := c.Probe()
				if err != nil {
					if !memnode.IsTerminal(err) {
						cl.markDown(sh, r, false)
					}
					continue
				}
				sh.mu.Lock()
				r.weight, r.inflight = h.FreeBytes, h.InFlight
				sh.mu.Unlock()
				continue
			}
			if !due {
				continue
			}
			if c == nil {
				nc, err := memnode.DialOptions(r.addr, cl.opts.Node)
				if err != nil {
					cl.bumpProbeBackoff(sh, r)
					continue
				}
				sh.mu.Lock()
				r.c = nc
				c = nc
				sh.mu.Unlock()
			}
			if _, err := c.Probe(); err != nil {
				cl.bumpProbeBackoff(sh, r)
				continue
			}
			readmits = append(readmits, cand{sh, r})
		}
	}
	// Resyncs run after the sweep, outside any probe bookkeeping: each
	// takes the topology write lock for its final settle.
	for _, cd := range readmits {
		if err := cl.readmit(cd.sh, cd.r); err != nil {
			cl.bumpProbeBackoff(cd.sh, cd.r)
		}
	}
}

// bumpProbeBackoff doubles a down replica's re-probe delay up to the
// configured cap.
func (cl *Cluster) bumpProbeBackoff(sh *shard, r *replica) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.probeBackoff <= 0 {
		r.probeBackoff = cl.opts.ProbeInterval
	} else {
		r.probeBackoff *= 2
	}
	if r.probeBackoff > cl.opts.ProbeBackoffMax {
		r.probeBackoff = cl.opts.ProbeBackoffMax
	}
	r.nextProbe = time.Now().Add(r.probeBackoff) //magevet:ok probe-backoff schedule on a real network client
}

// resyncBatchPages bounds one resync copy batch: MaxBatchPages or
// whatever number of full pages fits MaxIO, whichever is smaller.
func (cl *Cluster) resyncBatchPages() int {
	n := int(int64(memnode.MaxIO) / cl.opts.PageBytes)
	if n > memnode.MaxBatchPages {
		n = memnode.MaxBatchPages
	}
	if n < 1 {
		n = 1
	}
	return n
}

// readmit brings a down-but-answering replica back: register any
// regions it is missing, bulk-copy every page its shard owns from a
// surviving peer, settle writes that raced the copy, and flip it
// healthy under the drained topology lock.
func (cl *Cluster) readmit(sh *shard, r *replica) error {
	cl.topoMu.RLock()
	topo := cl.topo
	si := -1
	for i, s := range topo.shards {
		if s == sh {
			si = i
			break
		}
	}
	if si == -1 {
		// The shard left the topology while the replica was down.
		cl.topoMu.RUnlock()
		return nil
	}
	// Open the dirty log first, atomically with claiming the resync: a
	// user-driven ProbeNow can race the background prober's sweep, and
	// two overlapping resyncs of one replica would clobber each other's
	// dirty log. Opening it this early only means a few extra logged
	// keys, which the settle passes re-copy harmlessly.
	sh.mu.Lock()
	if r.resyncing || r.healthy {
		sh.mu.Unlock()
		cl.topoMu.RUnlock()
		return nil
	}
	r.resyncing = true
	r.dirty = make(map[uint64]struct{})
	sh.mu.Unlock()
	sh.resyncCount.Add(1)
	abort := func(err error) error {
		closeResync(sh, r)
		cl.topoMu.RUnlock()
		return err
	}
	// Register missing regions first (the node may have restarted and
	// lost everything it knew).
	cl.regMu.Lock()
	regs := make(map[uint64]*cregion, len(cl.regions))
	for h, reg := range cl.regions { //magevet:ok snapshot clone of the region table; order cannot affect the result
		regs[h] = reg
	}
	cl.regMu.Unlock()
	for _, reg := range regs { //magevet:ok registrations are independent; order cannot affect the result
		if _, ok := reg.handle(r); ok {
			continue
		}
		h, err := r.c.Register(reg.size)
		if err != nil {
			return abort(err)
		}
		cl.regMu.Lock()
		reg.setHandle(r, h)
		cl.regMu.Unlock()
	}
	// Bulk copy: every page this shard owns, batched.
	for handle, reg := range regs { //magevet:ok regions copy independently; order cannot affect the result
		if err := cl.copyOwnedPages(topo, si, sh, r, handle, reg); err != nil {
			return abort(err)
		}
	}
	// Settle rounds: re-copy pages written during the bulk copy. Each
	// round shrinks the window; the final round runs under the topology
	// write lock with all ops drained, so nothing can race it.
	for round := 0; ; round++ {
		final := round >= 3
		if final {
			cl.topoMu.RUnlock()
			cl.topoMu.Lock()
			if cl.topo != topo {
				// Topology changed while we waited for the write lock; the
				// new topology may not own the same pages. Stay down and let
				// the next probe restart the resync from scratch.
				cl.topoMu.Unlock()
				closeResync(sh, r)
				return nil
			}
		}
		dirty := swapDirty(sh, r)
		if len(dirty) == 0 && !final {
			round = 2 // nothing raced this round; jump to the final pass
			continue
		}
		err := cl.copyDirty(si, sh, r, dirty)
		if !final {
			if err != nil {
				return abort(err)
			}
			continue
		}
		// Final pass, ops drained. Flip healthy under the same lock.
		if err != nil {
			closeResync(sh, r)
			cl.topoMu.Unlock()
			return err
		}
		cl.admitReplica(sh, r)
		cl.topoMu.Unlock()
		return nil
	}
}

// closeResync clears the resync-in-progress state on r, leaving it
// down; a later probe may start the resync over from scratch.
func closeResync(sh *shard, r *replica) {
	sh.mu.Lock()
	r.resyncing = false
	r.dirty = nil
	sh.mu.Unlock()
	sh.resyncCount.Add(-1)
}

// swapDirty takes the current dirty-page log, installing a fresh one
// so writes racing the copy of the taken set keep being recorded.
func swapDirty(sh *shard, r *replica) map[uint64]struct{} {
	sh.mu.Lock()
	dirty := r.dirty
	r.dirty = make(map[uint64]struct{})
	sh.mu.Unlock()
	return dirty
}

// admitReplica flips a fully-resynced replica healthy and rolls its
// degraded time into the counters. Caller holds the topology write
// lock with all ops drained, so the flip cannot race a missed write.
func (cl *Cluster) admitReplica(sh *shard, r *replica) {
	sh.mu.Lock()
	r.resyncing = false
	r.dirty = nil
	r.healthy = true
	r.probeBackoff = 0
	r.nextProbe = time.Time{}
	if !r.downSince.IsZero() {
		r.degradedNs += time.Since(r.downSince).Nanoseconds() //magevet:ok degraded-time accounting on a real network client
		r.downSince = time.Time{}
	}
	r.resyncs++
	sh.mu.Unlock()
	sh.resyncCount.Add(-1)
	cl.stats.readmissions.Add(1)
}

// copyOwnedPages bulk-copies every page of region handle owned by
// shard si from a surviving replica to the resync target r.
func (cl *Cluster) copyOwnedPages(topo *topology, si int, sh *shard, r *replica, handle uint64, reg *cregion) error {
	pb := cl.opts.PageBytes
	npages := (reg.size + pb - 1) / pb
	batchMax := cl.resyncBatchPages()
	offs := make([]int64, 0, batchMax)
	for p := int64(0); p < npages; p++ {
		key := placement.Key(handle, uint64(p))
		if placement.ShardOfIDs(key, topo.ids) != si {
			continue
		}
		if (p+1)*pb > reg.size {
			// Tail partial page: copy individually.
			if err := cl.copyPage(sh, si, r, reg, p*pb, reg.size-p*pb); err != nil {
				return err
			}
			continue
		}
		offs = append(offs, p*pb)
		if len(offs) == batchMax {
			if err := cl.copyBatch(sh, si, r, reg, offs, pb); err != nil {
				return err
			}
			offs = offs[:0]
		}
	}
	if len(offs) > 0 {
		return cl.copyBatch(sh, si, r, reg, offs, pb)
	}
	return nil
}

// copyBatch moves one READV-worth of full pages from a surviving peer
// to the resync target.
func (cl *Cluster) copyBatch(sh *shard, si int, target *replica, reg *cregion, offs []int64, pageBytes int64) error {
	bodies, err := cl.readVShardExcluding(reg, sh, si, target, offs, pageBytes)
	if err != nil {
		return err
	}
	th, ok := reg.handle(target)
	if !ok {
		freeBodies(bodies)
		return errAllReplicasFailed(si, errors.New("resync target lost its region handle"))
	}
	err = target.c.WriteV(th, offs, bodies)
	freeBodies(bodies)
	if err != nil {
		return err
	}
	cl.stats.rebalancedPages.Add(uint64(len(offs)))
	return nil
}

func freeBodies(bodies [][]byte) {
	for _, b := range bodies {
		memnode.PutBuf(b)
	}
}

// copyPage moves one (possibly partial) page from a surviving peer to
// the resync target.
func (cl *Cluster) copyPage(sh *shard, si int, target *replica, reg *cregion, off, length int64) error {
	body, err := cl.readOneExcluding(reg, sh, si, target, off, length)
	if err != nil {
		return err
	}
	th, ok := reg.handle(target)
	if !ok {
		memnode.PutBuf(body)
		return errAllReplicasFailed(si, errors.New("resync target lost its region handle"))
	}
	err = target.c.Write(th, off, body)
	memnode.PutBuf(body)
	if err != nil {
		return err
	}
	cl.stats.rebalancedPages.Add(1)
	return nil
}

// copyDirty re-copies the pages in one settle round's dirty set.
// Dirty keys resolve against the live region table, not the bulk
// copy's snapshot: a write to a region registered after the resync
// began goes only to healthy replicas, so skipping its key here would
// leave the target serving zero-filled pages after admission.
func (cl *Cluster) copyDirty(si int, sh *shard, r *replica, dirty map[uint64]struct{}) error {
	pb := cl.opts.PageBytes
	for key := range dirty { //magevet:ok settle-pass copy set: each page is copied exactly once; order cannot matter
		handle := key >> placement.KeyPageBits
		pageNo := int64(key & (1<<placement.KeyPageBits - 1))
		cl.regMu.Lock()
		reg := cl.regions[handle]
		cl.regMu.Unlock()
		if reg == nil {
			// No live region for the key (cannot happen today — there is
			// no unregister verb — but a missing entry means there is no
			// page to copy).
			continue
		}
		if _, ok := reg.handle(r); !ok {
			// The region appeared after readmit's own register pass, and
			// the concurrent Register failed to reach this replica.
			// Create it on the target now so the dirty copy can land.
			h, err := r.c.Register(reg.size)
			if err != nil {
				return err
			}
			cl.regMu.Lock()
			reg.setHandle(r, h)
			cl.regMu.Unlock()
		}
		off := pageNo * pb
		length := pb
		if off > reg.size-length { // overflow-safe form of off+length > reg.size
			length = reg.size - off
		}
		if length <= 0 {
			continue
		}
		if err := cl.copyPage(sh, si, r, reg, off, length); err != nil {
			return err
		}
	}
	return nil
}

// readVShardExcluding is readVShard with one replica (the resync
// target — its data is the stale data being replaced) removed from
// the source set. A resync source must be current, not merely alive,
// so there is no degraded tail here.
func (cl *Cluster) readVShardExcluding(reg *cregion, sh *shard, shardIdx int, exclude *replica, offs []int64, pageBytes int64) ([][]byte, error) {
	reps, _, healthy := snapshotReplicas(sh)
	var lastErr error
	for i, r := range reps {
		if r == exclude || !healthy[i] {
			continue
		}
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		bodies, err := r.c.ReadV(h, offs, pageBytes)
		if err == nil {
			return bodies, nil
		}
		if memnode.IsTerminal(err) {
			return nil, err
		}
		cl.markDown(sh, r, true)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy resync source")
	}
	return nil, errAllReplicasFailed(shardIdx, lastErr)
}

// readOneExcluding mirrors readOne minus the excluded replica and the
// degraded tail.
func (cl *Cluster) readOneExcluding(reg *cregion, sh *shard, shardIdx int, exclude *replica, off, length int64) ([]byte, error) {
	reps, _, healthy := snapshotReplicas(sh)
	var lastErr error
	for i, r := range reps {
		if r == exclude || !healthy[i] {
			continue
		}
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		body, err := r.c.Read(h, off, length)
		if err == nil {
			return body, nil
		}
		if memnode.IsTerminal(err) {
			return nil, err
		}
		cl.markDown(sh, r, true)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy resync source")
	}
	return nil, errAllReplicasFailed(shardIdx, lastErr)
}
