package memcluster_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time" // benchmark latency sampling needs wall clock

	"mage/internal/memcluster"
	"mage/internal/memnode"
	"mage/internal/stats"
)

// BenchmarkClusterFailoverRead measures read throughput and tail
// latency on a degraded 3-shard x 2-replica cluster: one replica is
// killed before the timer starts, so every read of its shard's pages
// rides the failover ladder to the surviving peer. This is the
// failover-read p99 the CI bench job pins via benchsnap -require; the
// printed cluster-topology line records shards/replicas/transport in
// the BENCH_*.json snapshot.
func BenchmarkClusterFailoverRead(b *testing.B) {
	const (
		shards   = 3
		replicas = 2
	)
	srvs := make([][]*memnode.Server, shards)
	addrs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			srv, err := memnode.NewServer("127.0.0.1:0", 64<<20)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			srvs[s] = append(srvs[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
		}
	}
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	const regionPages = 8192
	h, err := cl.Register(regionPages * testPage)
	if err != nil {
		b.Fatal(err)
	}
	zero := make([]byte, testPage)
	for p := int64(0); p < regionPages; p++ {
		if err := cl.Write(h, p*testPage, zero); err != nil {
			b.Fatal(err)
		}
	}
	// Degrade the cluster: shard 0 loses a replica for the whole
	// measurement. The first read against it pays the demotion; the
	// steady state is what the percentiles describe.
	srvs[0][0].Close()

	const depth = 32
	lat := stats.NewConcurrentHistogram()
	var next atomic.Int64
	var fails atomic.Uint64
	var wg sync.WaitGroup
	b.SetBytes(testPage)
	b.ResetTimer()
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hist := stats.NewHistogram()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					break
				}
				t0 := time.Now()
				body, err := cl.Read(h, (i%regionPages)*testPage, testPage)
				if err != nil {
					fails.Add(1)
					continue
				}
				memnode.PutBuf(body)
				hist.Record(time.Since(t0).Nanoseconds())
			}
			lat.Merge(hist)
		}()
	}
	wg.Wait()
	b.StopTimer()
	if n := fails.Load(); n > 0 {
		b.Fatalf("%d reads failed on a cluster with a surviving replica per shard", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	b.ReportMetric(float64(lat.Snapshot().P99())/1e3, "p99-us")
	fmt.Printf("cluster-topology: bench=BenchmarkClusterFailoverRead shards=%d replicas=%d transport=tcp\n",
		shards, replicas)
}
