// Shard join/leave with bounded, deterministic rebalancing.
//
// Rendezvous hashing over stable shard IDs means a topology change
// moves exactly the keys whose winning ID changed: adding a shard
// moves only the keys the newcomer wins (about 1/(N+1) of them), and
// removing one moves only the keys it owned. AddShard/RemoveShard
// iterate that moved set, batch-copy it with READV/WRITEV, and swap
// in the new topology under the cluster's op/topology barrier.
//
// Writes racing the copy are caught the same way resync catches them:
// logDirty records every completed write whose key changes owner
// between the old and new ID sets, and the final settle pass re-copies
// that set under the topology write lock with all ops drained.
package memcluster

import (
	"errors"
	"fmt"

	"mage/internal/memcluster/placement"
	"mage/internal/memnode"
)

// migration is one live topology change: the old and new stable-ID
// sets (what logDirty compares) and the keys written mid-copy whose
// owner changes between them.
type migration struct {
	oldIDs []uint64
	newIDs []uint64
	dirty  map[uint64]struct{}
}

// beginMigration installs the migration record; the write path starts
// logging moved-key dirt the moment migOn flips.
func (cl *Cluster) beginMigration(oldIDs, newIDs []uint64) error {
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	if cl.mig != nil {
		return errors.New("memcluster: a rebalance is already running")
	}
	cl.mig = &migration{oldIDs: oldIDs, newIDs: newIDs, dirty: make(map[uint64]struct{})}
	cl.migOn.Store(true)
	return nil
}

// endMigration clears the record and returns the accumulated dirty
// set. Caller holds topoMu exclusively when draining for the final
// settle.
func (cl *Cluster) endMigration() map[uint64]struct{} {
	cl.migMu.Lock()
	defer cl.migMu.Unlock()
	m := cl.mig
	cl.mig = nil
	cl.migOn.Store(false)
	if m == nil {
		return nil
	}
	return m.dirty
}

// AddShard grows the cluster by one shard served by addrs, migrating
// the pages the new shard wins under rendezvous hashing. Every new
// replica must be reachable — a join starts whole or not at all.
// Reads and writes keep flowing during the copy; the topology swap
// waits for in-flight ops and costs one brief write-lock pause.
func (cl *Cluster) AddShard(addrs []string) error {
	if err := cl.checkClosed(); err != nil {
		return err
	}
	if len(addrs) == 0 {
		return errors.New("memcluster: AddShard needs at least one replica address")
	}
	newSh := &shard{}
	for _, addr := range addrs {
		c, err := memnode.DialOptions(addr, cl.opts.Node)
		if err != nil {
			_ = closeShard(newSh)
			return fmt.Errorf("memcluster: AddShard: dial %s: %w", addr, err)
		}
		newSh.replicas = append(newSh.replicas, &replica{addr: addr, c: c, healthy: true})
	}
	// Allocate the stable ID and build the candidate topology under the
	// write lock (nextID is barrier-guarded), then release: the copy
	// runs against the still-current old topology.
	cl.topoMu.Lock()
	oldTopo := cl.topo
	newSh.id = cl.nextID
	cl.nextID++
	newTopo := &topology{
		shards: append(append([]*shard(nil), oldTopo.shards...), newSh),
		ids:    append(append([]uint64(nil), oldTopo.ids...), newSh.id),
	}
	if err := cl.beginMigration(oldTopo.ids, newTopo.ids); err != nil {
		cl.topoMu.Unlock()
		_ = closeShard(newSh)
		return err
	}
	cl.topoMu.Unlock()

	abort := func(err error) error {
		cl.endMigration()
		_ = closeShard(newSh)
		return err
	}
	// Register every existing region on the new replicas and bulk-copy
	// the moved pages while ops keep flowing under the read lock.
	cl.topoMu.RLock()
	if cl.topo != oldTopo {
		cl.topoMu.RUnlock()
		return abort(errors.New("memcluster: topology changed during AddShard"))
	}
	regs := cl.snapshotRegions()
	for _, reg := range regs { //magevet:ok registrations are independent; order cannot affect the result
		if err := cl.registerOnShard(reg, newSh); err != nil {
			cl.topoMu.RUnlock()
			return abort(err)
		}
	}
	for handle, reg := range regs { //magevet:ok regions copy independently; order cannot affect the result
		if err := cl.copyMovedPages(oldTopo, newTopo, handle, reg); err != nil {
			cl.topoMu.RUnlock()
			return abort(err)
		}
	}
	cl.topoMu.RUnlock()
	// Final settle under the drained barrier: register regions created
	// mid-copy, re-copy raced writes, swap the topology.
	cl.topoMu.Lock()
	if cl.topo != oldTopo {
		cl.topoMu.Unlock()
		return abort(errors.New("memcluster: topology changed during AddShard"))
	}
	lateRegs := cl.snapshotRegions()
	for handle, reg := range lateRegs { //magevet:ok registrations are independent; order cannot affect the result
		if _, ok := regs[handle]; ok {
			continue
		}
		if err := cl.registerOnShard(reg, newSh); err != nil {
			cl.topoMu.Unlock()
			return abort(err)
		}
		if err := cl.copyMovedPages(oldTopo, newTopo, handle, reg); err != nil {
			cl.topoMu.Unlock()
			return abort(err)
		}
	}
	dirty := cl.endMigration()
	if err := cl.settleMoved(oldTopo, newTopo, lateRegs, dirty); err != nil {
		cl.topoMu.Unlock()
		_ = closeShard(newSh)
		return err
	}
	cl.topo = newTopo
	cl.topoMu.Unlock()
	return nil
}

// RemoveShard drains shard idx out of the cluster: its pages migrate
// to their new rendezvous owners, the topology shrinks, and the
// removed shard's clients close. The last shard cannot be removed.
func (cl *Cluster) RemoveShard(idx int) error {
	if err := cl.checkClosed(); err != nil {
		return err
	}
	cl.topoMu.Lock()
	oldTopo := cl.topo
	if idx < 0 || idx >= len(oldTopo.shards) {
		cl.topoMu.Unlock()
		return fmt.Errorf("memcluster: RemoveShard: no shard %d", idx)
	}
	if len(oldTopo.shards) == 1 {
		cl.topoMu.Unlock()
		return errors.New("memcluster: cannot remove the last shard")
	}
	removed := oldTopo.shards[idx]
	newTopo := &topology{}
	for i, sh := range oldTopo.shards {
		if i == idx {
			continue
		}
		newTopo.shards = append(newTopo.shards, sh)
		newTopo.ids = append(newTopo.ids, oldTopo.ids[i])
	}
	if err := cl.beginMigration(oldTopo.ids, newTopo.ids); err != nil {
		cl.topoMu.Unlock()
		return err
	}
	cl.topoMu.Unlock()

	abort := func(err error) error {
		cl.endMigration()
		return err
	}
	cl.topoMu.RLock()
	if cl.topo != oldTopo {
		cl.topoMu.RUnlock()
		return abort(errors.New("memcluster: topology changed during RemoveShard"))
	}
	regs := cl.snapshotRegions()
	for handle, reg := range regs { //magevet:ok regions copy independently; order cannot affect the result
		if err := cl.copyMovedPages(oldTopo, newTopo, handle, reg); err != nil {
			cl.topoMu.RUnlock()
			return abort(err)
		}
	}
	cl.topoMu.RUnlock()
	cl.topoMu.Lock()
	if cl.topo != oldTopo {
		cl.topoMu.Unlock()
		return abort(errors.New("memcluster: topology changed during RemoveShard"))
	}
	lateRegs := cl.snapshotRegions()
	for handle, reg := range lateRegs { //magevet:ok regions copy independently; order cannot affect the result
		if _, ok := regs[handle]; ok {
			continue
		}
		if err := cl.copyMovedPages(oldTopo, newTopo, handle, reg); err != nil {
			cl.topoMu.Unlock()
			return abort(err)
		}
	}
	dirty := cl.endMigration()
	if err := cl.settleMoved(oldTopo, newTopo, lateRegs, dirty); err != nil {
		cl.topoMu.Unlock()
		return err
	}
	cl.topo = newTopo
	cl.topoMu.Unlock()
	return closeShard(removed)
}

// snapshotRegions copies the region table out from under regMu.
func (cl *Cluster) snapshotRegions() map[uint64]*cregion {
	cl.regMu.Lock()
	defer cl.regMu.Unlock()
	regs := make(map[uint64]*cregion, len(cl.regions))
	for h, reg := range cl.regions { //magevet:ok snapshot clone of the region table; order cannot affect the result
		regs[h] = reg
	}
	return regs
}

// registerOnShard registers reg on every replica of sh that lacks a
// handle. Every replica must accept — joining replicas are freshly
// dialed and healthy, so failure here means the join should abort.
func (cl *Cluster) registerOnShard(reg *cregion, sh *shard) error {
	sh.mu.Lock()
	reps := append([]*replica(nil), sh.replicas...)
	sh.mu.Unlock()
	for _, r := range reps {
		if _, ok := reg.handle(r); ok {
			continue
		}
		h, err := r.c.Register(reg.size)
		if err != nil {
			return err
		}
		cl.regMu.Lock()
		reg.setHandle(r, h)
		cl.regMu.Unlock()
	}
	return nil
}

// copyMovedPages copies every page of one region whose owner changes
// between oldTopo and newTopo, batching full pages per (source, dest)
// shard pair.
func (cl *Cluster) copyMovedPages(oldTopo, newTopo *topology, handle uint64, reg *cregion) error {
	pb := cl.opts.PageBytes
	npages := (reg.size + pb - 1) / pb
	batchMax := cl.resyncBatchPages()
	type pair struct{ src, dst int }
	batches := make(map[pair][]int64)
	flush := func(pr pair, offs []int64) error {
		bodies, err := cl.readVShard(reg, oldTopo.shards[pr.src], pr.src, handle, offs, pb)
		if err != nil {
			return err
		}
		err = cl.writeMoved(reg, newTopo.shards[pr.dst], pr.dst, offs, bodies)
		freeBodies(bodies)
		if err != nil {
			return err
		}
		cl.stats.rebalancedPages.Add(uint64(len(offs)))
		return nil
	}
	for p := int64(0); p < npages; p++ {
		key := placement.Key(handle, uint64(p))
		so := placement.ShardOfIDs(key, oldTopo.ids)
		sn := placement.ShardOfIDs(key, newTopo.ids)
		if oldTopo.ids[so] == newTopo.ids[sn] {
			continue
		}
		if (p+1)*pb > reg.size {
			if err := cl.copyMovedPage(oldTopo, newTopo, reg, key, p*pb, reg.size-p*pb); err != nil {
				return err
			}
			continue
		}
		pr := pair{so, sn}
		batches[pr] = append(batches[pr], p*pb) //magevet:ok per-pair batch accumulator; flush resets the slice it consumed
		if len(batches[pr]) == batchMax {
			if err := flush(pr, batches[pr]); err != nil {
				return err
			}
			delete(batches, pr)
		}
	}
	for pr, offs := range batches { //magevet:ok disjoint page sets per shard pair; copy order cannot matter
		if err := flush(pr, offs); err != nil {
			return err
		}
	}
	return nil
}

// copyMovedPage moves a single (possibly partial) page between its
// old and new owner shards.
func (cl *Cluster) copyMovedPage(oldTopo, newTopo *topology, reg *cregion, key uint64, off, length int64) error {
	so := placement.ShardOfIDs(key, oldTopo.ids)
	sn := placement.ShardOfIDs(key, newTopo.ids)
	if so < 0 || sn < 0 || oldTopo.ids[so] == newTopo.ids[sn] {
		return nil
	}
	body, err := cl.readOne(reg, oldTopo.shards[so], so, key, off, length)
	if err != nil {
		return err
	}
	err = cl.writeMoved(reg, newTopo.shards[sn], sn, []int64{off}, [][]byte{body})
	memnode.PutBuf(body)
	if err != nil {
		return err
	}
	cl.stats.rebalancedPages.Add(1)
	return nil
}

// writeMoved replicates one batch of migrated pages to every healthy
// replica of the destination shard. Unlike writeVShard it does NOT
// log dirt: migration copies must not re-mark the very pages they
// just moved, or the settle pass would never converge.
func (cl *Cluster) writeMoved(reg *cregion, sh *shard, shardIdx int, offs []int64, bodies [][]byte) error {
	reps, _, healthy := snapshotReplicas(sh)
	acks := 0
	var lastErr error
	for i, r := range reps {
		if !healthy[i] {
			continue
		}
		h, ok := reg.handle(r)
		if !ok {
			continue
		}
		if err := r.c.WriteV(h, offs, bodies); err != nil {
			if memnode.IsTerminal(err) {
				return err
			}
			cl.markDown(sh, r, true)
			lastErr = err
			continue
		}
		acks++
	}
	if acks == 0 {
		if lastErr == nil {
			lastErr = errors.New("no healthy destination replica")
		}
		return errAllReplicasFailed(shardIdx, lastErr)
	}
	return nil
}

// settleMoved re-copies the migration dirty set (keys written during
// the bulk copy whose owner changes). Caller holds topoMu exclusively
// with all ops drained.
func (cl *Cluster) settleMoved(oldTopo, newTopo *topology, regs map[uint64]*cregion, dirty map[uint64]struct{}) error {
	pb := cl.opts.PageBytes
	for key := range dirty { //magevet:ok settle-pass copy set: each page is copied exactly once; order cannot matter
		handle := key >> placement.KeyPageBits
		pageNo := int64(key & (1<<placement.KeyPageBits - 1))
		reg, ok := regs[handle]
		if !ok {
			continue
		}
		off := pageNo * pb
		length := pb
		if off > reg.size-length { // overflow-safe form of off+length > reg.size
			length = reg.size - off
		}
		if length <= 0 {
			continue
		}
		if err := cl.copyMovedPage(oldTopo, newTopo, reg, key, off, length); err != nil {
			return err
		}
	}
	return nil
}
