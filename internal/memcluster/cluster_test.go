package memcluster_test

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time" // tests of the real cluster client need wall-clock deadlines

	"mage/internal/memcluster"
	"mage/internal/memnode"
)

const (
	testPage  = int64(4096)
	testPages = int64(48)
)

// testOpts keeps failover and probing snappy under test and hands
// probe timing to the test body (DisableProber + explicit ProbeNow).
func testOpts() memcluster.Options {
	return memcluster.Options{
		PageBytes:       testPage,
		ProbeInterval:   5 * time.Millisecond,
		ProbeBackoffMax: 20 * time.Millisecond,
		DisableProber:   true,
		Node: memnode.Options{
			DialTimeout: 250 * time.Millisecond,
			IOTimeout:   time.Second,
			MaxAttempts: 2,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
	}
}

// startServers launches shards × replicas in-process memnodes and
// returns the server grid plus the address grid New wants.
func startServers(t *testing.T, shards, replicas int) ([][]*memnode.Server, [][]string) {
	t.Helper()
	srvs := make([][]*memnode.Server, shards)
	addrs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			srv, err := memnode.NewServer("127.0.0.1:0", 64<<20)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			srvs[s] = append(srvs[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
		}
	}
	return srvs, addrs
}

// pageBody builds the deterministic content of one page at a version.
func pageBody(page int64, version byte) []byte {
	b := make([]byte, testPage)
	for i := range b {
		b[i] = byte(page)*7 ^ version ^ byte(i)
	}
	return b
}

func writeAll(t *testing.T, cl *memcluster.Cluster, h uint64, version byte) {
	t.Helper()
	for p := int64(0); p < testPages; p++ {
		if err := cl.Write(h, p*testPage, pageBody(p, version)); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
}

func checkAll(t *testing.T, cl *memcluster.Cluster, h uint64, version byte) {
	t.Helper()
	for p := int64(0); p < testPages; p++ {
		got, err := cl.Read(h, p*testPage, testPage)
		if err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if !bytes.Equal(got, pageBody(p, version)) {
			t.Fatalf("page %d content mismatch at version %d", p, version)
		}
		memnode.PutBuf(got)
	}
}

// TestClusterRoundTrip covers the basic client surface over a 2x2
// cluster: single-page and page-straddling reads/writes plus batched
// READV/WRITEV, all verified byte-for-byte.
func TestClusterRoundTrip(t *testing.T) {
	_, addrs := startServers(t, 2, 2)
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(testPages * testPage)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, cl, h, 1)
	checkAll(t, cl, h, 1)

	// A write straddling two ownership pages, read back as a span.
	span := make([]byte, testPage)
	for i := range span {
		span[i] = byte(0xC3 ^ i)
	}
	off := testPage/2 + 3*testPage
	if err := cl.Write(h, off, span); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, off, int64(len(span)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("straddling span mismatch")
	}

	// Batched verbs across all shards at once.
	offs := make([]int64, testPages)
	pages := make([][]byte, testPages)
	for p := int64(0); p < testPages; p++ {
		offs[p] = p * testPage
		pages[p] = pageBody(p, 9)
	}
	if err := cl.WriteV(h, offs, pages); err != nil {
		t.Fatal(err)
	}
	bodies, err := cl.ReadV(h, offs, testPage)
	if err != nil {
		t.Fatal(err)
	}
	for p := range bodies {
		if !bytes.Equal(bodies[p], pages[p]) {
			t.Fatalf("readv page %d mismatch", p)
		}
		memnode.PutBuf(bodies[p])
	}

	st := cl.Stats()
	if st.Shards != 2 || st.Replicas != 4 {
		t.Fatalf("stats topology = %d/%d, want 2/4", st.Shards, st.Replicas)
	}
}

// TestClusterProbeRefreshesWeights checks the STATS plumbing: a probe
// sweep pulls each replica's free bytes and capacity-backed weight
// into the selection state.
func TestClusterProbeRefreshesWeights(t *testing.T) {
	_, addrs := startServers(t, 1, 2)
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Register(testPages * testPage); err != nil {
		t.Fatal(err)
	}
	cl.ProbeNow()
	st := cl.Stats()
	for _, rs := range st.PerShard[0].Replicas {
		if !rs.Healthy {
			t.Fatalf("replica %s unexpectedly down", rs.Addr)
		}
		if rs.FreeBytes <= 0 {
			t.Fatalf("replica %s has no STATS weight after probe", rs.Addr)
		}
	}
}

// TestClusterChaosKillReplicaMidSweep is the acceptance scenario: a
// 3-shard x 2-replica cluster loses one replica in the middle of a
// concurrent read sweep and must finish the sweep with zero failed
// reads (failover only). The node then restarts, must be re-admitted
// after resync, and — with its surviving peer killed — must serve the
// writes it missed while down, proving resync copied them.
func TestClusterChaosKillReplicaMidSweep(t *testing.T) {
	srvs, addrs := startServers(t, 3, 2)
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(testPages * testPage)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, cl, h, 1)

	// Concurrent read sweep; the kill lands once the sweep is warm.
	const readers = 4
	var readsDone atomic.Int64
	var sweepErr atomic.Value
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for round := 0; round < 30; round++ {
				for p := int64(0); p < testPages; p++ {
					got, err := cl.Read(h, p*testPage, testPage)
					if err != nil {
						sweepErr.CompareAndSwap(nil, fmt.Errorf("sweep read page %d: %w", p, err))
						return
					}
					ok := bytes.Equal(got, pageBody(p, 1))
					memnode.PutBuf(got)
					if !ok {
						sweepErr.CompareAndSwap(nil, fmt.Errorf("sweep page %d corrupt", p))
						return
					}
					readsDone.Add(1)
				}
			}
		}()
	}
	close(start)
	// Kill one replica of shard 0 strictly mid-sweep: after the sweep
	// has demonstrably started but long before it can finish.
	for readsDone.Load() < testPages {
		runtime.Gosched()
	}
	killedAddr := srvs[0][0].Addr()
	srvs[0][0].Close()
	wg.Wait()
	if err, _ := sweepErr.Load().(error); err != nil {
		t.Fatalf("read failed during single-replica outage: %v", err)
	}

	// Writes the dead replica misses; its peer carries them.
	writeAll(t, cl, h, 2)

	// Restart on the same address and poll for re-admission. The bind
	// can race the dying listener, so restarting is itself a poll.
	deadline := time.Now().Add(15 * time.Second)
	var restarted *memnode.Server
	for restarted == nil {
		if time.Now().After(deadline) {
			t.Fatal("could not rebind the killed replica's address")
		}
		restarted, _ = memnode.NewServer(killedAddr, 64<<20)
		if restarted == nil {
			runtime.Gosched()
		}
	}
	defer restarted.Close()
	for cl.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica not re-admitted; stats: %+v", cl.Stats())
		}
		cl.ProbeNow()
	}

	// Kill the surviving peer: shard 0 now serves only from the
	// re-admitted replica, which must have the version-2 writes it
	// missed while down.
	srvs[0][1].Close()
	checkAll(t, cl, h, 2)

	st := cl.Stats()
	if st.Failovers == 0 {
		t.Fatal("expected data-path failovers during the outage")
	}
	if st.Readmissions == 0 || st.RebalancedPages == 0 {
		t.Fatalf("resync left no trace: %+v", st)
	}
}

// TestClusterResyncCoversLateRegions pins resync's no-missed-write
// guarantee for regions registered AFTER a resync began: their writes
// go only to healthy replicas, so they must reach the resyncing
// replica through the dirty-log settle passes (resolved against the
// live region table, not the bulk copy's snapshot). The test kills
// and restarts one replica of shard 0, registers + writes a fresh
// region while the resync is provably still running, then kills the
// surviving peer and reads the region back: pages shard 0 owns can
// only come from the re-admitted replica, so a miss surfaces as
// zero-filled data. The overlap is proven, not assumed — the cycle
// retries until the late writes complete while Stats still reports
// the replica resyncing (completion happens-before that observation,
// which happens-before admission).
func TestClusterResyncCoversLateRegions(t *testing.T) {
	srvs, addrs := startServers(t, 3, 2)
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// A big region stretches the resync bulk copy into a window wide
	// enough to register and write a small region inside it. Its
	// content is irrelevant (zero everywhere); only its size matters.
	const bigPages = 8192
	if _, err := cl.Register(bigPages * testPage); err != nil {
		t.Fatal(err)
	}
	const latePages = int64(24)
	target := srvs[0][0]
	targetAddr := target.Addr()
	replicaStats := func() (memcluster.ReplicaStats, bool) {
		for _, rs := range cl.Stats().PerShard[0].Replicas {
			if rs.Addr == targetAddr {
				return rs, true
			}
		}
		return memcluster.ReplicaStats{}, false
	}

	deadline := time.Now().Add(30 * time.Second)
	var lateH uint64
	var lateV byte
	overlapped := false
	for cycle := 0; !overlapped; cycle++ {
		if time.Now().After(deadline) {
			t.Fatal("could not overlap a Register with a resync window")
		}
		target.Close()
		// Demote: probe sweeps against the dead server mark it down.
		for {
			cl.ProbeNow()
			if rs, ok := replicaStats(); ok && !rs.Healthy {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("killed replica never demoted")
			}
		}
		// Restart on the same address; the bind can race the dying
		// listener, so restarting is itself a poll.
		var restarted *memnode.Server
		for restarted == nil {
			if time.Now().After(deadline) {
				t.Fatal("could not rebind the killed replica's address")
			}
			restarted, _ = memnode.NewServer(targetAddr, 64<<20)
			if restarted == nil {
				runtime.Gosched()
			}
		}
		target = restarted
		defer restarted.Close()
		// Drive re-admission from a background goroutine: the resync runs
		// synchronously inside one of these ProbeNow calls, and the main
		// goroutine races a Register+write burst into its copy window.
		base := cl.Stats().Readmissions
		done := make(chan struct{})
		go func() {
			defer close(done)
			for cl.Stats().Readmissions == base {
				cl.ProbeNow()
				runtime.Gosched()
			}
		}()
		sawResync := false
		for {
			rs, ok := replicaStats()
			if ok && rs.Resyncing {
				sawResync = true
				break
			}
			if ok && rs.Healthy {
				break // resync finished before we caught it; retry
			}
			if time.Now().After(deadline) {
				t.Fatal("replica neither resyncing nor re-admitted")
			}
			runtime.Gosched()
		}
		if sawResync {
			v := byte(100 + cycle)
			h, err := cl.Register(latePages * testPage)
			if err != nil {
				t.Fatalf("mid-resync register: %v", err)
			}
			for p := int64(0); p < latePages; p++ {
				if err := cl.Write(h, p*testPage, pageBody(p, v)); err != nil {
					t.Fatalf("mid-resync write page %d: %v", p, err)
				}
			}
			// Only if the replica is STILL resyncing after the last write
			// completed did the whole burst land inside the window.
			if rs, ok := replicaStats(); ok && rs.Resyncing {
				lateH, lateV = h, v
				overlapped = true
			}
		}
		<-done // resync finished; the replica is re-admitted
	}

	// Shard 0 now serves only from the re-admitted replica; the pages
	// it owns must carry the writes made mid-resync.
	srvs[0][1].Close()
	for p := int64(0); p < latePages; p++ {
		got, err := cl.Read(lateH, p*testPage, testPage)
		if err != nil {
			t.Fatalf("read late page %d: %v", p, err)
		}
		if !bytes.Equal(got, pageBody(p, lateV)) {
			t.Fatalf("late-region page %d lost its mid-resync write", p)
		}
		memnode.PutBuf(got)
	}
}

// TestClusterStartsWithDeadReplica checks graceful degradation at
// dial time: a cluster comes up with one replica down (and serves)
// as long as every shard keeps one live replica.
func TestClusterStartsWithDeadReplica(t *testing.T) {
	srvs, addrs := startServers(t, 2, 2)
	srvs[1][0].Close()
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(testPages * testPage)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, cl, h, 5)
	checkAll(t, cl, h, 5)

	// A shard with no live replica at all must refuse to come up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	if _, err := memcluster.New([][]string{{deadAddr}}, testOpts()); err == nil {
		t.Fatal("cluster with an all-dead shard should not start")
	}
}

// TestClusterRebalance grows a 2-shard cluster by one shard under a
// live writer, then shrinks it back, verifying the data survives both
// migrations byte-for-byte and that the join moved a bounded slice of
// pages rather than reshuffling everything.
func TestClusterRebalance(t *testing.T) {
	_, addrs := startServers(t, 2, 1)
	cl, err := memcluster.New(addrs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(testPages * testPage)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, cl, h, 3)

	// A live writer keeps mutating a few pages during the join so the
	// migration dirty log and settle pass see real traffic.
	stop := make(chan struct{})
	var writerErr error
	var writerWG sync.WaitGroup
	final := make([]byte, 0)
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		v := byte(10)
		for {
			select {
			case <-stop:
				final = pageBody(0, v)
				return
			default:
			}
			v++
			if err := cl.Write(h, 0, pageBody(0, v)); err != nil {
				writerErr = err
				final = pageBody(0, v)
				return
			}
		}
	}()

	joinSrv, err := memnode.NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer joinSrv.Close()
	if err := cl.AddShard([]string{joinSrv.Addr()}); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	close(stop)
	writerWG.Wait()
	if writerErr != nil {
		t.Fatalf("writer failed during join: %v", writerErr)
	}

	st := cl.Stats()
	if st.Shards != 3 {
		t.Fatalf("shards = %d after join, want 3", st.Shards)
	}
	moved := st.RebalancedPages
	if moved == 0 {
		t.Fatal("join moved no pages")
	}
	if moved > uint64(testPages)*3/4 {
		t.Fatalf("join moved %d of %d pages — migration not bounded", moved, testPages)
	}
	// Page 0 must read back as the writer's final version, wherever it
	// landed; every other page is still version 3.
	got, err := cl.Read(h, 0, testPage)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, final) {
		t.Fatal("page 0 lost its last pre-join write")
	}
	memnode.PutBuf(got)
	for p := int64(1); p < testPages; p++ {
		got, err := cl.Read(h, p*testPage, testPage)
		if err != nil {
			t.Fatalf("read page %d after join: %v", p, err)
		}
		if !bytes.Equal(got, pageBody(p, 3)) {
			t.Fatalf("page %d corrupt after join", p)
		}
		memnode.PutBuf(got)
	}

	// Shrink back out: the joined shard's pages migrate home.
	writeAll(t, cl, h, 4)
	if err := cl.RemoveShard(2); err != nil {
		t.Fatalf("RemoveShard: %v", err)
	}
	if got := cl.Stats().Shards; got != 2 {
		t.Fatalf("shards = %d after leave, want 2", got)
	}
	checkAll(t, cl, h, 4)
}

// TestClusterCloseReleasesGoroutines guards the prober and per-node
// client teardown: repeated cluster create/close cycles (with the
// background prober ON) must not leak goroutines.
func TestClusterCloseReleasesGoroutines(t *testing.T) {
	_, addrs := startServers(t, 2, 2)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		opts := testOpts()
		opts.DisableProber = false
		cl, err := memcluster.New(addrs, opts)
		if err != nil {
			t.Fatal(err)
		}
		h, err := cl.Register(4 * testPage)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(h, 0, pageBody(0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegisterRollbackOnShardFailure pins the Register failure path:
// when a later shard's replicas all refuse the region, handles already
// granted by earlier shards are released (UNREGISTER), so a failed
// Register does not bleed capacity on the healthy nodes.
func TestRegisterRollbackOnShardFailure(t *testing.T) {
	big, err := memnode.NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { big.Close() })
	small, err := memnode.NewServer("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { small.Close() })
	cl, err := memcluster.New([][]string{{big.Addr()}, {small.Addr()}}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// 8 MiB fits shard 0's node but not shard 1's 1 MiB node.
	if _, err := cl.Register(8 << 20); err == nil {
		t.Fatal("register succeeded despite an undersized shard")
	}
	c, err := memnode.Dial(big.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions != 0 || st.UsedBytes != 0 {
		t.Errorf("failed register leaked on the healthy node: regions=%d used=%d", st.Regions, st.UsedBytes)
	}

	// The cluster stays usable at a size every shard can host.
	h, err := cl.Register(256 << 10)
	if err != nil {
		t.Fatalf("register after rollback: %v", err)
	}
	if err := cl.Write(h, 0, pageBody(0, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 0, testPage)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pageBody(0, 1)) {
		t.Error("post-rollback region corrupted")
	}
	memnode.PutBuf(got)
}
