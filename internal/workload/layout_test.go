package workload

import (
	"testing"

	"mage/internal/core"
)

// The far-memory curves depend on the layout ratios (DESIGN.md §4.5):
// the randomly-read hot region must be a small slice of the WSS.

func TestGapBSLayoutRatios(t *testing.T) {
	w := NewGapBS(DefaultGapBS())
	scoreFrac := float64(w.ScorePages()) / float64(w.NumPages())
	if scoreFrac > 0.05 {
		t.Errorf("score region is %.1f%% of the WSS; must stay <5%% so it "+
			"remains resident at any offload level (paper: 330MB of 20GB)",
			scoreFrac*100)
	}
	// Edge arrays dominate.
	edgePages := w.inCSR.pages + w.outCSR.pages
	if frac := float64(edgePages) / float64(w.NumPages()); frac < 0.85 {
		t.Errorf("edge arrays are %.1f%% of the WSS; expected >85%%", frac*100)
	}
}

func TestGapBSScoreReadsAreTheBulkOfAccesses(t *testing.T) {
	p := GapBSParams{Scale: 10, EdgeFactor: 8, Iterations: 1, BytesPerVertex: 16, Seed: 3}
	w := NewGapBS(p)
	streams := w.Streams(2, 0)
	scoreReads, other := 0, 0
	for _, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Page < w.ScorePages() && !a.Write {
				scoreReads++
			} else {
				other++
			}
		}
	}
	// One random score gather per edge dominates page-boundary walks.
	if scoreReads < 4*other {
		t.Errorf("score reads %d vs other accesses %d; gathers should dominate", scoreReads, other)
	}
}

func TestXSBenchIndexRegionDominates(t *testing.T) {
	w := NewXSBench(DefaultXSBench())
	if frac := float64(w.index.pages) / float64(w.NumPages()); frac < 0.6 {
		t.Errorf("index matrix is %.1f%% of the WSS; the paper's 15GB is index-dominated", frac*100)
	}
	if frac := float64(w.energy.pages) / float64(w.NumPages()); frac > 0.05 {
		t.Errorf("energy grid is %.1f%% of the WSS; must stay hot/small", frac*100)
	}
}

func TestXSBenchAccessesPerLookupConsistent(t *testing.T) {
	p := DefaultXSBench()
	p.LookupsPerThread = 50
	w := NewXSBench(p)
	s := w.Streams(1, 9)[0]
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if want := 50 * w.AccessesPerLookup(); n != want {
		t.Errorf("stream yielded %d accesses, want %d", n, want)
	}
}

func TestMetisReduceEmitsOutputWrites(t *testing.T) {
	p := MetisParams{
		InputPages: 256, IntermediatePages: 256, OutputPages: 64,
		EmitsPerInputPage: 1, MapCompute: 100, ReduceCompute: 100,
	}
	w := NewMetis(p)
	// Drive through a real system so the barrier works.
	cfg, err := core.Preset("magelib", 2, w.NumPages(), int(w.NumPages())+4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.EvictorThreads = 1
	s := core.MustNewSystem(cfg)
	streams := w.StreamsOn(s.Eng, 2, 1)
	// Collect accesses by wrapping the streams.
	outWrites := 0
	wrapped := make([]core.AccessStream, len(streams))
	for i, st := range streams {
		st := st
		wrapped[i] = core.FuncStream(func() (core.Access, bool) {
			a, ok := st.Next()
			if ok && a.Write && a.Page >= w.output.base {
				outWrites++
			}
			return a, ok
		})
	}
	s.Run(wrapped)
	if outWrites == 0 {
		t.Error("reduce phase emitted no output-region writes")
	}
}

func TestGUPSRegionsPartitionWSS(t *testing.T) {
	w := NewGUPS(DefaultGUPS())
	if w.regionA.base != 0 {
		t.Error("region A must start at page 0 (PrepopulateFront depends on it)")
	}
	if w.regionA.base+w.regionA.pages != w.regionB.base {
		t.Error("regions A and B must be adjacent")
	}
	if got := w.regionA.pages + w.regionB.pages; got != w.NumPages() {
		t.Errorf("regions cover %d pages of %d", got, w.NumPages())
	}
	fracA := float64(w.regionA.pages) / float64(w.NumPages())
	if fracA < 0.75 || fracA > 0.85 {
		t.Errorf("region A is %.1f%% of WSS, want ~80%%", fracA*100)
	}
}

func TestMemcachedIndexBeforeSlab(t *testing.T) {
	w := NewMemcached(DefaultMemcached())
	if w.index.base != 0 || w.slab.base != w.index.pages {
		t.Error("layout order changed; index must precede slab")
	}
	if w.slab.pages < w.index.pages {
		t.Error("slab (values) should dominate the index")
	}
}
