package workload

import (
	"math/rand"

	"mage/internal/core"
	"mage/internal/sim"
)

// PageBytes is the page size all layouts assume.
const PageBytes = 4096

// Workload produces per-thread access streams over a page-numbered
// address space of NumPages pages.
type Workload interface {
	// Name identifies the workload (Table 1).
	Name() string
	// NumPages is the working-set size in pages.
	NumPages() uint64
	// Streams builds one access stream per thread. Streams must be
	// independent generators (safe to interleave in any order).
	Streams(threads int, seed int64) []core.AccessStream
}

// threadRNG returns the deterministic per-thread random source all
// workloads use: thread streams must diverge from each other, and a run
// with the same seed must reproduce the same access sequence exactly
// (never use the global rand functions — magevet enforces this). stride
// is a per-workload constant decorrelating stream families that share a
// seed.
func threadRNG(seed int64, thread int, stride int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(thread)*stride))
}

// seedRNG returns a deterministic source for single-stream generators.
func seedRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// region is a contiguous page range in a workload's layout.
type region struct {
	base  uint64
	pages uint64
}

// page maps a byte offset within the region to its page number.
func (r region) page(off int64) uint64 {
	pg := r.base + uint64(off)/PageBytes
	// Overflow-safe form of pg >= base+pages: pg >= base by
	// construction, so the subtraction cannot wrap.
	if pg-r.base >= r.pages {
		pg = r.base + r.pages - 1
	}
	return pg
}

// pageIdx maps an index directly to the region's idx-th page.
func (r region) pageIdx(idx uint64) uint64 {
	return r.base + idx%r.pages
}

// layout allocates consecutive regions in page space.
type layout struct{ next uint64 }

func (l *layout) add(bytes int64) region {
	pages := uint64((bytes + PageBytes - 1) / PageBytes)
	if pages == 0 {
		pages = 1
	}
	r := region{base: l.next, pages: pages}
	l.next += pages
	return r
}

func (l *layout) addPages(pages uint64) region {
	if pages == 0 {
		pages = 1
	}
	r := region{base: l.next, pages: pages}
	l.next += pages
	return r
}

// Barrier is a reusable BSP barrier for sim processes: the n-th arrival
// releases everyone.
type Barrier struct {
	n       int
	arrived int
	q       *sim.WaitQueue
}

// NewBarrier returns a barrier for n participants on eng.
func NewBarrier(eng *sim.Engine, n int) *Barrier {
	return &Barrier{n: n, q: sim.NewWaitQueue(eng, "barrier")}
}

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.q.Broadcast()
		return
	}
	b.q.Wait(p)
}

// shard splits [0, n) into t near-equal chunks and returns chunk i.
func shard(n, t, i int) (lo, hi int) {
	lo = i * n / t
	hi = (i + 1) * n / t
	return lo, hi
}
