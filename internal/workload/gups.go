package workload

import (
	"mage/internal/core"
	"mage/internal/sim"
)

// GUPSParams sizes the modified-GUPS workload (§6.2): Zipf-distributed
// random updates over one region (80 % of the WSS), then a phase change
// that shifts all accesses to the remaining 20 %.
type GUPSParams struct {
	// Pages is the total working-set size in pages (paper: 32 GB).
	Pages uint64
	// UpdatesPerThread is the total update count per thread.
	UpdatesPerThread int
	// PhaseSplit is the fraction of updates before the phase change.
	PhaseSplit float64
	// HotFrac is the fraction of WSS used by the first phase (0.8).
	HotFrac float64
	// Theta is the Zipf skew of update addresses.
	Theta float64
	// ComputePerUpdate is the CPU cost per update.
	ComputePerUpdate sim.Time
}

// DefaultGUPS returns a scaled-down configuration.
func DefaultGUPS() GUPSParams {
	return GUPSParams{
		Pages:            1 << 15,
		UpdatesPerThread: 12000,
		PhaseSplit:       0.5,
		HotFrac:          0.8,
		Theta:            0.99,
		ComputePerUpdate: 250,
	}
}

// GUPS is the phase-changing random-update workload.
type GUPS struct {
	p       GUPSParams
	regionA region // first-phase working set (HotFrac of WSS)
	regionB region // second-phase working set
}

// NewGUPS lays out the two regions.
func NewGUPS(p GUPSParams) *GUPS {
	var l layout
	w := &GUPS{p: p}
	aPages := uint64(float64(p.Pages) * p.HotFrac)
	if aPages == 0 {
		aPages = 1
	}
	if aPages >= p.Pages {
		aPages = p.Pages - 1
	}
	w.regionA = l.addPages(aPages)
	w.regionB = l.addPages(p.Pages - aPages)
	return w
}

// Name implements Workload.
func (w *GUPS) Name() string { return "gups" }

// NumPages implements Workload.
func (w *GUPS) NumPages() uint64 { return w.regionA.pages + w.regionB.pages }

// Streams implements Workload.
func (w *GUPS) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		rng := threadRNG(seed, t, 104729)
		zipfA := NewScrambled(int64(w.regionA.pages), w.p.Theta)
		zipfB := NewScrambled(int64(w.regionB.pages), w.p.Theta)
		switchAt := int(float64(w.p.UpdatesPerThread) * w.p.PhaseSplit)
		done := 0
		out[t] = core.FuncStream(func() (core.Access, bool) {
			if done >= w.p.UpdatesPerThread {
				return core.Access{}, false
			}
			var pg uint64
			if done < switchAt {
				pg = w.regionA.pageIdx(uint64(zipfA.Next(rng)))
			} else {
				pg = w.regionB.pageIdx(uint64(zipfB.Next(rng)))
			}
			done++
			return core.Access{Page: pg, Write: true, Compute: w.p.ComputePerUpdate}, true
		})
	}
	return out
}
