package workload

import (
	"sort"
)

// Graph is a directed graph in CSR (compressed sparse row) form.
type Graph struct {
	NumVertices int
	// Offsets has NumVertices+1 entries; vertex v's out-neighbors are
	// Neighbors[Offsets[v]:Offsets[v+1]].
	Offsets   []int64
	Neighbors []int32
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int64 { return g.Offsets[g.NumVertices] }

// KroneckerParams configures the R-MAT/Kronecker generator the GAP
// Benchmark Suite uses (Graph500 defaults A=0.57, B=0.19, C=0.19).
type KroneckerParams struct {
	Scale      int // 2^Scale vertices
	EdgeFactor int // edges per vertex
	A, B, C    float64
	Seed       int64
}

// DefaultKronecker returns Graph500 parameters at the given scale.
func DefaultKronecker(scale, edgeFactor int, seed int64) KroneckerParams {
	return KroneckerParams{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19,
		Seed: seed,
	}
}

// GenerateKronecker builds a Kronecker graph in CSR form: the synthetic
// dataset the paper uses for GapBS PageRank (Table 1: "1.5B edges, 41.7M
// vertices", scaled down here via the Scale parameter).
func GenerateKronecker(p KroneckerParams) *Graph {
	n := 1 << uint(p.Scale)
	m := int64(n) * int64(p.EdgeFactor)
	rng := seedRNG(p.Seed)

	type edge struct{ u, v int32 }
	edges := make([]edge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int
		for bit := 0; bit < p.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left: neither bit set
			case r < p.A+p.B:
				v |= 1 << uint(bit)
			case r < p.A+p.B+p.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		edges = append(edges, edge{int32(u), int32(v)})
	}
	// Permute vertex labels so degree is not correlated with ID (GAPBS
	// does the same to defeat trivial locality).
	perm := rng.Perm(n)
	for i := range edges {
		edges[i].u = int32(perm[edges[i].u])
		edges[i].v = int32(perm[edges[i].v])
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})

	g := &Graph{
		NumVertices: n,
		Offsets:     make([]int64, n+1),
		Neighbors:   make([]int32, len(edges)),
	}
	for i, e := range edges {
		g.Offsets[e.u+1]++
		g.Neighbors[i] = e.v
	}
	for v := 1; v <= n; v++ {
		g.Offsets[v] += g.Offsets[v-1]
	}
	return g
}
