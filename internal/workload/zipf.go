// Package workload implements page-granularity access-stream generators
// for the six applications in the paper's Table 1. The generators
// reproduce each application's access-pattern class (random graph, random
// grid, prefetchable scan, phase-changing random, phase-changing
// MapReduce, latency-critical KV) without computing application values:
// far-memory behaviour depends on which pages are touched, when, and how
// often — not on their contents.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws keys in [0, N) with P(k) ∝ 1/(k+1)^theta, using the
// YCSB/Gray algorithm. theta < 1 (the paper and YCSB use 0.99).
type Zipfian struct {
	n                int64
	theta            float64
	alpha            float64
	zetan            float64
	eta              float64
	zeta2theta       float64
	countForzeta     int64
	allowItemDecreas bool
}

// NewZipfian builds a generator over [0, n) with the given skew.
func NewZipfian(n int64, theta float64) *Zipfian {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipfian over %d items", n))
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	z := &Zipfian{n: n, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.countForzeta = n
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// Next draws the next key. Key 0 is the hottest.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Scrambled draws a Zipfian key and scrambles it over the key space with
// an FNV-style hash, so hot keys are spread uniformly (YCSB's
// ScrambledZipfian). This is how skewed KV popularity maps onto pages
// without artificial page-level hotspots.
type Scrambled struct {
	z *Zipfian
}

// NewScrambled wraps a Zipfian in FNV scrambling.
func NewScrambled(n int64, theta float64) *Scrambled {
	return &Scrambled{z: NewZipfian(n, theta)}
}

// Next draws the next scrambled key in [0, N).
func (s *Scrambled) Next(rng *rand.Rand) int64 {
	k := s.z.Next(rng)
	return int64(fnv64(uint64(k)) % uint64(s.z.n))
}

// fnv64 is the FNV-1a 64-bit hash of the integer's bytes.
func fnv64(x uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return h
}
