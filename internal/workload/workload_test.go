package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mage/internal/core"
)

func TestZipfianBoundsAndSkew(t *testing.T) {
	z := NewZipfian(10000, 0.99)
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	for i := 0; i < 100000; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must be by far the most popular.
	if counts[0] < 5*counts[100] {
		t.Errorf("skew too weak: count[0]=%d count[100]=%d", counts[0], counts[100])
	}
	// Roughly: P(0) ≈ 1/zetan ≈ 10% for N=10k, theta=0.99.
	frac := float64(counts[0]) / 100000
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("P(hottest) = %.3f, expected ≈0.10", frac)
	}
}

func TestZipfianInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipfian(0, 0.99) },
		func() { NewZipfian(10, 0) },
		func() { NewZipfian(10, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	s := NewScrambled(1<<16, 0.99)
	rng := rand.New(rand.NewSource(2))
	// The two hottest scrambled keys must not be adjacent: scrambling
	// destroys locality.
	counts := map[int64]int{}
	for i := 0; i < 50000; i++ {
		counts[s.Next(rng)]++
	}
	var top1, top2 int64
	for k, c := range counts {
		if c > counts[top1] {
			top1, top2 = k, top1
		} else if c > counts[top2] {
			top2 = k
		}
	}
	if d := top1 - top2; d > -64 && d < 64 {
		t.Errorf("hottest keys %d and %d adjacent; scrambling broken", top1, top2)
	}
}

func TestScrambledInRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int64(nRaw) + 2
		s := NewScrambled(n, 0.7)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			k := s.Next(rng)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKroneckerStructure(t *testing.T) {
	g := GenerateKronecker(DefaultKronecker(10, 8, 7))
	if g.NumVertices != 1024 {
		t.Fatalf("vertices = %d", g.NumVertices)
	}
	if g.NumEdges() != 8*1024 {
		t.Fatalf("edges = %d, want 8192", g.NumEdges())
	}
	// CSR consistency.
	if g.Offsets[0] != 0 {
		t.Error("Offsets[0] != 0")
	}
	for v := 0; v < g.NumVertices; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			t.Fatalf("offsets not monotone at %d", v)
		}
	}
	for _, nb := range g.Neighbors {
		if nb < 0 || int(nb) >= g.NumVertices {
			t.Fatalf("neighbor %d out of range", nb)
		}
	}
	// Kronecker graphs are heavy-tailed: the max degree should dwarf the
	// mean degree (8).
	maxDeg := 0
	for v := int32(0); int(v) < g.NumVertices; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 40 {
		t.Errorf("max degree %d; expected a heavy tail (>5x mean)", maxDeg)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := GenerateKronecker(DefaultKronecker(8, 4, 3))
	b := GenerateKronecker(DefaultKronecker(8, 4, 3))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatalf("graphs diverge at edge %d", i)
		}
	}
}

// drain pulls all accesses from a stream, bounding runaway generators.
func drain(t *testing.T, s core.AccessStream, limit int) []core.Access {
	t.Helper()
	var out []core.Access
	for len(out) < limit {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
	t.Fatalf("stream did not terminate within %d accesses", limit)
	return nil
}

func checkInRange(t *testing.T, name string, accs []core.Access, numPages uint64) {
	t.Helper()
	for i, a := range accs {
		if !a.Skip && a.Page >= numPages {
			t.Fatalf("%s: access %d to page %d beyond WSS %d", name, i, a.Page, numPages)
		}
	}
}

func TestGapBSStreams(t *testing.T) {
	w := NewGapBS(GapBSParams{Scale: 10, EdgeFactor: 4, Iterations: 2, BytesPerVertex: 64, Seed: 1})
	streams := w.Streams(4, 0)
	if len(streams) != 4 {
		t.Fatalf("streams = %d", len(streams))
	}
	total := 0
	for i, s := range streams {
		accs := drain(t, s, 1<<20)
		checkInRange(t, "gapbs", accs, w.NumPages())
		if len(accs) == 0 {
			t.Errorf("thread %d empty", i)
		}
		total += len(accs)
		// Must contain writes (score updates).
		hasWrite := false
		for _, a := range accs {
			if a.Write {
				hasWrite = true
				break
			}
		}
		if !hasWrite {
			t.Errorf("thread %d has no writes", i)
		}
	}
	// Roughly 2 accesses per edge per iteration, plus per-vertex ones.
	if total < int(w.Graph().NumEdges()) {
		t.Errorf("total accesses %d < edges %d", total, w.Graph().NumEdges())
	}
}

func TestGapBSRandomProbeInScoreRegion(t *testing.T) {
	w := NewGapBS(GapBSParams{Scale: 10, EdgeFactor: 4, Iterations: 1, BytesPerVertex: 64, Seed: 1})
	accs := drain(t, w.RandomScoreProbe(500, 9, 100), 501)
	if len(accs) != 500 {
		t.Fatalf("probe yielded %d", len(accs))
	}
	checkInRange(t, "probe", accs, w.NumPages())
	for _, a := range accs {
		if a.Page >= w.scores.base+w.scores.pages {
			t.Fatalf("probe outside score region: page %d", a.Page)
		}
	}
}

func TestXSBenchStreams(t *testing.T) {
	p := DefaultXSBench()
	p.LookupsPerThread = 200
	w := NewXSBench(p)
	streams := w.Streams(3, 5)
	for _, s := range streams {
		accs := drain(t, s, 1<<20)
		checkInRange(t, "xsbench", accs, w.NumPages())
		wantPerLookup := w.AccessesPerLookup()
		if len(accs) != 200*wantPerLookup {
			t.Errorf("accesses = %d, want %d", len(accs), 200*wantPerLookup)
		}
	}
}

func TestSeqScanStreamsAreSequentialAndSharded(t *testing.T) {
	p := SeqScanParams{Pages: 1000, Iterations: 2, ComputePerPage: 100}
	w := NewSeqScan(p)
	streams := w.Streams(4, 0)
	seen := map[uint64]int{}
	for i, s := range streams {
		accs := drain(t, s, 10000)
		lo, hi := shard(1000, 4, i)
		if len(accs) != 2*(hi-lo) {
			t.Errorf("thread %d: %d accesses, want %d", i, len(accs), 2*(hi-lo))
		}
		prev := int64(-2)
		for _, a := range accs {
			seen[a.Page]++
			if int64(a.Page) != prev+1 && int64(a.Page) != int64(lo) {
				t.Errorf("thread %d: non-sequential jump to %d after %d", i, a.Page, prev)
				break
			}
			prev = int64(a.Page)
			if a.Page < uint64(lo) || a.Page >= uint64(hi) {
				t.Errorf("thread %d: page %d outside shard [%d,%d)", i, a.Page, lo, hi)
				break
			}
		}
	}
	if len(seen) != 1000 {
		t.Errorf("%d distinct pages touched, want 1000", len(seen))
	}
}

func TestGUPSPhaseChange(t *testing.T) {
	p := GUPSParams{
		Pages: 1000, UpdatesPerThread: 1000, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.9, ComputePerUpdate: 50,
	}
	w := NewGUPS(p)
	s := w.Streams(1, 3)[0]
	accs := drain(t, s, 2000)
	if len(accs) != 1000 {
		t.Fatalf("accesses = %d", len(accs))
	}
	split := uint64(800) // region A = first 800 pages
	for i, a := range accs {
		if !a.Write {
			t.Fatal("GUPS accesses must be writes")
		}
		if i < 500 && a.Page >= split {
			t.Fatalf("access %d (phase 1) hit region B page %d", i, a.Page)
		}
		if i >= 500 && a.Page < split {
			t.Fatalf("access %d (phase 2) hit region A page %d", i, a.Page)
		}
	}
}

func TestGUPSZipfSkewOnPages(t *testing.T) {
	p := DefaultGUPS()
	w := NewGUPS(p)
	s := w.Streams(1, 7)[0]
	counts := map[uint64]int{}
	n := 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		counts[a.Page]++
		n++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(n) / float64(len(counts))
	if float64(maxC) < 4*mean {
		t.Errorf("hottest page %d vs mean %.1f: Zipf skew not visible", maxC, mean)
	}
}

func TestMetisStreamsNeedEngine(t *testing.T) {
	w := NewMetis(DefaultMetis())
	defer func() {
		if recover() == nil {
			t.Fatal("Streams without engine should panic")
		}
	}()
	w.Streams(2, 0)
}

func TestMemcachedRequestShape(t *testing.T) {
	w := NewMemcached(DefaultMemcached())
	rng := rand.New(rand.NewSource(4))
	zipf := NewScrambled(w.p.Keys, w.p.Theta)
	sets := 0
	const reqs = 20000
	for i := 0; i < reqs; i++ {
		accs := w.requestAccesses(nil, rng, zipf)
		if len(accs) != 2 {
			t.Fatalf("request has %d accesses", len(accs))
		}
		if accs[0].Page >= w.index.base+w.index.pages {
			t.Fatal("first access must hit the index region")
		}
		if accs[1].Page < w.slab.base {
			t.Fatal("second access must hit the slab region")
		}
		if accs[1].Write {
			sets++
		}
	}
	frac := float64(sets) / reqs
	if math.Abs(frac-0.002) > 0.002 {
		t.Errorf("SET fraction %.4f, want ≈0.002", frac)
	}
}

func TestTable1CatalogComplete(t *testing.T) {
	entries := Table1()
	if len(entries) != 6 {
		t.Fatalf("Table 1 has %d entries, want 6", len(entries))
	}
	apps := map[string]bool{}
	for _, e := range entries {
		apps[e.Application] = true
		if e.Category == "" || e.Dataset == "" || e.Characteristic == "" {
			t.Errorf("incomplete entry %+v", e)
		}
	}
	for _, want := range []string{"GapBS", "XSBench", "Sequential Scan", "Gups", "Metis", "Memcached"} {
		if !apps[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestWorkloadsImplementInterface(t *testing.T) {
	ws := []Workload{
		NewGapBS(GapBSParams{Scale: 8, EdgeFactor: 4, Iterations: 1, BytesPerVertex: 64, Seed: 1}),
		NewXSBench(DefaultXSBench()),
		NewSeqScan(DefaultSeqScan()),
		NewGUPS(DefaultGUPS()),
		NewMetis(DefaultMetis()),
		NewMemcached(DefaultMemcached()),
	}
	for _, w := range ws {
		if w.Name() == "" || w.NumPages() == 0 {
			t.Errorf("%T: bad Name/NumPages", w)
		}
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	var l layout
	a := l.add(10000)
	b := l.add(5000)
	c := l.addPages(7)
	if a.base+a.pages != b.base || b.base+b.pages != c.base {
		t.Errorf("regions not consecutive: %+v %+v %+v", a, b, c)
	}
	if a.pages != 3 || b.pages != 2 || c.pages != 7 {
		t.Errorf("page counts wrong: %d %d %d", a.pages, b.pages, c.pages)
	}
}

func TestShardCoversRange(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n := int(nRaw) + 1
		tt := int(tRaw)%8 + 1
		covered := 0
		prevHi := 0
		for i := 0; i < tt; i++ {
			lo, hi := shard(n, tt, i)
			if lo != prevHi {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
