package workload

import (
	"testing"

	"mage/internal/core"
)

// drawKeys pulls n keys from a freshly built generator under a fresh
// seeded rng — the determinism contract is that this is a pure function
// of (build, seed, n).
func drawKeys(n int, seed int64, build func() KeyGen) []int64 {
	rng := seedRNG(seed)
	g := build()
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next(rng)
	}
	return out
}

// TestPhaseGeneratorsDeterministic is the double-run determinism test:
// every phase generator must replay the identical key sequence from the
// same seed, because the magecache load generator and the DES both lean
// on that to share one traffic model.
func TestPhaseGeneratorsDeterministic(t *testing.T) {
	const keys = 1 << 14
	builds := map[string]func() KeyGen{
		"uniform": func() KeyGen { return NewUniform(keys) },
		"storm": func() KeyGen {
			return NewHotStorm(NewScrambled(keys, 0.99), keys, 16, 0.9, 0x5307)
		},
		"crowd": func() KeyGen {
			return NewFlashCrowd(NewScrambled(keys, 0.99), keys, keys-keys/8, keys/8, 0.5, 5000, 0.99)
		},
		"phased": func() KeyGen {
			return NewPhasedKeys(StandardPhases(keys, 0.99, 4000)...)
		},
	}
	for name, build := range builds {
		a := drawKeys(20000, 42, build)
		b := drawKeys(20000, 42, build)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across identically seeded runs: %d vs %d", name, i, a[i], b[i])
			}
			if a[i] < 0 || a[i] >= keys {
				t.Fatalf("%s: draw %d out of range: %d", name, i, a[i])
			}
		}
		c := drawKeys(20000, 43, build)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds replayed the identical sequence", name)
		}
	}
}

func TestHotStormConcentratesTraffic(t *testing.T) {
	const keys = 1 << 16
	seq := drawKeys(40000, 7, func() KeyGen {
		return NewHotStorm(NewScrambled(keys, 0.99), keys, 16, 0.9, 0x5307)
	})
	counts := make(map[int64]int)
	for _, k := range seq {
		counts[k]++
	}
	// The 16 storm keys receive ~90% of draws (plus whatever the base
	// model happens to land on them). Find the top-16 share.
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	// selection of the 16 largest without sorting the whole thing
	best := 0
	for i := 0; i < 16 && i < len(top); i++ {
		maxAt := i
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[maxAt] {
				maxAt = j
			}
		}
		top[i], top[maxAt] = top[maxAt], top[i]
		best += top[i]
	}
	if share := float64(best) / float64(len(seq)); share < 0.85 {
		t.Fatalf("top-16 keys carry %.1f%% of storm traffic; want >= 85%%", share*100)
	}
}

func TestFlashCrowdRampsOntoColdSegment(t *testing.T) {
	const keys = 1 << 16
	const crowdBase = keys - keys/8
	seq := drawKeys(40000, 7, func() KeyGen {
		return NewFlashCrowd(NewScrambled(keys, 0.99), keys, crowdBase, keys/8, 0.5, 20000, 0.99)
	})
	inCrowd := func(lo, hi int) float64 {
		n := 0
		for _, k := range seq[lo:hi] {
			if k >= crowdBase {
				n++
			}
		}
		return float64(n) / float64(hi-lo)
	}
	early := inCrowd(0, 4000)        // ramp ~0→10%
	late := inCrowd(30000, len(seq)) // held at peak 50%
	if late < 0.4 {
		t.Fatalf("post-ramp crowd share %.2f; want ~0.5", late)
	}
	if early > late/2 {
		t.Fatalf("crowd share did not ramp: early %.2f vs late %.2f", early, late)
	}
}

func TestPhasedKeysWalksSchedule(t *testing.T) {
	rng := seedRNG(1)
	p := NewPhasedKeys(
		Phase{Name: "a", Draws: 3, Gen: NewUniform(10)},
		Phase{Name: "b", Draws: 2, Gen: NewUniform(10)},
		Phase{Name: "c", Draws: 0, Gen: NewUniform(10)},
	)
	// The final Draws:0 phase is unbounded, so the walk can keep drawing
	// past the bounded legs.
	want := []string{"a", "a", "a", "b", "b", "c", "c", "c"}
	got := make([]string, 0, len(want))
	for range want {
		p.Next(rng)
		got = append(got, p.CurrentPhase())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d served by phase %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestPhasedZipfDeterministic pins the DES mirror: Streams must replay
// byte-identical access sequences from one seed at any thread count.
func TestPhasedZipfDeterministic(t *testing.T) {
	p := PhasedZipfParams{Pages: 1 << 12, AccessesPerThread: 3000, Theta: 0.99, WriteFraction: 0.3, ComputePerAccess: 1000}
	collect := func() [][]core.Access {
		w := NewPhasedZipf(p)
		streams := w.Streams(4, 99)
		out := make([][]core.Access, len(streams))
		for i, s := range streams {
			for {
				a, ok := s.Next()
				if !ok {
					break
				}
				out[i] = append(out[i], a)
			}
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("thread %d length differs: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Page != y.Page || x.Write != y.Write || x.Compute != y.Compute {
				t.Fatalf("thread %d access %d differs: %+v vs %+v", i, j, x, y)
			}
		}
	}
}
