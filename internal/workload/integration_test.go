package workload

import (
	"testing"

	"mage/internal/core"
	"mage/internal/sim"
)

func tinySystem(t *testing.T, preset string, threads int, wss uint64, localFrac float64) *core.System {
	t.Helper()
	cfg, err := core.Preset(preset, threads, wss, int(float64(wss)*localFrac))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	return core.MustNewSystem(cfg)
}

func TestMetisPhaseBarrierOnSystem(t *testing.T) {
	p := MetisParams{
		InputPages: 1500, IntermediatePages: 1000, OutputPages: 200,
		EmitsPerInputPage: 1, MapCompute: 400, ReduceCompute: 300,
	}
	w := NewMetis(p)
	s := tinySystem(t, "magelib", 4, w.NumPages(), 0.6)
	streams := w.StreamsOn(s.Eng, 4, 1)
	res := s.Run(streams)
	if w.PhaseSwitchAt <= 0 || w.PhaseSwitchAt >= res.Makespan {
		t.Errorf("phase switch at %v, makespan %v", w.PhaseSwitchAt, res.Makespan)
	}
	if res.TotalFaults() == 0 {
		t.Error("expected faults")
	}
}

func TestGapBSRunsOnAllSystems(t *testing.T) {
	w := NewGapBS(GapBSParams{Scale: 13, EdgeFactor: 4, Iterations: 1, BytesPerVertex: 64, Seed: 2})
	for _, preset := range []string{"ideal", "hermit", "magelib"} {
		s := tinySystem(t, preset, 4, w.NumPages(), 0.6)
		res := s.Run(w.Streams(4, 0))
		if res.TotalFaults() == 0 {
			t.Errorf("%s: no faults on 50%% local", preset)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: empty run", preset)
		}
	}
}

func TestGUPSPhaseChangeVisibleInTimeSeries(t *testing.T) {
	p := GUPSParams{
		Pages: 6000, UpdatesPerThread: 8000, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 300,
	}
	w := NewGUPS(p)
	s := tinySystem(t, "magelib", 4, w.NumPages(), 0.85)
	res := s.RunWithOptions(w.Streams(4, 3), core.RunOptions{SampleEvery: 200 * sim.Microsecond})
	if res.Series == nil || res.Series.Len() < 5 {
		t.Fatal("time series too short")
	}
	// The phase change forces a throughput dip: min rate well below max.
	if res.Series.Min() > 0.8*res.Series.Max() {
		t.Errorf("no dip visible: min=%.0f max=%.0f", res.Series.Min(), res.Series.Max())
	}
}

func TestMemcachedOpenLoopLatency(t *testing.T) {
	p := MemcachedParams{
		Keys: 1 << 14, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1000,
	}
	w := NewMemcached(p)
	s := tinySystem(t, "magelib", 4, w.NumPages(), 0.7)
	res := w.RunOpenLoop(s, 4, 200000, 40*sim.Millisecond, 11)
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.P99Ns < res.P50Ns {
		t.Errorf("p99 %d < p50 %d", res.P99Ns, res.P50Ns)
	}
	if res.AchievedOps <= 0 || res.AchievedOps > 2*res.OfferedOps {
		t.Errorf("achieved %f vs offered %f", res.AchievedOps, res.OfferedOps)
	}
	// At modest load with 70% local memory, p99 stays microseconds-scale.
	if res.P99Ns > int64(5*sim.Millisecond) {
		t.Errorf("p99 = %v implausibly high", sim.Time(res.P99Ns))
	}
}

func TestMemcachedLatencyGrowsWithLoad(t *testing.T) {
	run := func(load float64) LatencyResult {
		p := MemcachedParams{
			Keys: 1 << 14, ValueBytes: 256, Theta: 0.99,
			GetFraction: 0.998, ComputePerOp: 1000,
		}
		w := NewMemcached(p)
		s := tinySystem(t, "dilos", 4, w.NumPages(), 0.5)
		return w.RunOpenLoop(s, 4, load, 30*sim.Millisecond, 5)
	}
	lo := run(100000)
	hi := run(900000)
	if hi.P99Ns <= lo.P99Ns {
		t.Errorf("p99 did not grow with load: %d @100k vs %d @900k", lo.P99Ns, hi.P99Ns)
	}
}
