package workload

import (
	"math/rand"

	"mage/internal/core"
	"mage/internal/sim"
)

// XSBenchParams sizes the XSBench workload: Monte Carlo neutron-transport
// macroscopic cross-section lookups over a unionized energy grid (the
// paper's dataset: 355 nuclides, 10.6 M gridpoints, ~15 GB — dominated by
// the gridpoint × nuclide index matrix).
type XSBenchParams struct {
	Gridpoints int
	Nuclides   int
	// LookupsPerThread is the number of macro-XS lookups each thread
	// performs.
	LookupsPerThread int
	// NuclidesPerLookup is how many nuclide cross-section tables one
	// lookup touches (the material's constituent nuclides; fuel
	// materials in XSBench average ~12 touched pages' worth).
	NuclidesPerLookup int
	// LookupCompute is the total CPU cost of one macro-XS lookup in ns
	// (binary search + per-nuclide interpolation; 0 = calibrated
	// default). XSBench does far more arithmetic per page touch than
	// GapBS, which is why its far-memory curve is gentler (§6.2).
	LookupCompute sim.Time
}

const xsDefaultLookupCompute = 5000

// DefaultXSBench returns a scaled-down configuration.
func DefaultXSBench() XSBenchParams {
	return XSBenchParams{
		Gridpoints:        1 << 15,
		Nuclides:          64,
		LookupsPerThread:  4000,
		NuclidesPerLookup: 12,
	}
}

func (p *XSBenchParams) lookupCompute() sim.Time {
	if p.LookupCompute > 0 {
		return p.LookupCompute
	}
	return xsDefaultLookupCompute
}

// XSBench models the unionized-grid lookup: each lookup binary-searches
// the energy grid (small and hot), reads the gridpoint's index row
// (random pages in the dominant matrix), then reads several nuclide
// tables at the energy-dependent offset (random pages in a mid-sized
// region).
type XSBench struct {
	p      XSBenchParams
	energy region // unionized energy grid (sorted doubles; hot)
	index  region // gridpoint × nuclide index matrix (dominant)
	xs     region // per-nuclide cross-section tables
	total  uint64
}

// NewXSBench lays out the address space.
func NewXSBench(p XSBenchParams) *XSBench {
	var l layout
	w := &XSBench{p: p}
	w.energy = l.add(int64(p.Gridpoints) * 8)
	w.index = l.add(int64(p.Gridpoints) * int64(p.Nuclides) * 4)
	w.xs = l.add(int64(p.Gridpoints) * int64(p.Nuclides) / 2) // condensed tables
	w.total = l.next
	return w
}

// Name implements Workload.
func (w *XSBench) Name() string { return "xsbench" }

// NumPages implements Workload.
func (w *XSBench) NumPages() uint64 { return w.total }

// AccessesPerLookup returns the page touches per macro-XS lookup.
func (w *XSBench) AccessesPerLookup() int { return 4 + w.p.NuclidesPerLookup }

// Streams implements Workload.
func (w *XSBench) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		rng := threadRNG(seed, t, 7919)
		out[t] = w.threadStream(rng)
	}
	return out
}

func (w *XSBench) threadStream(rng *rand.Rand) core.AccessStream {
	done := 0
	var pending []core.Access
	pos := 0
	per := sim.Time(int64(w.p.lookupCompute()) / int64(w.AccessesPerLookup()))
	refill := func() bool {
		if done >= w.p.LookupsPerThread {
			return false
		}
		done++
		pending = pending[:0]
		pos = 0
		gp := rng.Int63n(int64(w.p.Gridpoints))
		// Binary search over the energy grid: the upper levels stay
		// cached; the final probes touch ~2 grid pages (hot region).
		pending = append(pending,
			core.Access{Page: w.energy.page(gp * 8 / 2), Compute: per},
			core.Access{Page: w.energy.page(gp * 8), Compute: per},
		)
		// The gridpoint's index row: Nuclides × 4 B, spanning pages of
		// the dominant matrix.
		rowOff := gp * int64(w.p.Nuclides) * 4
		pending = append(pending,
			core.Access{Page: w.index.page(rowOff), Compute: per},
			core.Access{Page: w.index.page(rowOff + int64(w.p.Nuclides)*4 - 1), Compute: per},
		)
		// The material's nuclide tables at the energy-dependent offset.
		for k := 0; k < w.p.NuclidesPerLookup; k++ {
			nuc := rng.Int63n(int64(w.p.Nuclides))
			off := nuc*int64(w.p.Gridpoints)/2 + gp/2
			pending = append(pending, core.Access{Page: w.xs.page(off), Compute: per})
		}
		return true
	}
	return core.FuncStream(func() (core.Access, bool) {
		if pos >= len(pending) {
			if !refill() {
				return core.Access{}, false
			}
		}
		a := pending[pos]
		pos++
		return a, true
	})
}
