package workload

import (
	"mage/internal/core"
	"mage/internal/sim"
)

// ZipfParams sizes the closed-loop skewed-random workload: every thread
// issues scrambled-Zipfian page accesses over a shared buffer as fast as
// its compute allows. It is the simplest member of the paper's "random"
// access-pattern class (GapBS/XSBench without their structure) and the
// canonical noisy neighbour for the co-location experiment: a hot set
// that fits locally plus a long tail that churns the eviction pipeline.
type ZipfParams struct {
	// Pages is the buffer size in pages.
	Pages uint64
	// AccessesPerThread is the closed-loop run length per thread.
	AccessesPerThread int
	// Theta is the Zipfian skew (YCSB-style, in (0,1)).
	Theta float64
	// WriteFraction is the probability an access dirties its page, which
	// is what makes this tenant's evictions cost writebacks.
	WriteFraction float64
	// ComputePerAccess is the CPU work attributed to each access.
	ComputePerAccess sim.Time
}

// DefaultZipf returns a scaled-down skewed-random tenant.
func DefaultZipf() ZipfParams {
	return ZipfParams{Pages: 1 << 14, AccessesPerThread: 4000, Theta: 0.99,
		WriteFraction: 0.3, ComputePerAccess: 1500}
}

// Zipf is the closed-loop skewed-random workload.
type Zipf struct {
	p   ZipfParams
	buf region
}

// NewZipf lays out the buffer.
func NewZipf(p ZipfParams) *Zipf {
	var l layout
	w := &Zipf{p: p}
	w.buf = l.addPages(p.Pages)
	return w
}

// Name implements Workload.
func (w *Zipf) Name() string { return "zipf" }

// NumPages implements Workload.
func (w *Zipf) NumPages() uint64 { return w.buf.pages }

// Streams implements Workload: each thread draws AccessesPerThread pages
// from an independent scrambled-Zipfian generator.
func (w *Zipf) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		rng := threadRNG(seed, t, 7919)
		zipf := NewScrambled(int64(w.buf.pages), w.p.Theta)
		left := w.p.AccessesPerThread
		out[t] = core.FuncStream(func() (core.Access, bool) {
			if left <= 0 {
				return core.Access{}, false
			}
			left--
			pg := w.buf.pageIdx(uint64(zipf.Next(rng)))
			write := rng.Float64() < w.p.WriteFraction
			return core.Access{Page: pg, Write: write, Compute: w.p.ComputePerAccess}, true
		})
	}
	return out
}
