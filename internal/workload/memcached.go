package workload

import (
	"fmt"
	"math/rand"

	"mage/internal/core"
	"mage/internal/sim"
	"mage/internal/stats"
)

// MemcachedParams sizes the latency-critical KV workload: Facebook's USR
// pool (99.8 % GET / 0.2 % SET) with Zipf(0.99) key popularity (§6.3).
type MemcachedParams struct {
	// Keys is the number of KV pairs (paper: 21 M).
	Keys int64
	// ValueBytes is the value size (USR values are small).
	ValueBytes int64
	// Theta is the Zipfian skew (0.99, YCSB-aligned).
	Theta float64
	// GetFraction is the GET share of operations (0.998).
	GetFraction float64
	// ComputePerOp is the request-processing CPU cost beyond memory
	// accesses (parsing, hashing, socket work).
	ComputePerOp sim.Time
}

// DefaultMemcached returns a scaled-down configuration.
func DefaultMemcached() MemcachedParams {
	return MemcachedParams{
		Keys:         1 << 19,
		ValueBytes:   256,
		Theta:        0.99,
		GetFraction:  0.998,
		ComputePerOp: 1500,
	}
}

// Memcached is the in-memory KV store: a hash-index region plus a slab
// region holding values. A GET touches one index page and one value page;
// a SET additionally dirties the value page.
type Memcached struct {
	p     MemcachedParams
	index region
	slab  region
}

// NewMemcached lays out the store.
func NewMemcached(p MemcachedParams) *Memcached {
	var l layout
	w := &Memcached{p: p}
	w.index = l.add(p.Keys * 16) // 16 B bucket entries
	w.slab = l.add(p.Keys * p.ValueBytes)
	return w
}

// Name implements Workload.
func (w *Memcached) Name() string { return "memcached" }

// NumPages implements Workload.
func (w *Memcached) NumPages() uint64 { return w.index.pages + w.slab.pages }

// Streams implements Workload with a closed-loop driver (each thread
// issues requests back-to-back); use RunOpenLoop for the paper's
// latency-vs-load experiments.
func (w *Memcached) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		rng := threadRNG(seed, t, 31337)
		zipf := NewScrambled(w.p.Keys, w.p.Theta)
		n := 0
		var pend []core.Access
		pos := 0
		out[t] = core.FuncStream(func() (core.Access, bool) {
			if pos >= len(pend) {
				if n >= 4000 {
					return core.Access{}, false
				}
				n++
				pend = w.requestAccesses(pend[:0], rng, zipf)
				pos = 0
			}
			a := pend[pos]
			pos++
			return a, true
		})
	}
	return out
}

// requestAccesses appends one request's page accesses to buf.
func (w *Memcached) requestAccesses(buf []core.Access, rng *rand.Rand, zipf *Scrambled) []core.Access {
	key := zipf.Next(rng)
	isSet := rng.Float64() >= w.p.GetFraction
	buf = append(buf,
		core.Access{Page: w.index.page(key * 16), Compute: w.p.ComputePerOp / 2},
		core.Access{Page: w.slab.page(key * w.p.ValueBytes), Write: isSet, Compute: w.p.ComputePerOp / 2},
	)
	return buf
}

// LatencyResult is the outcome of an open-loop run.
type LatencyResult struct {
	OfferedOps   float64 // offered load, ops/s
	AchievedOps  float64 // completed ops/s
	MeanNs       float64
	P50Ns        int64
	P99Ns        int64
	MaxNs        int64
	Completed    uint64
	QueueDropped uint64
}

func (r LatencyResult) String() string {
	return fmt.Sprintf("offered=%.0f achieved=%.0f p50=%.1fµs p99=%.1fµs",
		r.OfferedOps, r.AchievedOps, float64(r.P50Ns)/1e3, float64(r.P99Ns)/1e3)
}

// RunOpenLoop drives the system with Poisson arrivals at loadOps
// requests/s for the given virtual duration across `threads` server
// threads, and reports sojourn-time (queueing + service) percentiles —
// the p99 the paper plots in Fig 13.
//
// The caller must pass a freshly built system; RunOpenLoop owns its
// engine.
func (w *Memcached) RunOpenLoop(s *core.System, threads int, loadOps float64, duration sim.Time, seed int64) LatencyResult {
	type request struct{ arrived sim.Time }
	queues := make([]*sim.Chan[request], threads)
	for i := range queues {
		queues[i] = sim.NewChan[request](s.Eng, fmt.Sprintf("mc-q%d", i), 4096)
	}
	lat := stats.NewHistogram()
	var completed, dropped uint64

	s.SpawnEvictors()

	// Arrival process: Poisson with mean interarrival 1/load.
	s.Eng.Spawn("mc-arrivals", func(p *sim.Proc) {
		rng := seedRNG(seed)
		mean := 1e9 / loadOps
		i := 0
		for p.Now() < duration {
			p.Sleep(sim.Time(rng.ExpFloat64() * mean))
			q := queues[i%threads]
			i++
			if !q.TryPut(request{arrived: p.Now()}) {
				dropped++ // server far behind: shed load
			}
		}
		for _, q := range queues {
			q.Close()
		}
	})

	remaining := threads
	for t := 0; t < threads; t++ {
		t := t
		s.Eng.Spawn(fmt.Sprintf("mc-server-%d", t), func(p *sim.Proc) {
			th := s.NewThread(p, t)
			rng := threadRNG(seed, t, 271828)
			zipf := NewScrambled(w.p.Keys, w.p.Theta)
			var buf []core.Access
			for {
				req, ok := queues[t].Get(p)
				if !ok {
					break
				}
				buf = w.requestAccesses(buf[:0], rng, zipf)
				for _, a := range buf {
					th.Access(a.Page, a.Write, a.Compute)
				}
				th.Flush()
				lat.Record(int64(p.Now() - req.arrived))
				completed++
			}
			th.Flush()
			remaining--
			if remaining == 0 {
				s.Stop() // lets eviction threads exit so the engine drains
			}
		})
	}

	s.Eng.Run()

	elapsed := duration
	res := LatencyResult{
		OfferedOps:   loadOps,
		AchievedOps:  float64(completed) / elapsed.Seconds(),
		MeanNs:       lat.Mean(),
		P50Ns:        lat.P50(),
		P99Ns:        lat.P99(),
		MaxNs:        lat.Max(),
		Completed:    completed,
		QueueDropped: dropped,
	}
	return res
}
