package workload

// Entry describes one application in the paper's Table 1.
type Entry struct {
	Category       string
	Application    string
	Dataset        string
	Size           string // the paper's full-scale dataset size
	Characteristic string
}

// Table1 returns the application catalog the evaluation uses, matching
// the paper's Table 1 (datasets are scaled down at run time via each
// workload's Params).
func Table1() []Entry {
	return []Entry{
		{"Throughput-bound", "GapBS", "Kronecker", "1.5B Edges, 41.7M Vertices", "Random graph"},
		{"Throughput-bound", "XSBench", "Nuclide and unionized grid", "355 Nuclides and 10.6m gridpoints", "Random grid"},
		{"Throughput-bound", "Sequential Scan", "Synthetic", "20GB", "Prefetchable scan"},
		{"Throughput-bound", "Gups", "Synthetic", "32GB", "Phase changing random"},
		{"Throughput-bound", "Metis", "Wikipedia English", "30GB", "Phase changing map reduce"},
		{"Latency-critical", "Memcached", "Facebook's USR like", "21M KV Pairs", "In-memory KV Store"},
	}
}
