package workload

import (
	"mage/internal/core"
	"mage/internal/sim"
)

// GapBSParams sizes the GapBS PageRank workload. The paper runs PageRank
// over a 20 GB Kronecker working set (1.5 B edges, 41.7 M vertices);
// Scale and EdgeFactor shrink it proportionally.
//
// The memory layout mirrors real GAPBS pull-style PageRank: the working
// set is dominated by the two CSR edge arrays (incoming CSR walked every
// iteration, outgoing CSR for the contribution pass), while the
// per-vertex score array is a small fraction of the WSS. That ratio is
// what gives the paper its far-memory behaviour — the randomly-read score
// pages stay resident at any offload level, and the misses are dominated
// by the per-iteration sequential re-scan of whatever slice of the edge
// arrays was evicted.
type GapBSParams struct {
	Scale      int // 2^Scale vertices
	EdgeFactor int
	Iterations int
	// BytesPerVertex is the per-vertex score state (scores + outgoing
	// contributions; 16 B/vertex like GAPBS).
	BytesPerVertex int64
	// EdgeCompute and VertexCompute are per-edge / per-vertex CPU costs
	// in ns (0 = calibrated defaults chosen so the ideal far-memory curve
	// lands where Fig 1's does).
	EdgeCompute   sim.Time
	VertexCompute sim.Time
	Seed          int64
}

// DefaultGapBS returns a laptop-scale PageRank: a scale-15 Kronecker
// graph (32 k vertices, ~1 M directed edges), two iterations.
func DefaultGapBS() GapBSParams {
	return GapBSParams{Scale: 15, EdgeFactor: 32, Iterations: 2, BytesPerVertex: 16, Seed: 42}
}

// Per-access compute costs (ns): PageRank does one fused multiply-add per
// edge; the default folds in the DRAM gather cost measured on the paper's
// class of hardware.
const (
	gapbsEdgeCompute   = 17
	gapbsVertexCompute = 50
)

func (p *GapBSParams) edgeCompute() sim.Time {
	if p.EdgeCompute > 0 {
		return p.EdgeCompute
	}
	return gapbsEdgeCompute
}

func (p *GapBSParams) vertexCompute() sim.Time {
	if p.VertexCompute > 0 {
		return p.VertexCompute
	}
	return gapbsVertexCompute
}

// GapBS is PageRank over a Kronecker graph: per-iteration sequential
// sweeps over the CSR arrays with a random score-array read per edge.
type GapBS struct {
	p      GapBSParams
	g      *Graph
	scores region // per-vertex rank state (hot, randomly read)
	offs   region // CSR offsets (sequential)
	inCSR  region // incoming edge array, 8 B/edge (sequential, walked per iteration)
	outCSR region // outgoing edge array, 4 B/edge (sequential contribution pass)
	total  uint64
}

// graphCache memoizes generated graphs: experiment sweeps rebuild the
// same workload dozens of times and Kronecker generation dominates their
// host time at larger scales. Graphs are immutable after generation.
var graphCache = map[KroneckerParams]*Graph{}

// NewGapBS generates the graph (memoized) and lays out the address space.
func NewGapBS(p GapBSParams) *GapBS {
	kp := DefaultKronecker(p.Scale, p.EdgeFactor, p.Seed)
	g, ok := graphCache[kp]
	if !ok {
		g = GenerateKronecker(kp)
		graphCache[kp] = g
	}
	var l layout
	w := &GapBS{p: p, g: g}
	w.scores = l.add(int64(g.NumVertices) * p.BytesPerVertex)
	w.offs = l.add(int64(g.NumVertices+1) * 8)
	w.inCSR = l.add(g.NumEdges() * 8)
	w.outCSR = l.add(g.NumEdges() * 4)
	w.total = l.next
	return w
}

// Name implements Workload.
func (w *GapBS) Name() string { return "gapbs-pagerank" }

// NumPages implements Workload.
func (w *GapBS) NumPages() uint64 { return w.total }

// Graph exposes the underlying graph (tests, examples).
func (w *GapBS) Graph() *Graph { return w.g }

// ScorePages returns the score region size (tests).
func (w *GapBS) ScorePages() uint64 { return w.scores.pages }

// Streams implements Workload: thread i processes the contiguous vertex
// shard OpenMP static scheduling would give it.
func (w *GapBS) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		lo, hi := shard(w.g.NumVertices, threads, t)
		out[t] = w.threadStream(lo, hi)
	}
	_ = seed // deterministic given the graph; kept for interface symmetry
	return out
}

// threadStream yields, per iteration and per vertex: the offset read, the
// sequential in-CSR walk (one access per page boundary), a random score
// read per in-edge carrying the per-edge compute, a stride through the
// thread's slice of the out-CSR, and the score write-back.
func (w *GapBS) threadStream(lo, hi int) core.AccessStream {
	iter, v := 0, lo
	var pending []core.Access
	pos := 0
	const noPage = ^uint64(0)
	lastOffPage := noPage
	lastInPage := noPage
	lastOutPage := noPage
	refill := func() bool {
		pending = pending[:0]
		pos = 0
		for len(pending) == 0 {
			if iter >= w.p.Iterations {
				return false
			}
			if v >= hi {
				iter++
				v = lo
				lastOffPage, lastInPage, lastOutPage = noPage, noPage, noPage
				continue
			}
			// Offset array read (page-boundary granularity).
			if pg := w.offs.page(int64(v) * 8); pg != lastOffPage {
				lastOffPage = pg
				pending = append(pending, core.Access{Page: pg, Compute: w.p.vertexCompute()})
			}
			start, end := w.g.Offsets[v], w.g.Offsets[v+1]
			for e := start; e < end; e++ {
				// Incoming CSR walked sequentially: page boundaries only.
				if pg := w.inCSR.page(e * 8); pg != lastInPage {
					lastInPage = pg
					pending = append(pending, core.Access{Page: pg, Compute: w.p.edgeCompute()})
				}
				// Random score gather of the in-neighbor: the per-edge
				// work of pull PageRank.
				u := w.g.Neighbors[e]
				pending = append(pending, core.Access{
					Page:    w.scores.page(int64(u) * w.p.BytesPerVertex),
					Compute: w.p.edgeCompute(),
				})
				// Outgoing CSR contribution pass (sequential, page
				// boundaries only).
				if pg := w.outCSR.page(e * 4); pg != lastOutPage {
					lastOutPage = pg
					pending = append(pending, core.Access{Page: pg, Compute: w.p.edgeCompute()})
				}
			}
			// Score write-back for v.
			pending = append(pending, core.Access{
				Page: w.scores.page(int64(v) * w.p.BytesPerVertex), Write: true,
				Compute: w.p.vertexCompute(),
			})
			v++
		}
		return true
	}
	return core.FuncStream(func() (core.Access, bool) {
		if pos >= len(pending) {
			if !refill() {
				return core.Access{}, false
			}
		}
		a := pending[pos]
		pos++
		return a, true
	})
}

// RandomScoreProbe returns a stream of n uniformly random score-array
// reads — used by microbenchmark-style experiments that want GapBS's
// address-space shape without full PageRank sweeps.
func (w *GapBS) RandomScoreProbe(n int, seed int64, compute sim.Time) core.AccessStream {
	rng := seedRNG(seed)
	i := 0
	return core.FuncStream(func() (core.Access, bool) {
		if i >= n {
			return core.Access{}, false
		}
		i++
		vtx := rng.Int63n(int64(w.g.NumVertices))
		return core.Access{Page: w.scores.page(vtx * w.p.BytesPerVertex), Compute: compute}, true
	})
}
