package workload

import (
	"mage/internal/core"
	"mage/internal/sim"
)

// MetisParams sizes the Metis MapReduce workload (word-count-style over a
// Wikipedia-sized corpus in the paper): a map phase streaming the input
// and scattering writes into an intermediate region, a BSP barrier, then
// a reduce phase streaming the intermediate region and writing output.
// The barrier is the explicit phase change of §6.2.
type MetisParams struct {
	// InputPages / IntermediatePages / OutputPages size the regions.
	InputPages        uint64
	IntermediatePages uint64
	OutputPages       uint64
	// EmitsPerInputPage is how many intermediate writes each input page
	// produces during map.
	EmitsPerInputPage int
	// MapCompute / ReduceCompute are per-page CPU costs.
	MapCompute    sim.Time
	ReduceCompute sim.Time
}

// DefaultMetis returns a scaled-down configuration in which the map
// working set (input) and the reduce working set (intermediate) are
// distinct, so the barrier forces a full working-set shift.
func DefaultMetis() MetisParams {
	return MetisParams{
		InputPages:        20 << 10,
		IntermediatePages: 12 << 10,
		OutputPages:       2 << 10,
		EmitsPerInputPage: 2,
		MapCompute:        900,
		ReduceCompute:     700,
	}
}

// Metis is the phase-changing MapReduce workload.
type Metis struct {
	p      MetisParams
	input  region
	inter  region
	output region

	// barrier synchronizes the map→reduce transition; built per Streams
	// call because it needs the engine.
	barrier *Barrier

	// PhaseSwitchAt records when the last thread entered reduce (set
	// during the run; read by experiments to split phase throughput).
	PhaseSwitchAt sim.Time
}

// NewMetis lays out the three regions.
func NewMetis(p MetisParams) *Metis {
	var l layout
	w := &Metis{p: p}
	w.input = l.addPages(p.InputPages)
	w.inter = l.addPages(p.IntermediatePages)
	w.output = l.addPages(p.OutputPages)
	return w
}

// Name implements Workload.
func (w *Metis) Name() string { return "metis" }

// ZeroFillRanges returns the intermediate and output regions: the map
// phase allocates them at run time, so their first faults are anonymous
// zero-fills with no remote content (this is why the paper's map phase
// stays near-baseline under offloading — only the input is real data).
func (w *Metis) ZeroFillRanges() [][2]uint64 {
	return [][2]uint64{
		{w.inter.base, w.inter.base + w.inter.pages},
		{w.output.base, w.output.base + w.output.pages},
	}
}

// NumPages implements Workload.
func (w *Metis) NumPages() uint64 {
	return w.input.pages + w.inter.pages + w.output.pages
}

// StreamsOn builds streams whose barrier lives on eng. The plain Streams
// requires SetEngine to have been called (via the System's engine).
func (w *Metis) StreamsOn(eng *sim.Engine, threads int, seed int64) []core.AccessStream {
	w.barrier = NewBarrier(eng, threads)
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		out[t] = w.threadStream(threads, t, seed)
	}
	return out
}

// Streams implements Workload; the BSP barrier requires an engine, so
// this panics — use StreamsOn. (Kept so Metis satisfies the interface for
// registry listings.)
func (w *Metis) Streams(threads int, seed int64) []core.AccessStream {
	panic("workload: Metis needs StreamsOn(engine, ...) for its phase barrier")
}

func (w *Metis) threadStream(threads, t int, seed int64) core.AccessStream {
	rng := threadRNG(seed, t, 6151)
	inLo, inHi := shard(int(w.input.pages), threads, t)
	interLo, interHi := shard(int(w.inter.pages), threads, t)
	outLo, outHi := shard(int(w.output.pages), threads, t)

	type phase int
	const (
		phaseMap phase = iota
		phaseBarrier
		phaseReduce
		phaseDone
	)
	ph := phaseMap
	pg := inLo
	emits := 0
	rpg := interLo
	outPending := false
	return core.FuncStream(func() (core.Access, bool) {
		for {
			switch ph {
			case phaseMap:
				if pg >= inHi {
					ph = phaseBarrier
					continue
				}
				if emits > 0 {
					emits--
					// Scatter an intermediate write (hash partitioning).
					return core.Access{
						Page:  w.inter.pageIdx(uint64(rng.Int63n(int64(w.inter.pages)))),
						Write: true, Compute: w.p.MapCompute / 4,
					}, true
				}
				a := core.Access{Page: w.input.base + uint64(pg), Compute: w.p.MapCompute}
				pg++
				emits = w.p.EmitsPerInputPage
				return a, true
			case phaseBarrier:
				ph = phaseReduce
				return core.Access{
					Skip: true,
					Wait: func(p *sim.Proc) {
						w.barrier.Wait(p)
						if p.Now() > w.PhaseSwitchAt {
							w.PhaseSwitchAt = p.Now()
						}
					},
				}, true
			case phaseReduce:
				if outPending {
					outPending = false
					op := outLo + (rpg-interLo)/8
					if op >= outHi {
						op = outHi - 1
					}
					if op < outLo {
						op = outLo
					}
					return core.Access{
						Page: w.output.base + uint64(op), Write: true,
						Compute: w.p.ReduceCompute / 4,
					}, true
				}
				if rpg >= interHi {
					ph = phaseDone
					continue
				}
				a := core.Access{Page: w.inter.base + uint64(rpg), Compute: w.p.ReduceCompute}
				rpg++
				// Every 8th reduce page also emits an output write.
				if (rpg-interLo)%8 == 0 && outHi > outLo {
					outPending = true
				}
				return a, true
			default:
				return core.Access{}, false
			}
		}
	})
}
