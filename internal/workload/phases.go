package workload

import (
	"math/rand"

	"mage/internal/core"
	"mage/internal/sim"
)

// KeyGen draws keys in [0, Keys). Zipfian and Scrambled satisfy it, so
// the phase combinators below compose with the existing popularity
// models. All generators are deterministic functions of the *rand.Rand
// they are handed — the same seed replays the same key sequence — which
// is what lets the DES and the magecache load generator share one
// traffic model.
type KeyGen interface {
	Next(rng *rand.Rand) int64
}

// Uniform draws keys uniformly over [0, n).
type Uniform struct{ n int64 }

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n int64) *Uniform { return &Uniform{n: n} }

// Next implements KeyGen.
func (u *Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.n) }

// HotStorm is a hot-key storm: StormFrac of the traffic collapses onto
// StormKeys specific keys (a viral post, a celebrity account, a
// thundering-herd cache fill), the rest follows the base popularity
// model. The storm keys are spread over the key space with the same FNV
// scramble Scrambled uses, so a storm does not accidentally align with
// the base distribution's hottest keys.
type HotStorm struct {
	base      KeyGen
	keys      int64
	stormKeys int64
	stormFrac float64
	stormSalt uint64
}

// NewHotStorm builds a storm over [0, keys): stormFrac of draws land on
// one of stormKeys scrambled hot keys, the remainder on base. salt
// decorrelates the storm set between runs/phases that share a key space.
func NewHotStorm(base KeyGen, keys, stormKeys int64, stormFrac float64, salt uint64) *HotStorm {
	if stormKeys < 1 {
		stormKeys = 1
	}
	if stormKeys > keys {
		stormKeys = keys
	}
	return &HotStorm{base: base, keys: keys, stormKeys: stormKeys, stormFrac: stormFrac, stormSalt: salt}
}

// Next implements KeyGen.
func (h *HotStorm) Next(rng *rand.Rand) int64 {
	if rng.Float64() < h.stormFrac {
		i := rng.Int63n(h.stormKeys)
		return int64(fnv64(uint64(i)^h.stormSalt) % uint64(h.keys))
	}
	return h.base.Next(rng)
}

// FlashCrowd models a flash crowd onto previously cold content: traffic
// shifts toward a contiguous cold segment of the key space, ramping
// linearly from zero to PeakFrac over RampDraws draws and holding there.
// Within the crowd segment keys are Zipf-popular (the crowd has its own
// hot items). The ramp is driven by the generator's own draw counter, so
// two generators with the same seed replay the same ramp.
type FlashCrowd struct {
	base      KeyGen
	crowd     *Zipfian
	crowdBase int64 // first key of the crowd segment
	peakFrac  float64
	rampDraws int64
	draws     int64
}

// NewFlashCrowd builds a crowd over the segment [crowdBase,
// crowdBase+crowdKeys) of [0, keys): the crowd's traffic share ramps
// 0→peakFrac over rampDraws draws.
func NewFlashCrowd(base KeyGen, keys, crowdBase, crowdKeys int64, peakFrac float64, rampDraws int64, theta float64) *FlashCrowd {
	if crowdKeys < 1 {
		crowdKeys = 1
	}
	if crowdKeys > keys {
		crowdKeys = keys
	}
	if crowdBase < 0 {
		crowdBase = 0
	}
	if crowdBase > keys-crowdKeys {
		crowdBase = keys - crowdKeys
	}
	if rampDraws < 1 {
		rampDraws = 1
	}
	return &FlashCrowd{
		base: base, crowd: NewZipfian(crowdKeys, theta),
		crowdBase: crowdBase, peakFrac: peakFrac, rampDraws: rampDraws,
	}
}

// Next implements KeyGen.
func (f *FlashCrowd) Next(rng *rand.Rand) int64 {
	frac := f.peakFrac
	if f.draws < f.rampDraws {
		frac = f.peakFrac * float64(f.draws) / float64(f.rampDraws)
	}
	f.draws++
	if rng.Float64() < frac {
		return f.crowdBase + f.crowd.Next(rng)
	}
	return f.base.Next(rng)
}

// Phase is one leg of a phased key stream: Draws keys from Gen. The
// last phase of a schedule may set Draws to 0, meaning "until the
// consumer stops".
type Phase struct {
	Name  string
	Draws int64
	Gen   KeyGen
}

// PhasedKeys walks a phase schedule: each Next draws from the current
// phase's generator and advances the schedule. It satisfies KeyGen, so
// phases nest. Not safe for sharing across threads — like every
// generator here, each stream owns its own.
type PhasedKeys struct {
	phases []Phase
	idx    int
	left   int64
}

// NewPhasedKeys builds a schedule from phases. Panics on an empty
// schedule.
func NewPhasedKeys(phases ...Phase) *PhasedKeys {
	if len(phases) == 0 {
		panic("workload: empty phase schedule")
	}
	return &PhasedKeys{phases: phases, left: phases[0].Draws}
}

// CurrentPhase returns the active phase's name.
func (p *PhasedKeys) CurrentPhase() string { return p.phases[p.idx].Name }

// Next implements KeyGen, advancing the schedule.
func (p *PhasedKeys) Next(rng *rand.Rand) int64 {
	for p.idx < len(p.phases)-1 && p.phases[p.idx].Draws > 0 && p.left <= 0 {
		p.idx++
		p.left = p.phases[p.idx].Draws
	}
	p.left--
	return p.phases[p.idx].Gen.Next(rng)
}

// StandardPhases is the canonical three-phase traffic model the
// magecache load generator and the DES share: steady Zipf(theta), then
// a hot-key storm (90% of traffic onto 16 keys), then a flash crowd
// ramping half the traffic onto a previously cold eighth of the key
// space. drawsPerPhase sizes each leg.
func StandardPhases(keys int64, theta float64, drawsPerPhase int64) []Phase {
	base := func() KeyGen { return NewScrambled(keys, theta) }
	crowdKeys := keys / 8
	if crowdKeys < 1 {
		crowdKeys = 1
	}
	return []Phase{
		{Name: "zipf", Draws: drawsPerPhase, Gen: base()},
		{Name: "hot-key-storm", Draws: drawsPerPhase, Gen: NewHotStorm(base(), keys, 16, 0.9, 0x5307)},
		{Name: "flash-crowd", Draws: drawsPerPhase, Gen: NewFlashCrowd(base(), keys, keys-crowdKeys, crowdKeys, 0.5, drawsPerPhase/2, theta)},
	}
}

// PhasedZipfParams sizes the phased closed-loop workload for the DES.
type PhasedZipfParams struct {
	// Pages is the buffer size in pages (one key per page).
	Pages uint64
	// AccessesPerThread is the closed-loop run length per thread.
	AccessesPerThread int
	// Theta is the steady-state Zipfian skew.
	Theta float64
	// WriteFraction dirties pages at this rate.
	WriteFraction float64
	// ComputePerAccess is the CPU work per access.
	ComputePerAccess sim.Time
}

// PhasedZipf is the DES mirror of the magecache load generator: the
// same StandardPhases schedule driving page accesses, so phase-change
// behaviour observed on real sockets can be reproduced (and swept)
// deterministically in the simulator.
type PhasedZipf struct {
	p   PhasedZipfParams
	buf region
}

// NewPhasedZipf lays out the buffer.
func NewPhasedZipf(p PhasedZipfParams) *PhasedZipf {
	var l layout
	w := &PhasedZipf{p: p}
	w.buf = l.addPages(p.Pages)
	return w
}

// Name implements Workload.
func (w *PhasedZipf) Name() string { return "phased-zipf" }

// NumPages implements Workload.
func (w *PhasedZipf) NumPages() uint64 { return w.buf.pages }

// Streams implements Workload: each thread walks its own copy of the
// standard phase schedule.
func (w *PhasedZipf) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		rng := threadRNG(seed, t, 6029)
		per := int64(w.p.AccessesPerThread) / 3
		if per < 1 {
			per = 1
		}
		gen := NewPhasedKeys(StandardPhases(int64(w.buf.pages), w.p.Theta, per)...)
		left := w.p.AccessesPerThread
		out[t] = core.FuncStream(func() (core.Access, bool) {
			if left <= 0 {
				return core.Access{}, false
			}
			left--
			pg := w.buf.pageIdx(uint64(gen.Next(rng)))
			write := rng.Float64() < w.p.WriteFraction
			return core.Access{Page: pg, Write: write, Compute: w.p.ComputePerAccess}, true
		})
	}
	return out
}
