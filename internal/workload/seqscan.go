package workload

import (
	"mage/internal/core"
	"mage/internal/sim"
)

// SeqScanParams sizes the sequential-scan microbenchmark: a dataframe-
// style checksum over a large buffer equally sharded among threads
// (§6.2, "regular access patterns" — the ideal case for prefetching).
type SeqScanParams struct {
	// Pages is the buffer size in pages (paper: 20 GB).
	Pages uint64
	// Iterations is how many passes each thread makes over its shard.
	Iterations int
	// ComputePerPage is the checksum cost per 4 KB page.
	ComputePerPage sim.Time
}

// DefaultSeqScan returns a scaled-down scan.
func DefaultSeqScan() SeqScanParams {
	return SeqScanParams{Pages: 1 << 15, Iterations: 1, ComputePerPage: 1500}
}

// SeqScan is the prefetchable sequential workload.
type SeqScan struct {
	p   SeqScanParams
	buf region
}

// NewSeqScan lays out the buffer.
func NewSeqScan(p SeqScanParams) *SeqScan {
	var l layout
	w := &SeqScan{p: p}
	w.buf = l.addPages(p.Pages)
	return w
}

// Name implements Workload.
func (w *SeqScan) Name() string { return "seqscan" }

// NumPages implements Workload.
func (w *SeqScan) NumPages() uint64 { return w.buf.pages }

// Streams implements Workload: thread i scans pages
// [i·P/T, (i+1)·P/T) in order, Iterations times.
func (w *SeqScan) Streams(threads int, seed int64) []core.AccessStream {
	out := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		lo, hi := shard(int(w.p.Pages), threads, t)
		iter, pg := 0, lo
		out[t] = core.FuncStream(func() (core.Access, bool) {
			if pg >= hi {
				iter++
				pg = lo
			}
			if iter >= w.p.Iterations {
				return core.Access{}, false
			}
			a := core.Access{Page: w.buf.base + uint64(pg), Compute: w.p.ComputePerPage}
			pg++
			return a, true
		})
	}
	return out
}
