// Package parexp regenerates experiment grids in parallel without
// perturbing their output.
//
// Every figure in the paper is a grid of independent cells: one
// (system, parameter) point simulated on its own sim.Engine with its
// own workload, seeded purely from the cell's identity. Because cells
// share nothing, they can run on host goroutines concurrently — the
// one place in this repository where host concurrency is allowed to
// touch simulation code. The determinism contract is preserved by
// construction:
//
//   - a cell's RNG seeds derive from the cell key (scale seed +
//     grid coordinates), never from worker identity or scheduling;
//   - each cell builds a private engine, so no simulated state is
//     shared across host goroutines;
//   - results land in a slice indexed by cell, so the rendered tables
//     are byte-identical to a sequential run regardless of completion
//     order.
//
// magevet grants this package an explicit allowance for goroutines and
// the sync import; everywhere else under internal/ they remain banned.
package parexp

import (
	"runtime"
	"sync"
)

// Map evaluates fn(i) for i in [0, n) and returns the results in cell
// order. workers <= 0 means GOMAXPROCS; workers == 1 runs inline on the
// calling goroutine (the sequential reference path — no goroutines are
// spawned); otherwise up to min(workers, n) host goroutines each pull
// cell indices from a shared feed.
//
// If any fn panics, Map re-panics after all workers drain, propagating
// the panic from the lowest-indexed failing cell so the surfaced error
// does not depend on scheduling.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	feed := make(chan int)
	panics := make([]interface{}, n)
	var failed bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				func() {
					defer func() {
						if v := recover(); v != nil {
							mu.Lock()
							panics[i] = v
							failed = true
							mu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
	if failed {
		for i := 0; i < n; i++ {
			if panics[i] != nil {
				panic(panics[i])
			}
		}
	}
	return out
}
