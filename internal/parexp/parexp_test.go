package parexp

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func square(i int) int { return i * i }

func TestMapPreservesCellOrder(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 7, 100, 1000} {
		got := Map(100, workers, square)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of cell order", workers)
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	// The core byte-identity property at the Map level: parallel output
	// equals the workers=1 reference for a fn whose value depends only
	// on the cell index.
	fn := func(i int) string { return fmt.Sprintf("cell-%d:%d", i, i*31) }
	seq := Map(57, 1, fn)
	par := Map(57, 8, fn)
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel results differ from sequential reference")
	}
}

func TestMapSequentialRunsInline(t *testing.T) {
	// workers==1 must execute cells in index order on the caller's
	// goroutine — it is the reference path for determinism comparisons.
	var order []int
	Map(10, 1, func(i int) int {
		order = append(order, i) // safe only because it is inline
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline path ran cells out of order: %v", order)
		}
	}
}

func TestMapZeroAndNegativeCells(t *testing.T) {
	if got := Map(0, 4, square); got != nil {
		t.Errorf("Map(0) = %v, want nil", got)
	}
	if got := Map(-3, 4, square); got != nil {
		t.Errorf("Map(-3) = %v, want nil", got)
	}
}

func TestMapRunsEveryCellOnce(t *testing.T) {
	const n = 200
	var counts [n]int32
	Map(n, 16, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
}

func TestMapPanicPropagatesLowestCell(t *testing.T) {
	// Several cells panic; Map must surface the lowest-indexed one so
	// the error a user sees does not depend on host scheduling.
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Map swallowed the panic")
		}
		if v != "boom-3" {
			t.Fatalf("propagated panic %v, want boom-3 (lowest failing cell)", v)
		}
	}()
	Map(64, 8, func(i int) int {
		if i == 3 || i == 40 || i == 63 {
			panic(fmt.Sprintf("boom-%d", i))
		}
		return i
	})
}

func TestMapPanicSequential(t *testing.T) {
	defer func() {
		if v := recover(); v != "seq-boom" {
			t.Fatalf("recovered %v, want seq-boom", v)
		}
	}()
	Map(5, 1, func(i int) int {
		if i == 2 {
			panic("seq-boom")
		}
		return i
	})
}
