package sim

// Chan is a bounded FIFO queue connecting simulated processes, analogous to
// a buffered Go channel but operating in virtual time. A capacity of 0 is
// treated as 1 (the engine has no rendezvous primitive and none of the
// simulated systems need one).
type Chan[T any] struct {
	eng      *Engine
	name     string
	buf      []T
	cap      int
	closed   bool
	notEmpty *WaitQueue
	notFull  *WaitQueue
}

// NewChan returns a bounded queue with the given capacity.
func NewChan[T any](eng *Engine, name string, capacity int) *Chan[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan[T]{
		eng:      eng,
		name:     name,
		cap:      capacity,
		notEmpty: NewWaitQueue(eng, name+".notEmpty"),
		notFull:  NewWaitQueue(eng, name+".notFull"),
	}
}

// Len returns the number of queued items.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap returns the capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Put appends v, blocking while the queue is full. It panics if the queue
// is closed.
func (c *Chan[T]) Put(p *Proc, v T) {
	for len(c.buf) >= c.cap {
		if c.closed {
			panic("sim: Put on closed Chan " + c.name)
		}
		c.notFull.Wait(p)
	}
	if c.closed {
		panic("sim: Put on closed Chan " + c.name)
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal(1)
}

// TryPut appends v if there is room and reports whether it did.
func (c *Chan[T]) TryPut(v T) bool {
	if c.closed || len(c.buf) >= c.cap {
		return false
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal(1)
	return true
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false if the queue is closed and drained.
func (c *Chan[T]) Get(p *Proc) (v T, ok bool) {
	for len(c.buf) == 0 {
		if c.closed {
			return v, false
		}
		c.notEmpty.Wait(p)
	}
	v = c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf = c.buf[:len(c.buf)-1]
	c.notFull.Signal(1)
	return v, true
}

// TryGet removes the oldest item without blocking.
func (c *Chan[T]) TryGet() (v T, ok bool) {
	if len(c.buf) == 0 {
		return v, false
	}
	v = c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf = c.buf[:len(c.buf)-1]
	c.notFull.Signal(1)
	return v, true
}

// Close marks the queue closed and wakes all blocked readers.
func (c *Chan[T]) Close() {
	c.closed = true
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}
