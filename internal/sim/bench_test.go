package sim

import (
	"testing"
)

// BenchmarkEngineDispatch measures the scheduler's per-event cost: a
// small set of processes repeatedly sleep, so every iteration is one
// event through schedule → heap → dispatch → park/resume. ns/op is host
// nanoseconds per dispatched event.
func BenchmarkEngineDispatch(b *testing.B) {
	const procs = 8
	eng := NewEngine()
	per := b.N / procs
	b.ResetTimer()
	for i := 0; i < procs; i++ {
		eng.Spawn("sleeper", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(Time(1 + j%7))
			}
		})
	}
	eng.Run()
	b.StopTimer()
	if eng.Live() != 0 {
		b.Fatalf("%d processes still live", eng.Live())
	}
	b.ReportMetric(float64(per*procs)*1e9/float64(b.Elapsed().Nanoseconds()), "events/s")
}

// BenchmarkEngineDispatchSharded measures per-event cost on a sharded
// engine shaped like a rack grid: 4 event-queue shards, 8 domains of 4
// sleeper processes each, so every dispatch goes through the
// cross-shard (time, seq, domain) merge. events/s here is the pinned
// floor for rack-scale runs (see the benchsnap -require in the
// Makefile).
func BenchmarkEngineDispatchSharded(b *testing.B) {
	const (
		domains = 8
		perDom  = 4
		procs   = domains * perDom
	)
	eng := NewEngineShards(4)
	per := b.N / procs
	b.ResetTimer()
	for i := 0; i < procs; i++ {
		dom := i % domains
		eng.SpawnIn(dom, "sleeper", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(Time(1 + (j+dom)%7))
			}
		})
	}
	eng.Run()
	b.StopTimer()
	if eng.Live() != 0 {
		b.Fatalf("%d processes still live", eng.Live())
	}
	b.ReportMetric(float64(per*procs)*1e9/float64(b.Elapsed().Nanoseconds()), "events/s")
}

// BenchmarkEngineDispatchCancel stresses the lazy-cancellation path:
// every wait is signaled just before its timeout, so each round schedules
// a timeout event, cancels it, and the canceled carcass must be popped
// (and with the freelist, recycled) later.
func BenchmarkEngineDispatchCancel(b *testing.B) {
	eng := NewEngine()
	q := NewWaitQueue(eng, "bench")
	rounds := b.N
	b.ResetTimer()
	eng.Spawn("waiter", func(p *Proc) {
		for j := 0; j < rounds; j++ {
			q.WaitTimeout(p, 100)
		}
	})
	eng.Spawn("signaler", func(p *Proc) {
		for j := 0; j < rounds; j++ {
			p.Sleep(10)
			q.Signal(1)
		}
	})
	eng.Run()
	b.StopTimer()
	if eng.Live() != 0 {
		b.Fatalf("%d processes still live", eng.Live())
	}
}
