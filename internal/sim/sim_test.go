package sim

import (
	"fmt"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1500)
		at = p.Now()
	})
	end := e.Run()
	if at != 1500 {
		t.Errorf("proc observed t=%v, want 1500", at)
	}
	if end != 1500 {
		t.Errorf("Run returned %v, want 1500", end)
	}
}

func TestNegativeSleepClampsToZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("time moved backwards: %v", p.Now())
		}
	})
	e.Run()
}

func TestEventOrderingIsFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			order = append(order, p.Name())
		})
	}
	e.Run()
	for i, n := range order {
		want := fmt.Sprintf("p%d", i)
		if n != want {
			t.Fatalf("order[%d] = %q, want %q (full order %v)", i, n, want, order)
		}
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(Time(10 * (i + 1)))
					trace = append(trace, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			if c.Now() != 10 {
				t.Errorf("child started at %v, want 10", c.Now())
			}
			childRan = true
		})
		p.Sleep(10)
	})
	e.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			steps++
		}
	})
	now := e.RunUntil(55)
	if now != 55 {
		t.Errorf("RunUntil returned %v, want 55", now)
	}
	if steps != 5 {
		t.Errorf("steps = %d, want 5", steps)
	}
	e.Run() // drains the rest
	if steps != 100 {
		t.Errorf("after Run, steps = %d, want 100", steps)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	q := NewWaitQueue(e, "never")
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	e.Run()
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("panic value = %v, want boom", r)
		}
	}()
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	e.Run()
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	e := NewEngine()
	mu := NewMutex(e, "mu")
	var order []string
	inside := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, p.Name())
			p.Sleep(100)
			inside--
			mu.Unlock(p)
		})
	}
	e.Run()
	want := []string{"w0", "w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
	if mu.Contended != 3 {
		t.Errorf("Contended = %d, want 3", mu.Contended)
	}
	// w1 waits 100, w2 waits 200, w3 waits 300.
	if mu.WaitNs != 600 {
		t.Errorf("WaitNs = %d, want 600", mu.WaitNs)
	}
	if mu.MaxWaitNs != 300 {
		t.Errorf("MaxWaitNs = %d, want 300", mu.MaxWaitNs)
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine()
	mu := NewMutex(e, "mu")
	e.Spawn("a", func(p *Proc) {
		if !mu.TryLock(p) {
			t.Error("first TryLock should succeed")
		}
		if mu.TryLock(p) {
			t.Error("second TryLock should fail")
		}
		mu.Unlock(p)
	})
	e.Run()
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	mu := NewMutex(e, "mu")
	e.Spawn("a", func(p *Proc) { mu.Unlock(p) })
	e.Run()
}

func TestWaitQueueSignalFIFO(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	var woke []string
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p)
			woke = append(woke, p.Name())
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(10)
		if n := q.Signal(2); n != 2 {
			t.Errorf("Signal(2) = %d", n)
		}
		p.Sleep(10)
		if n := q.Broadcast(); n != 1 {
			t.Errorf("Broadcast = %d", n)
		}
	})
	e.Run()
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order = %v", woke)
		}
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	e.Spawn("w", func(p *Proc) {
		ok := q.WaitTimeout(p, 50)
		if ok {
			t.Error("expected timeout")
		}
		if p.Now() != 50 {
			t.Errorf("woke at %v, want 50", p.Now())
		}
		if q.Len() != 0 {
			t.Errorf("queue still has %d waiters after timeout", q.Len())
		}
	})
	e.Run()
}

func TestWaitTimeoutSignaledEarly(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	e.Spawn("w", func(p *Proc) {
		ok := q.WaitTimeout(p, 1000)
		if !ok {
			t.Error("expected signal, got timeout")
		}
		if p.Now() != 20 {
			t.Errorf("woke at %v, want 20", p.Now())
		}
	})
	e.Spawn("s", func(p *Proc) {
		p.Sleep(20)
		q.Signal(1)
	})
	end := e.Run()
	if end != 20 {
		t.Errorf("run ended at %v; stale timeout event should be canceled", end)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "s", 2)
	var maxInside, inside int
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(100)
			inside--
			s.Release(1)
		})
	}
	e.Run()
	if maxInside != 2 {
		t.Errorf("max concurrency = %d, want 2", maxInside)
	}
	if s.Count() != 2 {
		t.Errorf("final count = %d, want 2", s.Count())
	}
}

func TestChanPutGetOrder(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e, "c", 2)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Put(p, i)
			p.Sleep(1)
		}
		c.Close()
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := c.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(3)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e, "c", 1)
	var secondPutAt Time
	e.Spawn("producer", func(p *Proc) {
		c.Put(p, 1)
		c.Put(p, 2) // must block until consumer drains at t=100
		secondPutAt = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(100)
		if _, ok := c.TryGet(); !ok {
			t.Error("TryGet failed on non-empty chan")
		}
	})
	e.Run()
	if secondPutAt != 100 {
		t.Errorf("second Put completed at %v, want 100", secondPutAt)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestStopAbandonsRun(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(10)
			ticks++
			if ticks == 3 {
				e.Stop()
			}
		}
	})
	e.Run()
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
}

func BenchmarkSleepHandoff(b *testing.B) {
	e := NewEngine()
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkMutexUncontended(b *testing.B) {
	e := NewEngine()
	mu := NewMutex(e, "mu")
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mu.Lock(p)
			mu.Unlock(p)
		}
	})
	b.ResetTimer()
	e.Run()
}
