package sim

import (
	"runtime"
	"testing"
)

// stableGoroutines samples the goroutine count after letting freshly
// released goroutines finish exiting.
func stableGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		runtime.Gosched()
		m := runtime.NumGoroutine()
		if m == n {
			return n
		}
		n = m
	}
	return n
}

func TestShutdownReleasesAbandonedProcs(t *testing.T) {
	base := stableGoroutines()
	eng := NewEngine()
	q := NewWaitQueue(eng, "never-signaled")
	const procs = 50
	for i := 0; i < procs; i++ {
		eng.Spawn("parked", func(p *Proc) {
			q.Wait(p) // no one ever signals
		})
	}
	eng.Spawn("stopper", func(p *Proc) {
		p.Sleep(10)
		eng.Stop()
	})
	eng.RunUntil(MaxTime)
	if eng.Live() != procs {
		t.Fatalf("Live = %d before Shutdown, want %d", eng.Live(), procs)
	}

	eng.Shutdown()
	if eng.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", eng.Live())
	}
	if got := stableGoroutines(); got > base {
		t.Errorf("goroutines leaked: %d before, %d after Shutdown", base, got)
	}
}

func TestShutdownReleasesNeverRunProcs(t *testing.T) {
	// Processes spawned but never dispatched (engine stopped first) must
	// also exit: their poison arrives at the initial resume receive.
	eng := NewEngine()
	eng.Spawn("never-run", func(p *Proc) {
		t.Error("process body ran after Stop")
	})
	eng.Stop()
	eng.Run()
	eng.Shutdown()
	if eng.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", eng.Live())
	}
}

func TestShutdownIsIdempotentAndNoOpWhenDrained(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Spawn("worker", func(p *Proc) {
		p.Sleep(5)
		ran = true
	})
	eng.Run()
	if !ran {
		t.Fatal("worker did not run")
	}
	eng.Shutdown()
	eng.Shutdown()
	if eng.Live() != 0 {
		t.Fatalf("Live = %d, want 0", eng.Live())
	}
}

func TestShutdownUnwindsDefersInProcs(t *testing.T) {
	// The poison wake must unwind the process stack so its defers run —
	// that is what makes Shutdown safe for processes holding resources.
	eng := NewEngine()
	cleaned := false
	mu := NewMutex(eng, "held")
	eng.Spawn("holder", func(p *Proc) {
		mu.Lock(p)
		defer func() { cleaned = true }()
		NewWaitQueue(eng, "forever").Wait(p)
	})
	eng.Spawn("stopper", func(p *Proc) {
		p.Sleep(1)
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	if !cleaned {
		t.Error("deferred cleanup did not run during Shutdown")
	}
}

func TestShutdownAfterDeadlineRun(t *testing.T) {
	// The RunWithOptions deadline path: the clock stops mid-workload
	// with sleepers still pending; Shutdown must release them too.
	eng := NewEngine()
	eng.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(100)
		}
	})
	if at := eng.RunUntil(1000); at != 1000 {
		t.Fatalf("RunUntil returned t=%v, want 1000", at)
	}
	eng.Shutdown()
	if eng.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", eng.Live())
	}
}
