// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine provides virtual time measured in integer nanoseconds and
// cooperatively scheduled processes (goroutines that run one at a time,
// hand-off style). All far-memory experiments in this repository run on
// this engine so that results are reproducible bit-for-bit: given the same
// seed and configuration, every run produces the same event order and the
// same measurements.
//
// A process interacts with the engine only through its *Proc handle:
//
//	eng := sim.NewEngine()
//	eng.Spawn("worker", func(p *sim.Proc) {
//		p.Sleep(100)        // advance virtual time by 100 ns
//		mu.Lock(p)          // FIFO-queued mutex; waiting costs virtual time
//		defer mu.Unlock(p)
//		...
//	})
//	eng.Run()
//
// Exactly one process executes at any instant, so code between blocking
// calls (Sleep, Lock, Wait, ...) never races with other processes and needs
// no host-level synchronization.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"mage/internal/invariant"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// wakeReason records why a blocked process resumed.
type wakeReason int

const (
	wakeNone wakeReason = iota
	wakeSleep
	wakeSignal
	wakeTimeout
)

type event struct {
	at       Time
	seq      uint64
	p        *Proc
	reason   wakeReason
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Proc is the handle a simulated process uses to interact with the engine.
type Proc struct {
	eng     *Engine
	name    string
	id      int
	resume  chan wakeReason
	blocked bool   // parked with no pending event (waiting on a queue)
	pending *event // the single scheduled wake event, if any
	exited  bool
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a small unique integer identifying this process.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine runs the simulation: it owns the virtual clock and the event queue.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	cur     *Proc
	procs   map[*Proc]struct{} // live processes only
	live    int
	nextID  int
	panicV  interface{}
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no processes.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of processes that have not yet exited.
func (e *Engine) Live() int { return e.live }

// Spawn creates a process that will begin executing fn at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		id:     e.nextID,
		resume: make(chan wakeReason),
	}
	e.nextID++
	e.live++
	e.procs[p] = struct{}{}
	e.scheduleWake(p, e.now, wakeSleep)
	go func() { //magevet:ok coroutine hand-off: exactly one process runs at a time, resumed by the engine

		r := <-p.resume
		_ = r
		defer func() {
			if v := recover(); v != nil {
				e.panicV = v
			}
			p.exited = true
			e.live--
			delete(e.procs, p)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

func (e *Engine) schedule(at Time, p *Proc, reason wakeReason) *event {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, p: p, reason: reason}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// scheduleWake arranges for p to resume at time at, canceling any
// previously pending wake.
func (e *Engine) scheduleWake(p *Proc, at Time, reason wakeReason) {
	if p.pending != nil {
		p.pending.canceled = true
	}
	p.pending = e.schedule(at, p, reason)
	p.blocked = false
}

// Run processes events until none remain or Stop is called. It returns the
// final virtual time. If processes remain blocked with no pending events
// (a simulated deadlock), Run panics with a description of the stuck
// processes. If any process panicked, Run re-panics with its value.
func (e *Engine) Run() Time {
	return e.RunUntil(MaxTime)
}

// RunUntil is like Run but stops once the clock would pass the deadline.
// Events at exactly the deadline still execute.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.at > deadline {
			// Put it back for a later RunUntil call.
			heap.Push(&e.events, ev)
			e.now = deadline
			return e.now
		}
		if invariant.Enabled {
			invariant.Assert(ev.at >= e.now,
				"sim: event at t=%v dispatched after clock reached t=%v", ev.at, e.now)
		}
		e.now = ev.at
		p := ev.p
		p.pending = nil
		e.cur = p
		p.resume <- ev.reason
		<-e.yield
		e.cur = nil
		if e.panicV != nil {
			panic(e.panicV)
		}
	}
	if !e.stopped && e.live > 0 {
		panic(fmt.Sprintf("sim: deadlock at t=%v: %d blocked process(es): %v",
			e.now, e.live, e.blockedNames()))
	}
	return e.now
}

func (e *Engine) blockedNames() []string {
	var names []string
	for p := range e.procs { //magevet:ok names are sorted below; used only in the deadlock panic message
		if !p.exited {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = append(names[:8], "...")
	}
	return names
}

// Stop makes Run return after the current event completes. Blocked
// processes are abandoned (their goroutines are leaked for the remainder of
// the host process; engines are cheap and short-lived in practice).
func (e *Engine) Stop() { e.stopped = true }

// park transfers control back to the engine and blocks until resumed.
func (p *Proc) park() wakeReason {
	p.eng.yield <- struct{}{}
	return <-p.resume
}

// Sleep advances this process's virtual time by d nanoseconds. Other
// processes run in the meantime. A non-positive d yields without advancing
// time (the process is rescheduled at the current instant, after any
// already-scheduled events at this instant).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleWake(p, p.eng.now+d, wakeSleep)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// event at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process with no pending event; some other process must
// call eng.wake to resume it.
func (p *Proc) block() wakeReason {
	p.blocked = true
	r := p.park()
	p.blocked = false
	return r
}

// wake resumes a process blocked in block(), at the current time.
func (e *Engine) wake(p *Proc, reason wakeReason) {
	if !p.blocked {
		panic("sim: wake of non-blocked process " + p.name)
	}
	e.scheduleWake(p, e.now, reason)
}
