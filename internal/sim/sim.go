// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine provides virtual time measured in integer nanoseconds and
// cooperatively scheduled processes (goroutines that run one at a time,
// hand-off style). All far-memory experiments in this repository run on
// this engine so that results are reproducible bit-for-bit: given the same
// seed and configuration, every run produces the same event order and the
// same measurements.
//
// A process interacts with the engine only through its *Proc handle:
//
//	eng := sim.NewEngine()
//	eng.Spawn("worker", func(p *sim.Proc) {
//		p.Sleep(100)        // advance virtual time by 100 ns
//		mu.Lock(p)          // FIFO-queued mutex; waiting costs virtual time
//		defer mu.Unlock(p)
//		...
//	})
//	eng.Run()
//
// Exactly one process executes at any instant, so code between blocking
// calls (Sleep, Lock, Wait, ...) never races with other processes and needs
// no host-level synchronization.
//
// # Sharded event queues
//
// Rack-scale simulations (many Nodes on one engine) keep the event queue
// large enough that heap sifts dominate dispatch. The engine therefore
// supports sharding the queue by process domain: every Proc belongs to a
// domain (a small integer, typically the rack node index), each domain
// maps onto one of N event-queue shards, and each shard keeps its own
// inlined binary heap and *event freelist. Dispatch merges the shard
// heads deterministically: the lowest (time, seq, domain) wins, where seq
// is a single engine-global counter, so the merged order is a total order
// that does not depend on the shard count. NewEngine() builds one shard;
// NewEngineShards(n) builds n. Digests are byte-identical at any n.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"        //magevet:ok teardown join only: Shutdown waits for process goroutines to finish unwinding; no simulation state is shared
	"sync/atomic" //magevet:ok engine-construction epoch only: seeds seq before any process runs; all simulation state stays single-threaded

	"mage/internal/invariant"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// wakeReason records why a blocked process resumed.
type wakeReason int

const (
	wakeNone wakeReason = iota
	wakeSleep
	wakeSignal
	wakeTimeout
	// wakePoison tells a parked process to unwind and exit (Shutdown).
	wakePoison
)

type event struct {
	at       Time
	seq      uint64
	p        *Proc
	reason   wakeReason
	canceled bool
}

// before is the event ordering: time, then schedule order. seq is issued
// by a single engine-global counter, so it is unique across shards and
// this is a total order: every shard layout pops events in exactly the
// same merged sequence. The cross-shard merge in next() additionally
// breaks (impossible) full ties by lowest domain, completing the
// documented (time, seq, domain) rule.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift loops
// are inlined here rather than going through container/heap: the
// interface boxing and indirect Less/Swap calls cost more than the
// comparisons themselves on this hot path.
type eventHeap []*event

func (h *eventHeap) push(ev *event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() *event {
	s := *h
	ev := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s[r].before(s[c]) {
			c = r
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return ev
}

// shard is one event-queue shard: its own heap and its own *event
// freelist, so steady-state scheduling in a domain touches only that
// domain's arrays. headAt/headSeq mirror the heap head's ordering key so
// the cross-shard merge scans contiguous keys instead of chasing *event
// pointers; refresh keeps them in sync after every heap mutation.
type shard struct {
	headAt  Time
	headSeq uint64
	events  eventHeap
	// free is the *event freelist: dispatched and canceled events are
	// recycled so steady-state scheduling allocates nothing.
	free []*event
}

// shardEmptyAt / shardEmptySeq are the cached-key sentinel for an empty
// shard. No real event can carry this key: seq counters start at an
// epoch-stride multiple and could not reach MaxUint64 in any run, so the
// sentinel loses every merge comparison against a real event.
const (
	shardEmptyAt  = MaxTime
	shardEmptySeq = math.MaxUint64
)

func (sh *shard) refresh() {
	if len(sh.events) > 0 {
		sh.headAt, sh.headSeq = sh.events[0].at, sh.events[0].seq
	} else {
		sh.headAt, sh.headSeq = shardEmptyAt, shardEmptySeq
	}
}

// Proc is the handle a simulated process uses to interact with the engine.
type Proc struct {
	eng     *Engine
	name    string
	id      int
	domain  int   // rack-node (or other) domain; routes events to a shard
	shard   int32 // cached domain % len(eng.shards)
	resume  chan wakeReason
	blocked bool   // parked with no pending event (waiting on a queue)
	pending *event // the single scheduled wake event, if any
	exited  bool
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a small unique integer identifying this process.
func (p *Proc) ID() int { return p.id }

// Domain returns the event-queue domain this process was spawned in.
func (p *Proc) Domain() int { return p.domain }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine runs the simulation: it owns the virtual clock and the event
// queue shards. Dispatch is distributed: a parking or exiting process
// pops the next merged event and resumes its target directly (one
// goroutine switch per event, zero when the next event is its own),
// returning control to the engine goroutine only when nothing is
// dispatchable. Exactly one goroutine is ever active, and every handoff
// goes through a channel, so the shared state below needs no locking and
// stays race-detector-clean.
type Engine struct {
	now      Time
	seq      uint64
	deadline Time
	shards   []shard
	yield    chan struct{}
	cur      *Proc
	procs    []*Proc // indexed by Proc.ID; nil once exited
	live     int
	panicV   interface{}
	stopped  bool
	// spawnDomain is the domain Spawn assigns when called from outside
	// any running process (setup code); spawns from inside a process
	// inherit the spawner's domain instead.
	spawnDomain int
	// reap counts process goroutines that have not finished unwinding;
	// Shutdown joins on it so that, once it returns, every goroutine the
	// engine ever spawned is gone (not merely poisoned and runnable).
	reap sync.WaitGroup
}

// DefaultShards is the shard count NewEngine uses. It exists so the
// shard-count equivalence suite (and any caller that builds engines
// indirectly, e.g. through experiment configs) can vary the shard count
// of every engine in the process without threading a parameter through
// each construction site. It must only be changed from the host test
// goroutine while no engine is running.
var DefaultShards = 1

// engineEpoch seeds each new engine's seq counter. Every engine gets a
// disjoint 2^40-wide seq range, mirroring how memnode seeds region IDs
// from an epoch: an engine constructed after another (e.g. a test that
// Shutdowns one engine and builds a replacement) can never reissue seq
// numbers the earlier engine used, so resumed or restarted runs cannot
// alias event ordering. Ordering within an engine only ever compares
// seqs sharing the same base, so the base offset is invisible to
// digests.
var engineEpoch atomic.Uint64

// seqEpochStride is the seq-number range reserved per engine. 2^40
// events per engine before ranges could touch, 2^24 engines per process
// before the epoch wraps — both orders of magnitude beyond any grid.
const seqEpochStride = 1 << 40

// NewEngine returns an engine with the clock at zero, no processes, and
// DefaultShards event-queue shards.
func NewEngine() *Engine {
	return NewEngineShards(DefaultShards)
}

// NewEngineShards returns an engine whose event queue is split into n
// shards (n < 1 is treated as 1). Processes route to shard
// domain % n. The merged dispatch order is byte-identical for every n.
func NewEngineShards(n int) *Engine {
	if n < 1 {
		n = 1
	}
	e := &Engine{
		seq:    engineEpoch.Add(1) * seqEpochStride,
		shards: make([]shard, n),
		yield:  make(chan struct{}),
	}
	for i := range e.shards {
		e.shards[i].refresh()
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of processes that have not yet exited.
func (e *Engine) Live() int { return e.live }

// Shards returns the number of event-queue shards.
func (e *Engine) Shards() int { return len(e.shards) }

// SetSpawnDomain sets the domain assigned to processes spawned from
// outside any running process (setup code). Rack construction points it
// at each node's index in turn so that a node's processes — and
// everything they spawn in turn, which inherits the spawner's domain —
// land in that node's event-queue shard.
func (e *Engine) SetSpawnDomain(d int) {
	if d < 0 {
		d = 0
	}
	e.spawnDomain = d
}

// poison is the panic value park uses to unwind a process being shut
// down; the spawn wrapper recognizes and swallows it.
type poison struct{}

// Spawn creates a process that will begin executing fn at the current
// virtual time. It may be called before Run or from inside a running
// process. The process inherits its domain from the spawning process,
// or from SetSpawnDomain when called from setup code.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	d := e.spawnDomain
	if e.cur != nil {
		d = e.cur.domain
	}
	return e.SpawnIn(d, name, fn)
}

// SpawnIn is Spawn with an explicit domain (negative domains are treated
// as 0). Events waking the process are queued on shard domain % Shards().
func (e *Engine) SpawnIn(domain int, name string, fn func(*Proc)) *Proc {
	if domain < 0 {
		domain = 0
	}
	p := &Proc{
		eng:    e,
		name:   name,
		id:     len(e.procs),
		domain: domain,
		shard:  int32(domain % len(e.shards)),
		resume: make(chan wakeReason),
	}
	e.live++
	e.procs = append(e.procs, p)
	e.scheduleWake(p, e.now, wakeSleep)
	e.reap.Add(1)
	go func() { //magevet:ok coroutine hand-off: exactly one process runs at a time, resumed by the engine

		// Registered first so it runs last, after the handoff below: by
		// the time Shutdown's join observes it, this goroutine has
		// nothing left to do but return.
		defer e.reap.Done()
		defer func() {
			if v := recover(); v != nil && v != (poison{}) {
				e.panicV = v
			}
			p.exited = true
			e.live--
			e.procs[p.id] = nil
			// Hand off like park does, except an exiting process can
			// never be its own successor (it has no pending event), and
			// a surfacing panic must reach the engine goroutine now.
			if e.panicV == nil {
				if ev := e.next(); ev != nil {
					e.dispatch(ev)
					return
				}
			}
			e.yield <- struct{}{}
		}()
		if r := <-p.resume; r == wakePoison {
			return
		}
		fn(p)
	}()
	return p
}

func (e *Engine) schedule(at Time, p *Proc, reason wakeReason) *event {
	if at < e.now {
		at = e.now
	}
	sh := &e.shards[p.shard]
	var ev *event
	if n := len(sh.free); n > 0 {
		ev = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		*ev = event{at: at, seq: e.seq, p: p, reason: reason}
	} else {
		ev = &event{at: at, seq: e.seq, p: p, reason: reason}
	}
	e.seq++
	sh.events.push(ev)
	if len(e.shards) > 1 {
		// Single-shard engines never consult the cached merge keys, so
		// the refresh stores are skipped on that fast path.
		sh.refresh()
	}
	return ev
}

// recycle returns a no-longer-referenced event to its shard's freelist.
// The event's process pointer locates the shard, so recycle must run
// before the pointer is cleared.
func (e *Engine) recycle(ev *event) {
	sh := &e.shards[ev.p.shard]
	ev.p = nil
	sh.free = append(sh.free, ev)
}

// next selects the next dispatchable event across all shards, recycling
// canceled carcasses when their key wins the merge (exactly when a
// single queue would have popped them). The merge rule: lowest
// (time, seq) among the cached shard-head keys wins, and the ascending
// shard scan breaks full ties by lowest domain — though seq is
// engine-global, so a full tie cannot occur and the merged order is
// independent of the shard count. It returns nil when control must pass
// back to the engine goroutine: every shard is drained, the engine is
// stopped, or the earliest event lies past the deadline (it stays
// queued for a later RunUntil).
func (e *Engine) next() *event {
	if e.stopped {
		return nil
	}
	if len(e.shards) == 1 {
		// Single-shard fast path: no merge scan on the common case.
		sh := &e.shards[0]
		for len(sh.events) > 0 {
			ev := sh.events[0]
			if ev.canceled {
				sh.events.pop()
				e.recycle(ev)
				continue
			}
			if ev.at > e.deadline {
				return nil
			}
			sh.events.pop()
			if invariant.Enabled {
				invariant.Assert(ev.at >= e.now,
					"sim: event at t=%v dispatched after clock reached t=%v", ev.at, e.now)
			}
			return ev
		}
		return nil
	}
	for {
		bestAt, bestSeq, best := shardEmptyAt, uint64(shardEmptySeq), -1
		for i := range e.shards {
			sh := &e.shards[i]
			if sh.headAt < bestAt || (sh.headAt == bestAt && sh.headSeq < bestSeq) {
				bestAt, bestSeq, best = sh.headAt, sh.headSeq, i
			}
		}
		if best < 0 || bestAt > e.deadline {
			return nil
		}
		sh := &e.shards[best]
		ev := sh.events.pop()
		sh.refresh()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if invariant.Enabled {
			invariant.Assert(ev.at >= e.now,
				"sim: event at t=%v dispatched after clock reached t=%v", ev.at, e.now)
		}
		return ev
	}
}

// queued reports how many events (including canceled carcasses) remain
// across all shards.
func (e *Engine) queued() int {
	n := 0
	for i := range e.shards {
		n += len(e.shards[i].events)
	}
	return n
}

// dispatch advances the clock to ev and resumes its process. It must
// only be called by the currently active goroutine; the caller blocks
// (or exits) immediately afterwards.
func (e *Engine) dispatch(ev *event) {
	e.now = ev.at
	q := ev.p
	reason := ev.reason
	q.pending = nil
	e.recycle(ev)
	e.cur = q
	q.resume <- reason
}

// scheduleWake arranges for p to resume at time at, canceling any
// previously pending wake.
func (e *Engine) scheduleWake(p *Proc, at Time, reason wakeReason) {
	if p.pending != nil {
		p.pending.canceled = true
	}
	p.pending = e.schedule(at, p, reason)
	p.blocked = false
}

// Run processes events until none remain or Stop is called. It returns the
// final virtual time. If processes remain blocked with no pending events
// (a simulated deadlock), Run panics with a description of the stuck
// processes. If any process panicked, Run re-panics with its value.
func (e *Engine) Run() Time {
	return e.RunUntil(MaxTime)
}

// RunUntil is like Run but stops once the clock would pass the deadline.
// Events at exactly the deadline still execute.
func (e *Engine) RunUntil(deadline Time) Time {
	e.deadline = deadline
	for !e.stopped {
		ev := e.next()
		if ev == nil {
			break
		}
		e.dispatch(ev)
		// The dispatched process (and those it hands off to in turn)
		// run the simulation; control returns here only when nothing is
		// dispatchable or a panic must surface.
		<-e.yield
		e.cur = nil
		if e.panicV != nil {
			panic(e.panicV)
		}
	}
	if !e.stopped {
		if e.queued() > 0 {
			// The next event lies beyond the deadline; leave it queued
			// for a later RunUntil call.
			e.now = deadline
			return e.now
		}
		if e.live > 0 {
			panic(fmt.Sprintf("sim: deadlock at t=%v: %d blocked process(es): %v",
				e.now, e.live, e.blockedNames()))
		}
	}
	return e.now
}

func (e *Engine) blockedNames() []string {
	var names []string
	for _, p := range e.procs {
		if p != nil && !p.exited {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = append(names[:8], "...")
	}
	return names
}

// Stop makes Run return after the current event completes. Blocked
// processes are abandoned but their goroutines stay parked; call
// Shutdown once Run has returned to release them.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown terminates every process that has not yet exited by resuming
// it with a poison wake that unwinds its stack. It must be called after
// Run/RunUntil has returned (never from inside a running process), and
// it is idempotent: a drained engine shuts down as a no-op. Engines that
// stop early (Stop, RunUntil deadlines) would otherwise leak one parked
// goroutine per abandoned process for the life of the host process.
func (e *Engine) Shutdown() {
	if e.cur != nil {
		panic("sim: Shutdown called from inside a running process")
	}
	e.stopped = true
	for _, p := range e.procs {
		if p == nil || p.exited {
			continue
		}
		p.resume <- wakePoison
		<-e.yield
	}
	// Join: every process goroutine (poisoned above or exited earlier)
	// has fully unwound before Shutdown returns, so callers — and
	// goroutine-leak checks in tests — never race with teardown.
	e.reap.Wait()
}

// park blocks the process until resumed. The parking process dispatches
// the next event itself: when that event is its own (consecutive sleeps
// with no one else runnable) it returns without any goroutine switch;
// when it belongs to another process control transfers directly to it;
// only when nothing is dispatchable does control bounce back to the
// engine goroutine. A poison wake (Shutdown) unwinds the process's stack
// instead of returning; the spawn wrapper swallows the sentinel panic.
func (p *Proc) park() wakeReason {
	e := p.eng
	if ev := e.next(); ev != nil {
		if ev.p == p {
			e.now = ev.at
			reason := ev.reason
			p.pending = nil
			e.recycle(ev)
			e.cur = p
			return reason
		}
		e.dispatch(ev)
	} else {
		e.yield <- struct{}{}
	}
	r := <-p.resume
	if r == wakePoison {
		panic(poison{})
	}
	return r
}

// Sleep advances this process's virtual time by d nanoseconds. Other
// processes run in the meantime. A non-positive d yields without advancing
// time (the process is rescheduled at the current instant, after any
// already-scheduled events at this instant).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleWake(p, p.eng.now+d, wakeSleep)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// event at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process with no pending event; some other process must
// call eng.wake to resume it.
func (p *Proc) block() wakeReason {
	p.blocked = true
	r := p.park()
	p.blocked = false
	return r
}

// wake resumes a process blocked in block(), at the current time.
func (e *Engine) wake(p *Proc, reason wakeReason) {
	if !p.blocked {
		panic("sim: wake of non-blocked process " + p.name)
	}
	e.scheduleWake(p, e.now, reason)
}
