// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine provides virtual time measured in integer nanoseconds and
// cooperatively scheduled processes (goroutines that run one at a time,
// hand-off style). All far-memory experiments in this repository run on
// this engine so that results are reproducible bit-for-bit: given the same
// seed and configuration, every run produces the same event order and the
// same measurements.
//
// A process interacts with the engine only through its *Proc handle:
//
//	eng := sim.NewEngine()
//	eng.Spawn("worker", func(p *sim.Proc) {
//		p.Sleep(100)        // advance virtual time by 100 ns
//		mu.Lock(p)          // FIFO-queued mutex; waiting costs virtual time
//		defer mu.Unlock(p)
//		...
//	})
//	eng.Run()
//
// Exactly one process executes at any instant, so code between blocking
// calls (Sleep, Lock, Wait, ...) never races with other processes and needs
// no host-level synchronization.
package sim

import (
	"fmt"
	"math"
	"sort"

	"mage/internal/invariant"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// wakeReason records why a blocked process resumed.
type wakeReason int

const (
	wakeNone wakeReason = iota
	wakeSleep
	wakeSignal
	wakeTimeout
	// wakePoison tells a parked process to unwind and exit (Shutdown).
	wakePoison
)

type event struct {
	at       Time
	seq      uint64
	p        *Proc
	reason   wakeReason
	canceled bool
}

// before is the event ordering: time, then schedule order. seq is unique
// per engine, so this is a total order and every heap implementation
// pops events in exactly the same sequence.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift loops
// are inlined here rather than going through container/heap: the
// interface boxing and indirect Less/Swap calls cost more than the
// comparisons themselves on this hot path.
type eventHeap []*event

func (h *eventHeap) push(ev *event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() *event {
	s := *h
	ev := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s[r].before(s[c]) {
			c = r
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return ev
}

// Proc is the handle a simulated process uses to interact with the engine.
type Proc struct {
	eng     *Engine
	name    string
	id      int
	resume  chan wakeReason
	blocked bool   // parked with no pending event (waiting on a queue)
	pending *event // the single scheduled wake event, if any
	exited  bool
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a small unique integer identifying this process.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine runs the simulation: it owns the virtual clock and the event
// queue. Dispatch is distributed: a parking or exiting process pops the
// next event and resumes its target directly (one goroutine switch per
// event, zero when the next event is its own), returning control to the
// engine goroutine only when nothing is dispatchable. Exactly one
// goroutine is ever active, and every handoff goes through a channel, so
// the shared state below needs no locking and stays race-detector-clean.
type Engine struct {
	now      Time
	seq      uint64
	deadline Time
	events   eventHeap
	// free is the *event freelist: dispatched and canceled events are
	// recycled so steady-state scheduling allocates nothing.
	free    []*event
	yield   chan struct{}
	cur     *Proc
	procs   []*Proc // indexed by Proc.ID; nil once exited
	live    int
	panicV  interface{}
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no processes.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of processes that have not yet exited.
func (e *Engine) Live() int { return e.live }

// poison is the panic value park uses to unwind a process being shut
// down; the spawn wrapper recognizes and swallows it.
type poison struct{}

// Spawn creates a process that will begin executing fn at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		id:     len(e.procs),
		resume: make(chan wakeReason),
	}
	e.live++
	e.procs = append(e.procs, p)
	e.scheduleWake(p, e.now, wakeSleep)
	go func() { //magevet:ok coroutine hand-off: exactly one process runs at a time, resumed by the engine

		defer func() {
			if v := recover(); v != nil && v != (poison{}) {
				e.panicV = v
			}
			p.exited = true
			e.live--
			e.procs[p.id] = nil
			// Hand off like park does, except an exiting process can
			// never be its own successor (it has no pending event), and
			// a surfacing panic must reach the engine goroutine now.
			if e.panicV == nil {
				if ev := e.next(); ev != nil {
					e.dispatch(ev)
					return
				}
			}
			e.yield <- struct{}{}
		}()
		if r := <-p.resume; r == wakePoison {
			return
		}
		fn(p)
	}()
	return p
}

func (e *Engine) schedule(at Time, p *Proc, reason wakeReason) *event {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: at, seq: e.seq, p: p, reason: reason}
	} else {
		ev = &event{at: at, seq: e.seq, p: p, reason: reason}
	}
	e.seq++
	e.events.push(ev)
	return ev
}

// recycle returns a no-longer-referenced event to the freelist.
func (e *Engine) recycle(ev *event) {
	ev.p = nil
	e.free = append(e.free, ev)
}

// next pops the next dispatchable event, recycling canceled carcasses.
// It returns nil when control must pass back to the engine goroutine:
// the heap is empty, the engine is stopped, or the next event lies past
// the deadline (in which case it is pushed back for a later RunUntil).
func (e *Engine) next() *event {
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if ev.at > e.deadline {
			e.events.push(ev)
			return nil
		}
		if invariant.Enabled {
			invariant.Assert(ev.at >= e.now,
				"sim: event at t=%v dispatched after clock reached t=%v", ev.at, e.now)
		}
		return ev
	}
	return nil
}

// dispatch advances the clock to ev and resumes its process. It must
// only be called by the currently active goroutine; the caller blocks
// (or exits) immediately afterwards.
func (e *Engine) dispatch(ev *event) {
	e.now = ev.at
	q := ev.p
	reason := ev.reason
	q.pending = nil
	e.recycle(ev)
	e.cur = q
	q.resume <- reason
}

// scheduleWake arranges for p to resume at time at, canceling any
// previously pending wake.
func (e *Engine) scheduleWake(p *Proc, at Time, reason wakeReason) {
	if p.pending != nil {
		p.pending.canceled = true
	}
	p.pending = e.schedule(at, p, reason)
	p.blocked = false
}

// Run processes events until none remain or Stop is called. It returns the
// final virtual time. If processes remain blocked with no pending events
// (a simulated deadlock), Run panics with a description of the stuck
// processes. If any process panicked, Run re-panics with its value.
func (e *Engine) Run() Time {
	return e.RunUntil(MaxTime)
}

// RunUntil is like Run but stops once the clock would pass the deadline.
// Events at exactly the deadline still execute.
func (e *Engine) RunUntil(deadline Time) Time {
	e.deadline = deadline
	for !e.stopped {
		ev := e.next()
		if ev == nil {
			break
		}
		e.dispatch(ev)
		// The dispatched process (and those it hands off to in turn)
		// run the simulation; control returns here only when nothing is
		// dispatchable or a panic must surface.
		<-e.yield
		e.cur = nil
		if e.panicV != nil {
			panic(e.panicV)
		}
	}
	if !e.stopped {
		if len(e.events) > 0 {
			// The next event lies beyond the deadline; leave it queued
			// for a later RunUntil call.
			e.now = deadline
			return e.now
		}
		if e.live > 0 {
			panic(fmt.Sprintf("sim: deadlock at t=%v: %d blocked process(es): %v",
				e.now, e.live, e.blockedNames()))
		}
	}
	return e.now
}

func (e *Engine) blockedNames() []string {
	var names []string
	for _, p := range e.procs {
		if p != nil && !p.exited {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = append(names[:8], "...")
	}
	return names
}

// Stop makes Run return after the current event completes. Blocked
// processes are abandoned but their goroutines stay parked; call
// Shutdown once Run has returned to release them.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown terminates every process that has not yet exited by resuming
// it with a poison wake that unwinds its stack. It must be called after
// Run/RunUntil has returned (never from inside a running process), and
// it is idempotent: a drained engine shuts down as a no-op. Engines that
// stop early (Stop, RunUntil deadlines) would otherwise leak one parked
// goroutine per abandoned process for the life of the host process.
func (e *Engine) Shutdown() {
	if e.cur != nil {
		panic("sim: Shutdown called from inside a running process")
	}
	e.stopped = true
	for _, p := range e.procs {
		if p == nil || p.exited {
			continue
		}
		p.resume <- wakePoison
		<-e.yield
	}
}

// park blocks the process until resumed. The parking process dispatches
// the next event itself: when that event is its own (consecutive sleeps
// with no one else runnable) it returns without any goroutine switch;
// when it belongs to another process control transfers directly to it;
// only when nothing is dispatchable does control bounce back to the
// engine goroutine. A poison wake (Shutdown) unwinds the process's stack
// instead of returning; the spawn wrapper swallows the sentinel panic.
func (p *Proc) park() wakeReason {
	e := p.eng
	if ev := e.next(); ev != nil {
		if ev.p == p {
			e.now = ev.at
			reason := ev.reason
			p.pending = nil
			e.recycle(ev)
			e.cur = p
			return reason
		}
		e.dispatch(ev)
	} else {
		e.yield <- struct{}{}
	}
	r := <-p.resume
	if r == wakePoison {
		panic(poison{})
	}
	return r
}

// Sleep advances this process's virtual time by d nanoseconds. Other
// processes run in the meantime. A non-positive d yields without advancing
// time (the process is rescheduled at the current instant, after any
// already-scheduled events at this instant).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleWake(p, p.eng.now+d, wakeSleep)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// event at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process with no pending event; some other process must
// call eng.wake to resume it.
func (p *Proc) block() wakeReason {
	p.blocked = true
	r := p.park()
	p.blocked = false
	return r
}

// wake resumes a process blocked in block(), at the current time.
func (e *Engine) wake(p *Proc, reason wakeReason) {
	if !p.blocked {
		panic("sim: wake of non-blocked process " + p.name)
	}
	e.scheduleWake(p, e.now, reason)
}
