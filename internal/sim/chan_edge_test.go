package sim

import "testing"

// TestChanGetDrainsBufferAfterClose: Close does not discard queued
// items; readers drain them first and only then see ok=false.
func TestChanGetDrainsBufferAfterClose(t *testing.T) {
	eng := NewEngine()
	c := NewChan[int](eng, "c", 4)
	var got []int
	var closedOK bool
	eng.Spawn("writer", func(p *Proc) {
		c.Put(p, 1)
		c.Put(p, 2)
		c.Close()
	})
	eng.Spawn("reader", func(p *Proc) {
		p.Sleep(10) // let the writer fill and close first
		for {
			v, ok := c.Get(p)
			if !ok {
				closedOK = true
				return
			}
			got = append(got, v)
		}
	})
	eng.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("drained %v, want [1 2]", got)
	}
	if !closedOK {
		t.Error("reader never observed the close")
	}
}

// TestChanGetBlockedReaderWokenByClose: a reader blocked on an empty
// channel is released by Close with ok=false.
func TestChanGetBlockedReaderWokenByClose(t *testing.T) {
	eng := NewEngine()
	c := NewChan[int](eng, "c", 1)
	var at Time
	ok := true
	eng.Spawn("reader", func(p *Proc) {
		_, ok = c.Get(p)
		at = p.Now()
	})
	eng.Spawn("closer", func(p *Proc) {
		p.Sleep(50)
		c.Close()
	})
	eng.Run()
	if ok {
		t.Error("Get on closed empty chan returned ok=true")
	}
	if at != 50 {
		t.Errorf("reader released at t=%v, want 50", at)
	}
}

// TestChanTryPutOnClosed: TryPut must refuse (not panic) on a closed
// channel, even when buffer space remains — the open-loop arrival
// process relies on this to shed load during shutdown races.
func TestChanTryPutOnClosed(t *testing.T) {
	eng := NewEngine()
	c := NewChan[int](eng, "c", 4)
	c.Close()
	if c.TryPut(7) {
		t.Error("TryPut succeeded on a closed chan")
	}
	if c.Len() != 0 {
		t.Errorf("closed chan holds %d items after TryPut", c.Len())
	}
}

// TestWaitTimeoutTieAtDeadline: when a Signal lands at the very instant
// the timeout fires, (at, seq) event order decides. Scheduled-first
// wins: a timeout armed before the signaler's wake event beats the
// signal; a signal dispatched first cancels the pending timeout. Both
// outcomes resume the waiter at exactly t=deadline.
func TestWaitTimeoutTieAtDeadline(t *testing.T) {
	run := func(waiterFirst bool) (signaled bool, at Time, ghosts int) {
		eng := NewEngine()
		q := NewWaitQueue(eng, "q")
		waiter := func(p *Proc) {
			signaled = q.WaitTimeout(p, 100)
			at = p.Now()
		}
		signaler := func(p *Proc) {
			p.Sleep(100) // exactly the deadline
			q.Signal(1)
		}
		if waiterFirst {
			eng.Spawn("waiter", waiter)
			eng.Spawn("signaler", signaler)
		} else {
			eng.Spawn("signaler", signaler)
			eng.Spawn("waiter", waiter)
		}
		eng.Run()
		return signaled, at, q.Len()
	}

	// Waiter spawns first: its timeout event carries the lower seq and
	// dispatches ahead of the signaler's wake, so the timeout fires and
	// the same-instant signal finds the queue already empty.
	signaled, at, ghosts := run(true)
	if signaled {
		t.Error("timeout armed first: WaitTimeout should report timeout at the tie")
	}
	if at != 100 {
		t.Errorf("waiter resumed at t=%v, want exactly 100", at)
	}
	if ghosts != 0 {
		t.Errorf("timed-out waiter still queued (%d waiters)", ghosts)
	}

	// Signaler spawns first: its wake dispatches ahead of the timeout,
	// and signaling cancels the pending timeout event.
	signaled, at, ghosts = run(false)
	if !signaled {
		t.Error("signal dispatched first: WaitTimeout should report the signal at the tie")
	}
	if at != 100 {
		t.Errorf("waiter resumed at t=%v, want exactly 100", at)
	}
	if ghosts != 0 {
		t.Errorf("wait queue still holds %d waiters", ghosts)
	}
}

// TestWaitTimeoutExpiryExactlyAtDeadline: with no signal, the timeout
// fires at exactly now+d, not a tick later, and the waiter is removed
// from the queue so a later Signal cannot release a ghost.
func TestWaitTimeoutExpiryExactlyAtDeadline(t *testing.T) {
	eng := NewEngine()
	q := NewWaitQueue(eng, "q")
	var signaled bool
	var at Time
	eng.Spawn("waiter", func(p *Proc) {
		signaled = q.WaitTimeout(p, 100)
		at = p.Now()
	})
	eng.Run()
	if signaled {
		t.Error("WaitTimeout reported a signal; none was sent")
	}
	if at != 100 {
		t.Errorf("timeout fired at t=%v, want exactly 100", at)
	}
	if q.Len() != 0 {
		t.Errorf("timed-out waiter still queued (%d waiters)", q.Len())
	}
	if released := q.Signal(1); released != 0 {
		t.Errorf("Signal released %d ghost waiter(s)", released)
	}
}
