package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// traceProgram runs a fixed multi-domain program on an engine with the
// given shard count and returns the exact execution trace: one
// "(t=..., proc)" entry per resumption. Two engines producing the same
// trace dispatched the same events in the same merged order.
func traceProgram(shards int) []string {
	eng := NewEngineShards(shards)
	var trace []string
	step := func(p *Proc, d Time) {
		p.Sleep(d)
		trace = append(trace, fmt.Sprintf("t=%d %s", p.Now(), p.Name()))
	}
	for dom := 0; dom < 5; dom++ {
		dom := dom
		eng.SpawnIn(dom, fmt.Sprintf("d%d", dom), func(p *Proc) {
			for i := 0; i < 40; i++ {
				// Deliberate cross-domain collisions at the same instant:
				// the merge order must still be seq order, not shard order.
				step(p, Time((i*7+dom*3)%11))
				if i%9 == dom%3 {
					p.Yield()
					trace = append(trace, fmt.Sprintf("t=%d %s yield", p.Now(), p.Name()))
				}
			}
			// Spawned children inherit the spawner's domain.
			p.eng.Spawn(fmt.Sprintf("child-of-%s", p.Name()), func(c *Proc) {
				step(c, 5)
			})
		})
	}
	eng.Run()
	return trace
}

// TestShardCountTraceIdentical asserts the merged dispatch order is
// byte-identical at 1, 2, 4, and 8 event-queue shards. This is the
// engine-level half of the shard-count equivalence suite; the
// experiment-level half (full golden digests per shard count) lives in
// internal/invariant.
func TestShardCountTraceIdentical(t *testing.T) {
	want := traceProgram(1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, n := range []int{2, 4, 8} {
		if got := traceProgram(n); !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("shards=%d diverges at step %d: got %q want %q", n, i, got[i], want[i])
				}
			}
			t.Fatalf("shards=%d trace length %d, want %d", n, len(got), len(want))
		}
	}
}

// TestDomainInheritance pins the domain-routing rules: SetSpawnDomain
// governs setup-time spawns, running processes pass their own domain to
// children, SpawnIn overrides both, and negatives clamp to zero.
func TestDomainInheritance(t *testing.T) {
	eng := NewEngineShards(4)
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", eng.Shards())
	}
	eng.SetSpawnDomain(3)
	got := map[string]int{}
	p := eng.Spawn("outer", func(p *Proc) {
		got["outer"] = p.Domain()
		eng.Spawn("inherited", func(c *Proc) { got["inherited"] = c.Domain() })
		eng.SpawnIn(1, "explicit", func(c *Proc) { got["explicit"] = c.Domain() })
		eng.SpawnIn(-7, "clamped", func(c *Proc) { got["clamped"] = c.Domain() })
		p.Sleep(1)
	})
	eng.Run()
	_ = p
	want := map[string]int{"outer": 3, "inherited": 3, "explicit": 1, "clamped": 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("domains = %v, want %v", got, want)
	}
	if e := NewEngineShards(0); e.Shards() != 1 {
		t.Fatalf("NewEngineShards(0).Shards() = %d, want 1", e.Shards())
	}
}

// TestSeqEpochNoAliasAcrossRestart pins the epoch seeding: an engine
// constructed after another one ran (the Shutdown/restart pattern in
// tests) starts its seq counter strictly above everything the earlier
// engine issued, so a resumed simulation can never reissue — and thus
// never reorder against — seq numbers from a previous engine's life.
func TestSeqEpochNoAliasAcrossRestart(t *testing.T) {
	first := NewEngine()
	for i := 0; i < 3; i++ {
		first.Spawn("w", func(p *Proc) {
			for j := 0; j < 100; j++ {
				p.Sleep(1)
			}
		})
	}
	first.RunUntil(50)
	first.Stop()
	first.Shutdown()

	second := NewEngine()
	if second.seq <= first.seq {
		t.Fatalf("restarted engine seq %d does not clear prior engine's last seq %d", second.seq, first.seq)
	}
	if second.seq%seqEpochStride != 0 {
		t.Fatalf("engine seq base %d not a stride multiple", second.seq)
	}
}
