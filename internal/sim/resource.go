package sim

// Mutex is a FIFO-queued lock for simulated processes. Waiting for a
// contended Mutex consumes virtual time; the engine records how much, which
// is how lock contention shows up in experiment results.
//
// The zero value is NOT usable; create with NewMutex so contention
// statistics are attached to an engine.
type Mutex struct {
	eng     *Engine
	name    string
	holder  *Proc
	waiters []*Proc
	waitAt  []Time

	// Contention statistics, readable at any time.
	Acquires  uint64 // total successful Lock calls
	Contended uint64 // Lock calls that had to wait
	WaitNs    int64  // total virtual ns spent waiting
	MaxWaitNs int64  // largest single wait
}

// NewMutex returns an unlocked mutex attached to eng.
func NewMutex(eng *Engine, name string) *Mutex {
	return &Mutex{eng: eng, name: name}
}

// Name returns the name given at construction.
func (m *Mutex) Name() string { return m.name }

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.holder != nil }

// QueueLen returns the number of processes waiting for the mutex.
func (m *Mutex) QueueLen() int { return len(m.waiters) }

// Lock acquires the mutex, blocking p in FIFO order if it is held.
func (m *Mutex) Lock(p *Proc) {
	m.Acquires++
	if m.holder == nil {
		m.holder = p
		return
	}
	m.Contended++
	m.waiters = append(m.waiters, p)
	m.waitAt = append(m.waitAt, p.eng.now)
	start := p.eng.now
	p.block()
	waited := int64(p.eng.now - start)
	m.WaitNs += waited
	if waited > m.MaxWaitNs {
		m.MaxWaitNs = waited
	}
	// Ownership was transferred by Unlock before we were woken.
	if m.holder != p {
		panic("sim: mutex handoff error on " + m.name)
	}
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.holder != nil {
		return false
	}
	m.Acquires++
	m.holder = p
	return true
}

// Unlock releases the mutex, handing it to the longest-waiting process if
// any. Only the holder may unlock.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic("sim: unlock of mutex " + m.name + " not held by " + p.name)
	}
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.waitAt = m.waitAt[:len(m.waitAt)-1]
	m.holder = next
	m.eng.wake(next, wakeSignal)
}

// AvgWait returns the mean virtual time spent waiting per acquisition, in
// nanoseconds.
func (m *Mutex) AvgWait() float64 {
	if m.Acquires == 0 {
		return 0
	}
	return float64(m.WaitNs) / float64(m.Acquires)
}

// WaitQueue is a condition-variable-like wait list. Processes Wait on it
// and are released in FIFO order by Signal or Broadcast.
type WaitQueue struct {
	eng     *Engine
	name    string
	waiters []*Proc

	Waits   uint64
	WaitNs  int64
	Signals uint64
}

// NewWaitQueue returns an empty wait queue attached to eng.
func NewWaitQueue(eng *Engine, name string) *WaitQueue {
	return &WaitQueue{eng: eng, name: name}
}

// Len returns the number of waiting processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait blocks p until a Signal or Broadcast releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.Waits++
	q.waiters = append(q.waiters, p)
	start := p.eng.now
	p.block()
	q.WaitNs += int64(p.eng.now - start)
}

// WaitTimeout blocks p until signaled or until d elapses. It reports true
// if the process was signaled and false on timeout.
func (q *WaitQueue) WaitTimeout(p *Proc, d Time) bool {
	q.Waits++
	q.waiters = append(q.waiters, p)
	start := p.eng.now
	// Schedule the timeout as the pending event; Signal cancels it.
	p.blocked = true
	p.pending = q.eng.schedule(q.eng.now+d, p, wakeTimeout)
	reason := p.park()
	p.blocked = false
	p.pending = nil
	q.WaitNs += int64(p.eng.now - start)
	if reason == wakeTimeout {
		q.remove(p)
		return false
	}
	return true
}

func (q *WaitQueue) remove(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Signal releases up to n waiting processes (FIFO) and returns how many it
// released.
func (q *WaitQueue) Signal(n int) int {
	released := 0
	for released < n && len(q.waiters) > 0 {
		p := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		// A WaitTimeout waiter has a pending timeout event; wake cancels it.
		q.eng.scheduleWake(p, q.eng.now, wakeSignal)
		released++
	}
	q.Signals += uint64(released)
	return released
}

// Broadcast releases all waiting processes.
func (q *WaitQueue) Broadcast() int { return q.Signal(len(q.waiters)) }

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	eng   *Engine
	name  string
	count int
	q     *WaitQueue
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(eng *Engine, name string, count int) *Semaphore {
	return &Semaphore{eng: eng, name: name, count: count, q: NewWaitQueue(eng, name+".q")}
}

// Count returns the number of currently available permits.
func (s *Semaphore) Count() int { return s.count }

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.q.Wait(p)
	}
	s.count--
}

// TryAcquire takes a permit without blocking and reports whether it did.
func (s *Semaphore) TryAcquire(*Proc) bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release returns n permits and wakes up to n waiters.
func (s *Semaphore) Release(n int) {
	s.count += n
	s.q.Signal(n)
}
