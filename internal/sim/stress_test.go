package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestManyProcsDeterministic stress-tests the scheduler with hundreds of
// processes contending on shared resources and verifies bit-identical
// replay.
func TestManyProcsDeterministic(t *testing.T) {
	run := func() (Time, uint64) {
		e := NewEngine()
		mu := NewMutex(e, "shared")
		sem := NewSemaphore(e, "sem", 3)
		var sum uint64
		for i := 0; i < 200; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				rng := rand.New(rand.NewSource(int64(i)))
				for k := 0; k < 20; k++ {
					switch rng.Intn(3) {
					case 0:
						mu.Lock(p)
						p.Sleep(Time(rng.Intn(50)))
						sum += uint64(i*k) & 0xff
						mu.Unlock(p)
					case 1:
						sem.Acquire(p)
						p.Sleep(Time(rng.Intn(30)))
						sem.Release(1)
					case 2:
						p.Sleep(Time(rng.Intn(100)))
					}
				}
			})
		}
		return e.Run(), sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

// TestChanFIFOProperty checks order preservation under random
// producer/consumer interleavings.
func TestChanFIFOProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		e := NewEngine()
		c := NewChan[int](e, "c", capacity)
		var got []int
		const n = 50
		e.Spawn("prod", func(p *Proc) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				p.Sleep(Time(rng.Intn(20)))
				c.Put(p, i)
			}
			c.Close()
		})
		e.Spawn("cons", func(p *Proc) {
			rng := rand.New(rand.NewSource(seed + 1))
			for {
				v, ok := c.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Sleep(Time(rng.Intn(25)))
			}
		})
		e.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMutexNeverHeldByTwo asserts the core safety property under churn.
func TestMutexNeverHeldByTwo(t *testing.T) {
	e := NewEngine()
	mu := NewMutex(e, "mu")
	holders := 0
	violated := false
	for i := 0; i < 64; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for k := 0; k < 10; k++ {
				mu.Lock(p)
				holders++
				if holders > 1 {
					violated = true
				}
				p.Sleep(7)
				holders--
				mu.Unlock(p)
				p.Sleep(3)
			}
		})
	}
	e.Run()
	if violated {
		t.Fatal("two processes held the mutex simultaneously")
	}
	if mu.Locked() {
		t.Fatal("mutex left locked after drain")
	}
}

// TestSemaphoreCountNeverNegative property-checks the semaphore.
func TestSemaphoreCountNeverNegative(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "s", 2)
	bad := false
	for i := 0; i < 40; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			if s.Count() < 0 {
				bad = true
			}
			p.Sleep(11)
			s.Release(1)
		})
	}
	e.Run()
	if bad {
		t.Fatal("semaphore count went negative")
	}
	if s.Count() != 2 {
		t.Fatalf("final count = %d", s.Count())
	}
}

// TestEngineLiveCountTracksProcs verifies bookkeeping used by the
// deadlock detector.
func TestEngineLiveCountTracksProcs(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { p.Sleep(Time(i * 10)) })
	}
	if e.Live() != 10 {
		t.Fatalf("Live = %d before run", e.Live())
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("Live = %d after run", e.Live())
	}
}
