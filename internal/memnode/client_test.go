package memnode

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time" // tests of the real TCP service need wall-clock timeouts
)

// fastOpts keeps the retry loop snappy under test.
func fastOpts() Options {
	return Options{
		DialTimeout: 500 * time.Millisecond,
		IOTimeout:   time.Second,
		MaxAttempts: 40,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
}

// TestClientSurvivesTruncatedResponse is the regression test for the
// connection-poisoning bug: a response that dies mid-frame used to leave
// the connection desynchronized, corrupting every later op. The client
// must instead mark the connection broken, reconnect, and retry
// transparently.
func TestClientSurvivesTruncatedResponse(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A fake in front of the real server: the first connection forwards
	// requests but truncates the first response mid-header and closes;
	// later connections proxy faithfully.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var connSeq int
	go func() {
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			connSeq++
			truncate := connSeq == 1
			go func(cli net.Conn, truncate bool) {
				defer cli.Close()
				up, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					return
				}
				defer up.Close()
				go func() {
					buf := make([]byte, 32<<10)
					for {
						n, err := cli.Read(buf)
						if n > 0 {
							up.Write(buf[:n])
						}
						if err != nil {
							return
						}
					}
				}()
				buf := make([]byte, 32<<10)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						if truncate {
							// Forward a partial response, then hang up.
							cli.Write(buf[:min(n, 4)])
							return
						}
						cli.Write(buf[:n])
					}
					if err != nil {
						return
					}
				}
			}(cli, truncate)
		}
	}()

	c, err := DialOptions(ln.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.Register(4 << 20)
	if err != nil {
		t.Fatalf("register across truncated response: %v", err)
	}
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i * 31)
	}
	if err := c.Write(id, 8192, page); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 8192, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Error("data corrupted after reconnect")
	}
	st := c.Metrics()
	if st.Retries == 0 {
		t.Errorf("expected retries after truncated response, got %+v", st)
	}
	if st.Reconnects == 0 {
		t.Errorf("expected a reconnect after truncated response, got %+v", st)
	}
}

// TestClientSurvivesServerRestart is the end-to-end robustness check:
// kill the memory node mid-workload, restart it on the same address, and
// require the client to ride it out via reconnect + REGISTER replay,
// with the recovery visible in its counters.
func TestClientSurvivesServerRestart(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	if err := c.Write(id, 0, page); err != nil {
		t.Fatal(err)
	}

	// Kill the node, then bring a fresh one up on the same address after
	// a beat (retrying the bind while the kernel releases the port).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var srv2 *Server
	restarted := make(chan struct{})
	go func() {
		defer close(restarted)
		// Hold the restart until the client has demonstrably issued ops
		// into the outage (a retry is on its counters) — the condition
		// the old fixed 150ms window was guessing at.
		outageDl := time.Now().Add(5 * time.Second) // bounding the outage window in a real-network test
		for c.Metrics().Retries == 0 && !time.Now().After(outageDl) {
			time.Sleep(5 * time.Millisecond) // polling for the first retry in a real-time test
		}
		for i := 0; i < 100; i++ {
			s, err := NewServer(addr, 64<<20)
			if err == nil {
				srv2 = s
				return
			}
			time.Sleep(20 * time.Millisecond) // waiting for the OS to release the port
		}
	}()

	// Ops issued into the outage must eventually succeed. The restarted
	// node has lost the region's content (it reads as zero), but the op
	// stream itself must not fail.
	if err := c.Write(id, 4096, page); err != nil {
		t.Fatalf("write across restart: %v", err)
	}
	got, err := c.Read(id, 4096, 4096)
	if err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Error("write-after-restart not durable on new node")
	}
	<-restarted
	if srv2 == nil {
		t.Fatal("server failed to restart")
	}
	defer srv2.Close()

	st := c.Metrics()
	if st.Reconnects == 0 {
		t.Errorf("expected reconnects across restart, got %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("expected retries across restart, got %+v", st)
	}
	if st.RegionReplays == 0 {
		t.Errorf("expected a REGISTER replay across restart, got %+v", st)
	}
}

// TestClientGivesUpWhenNodeStaysDown bounds the retry loop: with the
// node gone for good, ops must fail within MaxAttempts, not hang.
func TestClientGivesUpWhenNodeStaysDown(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.MaxAttempts = 3
	opts.BaseBackoff = time.Millisecond
	c, err := DialOptions(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Read(id, 0, 4096); err == nil {
		t.Fatal("read succeeded against a dead node")
	} else if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error should report exhausted attempts: %v", err)
	}
}

// TestServerChaos hammers the server with a mix of well-behaved clients
// and abusive connections that send partial frames and hang up
// mid-payload, then checks that Close returns promptly and no handler
// goroutines leak. Run under -race this also shakes out data races in
// the connection bookkeeping.
func TestServerChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := NewServer("127.0.0.1:0", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	id0 := func() uint64 {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		id, err := c.Register(64 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}()

	var wg sync.WaitGroup
	// Well-behaved clients doing real IO.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialOptions(srv.Addr(), fastOpts())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * (8 << 20)
			for i := 0; i < 30; i++ {
				pg := base + int64(rng.Intn(1024))*4096
				data := make([]byte, 4096)
				rng.Read(data)
				if err := c.Write(id0, pg, data); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				got, err := c.Read(id0, pg, 4096)
				if err != nil {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("worker %d corruption at %d", w, pg)
					return
				}
			}
		}()
	}
	// Abusive connections: partial headers, truncated WRITE payloads,
	// garbage opcodes, immediate hangups.
	for a := 0; a < 12; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				return // accept backlog under churn; not a failure
			}
			defer conn.Close()
			switch a % 4 {
			case 0: // partial header then hangup
				conn.Write([]byte{opRead, 1, 2, 3})
			case 1: // WRITE header promising a payload that never comes
				hdr := make([]byte, 25)
				hdr[0] = opWrite
				binary.LittleEndian.PutUint64(hdr[1:], id0)
				binary.LittleEndian.PutUint64(hdr[17:], 4096)
				conn.Write(hdr)
			case 2: // garbage opcode
				hdr := make([]byte, 25)
				hdr[0] = 0xEE
				conn.Write(hdr)
				io := make([]byte, 9)
				conn.SetReadDeadline(time.Now().Add(time.Second)) // bounding a chaos-test read
				conn.Read(io)
			case 3: // connect and immediately hang up
			}
		}()
	}
	wg.Wait()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Handler goroutines must drain. Close waits for them, but give the
	// runtime a moment to actually retire the stacks before counting.
	deadline := time.Now().Add(2 * time.Second) // goroutine-leak check needs wall time
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) { // goroutine-leak check needs wall time
			t.Fatalf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond) // polling for goroutine exit in a real-time test
	}
}

// TestCloseUnblocksIdleHandlers pins the Close contract: handlers parked
// in ReadFull on idle connections must be kicked out so Close returns.
func TestCloseUnblocksIdleHandlers(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Park three raw connections with no traffic.
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Nudge the server so the accept definitely happened.
		conn.Write([]byte{})
	}
	// Wait for the accepts to actually land (observed in the server's
	// connection table) rather than guessing a sleep.
	acceptDl := time.Now().Add(5 * time.Second) // bounding the accept wait in a real-network test
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(acceptDl) { // bounding the accept wait in a real-network test
			t.Fatalf("server accepted %d/3 connections before deadline", n)
		}
		time.Sleep(5 * time.Millisecond) // polling for accepts in a real-network test
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second): // bounding the Close-hangs failure mode
		t.Fatal("Close hung on idle connections")
	}
}
