package memnode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"        //magevet:ok memnode is a real TCP client, not virtual-time simulation code
	"sync/atomic" //magevet:ok lock-free robustness counters keep Metrics off the data path
	"time"
	"unsafe"
)

// Options tunes the client's robustness behavior: connection and per-op
// deadlines, the reconnect/retry policy, and the pipelining window. It
// mirrors the DES retry layer (core.RetryPolicy) in the real world.
type Options struct {
	// DialTimeout bounds each (re)connection attempt.
	DialTimeout time.Duration
	// IOTimeout bounds each request round trip (write + response read).
	IOTimeout time.Duration
	// MaxAttempts is how many times one op is tried across reconnects
	// before the error is surfaced. Page ops (READ/WRITE/REGISTER) are
	// idempotent, so retry-after-reconnect is always safe.
	MaxAttempts int
	// BaseBackoff doubles per consecutive failure up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Window bounds the operations one client keeps in flight on its
	// multiplexed connection (default 128). Ops beyond the window queue
	// at the client instead of on the wire.
	Window int
	// Protocol pins the wire protocol: 1 forces v1 stop-and-wait (no
	// HELLO is sent); any other value negotiates v2 with transparent
	// fallback to v1 when the server predates it.
	Protocol int
	// Transport selects the data plane. TransportAuto (the default)
	// takes the shared-memory ring transport whenever the server
	// advertises it and the platform supports it, falling back to TCP
	// transparently; TransportTCP pins TCP; TransportShm requires shm
	// and fails ops when it cannot be negotiated. Forcing Protocol to
	// v1 implies TransportTCP.
	Transport int
}

// Transport values for Options.Transport.
const (
	TransportAuto = iota
	TransportTCP
	TransportShm
)

// DefaultOptions returns the production defaults: patient enough to ride
// out a memnode restart, bounded enough to surface a dead node.
func DefaultOptions() Options {
	return Options{
		DialTimeout: 2 * time.Second,
		IOTimeout:   5 * time.Second,
		MaxAttempts: 8,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  time.Second,
		Window:      128,
		Protocol:    protoV2,
	}
}

func (o *Options) fillDefaults() {
	d := DefaultOptions()
	if o.DialTimeout <= 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = d.IOTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = d.MaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = d.BaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = d.MaxBackoff
	}
	if o.Window <= 0 {
		o.Window = d.Window
	}
	if o.Protocol != protoV1 {
		o.Protocol = protoV2
	}
	if o.Transport != TransportTCP && o.Transport != TransportShm {
		o.Transport = TransportAuto
	}
	if o.Protocol == protoV1 {
		o.Transport = TransportTCP
	}
}

// ClientStats counts the client's robustness events. All zero on a
// healthy connection.
type ClientStats struct {
	// Retries counts op attempts beyond the first.
	Retries uint64
	// Reconnects counts successful re-dials after the initial connect.
	Reconnects uint64
	// RegionReplays counts REGISTER replays after a server lost a region
	// (i.e. restarted).
	RegionReplays uint64
	// Timeouts counts stream failures caused by an expired deadline.
	Timeouts uint64
	// V1Fallbacks counts connections negotiated down to the v1
	// stop-and-wait protocol because the server rejected the HELLO.
	V1Fallbacks uint64
	// ShmConnects counts successful shared-memory transport
	// negotiations (segment mapped, rings live).
	ShmConnects uint64
	// ShmFallbacks counts connections that tried the shm transport and
	// fell back to TCP v2 (dial/handshake/validation failure).
	ShmFallbacks uint64

	// Per-verb op/byte counters of successfully completed operations,
	// counted at the public API (one ReadV is one ReadV op regardless of
	// transport decomposition or retries). Bytes are payload bytes
	// moved: response body for reads, request payload for writes, zero
	// for STATS. They make an application's fault/evict balance
	// observable at the wire: a pager's fault path shows up as
	// Read/ReadV, its write-behind evictor as WriteV.
	Read   VerbStats
	Write  VerbStats
	ReadV  VerbStats
	WriteV VerbStats
	Stats  VerbStats
}

// VerbStats counts one wire verb's completed operations and payload
// bytes.
type VerbStats struct {
	Ops   uint64
	Bytes uint64
}

// region is the client-side record of a region this client registered:
// the stable handle the caller holds (the region's original server ID)
// maps to the server's current — restart-volatile — ID plus the size
// needed to replay the REGISTER after a restart.
type region struct {
	size  int64
	srvID uint64
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("memnode: client closed")

// serverError is a terminal statusErr response: the server understood
// the request and rejected it, so retrying cannot help and the
// connection remains healthy.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "memnode: " + e.msg }

// errRegionLost is the in-client signal that the server answered
// statusErrRegion.
var errRegionLost = errors.New("memnode: server lost region")

// IsTerminal reports whether err is a terminal server rejection: the
// request was understood and refused (bad bounds, bad opcode, capacity)
// over a healthy connection. Layered clients (memcluster) use this to
// distinguish "this op can never succeed" from "this node is in
// trouble" — only the latter justifies failover and marking the node
// down.
func IsTerminal(err error) bool {
	var se *serverError
	return errors.As(err, &se)
}

// call is one operation attempt as the stream layer sees it: the wire
// fields, the payload vectors to writev after the header, and the
// completion state the reader fills in.
type call struct {
	op     byte
	handle uint64 // caller's stable region handle (do translates per attempt)
	srvID  uint64 // server's current region ID for this attempt
	offset int64
	length int64       // wire length field (payload bytes, read size, or region size)
	bufs   net.Buffers // request payload vectors (nil for READ/STAT/REGISTER)

	// Batch shape, kept so the v1 fallback can decompose the batch into
	// single-page ops with identical semantics.
	iovs  []iovec
	pages [][]byte

	id       uint64
	deadline time.Time
	body     []byte
	err      error

	// Completion gate. fin advances 0→finResolving→finDone exactly once
	// per attempt; a waiter parks on a lazily allocated channel only
	// when the completion has not already landed, so the shm
	// inline-polling fast path resolves calls without ever allocating a
	// channel. The intermediate finResolving state exists because the
	// completer must read waiter AFTER the fin transition (that order is
	// what makes a lost wakeup impossible) — waiters therefore treat
	// only finDone, the completer's final store to the struct, as
	// permission to return and let doPooled recycle the memory. Raw
	// atomic fields (not the typed atomic.Uint32/atomic.Pointer) because
	// do() copies the call per attempt — typed atomics embed noCopy and
	// would make that copy a vet violation. waiter holds a
	// *chan struct{}.
	fin    uint32
	waiter unsafe.Pointer

	// Arena extent backing this call on the shm transport (unused on
	// TCP streams).
	extOff int64
	extCap int64
}

// Completion gate states. The gap between finResolving and finDone is
// two instructions on the completer; waiters that catch it spin.
const (
	finPending   = 0 // in flight
	finResolving = 1 // body/err published, completer still reading waiter
	finDone      = 2 // completer's last store to the struct: safe to recycle
)

// complete resolves the call: at most once per attempt (a second
// completion is a demux bug and panics, exactly as double-closing the
// old completion channel did), waking the parked waiter if there is
// one. The fin transition and the waiter publication in wait are both
// sequentially consistent, so either complete observes the waiter or
// wait observes fin — a lost wakeup is impossible. The load of waiter
// must stay AFTER the fin transition for that argument to hold, which
// is why complete cannot simply finish with fin: the finDone store
// below is what tells waiters every access to the struct is over.
// close(ch) safely comes after finDone — it touches only the escaped
// channel allocation, never the call struct.
func (ca *call) complete() {
	if !atomic.CompareAndSwapUint32(&ca.fin, finPending, finResolving) {
		panic("memnode: double completion of one request")
	}
	w := atomic.LoadPointer(&ca.waiter)
	atomic.StoreUint32(&ca.fin, finDone)
	if w != nil {
		close(*(*chan struct{})(w))
	}
}

// completed reports whether the call has been fully resolved — body and
// err published AND the completer done touching the struct. Callers
// (the inline poller, wait) use it as permission to return the call to
// its pool, so finResolving must read as "not yet".
func (ca *call) completed() bool { return atomic.LoadUint32(&ca.fin) == finDone }

// awaitDone spins out the completer's resolving window. Bounded: the
// completer is between its fin transition and its finDone store.
func (ca *call) awaitDone() {
	for atomic.LoadUint32(&ca.fin) != finDone {
		runtime.Gosched()
	}
}

// wait blocks until the call completes, allocating the park channel
// only on the slow path.
func (ca *call) wait() {
	if atomic.LoadUint32(&ca.fin) != finPending {
		ca.awaitDone()
		return
	}
	ch := make(chan struct{})
	atomic.StorePointer(&ca.waiter, unsafe.Pointer(&ch))
	if atomic.LoadUint32(&ca.fin) != finPending {
		// Completed between the publish and this check. The completer may
		// or may not have seen ch (a stray close of it is harmless); what
		// matters is waiting out its final store before returning.
		ca.awaitDone()
		return
	}
	<-ch // closed only after finDone is already published
}

// resetGate rearms the completion gate for a fresh attempt. Callers
// guarantee no stale completer still references this struct (the same
// discipline the per-attempt copy in do() exists for).
func (ca *call) resetGate() {
	atomic.StoreUint32(&ca.fin, finPending)
	atomic.StorePointer(&ca.waiter, nil)
}

// link is one negotiated connection generation, whatever its data
// plane: a TCP stream (v1 or v2) or a shared-memory ring stream. The
// retry/reconnect/replay stack in do() is transport-agnostic above
// this interface.
type link interface {
	// exec runs one request and blocks until its response arrives or
	// the link dies.
	exec(ca *call) ([]byte, error)
	// alive reports whether the link has not been poisoned.
	alive() bool
	// fail poisons the link exactly once, failing all pending calls.
	fail(err error)
	// decomposeBatch reports whether batch verbs must be decomposed
	// into single-page ops client-side (true only for v1 streams).
	decomposeBatch() bool
	// exclusiveCall reports whether exec holds the only references to
	// its call struct once it returns. TCP streams return false: a
	// poisoned stream's writer may still be draining the old send queue
	// and touching queued call structs, so every attempt needs its own
	// copy. The shm stream returns true: submission is inline and
	// completion removes the call from the pending table before exec
	// returns, so do() can reuse one struct across attempts — which
	// keeps the hot path at a single call allocation per op.
	exclusiveCall() bool
}

// stream is one live connection generation. A v2 stream runs a writer
// goroutine (draining sendq, one writev per frame) and a reader
// goroutine (matching response frames to pending calls by ID); a v1
// stream degenerates to mutex-serialized stop-and-wait on the same
// struct. Any IO or protocol error poisons the whole stream: every
// pending call fails at once and the client re-dials lazily.
type stream struct {
	c    *Client
	conn net.Conn
	v1   bool

	v1mu sync.Mutex // serializes stop-and-wait exchanges on a v1 connection

	sendq chan *call
	dead  chan struct{}

	pmu     sync.Mutex // guards the pending-call table shared by writer/reader goroutines
	pending map[uint64]*call
	err     error
	idSrc   uint64 // last request ID issued; under pmu
}

func newStream(c *Client, conn net.Conn, v1 bool) *stream {
	s := &stream{
		c:       c,
		conn:    conn,
		v1:      v1,
		dead:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	if !v1 {
		s.sendq = make(chan *call, c.opts.Window+8)
		go s.writeLoop() //magevet:ok real TCP client: one writer goroutine per pipelined connection
		go s.readLoop()  //magevet:ok real TCP client: one reader/demux goroutine per pipelined connection
	}
	return s
}

// decomposeBatch reports whether this stream needs client-side batch
// decomposition (only the v1 stop-and-wait protocol does).
func (s *stream) decomposeBatch() bool { return s.v1 }

// exclusiveCall: false — the v2 writer goroutine may still touch a
// queued call struct after the stream is poisoned.
func (s *stream) exclusiveCall() bool { return false }

// alive reports whether the stream has not been poisoned.
func (s *stream) alive() bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.err == nil
}

// fail poisons the stream exactly once: the connection is closed, and
// every pending call completes with err. Later submissions are refused
// at the pending-table check.
func (s *stream) fail(err error) {
	s.pmu.Lock()
	if s.err != nil {
		s.pmu.Unlock()
		return
	}
	s.err = err
	pend := s.pending
	s.pending = nil
	close(s.dead)
	s.pmu.Unlock()
	_ = s.conn.Close() // the stream is already poisoned; nothing to salvage
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.c.timeouts.Add(1)
	}
	for _, ca := range pend { //magevet:ok fail-all on a poisoned stream: each pending call errors exactly once, order cannot matter
		ca.err = err
		ca.complete()
	}
}

// exec runs one request on the stream and blocks until its response
// arrives or the stream dies. Safe for any number of concurrent callers;
// that concurrency is exactly the pipeline.
func (s *stream) exec(ca *call) ([]byte, error) {
	ca.body, ca.err = nil, nil
	ca.deadline = time.Now().Add(s.c.opts.IOTimeout) //magevet:ok per-op network deadline
	if s.v1 {
		return s.execV1(ca)
	}
	ca.resetGate()
	s.pmu.Lock()
	if s.err != nil {
		err := s.err
		s.pmu.Unlock()
		return nil, err
	}
	s.idSrc++
	ca.id = s.idSrc
	s.pending[ca.id] = ca
	s.pmu.Unlock()
	select {
	case s.sendq <- ca:
	case <-s.dead:
		// fail() already completed ca (it was in the pending table).
	}
	ca.wait()
	return ca.body, ca.err
}

// writeBatch bounds how many queued requests one writev coalesces.
const writeBatch = 32

// inlineExecMax is the largest transfer the server's v2 reader executes
// inline rather than handing to the worker pool (see serveV2).
const inlineExecMax = 64 << 10

// writeLoop drains the send queue, coalescing up to writeBatch queued
// requests (headers and payloads alike) into a single writev — at
// depth the dominant cost of the pipeline is syscalls, not copies.
// After each batch it pushes the connection's read deadline out to the
// batch's deadline, so a server that goes silent with requests
// outstanding is detected within ~IOTimeout of the last write even if
// the reader was idle.
func (s *stream) writeLoop() {
	var hdrs [writeBatch][v2ReqHdrLen]byte
	iov := make(net.Buffers, 0, 2*writeBatch)
	batch := make([]*call, 0, writeBatch)
	for {
		select {
		case ca := <-s.sendq:
			batch = append(batch[:0], ca)
			// Two drain rounds with a yield between them: on a busy
			// pipeline the other submitting goroutines are runnable right
			// now, and letting them enqueue first turns N single-frame
			// writevs into one batched writev. On an idle connection the
			// yield costs nanoseconds and the frame goes out alone.
			for round := 0; round < 2 && len(batch) < writeBatch; round++ {
				// This goroutine is sendq's only receiver, so a non-zero
				// len() guarantees the receive below cannot block — a plain
				// recv is ~3x cheaper than a select-with-default here.
				for len(batch) < writeBatch && len(s.sendq) > 0 {
					batch = append(batch, <-s.sendq)
				}
				if round == 0 && len(batch) < writeBatch {
					runtime.Gosched() // micro-batching yield on the writer goroutine
				}
			}
			iov = iov[:0]
			for i, b := range batch {
				hdr := &hdrs[i]
				hdr[0] = b.op
				binary.LittleEndian.PutUint64(hdr[1:], b.id)
				binary.LittleEndian.PutUint64(hdr[9:], b.srvID)
				binary.LittleEndian.PutUint64(hdr[17:], uint64(b.offset))
				binary.LittleEndian.PutUint64(hdr[25:], uint64(b.length))
				iov = append(iov, hdr[:])
				iov = append(iov, b.bufs...)
			}
			last := batch[len(batch)-1].deadline
			// A failed deadline set surfaces as an error on the very
			// next WriteTo, which poisons the stream.
			_ = s.conn.SetWriteDeadline(last)
			if _, err := iov.WriteTo(s.conn); err != nil {
				s.fail(err)
				return
			}
			// Arm the read deadline under pmu so it linearizes against the
			// reader's drained-pipeline clear: a new batch can never be
			// left without a deadline by a racing clear. If the batch's
			// responses already arrived and drained pending, the reader's
			// clear won — re-arming here would leave an idle connection
			// with a live deadline that later poisons the stream.
			s.pmu.Lock()
			if len(s.pending) > 0 {
				// Failure surfaces on the reader's next blocking Read,
				// which poisons the stream.
				_ = s.conn.SetReadDeadline(last)
			}
			s.pmu.Unlock()
		case <-s.dead:
			return
		}
	}
}

// readLoop demultiplexes response frames back to pending calls by
// request ID. Frames are read through a bufio layer (small responses
// that arrive together cost one syscall, not two each); the read
// deadline is managed on transitions — the writer pushes it out per
// batch, and the reader clears it when the pipeline drains — so a
// healthy stream pays no per-response deadline syscalls while a stuck
// one still poisons within ~2x IOTimeout of its oldest request.
func (s *stream) readLoop() {
	br := bufio.NewReaderSize(s.conn, 64<<10)
	var rhdr [v2RespHdrLen]byte
	for {
		if _, err := io.ReadFull(br, rhdr[:]); err != nil {
			s.fail(err)
			return
		}
		status := rhdr[0]
		id := binary.LittleEndian.Uint64(rhdr[1:9])
		n := binary.LittleEndian.Uint64(rhdr[9:17])
		if n > maxV2Payload {
			s.fail(fmt.Errorf("memnode: oversized response %d", n))
			return
		}
		var body []byte
		if n > 0 {
			body = getBuf(int(n))
			if _, err := io.ReadFull(br, body); err != nil {
				PutBuf(body)
				s.fail(err)
				return
			}
		}
		s.pmu.Lock()
		ca, ok := s.pending[id]
		if !ok {
			s.pmu.Unlock()
			if body != nil {
				PutBuf(body)
			}
			// Unknown or duplicate ID: the stream is desynchronized and
			// nothing on it can be trusted.
			s.fail(fmt.Errorf("memnode: response for unknown request id %d", id))
			return
		}
		delete(s.pending, id)
		if len(s.pending) == 0 {
			// Clear the deadline so an idle connection never times out;
			// the writer re-arms it with the next request batch. Done
			// under pmu: a new call inserts itself into pending before
			// its batch arms the deadline, so this clear can never strip
			// the deadline from a live request.
			_ = s.conn.SetReadDeadline(time.Time{}) // failure surfaces on the next Read
		}
		s.pmu.Unlock()
		switch status {
		case statusOK:
			ca.body = body
		case statusErrRegion:
			ca.err = fmt.Errorf("%w: %s", errRegionLost, body)
			PutBuf(body)
		default:
			ca.err = &serverError{msg: string(body)}
			PutBuf(body)
		}
		ca.complete()
	}
}

// execV1 performs one stop-and-wait exchange on a v1 connection. The
// stream mutex serializes concurrent callers; the rest of the
// robustness machinery (deadline, poison-on-error) matches v2.
func (s *stream) execV1(ca *call) ([]byte, error) {
	s.v1mu.Lock()
	defer s.v1mu.Unlock()
	s.pmu.Lock()
	if s.err != nil {
		err := s.err
		s.pmu.Unlock()
		return nil, err
	}
	s.pmu.Unlock()
	if err := s.conn.SetDeadline(ca.deadline); err != nil {
		s.fail(err)
		return nil, err
	}
	var hdr [v1ReqHdrLen]byte
	hdr[0] = ca.op
	binary.LittleEndian.PutUint64(hdr[1:], ca.srvID)
	binary.LittleEndian.PutUint64(hdr[9:], uint64(ca.offset))
	binary.LittleEndian.PutUint64(hdr[17:], uint64(ca.length))
	iov := append(net.Buffers{hdr[:]}, ca.bufs...)
	//magevet:ok v1 is stop-and-wait by design: v1mu held across the exchange IS the depth-1 pipeline
	if _, err := iov.WriteTo(s.conn); err != nil {
		s.fail(err)
		return nil, err
	}
	var rhdr [v1RespHdrLen]byte
	//magevet:ok v1 stop-and-wait response read; see the WriteTo above
	if _, err := io.ReadFull(s.conn, rhdr[:]); err != nil {
		s.fail(err)
		return nil, err
	}
	n := binary.LittleEndian.Uint64(rhdr[1:])
	if n > MaxIO {
		err := fmt.Errorf("memnode: oversized response %d", n)
		s.fail(err)
		return nil, err
	}
	var body []byte
	if n > 0 {
		body = getBuf(int(n))
		//magevet:ok v1 stop-and-wait body read; see the WriteTo above
		if _, err := io.ReadFull(s.conn, body); err != nil {
			PutBuf(body)
			s.fail(err)
			return nil, err
		}
	}
	switch rhdr[0] {
	case statusOK:
		return body, nil
	case statusErrRegion:
		err := fmt.Errorf("%w: %s", errRegionLost, body)
		PutBuf(body)
		return nil, err
	default:
		err := &serverError{msg: string(body)}
		PutBuf(body)
		return nil, err
	}
}

// Client is one connection to a memory node, hardened for the real
// world and pipelined for throughput: a v2 connection multiplexes up to
// Options.Window concurrent requests by ID, every op has a deadline, a
// broken connection fails all in-flight calls at once and is re-dialed
// with capped exponential backoff, and idempotent ops are retried
// across reconnects — including transparent REGISTER replay when the
// server restarted and lost its regions. All methods are safe for
// concurrent use; issuing many ops concurrently (or via
// ReadAsync/WriteAsync) is how the pipeline fills.
type Client struct {
	addr string
	opts Options

	// mu guards connection lifecycle only; it is never held across
	// network IO, so Close and Metrics stay live behind a stalled op.
	mu      sync.Mutex
	cond    *sync.Cond
	cur     link
	raw     net.Conn // eagerly dialed, negotiation deferred to first op
	dialing bool
	closed  bool
	dialed  bool

	closedCh chan struct{}

	regMu   sync.Mutex // guards the stable-handle region table
	regions map[uint64]*region

	// window is the in-flight semaphore: one slot per operation from
	// submission to completion, across all its retry attempts.
	window chan struct{}

	retries       atomic.Uint64
	reconnects    atomic.Uint64
	regionReplays atomic.Uint64
	timeouts      atomic.Uint64
	v1Fallbacks   atomic.Uint64
	shmConnects   atomic.Uint64
	shmFallbacks  atomic.Uint64

	// verbOps/verbBytes index by wire verb (opRead..opProbe) and count
	// completed public-API ops and their payload bytes.
	verbOps   [opProbe + 1]atomic.Uint64
	verbBytes [opProbe + 1]atomic.Uint64
}

// countVerb records one completed op of the given verb moving n payload
// bytes.
func (c *Client) countVerb(op byte, n int64) {
	c.verbOps[op].Add(1)
	c.verbBytes[op].Add(uint64(n))
}

// verbStats snapshots one verb's counters.
func (c *Client) verbStats(op byte) VerbStats {
	return VerbStats{Ops: c.verbOps[op].Load(), Bytes: c.verbBytes[op].Load()}
}

// Dial connects to a memory node with DefaultOptions.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, DefaultOptions())
}

// DialOptions connects with explicit options. The TCP connection is
// established eagerly so configuration errors surface here, not on the
// first op; protocol negotiation happens lazily on first use and is
// retried like any other IO.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.fillDefaults()
	c := &Client{
		addr:     addr,
		opts:     opts,
		regions:  make(map[uint64]*region),
		window:   make(chan struct{}, opts.Window),
		closedCh: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("memnode: dial: %w", err)
	}
	c.raw = conn
	c.dialed = true
	return c, nil
}

// Close closes the connection. It returns promptly even with ops in
// flight against a stalled server: pending calls fail with ErrClosed
// and their retry loops abort.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	raw, st := c.raw, c.cur
	c.raw, c.cur = nil, nil
	c.cond.Broadcast()
	c.mu.Unlock()
	var err error
	if raw != nil {
		err = raw.Close()
	}
	if st != nil {
		st.fail(ErrClosed)
	}
	return err
}

// Metrics returns a snapshot of the robustness counters. It never
// touches the data path, so it stays live mid-outage.
func (c *Client) Metrics() ClientStats {
	return ClientStats{
		Retries:       c.retries.Load(),
		Reconnects:    c.reconnects.Load(),
		RegionReplays: c.regionReplays.Load(),
		Timeouts:      c.timeouts.Load(),
		V1Fallbacks:   c.v1Fallbacks.Load(),
		ShmConnects:   c.shmConnects.Load(),
		ShmFallbacks:  c.shmFallbacks.Load(),
		Read:          c.verbStats(opRead),
		Write:         c.verbStats(opWrite),
		ReadV:         c.verbStats(opReadV),
		WriteV:        c.verbStats(opWriteV),
		Stats:         c.verbStats(opProbe),
	}
}

// TransportKind reports the data plane of the current connection
// generation: "shm", "tcp-v2", "tcp-v1", or "none" when no connection
// has been negotiated yet.
func (c *Client) TransportKind() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch st := c.cur.(type) {
	case *shmStream:
		return "shm"
	case *stream:
		if st.v1 {
			return "tcp-v1"
		}
		return "tcp-v2"
	}
	return "none"
}

func (c *Client) isClosed() bool {
	select {
	case <-c.closedCh:
		return true
	default:
		return false
	}
}

// sleep waits d or until the client closes, reporting whether the wait
// completed.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d) //magevet:ok real-world reconnect backoff on a TCP client
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}

// backoff returns the capped exponential delay after the attempt-th
// consecutive failure (attempt ≥ 1).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.opts.MaxBackoff {
			return c.opts.MaxBackoff
		}
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	return d
}

// getStream returns the live stream, dialing and negotiating a new
// connection when the previous one is poisoned. Exactly one goroutine
// dials at a time; the rest wait on the condition variable, so an
// outage costs one connection attempt per backoff interval, not one
// per blocked op.
func (c *Client) getStream() (link, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.cur != nil && c.cur.alive() {
			st := c.cur
			c.mu.Unlock()
			return st, nil
		}
		if c.dialing {
			c.cond.Wait()
			continue
		}
		c.dialing = true
		conn := c.raw
		c.raw = nil
		c.mu.Unlock()

		fresh := false
		var err error
		if conn == nil {
			conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
			if err != nil {
				err = fmt.Errorf("memnode: dial: %w", err)
			}
			fresh = err == nil
		}
		var st link
		if err == nil {
			st, err = c.negotiate(conn) // closes conn on error
		}

		c.mu.Lock()
		c.dialing = false
		c.cond.Broadcast()
		if c.closed {
			c.mu.Unlock()
			if st != nil {
				st.fail(ErrClosed)
			} else if err == nil && conn != nil {
				_ = conn.Close() // client is closing; best-effort teardown
			}
			return nil, ErrClosed
		}
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.cur = st
		if fresh {
			c.reconnects.Add(1)
		}
		c.mu.Unlock()
		return st, nil
	}
}

// negotiate upgrades a fresh connection to protocol v2 — and, when the
// server's HELLO response advertises it and Options.Transport allows,
// to the shared-memory transport — or falls back to v1 when the server
// rejects the HELLO. On IO error the connection is closed and the
// error returned; the caller's retry loop re-dials.
func (c *Client) negotiate(conn net.Conn) (link, error) {
	if c.opts.Protocol == protoV1 {
		return newStream(c, conn, true), nil
	}
	if err := conn.SetDeadline(time.Now().Add(c.opts.IOTimeout)); err != nil { //magevet:ok per-op network deadline
		_ = conn.Close() // already failing; the dial error wins
		return nil, err
	}
	var hdr [v1ReqHdrLen]byte
	hdr[0] = opHello
	binary.LittleEndian.PutUint64(hdr[1:], helloMagic)
	binary.LittleEndian.PutUint64(hdr[9:], protoV2)
	if _, err := conn.Write(hdr[:]); err != nil {
		_ = conn.Close() // already failing; the write error wins
		return nil, err
	}
	var rhdr [v1RespHdrLen]byte
	if _, err := io.ReadFull(conn, rhdr[:]); err != nil {
		_ = conn.Close() // already failing; the read error wins
		return nil, err
	}
	n := binary.LittleEndian.Uint64(rhdr[1:])
	if n > 4096 {
		_ = conn.Close() // already failing; the protocol error wins
		return nil, fmt.Errorf("memnode: oversized hello response %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		_ = conn.Close() // already failing; the read error wins
		return nil, err
	}
	if rhdr[0] == statusOK {
		if len(body) >= helloRespLen &&
			binary.LittleEndian.Uint64(body) == helloMagic &&
			binary.LittleEndian.Uint64(body[8:]) >= protoV2 {
			// The stream manages deadlines from here; a failed clear
			// surfaces as a spurious timeout the retry path absorbs.
			_ = conn.SetDeadline(time.Time{})
			if c.opts.Transport != TransportTCP {
				ext := parseHelloExt(body)
				if ext.shm && shmSupported {
					st, serr := c.dialShm(ext)
					if serr == nil {
						// The shm rings replace the TCP data path entirely.
						_ = conn.Close() // superseded by the shm stream
						c.shmConnects.Add(1)
						return st, nil
					}
					c.shmFallbacks.Add(1)
					if c.opts.Transport == TransportShm {
						_ = conn.Close() // shm was required; the shm error wins
						return nil, fmt.Errorf("memnode: shm transport required: %w", serr)
					}
				} else if c.opts.Transport == TransportShm {
					_ = conn.Close() // shm was required; report why it cannot happen
					if !shmSupported {
						return nil, errShmUnsupported
					}
					return nil, errors.New("memnode: shm transport required: server does not offer it")
				}
			}
			return newStream(c, conn, false), nil
		}
		_ = conn.Close() // already failing; the protocol error wins
		return nil, errors.New("memnode: malformed hello response")
	}
	// The server rejected the probe as a bad opcode: it speaks v1 only,
	// and its connection is still healthy. A failed deadline clear
	// surfaces as a spurious timeout the retry path absorbs.
	if c.opts.Transport == TransportShm {
		_ = conn.Close() // shm was required; a v1 server cannot provide it
		return nil, errors.New("memnode: shm transport required: server speaks v1 only")
	}
	_ = conn.SetDeadline(time.Time{})
	c.v1Fallbacks.Add(1)
	return newStream(c, conn, true), nil
}

// translate maps a caller's stable handle to the server's current
// region ID (they diverge after a restart replay).
func (c *Client) translate(handle uint64) uint64 {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if reg, ok := c.regions[handle]; ok {
		return reg.srvID
	}
	return handle
}

func (c *Client) canReplay(handle uint64) bool {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	_, ok := c.regions[handle]
	return ok
}

// replayRegion re-registers a handle's region on a restarted server.
// The region's content is gone with the old server; the paging systems
// tolerate that the same way they tolerate a fresh remote node — pages
// fault back in from the new (zeroed) backing. regMu serializes
// replays so a storm of concurrent region-lost ops registers the
// region once, not once per op.
func (c *Client) replayRegion(st link, handle, usedSrvID uint64) error {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	reg, ok := c.regions[handle]
	if !ok {
		return fmt.Errorf("memnode: unknown region handle %d", handle)
	}
	if reg.srvID != usedSrvID {
		return nil // a concurrent op already replayed this region
	}
	ca := &call{op: opRegister, length: reg.size, deadline: time.Now().Add(c.opts.IOTimeout)} //magevet:ok per-op network deadline
	body, err := st.exec(ca)
	if err != nil {
		var se *serverError
		if errors.As(err, &se) {
			return se
		}
		return err
	}
	if len(body) != 8 {
		return fmt.Errorf("memnode: short register response (%d bytes)", len(body))
	}
	reg.srvID = binary.LittleEndian.Uint64(body)
	PutBuf(body)
	c.regionReplays.Add(1)
	return nil
}

// do runs one idempotent op with the full robustness stack re-layered
// on top of the pipelined stream: an in-flight window slot for the
// op's whole lifetime, per-attempt deadlines, reconnect-on-poison with
// capped backoff, and lazy REGISTER replay when the server reports the
// region unknown.
func (c *Client) do(ca *call) ([]byte, error) {
	// Non-blocking fast path first: a two-case select pays the full
	// selectgo machinery even when the window has room, which is the
	// common case on the per-op hot path.
	select {
	case c.window <- struct{}{}:
	default:
		select {
		case c.window <- struct{}{}:
		case <-c.closedCh:
			return nil, ErrClosed
		}
	}
	defer func() { <-c.window }()

	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if c.isClosed() {
			return nil, ErrClosed
		}
		if attempt > 1 {
			c.retries.Add(1)
			if !c.sleep(c.backoff(attempt - 1)) {
				return nil, ErrClosed
			}
		}
		st, err := c.getStream()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		// The links own att.deadline: TCP streams stamp it at exec entry
		// (their writer/reader arm socket deadlines from it), the shm
		// stream computes it lazily only on stall/park slow paths — the
		// inline-completing hot path never reads the wall clock.
		att := ca
		if !st.exclusiveCall() {
			// Each attempt gets its own copy of the call: after a TCP
			// stream is poisoned its writer may still be draining the old
			// send queue, so the previous attempt's struct must never be
			// mutated again. The payload slices are shared read-only.
			cp := *ca
			att = &cp
		}
		att.srvID = c.translate(ca.handle)
		body, err := c.execute(st, att)
		if err == nil {
			return body, nil
		}
		var se *serverError
		if errors.As(err, &se) {
			return nil, se // terminal; connection stays healthy
		}
		if errors.Is(err, errRegionLost) {
			if !c.canReplay(ca.handle) {
				// Not a region we registered — a genuinely bad ID, or a
				// shared region we cannot replay. Terminal either way.
				return nil, &serverError{msg: err.Error()}
			}
			if rerr := c.replayRegion(st, ca.handle, att.srvID); rerr != nil {
				lastErr = rerr
				continue
			}
			lastErr = err
			continue
		}
		lastErr = err
	}
	return nil, fmt.Errorf("memnode: op %d failed after %d attempts: %w", ca.op, c.opts.MaxAttempts, lastErr)
}

// execute dispatches one attempt, decomposing batch verbs into v1
// single-page ops when the negotiated stream predates them.
func (c *Client) execute(st link, ca *call) ([]byte, error) {
	if st.decomposeBatch() && (ca.op == opReadV || ca.op == opWriteV) {
		return c.executeBatchV1(st, ca)
	}
	return st.exec(ca)
}

// executeBatchV1 emulates READV/WRITEV against a v1 server: the batch
// becomes a sequence of single-page ops on the stop-and-wait stream.
// Any failure aborts the attempt; the outer retry loop re-runs the
// whole (idempotent) batch.
func (c *Client) executeBatchV1(st link, ca *call) ([]byte, error) {
	if ca.op == opWriteV {
		for i, v := range ca.iovs {
			sub := &call{
				op: opWrite, srvID: ca.srvID, offset: v.off, length: v.length,
				bufs: net.Buffers{ca.pages[i]}, deadline: time.Now().Add(c.opts.IOTimeout), //magevet:ok per-op network deadline
			}
			if _, err := st.exec(sub); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	var total int64
	for _, v := range ca.iovs {
		total += v.length
	}
	buf := getBuf(int(total))
	out := buf
	for _, v := range ca.iovs {
		sub := &call{
			op: opRead, srvID: ca.srvID, offset: v.off, length: v.length,
			deadline: time.Now().Add(c.opts.IOTimeout), //magevet:ok per-op network deadline
		}
		body, err := st.exec(sub)
		if err != nil {
			PutBuf(buf)
			return nil, err
		}
		if int64(len(body)) != v.length {
			PutBuf(body)
			PutBuf(buf)
			return nil, fmt.Errorf("memnode: short read response (%d of %d bytes)", len(body), v.length)
		}
		copy(out[:v.length], body)
		PutBuf(body)
		out = out[v.length:]
	}
	return buf, nil
}

// Register sets up a memory region of size bytes and returns a stable
// handle for it: the region ID the server issued. The handle survives
// server restarts — ops that hit a restarted server transparently
// re-register the region (at its original size, zero-filled) and retry.
// callPool recycles call prototypes across ops. Safe because do() owns
// the prototype end to end: TCP attempts run on private copies (only
// those enter the writer queue and pending tables), and on the shm
// stream exec returns only once the completion gate reads finDone —
// the completer's final store to the struct — so once do() is back, no
// goroutine holds a reference.
var callPool = sync.Pool{New: func() any { return new(call) }}

// doPooled runs one op on a pooled call struct, keeping the public op
// wrappers at zero steady-state allocations for the call bookkeeping.
func (c *Client) doPooled(proto call) ([]byte, error) {
	ca := callPool.Get().(*call)
	*ca = proto
	body, err := c.do(ca)
	callPool.Put(ca)
	return body, err
}

func (c *Client) Register(size int64) (uint64, error) {
	body, err := c.doPooled(call{op: opRegister, length: size})
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("memnode: short register response (%d bytes)", len(body))
	}
	id := binary.LittleEndian.Uint64(body)
	PutBuf(body)
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.regions[id] = &region{size: size, srvID: id}
	return id, nil
}

// Unregister releases a region: the server returns its bytes to the
// capacity pool and the stable handle stops resolving on this client.
// The op rides the normal robustness stack; against a server that
// restarted and lost the region, the lazy REGISTER replay briefly
// recreates it (zero-filled) and the retry then removes it, so both
// paths converge on "gone". The handle record is dropped only on
// success — a failed unregister leaves the region usable.
func (c *Client) Unregister(handle uint64) error {
	if !c.canReplay(handle) {
		return &serverError{msg: fmt.Sprintf("unknown region handle %d", handle)}
	}
	if _, err := c.doPooled(call{op: opUnregister, handle: handle}); err != nil {
		return err
	}
	c.regMu.Lock()
	delete(c.regions, handle)
	c.regMu.Unlock()
	return nil
}

// Read performs a one-sided read of length bytes at offset. The
// returned buffer is the caller's; passing it to PutBuf when done lets
// the client recycle it.
func (c *Client) Read(handle uint64, offset, length int64) ([]byte, error) {
	if length <= 0 || length > MaxIO {
		return nil, fmt.Errorf("memnode: bad read length %d", length)
	}
	body, err := c.doPooled(call{op: opRead, handle: handle, offset: offset, length: length})
	if err != nil {
		return nil, err
	}
	if int64(len(body)) != length {
		PutBuf(body)
		return nil, fmt.Errorf("memnode: short read response (%d of %d bytes)", len(body), length)
	}
	c.countVerb(opRead, length)
	return body, nil
}

// Write performs a one-sided write of data at offset.
func (c *Client) Write(handle uint64, offset int64, data []byte) error {
	if len(data) == 0 || len(data) > MaxIO {
		return fmt.Errorf("memnode: bad write length %d", len(data))
	}
	_, err := c.doPooled(call{
		op: opWrite, handle: handle, offset: offset,
		length: int64(len(data)), bufs: net.Buffers{data},
	})
	if err == nil {
		c.countVerb(opWrite, int64(len(data)))
	}
	return err
}

// Pending is the future returned by the asynchronous operations.
type Pending struct {
	done chan struct{}
	body []byte
	err  error
}

// Wait blocks until the operation completes and returns its result.
// For writes the returned buffer is nil.
func (p *Pending) Wait() ([]byte, error) {
	<-p.done
	return p.body, p.err
}

// Done returns a channel closed when the operation has completed.
func (p *Pending) Done() <-chan struct{} { return p.done }

// ReadAsync issues a one-sided read and returns immediately. The
// request is pipelined onto the shared connection; completion order
// across ops is whatever the server delivers.
func (c *Client) ReadAsync(handle uint64, offset, length int64) *Pending {
	p := &Pending{done: make(chan struct{})}
	go func() { //magevet:ok async façade on a real TCP client: the future, not goroutine scheduling, orders completion
		p.body, p.err = c.Read(handle, offset, length)
		close(p.done)
	}()
	return p
}

// WriteAsync issues a one-sided write and returns immediately.
func (c *Client) WriteAsync(handle uint64, offset int64, data []byte) *Pending {
	p := &Pending{done: make(chan struct{})}
	go func() { //magevet:ok async façade on a real TCP client: the future, not goroutine scheduling, orders completion
		p.err = c.Write(handle, offset, data)
		close(p.done)
	}()
	return p
}

// ReadV reads len(offsets) pages of pageBytes each in one wire round
// trip (the transport analogue of the DES evictor's grouped
// writebacks). The returned pages alias one contiguous buffer. Against
// a v1 server the batch transparently decomposes into single reads.
func (c *Client) ReadV(handle uint64, offsets []int64, pageBytes int64) ([][]byte, error) {
	if len(offsets) == 0 || len(offsets) > MaxBatchPages {
		return nil, fmt.Errorf("memnode: bad batch size %d", len(offsets))
	}
	// Division, not multiplication: pageBytes*len(offsets) can overflow
	// int64 and slip past a product-form check.
	if pageBytes <= 0 || pageBytes > MaxIO/int64(len(offsets)) {
		return nil, fmt.Errorf("memnode: bad batch page size %d", pageBytes)
	}
	iovs := make([]iovec, len(offsets))
	for i, off := range offsets {
		iovs[i] = iovec{off: off, length: pageBytes}
	}
	desc := putIovecs(iovs)
	body, err := c.doPooled(call{
		op: opReadV, handle: handle,
		length: int64(len(desc)), bufs: net.Buffers{desc}, iovs: iovs,
	})
	if err != nil {
		return nil, err
	}
	total := pageBytes * int64(len(offsets))
	if int64(len(body)) != total {
		return nil, fmt.Errorf("memnode: short readv response (%d of %d bytes)", len(body), total)
	}
	c.countVerb(opReadV, total)
	pages := make([][]byte, len(offsets))
	for i := range pages {
		pages[i] = body[int64(i)*pageBytes : int64(i+1)*pageBytes : int64(i+1)*pageBytes]
	}
	return pages, nil
}

// WriteV writes len(pages) pages at the matching offsets in one wire
// round trip. The batch either fully applies or fails; retries re-send
// the whole batch, which is safe because page writes are idempotent.
func (c *Client) WriteV(handle uint64, offsets []int64, pages [][]byte) error {
	if len(pages) == 0 || len(pages) > MaxBatchPages || len(pages) != len(offsets) {
		return fmt.Errorf("memnode: bad batch shape (%d offsets, %d pages)", len(offsets), len(pages))
	}
	iovs := make([]iovec, len(pages))
	var total int64
	for i, pg := range pages {
		if len(pg) == 0 {
			return fmt.Errorf("memnode: empty page %d in batch", i)
		}
		iovs[i] = iovec{off: offsets[i], length: int64(len(pg))}
		total += int64(len(pg))
	}
	if total > MaxIO {
		return fmt.Errorf("memnode: batch total %d exceeds MaxIO", total)
	}
	desc := putIovecs(iovs)
	bufs := make(net.Buffers, 0, len(pages)+1)
	bufs = append(bufs, desc)
	bufs = append(bufs, pages...)
	_, err := c.doPooled(call{
		op: opWriteV, handle: handle,
		length: int64(len(desc)) + total, bufs: bufs, iovs: iovs, pages: pages,
	})
	if err == nil {
		c.countVerb(opWriteV, total)
	}
	return err
}

// Stat fetches server statistics.
func (c *Client) Stat() (Stats, error) {
	body, err := c.doPooled(call{op: opStat})
	if err != nil {
		return Stats{}, err
	}
	if len(body) != 48 {
		return Stats{}, fmt.Errorf("memnode: short stat response (%d bytes)", len(body))
	}
	st := Stats{
		Regions:    binary.LittleEndian.Uint64(body[0:]),
		UsedBytes:  binary.LittleEndian.Uint64(body[8:]),
		ReadOps:    binary.LittleEndian.Uint64(body[16:]),
		WriteOps:   binary.LittleEndian.Uint64(body[24:]),
		BytesRead:  binary.LittleEndian.Uint64(body[32:]),
		BytesWrite: binary.LittleEndian.Uint64(body[40:]),
	}
	PutBuf(body)
	return st, nil
}

// Probe issues the lightweight STATS verb and returns the node's
// health/load sample. It rides the normal op path (window slot,
// deadline, retry), so against a dead node it fails within the
// client's configured attempt budget — which is exactly the signal a
// cluster health prober wants.
func (c *Client) Probe() (HealthStats, error) {
	body, err := c.doPooled(call{op: opProbe})
	if err != nil {
		return HealthStats{}, err
	}
	if len(body) != probeRespLen {
		return HealthStats{}, fmt.Errorf("memnode: short stats response (%d bytes)", len(body))
	}
	h := HealthStats{
		FreeBytes:     int64(binary.LittleEndian.Uint64(body[0:])),
		InFlight:      int64(binary.LittleEndian.Uint64(body[8:])),
		CapacityBytes: int64(binary.LittleEndian.Uint64(body[16:])),
	}
	PutBuf(body)
	c.countVerb(opProbe, 0)
	return h, nil
}
