package memnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync" //magevet:ok memnode is a real TCP client, not virtual-time simulation code
	"time" //magevet:ok real network deadlines and backoff need wall-clock time
)

// Options tunes the client's robustness behavior: connection and per-op
// deadlines, and the reconnect/retry policy. It mirrors the DES retry
// layer (core.RetryPolicy) in the real world.
type Options struct {
	// DialTimeout bounds each (re)connection attempt.
	DialTimeout time.Duration
	// IOTimeout bounds each request round trip (write + response read).
	IOTimeout time.Duration
	// MaxAttempts is how many times one op is tried across reconnects
	// before the error is surfaced. Page ops (READ/WRITE/REGISTER) are
	// idempotent, so retry-after-reconnect is always safe.
	MaxAttempts int
	// BaseBackoff doubles per consecutive failure up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultOptions returns the production defaults: patient enough to ride
// out a memnode restart, bounded enough to surface a dead node.
func DefaultOptions() Options {
	return Options{
		DialTimeout: 2 * time.Second,
		IOTimeout:   5 * time.Second,
		MaxAttempts: 8,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  time.Second,
	}
}

func (o *Options) fillDefaults() {
	d := DefaultOptions()
	if o.DialTimeout <= 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = d.IOTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = d.MaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = d.BaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = d.MaxBackoff
	}
}

// ClientStats counts the client's robustness events. All zero on a
// healthy connection.
type ClientStats struct {
	// Retries counts op attempts beyond the first.
	Retries uint64
	// Reconnects counts successful re-dials after the initial connect.
	Reconnects uint64
	// RegionReplays counts REGISTER replays after a server lost a region
	// (i.e. restarted).
	RegionReplays uint64
	// Timeouts counts attempts that failed on an expired deadline.
	Timeouts uint64
}

// region is the client-side record of a region this client registered:
// the stable handle the caller holds (the region's original server ID)
// maps to the server's current — restart-volatile — ID plus the size
// needed to replay the REGISTER after a restart.
type region struct {
	size  int64
	srvID uint64
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("memnode: client closed")

// serverError is a terminal statusErr response: the server understood
// the request and rejected it, so retrying cannot help and the
// connection remains healthy.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "memnode: " + e.msg }

// Client is one connection to a memory node, hardened for the real
// world: every op has a deadline, a broken connection is re-dialed with
// capped exponential backoff, and idempotent ops are retried across
// reconnects — including transparent REGISTER replay when the server
// restarted and lost its regions. Methods are safe for sequential use;
// open one client per worker for parallel IO.
type Client struct {
	addr string
	opts Options

	mu      sync.Mutex
	conn    net.Conn // nil when broken; re-dialed on next op
	hdr     [25]byte
	regions map[uint64]*region // regions registered BY this client
	closed  bool
	dialed  bool // first connect done (later dials count as reconnects)

	stats ClientStats // guarded by mu
}

// Dial connects to a memory node with DefaultOptions.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, DefaultOptions())
}

// DialOptions connects with explicit robustness options. The initial
// connection is established eagerly so configuration errors surface
// here, not on the first op.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.fillDefaults()
	c := &Client{
		addr:    addr,
		opts:    opts,
		regions: make(map[uint64]*region),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reconnectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection; in-flight retry loops abort.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// Metrics returns a snapshot of the robustness counters.
func (c *Client) Metrics() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// reconnectLocked (re-)establishes the TCP connection.
func (c *Client) reconnectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("memnode: dial: %w", err)
	}
	c.conn = conn
	if c.dialed {
		c.stats.Reconnects++
	}
	c.dialed = true
	return nil
}

// breakLocked marks the connection poisoned — a short read, a protocol
// violation, or any IO error leaves unknown bytes in flight, so the only
// safe move is to drop the stream and re-dial before the next attempt.
func (c *Client) breakLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// backoff returns the capped exponential delay after the attempt-th
// consecutive failure (attempt ≥ 1).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.opts.MaxBackoff {
			return c.opts.MaxBackoff
		}
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	return d
}

// do runs one idempotent op with the full robustness stack: per-attempt
// deadlines, reconnect-on-poison, capped backoff between attempts, and
// lazy REGISTER replay when the server reports the region unknown.
// handle is the caller's stable region handle (ignored for REGISTER and
// STAT).
func (c *Client) do(op byte, handle uint64, offset, length int64, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if c.closed {
			return nil, ErrClosed
		}
		if attempt > 1 {
			c.stats.Retries++
			d := c.backoff(attempt - 1)
			// Sleep without holding the lock so Close/Metrics stay live.
			c.mu.Unlock()
			time.Sleep(d) //magevet:ok real-world reconnect backoff on a TCP client
			c.mu.Lock()
			if c.closed {
				return nil, ErrClosed
			}
		}
		if c.conn == nil {
			if err := c.reconnectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		// Translate the stable handle to the server's current region ID.
		// Handles for regions registered by another client pass through
		// unchanged (region IDs are server-global); only locally
		// registered regions can be replayed after a restart.
		srvID := handle
		if reg, ok := c.regions[handle]; ok {
			srvID = reg.srvID
		}
		body, err := c.doOnce(op, srvID, offset, length, payload)
		if err == nil {
			return body, nil
		}
		var se *serverError
		if errors.As(err, &se) {
			return nil, se // terminal; connection stays healthy
		}
		if errors.Is(err, errRegionLost) {
			if _, ok := c.regions[handle]; !ok {
				// Not a region we registered — a genuinely bad ID, or a
				// shared region we cannot replay. Terminal either way.
				return nil, &serverError{msg: err.Error()}
			}
			// The server is up but forgot the region: it restarted. Replay
			// the REGISTER on this handle and retry the op.
			if rerr := c.replayRegionLocked(handle); rerr != nil {
				lastErr = rerr
				continue
			}
			lastErr = err
			continue
		}
		// IO/protocol error: the stream is poisoned.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			c.stats.Timeouts++
		}
		c.breakLocked()
		lastErr = err
	}
	return nil, fmt.Errorf("memnode: op %d failed after %d attempts: %w", op, c.opts.MaxAttempts, lastErr)
}

// errRegionLost is doOnce's signal that the server answered
// statusErrRegion.
var errRegionLost = errors.New("memnode: server lost region")

// doOnce performs exactly one request round trip on the live connection.
func (c *Client) doOnce(op byte, srvID uint64, offset, length int64, payload []byte) ([]byte, error) {
	deadline := time.Now().Add(c.opts.IOTimeout) //magevet:ok per-op network deadline
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	c.hdr[0] = op
	binary.LittleEndian.PutUint64(c.hdr[1:], srvID)
	binary.LittleEndian.PutUint64(c.hdr[9:], uint64(offset))
	binary.LittleEndian.PutUint64(c.hdr[17:], uint64(length))
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if _, err := c.conn.Write(payload); err != nil {
			return nil, err
		}
	}
	var rhdr [9]byte
	if _, err := io.ReadFull(c.conn, rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(rhdr[1:])
	if n > MaxIO {
		return nil, fmt.Errorf("memnode: oversized response %d", n)
	}
	var body []byte
	if n > 0 {
		body = make([]byte, n)
		if _, err := io.ReadFull(c.conn, body); err != nil {
			return nil, err
		}
	}
	switch rhdr[0] {
	case statusOK:
		return body, nil
	case statusErrRegion:
		return nil, fmt.Errorf("%w: %s", errRegionLost, body)
	default:
		return nil, &serverError{msg: string(body)}
	}
}

// registerLocked sends one REGISTER and returns the server's region ID.
func (c *Client) registerLocked(size int64) (uint64, error) {
	body, err := c.doOnce(opRegister, 0, 0, size, nil)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("memnode: short register response (%d bytes)", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// replayRegionLocked re-registers a handle's region on a restarted
// server. The region's content is gone with the old server; the paging
// systems tolerate that the same way they tolerate a fresh remote node —
// pages fault back in from the new (zeroed) backing.
func (c *Client) replayRegionLocked(handle uint64) error {
	reg, ok := c.regions[handle]
	if !ok {
		return fmt.Errorf("memnode: unknown region handle %d", handle)
	}
	srvID, err := c.registerLocked(reg.size)
	if err != nil {
		var se *serverError
		if errors.As(err, &se) {
			return se
		}
		c.breakLocked()
		return err
	}
	reg.srvID = srvID
	c.stats.RegionReplays++
	return nil
}

// Register sets up a memory region of size bytes and returns a stable
// handle for it: the region ID the server issued. The handle survives
// server restarts — ops that hit a restarted server transparently
// re-register the region (at its original size, zero-filled) and retry.
func (c *Client) Register(size int64) (uint64, error) {
	body, err := c.do(opRegister, 0, 0, size, nil)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("memnode: short register response (%d bytes)", len(body))
	}
	id := binary.LittleEndian.Uint64(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.regions[id] = &region{size: size, srvID: id}
	return id, nil
}

// Read performs a one-sided read of length bytes at offset.
func (c *Client) Read(handle uint64, offset, length int64) ([]byte, error) {
	if length <= 0 || length > MaxIO {
		return nil, fmt.Errorf("memnode: bad read length %d", length)
	}
	return c.do(opRead, handle, offset, length, nil)
}

// Write performs a one-sided write of data at offset.
func (c *Client) Write(handle uint64, offset int64, data []byte) error {
	if len(data) == 0 || len(data) > MaxIO {
		return fmt.Errorf("memnode: bad write length %d", len(data))
	}
	_, err := c.do(opWrite, handle, offset, int64(len(data)), data)
	return err
}

// Stat fetches server statistics.
func (c *Client) Stat() (Stats, error) {
	body, err := c.do(opStat, 0, 0, 0, nil)
	if err != nil {
		return Stats{}, err
	}
	if len(body) != 48 {
		return Stats{}, fmt.Errorf("memnode: short stat response (%d bytes)", len(body))
	}
	return Stats{
		Regions:    binary.LittleEndian.Uint64(body[0:]),
		UsedBytes:  binary.LittleEndian.Uint64(body[8:]),
		ReadOps:    binary.LittleEndian.Uint64(body[16:]),
		WriteOps:   binary.LittleEndian.Uint64(body[24:]),
		BytesRead:  binary.LittleEndian.Uint64(body[32:]),
		BytesWrite: binary.LittleEndian.Uint64(body[40:]),
	}, nil
}
