package memnode

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newPair(t *testing.T, capacity int64) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestRegisterReadWrite(t *testing.T) {
	_, c := newPair(t, 64<<20)
	id, err := c.Register(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	if err := c.Write(id, 12288, page); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 12288, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Error("read back mismatch")
	}
	// Unwritten memory reads as zero.
	z, err := c.Read(id, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("fresh region not zeroed")
		}
	}
}

func TestCrossChunkIO(t *testing.T) {
	_, c := newPair(t, 16<<20)
	id, err := c.Register(4 << 20) // 2 chunks
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	off := int64(ChunkBytes - 32<<10) // straddles the chunk boundary
	if err := c.Write(id, off, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, off, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-chunk IO corrupted data")
	}
}

func TestOutOfBoundsRejected(t *testing.T) {
	_, c := newPair(t, 16<<20)
	id, _ := c.Register(1 << 20)
	if _, err := c.Read(id, 1<<20-100, 4096); err == nil {
		t.Error("read past end accepted")
	}
	if err := c.Write(id, -1, make([]byte, 10)); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := c.Read(id+99, 0, 4096); err == nil {
		t.Error("unknown region accepted")
	}
	// Connection must survive errors.
	if _, err := c.Read(id, 0, 4096); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	_, c := newPair(t, 4<<20)
	if _, err := c.Register(3 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(2 << 20); err == nil {
		t.Error("over-capacity registration accepted")
	}
	if _, err := c.Register(1 << 20); err != nil {
		t.Error("within-capacity registration rejected")
	}
}

func TestInvalidRegisterSize(t *testing.T) {
	_, c := newPair(t, 4<<20)
	if _, err := c.Register(0); err == nil {
		t.Error("zero-size registration accepted")
	}
	if _, err := c.Register(-5); err == nil {
		t.Error("negative-size registration accepted")
	}
}

func TestStat(t *testing.T) {
	_, c := newPair(t, 16<<20)
	id, _ := c.Register(1 << 20)
	c.Write(id, 0, make([]byte, 4096))
	c.Read(id, 0, 4096)
	c.Read(id, 4096, 4096)
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions != 1 || st.UsedBytes != 1<<20 {
		t.Errorf("regions=%d used=%d", st.Regions, st.UsedBytes)
	}
	if st.ReadOps != 2 || st.WriteOps != 1 {
		t.Errorf("reads=%d writes=%d", st.ReadOps, st.WriteOps)
	}
	if st.BytesRead != 8192 || st.BytesWrite != 4096 {
		t.Errorf("bytesRead=%d bytesWrite=%d", st.BytesRead, st.BytesWrite)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, setup := newPair(t, 256<<20)
	id, err := setup.Register(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns a disjoint slice of pages.
			base := int64(w) * (8 << 20)
			for i := 0; i < 50; i++ {
				pg := base + int64(rng.Intn(2048))*4096
				want := make([]byte, 4096)
				rng.Read(want)
				if err := c.Write(id, pg, want); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				got, err := c.Read(id, pg, 4096)
				if err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d data mismatch at %d", w, pg)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPageRoundTripProperty(t *testing.T) {
	_, c := newPair(t, 32<<20)
	id, _ := c.Register(16 << 20)
	rng := rand.New(rand.NewSource(9))
	shadow := map[int64][]byte{}
	for i := 0; i < 200; i++ {
		pg := int64(rng.Intn(4096)) * 4096
		if rng.Intn(2) == 0 || shadow[pg] == nil {
			data := make([]byte, 4096)
			rng.Read(data)
			if err := c.Write(id, pg, data); err != nil {
				t.Fatal(err)
			}
			shadow[pg] = data
		} else {
			got, err := c.Read(id, pg, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[pg]) {
				t.Fatalf("page %d diverged from shadow copy", pg/4096)
			}
		}
	}
}

func BenchmarkPageRead(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Register(32 << 20)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(id, int64(i%4096)*4096, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// unregisterSuite exercises the UNREGISTER verb semantics on any
// negotiated transport: capacity returns to the pool, the stale handle
// dies terminally, and the connection survives it all.
func unregisterSuite(t *testing.T, c *Client) {
	t.Helper()
	id, err := c.Register(6 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(id, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister(id); err != nil {
		t.Fatalf("unregister: %v", err)
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions != 0 || st.UsedBytes != 0 {
		t.Errorf("after unregister: regions=%d used=%d, want 0/0", st.Regions, st.UsedBytes)
	}
	// The stale handle must fail terminally (no replay: the client
	// forgot the region), without poisoning the connection.
	if _, err := c.Read(id, 0, 4096); err == nil {
		t.Error("read of unregistered region accepted")
	} else if !IsTerminal(err) {
		t.Errorf("stale-handle read failed non-terminally: %v", err)
	}
	if err := c.Unregister(id); err == nil {
		t.Error("double unregister accepted")
	}
	// The freed bytes are reusable: this second region would not fit
	// alongside the first on the 8 MiB server.
	id2, err := c.Register(6 << 20)
	if err != nil {
		t.Fatalf("capacity not returned to pool: %v", err)
	}
	if _, err := c.Read(id2, 0, 4096); err != nil {
		t.Errorf("connection broken after unregister cycle: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	for _, proto := range []int{protoV1, protoV2} {
		proto := proto
		t.Run(fmt.Sprintf("v%d", proto), func(t *testing.T) {
			srv, err := NewServer("127.0.0.1:0", 8<<20)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			opts := DefaultOptions()
			opts.Protocol = proto
			c, err := DialOptions(srv.Addr(), opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			unregisterSuite(t, c)
		})
	}
}

func TestUnregisterUnknownHandle(t *testing.T) {
	_, c := newPair(t, 8<<20)
	if err := c.Unregister(12345); err == nil {
		t.Error("unregister of never-registered handle accepted")
	} else if !IsTerminal(err) {
		t.Errorf("unknown-handle unregister failed non-terminally: %v", err)
	}
}
