//go:build linux

// Shared-memory transport: Linux-specific plumbing — anonymous segment
// creation (memfd_create, with an unlinked tmpfile fallback for kernels
// or architectures without it), mmap/munmap, and fd passing over
// unix-domain sockets via SCM_RIGHTS. Everything here is stdlib-only.
package memnode

import (
	"fmt"
	"net"
	"os"
	"syscall"
	"unsafe"
)

const shmSupported = true

// shmCreateSegment returns a file descriptor backing an anonymous
// shared segment of n bytes.
func shmCreateSegment(n int64) (int, error) {
	if sysMemfdCreate != 0 {
		name, err := syscall.BytePtrFromString("memnode-shm")
		if err == nil {
			const mfdCloexec = 0x1
			fd, _, errno := syscall.Syscall(sysMemfdCreate, uintptr(unsafe.Pointer(name)), mfdCloexec, 0)
			if errno == 0 {
				if err := syscall.Ftruncate(int(fd), n); err != nil {
					_ = syscall.Close(int(fd)) // best-effort cleanup on the error path
					return -1, fmt.Errorf("shm: ftruncate memfd: %w", err)
				}
				return int(fd), nil
			}
		}
	}
	// Fallback: an unlinked temp file gives the same anonymous,
	// fd-passable backing without memfd_create.
	f, err := os.CreateTemp("", "memnode-shm-*")
	if err != nil {
		return -1, fmt.Errorf("shm: create segment backing: %w", err)
	}
	name := f.Name()
	fd, err := syscall.Dup(int(f.Fd()))
	_ = f.Close() // the dup keeps the backing alive
	_ = os.Remove(name)
	if err != nil {
		return -1, fmt.Errorf("shm: dup segment fd: %w", err)
	}
	syscall.CloseOnExec(fd)
	if err := syscall.Ftruncate(fd, n); err != nil {
		_ = syscall.Close(fd) // best-effort cleanup on the error path
		return -1, fmt.Errorf("shm: ftruncate segment: %w", err)
	}
	return fd, nil
}

// shmMap maps n bytes of fd shared read-write.
func shmMap(fd int, n int64) ([]byte, error) {
	return syscall.Mmap(fd, 0, int(n), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func shmUnmap(seg []byte) {
	_ = syscall.Munmap(seg) // unmap failure leaves a dead mapping; nothing actionable
}

// shmFdSize returns the size of the file backing fd (authoritative,
// unlike any size the peer claims).
func shmFdSize(fd int) (int64, error) {
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return 0, err
	}
	return st.Size, nil
}

// shmSendFd writes msg and attaches fd as SCM_RIGHTS ancillary data.
func shmSendFd(uc *net.UnixConn, msg []byte, fd int) error {
	rights := syscall.UnixRights(fd)
	n, oobn, err := uc.WriteMsgUnix(msg, rights, nil)
	if err != nil {
		return err
	}
	if n != len(msg) || oobn != len(rights) {
		return fmt.Errorf("shm: short fd send (%d/%d data, %d/%d oob)", n, len(msg), oobn, len(rights))
	}
	return nil
}

// shmRecvFd reads exactly len(msg) bytes into msg and extracts a single
// passed fd from the ancillary data (which arrives with the first data
// segment; any remaining message bytes are read plainly). Extra fds a
// hostile peer smuggles in are closed, never leaked.
func shmRecvFd(uc *net.UnixConn, msg []byte) (int, error) {
	oob := make([]byte, 128)
	n, oobn, _, _, err := uc.ReadMsgUnix(msg, oob)
	if err != nil {
		return -1, err
	}
	fd := -1
	closeAll := func(fds []int) {
		for _, f := range fds {
			_ = syscall.Close(f) // surplus descriptors from a hostile peer
		}
	}
	if oobn > 0 {
		msgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
		if err != nil {
			return -1, fmt.Errorf("shm: parse control message: %w", err)
		}
		for _, m := range msgs {
			fds, err := syscall.ParseUnixRights(&m)
			if err != nil {
				continue
			}
			for _, f := range fds {
				if fd == -1 {
					fd = f
				} else {
					closeAll([]int{f})
				}
			}
		}
	}
	for n < len(msg) {
		m, err := uc.Read(msg[n:])
		if err != nil {
			if fd != -1 {
				closeAll([]int{fd})
			}
			return -1, err
		}
		n += m
	}
	if fd == -1 {
		// No fd attached: a refusal response. The caller decides from
		// the message body whether that is an error.
		return -1, nil
	}
	syscall.CloseOnExec(fd)
	return fd, nil
}

func closeFd(fd int) error { return syscall.Close(fd) }
