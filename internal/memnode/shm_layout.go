// Shared-memory transport: segment layout and validation.
//
// The shm transport (DESIGN.md §13) moves page data through a single
// memfd-backed segment mapped by both sides instead of through socket
// payloads. The segment is created by the server per connection and
// handed to the client over a unix-domain socket via SCM_RIGHTS; its
// layout, fixed at handshake time, is:
//
//	[0, 4096)              header page (magic, version, geometry, token,
//	                       ring indices and doorbell flags — each index
//	                       on its own cache line)
//	[4096, …)              submission ring: entries × 64-byte slots,
//	                       produced by the client, consumed by the server
//	[…, …)                 completion ring: entries × 64-byte slots,
//	                       produced by the server, consumed by the client
//	[arenaOff, +arenaBytes) data arena: page payloads move by
//	                       (offset, length) descriptors into this area
//
// Submission-queue entry (64 bytes, little-endian):
//
//	op(1) pad(7) id(8) regionID(8) offset(8) length(8) extOff(8) extCap(8) pad(8)
//
// extOff/extCap name the arena extent the client allocated for this
// operation: request payloads (WRITE data, batch descriptor tables) are
// staged there by the client, and response data (READ pages, REGISTER
// ids, STAT blobs, error messages) is written there by the server. The
// client owns arena allocation entirely; the server only validates that
// every extent lies inside the arena and never writes outside one.
//
// Completion-queue entry (64 bytes):
//
//	status(1) pad(7) id(8) length(8) pad(40)
//
// The completion deliberately carries no arena offset: the client
// resolves the id against its own pending table and uses the extent *it*
// recorded at submission, so a hostile server cannot redirect a
// completion into memory the call does not own. Every field read from
// shared memory is validated with the same hostility as wire frames — a
// corrupt ring poisons the stream (all pending calls fail, the client
// re-dials), never the process.
package memnode

import (
	"encoding/binary"
	"fmt"
)

// shmVersion is the shared-segment layout version. Bumped on any layout
// change; mismatches refuse the handshake and fall back to TCP.
const shmVersion = 1

// shmSegMagic stamps the header page so a client never treats a foreign
// mapping as a memnode segment.
const shmSegMagic uint64 = 0x3343_4553_4547_414d // "MAGESEC3" (LE)

// shmHelloMagic opens the unix-socket handshake that precedes fd
// passing; it is distinct from the segment and TCP magics so stray
// traffic on the socket cannot start a handshake.
const shmHelloMagic uint64 = 0x4d48_5345_4741_4d21 // "!MAGESHM" (LE)

// helloFlagShm, set in the flags word of an extended TCP HELLO
// response, advertises that the server also serves the shm transport.
const helloFlagShm uint64 = 1 << 0

// Segment geometry.
const (
	shmHdrBytes  = 4096
	shmSlotBytes = 64

	// Ring-size bounds. Entries are a power of two so slot indexing is a
	// mask; the minimum keeps even tiny windows batched, the maximum
	// bounds a hostile handshake's allocation.
	shmMinEntries = 64
	shmMaxEntries = 8192

	// Arena bounds. The minimum leaves room for the small-extent pool
	// plus one maximal batch; the maximum bounds the tmpfs commitment a
	// hostile client can demand.
	shmMinArenaBytes = 1 << 20
	shmMaxArenaBytes = 1 << 30

	// shmSmallExtBytes is the fixed size of the pre-carved small-extent
	// pool at the start of the arena — one slot comfortably holds a
	// page-sized op (4 KiB data plus headroom for descriptor tables and
	// error messages). Larger transfers allocate from the first-fit
	// region behind the pool.
	shmSmallExtBytes = 32 << 10
)

// Header-page field offsets. Ring indices and doorbell flags sit on
// separate cache lines: each word has exactly one writer (the side named
// in the comment), and the peer only reads it.
const (
	shmOffMagic      = 0
	shmOffVersion    = 8
	shmOffEntries    = 16
	shmOffArenaOff   = 24
	shmOffArenaBytes = 32
	shmOffToken      = 40
	shmOffSqProd     = 128 // written by client
	shmOffSqCons     = 192 // written by server
	shmOffCqProd     = 256 // written by server
	shmOffCqCons     = 320 // written by client
	shmOffSrvSleep   = 384 // set by server before sleeping, cleared by client's doorbell CAS
	shmOffCliSleep   = 448 // set by client before sleeping, cleared by server's doorbell CAS
)

// Submission-queue entry field offsets.
const (
	sqeOp     = 0
	sqeID     = 8
	sqeRegion = 16
	sqeOffset = 24
	sqeLength = 32
	sqeExtOff = 40
	sqeExtCap = 48
)

// Completion-queue entry field offsets.
const (
	cqeStatus = 0
	cqeID     = 8
	cqeLength = 16
)

// shmLayout is the negotiated geometry of one segment. The server
// derives it from the client's requested window, stamps it into the
// header page, and repeats it in the handshake response; the client
// cross-validates the two against the mapped size before trusting
// either.
type shmLayout struct {
	entries    uint64 // ring slots (power of two)
	arenaOff   int64
	arenaBytes int64
	segBytes   int64
	token      uint64
}

// shmLayoutFor sizes a segment for a client window. Rings get twice the
// window (rounded up to a power of two) so a full ring always means a
// broken peer, never backpressure; the arena gets the small-extent pool
// plus room for two maximal batch transfers, unless arenaBytes pins it.
func shmLayoutFor(window int, arenaBytes int64, token uint64) shmLayout {
	if window < 1 {
		window = 1
	}
	want := uint64(2 * (window + 8))
	entries := uint64(shmMinEntries)
	for entries < want && entries < shmMaxEntries {
		entries <<= 1
	}
	if arenaBytes <= 0 {
		arenaBytes = int64(window+8)*shmSmallExtBytes + 2*(MaxIO+shmSmallExtBytes)
	}
	if arenaBytes < shmMinArenaBytes {
		arenaBytes = shmMinArenaBytes
	}
	if arenaBytes > shmMaxArenaBytes {
		arenaBytes = shmMaxArenaBytes
	}
	// Page-align the arena so its extents never straddle the rings.
	rings := int64(2*entries) * shmSlotBytes
	arenaOff := (shmHdrBytes + rings + 4095) &^ 4095
	return shmLayout{
		entries:    entries,
		arenaOff:   arenaOff,
		arenaBytes: arenaBytes,
		segBytes:   arenaOff + arenaBytes,
		token:      token,
	}
}

// validate rejects any geometry a hostile or mismatched peer could use
// to push ring or arena accesses outside the mapping. mappedBytes is
// the authoritative size of the received segment (from fstat), not the
// peer's claim.
func (l shmLayout) validate(mappedBytes int64) error {
	if l.entries < shmMinEntries || l.entries > shmMaxEntries || l.entries&(l.entries-1) != 0 {
		return fmt.Errorf("shm: bad ring size %d", l.entries)
	}
	if l.arenaBytes < shmMinArenaBytes || l.arenaBytes > shmMaxArenaBytes {
		return fmt.Errorf("shm: bad arena size %d", l.arenaBytes)
	}
	rings := int64(2*l.entries) * shmSlotBytes
	// arenaOff < shmHdrBytes+rings, split so the addition cannot wrap
	// (arenaOff is peer-controlled and may be negative).
	if l.arenaOff < shmHdrBytes || l.arenaOff-shmHdrBytes < rings || l.arenaOff%4096 != 0 {
		return fmt.Errorf("shm: bad arena offset %d (rings end at %d)", l.arenaOff, shmHdrBytes+rings)
	}
	// arenaOff + arenaBytes > segBytes, in overflow-safe subtracted form.
	if l.segBytes < 0 || l.arenaBytes > l.segBytes || l.arenaOff > l.segBytes-l.arenaBytes {
		return fmt.Errorf("shm: arena [%d,+%d) outside segment %d", l.arenaOff, l.arenaBytes, l.segBytes)
	}
	if mappedBytes < l.segBytes {
		return fmt.Errorf("shm: segment claims %d bytes, backing holds %d", l.segBytes, mappedBytes)
	}
	return nil
}

// stamp writes the layout into a segment's header page.
func (l shmLayout) stamp(seg []byte) {
	binary.LittleEndian.PutUint64(seg[shmOffMagic:], shmSegMagic)
	binary.LittleEndian.PutUint64(seg[shmOffVersion:], shmVersion)
	binary.LittleEndian.PutUint64(seg[shmOffEntries:], l.entries)
	binary.LittleEndian.PutUint64(seg[shmOffArenaOff:], uint64(l.arenaOff))
	binary.LittleEndian.PutUint64(seg[shmOffArenaBytes:], uint64(l.arenaBytes))
	binary.LittleEndian.PutUint64(seg[shmOffToken:], l.token)
}

// checkStamp cross-validates a mapped segment's header against the
// handshake-negotiated layout. Both copies come from the peer, but they
// travel different paths (socket message vs segment memory); agreement
// is required before the client trusts the geometry.
func (l shmLayout) checkStamp(seg []byte) error {
	if got := binary.LittleEndian.Uint64(seg[shmOffMagic:]); got != shmSegMagic {
		return fmt.Errorf("shm: bad segment magic %#x", got)
	}
	if got := binary.LittleEndian.Uint64(seg[shmOffVersion:]); got != shmVersion {
		return fmt.Errorf("shm: segment version %d, want %d", got, shmVersion)
	}
	if got := binary.LittleEndian.Uint64(seg[shmOffEntries:]); got != l.entries {
		return fmt.Errorf("shm: segment rings %d, handshake said %d", got, l.entries)
	}
	if got := binary.LittleEndian.Uint64(seg[shmOffArenaOff:]); got != uint64(l.arenaOff) {
		return fmt.Errorf("shm: segment arena offset %d, handshake said %d", got, l.arenaOff)
	}
	if got := binary.LittleEndian.Uint64(seg[shmOffArenaBytes:]); got != uint64(l.arenaBytes) {
		return fmt.Errorf("shm: segment arena size %d, handshake said %d", got, l.arenaBytes)
	}
	if got := binary.LittleEndian.Uint64(seg[shmOffToken:]); got != l.token {
		return fmt.Errorf("shm: segment token mismatch")
	}
	return nil
}

// sqEntry is one decoded submission-ring slot. All fields are
// attacker-controlled shared-memory input until validated.
type sqEntry struct {
	op       byte
	id       uint64
	regionID uint64
	offset   int64
	length   int64
	extOff   uint64
	extCap   uint64
}

func decodeSQE(slot []byte) sqEntry {
	return sqEntry{
		op:       slot[sqeOp],
		id:       binary.LittleEndian.Uint64(slot[sqeID:]),
		regionID: binary.LittleEndian.Uint64(slot[sqeRegion:]),
		offset:   int64(binary.LittleEndian.Uint64(slot[sqeOffset:])),
		length:   int64(binary.LittleEndian.Uint64(slot[sqeLength:])),
		extOff:   binary.LittleEndian.Uint64(slot[sqeExtOff:]),
		extCap:   binary.LittleEndian.Uint64(slot[sqeExtCap:]),
	}
}

func encodeSQE(slot []byte, e sqEntry) {
	slot[sqeOp] = e.op
	binary.LittleEndian.PutUint64(slot[sqeID:], e.id)
	binary.LittleEndian.PutUint64(slot[sqeRegion:], e.regionID)
	binary.LittleEndian.PutUint64(slot[sqeOffset:], uint64(e.offset))
	binary.LittleEndian.PutUint64(slot[sqeLength:], uint64(e.length))
	binary.LittleEndian.PutUint64(slot[sqeExtOff:], e.extOff)
	binary.LittleEndian.PutUint64(slot[sqeExtCap:], e.extCap)
}

// cqEntry is one decoded completion-ring slot.
type cqEntry struct {
	status byte
	id     uint64
	length int64
}

func decodeCQE(slot []byte) cqEntry {
	return cqEntry{
		status: slot[cqeStatus],
		id:     binary.LittleEndian.Uint64(slot[cqeID:]),
		length: int64(binary.LittleEndian.Uint64(slot[cqeLength:])),
	}
}

func encodeCQE(slot []byte, e cqEntry) {
	slot[cqeStatus] = e.status
	binary.LittleEndian.PutUint64(slot[cqeID:], e.id)
	binary.LittleEndian.PutUint64(slot[cqeLength:], uint64(e.length))
}

// extentInArena reports whether [extOff, extOff+extCap) lies inside an
// arena of arenaBytes bytes, in unsigned overflow-safe form.
func extentInArena(extOff, extCap uint64, arenaBytes int64) bool {
	ab := uint64(arenaBytes)
	return extCap <= ab && extOff <= ab-extCap
}
