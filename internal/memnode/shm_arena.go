// Shared-memory transport: client-side arena allocator.
//
// The client owns every byte of the arena; the server only validates
// offsets against the arena bounds. Allocation is tiered: a LIFO pool
// of page-sized extents serves single-page reads and writes (the far-
// memory hot path) in O(1), a second LIFO pool of 32 KiB extents serves
// the remaining small ops, and a sorted, coalescing first-fit free list
// behind both pools serves large transfers (multi-megabyte READV/WRITEV
// payloads). The page class exists for locality as much as for speed:
// depth × 4 KiB of hot extents stays cache-resident, where depth ×
// 32 KiB slots would spread the server's copies across a working set
// that misses.
package memnode

import (
	"sort"
	"sync" //magevet:ok host-side arena allocator guarding shared free lists
)

// shmPageExtBytes is the page-class extent size: single-page ops
// allocate from a dense pool of these.
const shmPageExtBytes = 4096

type shmExtent struct {
	off int64
	n   int64
}

type shmArena struct {
	mu         sync.Mutex
	pageLimit  int64       // offsets below this are page-class slots
	smallLimit int64       // offsets in [pageLimit, smallLimit) are small-class slots
	pages      []int64     // LIFO of free page-slot offsets
	small      []int64     // LIFO of free small-slot offsets
	large      []shmExtent // free extents sorted by off, coalesced
}

// newShmArena partitions an arena of arenaBytes into the two pools,
// each sized for the client's window, plus a large first-fit region.
// The pools never exceed half the arena so big batches always have
// room.
func newShmArena(arenaBytes int64, window int) *shmArena {
	if window < 1 {
		window = 1
	}
	slots := int64(window + 8)
	if max := arenaBytes / (2 * (shmPageExtBytes + shmSmallExtBytes)); slots > max {
		slots = max
	}
	if slots < 1 {
		slots = 1
	}
	a := &shmArena{
		pageLimit:  slots * shmPageExtBytes,
		smallLimit: slots * (shmPageExtBytes + shmSmallExtBytes),
	}
	a.pages = make([]int64, 0, slots)
	a.small = make([]int64, 0, slots)
	for i := slots - 1; i >= 0; i-- {
		a.pages = append(a.pages, i*shmPageExtBytes)
		a.small = append(a.small, a.pageLimit+i*shmSmallExtBytes)
	}
	if arenaBytes > a.smallLimit {
		a.large = []shmExtent{{off: a.smallLimit, n: arenaBytes - a.smallLimit}}
	}
	return a
}

// alloc returns an extent of at least n bytes, or ok=false when the
// arena is momentarily exhausted (the caller spins with a deadline —
// exhaustion resolves as in-flight calls complete). Large extents are
// rounded to 4 KiB so coalescing keeps the free list short.
func (a *shmArena) alloc(n int64) (off int64, cap int64, ok bool) {
	if n < 0 {
		return 0, 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n <= shmPageExtBytes && len(a.pages) > 0 {
		off = a.pages[len(a.pages)-1]
		a.pages = a.pages[:len(a.pages)-1]
		return off, shmPageExtBytes, true
	}
	if n <= shmSmallExtBytes && len(a.small) > 0 {
		off = a.small[len(a.small)-1]
		a.small = a.small[:len(a.small)-1]
		return off, shmSmallExtBytes, true
	}
	n = (n + 4095) &^ 4095
	if n == 0 {
		n = 4096
	}
	for i := range a.large {
		if a.large[i].n >= n {
			off = a.large[i].off
			a.large[i].off += n
			a.large[i].n -= n
			if a.large[i].n == 0 {
				a.large = append(a.large[:i], a.large[i+1:]...)
			}
			return off, n, true
		}
	}
	return 0, 0, false
}

// free returns an extent obtained from alloc. Pool slots go back on
// their LIFO; large extents are inserted in offset order and coalesced
// with both neighbours.
func (a *shmArena) free(off, cap int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if off < a.pageLimit {
		a.pages = append(a.pages, off)
		return
	}
	if off < a.smallLimit {
		a.small = append(a.small, off)
		return
	}
	i := sort.Search(len(a.large), func(i int) bool { return a.large[i].off >= off })
	a.large = append(a.large, shmExtent{})
	copy(a.large[i+1:], a.large[i:])
	a.large[i] = shmExtent{off: off, n: cap}
	// Coalesce with the next extent, then the previous one.
	if i < len(a.large)-1 && a.large[i].off+a.large[i].n == a.large[i+1].off {
		a.large[i].n += a.large[i+1].n
		a.large = append(a.large[:i+1], a.large[i+2:]...)
	}
	if i > 0 && a.large[i-1].off+a.large[i-1].n == a.large[i].off {
		a.large[i-1].n += a.large[i].n
		a.large = append(a.large[:i], a.large[i+1:]...)
	}
}
