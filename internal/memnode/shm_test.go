package memnode

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mage/internal/stats"
)

// newShmServer starts a server with the shm transport enabled, skipping
// the test on platforms that cannot provide it.
func newShmServer(t *testing.T, capacity int64) *Server {
	t.Helper()
	if !shmSupported {
		t.Skip("shm transport unsupported on this platform")
	}
	srv, err := NewServerOptions("127.0.0.1:0", capacity, ServerOptions{EnableShm: true})
	if err != nil {
		t.Skipf("shm server unavailable: %v", err)
	}
	return srv
}

// newShmPair returns an shm-enabled server and a client that negotiated
// the shm transport.
func newShmPair(t *testing.T, capacity int64) (*Server, *Client) {
	t.Helper()
	srv := newShmServer(t, capacity)
	t.Cleanup(func() { srv.Close() })
	c, err := DialOptions(srv.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestShmRoundtrip(t *testing.T) {
	srv, c := newShmPair(t, 64<<20)
	if srv.ShmAddr() == "" {
		t.Fatal("shm server advertises no socket path")
	}
	roundtrip(t, c)
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind = %q, want shm", got)
	}
	m := c.Metrics()
	if m.ShmConnects == 0 {
		t.Error("no shm connects recorded")
	}
	if m.ShmFallbacks != 0 {
		t.Errorf("unexpected shm fallbacks: %d", m.ShmFallbacks)
	}
	// Stats flow through the same region store as TCP.
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions == 0 || st.WriteOps == 0 {
		t.Errorf("stat over shm looks empty: %+v", st)
	}
}

// TestShmSuite runs the core verb semantics over the shm transport:
// batch verbs, error statuses, large transfers through the first-fit
// region of the arena, and pipelined async traffic.
func TestShmSuite(t *testing.T) {
	_, c := newShmPair(t, 128<<20)
	id, err := c.Register(32 << 20)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("batchVerbs", func(t *testing.T) {
		const pages, pageBytes = 64, 4096
		offsets := make([]int64, pages)
		wpages := make([][]byte, pages)
		for i := range offsets {
			offsets[i] = int64(i) * pageBytes
			pg := make([]byte, pageBytes)
			for j := range pg {
				pg[j] = byte(i ^ j)
			}
			wpages[i] = pg
		}
		if err := c.WriteV(id, offsets, wpages); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadV(id, offsets, pageBytes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !bytes.Equal(got[i], wpages[i]) {
				t.Fatalf("page %d corrupted over shm", i)
			}
		}
	})

	t.Run("largeTransfer", func(t *testing.T) {
		// MaxIO-sized single ops exercise the large first-fit region.
		big := make([]byte, MaxIO)
		for i := range big {
			big[i] = byte(i * 7)
		}
		if err := c.Write(id, 16<<20, big); err != nil {
			t.Fatal(err)
		}
		got, err := c.Read(id, 16<<20, MaxIO)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, big) {
			t.Fatal("MaxIO transfer corrupted over shm")
		}
		PutBuf(got)
	})

	t.Run("errorStatuses", func(t *testing.T) {
		// Out-of-bounds read: terminal server error, stream stays healthy.
		if _, err := c.Read(id, 32<<20, 4096); err == nil {
			t.Fatal("out-of-bounds read succeeded")
		}
		// Unknown region: terminal (not replayable by this client).
		if _, err := c.Read(9999, 0, 4096); err == nil {
			t.Fatal("unknown-region read succeeded")
		}
		// The stream must still be live for valid ops.
		roundtripRegion(t, c, id)
		if got := c.TransportKind(); got != "shm" {
			t.Fatalf("TransportKind after errors = %q, want shm", got)
		}
	})

	t.Run("asyncPipeline", func(t *testing.T) {
		const depth = 128
		page := make([]byte, 4096)
		for i := range page {
			page[i] = 0x5A
		}
		pend := make([]*Pending, 0, 2*depth)
		for i := 0; i < depth; i++ {
			pend = append(pend, c.WriteAsync(id, int64(i)*4096, page))
			pend = append(pend, c.ReadAsync(id, int64(depth+i)*4096, 4096))
		}
		for i, p := range pend {
			body, err := p.Wait()
			if err != nil {
				t.Fatalf("async op %d: %v", i, err)
			}
			if body != nil {
				PutBuf(body)
			}
		}
	})
}

// roundtripRegion writes and reads back one page in an existing region.
func roundtripRegion(t *testing.T, c *Client, id uint64) {
	t.Helper()
	want := []byte("shm transport payload .........")
	if err := c.Write(id, 4096, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 4096, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("roundtrip corrupted")
	}
	PutBuf(got)
}

// TestShmNegotiationMatrix pins the transport-selection behavior across
// every client/server capability combination.
func TestShmNegotiationMatrix(t *testing.T) {
	t.Run("autoClientShmServer", func(t *testing.T) {
		_, c := newShmPair(t, 16<<20)
		roundtrip(t, c)
		if got := c.TransportKind(); got != "shm" {
			t.Fatalf("TransportKind = %q, want shm", got)
		}
	})
	t.Run("autoClientTcpOnlyServer", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := DialOptions(srv.Addr(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if got := c.TransportKind(); got != "tcp-v2" {
			t.Fatalf("TransportKind = %q, want tcp-v2", got)
		}
		if m := c.Metrics(); m.ShmFallbacks != 0 || m.ShmConnects != 0 {
			t.Errorf("tcp-only negotiation touched shm counters: %+v", m)
		}
	})
	t.Run("tcpOverrideAgainstShmServer", func(t *testing.T) {
		srv := newShmServer(t, 16<<20)
		defer srv.Close()
		opts := fastOpts()
		opts.Transport = TransportTCP
		c, err := DialOptions(srv.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if got := c.TransportKind(); got != "tcp-v2" {
			t.Fatalf("TransportKind = %q, want tcp-v2", got)
		}
	})
	t.Run("shmRequiredAgainstTcpOnlyServer", func(t *testing.T) {
		if !shmSupported {
			t.Skip("shm transport unsupported on this platform")
		}
		srv, err := NewServer("127.0.0.1:0", 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		opts := fastOpts()
		opts.Transport = TransportShm
		opts.MaxAttempts = 2
		c, err := DialOptions(srv.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Register(1 << 20); err == nil {
			t.Fatal("forced-shm client succeeded against a tcp-only server")
		}
	})
	t.Run("v1ClientShmServer", func(t *testing.T) {
		srv := newShmServer(t, 16<<20)
		defer srv.Close()
		opts := fastOpts()
		opts.Protocol = protoV1
		c, err := DialOptions(srv.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if got := c.TransportKind(); got != "tcp-v1" {
			t.Fatalf("TransportKind = %q, want tcp-v1", got)
		}
	})
	t.Run("v1PinnedServerShmIgnored", func(t *testing.T) {
		// A server capped at v1 never sends the HELLO extension, so even
		// an shm-enabled build of it serves v1 clients only.
		if !shmSupported {
			t.Skip("shm transport unsupported on this platform")
		}
		srv, err := NewServerOptions("127.0.0.1:0", 16<<20, ServerOptions{MaxProtocol: protoV1, EnableShm: true})
		if err != nil {
			t.Skipf("shm server unavailable: %v", err)
		}
		defer srv.Close()
		c, err := DialOptions(srv.Addr(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if got := c.TransportKind(); got != "tcp-v1" {
			t.Fatalf("TransportKind = %q, want tcp-v1", got)
		}
	})
}

// TestShmServerChaos kills the server mid-ring with the arena still
// mapped and 256 calls in flight. The client must detect peer death via
// the doorbell socket EOF, fail pending calls into the retry loop, and
// transparently re-negotiate against the restarted server — including
// REGISTER replay. The restarted server comes back shm-enabled, so the
// recovered stream is shm again.
func TestShmServerChaos(t *testing.T) {
	srv := newShmServer(t, 256<<20)
	addr := srv.Addr()
	opts := fastOpts()
	opts.Window = 256
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind before chaos = %q, want shm", got)
	}

	const inflight = 256
	page := make([]byte, 4096)
	for i := range page {
		page[i] = 0xCD
	}
	pend := make([]*Pending, 0, inflight)
	for i := 0; i < inflight/2; i++ {
		pend = append(pend, c.WriteAsync(id, int64(i)*4096, page))
		pend = append(pend, c.ReadAsync(id, int64(128+i)*4096, 4096))
	}

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	var srv2 *Server
	for {
		srv2, err = NewServerOptions(addr, 256<<20, ServerOptions{EnableShm: true})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not restart server on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	timeout := time.After(30 * time.Second)
	for i, p := range pend {
		select {
		case <-p.Done():
			if body, err := p.Wait(); err == nil && body != nil {
				PutBuf(body)
			}
		case <-timeout:
			t.Fatalf("op %d/%d still hanging after server restart", i, len(pend))
		}
	}

	// The recovered connection negotiated shm again (fresh token, fresh
	// segment) and the handle is fully usable. This roundtrip forces the
	// reconnect even if every async op happened to finish before Close.
	roundtripRegion(t, c, id)
	m := c.Metrics()
	if m.Reconnects == 0 {
		t.Error("expected reconnects across the restart")
	}
	if m.RegionReplays == 0 {
		t.Error("expected a REGISTER replay after the restart")
	}
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind after restart = %q, want shm", got)
	}
}

// TestShmChaosFallbackToTcp kills an shm server and restarts it
// shm-disabled on the same port: the client must detect the death, fail
// pending calls, and recover over plain TCP v2.
func TestShmChaosFallbackToTcp(t *testing.T) {
	srv := newShmServer(t, 64<<20)
	addr := srv.Addr()
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind = %q, want shm", got)
	}
	pend := make([]*Pending, 0, 64)
	for i := 0; i < 64; i++ {
		pend = append(pend, c.ReadAsync(id, int64(i)*4096, 4096))
	}

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	var srv2 *Server
	for {
		srv2, err = NewServer(addr, 64<<20) // no shm this time
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not restart server on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	timeout := time.After(30 * time.Second)
	for i, p := range pend {
		select {
		case <-p.Done():
			if body, err := p.Wait(); err == nil && body != nil {
				PutBuf(body)
			}
		case <-timeout:
			t.Fatalf("op %d still hanging after shm→tcp fallback", i)
		}
	}
	roundtripRegion(t, c, id)
	if got := c.TransportKind(); got != "tcp-v2" {
		t.Fatalf("TransportKind after shm-refusing restart = %q, want tcp-v2", got)
	}
}

// TestShmCloseUnblocksPending mirrors the TCP Close-mid-flight
// guarantee on the shm path: Close fails in-flight calls promptly even
// when the server never completes them.
func TestShmCloseUnblocksPending(t *testing.T) {
	srv := newShmServer(t, 64<<20)
	defer srv.Close()
	opts := fastOpts()
	opts.IOTimeout = 30 * time.Second
	opts.MaxAttempts = 100
	c, err := DialOptions(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Register(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Stall the server's ring consumer by never letting it see a
	// doorbell: simplest is to kill its handler mid-flight via Close
	// below, so just put ops in flight and Close the client.
	pend := make([]*Pending, 0, 32)
	for i := 0; i < 32; i++ {
		pend = append(pend, c.ReadAsync(id, int64(i)*4096, 4096))
	}
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	timeout := time.After(5 * time.Second)
	for i, p := range pend {
		select {
		case <-p.Done():
			if _, err := p.Wait(); err != nil && !errors.Is(err, ErrClosed) {
				// Ops that completed before Close are fine too.
				var se *serverError
				if !errors.As(err, &se) {
					t.Logf("op %d resolved with %v", i, err)
				}
			}
		case <-timeout:
			t.Fatalf("op %d still pending %v after Close", i, time.Since(start))
		}
	}
}

// TestShmArenaAllocator unit-tests the hybrid extent allocator:
// small-slot LIFO reuse, first-fit large allocation, and coalescing.
func TestShmArenaAllocator(t *testing.T) {
	const arena = 8 << 20
	a := newShmArena(arena, 16)
	// Page-sized allocations come from the page pool and recycle LIFO.
	off1, cap1, ok := a.alloc(4096)
	if !ok || cap1 != shmPageExtBytes {
		t.Fatalf("page alloc: off=%d cap=%d ok=%v", off1, cap1, ok)
	}
	a.free(off1, cap1)
	off2, _, ok := a.alloc(100)
	if !ok || off2 != off1 {
		t.Fatalf("LIFO reuse broken: got %d, want %d", off2, off1)
	}
	a.free(off2, shmPageExtBytes)
	// Mid-sized allocations land in the small class, above the page pool.
	offS, capS, ok := a.alloc(shmPageExtBytes + 1)
	if !ok || capS != shmSmallExtBytes || offS < a.pageLimit {
		t.Fatalf("small alloc: off=%d cap=%d ok=%v (pageLimit %d)", offS, capS, ok, a.pageLimit)
	}
	a.free(offS, capS)

	// Large allocations are 4 KiB-rounded, disjoint, and inside bounds.
	offA, capA, ok := a.alloc(1 << 20)
	if !ok || offA < a.smallLimit || capA < 1<<20 {
		t.Fatalf("large alloc A: off=%d cap=%d ok=%v", offA, capA, ok)
	}
	offB, capB, ok := a.alloc(2 << 20)
	if !ok || offB < offA+capA {
		t.Fatalf("large alloc B overlaps A: A=[%d,+%d) B=[%d,+%d)", offA, capA, offB, capB)
	}
	// Free both; coalescing must let a bigger extent fit again.
	a.free(offA, capA)
	a.free(offB, capB)
	offC, capC, ok := a.alloc(3 << 20)
	if !ok || offC != offA || capC < 3<<20 {
		t.Fatalf("coalescing broken: off=%d cap=%d ok=%v (want off=%d)", offC, capC, ok, offA)
	}
	a.free(offC, capC)

	// Exhaustion returns ok=false, not a bogus extent.
	if _, _, ok := a.alloc(arena * 2); ok {
		t.Fatal("oversized alloc succeeded")
	}
}

// TestShmLayout pins the geometry validation: hostile handshake values
// must be rejected before any mapping math uses them.
func TestShmLayout(t *testing.T) {
	l := shmLayoutFor(128, 0, 42)
	if err := l.validate(l.segBytes); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	if l.entries < 2*128 {
		t.Fatalf("ring entries %d cannot hold twice the window", l.entries)
	}
	bad := []shmLayout{
		{entries: 0, arenaOff: l.arenaOff, arenaBytes: l.arenaBytes, segBytes: l.segBytes},
		{entries: 100, arenaOff: l.arenaOff, arenaBytes: l.arenaBytes, segBytes: l.segBytes},           // not a power of two
		{entries: l.entries, arenaOff: 8, arenaBytes: l.arenaBytes, segBytes: l.segBytes},              // arena inside rings
		{entries: l.entries, arenaOff: l.arenaOff, arenaBytes: 1 << 40, segBytes: l.segBytes},          // absurd arena
		{entries: l.entries, arenaOff: l.arenaOff, arenaBytes: l.arenaBytes, segBytes: l.arenaOff},     // arena outside segment
		{entries: l.entries, arenaOff: l.arenaOff, arenaBytes: l.arenaBytes, segBytes: l.segBytes * 2}, // claims more than backing
	}
	for i, b := range bad {
		if err := b.validate(l.segBytes); err == nil {
			t.Errorf("hostile layout %d accepted", i)
		}
	}
}

// BenchmarkMemnodeShmPipeline is BenchmarkMemnodePipeline over the
// shared-memory transport: same 32-deep synchronous-read lanes, same
// pages/s and p99 metrics, so the two numbers are directly comparable.
// benchsnap -require pins the shm speedup in BENCH_*.json snapshots.
func BenchmarkMemnodeShmPipeline(b *testing.B) {
	if !shmSupported {
		b.Skip("shm transport unsupported on this platform")
	}
	srv, err := NewServerOptions("127.0.0.1:0", 64<<20, ServerOptions{EnableShm: true})
	if err != nil {
		b.Skipf("shm server unavailable: %v", err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Register(32 << 20)
	if got := c.TransportKind(); got != "shm" {
		b.Fatalf("TransportKind = %q, want shm", got)
	}
	const depth = 32
	lat := stats.NewConcurrentHistogram()
	var next atomic.Int64
	var fails atomic.Uint64
	var wg sync.WaitGroup
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := stats.NewHistogram()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					break
				}
				t0 := time.Now()
				body, err := c.Read(id, (i%8192)*4096, 4096)
				if err != nil {
					fails.Add(1)
					continue
				}
				PutBuf(body)
				h.Record(time.Since(t0).Nanoseconds())
			}
			lat.Merge(h)
		}()
	}
	wg.Wait()
	b.StopTimer()
	if n := fails.Load(); n > 0 {
		b.Fatalf("%d pipelined shm reads failed", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	b.ReportMetric(float64(lat.Snapshot().P99())/1e3, "p99-us")
}

func TestShmUnregister(t *testing.T) {
	_, c := newShmPair(t, 8<<20)
	unregisterSuite(t, c)
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind = %q, want shm", got)
	}
}
