//go:build linux && amd64

package memnode

// memfd_create on linux/amd64. The stdlib syscall package predates the
// call, so the number is carried here; zero means "use the tmpfile
// fallback" on architectures without an entry.
const sysMemfdCreate uintptr = 319
