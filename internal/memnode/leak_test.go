package memnode

// Goroutine-lifecycle regression tests for the client teardown paths.
// Every transport spins up background goroutines — the TCP v2 stream's
// writer/reader pair, the shm stream's completer — and Close must reap
// all of them, including after a mid-life transport fallback where the
// client has owned more than one stream. These tests pin that contract
// with runtime.NumGoroutine before/after repeated dial/close cycles,
// using the same retry-settle idiom as TestServerChaos (stacks retire
// asynchronously after Close returns).

import (
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count returns to within
// slack of the baseline, failing after the deadline. Tolerating a small
// slack absorbs runtime-internal goroutines (GC workers, netpoll) that
// come and go independently of the code under test.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second) // goroutine-leak check needs wall time
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) { // goroutine-leak check needs wall time
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond) // polling for goroutine exit in a real-time test
	}
}

// cycleClient dials, does one write/read roundtrip, and closes — the
// minimal lifecycle that forces every background goroutine to start.
func cycleClient(t *testing.T, addr string, opts Options, wantKind string) {
	t.Helper()
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	roundtripRegion(t, c, id)
	// Connections are lazy: the transport is only known after an op.
	if got := c.TransportKind(); got != wantKind {
		t.Fatalf("TransportKind = %q, want %q", got, wantKind)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClientCloseReleasesGoroutinesTCP: repeated TCP dial/close cycles
// must not accumulate writer/reader goroutines.
func TestClientCloseReleasesGoroutinesTCP(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := NewServer("127.0.0.1:0", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cycleClient(t, srv.Addr(), fastOpts(), "tcp-v2")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, baseline)
}

// TestClientCloseReleasesGoroutinesShm: same contract on the shm data
// plane, where Close must additionally reap the completion-demux
// goroutine and unmap the segment.
func TestClientCloseReleasesGoroutinesShm(t *testing.T) {
	if !shmSupported {
		t.Skip("shm transport unsupported on this platform")
	}
	baseline := runtime.NumGoroutine()
	srv, err := NewServerOptions("127.0.0.1:0", 16<<20, ServerOptions{EnableShm: true})
	if err != nil {
		t.Skipf("shm server unavailable: %v", err)
	}
	for i := 0; i < 5; i++ {
		cycleClient(t, srv.Addr(), fastOpts(), "shm")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, baseline)
}

// TestClientCloseReleasesGoroutinesFallback: a client that negotiated
// shm, lost the server, and reconnected over plain TCP has owned two
// streams in its lifetime; Close must reap the survivors of both.
func TestClientCloseReleasesGoroutinesFallback(t *testing.T) {
	if !shmSupported {
		t.Skip("shm transport unsupported on this platform")
	}
	baseline := runtime.NumGoroutine()
	srv, err := NewServerOptions("127.0.0.1:0", 16<<20, ServerOptions{EnableShm: true})
	if err != nil {
		t.Skipf("shm server unavailable: %v", err)
	}
	addr := srv.Addr()
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	roundtripRegion(t, c, id)
	if got := c.TransportKind(); got != "shm" {
		t.Fatalf("TransportKind = %q, want shm", got)
	}

	// Kill the shm server and restart tcp-only on the same port: the
	// next op forces reconnect + fallback, retiring the shm stream.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second) // rebinding a just-released port takes wall time
	var srv2 *Server
	for {
		srv2, err = NewServer(addr, 16<<20)
		if err == nil {
			break
		}
		if time.Now().After(deadline) { // rebinding a just-released port takes wall time
			t.Fatalf("could not restart server on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond) // waiting for the OS to release the port
	}
	roundtripRegion(t, c, id)
	if got := c.TransportKind(); got != "tcp-v2" {
		t.Fatalf("TransportKind after fallback = %q, want tcp-v2", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, baseline)
}
