//go:build !linux

// Shared-memory transport stubs for platforms without memfd/SCM_RIGHTS
// support in this codebase. Negotiation sees shmSupported=false and
// falls back to TCP v2 transparently; forcing Options.Transport to shm
// surfaces errShmUnsupported.
package memnode

import (
	"net"
)

const shmSupported = false

func shmCreateSegment(n int64) (int, error)                { return -1, errShmUnsupported }
func shmMap(fd int, n int64) ([]byte, error)               { return nil, errShmUnsupported }
func shmUnmap(seg []byte)                                  {}
func shmFdSize(fd int) (int64, error)                      { return 0, errShmUnsupported }
func shmSendFd(uc *net.UnixConn, msg []byte, fd int) error { return errShmUnsupported }
func shmRecvFd(uc *net.UnixConn, msg []byte) (int, error)  { return -1, errShmUnsupported }

func closeFd(fd int) error { return nil }
