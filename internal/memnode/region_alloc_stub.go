//go:build !linux

package memnode

// allocRegionChunks on non-Linux platforms uses plain heap chunks; the
// GC owns them, so there is no release hook.
func allocRegionChunks(nChunks int) ([][]byte, func()) {
	return heapRegionChunks(nChunks), nil
}
