package memnode

import (
	"testing"
	"unsafe"
)

// TestAllocRegionChunks exercises the platform chunk allocator: chunk
// count and size, ChunkBytes alignment of the mmap-backed mapping (the
// precondition for THP collapsing it to huge pages), disjointness,
// writability end to end, and that release (when present) can run
// after the chunks are dropped.
func TestAllocRegionChunks(t *testing.T) {
	const n = 3
	chunks, release := allocRegionChunks(n)
	if len(chunks) != n {
		t.Fatalf("got %d chunks, want %d", len(chunks), n)
	}
	for i, c := range chunks {
		if len(c) != ChunkBytes {
			t.Fatalf("chunk %d: len %d, want %d", i, len(c), ChunkBytes)
		}
		// First and last byte of every chunk must be writable.
		c[0] = byte(i + 1)
		c[ChunkBytes-1] = byte(i + 1)
	}
	for i, c := range chunks {
		if c[0] != byte(i+1) || c[ChunkBytes-1] != byte(i+1) {
			t.Fatalf("chunk %d: writes did not stick (overlap with another chunk?)", i)
		}
	}
	if release != nil {
		// mmap-backed: the region must be one contiguous ChunkBytes-aligned
		// mapping carved into adjacent chunks.
		base := uintptr(unsafe.Pointer(unsafe.SliceData(chunks[0])))
		if base%ChunkBytes != 0 {
			t.Fatalf("mmap-backed region base %#x not aligned to ChunkBytes", base)
		}
		for i := 1; i < n; i++ {
			addr := uintptr(unsafe.Pointer(unsafe.SliceData(chunks[i])))
			if addr != base+uintptr(i*ChunkBytes) {
				t.Fatalf("chunk %d at %#x, want contiguous %#x", i, addr, base+uintptr(i*ChunkBytes))
			}
		}
		release()
	}
}

// TestHeapRegionChunks covers the portable fallback directly on every
// platform.
func TestHeapRegionChunks(t *testing.T) {
	chunks := heapRegionChunks(2)
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	for i, c := range chunks {
		if len(c) != ChunkBytes {
			t.Fatalf("chunk %d: len %d, want %d", i, len(c), ChunkBytes)
		}
		c[ChunkBytes-1] = 0xAB
	}
}
