package memnode

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mage/internal/stats"
)

// stallListener accepts connections, completes the v2 negotiation, then
// swallows every request without ever responding — the pathological
// server the Close-mid-flight regression needs. The returned channel
// closes when the first post-negotiation request byte arrives, so the
// test can wait for "an op is on the wire and stalled" as an observed
// condition instead of a guessed sleep.
func stallListener(t *testing.T) (string, <-chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	stalled := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				hdr := make([]byte, v1ReqHdrLen)
				if _, err := io.ReadFull(conn, hdr); err != nil {
					return
				}
				var resp [v1RespHdrLen + helloRespLen]byte
				resp[0] = statusOK
				binary.LittleEndian.PutUint64(resp[1:], helloRespLen)
				binary.LittleEndian.PutUint64(resp[v1RespHdrLen:], helloMagic)
				binary.LittleEndian.PutUint64(resp[v1RespHdrLen+8:], protoV2)
				if _, err := conn.Write(resp[:]); err != nil {
					return
				}
				var b [1]byte
				if _, err := conn.Read(b[:]); err != nil {
					return
				}
				once.Do(func() { close(stalled) })
				io.Copy(io.Discard, conn) // stall: consume requests, answer nothing
			}()
		}
	}()
	return ln.Addr().String(), stalled
}

// TestCloseUnblocksStalledOp is the regression test for the old
// lock-scope bug: Client.do used to hold c.mu across the blocking
// round trip, so Close (and Metrics) stalled behind a dead server.
// The pipelined client keeps the lifecycle lock off the data path.
func TestCloseUnblocksStalledOp(t *testing.T) {
	addr, stalled := stallListener(t)
	opts := DefaultOptions()
	opts.IOTimeout = 30 * time.Second // far longer than the test budget
	opts.MaxAttempts = 100
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opErr := make(chan error, 1)
	go func() {
		_, err := c.Read(1, 0, 4096)
		opErr <- err
	}()
	select {
	case <-stalled: // the op reached the wire and is now stalled
	case <-time.After(5 * time.Second):
		t.Fatal("op never reached the stalled server")
	}

	// Metrics must not block behind the stalled op.
	mDone := make(chan struct{})
	go func() { c.Metrics(); close(mDone) }()
	select {
	case <-mDone:
	case <-time.After(time.Second):
		t.Fatal("Metrics blocked behind a stalled op")
	}

	start := time.Now()
	cDone := make(chan error, 1)
	go func() { cDone <- c.Close() }()
	select {
	case <-cDone:
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Close took %v with an op in flight", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a stalled op")
	}
	select {
	case err := <-opErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("stalled op returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight op never returned after Close")
	}
}

// TestServerChaosDeepPipeline kills and restarts the server under 256
// in-flight operations. Every future must resolve — either success or
// a terminal error, never a hang — and after the dust settles the
// replayed region must hold exactly what a fresh round of writes puts
// there (idempotent replay, no duplicate-apply artifacts).
func TestServerChaosDeepPipeline(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	opts := fastOpts()
	opts.Window = 256
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(16 << 20)
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 256
	page := make([]byte, 4096)
	for i := range page {
		page[i] = 0xAB
	}
	pend := make([]*Pending, 0, inflight)
	// Disjoint pages: writes on pages [0,128), reads on pages [128,256).
	for i := 0; i < inflight/2; i++ {
		pend = append(pend, c.WriteAsync(id, int64(i)*4096, page))
		pend = append(pend, c.ReadAsync(id, int64(128+i)*4096, 4096))
	}

	// Kill the server mid-pipeline, then bring it back on the same port.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	var srv2 *Server
	for {
		srv2, err = NewServer(addr, 256<<20)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not restart server on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// Every future must resolve within the retry budget.
	timeout := time.After(30 * time.Second)
	for i, p := range pend {
		select {
		case <-p.Done():
			if body, err := p.Wait(); err == nil && body != nil {
				PutBuf(body)
			}
		case <-timeout:
			t.Fatalf("op %d/%d still hanging after server restart", i, len(pend))
		}
	}

	// The client must have ridden out the restart transparently.
	m := c.Metrics()
	if m.Reconnects == 0 {
		t.Error("expected reconnects across the restart")
	}
	if m.RegionReplays == 0 {
		t.Error("expected a REGISTER replay after the restart")
	}

	// Post-restart the handle must be fully usable: write and verify
	// every page the pipeline touched.
	want := make([]byte, 4096)
	for i := 0; i < inflight; i++ {
		for j := range want {
			want[j] = byte(i + j)
		}
		if err := c.Write(id, int64(i)*4096, want); err != nil {
			t.Fatalf("post-restart write %d: %v", i, err)
		}
		got, err := c.Read(id, int64(i)*4096, 4096)
		if err != nil {
			t.Fatalf("post-restart read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post-restart page %d corrupted", i)
		}
		PutBuf(got)
	}
}

// TestProtocolNegotiation proves both interop directions: a v1-pinned
// client against a v2 server, and a v2 client against a v1-only server
// (which must transparently fall back).
func TestProtocolNegotiation(t *testing.T) {
	t.Run("v1ClientV2Server", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		opts := DefaultOptions()
		opts.Protocol = protoV1
		c, err := DialOptions(srv.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if f := c.Metrics().V1Fallbacks; f != 0 {
			t.Errorf("pinned-v1 client counted %d fallbacks", f)
		}
	})
	t.Run("v2ClientV1Server", func(t *testing.T) {
		srv, err := NewServerOptions("127.0.0.1:0", 16<<20, ServerOptions{MaxProtocol: protoV1})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if f := c.Metrics().V1Fallbacks; f == 0 {
			t.Error("v2 client against v1 server recorded no fallback")
		}
	})
	t.Run("v2Both", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		roundtrip(t, c)
		if f := c.Metrics().V1Fallbacks; f != 0 {
			t.Errorf("v2<->v2 counted %d fallbacks", f)
		}
	})
}

func roundtrip(t *testing.T, c *Client) {
	t.Helper()
	id, err := c.Register(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("negotiated payload")
	if err := c.Write(id, 512, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 512, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("roundtrip mismatch")
	}
	PutBuf(got)
}

// TestBatchVerbs exercises READV/WRITEV end to end, including a batch
// that straddles a chunk boundary.
func TestBatchVerbs(t *testing.T) {
	_, c := newPair(t, 32<<20)
	id, err := c.Register(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	offsets := []int64{
		0,
		4096,
		ChunkBytes - 2048, // straddles the chunk boundary
		ChunkBytes + 4096,
		6 << 20,
	}
	pages := make([][]byte, len(offsets))
	for i := range pages {
		pages[i] = make([]byte, 4096)
		rng.Read(pages[i])
	}
	if err := c.WriteV(id, offsets, pages); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadV(id, offsets, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], pages[i]) {
			t.Errorf("batch page %d mismatch", i)
		}
	}
	PutBuf(got[0][:0:cap(got[0])])
	// Single-page reads must agree with the batch view.
	single, err := c.Read(id, offsets[2], 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single, pages[2]) {
		t.Error("single read disagrees with batched write")
	}
	PutBuf(single)
	// Per-verb wire accounting: one WRITEV + one READV of 5 pages each,
	// plus the single READ above.
	m := c.Metrics()
	batch := uint64(len(offsets)) * 4096
	if m.WriteV.Ops != 1 || m.WriteV.Bytes != batch {
		t.Errorf("WriteV counters = %+v, want 1 op / %d bytes", m.WriteV, batch)
	}
	if m.ReadV.Ops != 1 || m.ReadV.Bytes != batch {
		t.Errorf("ReadV counters = %+v, want 1 op / %d bytes", m.ReadV, batch)
	}
	if m.Read.Ops != 1 || m.Read.Bytes != 4096 {
		t.Errorf("Read counters = %+v, want 1 op / 4096 bytes", m.Read)
	}
}

// TestBatchAtomicRejection: one bad descriptor fails the whole batch
// with zero partial effects.
func TestBatchAtomicRejection(t *testing.T) {
	_, c := newPair(t, 16<<20)
	id, err := c.Register(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pages := [][]byte{
		bytes.Repeat([]byte{1}, 4096),
		bytes.Repeat([]byte{2}, 4096),
	}
	// Second descriptor lands past the region end.
	err = c.WriteV(id, []int64{0, 1<<20 - 100}, pages)
	if err == nil {
		t.Fatal("out-of-bounds batch accepted")
	}
	got, err := c.Read(id, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("rejected batch left partial effects")
		}
	}
	PutBuf(got)
}

// TestBatchAgainstV1Server: the batch APIs must transparently decompose
// into single-page ops when negotiation lands on v1.
func TestBatchAgainstV1Server(t *testing.T) {
	srv, err := NewServerOptions("127.0.0.1:0", 16<<20, ServerOptions{MaxProtocol: protoV1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0, 8192, ChunkBytes - 2048}
	pages := make([][]byte, len(offsets))
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
	}
	if err := c.WriteV(id, offsets, pages); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadV(id, offsets, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], pages[i]) {
			t.Errorf("v1-decomposed batch page %d mismatch", i)
		}
	}
	if c.Metrics().V1Fallbacks == 0 {
		t.Error("expected a v1 fallback against the pinned server")
	}
}

// TestBatchValidation covers the client-side batch shape checks.
func TestBatchValidation(t *testing.T) {
	_, c := newPair(t, 16<<20)
	id, _ := c.Register(1 << 20)
	if _, err := c.ReadV(id, nil, 4096); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := c.ReadV(id, make([]int64, MaxBatchPages+1), 4096); err == nil {
		t.Error("oversized batch accepted")
	}
	if err := c.WriteV(id, []int64{0, 4096}, [][]byte{make([]byte, 4096)}); err == nil {
		t.Error("mismatched offsets/pages accepted")
	}
	if err := c.WriteV(id, []int64{0}, [][]byte{nil}); err == nil {
		t.Error("empty page accepted")
	}
}

// TestAsyncPipeline issues a deep burst of async writes then reads and
// verifies every page — the bread-and-butter pipelined workload.
func TestAsyncPipeline(t *testing.T) {
	_, c := newPair(t, 64<<20)
	id, err := c.Register(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	writes := make([]*Pending, n)
	for i := 0; i < n; i++ {
		pg := bytes.Repeat([]byte{byte(i)}, 4096)
		writes[i] = c.WriteAsync(id, int64(i)*4096, pg)
	}
	for i, p := range writes {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("async write %d: %v", i, err)
		}
	}
	reads := make([]*Pending, n)
	for i := 0; i < n; i++ {
		reads[i] = c.ReadAsync(id, int64(i)*4096, 4096)
	}
	for i, p := range reads {
		body, err := p.Wait()
		if err != nil {
			t.Fatalf("async read %d: %v", i, err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 4096)
		if !bytes.Equal(body, want) {
			t.Fatalf("async read %d mismatch", i)
		}
		PutBuf(body)
	}
	// Async ops ride the same wrappers, so the per-verb counters must see
	// every one of them.
	m := c.Metrics()
	if m.Write.Ops != n || m.Write.Bytes != n*4096 {
		t.Errorf("Write counters = %+v, want %d ops / %d bytes", m.Write, n, n*4096)
	}
	if m.Read.Ops != n || m.Read.Bytes != n*4096 {
		t.Errorf("Read counters = %+v, want %d ops / %d bytes", m.Read, n, n*4096)
	}
}

// BenchmarkServerRoundtrip pins allocs/op on the single-page write+read
// path (pooled request/response buffers, single-writev responses).
func BenchmarkServerRoundtrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Register(32 << 20)
	page := make([]byte, 4096)
	b.SetBytes(8192) // one write + one read per iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%4096) * 4096
		if err := c.Write(id, off, page); err != nil {
			b.Fatal(err)
		}
		body, err := c.Read(id, off, 4096)
		if err != nil {
			b.Fatal(err)
		}
		PutBuf(body)
	}
}

// BenchmarkMemnodePipeline measures single-connection throughput with
// 32 requests in flight — the configuration the ISSUE's ≥5x target is
// stated against (cmd/memnode-bench reports the same workload with the
// full percentile spread). 32 persistent lanes issue synchronous reads
// that the client multiplexes onto one pipelined stream; per-lane
// latency histograms merge into the reported p99. benchsnap -require
// pins both pages/s and p99-us in BENCH_*.json snapshots.
func BenchmarkMemnodePipeline(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Register(32 << 20)
	const depth = 32
	lat := stats.NewConcurrentHistogram()
	var next atomic.Int64
	var fails atomic.Uint64
	var wg sync.WaitGroup
	b.SetBytes(4096)
	b.ResetTimer()
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := stats.NewHistogram()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					break
				}
				t0 := time.Now()
				body, err := c.Read(id, (i%8192)*4096, 4096)
				if err != nil {
					fails.Add(1)
					continue
				}
				PutBuf(body)
				h.Record(time.Since(t0).Nanoseconds())
			}
			lat.Merge(h)
		}()
	}
	wg.Wait()
	b.StopTimer()
	if n := fails.Load(); n > 0 {
		b.Fatalf("%d pipelined reads failed", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	b.ReportMetric(float64(lat.Snapshot().P99())/1e3, "p99-us")
}
