// Wire protocol v2: multiplexed, pipelined frames.
//
// v1 (see the package comment in memnode.go) is strict stop-and-wait —
// one request in flight per connection, responses implicitly matched by
// order. v2 keeps the same verbs but stamps every frame with a request
// ID so a single connection can multiplex many outstanding operations,
// and adds the batched verbs READV/WRITEV that move N pages in one
// frame — the transport analogue of the DES evictor's grouped
// writebacks (internal/core/evict.go).
//
// Version negotiation piggybacks on v1: a v2 client opens with a HELLO
// request shaped exactly like a v1 request header. A v2 server answers
// with a v1-framed OK response carrying a magic + version payload and
// switches the connection to v2 framing; a v1 server answers
// "bad opcode" (statusErr) and the client silently falls back to v1
// stop-and-wait. Both directions therefore interoperate across
// versions with no out-of-band configuration.
//
// v2 framing, little-endian like v1:
//
//	request:  op(1) id(8) regionID(8) offset(8) length(8) payload(...)
//	response: status(1) id(8) length(8) payload(length)
//
// Payload by op:
//
//	READ      none; length = bytes to read
//	WRITE     length bytes of data
//	REGISTER  none; length = region size
//	STAT      none
//	READV     count(8) then count×{offset(8) length(8)} descriptors;
//	          header length = payload bytes (8 + 16·count). The response
//	          payload is the descriptors' data, concatenated in order.
//	WRITEV    count(8), descriptors as READV, then the data for every
//	          descriptor concatenated in order.
//
// Batch verbs validate every descriptor before touching the region, so
// a batch either fully applies or fully fails — which keeps the
// idempotent-retry story identical to the single-page verbs.
package memnode

import (
	"encoding/binary"
	"fmt"
	"sync" //magevet:ok memnode is a real TCP service; the frame buffer pool is shared by client and server goroutines
)

// Protocol versions.
const (
	protoV1 = 1
	protoV2 = 2
)

// v2 opcodes (v1 opcodes live in memnode.go).
const (
	opReadV  = 5
	opWriteV = 6
	// opHello is the negotiation probe. It is deliberately far from the
	// v1 opcode range so a v1 server rejects it as a bad opcode (keeping
	// its connection healthy) instead of misinterpreting it.
	opHello = 0xA5
)

// helloMagic fills the regionID field of a HELLO request and leads the
// HELLO response payload, so stray v1 traffic can never be mistaken for
// a negotiation.
const helloMagic uint64 = 0x3250_5745_4741_4d21 // "!MAGEWP2" (LE)

// Frame-size constants.
const (
	v1ReqHdrLen  = 25 // op(1) regionID(8) offset(8) length(8)
	v1RespHdrLen = 9  // status(1) length(8)
	v2ReqHdrLen  = 33 // op(1) id(8) regionID(8) offset(8) length(8)
	v2RespHdrLen = 17 // status(1) id(8) length(8)
	helloRespLen = 16 // magic(8) version(8)
)

// MaxBatchPages bounds the descriptor count of one READV/WRITEV frame.
const MaxBatchPages = 1024

// maxV2Payload bounds a v2 request or response payload: the largest
// legal frame is a WRITEV carrying MaxIO bytes of data plus a full
// descriptor table. Anything larger is a protocol violation and
// terminates the connection.
const maxV2Payload = MaxIO + 8 + 16*MaxBatchPages

// iovec is one page-sized slot of a batched verb.
type iovec struct {
	off    int64
	length int64
}

// putIovecs encodes count + descriptors into a fresh slice of the exact
// encoded size (8 + 16·len(iovs) bytes).
func putIovecs(iovs []iovec) []byte {
	buf := make([]byte, 8+16*len(iovs))
	binary.LittleEndian.PutUint64(buf, uint64(len(iovs)))
	for i, v := range iovs {
		binary.LittleEndian.PutUint64(buf[8+16*i:], uint64(v.off))
		binary.LittleEndian.PutUint64(buf[16+16*i:], uint64(v.length))
	}
	return buf
}

// parseIovecs decodes and bounds-checks a batch descriptor table. It
// returns the descriptors, the number of payload bytes consumed, and the
// total data bytes the descriptors cover.
func parseIovecs(payload []byte) (iovs []iovec, consumed int, total int64, err error) {
	if len(payload) < 8 {
		return nil, 0, 0, fmt.Errorf("batch: truncated count (have %d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload)
	if n == 0 || n > MaxBatchPages {
		return nil, 0, 0, fmt.Errorf("batch: bad page count %d (max %d)", n, MaxBatchPages)
	}
	consumed = 8 + 16*int(n)
	if len(payload) < consumed {
		return nil, 0, 0, fmt.Errorf("batch: truncated descriptors (%d pages, %d bytes)", n, len(payload))
	}
	iovs = make([]iovec, n)
	for i := range iovs {
		iovs[i].off = int64(binary.LittleEndian.Uint64(payload[8+16*i:]))
		iovs[i].length = int64(binary.LittleEndian.Uint64(payload[16+16*i:]))
		if iovs[i].length <= 0 || iovs[i].length > MaxIO {
			return nil, 0, 0, fmt.Errorf("batch: bad descriptor length %d", iovs[i].length)
		}
		total += iovs[i].length
		if total > MaxIO {
			return nil, 0, 0, fmt.Errorf("batch: total %d exceeds MaxIO", total)
		}
	}
	return iovs, consumed, total, nil
}

// bufPool recycles payload buffers on both sides of the wire: the
// server's per-request read and response buffers, and the client's
// response bodies. Buffers are pooled as *[]byte to keep the slice
// header off the heap.
var bufPool = sync.Pool{}

// getBuf returns a length-n buffer backed by the pool when a pooled
// buffer is large enough, allocating (with power-of-two rounding, 4 KiB
// minimum) otherwise. Contents are unspecified.
func getBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this request; let it age out rather than hold
		// many undersized buffers captive.
	}
	c := 4096
	for c < n {
		c <<= 1
	}
	return make([]byte, n, c)
}

// PutBuf returns a buffer obtained from Client.Read (or any getBuf
// caller) to the shared pool. Optional: unreturned buffers are simply
// garbage-collected. After PutBuf the caller must not touch b again.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	// Arena-backed shm read bodies go home to their arena, not the pool
	// (pooling a slice of a mapping that can be unmapped would be a
	// use-after-unmap wired into every later getBuf).
	if shmReleaseBuf(b) {
		return
	}
	if cap(b) > maxV2Payload {
		return
	}
	// Box a slice declared after the early returns: taking &b would make
	// the parameter escape and cost every caller a heap allocation, even
	// on the arena path above that never touches the pool.
	s := b[:0]
	bufPool.Put(&s)
}
