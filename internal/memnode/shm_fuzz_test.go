package memnode

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRingDemux drives both sides of the shm ring protocol on fake
// in-memory segments with fuzz-controlled ring state: out-of-range
// arena extents, overlapping descriptors, stale/duplicate/unknown
// completion IDs, implausible producer indices, and head/tail
// wraparound. Neither side may ever panic or index out of bounds; a
// hostile ring must fail the connection cleanly (a returned error that
// the caller turns into poison), and no call may complete twice (a
// double completion would double-close the done channel and panic).
//
// Input format (shared by both drivers):
//
//	[0:8)   producer/consumer base index (exercises wraparound)
//	[8:16)  published delta over the base (implausible values > entries
//	        must read as ring corruption, not as a huge iteration count)
//	[16]    pending-call count seed (client driver only)
//	[17:)   raw 64-byte ring slots (SQEs for the server driver, CQEs for
//	        the client driver)
const fuzzRingEntries = 64

func ringSeed(base, delta uint64, npend byte, slots ...[]byte) []byte {
	buf := make([]byte, 17, 17+len(slots)*shmSlotBytes)
	binary.LittleEndian.PutUint64(buf[0:], base)
	binary.LittleEndian.PutUint64(buf[8:], delta)
	buf[16] = npend
	for _, s := range slots {
		slot := make([]byte, shmSlotBytes)
		copy(slot, s)
		buf = append(buf, slot...)
	}
	return buf
}

func sqeBytes(e sqEntry) []byte {
	slot := make([]byte, shmSlotBytes)
	encodeSQE(slot, e)
	return slot
}

func cqeBytes(e cqEntry) []byte {
	slot := make([]byte, shmSlotBytes)
	encodeCQE(slot, e)
	return slot
}

// fuzzRingSegment builds a plain in-memory segment shaped like a real
// mapping for fuzzRingEntries-slot rings.
func fuzzRingSegment(arenaBytes int64) ([]byte, int64) {
	ringBytes := int64(2*fuzzRingEntries) * shmSlotBytes
	arenaOff := (shmHdrBytes + ringBytes + 4095) &^ 4095
	return make([]byte, arenaOff+arenaBytes), arenaOff
}

// fuzzShmProcess replays fuzz bytes as the submission ring a hostile
// client produced and runs the server-side consumer over it.
func fuzzShmProcess(data []byte) {
	const arenaBytes = 128 << 10
	seg, arenaOff := fuzzRingSegment(arenaBytes)
	h := &shmConn{
		s:     fuzzServer(),
		seg:   seg,
		arena: seg[arenaOff : arenaOff+arenaBytes],
		sq:    newShmRing(seg, shmHdrBytes, fuzzRingEntries, shmOffSqCons, shmOffSqProd),
		cq:    newShmRing(seg, shmHdrBytes+fuzzRingEntries*shmSlotBytes, fuzzRingEntries, shmOffCqProd, shmOffCqCons),
	}
	h.srvSleep = shmWord(seg, shmOffSrvSleep)
	h.cliSleep = shmWord(seg, shmOffCliSleep)

	base := binary.LittleEndian.Uint64(data)
	delta := binary.LittleEndian.Uint64(data[8:])
	h.sq.local = base
	*h.sq.mine = base
	*h.sq.peer = base + delta
	copy(seg[shmHdrBytes:shmHdrBytes+fuzzRingEntries*shmSlotBytes], data[17:])

	// A poisoned ring returns an error once and the handler dies; a sane
	// burst drains in the first call and the rest are no-ops.
	for i := 0; i < 3; i++ {
		if _, err := h.process(); err != nil {
			return
		}
	}
}

// fuzzShmConsume replays fuzz bytes as the completion ring a hostile
// server produced and runs the client-side demux over it, with a
// handful of genuine pending calls staged so stale/duplicate IDs have
// something to collide with.
func fuzzShmConsume(data []byte) {
	const arenaBytes = 128 << 10
	seg, arenaOff := fuzzRingSegment(arenaBytes)
	st := &shmStream{
		seg:     seg,
		arena:   seg[arenaOff : arenaOff+arenaBytes],
		alloc:   newShmArena(arenaBytes, 4),
		cq:      newShmRing(seg, shmHdrBytes+fuzzRingEntries*shmSlotBytes, fuzzRingEntries, shmOffCqCons, shmOffCqProd),
		pending: make([]*call, fuzzRingEntries),
	}
	st.refs.Store(1)

	base := binary.LittleEndian.Uint64(data)
	delta := binary.LittleEndian.Uint64(data[8:])
	npend := int(data[16])%16 + 1
	st.cq.local = base
	*st.cq.mine = base
	*st.cq.peer = base + delta

	calls := make([]*call, 0, npend)
	for i := 0; i < npend; i++ {
		off, cp, ok := st.alloc.alloc(4096)
		if !ok {
			break
		}
		ca := &call{
			op: opRead, id: base + uint64(i) + 1, length: 4096,
			extOff: off, extCap: cp,
		}
		slot := ca.id & (fuzzRingEntries - 1)
		if st.pending[slot] != nil {
			st.alloc.free(off, cp)
			continue
		}
		st.pending[slot] = ca
		st.npend++
		calls = append(calls, ca)
	}

	cqOff := shmHdrBytes + int64(fuzzRingEntries)*shmSlotBytes
	copy(seg[cqOff:cqOff+fuzzRingEntries*shmSlotBytes], data[17:])

	for i := 0; i < 3; i++ {
		n, err := st.consumeCompletions(nil)
		if err != nil || n == 0 {
			break
		}
	}
	// Recycle whatever legitimately completed; a double completion would
	// already have panicked inside complete().
	for _, ca := range calls {
		if ca.completed() && ca.err == nil && ca.body != nil {
			PutBuf(ca.body)
		}
	}
}

func FuzzRingDemux(f *testing.F) {
	const e = fuzzRingEntries
	arena := int64(128 << 10)
	// Clean single read against the pre-registered region.
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opRead, id: 1, regionID: 1, offset: 0, length: 4096, extOff: 0, extCap: 8192})))
	// Batch with overlapping descriptors referencing the same extent —
	// legal aliasing (RDMA semantics), must not crash.
	f.Add(ringSeed(0, 2, 3,
		sqeBytes(sqEntry{op: opWrite, id: 1, regionID: 1, offset: 0, length: 4096, extOff: 0, extCap: 8192}),
		sqeBytes(sqEntry{op: opRead, id: 2, regionID: 1, offset: 0, length: 4096, extOff: 0, extCap: 8192}),
	))
	// Extent out of the arena entirely; extent that overflows off+cap.
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opRead, id: 1, regionID: 1, length: 4096, extOff: uint64(arena), extCap: 8192})))
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opRead, id: 1, regionID: 1, length: 4096, extOff: math.MaxUint64 - 4096, extCap: 8192})))
	// Length larger than the (valid) extent; zero-length op; bad opcode.
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opRead, id: 1, regionID: 1, length: 1 << 40, extOff: 0, extCap: 4096})))
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opWrite, id: 1, regionID: 1, length: 0, extOff: 0, extCap: 4096})))
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: 0xEE, id: 1, extCap: 64})))
	// Hostile batch tables: absurd count, truncated table, overlapping iovecs.
	tbl := descs(0, 4096, 0, 4096) // two descriptors aliasing the same page
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opReadV, id: 1, regionID: 1, length: int64(len(tbl)), extOff: 0, extCap: 16384})))
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opReadV, id: 1, regionID: 1, length: 16, extOff: 0, extCap: 4096})))
	f.Add(ringSeed(0, 1, 3, sqeBytes(sqEntry{op: opWriteV, id: 1, regionID: 1, length: 8, extOff: 0, extCap: 4096})))
	// Implausible producer delta (> entries) must poison, not iterate.
	f.Add(ringSeed(0, e+1, 3))
	f.Add(ringSeed(0, math.MaxUint64, 3))
	// Index wraparound right at the top of the u64 space.
	f.Add(ringSeed(math.MaxUint64-2, 3, 3,
		sqeBytes(sqEntry{op: opStat, id: 1, extCap: 64}),
		sqeBytes(sqEntry{op: opStat, id: 2, extCap: 64, extOff: 64}),
		sqeBytes(sqEntry{op: opStat, id: 3, extCap: 64, extOff: 128}),
	))
	// Client side: clean completion, unknown id, duplicate id (stale
	// retransmit), oversized completion length, negative length.
	f.Add(ringSeed(0, 1, 3, cqeBytes(cqEntry{status: statusOK, id: 1, length: 4096})))
	f.Add(ringSeed(0, 1, 3, cqeBytes(cqEntry{status: statusOK, id: 999, length: 0})))
	f.Add(ringSeed(0, 2, 3,
		cqeBytes(cqEntry{status: statusOK, id: 1, length: 16}),
		cqeBytes(cqEntry{status: statusOK, id: 1, length: 16}),
	))
	f.Add(ringSeed(0, 1, 3, cqeBytes(cqEntry{status: statusOK, id: 1, length: 1 << 40})))
	f.Add(ringSeed(0, 1, 3, cqeBytes(cqEntry{status: statusOK, id: 1, length: -1})))
	f.Add(ringSeed(0, 2, 3,
		cqeBytes(cqEntry{status: statusErrRegion, id: 1, length: 8}),
		cqeBytes(cqEntry{status: statusErr, id: 2, length: 8}),
	))
	// Completion wraparound with live pending calls on both sides of it.
	f.Add(ringSeed(math.MaxUint64-1, 2, 4,
		cqeBytes(cqEntry{status: statusOK, id: math.MaxUint64, length: 0}),
		cqeBytes(cqEntry{status: statusOK, id: 0, length: 0}),
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 17 {
			return
		}
		fuzzShmProcess(data)
		fuzzShmConsume(data)
	})
}
