// Package memnode implements the far-memory node of §5.2 as a real
// network service: a daemon that accepts region-registration requests and
// serves one-sided page reads and writes, plus the matching client.
//
// On the paper's testbed this role is played by a passive VM whose memory
// is registered with an RDMA NIC; here the transport is TCP (the only
// fabric available to a pure-Go artifact), but the protocol mirrors the
// verbs the paging systems need: REGISTER (memory-region setup), READ and
// WRITE at arbitrary offsets, batched READV/WRITEV, and STAT for
// monitoring. Region storage is allocated in 2 MiB chunks, mirroring the
// HugeTLB backing the paper uses to keep page-table walks cheap on the
// memory node.
//
// Two wire protocols are spoken, negotiated per connection (frame.go):
//
// v1, length-prefixed binary, little-endian, strict stop-and-wait:
//
//	request:  op(1) regionID(8) offset(8) length(8) payload(length, WRITE only)
//	response: status(1) length(8) payload(length)
//
// v2 adds a request ID to every frame so one connection multiplexes many
// outstanding operations; see frame.go for the layout and the batch-verb
// payload format. Server-side, a v2 connection demuxes requests into a
// bounded per-connection worker pool and serializes responses through a
// single writev-based writer, so deep client pipelines actually overlap
// region copies with wire IO.
package memnode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"        //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
	"sync/atomic" //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
	"time"
)

// Opcodes shared by v1 and v2 (batch opcodes live in frame.go).
const (
	opRegister = 1
	opRead     = 2
	opWrite    = 3
	opStat     = 4
	// opProbe is the STATS verb: a fixed-size health/load sample (free
	// bytes, in-flight op depth, capacity) cheap enough to issue on a
	// probe cadence. memcluster's replica selection runs on it.
	opProbe = 7
	// opUnregister releases a region: the ID stops resolving and its
	// bytes return to the capacity pool. memcluster's Register rollback
	// runs on it.
	opUnregister = 8
)

// probeRespLen is the STATS response: free(8) inflight(8) capacity(8).
const probeRespLen = 24

// Status codes.
const (
	statusOK = 0
	// statusErr is a terminal error: the request was understood and
	// rejected (bad bounds, capacity, bad opcode). Retrying is useless.
	statusErr = 1
	// statusErrRegion means the region ID is unknown — after a server
	// restart every pre-crash region reads this way. The client reacts
	// by replaying the REGISTER for its stable handle and retrying; page
	// ops are idempotent so the replay is safe.
	statusErrRegion = 2
)

// ChunkBytes is the backing allocation granularity (a 2 MiB huge page).
const ChunkBytes = 2 << 20

// MaxIO bounds a single READ/WRITE payload and the total data moved by
// one READV/WRITEV batch.
const MaxIO = 8 << 20

// ServerOptions tunes protocol support and per-connection concurrency.
type ServerOptions struct {
	// MaxProtocol caps the negotiated wire protocol: protoV2 (the
	// default) accepts both v1 and v2 clients; protoV1 refuses the v2
	// HELLO, turning the server into a legacy node (used by the
	// negotiation tests and the -proto flag of cmd/memnode).
	MaxProtocol int
	// Workers is the per-connection worker pool size for v2
	// connections: how many requests from one pipelined client may be
	// executed concurrently. Default 8.
	Workers int

	// EnableShm additionally serves the shared-memory ring transport
	// (DESIGN.md §13): the HELLO response advertises a unix-domain
	// socket where clients obtain a memfd-backed segment and move page
	// data through shared rings instead of socket payloads. Requires
	// platform support (Linux); NewServerOptions fails otherwise.
	EnableShm bool
	// ShmPath is the unix socket path for shm negotiation. Default:
	// memnode-shm-<port>.sock in the temp directory. A stale socket
	// file at the path is removed.
	ShmPath string
	// ShmArenaBytes overrides the per-connection data arena size.
	// Default: sized for the client's window plus two maximal batches
	// (~20 MiB at the default window).
	ShmArenaBytes int64
}

func (o *ServerOptions) fillDefaults() {
	if o.MaxProtocol <= 0 || o.MaxProtocol > protoV2 {
		o.MaxProtocol = protoV2
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
}

// Server is the far-memory node daemon.
type Server struct {
	ln      net.Listener
	opts    ServerOptions
	mu      sync.Mutex
	regions map[uint64][][]byte // regionID -> chunks
	sizes   map[uint64]int64
	// regionFrees unmaps mmap-backed region chunks; run only after
	// every handler has drained (Close, post-wg.Wait) so no IO can
	// still alias a chunk.
	regionFrees []func()
	nextID      uint64
	capacity    int64
	used        int64

	// conns tracks live connections so Close can unblock handlers
	// parked in ReadFull on idle clients.
	conns map[net.Conn]struct{}

	// Shm transport state (nil/zero unless ServerOptions.EnableShm).
	shmLn    *net.UnixListener
	shmPath  string
	shmToken uint64

	// Stats (atomic; served by STAT).
	ReadOps    atomic.Uint64
	WriteOps   atomic.Uint64
	BytesRead  atomic.Uint64
	BytesWrite atomic.Uint64

	// inflight counts requests currently executing across every
	// transport and protocol version; served by the STATS probe as the
	// server's load signal.
	inflight atomic.Int64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewServer listens on addr (e.g. "127.0.0.1:0") with a total capacity in
// bytes and default options.
func NewServer(addr string, capacity int64) (*Server, error) {
	return NewServerOptions(addr, capacity, ServerOptions{})
}

// NewServerOptions listens on addr with explicit protocol/concurrency
// options.
func NewServerOptions(addr string, capacity int64, opts ServerOptions) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memnode: invalid capacity %d", capacity)
	}
	opts.fillDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memnode: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		opts:    opts,
		regions: make(map[uint64][][]byte),
		sizes:   make(map[uint64]int64),
		// Region IDs are seeded with a startup epoch rather than 1: a
		// restarted server must never hand out an ID that clients of the
		// previous instance still hold, or a stale srvID could alias a
		// freshly registered region and silently read/write the wrong
		// one. (The client's lazy REGISTER replay only triggers on
		// unknown-region NACKs, which an aliased ID never produces.)
		nextID:   uint64(time.Now().UnixNano()), //magevet:ok restart-unique region-ID epoch on a real network daemon
		capacity: capacity,
		conns:    make(map[net.Conn]struct{}),
	}
	if opts.EnableShm {
		if err := s.setupShm(); err != nil {
			_ = ln.Close() // constructor failure; the shm error is the one to surface
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop() //magevet:ok real network daemon: one accept loop per server
	if s.shmLn != nil {
		s.wg.Add(1)
		go s.shmAcceptLoop() //magevet:ok real network daemon: one accept loop for the shm unix socket
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connection handlers to finish.
// Live connections are closed so handlers parked mid-read return.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	if s.shmLn != nil {
		_ = s.shmLn.Close() // the TCP listener Close error above is the one worth returning
	}
	s.mu.Lock()
	for conn := range s.conns { //magevet:ok close-all: each conn is closed exactly once, order cannot matter
		_ = conn.Close() // the listener Close error above is the one worth returning
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	frees := s.regionFrees
	s.regionFrees = nil
	s.regions = make(map[uint64][][]byte)
	s.mu.Unlock()
	for _, free := range frees {
		free()
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = conn.Close() // server is closing; best-effort teardown
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		//magevet:ok real network daemon: one handler goroutine per connection
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close() // handler is done; best-effort teardown
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serve(conn)
		}()
	}
}

// serve runs the v1 stop-and-wait loop. A HELLO request upgrades the
// connection to v2 framing (serveV2) when the server allows it; any
// other traffic is served as v1 forever, so legacy clients never notice
// the server understands more.
func (s *Server) serve(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	hdr := make([]byte, v1ReqHdrLen)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return
		}
		op := hdr[0]
		regionID := binary.LittleEndian.Uint64(hdr[1:9])
		offset := int64(binary.LittleEndian.Uint64(hdr[9:17]))
		length := int64(binary.LittleEndian.Uint64(hdr[17:25]))

		var err error
		if op != opHello {
			// Count every data exchange toward the STATS load signal; the
			// HELLO negotiation is excluded (its v2 branch returns without
			// falling through to the decrement below).
			s.inflight.Add(1)
		}
		switch op {
		case opHello:
			// regionID carries the magic, offset the client's max version.
			if s.opts.MaxProtocol >= protoV2 && regionID == helloMagic && offset >= protoV2 {
				if err := respond(conn, s.helloBody()); err != nil {
					return
				}
				s.serveV2(conn, br)
				return
			}
			// A v1-only server (or a garbled probe) rejects the HELLO the
			// same way it rejects any unknown opcode; the connection stays
			// healthy and the client falls back to v1.
			err = respondErr(conn, fmt.Sprintf("bad opcode %d", op))
		case opRegister:
			err = s.handleRegister(conn, length)
		case opRead:
			err = s.handleRead(conn, regionID, offset, length)
		case opWrite:
			err = s.handleWrite(conn, br, regionID, offset, length)
		case opStat:
			err = s.handleStat(conn)
		case opProbe:
			err = respond(conn, s.doProbe())
		case opUnregister:
			err = s.handleUnregister(conn, regionID)
		default:
			err = respondErr(conn, fmt.Sprintf("bad opcode %d", op))
		}
		if op != opHello {
			s.inflight.Add(-1)
		}
		if err != nil {
			return
		}
	}
}

// writeFrames writes a header and optional payload as one writev, so a
// response never costs two syscalls (or two TCP segments under
// TCP_NODELAY) the way the old header-then-payload pair of Writes did.
func writeFrames(conn net.Conn, hdr, payload []byte) error {
	if len(payload) == 0 {
		_, err := conn.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, payload}
	_, err := bufs.WriteTo(conn)
	return err
}

func respond(conn net.Conn, payload []byte) error {
	var hdr [v1RespHdrLen]byte
	hdr[0] = statusOK
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	return writeFrames(conn, hdr[:], payload)
}

func respondErr(conn net.Conn, msg string) error {
	return respondErrCode(conn, statusErr, msg)
}

func respondErrCode(conn net.Conn, code byte, msg string) error {
	var hdr [v1RespHdrLen]byte
	hdr[0] = code
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(msg)))
	return writeFrames(conn, hdr[:], []byte(msg))
}

// errUnknownRegion marks lookups of region IDs the server has never
// issued (or lost in a restart); it maps to statusErrRegion on the wire.
var errUnknownRegion = errors.New("unknown region")

// heapRegionChunks is the portable chunk allocator: plain GC-owned
// slices, used where mmap is unavailable or fails.
func heapRegionChunks(nChunks int) [][]byte {
	chunks := make([][]byte, nChunks)
	for i := range chunks {
		chunks[i] = make([]byte, ChunkBytes)
	}
	return chunks
}

// doRegister allocates a region and returns its ID payload, or a status
// code and message. Shared by the v1 and v2 paths.
func (s *Server) doRegister(size int64) ([]byte, byte, string) {
	// Bounds-check before any allocation: size is attacker-controlled
	// wire input.
	if size <= 0 || size > s.capacity {
		return nil, statusErr, fmt.Sprintf("register: bad size %d (capacity %d)", size, s.capacity)
	}
	s.mu.Lock()
	// Overflow-safe form of used+size > capacity: used stays within
	// [0, capacity], so the subtraction cannot wrap.
	if size > s.capacity-s.used {
		s.mu.Unlock()
		return nil, statusErr, "register: capacity exhausted"
	}
	id := s.nextID
	s.nextID++
	nChunks := int((size + ChunkBytes - 1) / ChunkBytes)
	chunks, release := allocRegionChunks(nChunks)
	if release != nil {
		s.regionFrees = append(s.regionFrees, release)
	}
	s.regions[id] = chunks
	s.sizes[id] = size
	s.used += size
	s.mu.Unlock()

	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, id)
	return resp, statusOK, ""
}

func (s *Server) handleRegister(conn net.Conn, size int64) error {
	body, code, msg := s.doRegister(size)
	if code != statusOK {
		return respondErrCode(conn, code, msg)
	}
	return respond(conn, body)
}

// doUnregister forgets a region: the ID stops resolving and its bytes
// return to the capacity pool. The backing chunks are deliberately NOT
// released here — zero-copy v2 READ responses may still hold writev
// segments aliasing them — so mmap-backed chunks stay mapped until
// Close (regionFrees) and heap chunks are garbage-collected once the
// last in-flight response drops its reference. Shared by the v1, v2,
// and shm dispatch paths.
func (s *Server) doUnregister(regionID uint64) (byte, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.regions[regionID]; !ok {
		return statusErrRegion, fmt.Sprintf("%v %d", errUnknownRegion, regionID)
	}
	delete(s.regions, regionID)
	s.used -= s.sizes[regionID]
	delete(s.sizes, regionID)
	return statusOK, ""
}

func (s *Server) handleUnregister(conn net.Conn, regionID uint64) error {
	code, msg := s.doUnregister(regionID)
	if code != statusOK {
		return respondErrCode(conn, code, msg)
	}
	return respond(conn, nil)
}

// regionAt validates and returns the chunk list for an IO.
func (s *Server) regionAt(regionID uint64, offset, length int64) ([][]byte, error) {
	if length <= 0 || length > MaxIO {
		return nil, fmt.Errorf("bad length %d", length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.regions[regionID]
	if !ok {
		return nil, fmt.Errorf("%w %d", errUnknownRegion, regionID)
	}
	// offset > size-length rather than offset+length > size: the sum
	// overflows int64 for offsets near MaxInt64 and would pass validation.
	if size := s.sizes[regionID]; offset < 0 || length > size || offset > size-length {
		return nil, fmt.Errorf("out of bounds off=%d len=%d in %d", offset, length, size)
	}
	return chunks, nil
}

// regionForBatch validates every descriptor of a batch against the
// region under one lock acquisition. The batch either fully validates
// or fails without side effects.
func (s *Server) regionForBatch(regionID uint64, iovs []iovec) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.regions[regionID]
	if !ok {
		return nil, fmt.Errorf("%w %d", errUnknownRegion, regionID)
	}
	size := s.sizes[regionID]
	for i, v := range iovs {
		// Overflow-safe form of v.off+v.length > size (see regionAt).
		if v.off < 0 || v.length > size || v.off > size-v.length {
			return nil, fmt.Errorf("batch desc %d out of bounds off=%d len=%d in %d", i, v.off, v.length, size)
		}
	}
	return chunks, nil
}

// errStatus maps a validation error to its wire status code.
func errStatus(err error) byte {
	if errors.Is(err, errUnknownRegion) {
		return statusErrRegion
	}
	return statusErr
}

func chunkedCopy(chunks [][]byte, offset int64, buf []byte, toRegion bool) {
	for len(buf) > 0 {
		ci := offset / ChunkBytes
		co := offset % ChunkBytes
		n := int64(len(buf))
		if rem := ChunkBytes - co; n > rem {
			n = rem
		}
		if toRegion {
			copy(chunks[ci][co:co+n], buf[:n])
		} else {
			copy(buf[:n], chunks[ci][co:co+n])
		}
		buf = buf[n:]
		offset += n
	}
}

// doRead copies length bytes out of a region into a pooled buffer. The
// caller owns the buffer and must PutBuf it after the response is on
// the wire.
func (s *Server) doRead(regionID uint64, offset, length int64) ([]byte, byte, string) {
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return nil, errStatus(err), err.Error()
	}
	buf := getBuf(int(length))
	chunkedCopy(chunks, offset, buf, false)
	s.ReadOps.Add(1)
	s.BytesRead.Add(uint64(length))
	return buf, statusOK, ""
}

func (s *Server) handleRead(conn net.Conn, regionID uint64, offset, length int64) error {
	body, code, msg := s.doRead(regionID, offset, length)
	if code != statusOK {
		return respondErrCode(conn, code, msg)
	}
	err := respond(conn, body)
	PutBuf(body)
	return err
}

// doWrite applies one write whose payload has already been read off the
// wire.
func (s *Server) doWrite(regionID uint64, offset int64, data []byte) (byte, string) {
	chunks, err := s.regionAt(regionID, offset, int64(len(data)))
	if err != nil {
		return errStatus(err), err.Error()
	}
	chunkedCopy(chunks, offset, data, true)
	s.WriteOps.Add(1)
	s.BytesWrite.Add(uint64(len(data)))
	return statusOK, ""
}

func (s *Server) handleWrite(conn net.Conn, br *bufio.Reader, regionID uint64, offset, length int64) error {
	if length <= 0 || length > MaxIO {
		return respondErr(conn, fmt.Sprintf("bad length %d", length))
	}
	buf := getBuf(int(length))
	if _, err := io.ReadFull(br, buf); err != nil {
		PutBuf(buf)
		return err
	}
	code, msg := s.doWrite(regionID, offset, buf)
	PutBuf(buf)
	if code != statusOK {
		return respondErrCode(conn, code, msg)
	}
	return respond(conn, nil)
}

// doWriteV applies a batched write: payload is the descriptor table
// followed by the concatenated data. Every descriptor is validated
// before any byte lands, so a bad batch has no partial effects.
func (s *Server) doWriteV(regionID uint64, payload []byte) (byte, string) {
	iovs, consumed, total, err := parseIovecs(payload)
	if err != nil {
		return statusErr, err.Error()
	}
	data := payload[consumed:]
	if int64(len(data)) != total {
		return statusErr, fmt.Sprintf("writev: descriptors cover %d bytes, payload carries %d", total, len(data))
	}
	chunks, err := s.regionForBatch(regionID, iovs)
	if err != nil {
		return errStatus(err), err.Error()
	}
	for _, v := range iovs {
		chunkedCopy(chunks, v.off, data[:v.length], true)
		data = data[v.length:]
	}
	s.WriteOps.Add(uint64(len(iovs)))
	s.BytesWrite.Add(uint64(total))
	return statusOK, ""
}

// Stats is the STAT response.
type Stats struct {
	Regions    uint64
	UsedBytes  uint64
	ReadOps    uint64
	WriteOps   uint64
	BytesRead  uint64
	BytesWrite uint64
}

func (s *Server) doStat() []byte {
	s.mu.Lock()
	st := Stats{
		Regions:   uint64(len(s.regions)),
		UsedBytes: uint64(s.used),
	}
	s.mu.Unlock()
	st.ReadOps = s.ReadOps.Load()
	st.WriteOps = s.WriteOps.Load()
	st.BytesRead = s.BytesRead.Load()
	st.BytesWrite = s.BytesWrite.Load()
	buf := make([]byte, 48)
	binary.LittleEndian.PutUint64(buf[0:], st.Regions)
	binary.LittleEndian.PutUint64(buf[8:], st.UsedBytes)
	binary.LittleEndian.PutUint64(buf[16:], st.ReadOps)
	binary.LittleEndian.PutUint64(buf[24:], st.WriteOps)
	binary.LittleEndian.PutUint64(buf[32:], st.BytesRead)
	binary.LittleEndian.PutUint64(buf[40:], st.BytesWrite)
	return buf
}

func (s *Server) handleStat(conn net.Conn) error {
	return respond(conn, s.doStat())
}

// HealthStats is the STATS probe response: the load/health sample
// memcluster's replica selection and failure detection run on. One
// mutex acquisition and two atomic loads per probe — cheap enough for
// a sub-second cadence against a loaded node.
type HealthStats struct {
	// FreeBytes is the unregistered remainder of the node's capacity.
	FreeBytes int64
	// InFlight is the number of requests executing at sample time
	// (including the probe itself).
	InFlight int64
	// CapacityBytes is the node's total configured capacity.
	CapacityBytes int64
}

// doProbe builds the STATS response. Shared by the v1, v2, and shm
// dispatch paths.
func (s *Server) doProbe() []byte {
	s.mu.Lock()
	free := s.capacity - s.used
	s.mu.Unlock()
	buf := make([]byte, probeRespLen)
	binary.LittleEndian.PutUint64(buf[0:], uint64(free))
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.inflight.Load()))
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.capacity))
	return buf
}

// v2req is one decoded v2 request frame handed to the worker pool.
type v2req struct {
	op       byte
	id       uint64
	regionID uint64
	offset   int64
	length   int64
	payload  []byte // pooled; recycled by the worker after execution
}

// v2resp is one response frame queued for the connection's writer.
// Exactly one of body/segs is set: body is an owned buffer (pooled
// when flagged), segs are zero-copy references into live region chunks
// that the writer hands straight to writev — a successful v2 READ
// never copies the page inside the server.
type v2resp struct {
	status byte
	id     uint64
	body   []byte
	segs   net.Buffers
	pooled bool // body came from the frame pool; writer recycles it
}

// appendChunkSegs appends the chunk subslices covering
// [offset, offset+length) to segs without copying. The caller must
// have validated the range. Safe to hold across the response write:
// chunk memory is never released before Close — UNREGISTER only drops
// the region from the lookup maps (see doUnregister) — and a
// concurrent overlapping WRITE tears the read exactly as one-sided
// RDMA would.
func appendChunkSegs(segs net.Buffers, chunks [][]byte, offset, length int64) net.Buffers {
	for length > 0 {
		ci := offset / ChunkBytes
		co := offset % ChunkBytes
		n := length
		if rem := ChunkBytes - co; n > rem {
			n = rem
		}
		segs = append(segs, chunks[ci][co:co+n])
		offset += n
		length -= n
	}
	return segs
}

// doReadSegs is the zero-copy v2 read: it returns writev segments
// aliasing the region instead of a copied buffer.
func (s *Server) doReadSegs(regionID uint64, offset, length int64) (net.Buffers, byte, string) {
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return nil, errStatus(err), err.Error()
	}
	s.ReadOps.Add(1)
	s.BytesRead.Add(uint64(length))
	return appendChunkSegs(nil, chunks, offset, length), statusOK, ""
}

// doReadVSegs is the zero-copy batched read: one segment list covering
// every descriptor in order.
func (s *Server) doReadVSegs(regionID uint64, payload []byte) (net.Buffers, byte, string) {
	iovs, consumed, total, err := parseIovecs(payload)
	if err != nil {
		return nil, statusErr, err.Error()
	}
	if consumed != len(payload) {
		return nil, statusErr, fmt.Sprintf("readv: %d trailing payload bytes", len(payload)-consumed)
	}
	chunks, err := s.regionForBatch(regionID, iovs)
	if err != nil {
		return nil, errStatus(err), err.Error()
	}
	segs := make(net.Buffers, 0, len(iovs)+1)
	for _, v := range iovs {
		segs = appendChunkSegs(segs, chunks, v.off, v.length)
	}
	s.ReadOps.Add(uint64(len(iovs)))
	s.BytesRead.Add(uint64(total))
	return segs, statusOK, ""
}

// serveV2 runs the pipelined protocol on one connection: this goroutine
// decodes frames and feeds a bounded worker pool; workers execute
// against the region store concurrently; a single writer goroutine
// serializes responses back onto the wire (one writev per frame).
// Responses complete out of order — that is the point of request IDs.
//
// Concurrent requests touching overlapping byte ranges race exactly as
// one-sided RDMA would: the server guarantees frame integrity, not
// cross-request ordering. Callers that need ordering (the paging
// systems do: one page has one owner at a time) must not issue
// conflicting ops concurrently.
func (s *Server) serveV2(conn net.Conn, br *bufio.Reader) {
	reqs := make(chan *v2req, s.opts.Workers*2)
	resps := make(chan *v2resp, s.opts.Workers*2)
	var workWG, writeWG sync.WaitGroup
	for i := 0; i < s.opts.Workers; i++ {
		workWG.Add(1)
		go func() { //magevet:ok real network daemon: bounded per-connection worker pool for the pipelined protocol
			defer workWG.Done()
			for r := range reqs {
				resps <- s.execV2(r)
			}
		}()
	}
	writeWG.Add(1)
	go func() { //magevet:ok real network daemon: single response-writer goroutine per v2 connection
		defer writeWG.Done()
		var hdrs [writeBatch][v2RespHdrLen]byte
		iov := make(net.Buffers, 0, 2*writeBatch)
		batch := make([]*v2resp, 0, writeBatch)
		var werr error
		for r := range resps {
			// Coalesce every queued response into one writev: under a
			// deep pipeline the syscall, not the copy, is the bottleneck.
			batch = append(batch[:0], r)
			// Yield once between drain rounds so concurrently-finishing
			// workers can queue their responses into this writev (see the
			// client writeLoop for the rationale).
			for round := 0; round < 2 && len(batch) < writeBatch; round++ {
				// This goroutine is resps' only receiver, so a non-zero
				// len() guarantees a buffered element and a non-blocking
				// receive (even after close) — a plain recv is ~3x cheaper
				// than a select-with-default here.
				for len(batch) < writeBatch && len(resps) > 0 {
					batch = append(batch, <-resps)
				}
				if round == 0 && len(batch) < writeBatch {
					runtime.Gosched() // micro-batching yield on the response-writer goroutine
				}
			}
			if werr == nil {
				iov = iov[:0]
				for i, b := range batch {
					n := int64(len(b.body))
					for _, seg := range b.segs {
						n += int64(len(seg))
					}
					hdr := &hdrs[i]
					hdr[0] = b.status
					binary.LittleEndian.PutUint64(hdr[1:], b.id)
					binary.LittleEndian.PutUint64(hdr[9:], uint64(n))
					iov = append(iov, hdr[:])
					if len(b.body) > 0 {
						iov = append(iov, b.body)
					}
					iov = append(iov, b.segs...)
				}
				if _, err := iov.WriteTo(conn); err != nil {
					werr = err
				}
			}
			// Keep draining after a write error so workers never block;
			// the reader will notice the dead connection and shut down.
			for _, b := range batch {
				if b.pooled {
					PutBuf(b.body)
				}
			}
		}
	}()

	hdr := make([]byte, v2ReqHdrLen)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break
		}
		r := &v2req{
			op:       hdr[0],
			id:       binary.LittleEndian.Uint64(hdr[1:9]),
			regionID: binary.LittleEndian.Uint64(hdr[9:17]),
			offset:   int64(binary.LittleEndian.Uint64(hdr[17:25])),
			length:   int64(binary.LittleEndian.Uint64(hdr[25:33])),
		}
		// Ops that carry a payload declare its size in the length field.
		// An absurd size is a framing violation we cannot skip past, so
		// the connection dies; in-range payloads are always consumed so
		// the stream stays aligned even when the op is later rejected.
		if r.op == opWrite || r.op == opReadV || r.op == opWriteV {
			if r.length < 0 || r.length > maxV2Payload {
				break
			}
			if r.length > 0 {
				r.payload = getBuf(int(r.length))
				if _, err := io.ReadFull(br, r.payload); err != nil {
					PutBuf(r.payload)
					break
				}
			}
		}
		// Fast path: execute page-sized ops inline instead of bouncing
		// them through the worker pool. A 4 KiB read is cheaper than the
		// two channel handoffs and goroutine wakeup the pool costs, and
		// zero-copy reads do no memmove at all; only large transfers and
		// region registration (which allocates the region) are worth
		// shipping to a worker.
		if r.length >= 0 && r.length <= inlineExecMax && r.op != opRegister {
			resps <- s.execV2(r)
			continue
		}
		reqs <- r
	}
	close(reqs)
	workWG.Wait()
	close(resps)
	writeWG.Wait()
}

// execV2 executes one decoded request and builds its response frame,
// recycling the request payload.
func (s *Server) execV2(r *v2req) *v2resp {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	resp := &v2resp{id: r.id}
	var code byte
	var msg string
	switch r.op {
	case opRegister:
		resp.body, code, msg = s.doRegister(r.length)
	case opRead:
		resp.segs, code, msg = s.doReadSegs(r.regionID, r.offset, r.length)
	case opWrite:
		if len(r.payload) == 0 {
			code, msg = statusErr, "bad length 0"
		} else if r.length > MaxIO {
			code, msg = statusErr, fmt.Sprintf("bad length %d", r.length)
		} else {
			code, msg = s.doWrite(r.regionID, r.offset, r.payload)
		}
	case opReadV:
		resp.segs, code, msg = s.doReadVSegs(r.regionID, r.payload)
	case opWriteV:
		code, msg = s.doWriteV(r.regionID, r.payload)
	case opStat:
		resp.body, code = s.doStat(), statusOK
	case opProbe:
		resp.body, code = s.doProbe(), statusOK
	case opUnregister:
		code, msg = s.doUnregister(r.regionID)
	default:
		code, msg = statusErr, fmt.Sprintf("bad opcode %d", r.op)
	}
	if r.payload != nil {
		PutBuf(r.payload)
		r.payload = nil
	}
	resp.status = code
	if code != statusOK {
		resp.body, resp.pooled = []byte(msg), false
	}
	return resp
}
