// Package memnode implements the far-memory node of §5.2 as a real
// network service: a daemon that accepts region-registration requests and
// serves one-sided page reads and writes, plus the matching client.
//
// On the paper's testbed this role is played by a passive VM whose memory
// is registered with an RDMA NIC; here the transport is TCP (the only
// fabric available to a pure-Go artifact), but the protocol mirrors the
// verbs the paging systems need: REGISTER (memory-region setup), READ and
// WRITE at arbitrary offsets, and STAT for monitoring. Region storage is
// allocated in 2 MiB chunks, mirroring the HugeTLB backing the paper uses
// to keep page-table walks cheap on the memory node.
//
// The wire protocol is length-prefixed binary, little-endian:
//
//	request:  op(1) regionID(8) offset(8) length(8) payload(length, WRITE only)
//	response: status(1) length(8) payload(length)
package memnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"        //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
	"sync/atomic" //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
)

// Opcodes.
const (
	opRegister = 1
	opRead     = 2
	opWrite    = 3
	opStat     = 4
)

// Status codes.
const (
	statusOK  = 0
	statusErr = 1
)

// ChunkBytes is the backing allocation granularity (a 2 MiB huge page).
const ChunkBytes = 2 << 20

// MaxIO bounds a single READ/WRITE payload.
const MaxIO = 8 << 20

// Server is the far-memory node daemon.
type Server struct {
	ln       net.Listener
	mu       sync.Mutex
	regions  map[uint64][][]byte // regionID -> chunks
	sizes    map[uint64]int64
	nextID   uint64
	capacity int64
	used     int64

	// Stats (atomic; served by STAT).
	ReadOps    atomic.Uint64
	WriteOps   atomic.Uint64
	BytesRead  atomic.Uint64
	BytesWrite atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewServer listens on addr (e.g. "127.0.0.1:0") with a total capacity in
// bytes.
func NewServer(addr string, capacity int64) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memnode: invalid capacity %d", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memnode: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		regions:  make(map[uint64][][]byte),
		sizes:    make(map[uint64]int64),
		nextID:   1,
		capacity: capacity,
	}
	s.wg.Add(1)
	go s.acceptLoop() //magevet:ok real network daemon: one accept loop per server
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connection handlers to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		//magevet:ok real network daemon: one handler goroutine per connection
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	hdr := make([]byte, 25)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		op := hdr[0]
		regionID := binary.LittleEndian.Uint64(hdr[1:9])
		offset := int64(binary.LittleEndian.Uint64(hdr[9:17]))
		length := int64(binary.LittleEndian.Uint64(hdr[17:25]))

		var err error
		switch op {
		case opRegister:
			err = s.handleRegister(conn, length)
		case opRead:
			err = s.handleRead(conn, regionID, offset, length)
		case opWrite:
			err = s.handleWrite(conn, regionID, offset, length)
		case opStat:
			err = s.handleStat(conn)
		default:
			err = respondErr(conn, fmt.Sprintf("bad opcode %d", op))
		}
		if err != nil {
			return
		}
	}
}

func respond(conn net.Conn, payload []byte) error {
	hdr := make([]byte, 9)
	hdr[0] = statusOK
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		_, err := conn.Write(payload)
		return err
	}
	return nil
}

func respondErr(conn net.Conn, msg string) error {
	hdr := make([]byte, 9)
	hdr[0] = statusErr
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(msg)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	_, err := conn.Write([]byte(msg))
	return err
}

func (s *Server) handleRegister(conn net.Conn, size int64) error {
	if size <= 0 {
		return respondErr(conn, "register: non-positive size")
	}
	s.mu.Lock()
	if s.used+size > s.capacity {
		s.mu.Unlock()
		return respondErr(conn, "register: capacity exhausted")
	}
	id := s.nextID
	s.nextID++
	nChunks := int((size + ChunkBytes - 1) / ChunkBytes)
	chunks := make([][]byte, nChunks)
	for i := range chunks {
		chunks[i] = make([]byte, ChunkBytes)
	}
	s.regions[id] = chunks
	s.sizes[id] = size
	s.used += size
	s.mu.Unlock()

	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, id)
	return respond(conn, resp)
}

// regionAt validates and returns the chunk list for an IO.
func (s *Server) regionAt(regionID uint64, offset, length int64) ([][]byte, error) {
	if length <= 0 || length > MaxIO {
		return nil, fmt.Errorf("bad length %d", length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.regions[regionID]
	if !ok {
		return nil, fmt.Errorf("unknown region %d", regionID)
	}
	if offset < 0 || offset+length > s.sizes[regionID] {
		return nil, fmt.Errorf("out of bounds [%d,%d) in %d", offset, offset+length, s.sizes[regionID])
	}
	return chunks, nil
}

func chunkedCopy(chunks [][]byte, offset int64, buf []byte, toRegion bool) {
	for len(buf) > 0 {
		ci := offset / ChunkBytes
		co := offset % ChunkBytes
		n := int64(len(buf))
		if rem := ChunkBytes - co; n > rem {
			n = rem
		}
		if toRegion {
			copy(chunks[ci][co:co+n], buf[:n])
		} else {
			copy(buf[:n], chunks[ci][co:co+n])
		}
		buf = buf[n:]
		offset += n
	}
}

func (s *Server) handleRead(conn net.Conn, regionID uint64, offset, length int64) error {
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return respondErr(conn, err.Error())
	}
	buf := make([]byte, length)
	chunkedCopy(chunks, offset, buf, false)
	s.ReadOps.Add(1)
	s.BytesRead.Add(uint64(length))
	return respond(conn, buf)
}

func (s *Server) handleWrite(conn net.Conn, regionID uint64, offset, length int64) error {
	if length <= 0 || length > MaxIO {
		return respondErr(conn, fmt.Sprintf("bad length %d", length))
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return respondErr(conn, err.Error())
	}
	chunkedCopy(chunks, offset, buf, true)
	s.WriteOps.Add(1)
	s.BytesWrite.Add(uint64(length))
	return respond(conn, nil)
}

// Stats is the STAT response.
type Stats struct {
	Regions    uint64
	UsedBytes  uint64
	ReadOps    uint64
	WriteOps   uint64
	BytesRead  uint64
	BytesWrite uint64
}

func (s *Server) handleStat(conn net.Conn) error {
	s.mu.Lock()
	st := Stats{
		Regions:   uint64(len(s.regions)),
		UsedBytes: uint64(s.used),
	}
	s.mu.Unlock()
	st.ReadOps = s.ReadOps.Load()
	st.WriteOps = s.WriteOps.Load()
	st.BytesRead = s.BytesRead.Load()
	st.BytesWrite = s.BytesWrite.Load()
	buf := make([]byte, 48)
	binary.LittleEndian.PutUint64(buf[0:], st.Regions)
	binary.LittleEndian.PutUint64(buf[8:], st.UsedBytes)
	binary.LittleEndian.PutUint64(buf[16:], st.ReadOps)
	binary.LittleEndian.PutUint64(buf[24:], st.WriteOps)
	binary.LittleEndian.PutUint64(buf[32:], st.BytesRead)
	binary.LittleEndian.PutUint64(buf[40:], st.BytesWrite)
	return respond(conn, buf)
}

// Client is one connection to a memory node. Methods are safe for
// sequential use; open one client per worker for parallel IO.
type Client struct {
	conn net.Conn
	mu   sync.Mutex
	hdr  [25]byte
}

// Dial connects to a memory node.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memnode: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) request(op byte, regionID uint64, offset, length int64, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hdr[0] = op
	binary.LittleEndian.PutUint64(c.hdr[1:], regionID)
	binary.LittleEndian.PutUint64(c.hdr[9:], uint64(offset))
	binary.LittleEndian.PutUint64(c.hdr[17:], uint64(length))
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if _, err := c.conn.Write(payload); err != nil {
			return nil, err
		}
	}
	var rhdr [9]byte
	if _, err := io.ReadFull(c.conn, rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(rhdr[1:])
	if n > MaxIO {
		return nil, fmt.Errorf("memnode: oversized response %d", n)
	}
	var body []byte
	if n > 0 {
		body = make([]byte, n)
		if _, err := io.ReadFull(c.conn, body); err != nil {
			return nil, err
		}
	}
	if rhdr[0] != statusOK {
		return nil, errors.New("memnode: " + string(body))
	}
	return body, nil
}

// Register sets up a memory region of size bytes and returns its ID.
func (c *Client) Register(size int64) (uint64, error) {
	body, err := c.request(opRegister, 0, 0, size, nil)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("memnode: short register response (%d bytes)", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// Read performs a one-sided read of length bytes at offset.
func (c *Client) Read(regionID uint64, offset, length int64) ([]byte, error) {
	return c.request(opRead, regionID, offset, length, nil)
}

// Write performs a one-sided write of data at offset.
func (c *Client) Write(regionID uint64, offset int64, data []byte) error {
	_, err := c.request(opWrite, regionID, offset, int64(len(data)), data)
	return err
}

// Stat fetches server statistics.
func (c *Client) Stat() (Stats, error) {
	body, err := c.request(opStat, 0, 0, 0, nil)
	if err != nil {
		return Stats{}, err
	}
	if len(body) != 48 {
		return Stats{}, fmt.Errorf("memnode: short stat response (%d bytes)", len(body))
	}
	return Stats{
		Regions:    binary.LittleEndian.Uint64(body[0:]),
		UsedBytes:  binary.LittleEndian.Uint64(body[8:]),
		ReadOps:    binary.LittleEndian.Uint64(body[16:]),
		WriteOps:   binary.LittleEndian.Uint64(body[24:]),
		BytesRead:  binary.LittleEndian.Uint64(body[32:]),
		BytesWrite: binary.LittleEndian.Uint64(body[40:]),
	}, nil
}
